/**
 * @file
 * Unit tests for the common substrate: types, logging, stats, table
 * rendering, and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace ascend {
namespace {

TEST(Types, BitsOfCoversAllTypes)
{
    EXPECT_EQ(bitsOf(DataType::Int4), 4u);
    EXPECT_EQ(bitsOf(DataType::Int8), 8u);
    EXPECT_EQ(bitsOf(DataType::Fp16), 16u);
    EXPECT_EQ(bitsOf(DataType::Int32), 32u);
    EXPECT_EQ(bitsOf(DataType::Fp32), 32u);
}

TEST(Types, BytesOfRoundsSubByteUp)
{
    EXPECT_EQ(bytesOf(DataType::Int4, 1), 1u);
    EXPECT_EQ(bytesOf(DataType::Int4, 2), 1u);
    EXPECT_EQ(bytesOf(DataType::Int4, 3), 2u);
    EXPECT_EQ(bytesOf(DataType::Fp16, 10), 20u);
    EXPECT_EQ(bytesOf(DataType::Fp32, 4), 16u);
}

TEST(Types, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
    EXPECT_EQ(ceilDiv(1ull << 60, 1), 1ull << 60);
}

TEST(Types, RoundUp)
{
    EXPECT_EQ(roundUp(0, 16), 0u);
    EXPECT_EQ(roundUp(1, 16), 16u);
    EXPECT_EQ(roundUp(16, 16), 16u);
    EXPECT_EQ(roundUp(17, 16), 32u);
}

TEST(TypesDeath, CeilDivByZeroPanics)
{
    EXPECT_DEATH(ceilDiv(1, 0), "ceilDiv by zero");
}

TEST(Types, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(1536), "1.50 KiB");
    EXPECT_EQ(formatBytes(kMiB), "1.00 MiB");
    EXPECT_EQ(formatBytes(3 * kGiB), "3.00 GiB");
}

TEST(Types, FormatRate)
{
    EXPECT_EQ(formatRate(500.0), "500.00 B/s");
    EXPECT_EQ(formatRate(4e12), "4.00 TB/s");
    EXPECT_EQ(formatRate(256e9), "256.00 GB/s");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeath, FatalExitsWithCode1)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "bad config");
}

TEST(LoggingDeath, SimAssertPanicsOnFalse)
{
    EXPECT_DEATH(simAssert(false, "invariant x"), "invariant x");
}

TEST(Logging, SimAssertPassesOnTrue)
{
    simAssert(true, "fine");
}

TEST(Stats, CounterAccumulates)
{
    stats::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, DistributionTracksMoments)
{
    stats::Distribution d;
    d.sample(1.0);
    d.sample(3.0);
    d.sample(2.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_DOUBLE_EQ(d.sum(), 6.0);
}

TEST(Stats, EmptyDistributionIsZero)
{
    stats::Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
}

TEST(Stats, GroupLookupAndDump)
{
    stats::StatGroup g("core");
    g.counter("cube.busy").inc(5);
    g.distribution("lat").sample(2.0);
    EXPECT_TRUE(g.hasCounter("cube.busy"));
    EXPECT_FALSE(g.hasCounter("nope"));
    EXPECT_EQ(g.findCounter("cube.busy").value(), 5u);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("core.cube.busy 5"), std::string::npos);
    g.reset();
    EXPECT_EQ(g.findCounter("cube.busy").value(), 0u);
}

TEST(StatsDeath, MissingCounterPanics)
{
    stats::StatGroup g("g");
    EXPECT_DEATH(g.findCounter("missing"), "no counter named");
}

TEST(Table, RendersAlignedRows)
{
    TextTable t("demo");
    t.header({"a", "bbbb"});
    t.row({"1", "2"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("| a | bbbb |"), std::string::npos);
    EXPECT_NE(os.str().find("| 1 | 2    |"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    TextTable t;
    t.header({"x", "y"});
    t.row({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(TableDeath, MismatchedRowWidthPanics)
{
    TextTable t("bad");
    t.header({"a", "b"});
    EXPECT_DEATH(t.row({"only-one"}), "row width");
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(std::uint64_t(42)), "42");
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBound)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.uniform(17), 17u);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng r(4);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniformReal();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(5);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        if (r.chance(0.25))
            ++hits;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

} // anonymous namespace
} // namespace ascend
