/**
 * @file
 * Tests of the fleet serving simulator: arrival synthesis, batch
 * latency curves, admission control and deadline shedding, hedged
 * retries, replica failover, autoscaling, the request conservation
 * law, crash-consistent halt/resume byte-equality, and the
 * observability surface.
 */

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/zoo.hh"
#include "resilience/checkpoint.hh"
#include "resilience/fault_domain.hh"
#include "runtime/perf_stats.hh"
#include "runtime/sim_session.hh"
#include "runtime/thread_pool.hh"
#include "serving/fleet.hh"
#include "soc/training_soc.hh"

using namespace ascend;
using resilience::CorrelatedFaultSpec;
using resilience::FaultKind;
using resilience::FaultSchedule;
using resilience::FaultSpec;
using serving::ArrivalSpec;
using serving::BatchLatencyModel;
using serving::FleetOptions;
using serving::FleetResult;
using serving::QosTier;
using serving::Request;

namespace {

/** 2 ms base + 0.5 ms per request, batches up to 8. */
BatchLatencyModel
testModel()
{
    return BatchLatencyModel::linear(2e-3, 5e-4, 8);
}

std::vector<QosTier>
testTiers(double deadline_sec = 0.05)
{
    QosTier premium;
    premium.name = "premium";
    premium.deadlineSec = 2.0 * deadline_sec;
    premium.share = 0.25;
    premium.sheddable = false;
    premium.reservedSlots = 2;
    QosTier standard;
    standard.name = "standard";
    standard.deadlineSec = deadline_sec;
    standard.share = 0.75;
    standard.sheddable = true;
    return {premium, standard};
}

ArrivalSpec
testArrivals(double load, double horizon_sec = 0.5)
{
    ArrivalSpec arr;
    arr.seed = 29;
    arr.horizonSec = horizon_sec;
    arr.ratePerSec =
        load * testModel().saturationRequestsPerSec(2);
    return arr;
}

/** Exactly one CorePermanent event per core inside the horizon. */
FaultSpec
oneDeathPerCore(unsigned cores, double horizon_sec)
{
    FaultSpec spec;
    spec.seed = 13;
    spec.horizonSec = horizon_sec;
    spec.cores = cores;
    spec.corePermanentPerSec = 1.0 / horizon_sec;
    return spec;
}

FleetResult
run(double load, const FleetOptions &options,
    const FaultSpec &faults = {}, double horizon_sec = 0.5)
{
    const std::vector<QosTier> tiers = testTiers();
    return serving::runFleet(
        serving::generateArrivals(testArrivals(load, horizon_sec),
                                  tiers),
        tiers, testModel(), FaultSchedule::generate(faults), options);
}

FleetOptions
baseOptions()
{
    FleetOptions o;
    o.replicas = 2;
    o.retry.timeoutSec = 1e-3;
    o.retry.backoffBaseSec = 1e-4;
    return o;
}

/** Like run(), but against an explicit (e.g. correlated) schedule. */
FleetResult
runSched(double load, const FleetOptions &options,
         const FaultSchedule &faults, double horizon_sec = 0.5,
         const BatchLatencyModel *brownout_model = nullptr)
{
    const std::vector<QosTier> tiers = testTiers();
    return serving::runFleet(
        serving::generateArrivals(testArrivals(load, horizon_sec),
                                  tiers),
        tiers, testModel(), faults, options, brownout_model);
}

/** One whole-rack CorePermanent strike at @p at_sec, plus optional
 *  straggler background — all four replicas in a single rack. */
FaultSchedule
rackStrike(double at_sec, double straggler_fraction = 0)
{
    CorrelatedFaultSpec spec;
    spec.seed = 11;
    spec.horizonSec = 0.5;
    spec.topology.replicas = 4;
    spec.topology.replicasPerRack = 4;
    spec.rackStrikeAtSec = at_sec;
    spec.rackStrikeKind = FaultKind::CorePermanent;
    spec.background.stragglerFraction = straggler_fraction;
    spec.background.stragglerSlowdown = 4.0;
    return resilience::generateCorrelated(spec);
}

std::string
tempDir(const char *test)
{
    return ::testing::TempDir() + "ascend_serving_" + test;
}

} // namespace

// ------------------------------------------------------- workload

TEST(ServingWorkload, ArrivalsAreDeterministicSortedAndComplete)
{
    const std::vector<QosTier> tiers = testTiers();
    const ArrivalSpec spec = testArrivals(1.0);
    const std::vector<Request> a = serving::generateArrivals(spec, tiers);
    const std::vector<Request> b = serving::generateArrivals(spec, tiers);

    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].arrivalSec, b[i].arrivalSec);
        EXPECT_EQ(a[i].tier, b[i].tier);
        EXPECT_LT(a[i].tier, tiers.size());
        EXPECT_GE(a[i].arrivalSec, 0.0);
        EXPECT_LT(a[i].arrivalSec, spec.horizonSec);
        if (i) {
            EXPECT_GE(a[i].arrivalSec, a[i - 1].arrivalSec);
        }
    }

    // The mean rate is honored within quasi-periodic slack.
    const double expected = spec.ratePerSec * spec.horizonSec;
    EXPECT_NEAR(double(a.size()), expected, expected * 0.05 + 2.0);

    // Both tiers are represented roughly per their shares.
    std::size_t premium = 0;
    for (const Request &r : a)
        premium += r.tier == 0;
    EXPECT_GT(premium, a.size() / 8);
    EXPECT_LT(premium, a.size() / 2);
}

TEST(ServingWorkload, BurstsReshapeButPreserveMeanRate)
{
    const std::vector<QosTier> tiers = testTiers();
    ArrivalSpec calm = testArrivals(1.0, 1.0);
    ArrivalSpec bursty = calm;
    bursty.burstFactor = 4.0;
    bursty.burstPeriodSec = 0.2;
    bursty.burstDuty = 0.25;

    const std::vector<Request> a = serving::generateArrivals(calm, tiers);
    const std::vector<Request> b =
        serving::generateArrivals(bursty, tiers);
    ASSERT_FALSE(b.empty());
    EXPECT_NEAR(double(b.size()), double(a.size()),
                double(a.size()) * 0.05 + 2.0);

    // The burst window [0, duty*period) holds far more than its
    // uniform share.
    std::size_t in_burst = 0;
    for (const Request &r : b) {
        const double phase = r.arrivalSec -
                             bursty.burstPeriodSec *
                                 std::floor(r.arrivalSec /
                                            bursty.burstPeriodSec);
        in_burst += phase < bursty.burstDuty * bursty.burstPeriodSec;
    }
    EXPECT_GT(double(in_burst), 0.4 * double(b.size()));

    EXPECT_NE(serving::fingerprint(calm), serving::fingerprint(bursty));
    EXPECT_NE(serving::fingerprint(testTiers(0.05)),
              serving::fingerprint(testTiers(0.06)));
}

TEST(ServingWorkload, ReplayTraceAssignsTiersDeterministically)
{
    const std::vector<QosTier> tiers = testTiers();
    const std::vector<double> times = {0.0, 0.01, 0.02, 0.5};
    const std::vector<Request> a = serving::replayTrace(times, tiers, 9);
    const std::vector<Request> b = serving::replayTrace(times, tiers, 9);
    ASSERT_EQ(a.size(), times.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrivalSec, times[i]);
        EXPECT_EQ(a[i].id, i);
        EXPECT_EQ(a[i].tier, b[i].tier);
        EXPECT_LT(a[i].tier, tiers.size());
    }
}

// -------------------------------------------------- latency model

TEST(ServingLatencyModel, InterpolatesClampsAndFingerprints)
{
    const BatchLatencyModel m = BatchLatencyModel::fromPoints(
        {{1, 1e-3}, {4, 2.2e-3}, {8, 4e-3}});
    EXPECT_DOUBLE_EQ(m.latencySeconds(1), 1e-3);
    EXPECT_DOUBLE_EQ(m.latencySeconds(4), 2.2e-3);
    EXPECT_DOUBLE_EQ(m.latencySeconds(8), 4e-3);
    // Midpoints interpolate linearly; out-of-range clamps.
    EXPECT_NEAR(m.latencySeconds(2), 1e-3 + (2.2e-3 - 1e-3) / 3.0,
                1e-12);
    EXPECT_DOUBLE_EQ(m.latencySeconds(0), 1e-3);
    EXPECT_DOUBLE_EQ(m.latencySeconds(100), 4e-3);
    EXPECT_EQ(m.maxBatch(), 8u);
    EXPECT_NEAR(m.saturationRequestsPerSec(3), 3.0 * 8.0 / 4e-3,
                1e-9);

    EXPECT_EQ(m.fingerprint(),
              BatchLatencyModel::fromPoints(
                  {{1, 1e-3}, {4, 2.2e-3}, {8, 4e-3}})
                  .fingerprint());
    EXPECT_NE(m.fingerprint(), testModel().fingerprint());
}

TEST(ServingLatencyModel, ChipSimCurveIsMonotoneAndByteStable)
{
    soc::TrainingSoc soc910;
    runtime::SimSession session(soc910.coreConfig());
    const auto builder = [](unsigned batch) {
        return model::zoo::gestureNet(batch);
    };
    const BatchLatencyModel a = BatchLatencyModel::fromNetwork(
        session, builder, {1, 2}, session.config().clockGhz);
    ASSERT_EQ(a.points().size(), 2u);
    EXPECT_GT(a.latencySeconds(1), 0.0);
    EXPECT_GE(a.latencySeconds(2), a.latencySeconds(1));

    // A second session re-derives the identical curve (SimCache).
    runtime::SimSession again(soc910.coreConfig());
    const BatchLatencyModel b = BatchLatencyModel::fromNetwork(
        again, builder, {1, 2}, again.config().clockGhz);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(ServingLatencyModel, DenseAnchorsCoverEveryOctave)
{
    EXPECT_EQ(BatchLatencyModel::denseAnchors(32),
              (std::vector<unsigned>{1, 2, 3, 4, 5, 6, 7, 8, 10, 12,
                                     14, 16, 20, 24, 28, 32}));
    EXPECT_EQ(BatchLatencyModel::denseAnchors(1),
              std::vector<unsigned>{1});
    EXPECT_EQ(BatchLatencyModel::denseAnchors(9),
              (std::vector<unsigned>{1, 2, 3, 4, 5, 6, 7, 8, 9}));
    // Strictly increasing and ending exactly at max_batch, whatever
    // the bound.
    const std::vector<unsigned> a =
        BatchLatencyModel::denseAnchors(100);
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_LT(a[i - 1], a[i]);
    EXPECT_EQ(a.back(), 100u);
}

TEST(ServingLatencyModel, SurrogateDenseCurveIsMonotone)
{
    // The PR-7 limitation this closes: anchors stopped at batch 8
    // because every extra anchor cost a full exact simulation. With
    // the surrogate tier a 16-anchor curve through batch 32 is
    // affordable, and the whole interpolated curve must still be
    // monotone — at every integer batch, not just at the anchors
    // fromPoints validates.
    soc::TrainingSoc soc910;
    surrogate::SurrogateOptions sur;
    sur.enabled = true;
    runtime::SimSession session(soc910.coreConfig(), {},
                                std::make_shared<runtime::SimCache>(),
                                {}, sur);
    const auto builder = [](unsigned batch) {
        return model::zoo::gestureNet(batch);
    };
    const std::vector<unsigned> anchors =
        BatchLatencyModel::denseAnchors(32);
    ASSERT_GE(anchors.size(), 6u);
    const BatchLatencyModel m = BatchLatencyModel::fromNetwork(
        session, builder, anchors, session.config().clockGhz);
    ASSERT_EQ(m.points().size(), anchors.size());
    double prev = 0;
    for (unsigned b = 1; b <= m.maxBatch(); ++b) {
        const double t = m.latencySeconds(b);
        EXPECT_GE(t, prev) << "batch " << b;
        prev = t;
    }
}

// ------------------------------------------------------ the fleet

TEST(ServingFleet, UnderloadCompletesEverythingInDeadline)
{
    const FleetResult r = run(0.4, baseOptions());
    EXPECT_GT(r.offered, 0u);
    EXPECT_EQ(r.admitted, r.offered);
    EXPECT_EQ(r.completed, r.offered);
    EXPECT_EQ(r.goodput, r.offered);
    EXPECT_EQ(r.shed, 0u);
    EXPECT_EQ(r.retries, 0u);
    EXPECT_EQ(r.latencies.size(), r.completed);
    EXPECT_GT(r.p50, 0.0);
    EXPECT_LE(r.p50, r.p99);
    EXPECT_LE(r.p99, r.p999);
}

TEST(ServingFleet, RunIsDeterministicAndThreadCountInvariant)
{
    std::string reports[2];
    const unsigned threads[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
        runtime::ScopedThreadPoolSize scope(threads[i]);
        reports[i] =
            run(1.5, baseOptions(), oneDeathPerCore(2, 0.5)).report();
    }
    EXPECT_FALSE(reports[0].empty());
    EXPECT_EQ(reports[0], reports[1]);
}

TEST(ServingFleet, SheddingBoundsTailWhereUngovernedDiverges)
{
    FleetOptions shed = baseOptions();
    FleetOptions noshed = baseOptions();
    noshed.admission.enabled = false;

    const FleetResult governed = run(2.0, shed);
    const FleetResult ungoverned = run(2.0, noshed);

    // Conservation: every request completes or is shed, never lost.
    EXPECT_EQ(governed.completed + governed.shed, governed.offered);
    EXPECT_GT(governed.shed, 0u);
    EXPECT_EQ(ungoverned.completed, ungoverned.offered);
    EXPECT_EQ(ungoverned.shed, 0u);

    // The governed tail is bounded by deadline + one full batch (a
    // request dispatched just before its deadline still rides one
    // batch); the ungoverned tail diverges past it.
    const double bound = testTiers()[0].deadlineSec +
                         testModel().latencySeconds(8);
    EXPECT_LE(governed.p99, bound);
    EXPECT_GT(ungoverned.p99, bound);
    EXPECT_GT(governed.goodput, ungoverned.goodput);
}

TEST(ServingFleet, QueueCapacityShedsOutright)
{
    FleetOptions o = baseOptions();
    o.admission.queueCapacity = 4;
    const FleetResult r = run(2.0, o);
    EXPECT_GT(r.shed, 0u);
    EXPECT_EQ(r.completed + r.shed, r.offered);
}

TEST(ServingFleet, FailoverReplacesDeadReplicasAndRetriesRequests)
{
    FleetOptions o = baseOptions();
    o.warmSpares = 2;
    o.failoverSec = 5e-3;
    const FleetResult r =
        run(0.6, o, oneDeathPerCore(2, 0.5));

    EXPECT_EQ(r.replicaFailures, 2u);
    EXPECT_EQ(r.failovers, 2u);
    EXPECT_EQ(r.completed + r.shed, r.offered);
    // In-flight requests of the dead replicas were re-dispatched.
    EXPECT_GT(r.retries, 0u);
    EXPECT_NE(r.eventLog.find("failover replica"), std::string::npos);
}

TEST(ServingFleet, SpareExhaustionDegradesButConserves)
{
    FleetOptions o = baseOptions();
    o.warmSpares = 1; // two deaths, one spare
    const FleetResult r =
        run(0.6, o, oneDeathPerCore(2, 0.5));
    EXPECT_EQ(r.replicaFailures, 2u);
    EXPECT_EQ(r.failovers, 1u);
    EXPECT_NE(r.eventLog.find("dead"), std::string::npos);
    EXPECT_EQ(r.completed + r.shed, r.offered);
}

TEST(ServingFleet, FleetDeathShedsRemainingLoadInsteadOfHanging)
{
    FleetOptions o = baseOptions();
    o.warmSpares = 0;
    FaultSpec spec = oneDeathPerCore(2, 0.5);
    spec.horizonSec = 0.05; // both replicas die early
    spec.corePermanentPerSec = 1.0 / spec.horizonSec;
    const FleetResult r = run(0.6, o, spec);
    EXPECT_EQ(r.replicaFailures, 2u);
    EXPECT_EQ(r.failovers, 0u);
    EXPECT_EQ(r.completed + r.shed, r.offered);
    EXPECT_GT(r.shed, 0u);
    EXPECT_NE(r.eventLog.find("fleet dead"), std::string::npos);
}

TEST(ServingFleet, HedgingDuplicatesStragglersWithoutDoubleCounting)
{
    FleetOptions o = baseOptions();
    o.replicas = 4;
    o.hedge.enabled = true;
    // Above every healthy batch latency, below the straggled ones:
    // only the dragging replica's dispatches get hedged.
    o.hedge.afterSec = 8e-3;

    // Seed 4 marks exactly one of the four replicas a straggler.
    FaultSpec spec;
    spec.seed = 4;
    spec.horizonSec = 0.5;
    spec.cores = 4;
    spec.stragglerFraction = 0.5;
    spec.stragglerSlowdown = 4.0;

    const FleetResult r = run(1.2, o, spec);
    EXPECT_GT(r.hedges, 0u);
    // First answer wins; the losing copy never double-counts.
    EXPECT_EQ(r.completed + r.shed, r.offered);
    EXPECT_NE(r.eventLog.find("hedge replica"), std::string::npos);

    FleetOptions off = o;
    off.hedge.enabled = false;
    const FleetResult base = run(1.2, off, spec);
    EXPECT_EQ(base.hedges, 0u);
    // Hedging recovers goodput the straggler was eating.
    EXPECT_GE(r.goodput, base.goodput);
}

TEST(ServingFleet, AutoscalerAddsReplicasUnderSustainedBacklog)
{
    FleetOptions o = baseOptions();
    o.autoscale.enabled = true;
    o.autoscale.checkIntervalSec = 5e-3;
    o.autoscale.queueDepthPerReplica = 8;
    o.autoscale.spinUpSec = 0.02;
    o.autoscale.maxExtraReplicas = 2;

    const FleetResult scaled = run(2.0, o);
    EXPECT_GT(scaled.autoscaleUps, 0u);
    EXPECT_NE(scaled.eventLog.find("autoscale to"), std::string::npos);

    const FleetResult fixed = run(2.0, baseOptions());
    EXPECT_GT(scaled.goodput, fixed.goodput);
}

// -------------------------------- correlated faults and defenses

TEST(ServingDefenses, RackStrikeKillingPrimaryAndHedgeConserves)
{
    // The whole fleet shares one rack; the strike takes primary and
    // hedge copies in the same correlated event. First-answer-wins
    // dedup plus failure retries must still conserve every request,
    // wherever the strike lands relative to in-flight dispatches.
    FleetOptions o = baseOptions();
    o.replicas = 4;
    o.warmSpares = 2;
    o.failoverSec = 5e-3;
    o.hedge.enabled = true;
    o.hedge.afterSec = 8e-3; // above healthy, below 4x straggled

    std::uint64_t hedges = 0;
    for (double at : {0.05, 0.1, 0.15, 0.2}) {
        const FleetResult r =
            runSched(1.2, o, rackStrike(at, 0.5));
        EXPECT_EQ(r.completed + r.shed, r.offered)
            << "strike at " << at;
        EXPECT_EQ(r.replicaFailures, 4u) << "strike at " << at;
        EXPECT_EQ(r.failovers, 2u) << "strike at " << at;
        hedges += r.hedges;
    }
    // The straggler background forced hedges in at least one run, so
    // the dedup path genuinely ran under the strikes.
    EXPECT_GT(hedges, 0u);
}

TEST(ServingDefenses, BreakerIsolatesFlappingReplicas)
{
    FaultSpec flap;
    flap.seed = 21;
    flap.horizonSec = 0.5;
    flap.cores = 2;
    flap.coreTransientPerSec = 40.0;
    flap.coreRepairSec = 1e-3;

    FleetOptions o = baseOptions();
    o.health.enabled = true;
    o.health.cooloffSec = 0.02;
    const FleetResult r = run(1.0, o, flap);
    EXPECT_GT(r.breakerTrips, 0u);
    EXPECT_NE(r.eventLog.find("breaker open replica"),
              std::string::npos);
    EXPECT_EQ(r.completed + r.shed, r.offered);

    FleetOptions off = baseOptions();
    const FleetResult base = run(1.0, off, flap);
    EXPECT_EQ(base.breakerTrips, 0u);
}

TEST(ServingDefenses, ReoffersCountAsFreshOfferedRequests)
{
    FleetOptions o = baseOptions();
    o.reoffer.enabled = true;
    o.reoffer.delaySec = 2e-3;
    o.reoffer.maxReoffers = 2;

    const FleetResult loop = run(2.0, o);
    const FleetResult open = run(2.0, baseOptions());

    EXPECT_GT(loop.reoffered, 0u);
    // Every re-offer is a fresh offered request; conservation holds
    // over the inflated stream.
    EXPECT_EQ(loop.completed + loop.shed, loop.offered);
    EXPECT_EQ(loop.offered, open.offered + loop.reoffered);
    EXPECT_EQ(open.reoffered, 0u);
}

TEST(ServingDefenses, BrownoutTradesQualityForGoodput)
{
    const BatchLatencyModel cheap =
        BatchLatencyModel::linear(5e-4, 1e-4, 8);
    FleetOptions o = baseOptions();
    o.brownout.enabled = true;
    o.brownout.enterQueueDepthPerReplica = 16;
    o.brownout.exitQueueDepthPerReplica = 2;
    o.brownout.minResidencySec = 5e-3;

    const std::vector<QosTier> tiers = testTiers();
    const std::vector<Request> arrivals = serving::generateArrivals(
        testArrivals(2.0), tiers);
    const FaultSchedule none = FaultSchedule::generate(FaultSpec{});
    const FleetResult degraded = serving::runFleet(
        arrivals, tiers, testModel(), none, o, &cheap);
    const FleetResult crisp = serving::runFleet(
        arrivals, tiers, testModel(), none, baseOptions());

    EXPECT_GT(degraded.brownoutEntries, 0u);
    EXPECT_GT(degraded.brownoutCompleted, 0u);
    EXPECT_GE(degraded.brownoutCompleted, degraded.brownoutGoodput);
    EXPECT_GT(degraded.brownoutSec, 0.0);
    EXPECT_NE(degraded.eventLog.find("brownout enter"),
              std::string::npos);
    EXPECT_NE(degraded.eventLog.find("brownout exit"),
              std::string::npos);
    EXPECT_EQ(degraded.completed + degraded.shed, degraded.offered);
    // The cheaper curve answers more requests in time.
    EXPECT_GT(degraded.goodput, crisp.goodput);

    // Without the enable bit the cheap model is inert: byte-identical
    // to the plain run.
    FleetOptions inert = baseOptions();
    const FleetResult plain = serving::runFleet(
        arrivals, tiers, testModel(), none, inert, &cheap);
    EXPECT_EQ(plain.report(), crisp.report());
}

FleetOptions
allDefenses()
{
    FleetOptions o = baseOptions();
    o.replicas = 4;
    o.warmSpares = 2;
    o.failoverSec = 5e-3;
    o.hedge.enabled = true;
    o.hedge.afterSec = 8e-3;
    o.retry.jitterFraction = 0.5;
    o.retry.jitterSeed = 77;
    o.health.enabled = true;
    o.health.cooloffSec = 0.02;
    o.brownout.enabled = true;
    o.brownout.enterQueueDepthPerReplica = 8;
    o.brownout.exitQueueDepthPerReplica = 2;
    o.brownout.minResidencySec = 5e-3;
    o.reoffer.enabled = true;
    o.reoffer.delaySec = 2e-3;
    return o;
}

TEST(ServingDefenses, DefendedRunIsThreadCountInvariant)
{
    const BatchLatencyModel cheap =
        BatchLatencyModel::linear(5e-4, 1e-4, 8);
    std::string reports[2];
    const unsigned threads[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
        runtime::ScopedThreadPoolSize scope(threads[i]);
        reports[i] = runSched(2.0, allDefenses(), rackStrike(0.1, 0.5),
                              0.5, &cheap)
                         .report();
    }
    EXPECT_FALSE(reports[0].empty());
    EXPECT_EQ(reports[0], reports[1]);
}

TEST(ServingDefenses, DefendedHaltResumeMatchesUninterrupted)
{
    const BatchLatencyModel cheap =
        BatchLatencyModel::linear(5e-4, 1e-4, 8);
    const std::string ref_dir = tempDir("def_resume_ref");
    const std::string dir = tempDir("def_resume");
    FleetOptions base = allDefenses();
    base.checkpointIntervalSec = 5e-3;
    const FaultSchedule faults = rackStrike(0.1, 0.5);

    std::filesystem::remove_all(ref_dir);
    FleetOptions ref_options = base;
    ref_options.checkpointDir = ref_dir;
    const FleetResult ref =
        runSched(2.0, ref_options, faults, 0.5, &cheap);
    ASSERT_FALSE(ref.halted);
    ASSERT_GT(ref.checkpointsSaved, 2u);

    unsigned total_events = 0;
    for (char c : ref.eventLog)
        if (c == '\n')
            ++total_events;
    ASSERT_GE(total_events, 3u);

    for (unsigned halt : {1u, total_events / 2, total_events - 1}) {
        std::filesystem::remove_all(dir);
        FleetOptions victim = base;
        victim.checkpointDir = dir;
        victim.haltAfterEvents = halt;
        const FleetResult dead =
            runSched(2.0, victim, faults, 0.5, &cheap);
        EXPECT_TRUE(dead.halted);

        FleetOptions resume = base;
        resume.checkpointDir = dir;
        const FleetResult done =
            runSched(2.0, resume, faults, 0.5, &cheap);
        EXPECT_FALSE(done.halted);
        EXPECT_EQ(done.report(), ref.report())
            << "halt after event " << halt;
    }
    std::filesystem::remove_all(ref_dir);
    std::filesystem::remove_all(dir);
}

TEST(ServingDefenses, FingerprintReactsToEveryDefenseKnob)
{
    const std::vector<QosTier> tiers = testTiers();
    const std::vector<Request> arrivals =
        serving::generateArrivals(testArrivals(1.0), tiers);
    const BatchLatencyModel model = testModel();
    const BatchLatencyModel cheap =
        BatchLatencyModel::linear(5e-4, 1e-4, 8);
    const FaultSchedule none = FaultSchedule::generate(FaultSpec{});
    const FleetOptions base = baseOptions();
    const std::string id = serving::runFingerprint(
        arrivals, tiers, model, none, base);

    FleetOptions o = base;
    o.health.enabled = true;
    EXPECT_NE(id, serving::runFingerprint(arrivals, tiers, model,
                                          none, o));
    o = base;
    o.reoffer.enabled = true;
    EXPECT_NE(id, serving::runFingerprint(arrivals, tiers, model,
                                          none, o));
    o = base;
    o.retry.jitterFraction = 0.5;
    EXPECT_NE(id, serving::runFingerprint(arrivals, tiers, model,
                                          none, o));

    // The brownout model only enters the identity when the ladder is
    // armed — a dormant pointer is identity-neutral.
    EXPECT_EQ(id, serving::runFingerprint(arrivals, tiers, model,
                                          none, base, &cheap));
    o = base;
    o.brownout.enabled = true;
    const std::string armed = serving::runFingerprint(
        arrivals, tiers, model, none, o, &cheap);
    EXPECT_NE(id, armed);
    EXPECT_NE(armed, serving::runFingerprint(arrivals, tiers, model,
                                             none, o, &model));

    // A correlated schedule never aliases the independent schedule of
    // its own meta spec.
    const FaultSchedule corr = rackStrike(0.1);
    const FaultSchedule indep = FaultSchedule::generate(corr.spec());
    EXPECT_NE(serving::runFingerprint(arrivals, tiers, model, corr,
                                      base),
              serving::runFingerprint(arrivals, tiers, model, indep,
                                      base));
}

// ------------------------------------------- kill/resume contract

TEST(ServingFleet, HaltResumeMatchesUninterrupted)
{
    const std::string ref_dir = tempDir("resume_ref");
    const std::string dir = tempDir("resume");
    FleetOptions base = baseOptions();
    base.warmSpares = 1;
    base.hedge.enabled = true;
    base.hedge.afterSec = 4e-3;
    base.autoscale.enabled = true;
    base.autoscale.checkIntervalSec = 5e-3;
    base.autoscale.queueDepthPerReplica = 8;
    base.autoscale.spinUpSec = 0.02;
    base.autoscale.maxExtraReplicas = 1;
    base.checkpointIntervalSec = 5e-3;

    // The reference checkpoints like the victims do — the engine
    // logs one event line per save, so byte-equality requires the
    // same persistence config.
    std::filesystem::remove_all(ref_dir);
    FleetOptions ref_options = base;
    ref_options.checkpointDir = ref_dir;
    const FaultSpec spec = oneDeathPerCore(2, 0.5);
    const FleetResult ref = run(1.2, ref_options, spec);
    ASSERT_FALSE(ref.halted);
    ASSERT_GT(ref.checkpointsSaved, 2u);

    unsigned total_events = 0;
    for (char c : ref.eventLog)
        if (c == '\n')
            ++total_events;
    ASSERT_GE(total_events, 3u);

    for (unsigned halt : {1u, total_events / 2, total_events - 1}) {
        std::filesystem::remove_all(dir);
        FleetOptions victim = base;
        victim.checkpointDir = dir;
        victim.haltAfterEvents = halt;
        const FleetResult dead = run(1.2, victim, spec);
        EXPECT_TRUE(dead.halted);

        FleetOptions resume = base;
        resume.checkpointDir = dir;
        const FleetResult done = run(1.2, resume, spec);
        EXPECT_FALSE(done.halted);
        EXPECT_EQ(done.report(), ref.report())
            << "halt after event " << halt;
        // A completed run removes its checkpoint slot.
        EXPECT_FALSE(std::filesystem::exists(
            resilience::CheckpointStore(dir, "serving").path()));
    }
    std::filesystem::remove_all(ref_dir);
    std::filesystem::remove_all(dir);
}

TEST(ServingFleet, ForeignCheckpointIsIgnoredNotResumed)
{
    const std::string dir = tempDir("foreign");
    std::filesystem::remove_all(dir);

    FleetOptions victim = baseOptions();
    victim.checkpointDir = dir;
    victim.checkpointIntervalSec = 5e-3;
    victim.haltAfterEvents = 1;
    const FleetResult dead = run(1.5, victim);
    ASSERT_TRUE(dead.halted);
    ASSERT_TRUE(std::filesystem::exists(
        resilience::CheckpointStore(dir, "serving").path()));

    // A different configuration (different fingerprint) must cold
    // start, not adopt the stale blob.
    FleetOptions other = baseOptions();
    other.checkpointDir = dir;
    other.checkpointIntervalSec = 5e-3;
    other.retry.maxRetries = 7;
    const FleetResult resumed = run(1.5, other);

    FleetOptions fresh = baseOptions();
    fresh.checkpointDir = tempDir("foreign_fresh");
    std::filesystem::remove_all(fresh.checkpointDir);
    fresh.checkpointIntervalSec = 5e-3;
    fresh.retry.maxRetries = 7;
    const FleetResult clean = run(1.5, fresh);
    EXPECT_EQ(resumed.report(), clean.report());

    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(fresh.checkpointDir);
}

// ------------------------------------------------- observability

TEST(ServingFleet, CountersChargeIntoSimStats)
{
    runtime::resetServingTotals();

    const FleetResult r =
        run(1.5, baseOptions(), oneDeathPerCore(2, 0.5));
    const runtime::ServingCounters totals = runtime::servingTotals();
    EXPECT_EQ(totals.servingRuns, 1u);
    EXPECT_EQ(totals.offered, r.offered);
    EXPECT_EQ(totals.shed, r.shed);
    EXPECT_EQ(totals.goodput, r.goodput);
    EXPECT_EQ(totals.retries, r.retries);
    EXPECT_EQ(totals.replicaFailures, r.replicaFailures);

    const std::string report =
        runtime::simStatsReport(runtime::SimCache::Stats{}, 1);
    EXPECT_NE(report.find("serving runs"), std::string::npos);
    EXPECT_NE(report.find("serving goodput"), std::string::npos);

    // A halted run is a crash stand-in: nothing may be charged.
    runtime::resetServingTotals();
    const std::string dir = tempDir("charge_halt");
    std::filesystem::remove_all(dir);
    FleetOptions halt = baseOptions();
    halt.checkpointDir = dir;
    halt.haltAfterEvents = 1;
    run(1.5, halt, oneDeathPerCore(2, 0.5));
    EXPECT_EQ(runtime::servingTotals().servingRuns, 0u);
    runtime::resetServingTotals();
    std::filesystem::remove_all(dir);
}

TEST(ServingFleet, FingerprintSeparatesInputsAndOptions)
{
    const std::vector<QosTier> tiers = testTiers();
    const std::vector<Request> arrivals =
        serving::generateArrivals(testArrivals(1.0), tiers);
    const BatchLatencyModel model = testModel();
    const FaultSchedule none = FaultSchedule::generate(FaultSpec{});
    const FleetOptions base = baseOptions();

    const std::string id = serving::runFingerprint(
        arrivals, tiers, model, none, base);
    EXPECT_EQ(id, serving::runFingerprint(arrivals, tiers, model,
                                          none, base));

    FleetOptions other = base;
    other.hedge.enabled = !base.hedge.enabled;
    EXPECT_NE(id, serving::runFingerprint(arrivals, tiers, model,
                                          none, other));

    FleetOptions deadline = base;
    deadline.retry.giveUpAfterSeconds = 123.0;
    EXPECT_NE(id, serving::runFingerprint(arrivals, tiers, model,
                                          none, deadline));

    // Persistence knobs are identity-neutral: a resumed run with a
    // different checkpoint dir or halt point must match.
    FleetOptions persist = base;
    persist.checkpointDir = "/somewhere/else";
    persist.haltAfterEvents = 5;
    EXPECT_EQ(id, serving::runFingerprint(arrivals, tiers, model,
                                          none, persist));

    const FaultSchedule faults =
        FaultSchedule::generate(oneDeathPerCore(2, 0.5));
    EXPECT_NE(id, serving::runFingerprint(arrivals, tiers, model,
                                          faults, base));
}
