/**
 * @file
 * Tests for the sparsity support: the ZVC size model, structured
 * compute skipping, and their end-to-end effect through the compiler.
 */

#include <gtest/gtest.h>

#include "compiler/layer_compiler.hh"
#include "core/core_sim.hh"
#include "core/sparsity.hh"

namespace ascend {
namespace {

using core::SparsityConfig;
using core::Zvc;

TEST(Zvc, DenseTensorPaysOnlyTheMask)
{
    const Bytes dense = 1 << 20;
    const Bytes c = Zvc::compressedBytes(dense, DataType::Fp16, 1.0);
    // fp16: mask is 1 bit per 16-bit element = 1/16 overhead.
    EXPECT_EQ(c, dense + dense / 16);
}

TEST(Zvc, HalfDensityRoughlyHalves)
{
    const Bytes dense = 1 << 20;
    const Bytes c = Zvc::compressedBytes(dense, DataType::Fp16, 0.5);
    EXPECT_NEAR(double(c), dense * (0.5 + 1.0 / 16), dense * 0.01);
}

TEST(Zvc, EmptyTensorIsJustTheMask)
{
    const Bytes dense = 1 << 20;
    EXPECT_EQ(Zvc::compressedBytes(dense, DataType::Fp16, 0.0),
              dense / 16);
}

TEST(Zvc, RatioMonotonicInDensity)
{
    double prev = 0;
    for (double d : {0.1, 0.3, 0.5, 0.8, 1.0}) {
        const double r = Zvc::ratio(DataType::Fp16, d);
        EXPECT_GT(r, prev);
        EXPECT_LE(r, 1.0 + 1.0 / 16 + 1e-9);
        prev = r;
    }
}

TEST(Zvc, Int8MaskOverheadIsLarger)
{
    // 1 bit per 8-bit element = 1/8 overhead.
    EXPECT_GT(Zvc::ratio(DataType::Int8, 1.0),
              Zvc::ratio(DataType::Fp16, 1.0));
}

TEST(Structured, ComputeScaleQuantizesToHardwareSteps)
{
    SparsityConfig s;
    s.structured = true;
    s.weightDensity = 0.5;
    EXPECT_DOUBLE_EQ(core::structuredComputeScale(s), 0.5);
    s.weightDensity = 0.25;
    EXPECT_DOUBLE_EQ(core::structuredComputeScale(s), 0.25);
    s.weightDensity = 0.7; // no 0.7 mode: runs dense
    EXPECT_DOUBLE_EQ(core::structuredComputeScale(s), 1.0);
    s.structured = false;
    s.weightDensity = 0.25; // unstructured never skips compute
    EXPECT_DOUBLE_EQ(core::structuredComputeScale(s), 1.0);
}

TEST(SparseCompile, WeightTrafficShrinksWithDensity)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    core::CoreSim sim(cfg);
    const auto layer = model::Layer::linear("fc", 512, 1024, 1024);

    auto ext_b = [&](double density) {
        compiler::CompileOptions options;
        options.sparsity.weightDensity = density;
        compiler::LayerCompiler lc(cfg, options);
        return sim.run(lc.compile(layer)).bus(isa::Bus::ExtB);
    };
    const Bytes dense = ext_b(1.0);
    const Bytes half = ext_b(0.5);
    const Bytes quarter = ext_b(0.25);
    EXPECT_LT(half, dense);
    EXPECT_LT(quarter, half);
    EXPECT_NEAR(double(half) / dense, 0.56, 0.05);
}

TEST(SparseCompile, StructuredSparsityCutsCubeTime)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    core::CoreSim sim(cfg);
    const auto layer = model::Layer::linear("fc", 512, 1024, 1024);

    compiler::CompileOptions dense_opt;
    compiler::LayerCompiler dense_lc(cfg, dense_opt);
    const auto dense = sim.run(dense_lc.compile(layer));

    compiler::CompileOptions sparse_opt;
    sparse_opt.sparsity.weightDensity = 0.5;
    sparse_opt.sparsity.structured = true;
    compiler::LayerCompiler sparse_lc(cfg, sparse_opt);
    const auto sparse = sim.run(sparse_lc.compile(layer));

    EXPECT_LT(sparse.pipe(isa::Pipe::Cube).busyCycles,
              0.6 * dense.pipe(isa::Pipe::Cube).busyCycles);
}

TEST(SparseCompile, UnstructuredSparsityKeepsCubeTime)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    core::CoreSim sim(cfg);
    const auto layer = model::Layer::linear("fc", 256, 512, 512);

    compiler::CompileOptions unstructured;
    unstructured.sparsity.weightDensity = 0.5;
    compiler::LayerCompiler lc(cfg, unstructured);
    const auto sparse = sim.run(lc.compile(layer));

    compiler::LayerCompiler dense_lc(cfg);
    const auto dense = sim.run(dense_lc.compile(layer));
    EXPECT_EQ(sparse.pipe(isa::Pipe::Cube).busyCycles,
              dense.pipe(isa::Pipe::Cube).busyCycles);
}

/** Density sweep property: end-to-end cycles never grow as density
 * falls (structured mode). */
class DensitySweep : public testing::TestWithParam<double>
{
};

TEST_P(DensitySweep, SparserIsNeverSlower)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    core::CoreSim sim(cfg);
    const auto layer = model::Layer::conv2d("c", 1, 64, 28, 28, 128,
                                            3, 1, 1);
    compiler::LayerCompiler dense_lc(cfg);
    const Cycles dense = sim.run(dense_lc.compile(layer)).totalCycles;

    compiler::CompileOptions options;
    options.sparsity.weightDensity = GetParam();
    options.sparsity.structured = true;
    compiler::LayerCompiler lc(cfg, options);
    const Cycles sparse = sim.run(lc.compile(layer)).totalCycles;
    EXPECT_LE(sparse, dense + dense / 50);
}

INSTANTIATE_TEST_SUITE_P(Densities, DensitySweep,
                         testing::Values(0.25, 0.5, 0.75, 1.0));

} // anonymous namespace
} // namespace ascend
