/**
 * @file
 * Tests for the memory substrate: DRAM service model and the
 * set-associative LLC with MPAM partitioning.
 */

#include <gtest/gtest.h>

#include "memory/dram.hh"
#include "memory/llc.hh"

namespace ascend {
namespace memory {
namespace {

TEST(Dram, ServiceTimeIsLatencyPlusTransfer)
{
    DramModel hbm(DramConfig{"hbm", 1e12, 100e-9, {}});
    EXPECT_NEAR(hbm.serviceTime(0), 100e-9, 1e-12);
    EXPECT_NEAR(hbm.serviceTime(1000000), 100e-9 + 1e-6, 1e-12);
    EXPECT_NEAR(hbm.streamTime(2000000), 2e-6, 1e-12);
}

TEST(Dram, AccountingAccumulates)
{
    DramModel d(DramConfig{"d", 1e9, 0, {}});
    d.recordAccess(500);
    d.recordAccess(500);
    EXPECT_EQ(d.totalBytes(), 1000u);
    EXPECT_NEAR(d.busyTime(), 1e-6, 1e-12);
    d.reset();
    EXPECT_EQ(d.totalBytes(), 0u);
}

TEST(Dram, PublishedDevices)
{
    EXPECT_NEAR(hbm2Ascend910().bandwidthBytesPerSec, 1.2e12, 1e9);
    EXPECT_NEAR(lpddr4xMobile().bandwidthBytesPerSec, 34e9, 1e8);
    EXPECT_GT(ddrAutomotive().bandwidthBytesPerSec,
              ddrIot().bandwidthBytesPerSec);
}

LlcConfig
smallCache()
{
    // 16 sets x 4 ways x 64 B lines = 4 KiB.
    return LlcConfig{4 * kKiB, 4, 64, 1};
}

TEST(Llc, GeometryDerivation)
{
    Llc llc(smallCache());
    EXPECT_EQ(llc.numSets(), 16u);
}

TEST(Llc, FirstAccessMissesSecondHits)
{
    Llc llc(smallCache());
    EXPECT_FALSE(llc.access(0x1000));
    EXPECT_TRUE(llc.access(0x1000));
    EXPECT_TRUE(llc.access(0x1001)); // same line
    EXPECT_FALSE(llc.access(0x1040)); // next line
    EXPECT_EQ(llc.partStats(0).hits, 2u);
    EXPECT_EQ(llc.partStats(0).misses, 2u);
}

TEST(Llc, LruEvictsOldestWay)
{
    Llc llc(smallCache());
    // Fill one set (stride = sets * line = 1024 bytes) beyond its
    // 4 ways.
    const std::uint64_t stride = 16 * 64;
    for (int i = 0; i < 4; ++i)
        llc.access(i * stride);
    EXPECT_TRUE(llc.access(0)); // all resident
    // Insert a fifth: evicts the LRU line (which is 1*stride, since
    // line 0 was just touched).
    llc.access(4 * stride);
    EXPECT_TRUE(llc.access(0));
    EXPECT_FALSE(llc.access(1 * stride));
}

TEST(Llc, WorkingSetWithinCapacityHitsOnSecondPass)
{
    Llc llc(LlcConfig{1 * kMiB, 16, 4096, 1});
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t a = 0; a < 512 * kKiB; a += 4096)
            llc.access(a);
    // Second pass should be all hits.
    EXPECT_EQ(llc.partStats(0).hits, 128u);
    EXPECT_EQ(llc.partStats(0).misses, 128u);
}

TEST(Llc, StreamBeyondCapacityThrashes)
{
    Llc llc(LlcConfig{1 * kMiB, 16, 4096, 1});
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t a = 0; a < 4 * kMiB; a += 4096)
            llc.access(a);
    // Cyclic stream at 4x capacity under LRU: zero hits.
    EXPECT_EQ(llc.partStats(0).hits, 0u);
}

TEST(Llc, HitRateMonotonicInCapacity)
{
    double prev = -1;
    for (Bytes cap : {256 * kKiB, 512 * kKiB, 1 * kMiB, 2 * kMiB}) {
        Llc llc(LlcConfig{cap, 16, 4096, 1});
        for (int pass = 0; pass < 3; ++pass)
            for (std::uint64_t a = 0; a < 1536 * kKiB; a += 4096)
                llc.access(a);
        const double rate = llc.partStats(0).hitRate();
        EXPECT_GE(rate, prev);
        prev = rate;
    }
    EXPECT_GT(prev, 0.5); // largest capacity holds the whole set
}

TEST(Llc, MpamProtectsCriticalPartition)
{
    LlcConfig cfg{1 * kMiB, 16, 4096, 2};
    Llc llc(cfg);
    llc.setPartitionRange(0, 0, 4);   // critical: 4 ways
    llc.setPartitionRange(1, 4, 12);  // bulk: the rest
    // Warm the critical working set (128 KiB = fits 4/16 of 1 MiB).
    for (std::uint64_t a = 0; a < 128 * kKiB; a += 4096)
        llc.access(a, 0);
    // Massive bulk streaming cannot evict it.
    for (std::uint64_t a = 1 << 30; a < (1 << 30) + 64 * kMiB; a += 4096)
        llc.access(a, 1);
    llc.resetStats();
    for (std::uint64_t a = 0; a < 128 * kKiB; a += 4096)
        llc.access(a, 0);
    EXPECT_DOUBLE_EQ(llc.partStats(0).hitRate(), 1.0);
}

TEST(Llc, WithoutMpamStreamingEvictsEverything)
{
    LlcConfig cfg{1 * kMiB, 16, 4096, 2};
    Llc llc(cfg); // both partitions use all ways
    for (std::uint64_t a = 0; a < 128 * kKiB; a += 4096)
        llc.access(a, 0);
    for (std::uint64_t a = 1 << 30; a < (1 << 30) + 64 * kMiB; a += 4096)
        llc.access(a, 1);
    llc.resetStats();
    for (std::uint64_t a = 0; a < 128 * kKiB; a += 4096)
        llc.access(a, 0);
    EXPECT_DOUBLE_EQ(llc.partStats(0).hitRate(), 0.0);
}

TEST(Llc, HitsAreGlobalAllocationIsPartitioned)
{
    // MPAM restricts allocation, not lookup: partition 1 can hit a
    // line allocated by partition 0.
    LlcConfig cfg{1 * kMiB, 16, 4096, 2};
    Llc llc(cfg);
    llc.setPartitionRange(0, 0, 8);
    llc.setPartitionRange(1, 8, 8);
    llc.access(0x0, 0);
    EXPECT_TRUE(llc.access(0x0, 1));
}

TEST(LlcDeath, BadPartitionOrRangeIsFatal)
{
    LlcConfig cfg{1 * kMiB, 16, 4096, 2};
    Llc llc(cfg);
    EXPECT_EXIT(llc.access(0, 5), testing::ExitedWithCode(1),
                "partition");
    EXPECT_EXIT(llc.setPartitionRange(0, 10, 10),
                testing::ExitedWithCode(1), "way range");
}

TEST(Llc, ResetStatsClearsCounters)
{
    Llc llc(smallCache());
    llc.access(0);
    llc.resetStats();
    EXPECT_EQ(llc.partStats(0).accesses(), 0u);
}

/** Parameterized associativity sweep: loop fits -> full hits. */
class LlcWays : public testing::TestWithParam<unsigned>
{
};

TEST_P(LlcWays, LoopWithinOneSetHitsIfItFitsWays)
{
    const unsigned ways = GetParam();
    Llc llc(LlcConfig{Bytes(16) * 64 * ways, ways, 64, 1});
    const std::uint64_t stride = llc.numSets() * 64;
    // Touch exactly `ways` conflicting lines repeatedly.
    for (int pass = 0; pass < 4; ++pass)
        for (unsigned i = 0; i < ways; ++i)
            llc.access(i * stride);
    // Only the first pass misses.
    EXPECT_EQ(llc.partStats(0).misses, ways);
    EXPECT_EQ(llc.partStats(0).hits, 3u * ways);
}

INSTANTIATE_TEST_SUITE_P(Assoc, LlcWays,
                         testing::Values(1u, 2u, 4u, 8u, 16u));

} // anonymous namespace
} // namespace memory
} // namespace ascend
