/**
 * @file
 * Tests for the mesh NoC simulator: delivery, latency bounds,
 * determinism, saturation behaviour, deflection invariants, QoS
 * prioritization, and the ring model.
 */

#include <gtest/gtest.h>

#include "noc/mesh.hh"
#include "noc/ring.hh"

namespace ascend {
namespace noc {
namespace {

/** Inject a fixed number of flits, then go quiet. */
class BurstTraffic : public TrafficPattern
{
  public:
    BurstTraffic(unsigned count_per_node, unsigned dst)
        : remaining_(count_per_node), dst_(dst)
    {}

    bool
    next(unsigned node, Rng &, unsigned &dst, std::uint8_t &priority)
        override
    {
        if (node != 0 || used_ >= remaining_)
            return false;
        ++used_;
        dst = dst_;
        priority = 0;
        return true;
    }

  private:
    unsigned remaining_;
    unsigned used_ = 0;
    unsigned dst_;
};

TEST(Mesh, SingleFlitLatencyEqualsManhattanDistance)
{
    MeshConfig cfg;
    cfg.rows = 6;
    cfg.cols = 4;
    MeshNoc mesh(cfg);
    // Node 0 (r0,c0) -> node 23 (r5,c3): 8 hops.
    BurstTraffic t(1, 23);
    const auto s = mesh.run(t, 100);
    EXPECT_EQ(s.delivered, 1u);
    EXPECT_DOUBLE_EQ(s.avgHopCount, 8.0);
    EXPECT_DOUBLE_EQ(s.avgLatencyCycles, 8.0);
}

TEST(Mesh, AllInjectedFlitsDeliveredAfterDrain)
{
    MeshConfig cfg;
    MeshNoc mesh(cfg);
    BurstTraffic t(50, 23);
    const auto s = mesh.run(t, 2000);
    EXPECT_EQ(s.injected, 50u);
    EXPECT_EQ(s.delivered, 50u);
}

TEST(Mesh, UniformTrafficDeliversAtLowLoad)
{
    for (bool bufferless : {true, false}) {
        MeshConfig cfg;
        cfg.bufferless = bufferless;
        MeshNoc mesh(cfg);
        UniformTraffic t(0.05, mesh.nodes());
        const auto s = mesh.run(t, 5000);
        // Nearly everything injected should arrive.
        EXPECT_GT(s.delivered, 0.95 * s.injected);
        EXPECT_EQ(s.injectionStalls, 0u);
        // Unloaded latency ~ average Manhattan distance (~3.3 hops).
        EXPECT_LT(s.avgLatencyCycles, 8.0) << "bufferless="
                                           << bufferless;
    }
}

TEST(Mesh, ThroughputMonotonicBeforeSaturation)
{
    MeshConfig cfg;
    MeshNoc mesh(cfg);
    double prev = 0;
    for (double rate : {0.05, 0.1, 0.2, 0.3}) {
        UniformTraffic t(rate, mesh.nodes());
        const auto s = mesh.run(t, 5000);
        const double thr = s.throughputBytesPerCycle(cfg.flitBytes);
        EXPECT_GT(thr, prev);
        prev = thr;
    }
}

TEST(Mesh, DeflectionInflatesHopsUnderLoad)
{
    MeshConfig cfg; // bufferless
    MeshNoc mesh(cfg);
    UniformTraffic low(0.05, mesh.nodes());
    const auto s_low = mesh.run(low, 5000);
    UniformTraffic high(0.45, mesh.nodes());
    const auto s_high = mesh.run(high, 5000);
    EXPECT_GT(s_high.avgHopCount, s_low.avgHopCount + 0.3);
}

TEST(Mesh, BufferedRoutesMinimallyEvenUnderLoad)
{
    MeshConfig cfg;
    cfg.bufferless = false;
    MeshNoc mesh(cfg);
    UniformTraffic t(0.4, mesh.nodes());
    const auto s = mesh.run(t, 5000);
    // XY routing is minimal: hop count equals the distance average.
    EXPECT_LT(s.avgHopCount, 3.6);
}

TEST(Mesh, DeterministicForSameSeed)
{
    MeshConfig cfg;
    MeshNoc mesh(cfg);
    UniformTraffic t1(0.3, mesh.nodes());
    const auto a = mesh.run(t1, 3000, 42);
    UniformTraffic t2(0.3, mesh.nodes());
    const auto b = mesh.run(t2, 3000, 42);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_DOUBLE_EQ(a.avgLatencyCycles, b.avgLatencyCycles);
}

TEST(Mesh, LinkBandwidthMatchesPaper)
{
    MeshConfig cfg; // 1024-bit at 2 GHz
    MeshNoc mesh(cfg);
    EXPECT_NEAR(mesh.linkBandwidthBytesPerSec(), 256e9, 1e6);
}

TEST(Mesh, PriorityTrafficKeepsLowLatencyUnderBulkLoad)
{
    MeshConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    MeshNoc mesh(cfg);
    MixedPriorityTraffic t(0.5, 0.05, 4, mesh.nodes());
    mesh.run(t, 10000);
    EXPECT_GT(mesh.avgLatency(0), 0.0);
    EXPECT_GT(mesh.avgLatency(1), 0.0);
    // Critical flits should not be slower than bulk at this load.
    EXPECT_LE(mesh.avgLatency(1), mesh.avgLatency(0) + 1.0);
}

TEST(Mesh, NearestSliceTrafficTravelsFewHops)
{
    MeshConfig cfg;
    MeshNoc mesh(cfg);
    std::vector<unsigned> slices = {5, 6, 9, 10, 13, 14, 17, 18};
    NearestSliceTraffic t(0.2, slices, cfg.cols);
    const auto s = mesh.run(t, 5000);
    EXPECT_LT(s.avgHopCount, 2.2);
    EXPECT_GT(s.delivered, 0u);
}

TEST(Mesh, HotspotSaturatesBelowUniform)
{
    MeshConfig cfg;
    MeshNoc mesh(cfg);
    UniformTraffic u(0.8, mesh.nodes());
    const auto su = mesh.run(u, 5000);
    HotspotTraffic h(0.8, {0}); // single corner hotspot
    const auto sh = mesh.run(h, 5000);
    EXPECT_LT(sh.throughputBytesPerCycle(cfg.flitBytes),
              su.throughputBytesPerCycle(cfg.flitBytes));
}

TEST(MeshDeath, EmptyMeshRejected)
{
    MeshConfig cfg;
    cfg.rows = 0;
    EXPECT_DEATH(MeshNoc{cfg}, "empty mesh");
}

TEST(Ring, ClosedFormProperties)
{
    RingModel ring(RingConfig{8, 64, 1.0, 2.0});
    EXPECT_DOUBLE_EQ(ring.avgHops(), 2.0);
    EXPECT_DOUBLE_EQ(ring.unloadedLatencyCycles(), 4.0);
    // Loaded latency grows with utilization and blows up near 1.
    EXPECT_GT(ring.loadedLatencyCycles(0.9), ring.loadedLatencyCycles(0.5));
    EXPECT_GT(ring.loadedLatencyCycles(1.0), 1e12);
    EXPECT_GT(ring.saturationBytesPerSecPerNode(), 0.0);
}

/** Parameterized mesh sizes: basic sanity on any geometry. */
class MeshSizes
    : public testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(MeshSizes, LowLoadDeliversEverywhere)
{
    MeshConfig cfg;
    cfg.rows = GetParam().first;
    cfg.cols = GetParam().second;
    MeshNoc mesh(cfg);
    UniformTraffic t(0.05, mesh.nodes());
    const auto s = mesh.run(t, 4000);
    EXPECT_GT(s.delivered, 0.9 * s.injected);
}

INSTANTIATE_TEST_SUITE_P(Geometries, MeshSizes,
                         testing::Values(std::make_pair(2u, 2u),
                                         std::make_pair(1u, 8u),
                                         std::make_pair(6u, 4u),
                                         std::make_pair(8u, 8u)));

} // anonymous namespace
} // namespace noc
} // namespace ascend
