/**
 * @file
 * KV-cache decoder workload tests: phase graph shapes, decode-cycle
 * monotonicity in context length, the closed-form cache footprint
 * against the graph's own tensors and the LLC residency model, the
 * prefill-vs-decode crossover, and surrogate-tier accuracy on the
 * decoder's thin GEMV shapes.
 */

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "graph/decoder.hh"
#include "graph/lower.hh"
#include "memory/llc.hh"
#include "runtime/sim_session.hh"
#include "soc/training_soc.hh"
#include "surrogate/surrogate.hh"

using namespace ascend;

namespace {

/** A small decoder that keeps exact simulation fast. */
graph::DecoderConfig
smallDecoder()
{
    graph::DecoderConfig cfg;
    cfg.name = "tiny_decoder";
    cfg.batch = 1;
    cfg.hidden = 256;
    cfg.heads = 4;
    cfg.ffn = 1024;
    cfg.blocks = 2;
    cfg.vocab = 4096;
    return cfg;
}

runtime::SimSession
makeSession(surrogate::SurrogateOptions sur = {})
{
    return runtime::SimSession(
        soc::TrainingSoc().coreConfig(), {},
        std::make_shared<runtime::SimCache>(), {}, sur);
}

// ------------------------------------------------- graph shapes

TEST(DecoderGraphs, PhasesLowerToDifferentShapes)
{
    const graph::DecoderConfig cfg = smallDecoder();
    const graph::Graph prefill = graph::prefillGraph(cfg, 64);
    const graph::Graph decode = graph::decodeGraph(cfg, 65);
    EXPECT_NO_THROW(prefill.validate());
    EXPECT_NO_THROW(decode.validate());
    EXPECT_NE(prefill.fingerprint(), decode.fingerprint());

    // Decode carries 2 cache inputs per block next to the token.
    unsigned inputs = 0;
    for (const auto &t : decode.tensors)
        if (t.producer < 0)
            ++inputs;
    EXPECT_EQ(inputs, 1 + 2 * cfg.blocks);

    // Both phases are multi-output: logits plus 2 caches per block.
    EXPECT_EQ(prefill.outputs.size(), 1 + 2 * cfg.blocks);
    EXPECT_EQ(decode.outputs.size(), 1 + 2 * cfg.blocks);

    // Prefill runs big GEMMs (m = tokens); decode runs m = batch.
    const model::Network pn = graph::toNetwork(prefill);
    const model::Network dn = graph::toNetwork(decode);
    const auto gemmM = [](const model::Network &n,
                          const char *name) -> std::uint64_t {
        for (const auto &l : n.layers)
            if (l.name == name)
                return l.gemmM;
        return 0;
    };
    EXPECT_EQ(gemmM(pn, "blk0.qkv"), 64u);
    EXPECT_EQ(gemmM(dn, "blk0.qkv"), 1u);
}

TEST(DecoderGraphs, DecodeAttentionReadsTheWholeContext)
{
    const graph::DecoderConfig cfg = smallDecoder();
    const unsigned ctx = 100;
    const model::Network net =
        graph::toNetwork(graph::decodeGraph(cfg, ctx));
    for (const auto &l : net.layers)
        if (l.name == "blk0.scores") {
            EXPECT_EQ(l.gemmM, 1u);
            EXPECT_EQ(l.gemmN, ctx);
            EXPECT_EQ(l.gemmK, cfg.headDim());
            EXPECT_EQ(l.matmulCount,
                      std::uint64_t(cfg.batch) * cfg.heads);
            return;
        }
    FAIL() << "blk0.scores not lowered";
}

// -------------------------------------------------- monotonicity

TEST(DecoderCycles, DecodeMonotoneInContextLength)
{
    const graph::DecoderConfig cfg = smallDecoder();
    const runtime::SimSession session = makeSession();
    Cycles prev = 0;
    for (const unsigned ctx : {1u, 32u, 128u, 512u, 2048u}) {
        const Cycles c =
            graph::graphResult(session, graph::decodeGraph(cfg, ctx))
                .totalCycles;
        EXPECT_GE(c, prev) << "ctx " << ctx;
        prev = c;
    }
}

TEST(DecoderCycles, PrefillBeatsTokenByTokenReplay)
{
    // Prefill amortizes weight traffic over the whole prompt: one
    // prefill over n tokens must cost (much) less than n decode steps
    // at the same final context — the ratio bench_ratio_decoder
    // reports. One conservative bound that must always hold: prefill
    // over n tokens beats n times the *final* (largest) decode step.
    const graph::DecoderConfig cfg = smallDecoder();
    const unsigned n = 64;
    const runtime::SimSession session = makeSession();
    const Cycles prefill =
        graph::graphResult(session, graph::prefillGraph(cfg, n))
            .totalCycles;
    const Cycles decode =
        graph::graphResult(session, graph::decodeGraph(cfg, n))
            .totalCycles;
    EXPECT_LT(prefill, std::uint64_t(n) * decode);
}

// ------------------------------------------------- KV footprint

TEST(KvFootprint, ClosedFormMatchesTheGraphTensors)
{
    const graph::DecoderConfig cfg = smallDecoder();
    for (const unsigned ctx : {1u, 17u, 256u}) {
        const graph::Graph g = graph::decodeGraph(cfg, ctx);
        // Sum the updated-cache output tensors (every output except
        // the logits).
        Bytes cacheBytes = 0;
        for (const graph::TensorId t : g.outputs)
            if (g.tensors[t].name != "lm_head:0")
                cacheBytes += g.tensors[t].bytes();
        EXPECT_EQ(cacheBytes, graph::kvCacheBytes(cfg, ctx))
            << "ctx " << ctx;
    }
}

TEST(KvFootprint, ClosedFormScalesLinearly)
{
    const graph::DecoderConfig cfg = smallDecoder();
    const Bytes one = graph::kvCacheBytes(cfg, 1);
    EXPECT_EQ(graph::kvCacheBytes(cfg, 1000), 1000 * one);
    EXPECT_EQ(one, 2ull * cfg.blocks *
                       bytesOf(cfg.dtype, std::uint64_t(cfg.batch) *
                                              cfg.hidden));
}

TEST(KvResidency, ResidentCachesHitAndOverflowingCachesStream)
{
    const graph::DecoderConfig cfg = smallDecoder();
    memory::LlcConfig llc;
    llc.capacity = 4 * kMiB;
    llc.lineBytes = 4 * kKiB;
    llc.ways = 16;

    // Small context: the whole cache is LLC-resident; the re-read
    // after the warming sweep hits every line.
    const graph::KvResidency small =
        graph::kvResidency(cfg, 128, llc);
    EXPECT_TRUE(small.fits);
    EXPECT_DOUBLE_EQ(small.rereadHitRate, 1.0);
    EXPECT_EQ(small.kvBytes, graph::kvCacheBytes(cfg, 128));
    EXPECT_EQ(small.lines,
              (small.kvBytes + llc.lineBytes - 1) / llc.lineBytes);

    // Huge context: footprint exceeds capacity, and the linear
    // re-read thrashes LRU — the streaming worst case.
    const graph::KvResidency big =
        graph::kvResidency(cfg, 100000, llc);
    EXPECT_FALSE(big.fits);
    EXPECT_GT(big.kvBytes, llc.capacity);
    EXPECT_LT(big.rereadHitRate, 0.01);
}

TEST(KvResidency, CapacityLadderRecoversResidency)
{
    // The Section 4.1 story retold for KV caches: a context that
    // spills a 96 MB LLC fits the 720 MB 3D-SRAM tier.
    graph::DecoderConfig cfg;
    cfg.hidden = 4096;
    cfg.heads = 32;
    cfg.ffn = 16384;
    cfg.blocks = 32;

    memory::LlcConfig base;   // 96 MiB default
    memory::LlcConfig threeD; // the stacked-SRAM design point
    threeD.capacity = 720 * kMiB;

    const unsigned ctx = 256;
    const graph::KvResidency onBase =
        graph::kvResidency(cfg, ctx, base);
    const graph::KvResidency on3d =
        graph::kvResidency(cfg, ctx, threeD);
    EXPECT_FALSE(onBase.fits);
    EXPECT_TRUE(on3d.fits);
    EXPECT_DOUBLE_EQ(on3d.rereadHitRate, 1.0);
    EXPECT_GT(onBase.rereadHitRate, -1.0); // defined either way
}

// -------------------------------------------------- surrogate

TEST(DecoderSurrogate, PredictionsStayInsideTheErrorBudget)
{
    const graph::DecoderConfig cfg = smallDecoder();
    surrogate::SurrogateOptions sur;
    sur.enabled = true;
    sur.errBudget = 0.02;

    const runtime::SimSession exact = makeSession();
    const runtime::SimSession tiered = makeSession(sur);
    for (const unsigned ctx : {48u, 96u, 192u}) {
        const graph::Graph g = graph::decodeGraph(cfg, ctx);
        const double want = double(
            graph::graphResult(exact, g).totalCycles);
        const double got = double(
            graph::graphResult(tiered, g).totalCycles);
        EXPECT_LE(std::abs(got - want) / want, 0.02)
            << "ctx " << ctx;
    }
}

} // namespace
