/**
 * @file
 * Tests for the network container, the backward expansion, and the
 * model zoo: layer counts, total FLOPs and parameter volumes must
 * match the published figures for each architecture.
 */

#include <gtest/gtest.h>

#include "model/zoo.hh"

namespace ascend {
namespace model {
namespace {

TEST(Network, TotalsAccumulate)
{
    Network net;
    net.add(Layer::linear("a", 2, 3, 4));
    net.add(Layer::elementwise("e", 100));
    EXPECT_EQ(net.size(), 2u);
    EXPECT_EQ(net.totalFlops(), 2ull * 2 * 3 * 4 + 100);
    EXPECT_EQ(net.totalWeightBytes(), 3u * 4 * 2);
    EXPECT_GE(net.maxActivationBytes(), 200u);
}

TEST(Backward, GemmExpandsToDxDwUpdate)
{
    const Layer fwd = Layer::linear("fc", 32, 256, 512);
    const auto bwd = backwardLayers(fwd);
    ASSERT_EQ(bwd.size(), 3u);
    std::uint64_t m, k, n;
    bwd[0].lowerToGemm(m, k, n); // dX = dY * W^T
    EXPECT_EQ(m, 32u);
    EXPECT_EQ(k, 512u);
    EXPECT_EQ(n, 256u);
    bwd[1].lowerToGemm(m, k, n); // dW = X^T * dY
    EXPECT_EQ(m, 256u);
    EXPECT_EQ(k, 32u);
    EXPECT_EQ(n, 512u);
    EXPECT_EQ(bwd[2].kind, LayerKind::Elementwise);
    EXPECT_EQ(bwd[2].elems, 256u * 512);
    // Backward GEMM FLOPs are exactly 2x forward.
    EXPECT_EQ(bwd[0].flops() + bwd[1].flops(), 2 * fwd.flops());
}

TEST(Backward, ConvBackwardCarriesRawOverrides)
{
    const Layer fwd = Layer::conv2d("c", 2, 64, 56, 56, 64, 3, 1, 1);
    const auto bwd = backwardLayers(fwd);
    ASSERT_GE(bwd.size(), 2u);
    // dX output and dW input collapse to the raw activation volume.
    EXPECT_EQ(bwd[0].outputBytes(), fwd.inputBytes());
    EXPECT_EQ(bwd[1].inputBytes(), fwd.inputBytes());
    // Without the override these would be 9x larger (im2col).
    EXPECT_LT(9 * bwd[1].inputBytes(),
              10 * bytesOf(fwd.dtype, 2ull * 56 * 56 * 64 * 9));
}

TEST(Backward, VectorLayersExpandToVectorWork)
{
    EXPECT_EQ(backwardLayers(Layer::batchNorm("bn", 100)).size(), 2u);
    EXPECT_EQ(backwardLayers(Layer::softmax("s", 2, 8)).size(), 1u);
    EXPECT_EQ(backwardLayers(Layer::elementwise("e", 5)).size(), 1u);
    EXPECT_EQ(
        backwardLayers(Layer::pool2d("p", 1, 8, 8, 8, 2, 2)).size(), 1u);
    const auto dw = backwardLayers(
        Layer::depthwiseConv2d("d", 1, 8, 16, 16, 3, 1, 1));
    EXPECT_EQ(dw.size(), 3u);
    EXPECT_EQ(dw[0].kind, LayerKind::DepthwiseConv2d);
}

TEST(Backward, TrainingStepsCoverEveryLayer)
{
    const Network net = zoo::mobilenetV2(1);
    const auto steps = trainingSteps(net);
    EXPECT_EQ(steps.size(), net.size());
    for (std::size_t i = 0; i < steps.size(); ++i) {
        EXPECT_EQ(steps[i].fwd.name, net.layers[i].name);
        EXPECT_FALSE(steps[i].bwd.empty());
    }
}

TEST(Zoo, Resnet50Shape)
{
    const Network net = zoo::resnet50(1);
    // 53 convolutions (incl. downsamples), the FC, pools and the
    // vector layers in between.
    unsigned convs = 0;
    for (const Layer &l : net.layers)
        if (l.kind == LayerKind::Conv2d)
            ++convs;
    EXPECT_EQ(convs, 53u);
    // Published: ~4.1 GMACs = ~8.2 GFLOPs forward.
    EXPECT_NEAR(double(net.totalFlops()), 8.2e9, 1.0e9);
    // Published: ~25.5 M parameters.
    EXPECT_NEAR(double(net.totalWeightBytes()) / 2, 25.5e6, 2e6);
}

TEST(Zoo, Resnet50SpatialChainEndsAt7x7)
{
    const Network net = zoo::resnet50(1);
    const Layer *last_conv = nullptr;
    for (const Layer &l : net.layers)
        if (l.kind == LayerKind::Conv2d)
            last_conv = &l;
    ASSERT_NE(last_conv, nullptr);
    EXPECT_EQ(last_conv->outH(), 7u);
    EXPECT_EQ(last_conv->outC, 2048u);
}

TEST(Zoo, MobilenetV2Shape)
{
    const Network net = zoo::mobilenetV2(1);
    unsigned dw = 0;
    for (const Layer &l : net.layers)
        if (l.kind == LayerKind::DepthwiseConv2d)
            ++dw;
    EXPECT_EQ(dw, 17u); // one per inverted-residual block
    // Published: ~300 MMACs = ~0.6 GFLOPs.
    EXPECT_NEAR(double(net.totalFlops()), 0.62e9, 0.12e9);
    // Published: ~3.5 M parameters.
    EXPECT_NEAR(double(net.totalWeightBytes()) / 2, 3.5e6, 0.7e6);
}

TEST(Zoo, Vgg16Shape)
{
    const Network net = zoo::vgg16(1);
    unsigned convs = 0;
    for (const Layer &l : net.layers)
        if (l.kind == LayerKind::Conv2d)
            ++convs;
    EXPECT_EQ(convs, 13u);
    // Published: ~15.5 GMACs = ~31 GFLOPs.
    EXPECT_NEAR(double(net.totalFlops()), 31e9, 2e9);
    // Published: ~138 M parameters.
    EXPECT_NEAR(double(net.totalWeightBytes()) / 2, 138e6, 8e6);
}

TEST(Zoo, BertLargeShape)
{
    const Network net = zoo::bertLarge(1, 384);
    // Encoder-side parameters (~12.6 M per layer x 24).
    EXPECT_NEAR(double(net.parameterBytes()) / 2, 3.03e8, 0.2e8);
    unsigned softmaxes = 0;
    for (const Layer &l : net.layers)
        if (l.kind == LayerKind::Softmax)
            ++softmaxes;
    EXPECT_EQ(softmaxes, 24u);
    // Forward FLOPs for seq 384 are in the tens of GFLOPs.
    EXPECT_GT(net.totalFlops(), 5e10);
}

TEST(Zoo, BertBaseIsSmallerThanLarge)
{
    const Network base = zoo::bertBase(1, 128);
    const Network large = zoo::bertLarge(1, 128);
    EXPECT_LT(base.totalWeightBytes(), large.totalWeightBytes());
    EXPECT_LT(base.totalFlops(), large.totalFlops());
}

TEST(Zoo, BertBatchScalesTokens)
{
    const Network b1 = zoo::bertLarge(1, 128);
    const Network b4 = zoo::bertLarge(4, 128);
    EXPECT_NEAR(double(b4.totalFlops()), 4.0 * double(b1.totalFlops()),
                0.05 * double(b4.totalFlops()));
    // True parameters are batch-invariant; attention K/V operands
    // (counted by totalWeightBytes) are not.
    EXPECT_EQ(b1.parameterBytes(), b4.parameterBytes());
    EXPECT_LT(b1.totalWeightBytes(), b4.totalWeightBytes());
}

TEST(Zoo, GestureNetIsInt8AndTiny)
{
    const Network net = zoo::gestureNet(1);
    for (const Layer &l : net.layers)
        EXPECT_EQ(l.dtype, DataType::Int8) << l.name;
    EXPECT_LT(net.totalFlops(), 50e6);   // always-on budget
    EXPECT_LT(net.totalWeightBytes(), 200 * kKiB);
}

TEST(Zoo, AllNetworksHavePositiveVolumesEverywhere)
{
    for (const Network &net :
         {zoo::resnet50(2), zoo::mobilenetV2(2), zoo::vgg16(1),
          zoo::bertBase(1, 64), zoo::gestureNet(2)}) {
        for (const Layer &l : net.layers) {
            EXPECT_GT(l.flops(), 0u) << net.name << ":" << l.name;
            EXPECT_GT(l.inputBytes(), 0u) << net.name << ":" << l.name;
            EXPECT_GT(l.outputBytes(), 0u) << net.name << ":" << l.name;
        }
    }
}

TEST(ZooDeath, ZeroBatchIsRejected)
{
    EXPECT_DEATH(zoo::resnet50(0), "batch");
}

/** Batch scaling property across the CNN zoo. */
class ZooBatchScaling : public testing::TestWithParam<unsigned>
{
};

TEST_P(ZooBatchScaling, FlopsScaleLinearly)
{
    const unsigned b = GetParam();
    const double one = double(zoo::resnet50(1).totalFlops());
    const double many = double(zoo::resnet50(b).totalFlops());
    EXPECT_NEAR(many, b * one, 0.01 * many);
}

INSTANTIATE_TEST_SUITE_P(Batches, ZooBatchScaling,
                         testing::Values(2u, 4u, 8u));

} // anonymous namespace
} // namespace model
} // namespace ascend
