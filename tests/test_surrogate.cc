/**
 * @file
 * Tests of the surrogate cost-model tier: option parsing and
 * fingerprinting, the anchor grid, SimCache export and layer-key
 * round-tripping, prediction accuracy against the exact simulator,
 * the fallback rules (quantized axes, spot checks), and the cache
 * namespacing that keeps predicted results from ever aliasing exact
 * ones.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "model/layer.hh"
#include "runtime/sim_cache.hh"
#include "runtime/sim_session.hh"
#include "soc/training_soc.hh"
#include "surrogate/surrogate.hh"

using namespace ascend;

namespace {

/** Scoped environment override; restores (unsets) on destruction. */
struct EnvGuard
{
    std::string name;
    EnvGuard(const std::string &n, const std::string &v) : name(n)
    {
        ::setenv(n.c_str(), v.c_str(), 1);
    }
    ~EnvGuard() { ::unsetenv(name.c_str()); }
};

arch::CoreConfig
coreConfig()
{
    return soc::TrainingSoc().coreConfig();
}

/** A session with a private cache and the given surrogate options. */
runtime::SimSession
makeSession(const surrogate::SurrogateOptions &sur,
            std::shared_ptr<runtime::SimCache> cache = nullptr)
{
    return runtime::SimSession(
        coreConfig(), {},
        cache ? std::move(cache)
              : std::make_shared<runtime::SimCache>(),
        {}, sur);
}

// -------------------------------------------------------- options

TEST(SurrogateOptions, DefaultsAreOff)
{
    const surrogate::SurrogateOptions def;
    EXPECT_FALSE(def.enabled);
    EXPECT_DOUBLE_EQ(def.errBudget, 0.02);
    EXPECT_FALSE(surrogate::SurrogateOptions::fromEnv().enabled);
}

TEST(SurrogateOptions, FromEnvParsesTheKnobs)
{
    {
        EnvGuard on("ASCEND_SURROGATE", "1");
        EXPECT_TRUE(surrogate::SurrogateOptions::fromEnv().enabled);
    }
    {
        EnvGuard err("ASCEND_SURROGATE_ERR", "0.05");
        const auto opts = surrogate::SurrogateOptions::fromEnv();
        EXPECT_TRUE(opts.enabled); // setting a budget implies on
        EXPECT_DOUBLE_EQ(opts.errBudget, 0.05);
    }
    {
        EnvGuard on("ASCEND_SURROGATE", "1");
        EnvGuard spot("ASCEND_SURROGATE_SPOT", "16");
        EXPECT_EQ(surrogate::SurrogateOptions::fromEnv()
                      .spotCheckPeriod,
                  16u);
    }
    EXPECT_FALSE(surrogate::SurrogateOptions::fromEnv().enabled);
}

TEST(SurrogateOptions, FingerprintSeparatesEveryKnob)
{
    surrogate::SurrogateOptions a;
    a.enabled = true;
    surrogate::SurrogateOptions b = a;
    EXPECT_EQ(surrogate::fingerprint(a), surrogate::fingerprint(b));

    b.errBudget = 0.01;
    EXPECT_NE(surrogate::fingerprint(a), surrogate::fingerprint(b));
    b = a;
    b.gridStepsPerOctave = 8;
    EXPECT_NE(surrogate::fingerprint(a), surrogate::fingerprint(b));
    b = a;
    b.spotCheckPeriod = 7;
    EXPECT_NE(surrogate::fingerprint(a), surrogate::fingerprint(b));
    b = a;
    b.minPredictFlops = 1e5;
    EXPECT_NE(surrogate::fingerprint(a), surrogate::fingerprint(b));
}

// ----------------------------------------------------------- grid

TEST(SurrogateGrid, ValuesDoubleEveryOctaveAndFloorBrackets)
{
    const surrogate::SurrogateOptions opts;
    const surrogate::Surrogate sur(opts);
    const long g = long(opts.gridStepsPerOctave);

    // Octave boundaries are exact powers of two; between them the
    // grid is strictly increasing with a bounded ratio (the exact
    // 2^(1/g) spacing plus integer-rounding slack at small values).
    for (long k = 2; k <= 16; ++k)
        EXPECT_EQ(sur.gridValue(k * g), std::uint64_t(1) << k);
    for (long j = 2 * g; j < 16 * g; ++j) {
        EXPECT_LT(sur.gridValue(j), sur.gridValue(j + 1));
        const double ratio = double(sur.gridValue(j + 1)) /
                             double(sur.gridValue(j));
        EXPECT_LE(ratio, std::exp2(1.0 / double(g)) + 0.26);
    }
    for (std::uint64_t w = opts.minQuantize; w <= 5000; ++w) {
        const long jlo = sur.gridFloor(w);
        EXPECT_LE(sur.gridValue(jlo), w);
        EXPECT_GT(sur.gridValue(jlo + 1), w);
    }
}

// ------------------------------------------- cache export / parse

TEST(SimCacheExport, LayerFingerprintRoundTrips)
{
    const std::vector<model::Layer> layers = {
        model::Layer::linear("a", 640, 1024, 768),
        model::Layer::conv2d("b", 4, 64, 56, 56, 128, 3, 1, 1),
        model::Layer::softmax("c", 4096, 512),
        model::Layer::elementwise("d", 1 << 20),
        model::Layer::batchedMatmul("e", 12, 128, 64, 128),
        model::Layer::cvOp("f", 500000, 7.5),
    };
    for (const model::Layer &l : layers) {
        const std::string key =
            "cfg:whatever;" + runtime::fingerprint(l);
        model::Layer parsed;
        ASSERT_TRUE(runtime::parseLayerFingerprint(key, parsed))
            << key;
        EXPECT_EQ(runtime::fingerprint(parsed),
                  runtime::fingerprint(l));
    }
    model::Layer scratch;
    EXPECT_FALSE(runtime::parseLayerFingerprint("no layer here",
                                                scratch));
    EXPECT_FALSE(runtime::parseLayerFingerprint("lay:1,2,3", scratch));
}

TEST(SimCacheExport, ForEachExportsEveryStoredPair)
{
    auto cache = std::make_shared<runtime::SimCache>();
    const runtime::SimSession session =
        makeSession(surrogate::SurrogateOptions{}, cache);
    const std::vector<model::Layer> layers = {
        model::Layer::linear("a", 512, 512, 512),
        model::Layer::linear("b", 1024, 512, 512),
        model::Layer::elementwise("c", 1 << 22),
    };
    std::vector<core::SimResult> expected;
    for (const model::Layer &l : layers)
        expected.push_back(session.runLayer(l));

    std::map<std::string, core::SimResult> seen;
    cache->forEach([&](const std::string &key,
                       const core::SimResult &r) { seen[key] = r; });
    ASSERT_EQ(seen.size(), layers.size());
    for (std::size_t i = 0; i < layers.size(); ++i) {
        bool found = false;
        for (const auto &[key, r] : seen) {
            model::Layer parsed;
            if (!runtime::parseLayerFingerprint(key, parsed) ||
                runtime::fingerprint(parsed) !=
                    runtime::fingerprint(layers[i]))
                continue;
            found = true;
            EXPECT_EQ(r.totalCycles, expected[i].totalCycles);
            EXPECT_EQ(r.instrsExecuted, expected[i].instrsExecuted);
        }
        EXPECT_TRUE(found) << layers[i].name;
    }
}

// ----------------------------------------------- prediction tiers

TEST(SurrogateTier, PredictionsStayWithinBudgetOnASweep)
{
    surrogate::SurrogateOptions sur;
    sur.enabled = true;
    sur.spotCheckPeriod = 0; // measure every prediction ourselves
    const runtime::SimSession pred = makeSession(sur);
    const runtime::SimSession exact =
        makeSession(surrogate::SurrogateOptions{});

    unsigned predicted = 0;
    for (std::uint64_t m = 1100; m <= 2400; m += 50) {
        const model::Layer l =
            model::Layer::linear("m", m, 1024, 1024);
        surrogate::Outcome oc;
        const core::SimResult p = pred.runLayer(l, &oc);
        const core::SimResult e = exact.runLayer(l);
        if (oc != surrogate::Outcome::Predicted) {
            EXPECT_EQ(p.totalCycles, e.totalCycles);
            continue;
        }
        ++predicted;
        const double rel =
            std::abs(double(p.totalCycles) - double(e.totalCycles)) /
            double(e.totalCycles);
        EXPECT_LE(rel, sur.errBudget) << "m=" << m;
    }
    EXPECT_GE(predicted, 10u);
}

TEST(SurrogateTier, OnGridQueryIsAnAnchorAndExact)
{
    surrogate::SurrogateOptions sur;
    sur.enabled = true;
    const runtime::SimSession pred = makeSession(sur);
    const runtime::SimSession exact =
        makeSession(surrogate::SurrogateOptions{});

    const model::Layer l =
        model::Layer::linear("grid", 2048, 1024, 1024);
    surrogate::Outcome oc;
    const core::SimResult p = pred.runLayer(l, &oc);
    EXPECT_EQ(oc, surrogate::Outcome::Anchor);
    EXPECT_TRUE(surrogate::isExactOutcome(oc));
    EXPECT_EQ(p.totalCycles, exact.runLayer(l).totalCycles);
}

TEST(SurrogateTier, QuantizedAxisFallsBackToExact)
{
    surrogate::SurrogateOptions sur;
    sur.enabled = true;
    const runtime::SimSession pred = makeSession(sur);
    const runtime::SimSession exact =
        makeSession(surrogate::SurrogateOptions{});

    // m = 560: the cube tile rounds m up in steps of 16, a ~2.9%
    // staircase — coarser than the 2% budget, so the trust hull must
    // refuse to interpolate and hand the query to the simulator.
    const model::Layer l =
        model::Layer::linear("stairs", 560, 1024, 1024);
    surrogate::Outcome oc;
    const core::SimResult p = pred.runLayer(l, &oc);
    EXPECT_EQ(oc, surrogate::Outcome::FallbackHull);
    EXPECT_EQ(p.totalCycles, exact.runLayer(l).totalCycles);
}

TEST(SurrogateTier, SmallLayersFallBackToExact)
{
    surrogate::SurrogateOptions sur;
    sur.enabled = true;
    const runtime::SimSession pred = makeSession(sur);

    surrogate::Outcome oc;
    pred.runLayer(model::Layer::linear("tiny", 33, 40, 48), &oc);
    EXPECT_EQ(oc, surrogate::Outcome::FallbackSmall);
}

TEST(SurrogateTier, ByteOverridesAreOutsideTheHull)
{
    surrogate::SurrogateOptions sur;
    sur.enabled = true;
    const runtime::SimSession pred = makeSession(sur);

    model::Layer l = model::Layer::linear("ovr", 1250, 1024, 1024);
    l.inputBytesOverride = 123456789;
    surrogate::Outcome oc;
    pred.runLayer(l, &oc);
    EXPECT_EQ(oc, surrogate::Outcome::FallbackHull);
}

TEST(SurrogateTier, SpotCheckPeriodOneMakesEveryQueryExact)
{
    surrogate::SurrogateOptions sur;
    sur.enabled = true;
    sur.spotCheckPeriod = 1;
    const runtime::SimSession pred = makeSession(sur);
    const runtime::SimSession exact =
        makeSession(surrogate::SurrogateOptions{});

    for (std::uint64_t m = 1100; m <= 1600; m += 100) {
        const model::Layer l =
            model::Layer::linear("spot", m, 1024, 1024);
        surrogate::Outcome oc;
        const core::SimResult p = pred.runLayer(l, &oc);
        EXPECT_TRUE(surrogate::isExactOutcome(oc))
            << surrogate::toString(oc);
        EXPECT_EQ(p.totalCycles, exact.runLayer(l).totalCycles);
    }
}

TEST(SurrogateTier, RepeatQueryIsServedFromTheCache)
{
    surrogate::SurrogateOptions sur;
    sur.enabled = true;
    sur.spotCheckPeriod = 0;
    const runtime::SimSession pred = makeSession(sur);

    const model::Layer l =
        model::Layer::linear("rep", 1250, 1024, 1024);
    surrogate::Outcome first, second;
    const core::SimResult a = pred.runLayer(l, &first);
    const core::SimResult b = pred.runLayer(l, &second);
    EXPECT_EQ(first, surrogate::Outcome::Predicted);
    EXPECT_EQ(second, surrogate::Outcome::CacheHit);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
}

// ------------------------------------------ determinism and keys

TEST(SurrogateDeterminism, QueryOrderDoesNotChangeResults)
{
    std::vector<model::Layer> layers;
    for (std::uint64_t m = 1100; m <= 2400; m += 100)
        layers.push_back(model::Layer::linear("o", m, 1024, 1024));

    surrogate::SurrogateOptions sur;
    sur.enabled = true;

    const runtime::SimSession fwd = makeSession(sur);
    std::map<std::string, std::uint64_t> forward;
    for (const model::Layer &l : layers)
        forward[runtime::fingerprint(l)] =
            fwd.runLayer(l).totalCycles;

    const runtime::SimSession rev = makeSession(sur);
    std::reverse(layers.begin(), layers.end());
    for (const model::Layer &l : layers)
        EXPECT_EQ(rev.runLayer(l).totalCycles,
                  forward[runtime::fingerprint(l)])
            << l.gemmM;
}

TEST(SurrogateDeterminism, PredictionsNeverAliasExactEntries)
{
    // One shared cache, two sessions: the surrogate session predicts
    // a shape, then a plain session asks for the same shape. The
    // plain session must run (and get) the exact simulation — the
    // prediction lives under a surrogate-fingerprinted key and can
    // never shadow the exact one.
    auto cache = std::make_shared<runtime::SimCache>();
    surrogate::SurrogateOptions sur;
    sur.enabled = true;
    sur.spotCheckPeriod = 0;
    const runtime::SimSession pred = makeSession(sur, cache);
    const runtime::SimSession plain =
        makeSession(surrogate::SurrogateOptions{}, cache);

    const model::Layer l =
        model::Layer::linear("alias", 1250, 1024, 1024);
    surrogate::Outcome oc;
    const core::SimResult predicted = pred.runLayer(l, &oc);
    ASSERT_EQ(oc, surrogate::Outcome::Predicted);

    const core::SimResult viaShared = plain.runLayer(l);
    const core::SimResult reference =
        makeSession(surrogate::SurrogateOptions{}).runLayer(l);
    EXPECT_EQ(viaShared.totalCycles, reference.totalCycles);
    EXPECT_EQ(viaShared.instrsExecuted, reference.instrsExecuted);
    // And the prediction itself was a genuine interpolation, not a
    // cache echo of the exact value.
    EXPECT_NE(predicted.totalCycles, 0u);
}

TEST(SurrogateDeterminism, DisabledSessionMatchesPlainSession)
{
    const runtime::SimSession off =
        makeSession(surrogate::SurrogateOptions{});
    const runtime::SimSession plain(coreConfig(), {},
                                    std::make_shared<runtime::SimCache>());
    for (std::uint64_t m : {600u, 1250u, 2048u}) {
        const model::Layer l =
            model::Layer::linear("off", m, 1024, 1024);
        surrogate::Outcome oc;
        EXPECT_EQ(off.runLayer(l, &oc).totalCycles,
                  plain.runLayer(l).totalCycles);
        EXPECT_EQ(oc, surrogate::Outcome::Disabled);
    }
}

} // namespace
