/**
 * @file
 * Tests of the fault-injection and resilience layer: schedule
 * determinism, the zero-fault bit-for-bit contract of every
 * fault-aware path (collectives, chip sim, DRAM ECC, SimSession),
 * recovery-policy arithmetic, and degraded-mode behavior.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "cluster/fault_collective.hh"
#include "memory/dram.hh"
#include "model/zoo.hh"
#include "resilience/fault_schedule.hh"
#include "resilience/policy.hh"
#include "runtime/sim_session.hh"
#include "soc/chip_sim.hh"

using namespace ascend;
using resilience::ChipFaultPlan;
using resilience::CheckpointPolicy;
using resilience::DegradedMode;
using resilience::FaultEvent;
using resilience::FaultKind;
using resilience::FaultSchedule;
using resilience::FaultSpec;
using resilience::RetryPolicy;

namespace {

FaultSpec
linkFaultSpec(double down_rate, double degrade_rate = 0)
{
    FaultSpec spec;
    spec.seed = 42;
    spec.horizonSec = 10.0;
    spec.links = 8;
    spec.linkDownPerSec = down_rate;
    spec.linkDegradePerSec = degrade_rate;
    return spec;
}

TEST(FaultSchedule, SameSeedSameSchedule)
{
    FaultSpec spec;
    spec.seed = 7;
    spec.cores = 16;
    spec.links = 4;
    spec.coreTransientPerSec = 3.0;
    spec.corePermanentPerSec = 0.5;
    spec.linkDownPerSec = 2.0;
    spec.stragglerFraction = 0.25;

    const FaultSchedule a = FaultSchedule::generate(spec);
    const FaultSchedule b = FaultSchedule::generate(spec);
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].target, b.events()[i].target);
        EXPECT_EQ(a.events()[i].timeSec, b.events()[i].timeSec);
        EXPECT_EQ(a.events()[i].durationSec, b.events()[i].durationSec);
        EXPECT_EQ(a.events()[i].severity, b.events()[i].severity);
    }
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(FaultSchedule, DifferentSeedsDiffer)
{
    FaultSpec spec;
    spec.cores = 8;
    spec.coreTransientPerSec = 5.0;
    spec.seed = 1;
    const FaultSchedule a = FaultSchedule::generate(spec);
    spec.seed = 2;
    const FaultSchedule b = FaultSchedule::generate(spec);
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    bool any_differs = a.events().size() != b.events().size();
    for (std::size_t i = 0;
         !any_differs && i < a.events().size(); ++i)
        any_differs = a.events()[i].timeSec != b.events()[i].timeSec;
    EXPECT_TRUE(any_differs);
}

TEST(FaultSchedule, ZeroRatesYieldEmptySchedule)
{
    FaultSpec spec;
    spec.cores = 32;
    spec.links = 32;
    EXPECT_TRUE(spec.empty());
    const FaultSchedule s = FaultSchedule::generate(spec);
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(ChipFaultPlan::fromSchedule(s, 32).empty());
}

TEST(FaultSchedule, EventsSortedAndWithinHorizon)
{
    FaultSpec spec;
    spec.cores = 8;
    spec.links = 8;
    spec.horizonSec = 2.0;
    spec.coreTransientPerSec = 4.0;
    spec.linkDownPerSec = 3.0;
    spec.linkDegradePerSec = 2.0;
    const FaultSchedule s = FaultSchedule::generate(spec);
    ASSERT_FALSE(s.empty());
    for (std::size_t i = 0; i < s.events().size(); ++i) {
        EXPECT_GE(s.events()[i].timeSec, 0.0);
        EXPECT_LT(s.events()[i].timeSec, spec.horizonSec);
        if (i) {
            EXPECT_LE(s.events()[i - 1].timeSec, s.events()[i].timeSec);
        }
    }
    // Per-target filters partition the schedule.
    std::size_t filtered = 0;
    for (unsigned c = 0; c < spec.cores; ++c)
        filtered += s.coreEvents(c).size();
    for (unsigned l = 0; l < spec.links; ++l)
        filtered += s.linkEvents(l).size();
    EXPECT_EQ(filtered, s.events().size());
}

TEST(FaultSchedule, StragglerFractionBounds)
{
    FaultSpec spec;
    spec.cores = 64;
    spec.stragglerFraction = 1.0; // every core is slow
    spec.stragglerSlowdown = 2.0;
    const FaultSchedule s = FaultSchedule::generate(spec);
    for (unsigned c = 0; c < spec.cores; ++c)
        EXPECT_EQ(s.stragglerFactor(c), 2.0);
    spec.stragglerFraction = 0.0;
    const FaultSchedule none = FaultSchedule::generate(spec);
    for (unsigned c = 0; c < spec.cores; ++c)
        EXPECT_EQ(none.stragglerFactor(c), 1.0);
}

TEST(Policy, BackoffGrowsAndSaturates)
{
    RetryPolicy p;
    p.backoffBaseSec = 1e-4;
    p.backoffMultiplier = 2.0;
    p.backoffCapSec = 5e-4;
    EXPECT_DOUBLE_EQ(resilience::retryDelaySeconds(p, 0), 1e-4);
    EXPECT_DOUBLE_EQ(resilience::retryDelaySeconds(p, 1), 2e-4);
    EXPECT_DOUBLE_EQ(resilience::retryDelaySeconds(p, 2), 4e-4);
    EXPECT_DOUBLE_EQ(resilience::retryDelaySeconds(p, 3), 5e-4); // cap
    EXPECT_DOUBLE_EQ(resilience::retryDelaySeconds(p, 30), 5e-4);
}

TEST(Policy, BackoffIsMonotoneAndSaturatesExactly)
{
    RetryPolicy p;
    p.backoffBaseSec = 1e-4;
    p.backoffMultiplier = 3.0;
    p.backoffCapSec = 0.25;

    // Property: non-decreasing in attempt, never above the cap.
    double prev = 0;
    for (unsigned a = 0; a < 64; ++a) {
        const double d = resilience::retryDelaySeconds(p, a);
        EXPECT_GE(d, prev);
        EXPECT_LE(d, p.backoffCapSec);
        prev = d;
    }

    // Huge attempt numbers saturate *exactly* at the cap: the growth
    // loop must stop at the crossing instead of multiplying 2^32
    // times into inf.
    for (unsigned a : {64u, 1u << 20, 0x80000000u, 0xffffffffu}) {
        const double d = resilience::retryDelaySeconds(p, a);
        EXPECT_FALSE(std::isinf(d));
        EXPECT_EQ(d, p.backoffCapSec);
    }

    // A non-growing multiplier keeps the base delay, even at the
    // largest attempt (no O(attempt) spin to no effect).
    p.backoffMultiplier = 1.0;
    EXPECT_EQ(resilience::retryDelaySeconds(p, 0xffffffffu), 1e-4);
    p.backoffMultiplier = 0.5;
    EXPECT_EQ(resilience::retryDelaySeconds(p, 0xffffffffu), 1e-4);

    // A base above the cap clamps from attempt zero on.
    p.backoffMultiplier = 2.0;
    p.backoffBaseSec = 1.0;
    p.backoffCapSec = 0.3;
    EXPECT_EQ(resilience::retryDelaySeconds(p, 0), 0.3);

    // A zero base stays zero forever.
    p.backoffBaseSec = 0.0;
    EXPECT_EQ(resilience::retryDelaySeconds(p, 1000), 0.0);
}

TEST(Policy, CumulativeRetryDelayIsExactAndClosedForm)
{
    RetryPolicy p;
    p.timeoutSec = 1e-3;
    p.backoffBaseSec = 1e-4;
    p.backoffMultiplier = 2.0;
    p.backoffCapSec = 5e-4;

    // Exactly the running sum of per-attempt delays.
    EXPECT_DOUBLE_EQ(resilience::retryCumulativeSeconds(p, 0), 0.0);
    double sum = 0;
    for (unsigned n = 0; n < 40; ++n) {
        sum += p.timeoutSec + resilience::retryDelaySeconds(p, n);
        EXPECT_NEAR(resilience::retryCumulativeSeconds(p, n + 1), sum,
                    1e-15 * double(n + 1));
    }

    // Closed-form over the saturated tail: astronomically many
    // attempts stay finite and linear in the cap, never an
    // O(attempts) loop or an overflow to inf.
    const double huge =
        resilience::retryCumulativeSeconds(p, 0xffffffffu);
    EXPECT_FALSE(std::isinf(huge));
    EXPECT_NEAR(huge,
                double(0xffffffffu) * (p.timeoutSec + p.backoffCapSec),
                1e-3 * huge);
}

TEST(Policy, DeadlineBudgetCapsRetriesAcrossTheKnobGrid)
{
    // Property sweep over cap saturation x deadline budget: the
    // number of permitted retries is exactly the largest n with
    // cumulative delay within the budget, retryPermitted agrees
    // attempt by attempt, and both respect maxRetries.
    const double caps[] = {5e-5, 5e-4, 1e-1};
    const double budgets[] = {0.0,  1e-4, 2e-3, 1e-2,
                              0.05, 1.0,  1e9};
    for (double cap : caps) {
        for (double budget : budgets) {
            RetryPolicy p;
            p.maxRetries = 6;
            p.timeoutSec = 3e-4;
            p.backoffBaseSec = 1e-4;
            p.backoffMultiplier = 2.0;
            p.backoffCapSec = cap;
            p.giveUpAfterSeconds = budget;

            const unsigned n = resilience::retriesWithinBudget(p);
            EXPECT_LE(n, p.maxRetries);
            if (budget <= 0.0) {
                // 0 disables the budget: maxRetries alone rules.
                EXPECT_EQ(n, p.maxRetries);
            } else {
                EXPECT_LE(resilience::retryCumulativeSeconds(p, n),
                          budget);
                if (n < p.maxRetries) {
                    EXPECT_GT(
                        resilience::retryCumulativeSeconds(p, n + 1),
                        budget);
                }
            }
            for (unsigned a = 0; a <= p.maxRetries + 2; ++a)
                EXPECT_EQ(resilience::retryPermitted(p, a), a < n)
                    << "cap " << cap << " budget " << budget
                    << " attempt " << a;
        }
    }
}

TEST(Policy, JitterOnlyShrinksAndPreservesClosedForms)
{
    RetryPolicy p;
    p.timeoutSec = 1e-3;
    p.backoffBaseSec = 1e-4;
    p.backoffMultiplier = 2.0;
    p.backoffCapSec = 5e-4;
    p.jitterFraction = 0.5;
    p.jitterSeed = 1234;

    // Property grid over (key, attempt): jitter only ever shrinks a
    // sleep, so retryCumulativeSeconds stays a valid upper bound on
    // any jittered schedule and the budget closed forms still hold.
    for (std::uint64_t key : {0ull, 7ull, 0xdeadbeefull,
                              (1ull << 48) + 12ull}) {
        double jittered_sum = 0;
        double nominal_sum = 0;
        for (unsigned a = 0; a < 12; ++a) {
            const double nominal =
                resilience::retryDelaySeconds(p, a);
            const double jittered =
                resilience::retryDelaySecondsJittered(p, a, key);
            EXPECT_LE(jittered, nominal);
            EXPECT_GE(jittered,
                      nominal * (1.0 - p.jitterFraction));
            jittered_sum += p.timeoutSec + jittered;
            nominal_sum += p.timeoutSec + nominal;
            // Deterministic: same (policy, key, attempt) -> same bits.
            EXPECT_EQ(jittered, resilience::retryDelaySecondsJittered(
                                    p, a, key));
        }
        EXPECT_LE(jittered_sum,
                  resilience::retryCumulativeSeconds(p, 12));
        EXPECT_GE(jittered_sum,
                  nominal_sum - p.jitterFraction *
                                    (nominal_sum -
                                     12.0 * p.timeoutSec));
    }

    // Different keys de-synchronize: at least one attempt differs.
    bool differs = false;
    for (unsigned a = 0; a < 12 && !differs; ++a)
        differs = resilience::retryDelaySecondsJittered(p, a, 1) !=
                  resilience::retryDelaySecondsJittered(p, a, 2);
    EXPECT_TRUE(differs);

    // Fraction 0 (the default) is bit-identical to the nominal path.
    p.jitterFraction = 0;
    for (unsigned a = 0; a < 12; ++a)
        EXPECT_EQ(resilience::retryDelaySecondsJittered(p, a, 99),
                  resilience::retryDelaySeconds(p, a));

    // Fractions above 1 clamp: never a negative sleep.
    p.jitterFraction = 7.0;
    for (unsigned a = 0; a < 12; ++a)
        EXPECT_GE(resilience::retryDelaySecondsJittered(p, a, 3),
                  0.0);
}

TEST(Policy, TightDeadlineForbidsEvenTheFirstRetry)
{
    RetryPolicy p;
    p.maxRetries = 5;
    p.timeoutSec = 1e-3;
    p.backoffBaseSec = 1e-4;
    p.giveUpAfterSeconds = 5e-4; // below one attempt's cost
    EXPECT_EQ(resilience::retriesWithinBudget(p), 0u);
    EXPECT_FALSE(resilience::retryPermitted(p, 0));

    // A budget exactly at the first attempt's cost admits it: the
    // contract is "within", not "strictly under".
    p.giveUpAfterSeconds = p.timeoutSec + p.backoffBaseSec;
    EXPECT_EQ(resilience::retriesWithinBudget(p), 1u);
    EXPECT_TRUE(resilience::retryPermitted(p, 0));
    EXPECT_FALSE(resilience::retryPermitted(p, 1));
}

TEST(Policy, CheckpointRestartExactWithoutFaults)
{
    CheckpointPolicy off;
    // The no-fault, no-checkpoint case must be *exactly* the work
    // time, not work + 0.0-shaped noise.
    EXPECT_EQ(resilience::timeWithCheckpointRestart(123.456, 0.0, off),
              123.456);

    CheckpointPolicy on;
    on.enabled = true;
    on.intervalSec = 10;
    on.saveSec = 1;
    // Checkpoint overhead alone: one saveSec per interval of work.
    EXPECT_DOUBLE_EQ(
        resilience::timeWithCheckpointRestart(100.0, 0.0, on), 110.0);
    // Faults make it strictly worse; checkpoints bound the rework.
    const double faulty_on =
        resilience::timeWithCheckpointRestart(100.0, 0.01, on);
    const double faulty_off =
        resilience::timeWithCheckpointRestart(100.0, 0.01, off);
    EXPECT_GT(faulty_on, 110.0);
    EXPECT_GT(faulty_off, 100.0);
    EXPECT_LT(faulty_on, faulty_off); // checkpointing pays off here
}

TEST(FaultCollective, EmptyScheduleBitwiseEqualsFaultFree)
{
    const FaultSchedule none;
    const RetryPolicy retry;
    const Bytes bytes = 64 * kMiB;
    for (auto algo : {cluster::CollectiveAlgo::Ring,
                      cluster::CollectiveAlgo::HalvingDoubling,
                      cluster::CollectiveAlgo::Tree}) {
        for (unsigned n : {2u, 7u, 16u, 256u}) {
            const double expect = cluster::allreduceAlgoSeconds(
                algo, bytes, n, 12.5e9, 5e-6);
            const cluster::FaultyCollectiveResult r =
                cluster::allreduceWithFaults(
                    algo, bytes, n, 12.5e9, 5e-6, none, retry,
                    DegradedMode::ContinueDegraded);
            EXPECT_EQ(r.seconds, expect); // bit-for-bit
            EXPECT_EQ(r.penaltySeconds, 0.0);
            EXPECT_EQ(r.retries, 0u);
            EXPECT_TRUE(r.completed);
        }
    }
}

TEST(FaultCollective, EmptyScheduleHierarchicalBitwise)
{
    const FaultSchedule none;
    const RetryPolicy retry;
    cluster::ClusterConfig cl;
    cl.servers = 16;
    const Bytes bytes = 97 * kMiB + 3; // odd size on purpose
    const double expect = cluster::hierarchicalAllreduceSeconds(cl, bytes);
    const cluster::FaultyCollectiveResult r =
        cluster::hierarchicalAllreduceWithFaults(
            cl, bytes, none, retry, DegradedMode::ContinueDegraded);
    EXPECT_EQ(r.seconds, expect);
    EXPECT_EQ(r.penaltySeconds, 0.0);
}

TEST(FaultCollective, EmptyScheduleStepSecondsBitwise)
{
    const FaultSchedule none;
    const RetryPolicy retry;
    cluster::ClusterConfig cl;
    cl.servers = 64;
    cluster::TrainingJob job;
    job.stepSecondsPerChip = 0.05;
    job.gradientBytes = 50 * kMiB;
    job.samplesPerChipStep = 32;
    for (unsigned chips : {1u, 4u, 8u, 64u, 512u}) {
        const double expect = cluster::stepSeconds(job, cl, chips);
        const cluster::FaultyCollectiveResult r =
            cluster::stepSecondsWithFaults(
                job, cl, chips, none, retry,
                DegradedMode::ContinueDegraded);
        EXPECT_EQ(r.seconds, expect) << chips << " chips";
        EXPECT_EQ(cluster::throughputSamplesPerSecWithFaults(
                      job, cl, chips, none, retry,
                      DegradedMode::ContinueDegraded),
                  cluster::throughputSamplesPerSec(job, cl, chips))
            << chips << " chips";
    }
}

TEST(FaultCollective, LinkOutagesCostTimeAndRetries)
{
    const RetryPolicy retry;
    const FaultSchedule faults =
        FaultSchedule::generate(linkFaultSpec(20.0));
    ASSERT_FALSE(faults.empty());
    const Bytes bytes = 256 * kMiB;
    const double clean = cluster::allreduceAlgoSeconds(
        cluster::CollectiveAlgo::Ring, bytes, 8, 12.5e9, 5e-6);
    const cluster::FaultyCollectiveResult r =
        cluster::allreduceWithFaults(
            cluster::CollectiveAlgo::Ring, bytes, 8, 12.5e9, 5e-6,
            faults, retry, DegradedMode::ContinueDegraded);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.retries, 0u);
    EXPECT_GT(r.seconds, clean);
    EXPECT_DOUBLE_EQ(r.seconds, clean + r.penaltySeconds);
}

TEST(FaultCollective, FailStopReportsTimeToFailure)
{
    // Permanent-ish outage: long windows, no retries allowed.
    FaultSpec spec = linkFaultSpec(5.0);
    spec.linkOutageSec = 100.0; // outlives every retry budget
    const FaultSchedule faults = FaultSchedule::generate(spec);
    RetryPolicy retry;
    retry.maxRetries = 2;

    const cluster::FaultyCollectiveResult stopped =
        cluster::allreduceWithFaults(
            cluster::CollectiveAlgo::Ring, 256 * kMiB, 8, 12.5e9, 5e-6,
            faults, retry, DegradedMode::FailStop);
    EXPECT_FALSE(stopped.completed);
    EXPECT_GT(stopped.downSteps, 0u);

    const cluster::FaultyCollectiveResult degraded =
        cluster::allreduceWithFaults(
            cluster::CollectiveAlgo::Ring, 256 * kMiB, 8, 12.5e9, 5e-6,
            faults, retry, DegradedMode::ContinueDegraded);
    EXPECT_TRUE(degraded.completed);
    EXPECT_GT(degraded.degradedSteps, 0u);
    // Completing through degradation costs more wall time than the
    // truncated fail-stop run observed.
    EXPECT_GT(degraded.seconds, stopped.seconds);
}

TEST(FaultCollective, TrainingRunAccumulates)
{
    cluster::ClusterConfig cl;
    cl.servers = 4;
    cluster::TrainingJob job;
    job.stepSecondsPerChip = 0.01;
    job.gradientBytes = 10 * kMiB;
    job.samplesPerChipStep = 16;
    const RetryPolicy retry;
    const CheckpointPolicy checkpoint;
    const FaultSchedule none;

    const cluster::TrainingRunResult clean =
        cluster::trainingRunWithFaults(job, cl, 32, 10, none, retry,
                                       DegradedMode::ContinueDegraded,
                                       checkpoint);
    EXPECT_TRUE(clean.completed);
    EXPECT_EQ(clean.stepsDone, 10u);
    // Bitwise: the zero-fault run is the same left-to-right sum a
    // fault-free stepper would accumulate.
    double expect = 0;
    for (unsigned s = 0; s < 10; ++s)
        expect += cluster::stepSeconds(job, cl, 32);
    EXPECT_EQ(clean.seconds, expect);

    // Outages long enough (20 ms) to overlap a ~100 ms training run.
    FaultSpec fspec = linkFaultSpec(10.0);
    fspec.linkOutageSec = 0.02;
    const FaultSchedule faults = FaultSchedule::generate(fspec);
    const cluster::TrainingRunResult faulty =
        cluster::trainingRunWithFaults(job, cl, 32, 10, faults, retry,
                                       DegradedMode::ContinueDegraded,
                                       checkpoint);
    EXPECT_TRUE(faulty.completed);
    EXPECT_GT(faulty.seconds, clean.seconds);
}

std::vector<std::vector<soc::CoreTask>>
sampleChipWork(unsigned cores)
{
    std::vector<std::vector<soc::CoreTask>> per_core(cores);
    for (unsigned c = 0; c < cores; ++c)
        for (unsigned t = 0; t < 4; ++t)
            per_core[c].push_back(
                soc::CoreTask{1e-3 * (1 + (c + t) % 3),
                              Bytes((c + 2 * t + 1)) * kMiB});
    return per_core;
}

TEST(ChipSimFaults, EmptyPlanBitwiseEqualsFaultFree)
{
    const auto work = sampleChipWork(8);
    const double bw = 100e9;
    const soc::ChipSimResult base = soc::runChipSim(work, bw);
    const soc::ChipSimResult same =
        soc::runChipSim(work, bw, ChipFaultPlan{});
    EXPECT_EQ(same.makespan, base.makespan);
    EXPECT_EQ(same.avgMemUtilization, base.avgMemUtilization);
    ASSERT_EQ(same.coreFinish.size(), base.coreFinish.size());
    for (std::size_t c = 0; c < base.coreFinish.size(); ++c)
        EXPECT_EQ(same.coreFinish[c], base.coreFinish[c]);
    EXPECT_EQ(same.coreFailures, 0u);
    EXPECT_EQ(same.reDispatchedTasks, 0u);
    EXPECT_TRUE(same.completed);
}

TEST(ChipSimFaults, StragglerStretchesMakespan)
{
    const auto work = sampleChipWork(8);
    const double bw = 1e12; // compute-bound so slowdown must show
    const soc::ChipSimResult base = soc::runChipSim(work, bw);
    ChipFaultPlan plan;
    plan.stragglerFactor.assign(8, 1.0);
    plan.stragglerFactor[3] = 2.0;
    plan.coreEvents.resize(8);
    const soc::ChipSimResult slow = soc::runChipSim(work, bw, plan);
    EXPECT_GT(slow.makespan, base.makespan);
    EXPECT_GT(slow.coreFinish[3], base.coreFinish[3]);
    EXPECT_TRUE(slow.completed);
}

TEST(ChipSimFaults, PermanentFailureReDispatches)
{
    const auto work = sampleChipWork(4);
    const double bw = 100e9;
    const soc::ChipSimResult base = soc::runChipSim(work, bw);

    ChipFaultPlan plan;
    plan.stragglerFactor.assign(4, 1.0);
    plan.coreEvents.resize(4);
    // Kill core 0 immediately: all four of its tasks must move.
    plan.coreEvents[0].push_back(
        FaultEvent{FaultKind::CorePermanent, 0.0, 0, 0.0, 1.0});
    const soc::ChipSimResult r = soc::runChipSim(work, bw, plan);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.coreFailures, 1u);
    EXPECT_EQ(r.reDispatchedTasks, 4u);
    EXPECT_GT(r.makespan, base.makespan);

    // Mid-run kill: fewer tasks orphaned, still completes.
    plan.coreEvents[0][0].timeSec = base.makespan / 4;
    const soc::ChipSimResult mid = soc::runChipSim(work, bw, plan);
    EXPECT_TRUE(mid.completed);
    EXPECT_EQ(mid.coreFailures, 1u);
    EXPECT_GT(mid.reDispatchedTasks, 0u);
    EXPECT_LE(mid.reDispatchedTasks, 4u);
}

TEST(ChipSimFaults, TransientFailureRestartsTask)
{
    const auto work = sampleChipWork(4);
    const double bw = 100e9;
    const soc::ChipSimResult base = soc::runChipSim(work, bw);

    ChipFaultPlan plan;
    plan.stragglerFactor.assign(4, 1.0);
    plan.coreEvents.resize(4);
    plan.coreEvents[1].push_back(FaultEvent{
        FaultKind::CoreTransient, base.makespan / 3, 1, 5e-4, 1.0});
    const soc::ChipSimResult r = soc::runChipSim(work, bw, plan);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.coreFailures, 1u);
    EXPECT_EQ(r.reDispatchedTasks, 0u);
    EXPECT_GE(r.makespan, base.makespan);
    EXPECT_GT(r.coreFinish[1], base.coreFinish[1]);
}

TEST(ChipSimFaults, AllCoresDeadReportsIncomplete)
{
    const auto work = sampleChipWork(2);
    ChipFaultPlan plan;
    plan.stragglerFactor.assign(2, 1.0);
    plan.coreEvents.resize(2);
    for (unsigned c = 0; c < 2; ++c)
        plan.coreEvents[c].push_back(
            FaultEvent{FaultKind::CorePermanent, 1e-6, c, 0.0, 1.0});
    const soc::ChipSimResult r = soc::runChipSim(work, 100e9, plan);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.coreFailures, 2u);
}

TEST(ChipClusterRun, EmptyPlansBitwiseEqualScalarPath)
{
    // With no chip faults and no link faults, the chip-sim-driven
    // training run must equal "measure the chip once, feed the
    // scalar" bit for bit.
    const auto work = sampleChipWork(8);
    const double bw = 100e9;
    const cluster::ClusterConfig cl;
    cluster::TrainingJob job;
    job.gradientBytes = 51 * kMiB;
    const RetryPolicy retry;
    const CheckpointPolicy checkpoint;

    const soc::ChipSimResult chip = soc::runChipSim(work, bw);
    cluster::TrainingJob scalar_job = job;
    scalar_job.stepSecondsPerChip = chip.makespan;
    const cluster::TrainingRunResult scalar =
        cluster::trainingRunWithFaults(
            scalar_job, cl, 64, 10, FaultSchedule(), retry,
            DegradedMode::ContinueDegraded, checkpoint);

    const cluster::ChipTrainingRunResult r =
        cluster::trainingRunWithChipFaults(
            job, cl, 64, 10, work, bw, ChipFaultPlan{},
            FaultSchedule(), retry, DegradedMode::ContinueDegraded,
            checkpoint);
    EXPECT_EQ(r.stepSecondsPerChip, chip.makespan);
    EXPECT_EQ(r.run.seconds, scalar.seconds);
    EXPECT_EQ(r.run.stepsDone, scalar.stepsDone);
    EXPECT_TRUE(r.run.completed);
    EXPECT_TRUE(r.chip.completed);
}

TEST(ChipClusterRun, ChipFaultsStretchTheRun)
{
    const auto work = sampleChipWork(8);
    const double bw = 1e12; // compute-bound: stragglers must show
    const cluster::ClusterConfig cl;
    cluster::TrainingJob job;
    job.gradientBytes = 51 * kMiB;
    const RetryPolicy retry;
    const CheckpointPolicy checkpoint;

    const cluster::ChipTrainingRunResult clean =
        cluster::trainingRunWithChipFaults(
            job, cl, 64, 10, work, bw, ChipFaultPlan{},
            FaultSchedule(), retry, DegradedMode::ContinueDegraded,
            checkpoint);

    ChipFaultPlan plan;
    plan.stragglerFactor.assign(8, 1.0);
    plan.stragglerFactor[2] = 2.0;
    plan.coreEvents.resize(8);
    const cluster::ChipTrainingRunResult slow =
        cluster::trainingRunWithChipFaults(
            job, cl, 64, 10, work, bw, plan, FaultSchedule(), retry,
            DegradedMode::ContinueDegraded, checkpoint);
    EXPECT_GT(slow.stepSecondsPerChip, clean.stepSecondsPerChip);
    EXPECT_GT(slow.run.seconds, clean.run.seconds);
    EXPECT_TRUE(slow.run.completed);
}

TEST(ChipClusterRun, DeadChipFailsStopsAtStepZero)
{
    const auto work = sampleChipWork(2);
    ChipFaultPlan plan;
    plan.stragglerFactor.assign(2, 1.0);
    plan.coreEvents.resize(2);
    for (unsigned c = 0; c < 2; ++c)
        plan.coreEvents[c].push_back(
            FaultEvent{FaultKind::CorePermanent, 1e-6, c, 0.0, 1.0});
    const cluster::ClusterConfig cl;
    cluster::TrainingJob job;
    job.gradientBytes = 51 * kMiB;
    const cluster::ChipTrainingRunResult r =
        cluster::trainingRunWithChipFaults(
            job, cl, 64, 10, work, 100e9, plan, FaultSchedule(),
            RetryPolicy(), DegradedMode::ContinueDegraded,
            CheckpointPolicy());
    EXPECT_FALSE(r.run.completed);
    EXPECT_FALSE(r.chip.completed);
    EXPECT_EQ(r.run.stepsDone, 0u);
}

TEST(ChipClusterRun, CheckpointIntervalLongerThanRun)
{
    // An interval that outlives the whole run still charges its
    // fractional save cost and bounds rework exactly as the closed
    // form prescribes.
    const auto work = sampleChipWork(8);
    const double bw = 100e9;
    const cluster::ClusterConfig cl;
    cluster::TrainingJob job;
    job.gradientBytes = 51 * kMiB;
    const RetryPolicy retry;

    const cluster::ChipTrainingRunResult base =
        cluster::trainingRunWithChipFaults(
            job, cl, 64, 10, work, bw, ChipFaultPlan{},
            FaultSchedule(), retry, DegradedMode::ContinueDegraded,
            CheckpointPolicy(), 0.0);

    CheckpointPolicy long_interval;
    long_interval.enabled = true;
    long_interval.intervalSec = 1e4; // >> the ~tens-of-ms run
    long_interval.saveSec = 2.0;
    long_interval.restartSec = 10.0;
    const double rate = 1e-3;
    const cluster::ChipTrainingRunResult r =
        cluster::trainingRunWithChipFaults(
            job, cl, 64, 10, work, bw, ChipFaultPlan{},
            FaultSchedule(), retry, DegradedMode::ContinueDegraded,
            long_interval, rate);
    EXPECT_TRUE(r.run.completed);
    EXPECT_EQ(r.run.seconds,
              resilience::timeWithCheckpointRestart(
                  base.run.seconds, rate, long_interval));
    EXPECT_GT(r.run.seconds, base.run.seconds);
}

TEST(ChipClusterRun, ZeroCostCheckpointsChargeOnlyRework)
{
    const auto work = sampleChipWork(8);
    const double bw = 100e9;
    const cluster::ClusterConfig cl;
    cluster::TrainingJob job;
    job.gradientBytes = 51 * kMiB;
    const RetryPolicy retry;

    const cluster::ChipTrainingRunResult base =
        cluster::trainingRunWithChipFaults(
            job, cl, 64, 10, work, bw, ChipFaultPlan{},
            FaultSchedule(), retry, DegradedMode::ContinueDegraded,
            CheckpointPolicy(), 0.0);

    CheckpointPolicy free;
    free.enabled = true;
    free.intervalSec = 0.05;
    free.saveSec = 0.0;
    free.restartSec = 0.0;

    // Zero-cost saves with no errors must not perturb the result.
    const cluster::ChipTrainingRunResult clean =
        cluster::trainingRunWithChipFaults(
            job, cl, 64, 10, work, bw, ChipFaultPlan{},
            FaultSchedule(), retry, DegradedMode::ContinueDegraded,
            free, 0.0);
    EXPECT_EQ(clean.run.seconds, base.run.seconds);

    // With errors, the only charge left is the half-interval rework.
    const double rate = 0.5;
    const cluster::ChipTrainingRunResult faulty =
        cluster::trainingRunWithChipFaults(
            job, cl, 64, 10, work, bw, ChipFaultPlan{},
            FaultSchedule(), retry, DegradedMode::ContinueDegraded,
            free, rate);
    EXPECT_EQ(faulty.run.seconds,
              base.run.seconds + rate * base.run.seconds *
                                     (0.5 * free.intervalSec));
}

TEST(ChipClusterRun, FailStopSkipsCheckpointCharges)
{
    // A run that fail-stops reports the time-to-failure only: the
    // ECC/checkpoint model applies to completed work, so not even an
    // enabled policy with a huge error rate may inflate it.
    const auto work = sampleChipWork(8);
    const cluster::ClusterConfig cl;
    cluster::TrainingJob job;
    job.gradientBytes = 256 * kMiB;
    FaultSpec spec = linkFaultSpec(5.0);
    spec.linkOutageSec = 100.0; // outlives every retry budget
    const FaultSchedule faults = FaultSchedule::generate(spec);
    RetryPolicy retry;
    retry.maxRetries = 2;

    CheckpointPolicy ckpt;
    ckpt.enabled = true;
    ckpt.intervalSec = 0.01;
    ckpt.saveSec = 5.0;
    ckpt.restartSec = 50.0;

    const cluster::ChipTrainingRunResult stopped =
        cluster::trainingRunWithChipFaults(
            job, cl, 64, 10, work, 100e9, ChipFaultPlan{}, faults,
            retry, DegradedMode::FailStop, ckpt, 10.0);
    ASSERT_FALSE(stopped.run.completed);
    EXPECT_LT(stopped.run.stepsDone, 10u);

    // Bitwise identical to the same truncated run with the policy
    // off: the final interval's charges never land.
    const cluster::ChipTrainingRunResult plain =
        cluster::trainingRunWithChipFaults(
            job, cl, 64, 10, work, 100e9, ChipFaultPlan{}, faults,
            retry, DegradedMode::FailStop, CheckpointPolicy(), 0.0);
    EXPECT_EQ(stopped.run.seconds, plain.run.seconds);
    EXPECT_EQ(stopped.run.stepsDone, plain.run.stepsDone);
}

TEST(DramEcc, ZeroRateBitwiseEqualsBase)
{
    memory::DramModel plain(memory::hbm2Ascend910());
    memory::DramConfig cfg = memory::hbm2Ascend910();
    EXPECT_EQ(cfg.ecc.correctablePerGiB, 0.0);
    memory::DramModel ecc(cfg);
    for (Bytes b : {Bytes(1), Bytes(4096), 3 * kMiB, 2 * kGiB})
        EXPECT_EQ(ecc.serviceTimeWithEcc(b), plain.serviceTime(b));
    EXPECT_EQ(ecc.eccStallTime(kGiB), 0.0);
    EXPECT_EQ(ecc.uncorrectablePerSecAtFullBandwidth(), 0.0);
}

TEST(DramEcc, CorrectableErrorsStall)
{
    memory::DramConfig cfg = memory::hbm2Ascend910();
    cfg.ecc.correctablePerGiB = 2.0;
    cfg.ecc.correctableStallSec = 1e-6;
    cfg.ecc.uncorrectablePerGiB = 1e-3;
    memory::DramModel m(cfg);
    EXPECT_DOUBLE_EQ(m.expectedCorrectable(kGiB), 2.0);
    EXPECT_DOUBLE_EQ(m.eccStallTime(kGiB), 2e-6);
    EXPECT_GT(m.serviceTimeWithEcc(kGiB), m.serviceTime(kGiB));
    EXPECT_DOUBLE_EQ(m.serviceTimeWithEcc(kGiB),
                     m.serviceTime(kGiB) + 2e-6);
    EXPECT_GT(m.uncorrectablePerSecAtFullBandwidth(), 0.0);
}

TEST(SessionResilience, DefaultOptionsBitwiseEqualBaseline)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    const auto net = model::zoo::gestureNet(1);
    // Private caches so the two sessions cannot share entries.
    runtime::SimSession plain(
        cfg, {}, std::make_shared<runtime::SimCache>());
    runtime::SimSession res(cfg, {},
                            std::make_shared<runtime::SimCache>(),
                            resilience::ResilienceOptions{});
    for (const auto &layer : net.layers) {
        const core::SimResult a = plain.runLayer(layer);
        const core::SimResult b = res.runLayer(layer);
        EXPECT_EQ(a.totalCycles, b.totalCycles);
        EXPECT_EQ(a.totalFlops, b.totalFlops);
        EXPECT_EQ(a.instrsExecuted, b.instrsExecuted);
    }
}

TEST(SessionResilience, StragglerSlowdownScalesCycles)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    const auto net = model::zoo::gestureNet(1);
    resilience::ResilienceOptions res;
    res.enabled = true;
    res.stragglerSlowdown = 1.5;
    runtime::SimSession plain(
        cfg, {}, std::make_shared<runtime::SimCache>());
    runtime::SimSession slow(
        cfg, {}, std::make_shared<runtime::SimCache>(), res);
    for (const auto &layer : net.layers) {
        const core::SimResult a = plain.runLayer(layer);
        const core::SimResult b = slow.runLayer(layer);
        EXPECT_EQ(b.totalCycles,
                  Cycles(std::ceil(double(a.totalCycles) * 1.5)));
        EXPECT_EQ(a.totalFlops, b.totalFlops); // work is unchanged
    }
}

TEST(SessionResilience, OptionsSeparateCacheKeys)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    const auto layer = model::zoo::gestureNet(1).layers.front();
    auto cache = std::make_shared<runtime::SimCache>();
    resilience::ResilienceOptions res;
    res.enabled = true;
    res.stragglerSlowdown = 2.0;
    runtime::SimSession plain(cfg, {}, cache);
    runtime::SimSession slow(cfg, {}, cache, res);
    // Same shared cache: a fault-free entry must not satisfy the
    // degraded session (and vice versa).
    const core::SimResult a = plain.runLayer(layer);
    const core::SimResult b = slow.runLayer(layer);
    EXPECT_NE(a.totalCycles, b.totalCycles);
    // Fingerprints of distinct options differ; identical ones match.
    EXPECT_NE(runtime::fingerprint(res),
              runtime::fingerprint(resilience::ResilienceOptions{}));
    EXPECT_EQ(runtime::fingerprint(res), runtime::fingerprint(res));
}

} // namespace
