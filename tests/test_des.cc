/**
 * @file
 * Unit and negative-path tests of the des::Kernel: canonical
 * (time, priority, seq) dispatch order, the monotonic-clock
 * "no rewind" rule, deterministic phase slicing, quiescent hooks,
 * stats accounting, and the structured misuse errors (re-entrant
 * run/phase, scheduling into the past, empty-queue drain, event
 * guard).
 */

#include <algorithm>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "des/kernel.hh"

using namespace ascend;

namespace {

/** Expect fn() to throw Error with @p code, message containing @p hint. */
template <typename Fn>
void
expectError(Fn &&fn, ErrorCode code, const std::string &hint)
{
    try {
        fn();
        FAIL() << "expected ascend::Error [" << toString(code) << "]";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), code) << e.what();
        EXPECT_NE(std::string(e.what()).find(hint), std::string::npos)
            << "message '" << e.what() << "' lacks '" << hint << "'";
    }
}

TEST(DesKernel, DispatchesInCanonicalOrder)
{
    des::Kernel k;
    std::string order;
    const auto mark = [&](const char *tag) {
        return [&order, tag](des::Kernel &) { order += tag; };
    };
    // Scheduled deliberately out of dispatch order: time wins, then
    // priority (lower first), then schedule order.
    k.schedule(2.0, 0, "late", mark("d"));
    k.schedule(1.0, 5, "low-pri", mark("c"));
    k.schedule(1.0, -1, "high-pri", mark("a"));
    k.schedule(1.0, 5, "low-pri-2", mark("c"));
    k.schedule(1.0, 0, "mid-pri", mark("b"));
    k.run();
    EXPECT_EQ(order, "abccd");
    EXPECT_EQ(k.now(), 2.0);
    EXPECT_EQ(k.stats().eventsDispatched, 5u);
    EXPECT_EQ(k.stats().eventsScheduled, 5u);
    EXPECT_EQ(k.stats().queueHighWater, 5u);
    EXPECT_EQ(k.pending(), 0u);
}

TEST(DesKernel, NoRewindRunsLateEventsAtCurrentTime)
{
    des::Kernel k;
    double seen = -1;
    k.schedule(1.0, 0, "advance",
               [](des::Kernel &kk) { kk.advanceTo(10.0); });
    // Key time 5.0 is behind the advanced clock at dispatch: the
    // handler must observe now()==10, never a rewind.
    k.schedule(5.0, 0, "late",
               [&](des::Kernel &kk) { seen = kk.now(); });
    k.run();
    EXPECT_EQ(seen, 10.0);
    EXPECT_EQ(k.now(), 10.0);
}

TEST(DesKernel, ScheduleIntoPastThrows)
{
    des::Kernel k;
    k.advanceTo(5.0);
    expectError(
        [&] {
            k.schedule(1.0, 0, "stale", [](des::Kernel &) {});
        },
        ErrorCode::KernelMisuse, "past");
    expectError(
        [&] {
            k.schedule(std::numeric_limits<double>::infinity(), 0,
                       "inf", [](des::Kernel &) {});
        },
        ErrorCode::KernelMisuse, "inf");
}

TEST(DesKernel, AdvanceToIsMonotonic)
{
    des::Kernel k;
    k.advanceTo(3.0);
    k.advanceTo(3.0); // equal time is a no-op, not a rewind
    EXPECT_EQ(k.now(), 3.0);
    expectError([&] { k.advanceTo(2.0); }, ErrorCode::KernelMisuse,
                "monotonic");
    expectError(
        [&] { k.advanceTo(std::numeric_limits<double>::quiet_NaN()); },
        ErrorCode::KernelMisuse, "monotonic");
}

TEST(DesKernel, ReentrantRunThrows)
{
    des::Kernel k;
    k.schedule(0.0, 0, "reenter",
               [](des::Kernel &kk) { kk.run(); });
    expectError([&] { k.run(); }, ErrorCode::KernelMisuse,
                "re-entrant");
    // The misuse error must leave the kernel reusable.
    std::string order;
    k.schedule(k.now(), 0, "after",
               [&](des::Kernel &) { order += "x"; });
    k.run();
    EXPECT_EQ(order, "x");
}

TEST(DesKernel, NestedPhaseThrows)
{
    des::Kernel k;
    k.schedule(0.0, 0, "nest", [](des::Kernel &kk) {
        kk.phase("outer", 4, [&](std::size_t, std::size_t,
                                 std::size_t) {
            kk.phase("inner", 4,
                     [](std::size_t, std::size_t, std::size_t) {});
        });
    });
    expectError([&] { k.run(); }, ErrorCode::KernelMisuse, "nest");
}

TEST(DesKernel, EmptyQueueRunIsCleanNoOp)
{
    des::Kernel k;
    k.run();
    k.run(); // drained twice: still a no-op
    EXPECT_EQ(k.now(), 0.0);
    EXPECT_EQ(k.stats().eventsDispatched, 0u);
    EXPECT_EQ(k.pending(), 0u);
}

TEST(DesKernel, QuiescentHooksRunInRegistrationOrder)
{
    des::Kernel k;
    std::string order;
    k.onQuiescent([&](des::Kernel &) { order += "1"; });
    k.onQuiescent([&](des::Kernel &) { order += "2"; });
    k.schedule(1.0, 1, "work", [&](des::Kernel &) { order += "w"; });
    // Same time as the work event; priority 0 dispatches first.
    k.scheduleQuiescent(1.0, 0);
    k.run();
    EXPECT_EQ(order, "12w");
    EXPECT_EQ(k.stats().quiescentPoints, 1u);
}

TEST(DesKernel, StopLeavesPendingEvents)
{
    des::Kernel k;
    int ran = 0;
    k.schedule(1.0, 0, "stopper", [&](des::Kernel &kk) {
        ++ran;
        kk.stop();
    });
    k.schedule(2.0, 0, "never", [&](des::Kernel &) { ++ran; });
    k.run();
    EXPECT_TRUE(k.stopped());
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(k.pending(), 1u);
    k.run(); // resuming drains the remainder
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(k.pending(), 0u);
}

TEST(DesKernel, EventGuardThrowsGuardExceeded)
{
    des::KernelOptions options;
    options.maxEvents = 10;
    des::Kernel k(options);
    std::function<void(des::Kernel &)> spin =
        [&](des::Kernel &kk) {
            kk.schedule(kk.now() + 1.0, 0, "spin", spin);
        };
    k.schedule(0.0, 0, "spin", spin);
    expectError([&] { k.run(); }, ErrorCode::GuardExceeded, "guard");
}

TEST(DesKernel, PhaseCoversRangeExactlyOnceAtAnyGrain)
{
    for (std::size_t grain : {std::size_t(1), std::size_t(7),
                              std::size_t(64), std::size_t(4096)}) {
        des::KernelOptions options;
        options.parallelGrain = grain;
        des::Kernel k(options);
        const std::size_t n = 1000;
        EXPECT_EQ(k.phaseSlices(n), (n + grain - 1) / grain);
        std::vector<int> hits(n, 0);
        k.phase("cover", n,
                [&](std::size_t b, std::size_t e, std::size_t s) {
                    EXPECT_EQ(b, s * grain);
                    EXPECT_EQ(e, std::min(n, (s + 1) * grain));
                    for (std::size_t i = b; i < e; ++i)
                        ++hits[i];
                });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i], 1) << "index " << i;
        EXPECT_EQ(k.stats().phasesRun, 1u);
    }
}

TEST(DesKernel, PhaseRunsInlineBelowTwoSlices)
{
    des::KernelOptions options;
    options.parallelGrain = 100;
    des::Kernel k(options);
    int calls = 0;
    k.phase("inline", 42,
            [&](std::size_t b, std::size_t e, std::size_t s) {
                ++calls;
                EXPECT_EQ(b, 0u);
                EXPECT_EQ(e, 42u);
                EXPECT_EQ(s, 0u);
            });
    EXPECT_EQ(calls, 1);
    k.phase("empty", 0,
            [&](std::size_t, std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1); // n == 0: body never invoked
}

TEST(DesKernel, NextEventTimeTracksTheQueueHead)
{
    des::Kernel k;
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(k.nextEventTime(), inf);

    k.schedule(3.0, 0, "late", [](des::Kernel &) {});
    EXPECT_EQ(k.nextEventTime(), 3.0);
    k.schedule(1.0, 5, "early", [&](des::Kernel &kk) {
        // Mid-run the head is the next pending event, not self.
        EXPECT_EQ(kk.nextEventTime(), 3.0);
        kk.stop();
    });
    EXPECT_EQ(k.nextEventTime(), 1.0);
    // A quiescent marker at the head is an event like any other.
    k.scheduleQuiescent(0.5, 0);
    EXPECT_EQ(k.nextEventTime(), 0.5);

    k.run(); // stops at t=1 with "late" still queued
    EXPECT_EQ(k.nextEventTime(), 3.0);
    k.run();
    EXPECT_EQ(k.nextEventTime(), inf);
}

TEST(DesKernel, SecondClientComposesAfterStopAndResume)
{
    // Client A runs until it stops the kernel mid-stream; client B is
    // registered only after that stop — its events and hooks must
    // interleave with A's preserved queue in canonical order.
    des::Kernel k;
    std::string order;
    k.onQuiescent([&](des::Kernel &) { order += "qA"; });
    k.schedule(1.0, 0, "A1", [&](des::Kernel &kk) {
        order += "A1.";
        kk.stop();
    });
    k.schedule(2.0, 1, "A2", [&](des::Kernel &) { order += "A2."; });
    k.scheduleQuiescent(2.0, 0);
    k.run();
    ASSERT_TRUE(k.stopped());
    ASSERT_EQ(order, "A1.");
    ASSERT_EQ(k.pending(), 2u);

    // B joins late: an earlier event than A's remainder, a same-time
    // higher-priority event, and its own quiescent hook. The hook
    // list is kernel-global, so A's hook runs first at B's marker too.
    k.onQuiescent([&](des::Kernel &) { order += "qB"; });
    k.schedule(1.5, 0, "B1", [&](des::Kernel &) { order += "B1."; });
    k.schedule(2.0, 2, "B2", [&](des::Kernel &) { order += "B2."; });
    k.scheduleQuiescent(1.5, -1);
    EXPECT_EQ(k.nextEventTime(), 1.5);

    k.run();
    EXPECT_EQ(order, "A1.qAqBB1.qAqBA2.B2.");
    EXPECT_EQ(k.pending(), 0u);
    EXPECT_EQ(k.now(), 2.0);
}

TEST(DesKernel, QuiescentHooksSeeOneOrderAcrossClientsAtEqualTime)
{
    // Two clients chain quiescent markers at the same sim time (the
    // elastic and serving engines' shared discipline). Hooks run in
    // registration order at every marker, and a marker never
    // reorders against same-time prioritized work.
    des::Kernel k;
    std::string order;
    k.onQuiescent([&](des::Kernel &) { order += "a"; });
    k.onQuiescent([&](des::Kernel &) { order += "b"; });

    k.scheduleQuiescent(1.0, 0); // client 1's marker
    k.schedule(1.0, 1, "poll1",
               [&](des::Kernel &) { order += "p1."; });
    k.scheduleQuiescent(1.0, 2); // client 2's marker, after the poll
    k.schedule(1.0, 3, "poll2",
               [&](des::Kernel &) { order += "p2."; });
    k.run();

    EXPECT_EQ(order, "abp1.abp2.");
    EXPECT_EQ(k.stats().quiescentPoints, 2u);
}

} // anonymous namespace
