/**
 * @file
 * Unit tests for the core simulator's scheduling semantics: in-order
 * pipes, cross-pipe flags as counting semaphores, barriers, dispatch
 * bandwidth, deadlock detection, and statistics accounting.
 */

#include <gtest/gtest.h>

#include "core/core_sim.hh"

namespace ascend {
namespace {

using core::CoreSim;
using core::SimResult;
using isa::Bus;
using isa::Pipe;
using isa::Program;

arch::CoreConfig
testConfig()
{
    return arch::makeCoreConfig(arch::CoreVersion::Max);
}

TEST(CoreSim, EmptyProgramTakesZeroCycles)
{
    CoreSim sim(testConfig());
    const SimResult r = sim.run(Program("empty"));
    EXPECT_EQ(r.totalCycles, 0u);
    EXPECT_EQ(r.instrsExecuted, 0u);
}

TEST(CoreSim, SerialExecutionOnOnePipe)
{
    CoreSim sim(testConfig());
    Program p;
    p.exec(Pipe::Cube, 100);
    p.exec(Pipe::Cube, 50);
    const SimResult r = sim.run(p);
    EXPECT_EQ(r.pipe(Pipe::Cube).busyCycles, 150u);
    // Dispatch adds at most a couple of cycles.
    EXPECT_GE(r.totalCycles, 150u);
    EXPECT_LE(r.totalCycles, 155u);
}

TEST(CoreSim, IndependentPipesOverlap)
{
    CoreSim sim(testConfig());
    Program p;
    p.exec(Pipe::Cube, 100);
    p.exec(Pipe::Vector, 100);
    p.exec(Pipe::Mte1, 100);
    const SimResult r = sim.run(p);
    // All three should overlap almost perfectly.
    EXPECT_LE(r.totalCycles, 110u);
}

TEST(CoreSim, FlagOrdersProducerBeforeConsumer)
{
    CoreSim sim(testConfig());
    Program p;
    p.exec(Pipe::Mte1, 100);
    p.setFlag(Pipe::Mte1, 0);
    p.waitFlag(Pipe::Cube, 0);
    p.exec(Pipe::Cube, 50);
    const SimResult r = sim.run(p);
    // Cube cannot start before the load completes.
    EXPECT_GE(r.totalCycles, 150u);
    EXPECT_LE(r.totalCycles, 160u);
}

TEST(CoreSim, ReversedProgramOrderStillSynchronizes)
{
    // The consumer is dispatched before the producer: the wait must
    // still block until the set executes.
    CoreSim sim(testConfig());
    Program p;
    p.waitFlag(Pipe::Cube, 0);
    p.exec(Pipe::Cube, 10);
    p.exec(Pipe::Mte1, 200);
    p.setFlag(Pipe::Mte1, 0);
    const SimResult r = sim.run(p);
    EXPECT_GE(r.totalCycles, 210u);
}

TEST(CoreSim, CountingSemaphoreAllowsDepthTwo)
{
    CoreSim sim(testConfig());
    Program p;
    // Two free tokens: two loads proceed before any consume.
    p.setFlag(Pipe::Scalar, 1);
    p.setFlag(Pipe::Scalar, 1);
    for (int i = 0; i < 4; ++i) {
        p.waitFlag(Pipe::Mte1, 1);
        p.exec(Pipe::Mte1, 100);
        p.setFlag(Pipe::Mte1, 0);
        p.waitFlag(Pipe::Cube, 0);
        p.exec(Pipe::Cube, 100);
        p.setFlag(Pipe::Cube, 1);
    }
    const SimResult r = sim.run(p);
    // Perfect depth-2 pipeline: ~100 (first load) + 4 x 100 compute.
    EXPECT_GE(r.totalCycles, 500u);
    EXPECT_LE(r.totalCycles, 520u);
}

TEST(CoreSim, BarrierDrainsAllPipes)
{
    CoreSim sim(testConfig());
    Program p;
    p.exec(Pipe::Cube, 300);
    p.exec(Pipe::Vector, 100);
    p.barrier();
    p.exec(Pipe::Mte1, 50);
    const SimResult r = sim.run(p);
    // MTE1 can only start after the 300-cycle cube op.
    EXPECT_GE(r.pipe(Pipe::Mte1).finishCycle, 350u);
}

TEST(CoreSim, BarrierAtProgramEndIsHarmless)
{
    CoreSim sim(testConfig());
    Program p;
    p.exec(Pipe::Cube, 10);
    p.barrier();
    const SimResult r = sim.run(p);
    EXPECT_GE(r.totalCycles, 10u);
}

TEST(CoreSimDeath, WaitWithoutSetDeadlocks)
{
    CoreSim sim(testConfig());
    Program p("dead");
    p.waitFlag(Pipe::Cube, 7);
    p.exec(Pipe::Cube, 10);
    EXPECT_DEATH(sim.run(p), "deadlocked");
}

TEST(CoreSimDeath, SetAfterBarrierDeadlocks)
{
    // The barrier stops dispatch, so a wait before it can never see a
    // set after it.
    CoreSim sim(testConfig());
    Program p("dead2");
    p.waitFlag(Pipe::Cube, 3);
    p.barrier();
    p.setFlag(Pipe::Mte1, 3);
    EXPECT_DEATH(sim.run(p), "deadlocked");
}

TEST(CoreSim, DispatchBandwidthLimitsTinyInstructions)
{
    auto cfg = testConfig();
    cfg.dispatchPerCycle = 1;
    CoreSim sim(cfg);
    Program p;
    // 1000 zero-ish-latency ops on alternating pipes: dispatch at
    // 1/cycle becomes the bottleneck.
    for (int i = 0; i < 500; ++i) {
        p.exec(Pipe::Cube, 1);
        p.exec(Pipe::Vector, 1);
    }
    const SimResult r = sim.run(p);
    EXPECT_GE(r.totalCycles, 999u);
}

TEST(CoreSim, StatsAccounting)
{
    CoreSim sim(testConfig());
    Program p;
    p.exec(Pipe::Cube, 10, 4096, {{Bus::L1Read, 128}});
    p.exec(Pipe::Mte3, 5, 0, {{Bus::UbRead, 64}, {Bus::ExtOut, 64}});
    const SimResult r = sim.run(p);
    EXPECT_EQ(r.totalFlops, 4096u);
    EXPECT_EQ(r.bus(Bus::L1Read), 128u);
    EXPECT_EQ(r.bus(Bus::UbRead), 64u);
    EXPECT_EQ(r.bus(Bus::ExtOut), 64u);
    EXPECT_EQ(r.extBytes(), 64u);
    EXPECT_EQ(r.pipe(Pipe::Cube).instrs, 1u);
    EXPECT_EQ(r.instrsExecuted, 2u);
}

TEST(CoreSim, UtilizationAndSeconds)
{
    CoreSim sim(testConfig());
    Program p;
    p.exec(Pipe::Cube, 100);
    p.exec(Pipe::Vector, 50);
    const SimResult r = sim.run(p);
    EXPECT_NEAR(r.utilization(Pipe::Cube), 1.0, 0.05);
    EXPECT_NEAR(r.utilization(Pipe::Vector), 0.5, 0.05);
    EXPECT_NEAR(r.seconds(1.0), r.totalCycles * 1e-9, 1e-12);
}

TEST(CoreSim, AccumulateSumsResults)
{
    CoreSim sim(testConfig());
    Program p;
    p.exec(Pipe::Cube, 10, 100, {{Bus::L1Read, 8}});
    SimResult total = sim.run(p);
    const Cycles first = total.totalCycles;
    total.accumulate(sim.run(p));
    EXPECT_EQ(total.totalCycles, 2 * first);
    EXPECT_EQ(total.totalFlops, 200u);
    EXPECT_EQ(total.bus(Bus::L1Read), 16u);
}

TEST(CoreSim, SetBeforeWaitCompletesInstantly)
{
    CoreSim sim(testConfig());
    Program p;
    p.setFlag(Pipe::Scalar, 5);
    p.waitFlag(Pipe::Cube, 5);
    p.exec(Pipe::Cube, 10);
    const SimResult r = sim.run(p);
    EXPECT_LE(r.totalCycles, 15u);
}

TEST(CoreSim, ManyTokensAccumulate)
{
    CoreSim sim(testConfig());
    Program p;
    for (int i = 0; i < 10; ++i)
        p.setFlag(Pipe::Scalar, 2);
    for (int i = 0; i < 10; ++i)
        p.waitFlag(Pipe::Vector, 2);
    p.exec(Pipe::Vector, 1);
    const SimResult r = sim.run(p);
    EXPECT_EQ(r.pipe(Pipe::Vector).instrs, 1u);
}

// Deterministic repeatability: the simulator is a pure function.
TEST(CoreSim, Deterministic)
{
    CoreSim sim(testConfig());
    Program p;
    for (int i = 0; i < 50; ++i) {
        p.exec(Pipe::Mte1, 7);
        p.setFlag(Pipe::Mte1, 0);
        p.waitFlag(Pipe::Cube, 0);
        p.exec(Pipe::Cube, 13);
    }
    const SimResult a = sim.run(p);
    const SimResult b = sim.run(p);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.pipe(Pipe::Cube).busyCycles, b.pipe(Pipe::Cube).busyCycles);
}

} // anonymous namespace
} // namespace ascend
