/**
 * @file
 * Tests for the auto-tiling search (Section 5.1).
 */

#include <gtest/gtest.h>

#include "compiler/autotiler.hh"

namespace ascend {
namespace {

using compiler::AutoTiler;
using compiler::GemmTile;
using model::Layer;

TEST(AutoTiler, NeverLosesToHeuristic)
{
    AutoTiler tiler(arch::makeCoreConfig(arch::CoreVersion::Max));
    for (const auto &layer :
         {Layer::linear("a", 384, 1024, 4096),
          Layer::linear("b", 17, 33, 65),
          Layer::conv2d("c", 1, 64, 28, 28, 128, 3, 1, 1)}) {
        const auto r = tiler.search(layer, 32);
        EXPECT_LE(r.bestCycles, r.heuristicCycles) << layer.name;
        EXPECT_GT(r.candidatesTried, 0u);
    }
}

TEST(AutoTiler, BestTileFitsBuffers)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    AutoTiler tiler(cfg);
    const auto r =
        tiler.search(Layer::linear("fc", 512, 512, 512), 48);
    EXPECT_LE(r.best.mt * r.best.kt * 2 * 2, cfg.l0aBytes);
    EXPECT_LE(r.best.kt * r.best.nt * 2 * 2, cfg.l0bBytes);
    EXPECT_LE(r.best.mt * r.best.nt * 4 * 2, cfg.l0cBytes);
}

TEST(AutoTiler, ExplicitTileCompilesAndRuns)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    AutoTiler tiler(cfg);
    core::CoreSim sim(cfg);
    const Layer layer = Layer::linear("fc", 256, 256, 256);
    const GemmTile tiny{16, 16, 16};
    const GemmTile big{128, 128, 128};
    const auto r_tiny = sim.run(tiler.compileWithTile(layer, tiny));
    const auto r_big = sim.run(tiler.compileWithTile(layer, big));
    // Same work either way...
    EXPECT_EQ(r_tiny.totalFlops, r_big.totalFlops);
    // ...but fractal-sized tiles drown in per-instruction overhead.
    EXPECT_GT(r_tiny.totalCycles, 2 * r_big.totalCycles);
}

TEST(AutoTiler, CandidateCapIsRespected)
{
    AutoTiler tiler(arch::makeCoreConfig(arch::CoreVersion::Max));
    const auto r =
        tiler.search(Layer::linear("fc", 2048, 2048, 2048), 8);
    EXPECT_LE(r.candidatesTried, 8u);
}

TEST(AutoTilerDeath, VectorLayerRejected)
{
    AutoTiler tiler(arch::makeCoreConfig(arch::CoreVersion::Max));
    EXPECT_DEATH(tiler.search(model::Layer::batchNorm("bn", 100)),
                 "GEMM-like");
}

} // anonymous namespace
} // namespace ascend
