/**
 * @file
 * Tests of the elastic cluster-run engine: the fault-free bit-for-bit
 * contract, thread-count invariance, failover / shrink / rollback /
 * speculation behavior, crash-consistent CheckpointStore round-trips
 * and refusals, in-process kill/resume equivalence, and the
 * observability surface (tracer spans, SIM_STATS counters).
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "cluster/collective.hh"
#include "cluster/elastic_run.hh"
#include "obs/tracer.hh"
#include "resilience/fault_domain.hh"
#include "runtime/perf_stats.hh"
#include "runtime/thread_pool.hh"

using namespace ascend;
using cluster::ClusterConfig;
using cluster::ElasticOptions;
using cluster::ElasticRunResult;
using cluster::TrainingJob;
using resilience::CheckpointStore;
using resilience::DegradedMode;
using resilience::FaultSchedule;
using resilience::FaultSpec;
using resilience::RetryPolicy;
using resilience::RunCheckpoint;

namespace {

TrainingJob
testJob()
{
    TrainingJob job;
    job.stepSecondsPerChip = 0.05;
    job.gradientBytes = 51 * kMiB;
    job.samplesPerChipStep = 256;
    return job;
}

ClusterConfig
testCluster()
{
    ClusterConfig cluster;
    cluster.servers = 8; // 64 chips
    return cluster;
}

/** Exactly one permanent failure per node inside [0, 1). */
FaultSpec
nodeDeathSpec()
{
    FaultSpec spec;
    spec.seed = 7;
    spec.horizonSec = 1.0;
    spec.cores = 8; // node scope: one target per server
    spec.corePermanentPerSec = 1.0;
    return spec;
}

/** Exactly one uncorrectable ECC event inside [0, 1). */
FaultSpec
eccSpec()
{
    FaultSpec spec;
    spec.seed = 11;
    spec.horizonSec = 1.0;
    spec.eccUncorrectablePerSec = 1.0;
    return spec;
}

/** A bit of everything — the chaos soup bench_chaos also stirs. */
FaultSpec
chaosSpec()
{
    FaultSpec spec;
    spec.seed = 3;
    spec.horizonSec = 600.0;
    spec.cores = 8;
    spec.links = 8;
    spec.corePermanentPerSec = 0.15;
    spec.linkDownPerSec = 1.0;
    spec.linkDegradePerSec = 0.5;
    spec.eccUncorrectablePerSec = 0.4;
    spec.stragglerFraction = 0.25;
    spec.stragglerSlowdown = 1.6;
    return spec;
}

ElasticOptions
chaosOptions()
{
    ElasticOptions options;
    options.spareNodes = 2;
    options.stateBytes = 256 * kMiB;
    options.failoverRestartSec = 2.0;
    options.reshardRestartSec = 4.0;
    options.checkpoint.enabled = true;
    options.checkpoint.intervalSec = 1e6;
    options.checkpoint.saveSec = 0.5;
    options.checkpoint.restartSec = 1.0;
    options.checkpointEverySteps = 5;
    return options;
}

ElasticRunResult
runScenario(const FaultSpec &spec, const ElasticOptions &options,
            unsigned steps = 20)
{
    return cluster::runElastic(testJob(), testCluster(), 64, steps,
                               FaultSchedule::generate(spec),
                               RetryPolicy{},
                               DegradedMode::ContinueDegraded, options);
}

std::string
tempDir(const char *test)
{
    return ::testing::TempDir() + "ascend_elastic_" + test;
}

} // namespace

TEST(ElasticRun, FaultFreeBitwiseEqualsClosedForm)
{
    const TrainingJob job = testJob();
    const ClusterConfig cluster = testCluster();
    const FaultSchedule none = FaultSchedule::generate(FaultSpec{});
    ASSERT_TRUE(none.empty());

    const ElasticRunResult r = cluster::runElastic(
        job, cluster, 64, 25, none, RetryPolicy{},
        DegradedMode::ContinueDegraded, ElasticOptions{});

    // The engine must perform the identical float operations as the
    // closed form: the same per-step value accumulated in the same
    // order, with zero elastic adjustments.
    double expect = 0;
    const double step = cluster::stepSeconds(job, cluster, 64);
    for (int i = 0; i < 25; ++i)
        expect += step;
    EXPECT_EQ(r.seconds, expect);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.stepsDone, 25u);
    EXPECT_EQ(r.finalChips, 64u);
    EXPECT_TRUE(r.eventLog.empty());
    EXPECT_EQ(r.counters, resilience::ElasticCounters{});

    // And bit-for-bit equal to the penalty-model run (which shares
    // the empty-schedule contract of stepSecondsWithFaults).
    const cluster::TrainingRunResult penalty =
        cluster::trainingRunWithFaults(
            job, cluster, 64, 25, none, RetryPolicy{},
            DegradedMode::ContinueDegraded,
            resilience::CheckpointPolicy{}, 0.0);
    EXPECT_EQ(r.seconds, penalty.seconds);
}

TEST(ElasticRun, ReportIsThreadCountInvariant)
{
    std::string reports[2];
    const unsigned threads[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
        runtime::ScopedThreadPoolSize scope(threads[i]);
        reports[i] = runScenario(chaosSpec(), chaosOptions()).report();
    }
    EXPECT_FALSE(reports[0].empty());
    EXPECT_EQ(reports[0], reports[1]);
}

TEST(ElasticRun, FailoverConsumesSparesThenShrinks)
{
    // All 8 nodes die. With 8 warm spares the world never shrinks...
    ElasticOptions spares;
    spares.spareNodes = 8;
    const ElasticRunResult full = runScenario(nodeDeathSpec(), spares);
    EXPECT_TRUE(full.completed);
    EXPECT_EQ(full.counters.failovers, 8u);
    EXPECT_EQ(full.counters.sparesUsed, 8u);
    EXPECT_EQ(full.counters.shrinks, 0u);
    EXPECT_EQ(full.finalChips, 64u);
    EXPECT_NE(full.eventLog.find("failover"), std::string::npos);

    // ...with 2 the pool runs dry and the world shrinks elastically.
    ElasticOptions two;
    two.spareNodes = 2;
    const ElasticRunResult shrunk = runScenario(nodeDeathSpec(), two);
    EXPECT_TRUE(shrunk.completed);
    EXPECT_EQ(shrunk.counters.failovers, 2u);
    EXPECT_EQ(shrunk.counters.shrinks, 6u);
    EXPECT_EQ(shrunk.counters.spareExhausted, 6u);
    EXPECT_EQ(shrunk.finalChips, 16u);
    EXPECT_NE(shrunk.eventLog.find("shrink"), std::string::npos);
}

TEST(ElasticRun, WorldDeathFailStops)
{
    const ElasticRunResult r =
        runScenario(nodeDeathSpec(), ElasticOptions{});
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.finalNodes, 0u);
    EXPECT_EQ(r.finalChips, 0u);
    EXPECT_EQ(r.counters.shrinks, 8u);
    EXPECT_LT(r.stepsDone, 20u);
    EXPECT_NE(r.eventLog.find("world died"), std::string::npos);
}

TEST(ElasticRun, RollbackWithoutCheckpointsReplaysFromZero)
{
    const ElasticRunResult r =
        runScenario(eccSpec(), ElasticOptions{});
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.stepsDone, 20u);
    EXPECT_EQ(r.counters.rollbacks, 1u);
    // The single error strikes inside (0, 1): at least one step had
    // committed, and all of them were lost back to step zero.
    EXPECT_GE(r.counters.replayedSteps, 1u);
    EXPECT_NE(r.eventLog.find("rollback to step 0"),
              std::string::npos);
}

TEST(ElasticRun, CheckpointCadenceBoundsReplay)
{
    ElasticOptions options;
    options.checkpoint.enabled = true;
    options.checkpoint.intervalSec = 1e6; // step cadence only
    options.checkpoint.saveSec = 0.01;
    options.checkpoint.restartSec = 0.5;
    options.checkpointEverySteps = 2;
    const ElasticRunResult r = runScenario(eccSpec(), options);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.counters.rollbacks, 1u);
    // A checkpoint every 2 steps caps the loss below the cadence.
    EXPECT_LE(r.counters.replayedSteps, 1u);
    EXPECT_GT(r.counters.checkpointsSaved, 0u);
}

TEST(ElasticRun, SpeculationBoundsStragglerCost)
{
    FaultSpec spec;
    spec.seed = 5;
    spec.cores = 8;
    spec.stragglerFraction = 1.0;
    spec.stragglerSlowdown = 3.0;

    ElasticOptions slow;
    slow.speculation = false;
    const ElasticRunResult dragged = runScenario(spec, slow);

    const ElasticRunResult raced = runScenario(spec, ElasticOptions{});
    EXPECT_TRUE(raced.completed);
    // A retry-priced speculative copy beats a 3x straggler on every
    // one of the 20 steps.
    EXPECT_EQ(raced.counters.speculations, 20u);
    EXPECT_LT(raced.seconds, dragged.seconds);
    EXPECT_NE(raced.eventLog.find("speculate"), std::string::npos);
}

TEST(ElasticRun, RackCorrelatedStrikeKillsOneRackInOneStep)
{
    // A correlated schedule feeds the engine several node deaths at
    // one instant: the whole rack must fail over (or shrink) in a
    // single step, not be spread across the run like independent
    // deaths would be.
    resilience::CorrelatedFaultSpec cspec;
    cspec.seed = 7;
    cspec.horizonSec = 1.0;
    cspec.topology.replicas = 8; // node scope
    cspec.topology.replicasPerRack = 4;
    cspec.rackStrikeAtSec = 0.5;
    cspec.rackStrikeKind = resilience::FaultKind::CorePermanent;
    const FaultSchedule faults = resilience::generateCorrelated(cspec);
    ASSERT_EQ(faults.events().size(), 4u);
    for (const resilience::FaultEvent &e : faults.events())
        EXPECT_EQ(e.timeSec, 0.5);

    ElasticOptions spares;
    spares.spareNodes = 8;
    const ElasticRunResult full = cluster::runElastic(
        testJob(), testCluster(), 64, 20, faults, RetryPolicy{},
        DegradedMode::ContinueDegraded, spares);
    EXPECT_TRUE(full.completed);
    EXPECT_EQ(full.counters.failovers, 4u);
    EXPECT_EQ(full.counters.sparesUsed, 4u);
    EXPECT_EQ(full.finalChips, 64u);

    // All four failovers land at the same sim time.
    std::set<std::string> stamps;
    std::istringstream lines(full.eventLog);
    std::string line;
    while (std::getline(lines, line))
        if (line.find("failover") != std::string::npos)
            stamps.insert(line.substr(line.find("t="),
                                      line.find(' ', line.find("t=")) -
                                          line.find("t=")));
    EXPECT_EQ(stamps.size(), 1u) << full.eventLog;

    // With only two spares the same event exhausts the pool and
    // shrinks the remainder of the rack out of the world.
    ElasticOptions two;
    two.spareNodes = 2;
    const ElasticRunResult shrunk = cluster::runElastic(
        testJob(), testCluster(), 64, 20, faults, RetryPolicy{},
        DegradedMode::ContinueDegraded, two);
    EXPECT_TRUE(shrunk.completed);
    EXPECT_EQ(shrunk.counters.failovers, 2u);
    EXPECT_EQ(shrunk.counters.shrinks, 2u);
    EXPECT_EQ(shrunk.finalChips, 48u); // 6 nodes x 8 chips
}

TEST(ElasticRun, FingerprintSeparatesOptionsAndInputs)
{
    const ElasticOptions base;
    ElasticOptions spares = base;
    spares.spareNodes = 2;
    EXPECT_NE(cluster::fingerprint(base), cluster::fingerprint(spares));

    // Run-identity must separate fault seeds (a resumed run may
    // never adopt a checkpoint from a different schedule).
    FaultSpec a = chaosSpec();
    FaultSpec b = chaosSpec();
    b.seed = 4;
    const std::string id_a = cluster::runFingerprint(
        testJob(), testCluster(), 64, 20, FaultSchedule::generate(a),
        RetryPolicy{}, DegradedMode::ContinueDegraded, base);
    const std::string id_b = cluster::runFingerprint(
        testJob(), testCluster(), 64, 20, FaultSchedule::generate(b),
        RetryPolicy{}, DegradedMode::ContinueDegraded, base);
    EXPECT_NE(id_a, id_b);
}

// ------------------------------------------------ CheckpointStore

namespace {

RunCheckpoint
sampleCheckpoint()
{
    RunCheckpoint s;
    s.runId = "run-A";
    s.sequence = 3;
    s.nextStep = 17;
    s.simTimeSec = 1.25;
    s.activeNodes = {0u, 5u, 0xffffffffu, 9u};
    s.sparesLeft = 1;
    s.lastCheckpointStep = 15;
    s.lastCheckpointSec = 1.0;
    s.nodeEventCursor = 4;
    s.eccEventCursor = 2;
    s.counters.failovers = 1;
    s.counters.rollbacks = 2;
    s.counters.replayedSteps = 5;
    s.counters.checkpointsSaved = 3;
    s.eventLog = "[e00001] t=0 failover\n[e00002] t=1 rollback\n";
    return s;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
spit(const std::string &path, const std::string &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), std::streamsize(data.size()));
}

} // namespace

TEST(CheckpointStore, RoundTripIsExact)
{
    const CheckpointStore store(tempDir("roundtrip"));
    const RunCheckpoint s = sampleCheckpoint();
    ASSERT_TRUE(store.save(s));

    RunCheckpoint out;
    ASSERT_TRUE(store.load(out, "run-A"));
    EXPECT_TRUE(out == s);

    store.remove();
    RunCheckpoint gone;
    EXPECT_FALSE(store.load(gone, "run-A"));
}

TEST(CheckpointStore, RefusesForeignRunAndLeavesOutUntouched)
{
    const CheckpointStore store(tempDir("foreign"));
    ASSERT_TRUE(store.save(sampleCheckpoint()));

    RunCheckpoint out;
    out.nextStep = 999;
    EXPECT_FALSE(store.load(out, "run-B"));
    EXPECT_EQ(out.nextStep, 999u); // refusal never touches out
}

TEST(CheckpointStore, RefusesCorruptTruncatedAndForeignFiles)
{
    const CheckpointStore store(tempDir("corrupt"));
    ASSERT_TRUE(store.save(sampleCheckpoint()));
    const std::string blob = slurp(store.path());
    ASSERT_GT(blob.size(), 16u);

    // A flipped bit anywhere fails the checksum.
    std::string flipped = blob;
    flipped[flipped.size() / 2] =
        char(flipped[flipped.size() / 2] ^ 0x40);
    spit(store.path(), flipped);
    RunCheckpoint out;
    EXPECT_FALSE(store.load(out, "run-A"));

    // Truncation at any point is a clean refusal.
    for (std::size_t cut = 0; cut < blob.size(); cut += 13) {
        spit(store.path(), blob.substr(0, cut));
        EXPECT_FALSE(store.load(out, "run-A"));
    }

    // A foreign magic is rejected before anything is parsed.
    std::string foreign = blob;
    foreign[0] = 'X';
    spit(store.path(), foreign);
    EXPECT_FALSE(store.load(out, "run-A"));

    // The intact file still loads (the refusals were non-destructive
    // reads, and save() goes through an atomic rename).
    spit(store.path(), blob);
    EXPECT_TRUE(store.load(out, "run-A"));
    EXPECT_TRUE(out == sampleCheckpoint());
}

// --------------------------------------------- kill/resume contract

TEST(ElasticRun, HaltResumeMatchesUninterrupted)
{
    const std::string dir = tempDir("resume");
    const ElasticOptions base = chaosOptions();

    // The uninterrupted reference keeps checkpoints logical-only.
    const ElasticRunResult ref = runScenario(chaosSpec(), base, 40);
    ASSERT_TRUE(ref.completed);
    ASSERT_GT(ref.counters.rollbacks, 0u);

    for (unsigned halt : {1u, 9u, 30u}) {
        std::filesystem::remove_all(dir);
        ElasticOptions victim = base;
        victim.checkpointDir = dir;
        victim.haltAfterEvents = halt;
        const ElasticRunResult dead =
            runScenario(chaosSpec(), victim, 40);
        EXPECT_TRUE(dead.halted);
        EXPECT_FALSE(dead.completed);

        ElasticOptions resume = base;
        resume.checkpointDir = dir;
        const ElasticRunResult done =
            runScenario(chaosSpec(), resume, 40);
        EXPECT_TRUE(done.completed);
        EXPECT_EQ(done.report(), ref.report())
            << "halt after event " << halt;
        // A completed run removes its checkpoint slot.
        EXPECT_FALSE(
            std::filesystem::exists(CheckpointStore(dir).path()));
    }
    std::filesystem::remove_all(dir);
}

// ------------------------------------------------ observability

TEST(ElasticRun, CountersChargeIntoSimStats)
{
    runtime::resetResilienceTotals();

    const ElasticRunResult r = runScenario(chaosSpec(), chaosOptions());
    const runtime::ResilienceCounters totals =
        runtime::resilienceTotals();
    EXPECT_EQ(totals.elasticRuns, 1u);
    EXPECT_EQ(totals.failovers, r.counters.failovers);
    EXPECT_EQ(totals.rollbacks, r.counters.rollbacks);
    EXPECT_EQ(totals.replayedSteps, r.counters.replayedSteps);
    EXPECT_EQ(totals.checkpointsSaved, r.counters.checkpointsSaved);

    const std::string report =
        runtime::simStatsReport(runtime::SimCache::Stats{}, 1);
    EXPECT_NE(report.find("elastic runs"), std::string::npos);
    EXPECT_NE(report.find("elastic rollbacks"), std::string::npos);

    // A halted run is a crash stand-in: nothing may be charged.
    runtime::resetResilienceTotals();
    ElasticOptions halt = chaosOptions();
    halt.haltAfterEvents = 2;
    runScenario(chaosSpec(), halt);
    EXPECT_EQ(runtime::resilienceTotals().elasticRuns, 0u);
    runtime::resetResilienceTotals();
}

TEST(ElasticRun, RecoveryPhasesEmitTracerSpans)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.stop();
    tracer.start("");
    runScenario(chaosSpec(), chaosOptions());
    const std::string json = tracer.json();
    tracer.stop();

    EXPECT_NE(json.find("elastic.failover"), std::string::npos);
    EXPECT_NE(json.find("elastic.rollback"), std::string::npos);
    EXPECT_NE(json.find("elastic.checkpoint"), std::string::npos);
    // Cluster-domain track 2 is labeled for the trace viewer.
    EXPECT_NE(json.find("elastic recovery"), std::string::npos);
}
