/**
 * @file
 * Tests for the obs layer: tracer determinism and dedup, Chrome JSON
 * shape, the per-pipe stall/occupancy counters on SimResult, and the
 * runtime::pipeTotals charging.
 */

#include <gtest/gtest.h>

#include <thread>

#include "model/zoo.hh"
#include "obs/tracer.hh"
#include "runtime/perf_stats.hh"
#include "runtime/sim_cache.hh"
#include "runtime/sim_session.hh"
#include "runtime/thread_pool.hh"

namespace ascend {
namespace {

/** RAII: tracing on (in-memory) for the scope, clean after. */
class ScopedTrace
{
  public:
    ScopedTrace()
    {
        obs::Tracer::instance().stop();
        obs::Tracer::instance().start("");
    }
    ~ScopedTrace() { obs::Tracer::instance().stop(); }
};

TEST(Tracer, DisabledByDefault)
{
    obs::Tracer::instance().stop();
    EXPECT_EQ(obs::Tracer::current(), nullptr);
    EXPECT_FALSE(obs::Tracer::enabled());
    // stop() when never started must be harmless.
    obs::Tracer::instance().stop();
}

TEST(Tracer, IdenticalSpansDeduplicate)
{
    if (!obs::kTraceCompiledIn)
        GTEST_SKIP() << "tracer compiled out";
    ScopedTrace scope;
    obs::Tracer &tracer = obs::Tracer::instance();
    for (int i = 0; i < 5; ++i)
        tracer.span(obs::Domain::Core, 2, "cube.gemm", 100, 50, 4096);
    EXPECT_EQ(tracer.spanCount(), 1u);
    // A span differing in any field is a distinct event.
    tracer.span(obs::Domain::Core, 2, "cube.gemm", 100, 50, 8192);
    EXPECT_EQ(tracer.spanCount(), 2u);
}

TEST(Tracer, CrossThreadRecordingMergesDeterministically)
{
    if (!obs::kTraceCompiledIn)
        GTEST_SKIP() << "tracer compiled out";
    ScopedTrace scope;
    obs::Tracer &tracer = obs::Tracer::instance();
    auto record = [&tracer](unsigned salt) {
        for (unsigned i = 0; i < 100; ++i)
            tracer.span(obs::Domain::Chip, 1 + (i + salt) % 4, "task",
                        i * 10, 10, i);
    };
    std::thread a(record, 0), b(record, 1);
    record(2);
    a.join();
    b.join();
    const std::string json = tracer.json();
    tracer.clear();
    // Same events recorded on one thread, in a different order.
    for (unsigned salt : {2u, 1u, 0u})
        record(salt);
    EXPECT_EQ(tracer.json(), json);
}

TEST(Tracer, JsonHasChromeTraceShape)
{
    if (!obs::kTraceCompiledIn)
        GTEST_SKIP() << "tracer compiled out";
    ScopedTrace scope;
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.span(obs::Domain::Core, 2, "cube.gemm", 0, 10, 64);
    tracer.counter(obs::Domain::Llc, "llc hit rate", 4096, 0.5);
    const std::string json = tracer.json();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("core pipes (cycles)"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"cube.gemm\""), std::string::npos);
    EXPECT_NE(json.find("\"bytes\":64"), std::string::npos);
    EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

TEST(Tracer, ClearDropsEventsButStaysActive)
{
    if (!obs::kTraceCompiledIn)
        GTEST_SKIP() << "tracer compiled out";
    ScopedTrace scope;
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.span(obs::Domain::Noc, 1, "mesh-run", 0, 100);
    EXPECT_EQ(tracer.spanCount(), 1u);
    tracer.clear();
    EXPECT_EQ(tracer.spanCount(), 0u);
    EXPECT_TRUE(obs::Tracer::enabled());
}

TEST(Tracer, CoreSimEmitsSpansAndRepeatRunsDedup)
{
    if (!obs::kTraceCompiledIn)
        GTEST_SKIP() << "tracer compiled out";
    ScopedTrace scope;
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Tiny);
    runtime::SimSession session(cfg, {},
                                std::make_shared<runtime::SimCache>());
    const auto net = model::zoo::gestureNet(1);
    session.runInference(net);
    const std::size_t once = obs::Tracer::instance().spanCount();
    EXPECT_GT(once, 0u);
    const std::string json_once = obs::Tracer::instance().json();
    // Re-running identical work must not grow the deduplicated trace.
    runtime::SimSession fresh(cfg, {},
                              std::make_shared<runtime::SimCache>());
    fresh.runInference(net);
    EXPECT_EQ(obs::Tracer::instance().spanCount(), once);
    EXPECT_EQ(obs::Tracer::instance().json(), json_once);
}

TEST(Tracer, TraceBytesIdenticalAcrossThreadCounts)
{
    if (!obs::kTraceCompiledIn)
        GTEST_SKIP() << "tracer compiled out";
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Tiny);
    const auto net = model::zoo::gestureNet(1);
    std::string base;
    for (unsigned threads : {1u, 4u}) {
        runtime::ScopedThreadPoolSize pool(threads);
        ScopedTrace scope;
        runtime::SimSession session(
            cfg, {}, std::make_shared<runtime::SimCache>());
        session.runInference(net);
        const std::string json = obs::Tracer::instance().json();
        if (base.empty())
            base = json;
        else
            EXPECT_EQ(json, base) << "trace drifted at " << threads
                                  << " threads";
        EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    }
}

TEST(SimResult, StallAndOccupancyCountersAreConsistent)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    runtime::SimSession session(cfg, {},
                                std::make_shared<runtime::SimCache>());
    const auto result =
        session.runLayer(model::Layer::linear("fc", 64, 256, 256));
    std::uint64_t waits = 0;
    for (unsigned p = 0; p < isa::kNumPipes; ++p) {
        const auto pipe = static_cast<isa::Pipe>(p);
        const core::PipeStats &s = result.pipe(pipe);
        EXPECT_LE(s.busyCycles, s.finishCycle);
        EXPECT_LE(s.finishCycle, result.totalCycles);
        const double occ = result.occupancy(pipe);
        EXPECT_GE(occ, 0.0);
        EXPECT_LE(occ, 1.0);
        waits += s.waitCycles;
    }
    // A pipelined GEMM must stall somewhere (flags gate every queue).
    EXPECT_GT(waits, 0u);
}

TEST(SimResult, BarrierAndWaitStallsAreCounted)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    core::CoreSim sim(cfg);
    isa::Program prog("stalls");
    prog.exec(isa::Pipe::Vector, 100);
    prog.barrier("sync");
    prog.exec(isa::Pipe::Vector, 10, 0, {}, "producer-late");
    prog.setFlag(isa::Pipe::Vector, 0);
    // Cube is ready at the barrier but must wait for the flag set at
    // cycle ~110: a pure WAIT_FLAG stall.
    prog.waitFlag(isa::Pipe::Cube, 0);
    prog.exec(isa::Pipe::Cube, 5);
    const auto r = sim.run(prog);
    EXPECT_EQ(r.barriers, 1u);
    EXPECT_GT(r.pipe(isa::Pipe::Cube).waitCycles, 0u);
    EXPECT_EQ(r.pipe(isa::Pipe::Vector).waitCycles, 0u);
}

TEST(PerfStats, PipeTotalsChargeOnMissAndHit)
{
    runtime::resetPipeTotals();
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    runtime::SimSession session(cfg, {},
                                std::make_shared<runtime::SimCache>());
    const auto layer = model::Layer::linear("fc", 32, 128, 128);
    const auto r1 = session.runLayer(layer); // miss
    const auto r2 = session.runLayer(layer); // memo hit
    EXPECT_EQ(r1.totalCycles, r2.totalCycles);
    const runtime::PipeTotals totals = runtime::pipeTotals();
    // The totals describe the workload, so the hit charges too.
    EXPECT_EQ(totals.results, 2u);
    EXPECT_EQ(totals.totalCycles, 2 * r1.totalCycles);
    for (unsigned p = 0; p < isa::kNumPipes; ++p) {
        const auto pipe = static_cast<isa::Pipe>(p);
        EXPECT_EQ(totals.busyCycles[p],
                  2 * r1.pipe(pipe).busyCycles);
        EXPECT_EQ(totals.waitCycles[p],
                  2 * r1.pipe(pipe).waitCycles);
        const double util = totals.utilization(pipe);
        EXPECT_GE(util, 0.0);
        EXPECT_LE(util, 1.0);
    }
    runtime::resetPipeTotals();
    EXPECT_EQ(runtime::pipeTotals().results, 0u);
}

} // anonymous namespace
} // namespace ascend
