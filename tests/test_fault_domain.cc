/**
 * @file
 * Tests of the correlated fault-domain layer: topology arithmetic,
 * deterministic generation, the empty-schedule fault-free twin, rack
 * strike expansion, and fingerprint distinctness from independent
 * schedules.
 */

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "resilience/fault_domain.hh"
#include "resilience/fault_schedule.hh"

using namespace ascend;
using resilience::CorrelatedFaultSpec;
using resilience::DomainTopology;
using resilience::FaultEvent;
using resilience::FaultKind;
using resilience::FaultSchedule;
using resilience::FaultSpec;

namespace {

TEST(DomainTopology, RackAndPowerDomainMath)
{
    DomainTopology topo;
    topo.replicas = 10;
    topo.replicasPerRack = 4;
    topo.racksPerPowerDomain = 2;

    EXPECT_EQ(topo.racks(), 3u); // 4 + 4 + 2
    EXPECT_EQ(topo.powerDomains(), 2u);
    EXPECT_EQ(topo.rackOf(0), 0u);
    EXPECT_EQ(topo.rackOf(3), 0u);
    EXPECT_EQ(topo.rackOf(4), 1u);
    EXPECT_EQ(topo.rackOf(9), 2u);
    EXPECT_EQ(topo.powerDomainOf(7), 0u);
    EXPECT_EQ(topo.powerDomainOf(8), 1u);

    const std::vector<unsigned> last = topo.rackMembers(2);
    ASSERT_EQ(last.size(), 2u); // partial rack
    EXPECT_EQ(last[0], 8u);
    EXPECT_EQ(last[1], 9u);

    const std::vector<unsigned> pd0 = topo.powerDomainMembers(0);
    ASSERT_EQ(pd0.size(), 8u);
    EXPECT_EQ(pd0.front(), 0u);
    EXPECT_EQ(pd0.back(), 7u);
    const std::vector<unsigned> pd1 = topo.powerDomainMembers(1);
    ASSERT_EQ(pd1.size(), 2u);
}

CorrelatedFaultSpec
rackySpec()
{
    CorrelatedFaultSpec spec;
    spec.seed = 99;
    spec.horizonSec = 2.0;
    spec.topology.replicas = 8;
    spec.topology.replicasPerRack = 4;
    spec.rackOutagePerSec = 1.0;
    spec.rackOutageSec = 0.05;
    spec.powerOutagePerSec = 0.25;
    spec.powerOutageSec = 0.1;
    return spec;
}

TEST(CorrelatedFaults, DeterministicAndSorted)
{
    const FaultSchedule a = generateCorrelated(rackySpec());
    const FaultSchedule b = generateCorrelated(rackySpec());
    ASSERT_FALSE(a.events().empty());
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].timeSec, b.events()[i].timeSec);
        EXPECT_EQ(a.events()[i].target, b.events()[i].target);
    }
    for (std::size_t i = 1; i < a.events().size(); ++i) {
        const FaultEvent &prev = a.events()[i - 1];
        const FaultEvent &cur = a.events()[i];
        const bool ordered =
            prev.timeSec < cur.timeSec ||
            (prev.timeSec == cur.timeSec &&
             prev.target <= cur.target);
        EXPECT_TRUE(ordered) << "event " << i << " out of order";
    }
}

TEST(CorrelatedFaults, DomainEventsShareOneInstant)
{
    // Every rack-outage instant must hit all four members of one
    // rack at exactly the same time.
    const FaultSchedule s = generateCorrelated(rackySpec());
    std::set<double> instants;
    for (const FaultEvent &e : s.events())
        if (e.kind == FaultKind::CoreTransient)
            instants.insert(e.timeSec);
    for (double t : instants) {
        std::set<unsigned> racks;
        std::size_t n = 0;
        for (const FaultEvent &e : s.events()) {
            if (e.kind != FaultKind::CoreTransient ||
                e.timeSec != t)
                continue;
            ++n;
            racks.insert(e.target / 4);
        }
        // One rack (4 members) or one power domain (8 members).
        EXPECT_TRUE(n == 4 || n == 8) << n << " members at " << t;
        EXPECT_EQ(racks.size(), n / 4);
    }
}

TEST(CorrelatedFaults, EmptySpecIsFaultFreeTwin)
{
    CorrelatedFaultSpec spec;
    spec.topology.replicas = 8;
    EXPECT_TRUE(spec.empty());
    const FaultSchedule s = generateCorrelated(spec);
    EXPECT_TRUE(s.events().empty());
}

TEST(CorrelatedFaults, RackStrikeTakesExactlyOneRack)
{
    CorrelatedFaultSpec spec;
    spec.seed = 5;
    spec.horizonSec = 1.0;
    spec.topology.replicas = 8;
    spec.topology.replicasPerRack = 4;
    spec.rackStrikeAtSec = 0.25;
    spec.rackStrikeKind = FaultKind::CorePermanent;
    const FaultSchedule s = generateCorrelated(spec);
    ASSERT_EQ(s.events().size(), 4u);
    std::set<unsigned> racks;
    for (const FaultEvent &e : s.events()) {
        EXPECT_EQ(e.kind, FaultKind::CorePermanent);
        EXPECT_EQ(e.timeSec, 0.25);
        racks.insert(e.target / 4);
    }
    EXPECT_EQ(racks.size(), 1u);
}

TEST(CorrelatedFaults, MergesIndependentBackground)
{
    CorrelatedFaultSpec spec;
    spec.seed = 3;
    spec.horizonSec = 1.0;
    spec.topology.replicas = 4;
    spec.background.coreTransientPerSec = 8.0;

    // The background alone, generated independently under the meta
    // spec the correlated generator builds.
    FaultSpec bg = spec.background;
    bg.seed = spec.seed;
    bg.horizonSec = spec.horizonSec;
    bg.cores = spec.topology.replicas;
    const FaultSchedule alone = FaultSchedule::generate(bg);
    const FaultSchedule merged = generateCorrelated(spec);
    EXPECT_EQ(merged.events().size(), alone.events().size());
    EXPECT_GT(merged.events().size(), 0u);
}

TEST(CorrelatedFaults, FingerprintDistinctFromIndependent)
{
    const CorrelatedFaultSpec spec = rackySpec();
    const FaultSchedule corr = generateCorrelated(spec);
    const FaultSchedule indep = FaultSchedule::generate(corr.spec());
    EXPECT_NE(corr.fingerprint(), indep.fingerprint());
    // And correlated identities react to every knob.
    CorrelatedFaultSpec other = spec;
    other.seed ^= 1;
    EXPECT_NE(corr.fingerprint(),
              generateCorrelated(other).fingerprint());
    other = spec;
    other.topology.replicasPerRack = 2;
    EXPECT_NE(corr.fingerprint(),
              generateCorrelated(other).fingerprint());
}

TEST(CorrelatedFaults, MetaSpecCarriesFleetFacingFields)
{
    const CorrelatedFaultSpec spec = rackySpec();
    const FaultSchedule s = generateCorrelated(spec);
    EXPECT_EQ(s.spec().seed, spec.seed);
    EXPECT_EQ(s.spec().horizonSec, spec.horizonSec);
    EXPECT_EQ(s.spec().cores, spec.topology.replicas);
}

TEST(FaultProfiles, ApplyAndEnvFallback)
{
    CorrelatedFaultSpec spec;
    spec.horizonSec = 10.0;
    spec.topology.replicas = 8;
    EXPECT_TRUE(resilience::applyFaultProfile(spec, "none"));
    EXPECT_TRUE(spec.empty());

    EXPECT_TRUE(resilience::applyFaultProfile(spec, "rack"));
    EXPECT_EQ(spec.rackStrikeAtSec, 3.0);
    EXPECT_EQ(spec.rackStrikeOutageSec, 1.0);
    EXPECT_EQ(spec.powerOutagePerSec, 0.0);

    EXPECT_TRUE(resilience::applyFaultProfile(spec, "power"));
    EXPECT_GT(spec.powerOutagePerSec, 0.0);

    EXPECT_FALSE(resilience::applyFaultProfile(spec, "bogus"));

    ::unsetenv("ASCEND_FAULT_PROFILE");
    EXPECT_EQ(resilience::faultProfileFromEnv("rack"), "rack");
    ::setenv("ASCEND_FAULT_PROFILE", "power", 1);
    EXPECT_EQ(resilience::faultProfileFromEnv("rack"), "power");
    ::unsetenv("ASCEND_FAULT_PROFILE");
}

} // namespace
