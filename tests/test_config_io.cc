/**
 * @file
 * Tests for configuration serialization.
 */

#include <gtest/gtest.h>

#include "arch/config_io.hh"
#include "common/error.hh"

namespace ascend {
namespace arch {
namespace {

TEST(ConfigIo, RoundTripsEveryPreset)
{
    for (auto v : {CoreVersion::Tiny, CoreVersion::Lite,
                   CoreVersion::Mini, CoreVersion::Std,
                   CoreVersion::Max}) {
        const CoreConfig original = makeCoreConfig(v);
        const CoreConfig parsed =
            configFromString(configToString(original), original);
        EXPECT_EQ(parsed.name, original.name);
        EXPECT_DOUBLE_EQ(parsed.clockGhz, original.clockGhz);
        EXPECT_EQ(parsed.cube.m0, original.cube.m0);
        EXPECT_EQ(parsed.cube.k0, original.cube.k0);
        EXPECT_EQ(parsed.cube.n0, original.cube.n0);
        EXPECT_EQ(parsed.vectorWidthBytes, original.vectorWidthBytes);
        EXPECT_EQ(parsed.busABytesPerCycle, original.busABytesPerCycle);
        EXPECT_EQ(parsed.busExtBytesPerCycle,
                  original.busExtBytesPerCycle);
        EXPECT_EQ(parsed.l1Bytes, original.l1Bytes);
        EXPECT_EQ(parsed.supportsFp16, original.supportsFp16);
    }
}

TEST(ConfigIo, OverridesApplyOnTopOfBase)
{
    const CoreConfig base = makeCoreConfig(CoreVersion::Max);
    const CoreConfig parsed = configFromString(
        "vector_width_bytes = 512\n"
        "cube_m0 = 32\n",
        base);
    EXPECT_EQ(parsed.vectorWidthBytes, 512u);
    EXPECT_EQ(parsed.cube.m0, 32u);
    EXPECT_EQ(parsed.cube.k0, base.cube.k0); // untouched
}

TEST(ConfigIo, CommentsAndBlankLinesIgnored)
{
    const CoreConfig parsed = configFromString(
        "# a comment\n"
        "\n"
        "l1_bytes = 2097152  # inline comment\n");
    EXPECT_EQ(parsed.l1Bytes, 2 * kMiB);
}

// Helper: run @p fn, expect an ascend::Error with @p code whose
// message contains @p needle.
template <typename Fn>
static void
expectError(Fn &&fn, ErrorCode code, const std::string &needle)
{
    try {
        fn();
        FAIL() << "expected ascend::Error [" << toString(code) << "]";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), code) << e.what();
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << e.what();
    }
}

TEST(ConfigIoErrors, UnknownKeyThrows)
{
    expectError([] { configFromString("no_such_knob = 1\n"); },
                ErrorCode::ConfigParse, "unknown key");
}

TEST(ConfigIoErrors, MalformedLineThrows)
{
    expectError([] { configFromString("just words\n"); },
                ErrorCode::ConfigParse, "expected 'key = value'");
}

TEST(ConfigIoErrors, BadValueThrows)
{
    expectError([] { configFromString("l1_bytes = lots\n"); },
                ErrorCode::ConfigParse, "bad integer");
    expectError([] { configFromString("supports_int8 = maybe\n"); },
                ErrorCode::ConfigParse, "bad bool");
    expectError([] { configFromString("clock_ghz = nan\n"); },
                ErrorCode::ConfigParse, "bad number");
}

TEST(ConfigIoErrors, ParsedConfigIsValidated)
{
    // clock 0 parses but fails validate().
    expectError([] { configFromString("clock_ghz = 0\n"); },
                ErrorCode::ConfigValidation, "clock");
}

TEST(ConfigIoErrors, ParseFailureLeavesNoPartialState)
{
    // A throwing parse must not be observable through later parses:
    // each call starts from its own copy of the base config.
    try {
        configFromString("vector_width_bytes = 9999\nbogus_key = 1\n");
    } catch (const Error &) {
    }
    const CoreConfig clean = configFromString("");
    EXPECT_EQ(clean.vectorWidthBytes,
              arch::makeCoreConfig(arch::CoreVersion::Max)
                  .vectorWidthBytes);
}

TEST(ConfigIo, EditedConfigDrivesTheSimulatorDifferently)
{
    // The point of the file format: widen the vector unit and the
    // parsed config is a genuinely different machine.
    const CoreConfig narrow = configFromString("vector_width_bytes = 64");
    const CoreConfig wide = configFromString("vector_width_bytes = 1024");
    EXPECT_EQ(narrow.vectorLanes(DataType::Fp16), 32u);
    EXPECT_EQ(wide.vectorLanes(DataType::Fp16), 512u);
}

} // anonymous namespace
} // namespace arch
} // namespace ascend
