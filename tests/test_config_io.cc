/**
 * @file
 * Tests for configuration serialization.
 */

#include <gtest/gtest.h>

#include "arch/config_io.hh"

namespace ascend {
namespace arch {
namespace {

TEST(ConfigIo, RoundTripsEveryPreset)
{
    for (auto v : {CoreVersion::Tiny, CoreVersion::Lite,
                   CoreVersion::Mini, CoreVersion::Std,
                   CoreVersion::Max}) {
        const CoreConfig original = makeCoreConfig(v);
        const CoreConfig parsed =
            configFromString(configToString(original), original);
        EXPECT_EQ(parsed.name, original.name);
        EXPECT_DOUBLE_EQ(parsed.clockGhz, original.clockGhz);
        EXPECT_EQ(parsed.cube.m0, original.cube.m0);
        EXPECT_EQ(parsed.cube.k0, original.cube.k0);
        EXPECT_EQ(parsed.cube.n0, original.cube.n0);
        EXPECT_EQ(parsed.vectorWidthBytes, original.vectorWidthBytes);
        EXPECT_EQ(parsed.busABytesPerCycle, original.busABytesPerCycle);
        EXPECT_EQ(parsed.busExtBytesPerCycle,
                  original.busExtBytesPerCycle);
        EXPECT_EQ(parsed.l1Bytes, original.l1Bytes);
        EXPECT_EQ(parsed.supportsFp16, original.supportsFp16);
    }
}

TEST(ConfigIo, OverridesApplyOnTopOfBase)
{
    const CoreConfig base = makeCoreConfig(CoreVersion::Max);
    const CoreConfig parsed = configFromString(
        "vector_width_bytes = 512\n"
        "cube_m0 = 32\n",
        base);
    EXPECT_EQ(parsed.vectorWidthBytes, 512u);
    EXPECT_EQ(parsed.cube.m0, 32u);
    EXPECT_EQ(parsed.cube.k0, base.cube.k0); // untouched
}

TEST(ConfigIo, CommentsAndBlankLinesIgnored)
{
    const CoreConfig parsed = configFromString(
        "# a comment\n"
        "\n"
        "l1_bytes = 2097152  # inline comment\n");
    EXPECT_EQ(parsed.l1Bytes, 2 * kMiB);
}

TEST(ConfigIoDeath, UnknownKeyIsFatal)
{
    EXPECT_EXIT(configFromString("no_such_knob = 1\n"),
                testing::ExitedWithCode(1), "unknown key");
}

TEST(ConfigIoDeath, MalformedLineIsFatal)
{
    EXPECT_EXIT(configFromString("just words\n"),
                testing::ExitedWithCode(1), "expected 'key = value'");
}

TEST(ConfigIoDeath, BadValueIsFatal)
{
    EXPECT_EXIT(configFromString("l1_bytes = lots\n"),
                testing::ExitedWithCode(1), "bad integer");
    EXPECT_EXIT(configFromString("supports_int8 = maybe\n"),
                testing::ExitedWithCode(1), "bad bool");
}

TEST(ConfigIoDeath, ParsedConfigIsValidated)
{
    // clock 0 parses but fails validate().
    EXPECT_DEATH(configFromString("clock_ghz = 0\n"), "clock");
}

TEST(ConfigIo, EditedConfigDrivesTheSimulatorDifferently)
{
    // The point of the file format: widen the vector unit and the
    // parsed config is a genuinely different machine.
    const CoreConfig narrow = configFromString("vector_width_bytes = 64");
    const CoreConfig wide = configFromString("vector_width_bytes = 1024");
    EXPECT_EQ(narrow.vectorLanes(DataType::Fp16), 32u);
    EXPECT_EQ(wide.vectorLanes(DataType::Fp16), 512u);
}

} // anonymous namespace
} // namespace arch
} // namespace ascend
