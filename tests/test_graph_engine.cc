/**
 * @file
 * Tests for the graph engine's stream compilation and the multi-level
 * task scheduler (Section 5.2 semantics).
 */

#include <gtest/gtest.h>

#include "compiler/graph_engine.hh"
#include "model/zoo.hh"

namespace ascend {
namespace compiler {
namespace {

App
makeApp(const std::string &name, std::vector<std::vector<Cycles>> streams,
        unsigned blocks = 1)
{
    App app;
    app.name = name;
    for (auto &tasks : streams) {
        Stream s;
        s.name = name + ".s" + std::to_string(app.streams.size());
        for (Cycles c : tasks)
            s.tasks.push_back(Task{"t", c, blocks});
        app.streams.push_back(std::move(s));
    }
    return app;
}

TEST(Scheduler, SingleStreamOnOneCoreIsSerial)
{
    const App app = makeApp("a", {{100, 200, 300}});
    const auto r = schedule({app}, 1);
    EXPECT_EQ(r.makespan, 600u);
    EXPECT_NEAR(r.avgCoreUtilization, 1.0, 1e-9);
}

TEST(Scheduler, StreamOrderIsPreservedEvenWithManyCores)
{
    // In-order stream: extra cores cannot shorten a single stream of
    // single-block tasks.
    const App app = makeApp("a", {{100, 200, 300}});
    const auto r = schedule({app}, 8);
    EXPECT_EQ(r.makespan, 600u);
}

TEST(Scheduler, BlocksSplitAcrossCores)
{
    const App app = makeApp("a", {{400}}, /*blocks=*/4);
    const auto one = schedule({app}, 1);
    const auto four = schedule({app}, 4);
    EXPECT_EQ(one.makespan, 400u);
    EXPECT_EQ(four.makespan, 100u);
}

TEST(Scheduler, TwoStreamsOverlap)
{
    const App app = makeApp("a", {{300}, {300}});
    const auto r = schedule({app}, 2);
    EXPECT_EQ(r.makespan, 300u);
}

TEST(Scheduler, TwoAppsShareCoresFairly)
{
    const App a = makeApp("a", {{100, 100}});
    const App b = makeApp("b", {{100, 100}});
    const auto r = schedule({a, b}, 2);
    EXPECT_EQ(r.makespan, 200u);
    ASSERT_EQ(r.appFinish.size(), 2u);
    EXPECT_LE(r.appFinish[0], 200u);
    EXPECT_LE(r.appFinish[1], 200u);
}

TEST(Scheduler, MakespanLowerBounds)
{
    // makespan >= total work / cores and >= the longest stream.
    const App a = makeApp("a", {{500, 500}, {100}});
    const auto r = schedule({a}, 2);
    EXPECT_GE(r.makespan, 1000u); // longest stream
    EXPECT_GE(r.makespan, (500u + 500 + 100) / 2);
}

TEST(Scheduler, EmptyAppsYieldZeroMakespan)
{
    const auto r = schedule({}, 4);
    EXPECT_EQ(r.makespan, 0u);
}

TEST(SchedulerDeath, ZeroCoresRejected)
{
    const App a = makeApp("a", {{1}});
    EXPECT_DEATH(schedule({a}, 0), "at least one core");
}

TEST(GraphCompiler, StreamHasOneTaskPerFusionGroup)
{
    Profiler profiler(arch::makeCoreConfig(arch::CoreVersion::Std));
    const auto net = model::zoo::gestureNet(1);
    const Stream s = compileToStream(profiler, net);
    const auto groups =
        Profiler::fusionGroups(profiler.runInference(net));
    EXPECT_EQ(s.tasks.size(), groups.size());
    Cycles total = 0;
    for (const Task &t : s.tasks) {
        EXPECT_GT(t.cycles, 0u);
        EXPECT_GE(t.blocks, 1u);
        EXPECT_LE(t.blocks, 4u);
        total += t.cycles;
    }
    EXPECT_EQ(total, Profiler::totalCycles(profiler.runInference(net)));
}

TEST(GraphCompiler, ConcurrentAppsBeatSerialExecution)
{
    Profiler profiler(arch::makeCoreConfig(arch::CoreVersion::Std));
    App a;
    a.streams.push_back(
        compileToStream(profiler, model::zoo::gestureNet(1)));
    App b;
    b.streams.push_back(
        compileToStream(profiler, model::zoo::mobilenetV2(1)));
    const auto serial =
        schedule({a}, 4).makespan + schedule({b}, 4).makespan;
    const auto together = schedule({a, b}, 4).makespan;
    EXPECT_LT(together, serial);
}

} // anonymous namespace
} // namespace compiler
} // namespace ascend
