/**
 * @file
 * Tests for the static program verifier / disassembler, the
 * bank-aware DRAM timing model, the collective algorithm variants,
 * and the graph-engine event dependencies.
 */

#include <gtest/gtest.h>

#include "cluster/collective.hh"
#include "common/rng.hh"
#include "compiler/graph_engine.hh"
#include "compiler/layer_compiler.hh"
#include "isa/verify.hh"
#include "memory/dram_timing.hh"

namespace ascend {
namespace {

// ----------------------------------------------------------- verify

TEST(Verify, CleanProgramPasses)
{
    isa::Program p;
    p.setFlag(isa::Pipe::Mte1, 0);
    p.waitFlag(isa::Pipe::Cube, 0);
    p.exec(isa::Pipe::Cube, 10);
    EXPECT_TRUE(isa::isWellFormed(p));
}

TEST(Verify, DetectsWaitWithoutSet)
{
    isa::Program p;
    p.waitFlag(isa::Pipe::Cube, 7);
    const auto issues = isa::verifyProgram(p);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_NE(issues[0].message.find("never set"), std::string::npos);
}

TEST(Verify, DetectsTokenUnderflow)
{
    isa::Program p;
    p.setFlag(isa::Pipe::Mte1, 3);
    p.waitFlag(isa::Pipe::Cube, 3);
    p.waitFlag(isa::Pipe::Cube, 3);
    const auto issues = isa::verifyProgram(p);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_NE(issues[0].message.find("2 waits"), std::string::npos);
}

TEST(Verify, DetectsSetAfterBarrier)
{
    isa::Program p;
    p.waitFlag(isa::Pipe::Cube, 5);
    p.barrier();
    p.setFlag(isa::Pipe::Mte1, 5);
    const auto issues = isa::verifyProgram(p);
    ASSERT_FALSE(issues.empty());
    bool found = false;
    for (const auto &i : issues)
        if (i.message.find("barrier") != std::string::npos)
            found = true;
    EXPECT_TRUE(found);
}

TEST(Verify, SetBeforeBarrierIsFine)
{
    isa::Program p;
    p.setFlag(isa::Pipe::Mte1, 5);
    p.waitFlag(isa::Pipe::Cube, 5);
    p.barrier();
    p.setFlag(isa::Pipe::Mte1, 5);
    p.waitFlag(isa::Pipe::Cube, 5);
    EXPECT_TRUE(isa::isWellFormed(p));
}

TEST(Verify, CompiledProgramsAreAlwaysWellFormed)
{
    for (auto v : {arch::CoreVersion::Tiny, arch::CoreVersion::Lite,
                   arch::CoreVersion::Max}) {
        const auto cfg = arch::makeCoreConfig(v);
        compiler::LayerCompiler lc(cfg);
        const DataType dt = v == arch::CoreVersion::Tiny
            ? DataType::Int8 : DataType::Fp16;
        for (const auto &layer :
             {model::Layer::linear("fc", 300, 300, 300, dt),
              model::Layer::conv2d("c", 1, 16, 30, 30, 24, 3, 1, 1, dt),
              model::Layer::softmax("s", 100, 100, dt)}) {
            const auto prog = lc.compile(layer);
            EXPECT_TRUE(isa::isWellFormed(prog))
                << cfg.name << ":" << layer.name;
        }
    }
}

TEST(Verify, DisassemblyListsInstructions)
{
    isa::Program p("demo");
    p.exec(isa::Pipe::Cube, 42, 0, {{isa::Bus::L1Read, 64}}, "mm");
    p.setFlag(isa::Pipe::Cube, 1);
    p.barrier();
    const std::string text = isa::disassemble(p);
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("exec 42 cy"), std::string::npos);
    EXPECT_NE(text.find("l1Read=64"), std::string::npos);
    EXPECT_NE(text.find("set_flag 1"), std::string::npos);
    EXPECT_NE(text.find("pipe_barrier"), std::string::npos);
}

TEST(Verify, DisassemblyTruncates)
{
    isa::Program p;
    for (int i = 0; i < 100; ++i)
        p.exec(isa::Pipe::Cube, 1);
    const std::string text = isa::disassemble(p, 10);
    EXPECT_NE(text.find("... 90 more"), std::string::npos);
}

// ------------------------------------------------------ dram timing

TEST(DramTiming, RowHitIsFasterThanMiss)
{
    memory::DramTiming dram;
    const auto miss = dram.access(0, 64, 0.0);
    EXPECT_FALSE(miss.rowHit);
    const auto hit = dram.access(64, 64, miss.completeNs);
    EXPECT_TRUE(hit.rowHit);
    EXPECT_LT(hit.latencyNs, miss.latencyNs);
}

TEST(DramTiming, StreamingHasHighRowHitRate)
{
    memory::DramTiming dram;
    double now = 0;
    for (std::uint64_t a = 0; a < 1 * kMiB; a += 64)
        now = dram.access(a, 64, now).completeNs;
    EXPECT_GT(dram.rowHitRate(), 0.9);
}

TEST(DramTiming, RandomAccessThrashesRows)
{
    memory::DramTiming dram;
    Rng rng(11);
    double now = 0;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t a = rng.uniform(1ull << 30) & ~63ull;
        now = dram.access(a, 64, now).completeNs;
    }
    EXPECT_LT(dram.rowHitRate(), 0.2);
}

TEST(DramTiming, RandomLatencyExceedsStreamingLatency)
{
    memory::DramTiming stream_dram, random_dram;
    double now = 0;
    for (std::uint64_t a = 0; a < 256 * kKiB; a += 64)
        now = stream_dram.access(a, 64, now).completeNs;
    Rng rng(12);
    now = 0;
    for (int i = 0; i < 4096; ++i)
        now = random_dram
                  .access(rng.uniform(1ull << 30) & ~63ull, 64, now)
                  .completeNs;
    EXPECT_GT(random_dram.avgLatencyNs(), stream_dram.avgLatencyNs());
}

TEST(DramTiming, SameBankBackToBackRespectsTrc)
{
    memory::DramTimingConfig cfg;
    memory::DramTiming dram(cfg);
    // Two different rows in the same bank (stride = banks * rowBytes).
    const std::uint64_t stride =
        std::uint64_t(cfg.banks) * cfg.rowBytes;
    const auto first = dram.access(0, 64, 0.0);
    const auto second = dram.access(stride, 64, first.completeNs);
    EXPECT_FALSE(second.rowHit);
    EXPECT_GE(second.completeNs - 0.0, cfg.tRcNs);
}

TEST(DramTiming, ResetClearsState)
{
    memory::DramTiming dram;
    dram.access(0, 64, 0.0);
    dram.reset();
    EXPECT_EQ(dram.accesses(), 0u);
    EXPECT_DOUBLE_EQ(dram.rowHitRate(), 0.0);
}

// ---------------------------------------------------- collectives

TEST(Collectives, TreeBeatsRingForTinyMessages)
{
    const unsigned n = 256;
    const double bw = 12.5e9, lat = 5e-6;
    EXPECT_LT(cluster::treeAllreduceSeconds(1024, n, bw, lat),
              cluster::ringAllreduceSeconds(1024, n, bw, lat));
}

TEST(Collectives, RingMatchesHalvingDoublingBandwidthTerm)
{
    // Large message, no latency: both are bandwidth-optimal.
    const Bytes big = 1ull << 30;
    EXPECT_NEAR(cluster::ringAllreduceSeconds(big, 64, 1e10, 0),
                cluster::halvingDoublingAllreduceSeconds(big, 64, 1e10, 0),
                1e-9);
}

TEST(Collectives, HalvingDoublingWinsAtScaleWithLatency)
{
    const Bytes msg = 1 << 20;
    const unsigned n = 1024;
    EXPECT_LT(
        cluster::halvingDoublingAllreduceSeconds(msg, n, 1e10, 5e-6),
        cluster::ringAllreduceSeconds(msg, n, 1e10, 5e-6));
}

TEST(Collectives, DispatcherCoversAllAlgos)
{
    for (auto algo : {cluster::CollectiveAlgo::Ring,
                      cluster::CollectiveAlgo::HalvingDoubling,
                      cluster::CollectiveAlgo::Tree}) {
        EXPECT_GT(cluster::allreduceAlgoSeconds(algo, 1 << 20, 8, 1e10,
                                                1e-6),
                  0.0);
        EXPECT_DOUBLE_EQ(
            cluster::allreduceAlgoSeconds(algo, 1 << 20, 1, 1e10, 1e-6),
            0.0);
    }
}

// ------------------------------------------------ graph events

TEST(GraphEvents, CrossStreamDependencySerializes)
{
    compiler::App app;
    compiler::Stream producer, consumer;
    producer.tasks.push_back({"p", 500, 1, -1, /*signals=*/1});
    consumer.tasks.push_back({"c", 100, 1, /*waits=*/1, -1});
    app.streams = {producer, consumer};
    const auto r = compiler::schedule({app}, 4);
    // The consumer cannot start before the producer finishes.
    EXPECT_EQ(r.makespan, 600u);
}

TEST(GraphEvents, IndependentStreamsStillOverlap)
{
    compiler::App app;
    compiler::Stream a, b;
    a.tasks.push_back({"a", 500, 1, -1, -1});
    b.tasks.push_back({"b", 500, 1, -1, -1});
    app.streams = {a, b};
    EXPECT_EQ(compiler::schedule({app}, 2).makespan, 500u);
}

TEST(GraphEventsDeath, DependencyCyclePanics)
{
    compiler::App app;
    compiler::Stream a, b;
    a.tasks.push_back({"a", 10, 1, /*waits=*/1, /*signals=*/2});
    b.tasks.push_back({"b", 10, 1, /*waits=*/2, /*signals=*/1});
    app.streams = {a, b};
    EXPECT_DEATH(compiler::schedule({app}, 2), "dependency cycle");
}

} // anonymous namespace
} // namespace ascend
