/**
 * @file
 * Unit tests for the instruction cost model, including parameterized
 * sweeps over GEMM shapes and core versions.
 */

#include <gtest/gtest.h>

#include "core/cost_model.hh"

namespace ascend {
namespace {

using core::CostModel;

CostModel
maxModel()
{
    return CostModel(arch::makeCoreConfig(arch::CoreVersion::Max));
}

TEST(CostModel, CubeGemmExactFractal)
{
    const CostModel cm = maxModel();
    // One 16x16x16 fractal = 1 cycle + overhead.
    EXPECT_EQ(cm.cubeGemm(16, 16, 16, DataType::Fp16),
              CostModel::kComputeOverhead + 1);
}

TEST(CostModel, CubeGemmCeilsPartialFractals)
{
    const CostModel cm = maxModel();
    EXPECT_EQ(cm.cubeGemm(17, 16, 16, DataType::Fp16),
              CostModel::kComputeOverhead + 2);
    EXPECT_EQ(cm.cubeGemm(1, 1, 1, DataType::Fp16),
              CostModel::kComputeOverhead + 1);
    EXPECT_EQ(cm.cubeGemm(32, 32, 32, DataType::Fp16),
              CostModel::kComputeOverhead + 8);
}

TEST(CostModel, Int8DoublesReductionDim)
{
    const CostModel cm = maxModel();
    // int8 fractal is 16x32x16: k=32 is one fractal, not two.
    EXPECT_EQ(cm.cubeGemm(16, 32, 16, DataType::Int8),
              CostModel::kComputeOverhead + 1);
    EXPECT_EQ(cm.cubeGemm(16, 32, 16, DataType::Fp16),
              CostModel::kComputeOverhead + 2);
}

TEST(CostModel, GemmFlops)
{
    EXPECT_EQ(CostModel::gemmFlops(2, 3, 4), 48u);
    EXPECT_EQ(CostModel::gemmFlops(16, 16, 16), 8192u);
}

TEST(CostModel, VectorOpLaneThroughput)
{
    const CostModel cm = maxModel();
    // 256 B width = 128 fp16 lanes.
    EXPECT_EQ(cm.vectorOp(128, DataType::Fp16),
              CostModel::kComputeOverhead + 1);
    EXPECT_EQ(cm.vectorOp(129, DataType::Fp16),
              CostModel::kComputeOverhead + 2);
    // int8 doubles the lane count.
    EXPECT_EQ(cm.vectorOp(256, DataType::Int8),
              CostModel::kComputeOverhead + 1);
}

TEST(CostModel, VectorOpPassesMultiplyWork)
{
    const CostModel cm = maxModel();
    const Cycles one = cm.vectorOp(1 << 16, DataType::Fp16, 1.0);
    const Cycles four = cm.vectorOp(1 << 16, DataType::Fp16, 4.0);
    EXPECT_NEAR(double(four - CostModel::kComputeOverhead),
                4.0 * double(one - CostModel::kComputeOverhead), 4.0);
}

TEST(CostModel, VectorOpUbBandwidthBound)
{
    // Shrink the UB port so bandwidth, not lanes, binds.
    auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    cfg.busUbBytesPerCycle = 16;
    const CostModel cm(cfg);
    // 1024 fp16 elems, 1 pass: lanes would need 8 cycles, but the UB
    // port moves 2 x 2048 bytes at 2 x 16 B/cycle = 128 cycles.
    EXPECT_EQ(cm.vectorOp(1024, DataType::Fp16),
              CostModel::kComputeOverhead + 128);
}

TEST(CostModel, MteTransfersMatchBusWidths)
{
    const CostModel cm = maxModel();
    const auto &cfg = cm.config();
    EXPECT_EQ(cm.mte1A(cfg.busABytesPerCycle * 10),
              CostModel::kMoveOverhead + 10);
    EXPECT_EQ(cm.mte1B(cfg.busBBytesPerCycle * 3),
              CostModel::kMoveOverhead + 3);
    EXPECT_EQ(cm.mte3L1(cfg.busUbBytesPerCycle),
              CostModel::kMoveOverhead + 1);
}

TEST(CostModel, MteZeroBytesCostsOnlyOverhead)
{
    const CostModel cm = maxModel();
    EXPECT_EQ(cm.mte2(0), CostModel::kMoveOverhead);
}

TEST(CostModel, Mte3ExtIsBoundByNarrowerBus)
{
    const CostModel cm = maxModel();
    const auto &cfg = cm.config();
    const Bytes narrow =
        std::min(cfg.busUbBytesPerCycle, cfg.busExtBytesPerCycle);
    EXPECT_EQ(cm.mte3Ext(narrow * 5), CostModel::kMoveOverhead + 5);
}

/** Property sweep: cube time scales with volume for every preset. */
class CostModelPerCore
    : public testing::TestWithParam<arch::CoreVersion>
{
};

TEST_P(CostModelPerCore, CubeTimeMonotonicInEachDim)
{
    const CostModel cm(arch::makeCoreConfig(GetParam()));
    const DataType dt = GetParam() == arch::CoreVersion::Tiny
        ? DataType::Int8 : DataType::Fp16;
    Cycles prev = 0;
    for (std::uint64_t m = 16; m <= 512; m *= 2) {
        const Cycles c = cm.cubeGemm(m, 64, 64, dt);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST_P(CostModelPerCore, PeakThroughputIsAchievableOnBigGemm)
{
    const auto cfg = arch::makeCoreConfig(GetParam());
    const CostModel cm(cfg);
    const DataType dt = GetParam() == arch::CoreVersion::Tiny
        ? DataType::Int8 : DataType::Fp16;
    const std::uint64_t m = 1024, k = 1024, n = 1024;
    const Cycles c = cm.cubeGemm(m, k, n, dt);
    const double flops_per_cycle =
        double(CostModel::gemmFlops(m, k, n)) / double(c);
    const double peak = double(cfg.cubeShapeFor(dt).flopsPerCycle());
    EXPECT_GT(flops_per_cycle, 0.95 * peak);
    EXPECT_LE(flops_per_cycle, peak);
}

TEST_P(CostModelPerCore, VectorNeverExceedsLaneRate)
{
    const auto cfg = arch::makeCoreConfig(GetParam());
    const CostModel cm(cfg);
    const DataType dt = GetParam() == arch::CoreVersion::Tiny
        ? DataType::Int8 : DataType::Fp16;
    for (std::uint64_t elems : {64ull, 1000ull, 100000ull}) {
        const Cycles c = cm.vectorOp(elems, dt);
        EXPECT_GE(c, ceilDiv(elems, cfg.vectorLanes(dt)));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCores, CostModelPerCore,
    testing::Values(arch::CoreVersion::Tiny, arch::CoreVersion::Lite,
                    arch::CoreVersion::Mini, arch::CoreVersion::Std,
                    arch::CoreVersion::Max),
    [](const auto &info) {
        std::string s = arch::toString(info.param);
        for (auto &ch : s)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return s;
    });

} // anonymous namespace
} // namespace ascend
