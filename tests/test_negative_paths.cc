/**
 * @file
 * Negative-path tests: the stack must reject malformed inputs with
 * structured ascend::Error values (never silently mis-simulate, never
 * abort the process for recoverable user error), and shared state
 * like the SimCache must stay clean when a computation throws.
 */

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "cluster/collective.hh"
#include "common/error.hh"
#include "compiler/autotiler.hh"
#include "compiler/layer_compiler.hh"
#include "model/zoo.hh"
#include "runtime/sim_cache.hh"
#include "runtime/sim_session.hh"

using namespace ascend;
using compiler::LayerCompiler;

namespace {

/** Expect fn() to throw Error with @p code, message containing @p hint. */
template <typename Fn>
void
expectError(Fn &&fn, ErrorCode code, const std::string &hint)
{
    try {
        fn();
        FAIL() << "expected ascend::Error [" << toString(code) << "]";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), code) << e.what();
        EXPECT_NE(std::string(e.what()).find(hint), std::string::npos)
            << "message '" << e.what() << "' lacks '" << hint << "'";
    }
}

TEST(ErrorType, CarriesCodeAndMessage)
{
    const Error e(ErrorCode::InvalidLayer, "bad shape");
    EXPECT_EQ(e.code(), ErrorCode::InvalidLayer);
    EXPECT_EQ(e.context(), "bad shape");
    EXPECT_NE(std::string(e.what()).find("invalid-layer"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bad shape"),
              std::string::npos);
    EXPECT_STREQ(toString(ErrorCode::TileTooLarge), "tile-too-large");
    EXPECT_STREQ(toString(ErrorCode::ParallelFailure),
                 "parallel-failure");
}

TEST(NegativeLayers, MalformedShapesRejected)
{
    LayerCompiler lc(arch::makeCoreConfig(arch::CoreVersion::Max));

    model::Layer conv = model::Layer::conv2d(
        "c", 1, 3, 224, 224, 8, 3, 1, 1);
    conv.inC = 0;
    expectError([&] { lc.compile(conv); }, ErrorCode::InvalidLayer,
                "input dims");

    conv = model::Layer::conv2d("c", 1, 3, 224, 224, 8, 3, 1, 1);
    conv.batch = 0;
    expectError([&] { lc.compile(conv); }, ErrorCode::InvalidLayer,
                "batch");

    conv = model::Layer::conv2d("c", 1, 3, 224, 224, 8, 3, 1, 1);
    conv.strideH = 0;
    expectError([&] { lc.compile(conv); }, ErrorCode::InvalidLayer,
                "strides");

    // 7x7 kernel over a 4x4 unpadded input has no valid placement.
    conv = model::Layer::conv2d("c", 1, 3, 4, 4, 8, 7, 1, 0);
    expectError([&] { lc.compile(conv); }, ErrorCode::InvalidLayer,
                "kernel larger");

    model::Layer fc = model::Layer::linear("fc", 32, 1024, 1000);
    fc.gemmK = 0;
    expectError([&] { lc.compile(fc); }, ErrorCode::InvalidLayer,
                "GEMM dims");

    model::Layer ln = model::Layer::layerNorm("ln", 1 << 20, 768);
    ln.rowLen = 0;
    expectError([&] { lc.compile(ln); }, ErrorCode::InvalidLayer,
                "row length");

    // The well-formed versions still compile.
    EXPECT_GT(lc.compile(model::Layer::conv2d("c", 1, 3, 224, 224, 8,
                                              3, 1, 1)).size(), 0u);
    EXPECT_GT(lc.compile(model::Layer::linear("fc", 32, 1024, 1000))
                  .size(), 0u);
}

TEST(NegativeTiles, OversizeTileRejected)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    compiler::AutoTiler tiler(cfg);
    const model::Layer fc = model::Layer::linear("fc", 512, 4096, 4096);

    compiler::GemmTile huge;
    huge.mt = 4096;
    huge.kt = 4096;
    huge.nt = 4096; // 32 MiB of A alone: no L0 holds that
    expectError([&] { tiler.compileWithTile(fc, huge); },
                ErrorCode::TileTooLarge, "overflows L0");

    compiler::GemmTile zero;
    zero.mt = 0;
    expectError([&] { tiler.compileWithTile(fc, zero); },
                ErrorCode::TileTooLarge, "positive");

    // A legitimate searched tile still compiles and simulates.
    const auto found = tiler.search(fc, 8);
    EXPECT_GT(found.candidatesTried, 0u);
    EXPECT_GT(tiler.compileWithTile(fc, found.best).size(), 0u);
}

TEST(NegativeCache, ThrowingComputationLeavesCacheClean)
{
    auto cache = std::make_shared<runtime::SimCache>();
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    runtime::SimSession session(cfg, {}, cache);

    model::Layer bad = model::Layer::linear("bad", 32, 1024, 1000);
    bad.gemmM = 0;
    const auto before = cache->stats();
    EXPECT_THROW(session.runLayer(bad), Error);
    const auto after = cache->stats();
    // The failed run counts its probe as a miss but must not insert
    // a poisoned entry...
    EXPECT_EQ(after.entries, before.entries);
    // ...and must not break later lookups: the repaired layer runs,
    // caches, and repeat runs hit.
    const model::Layer good = model::Layer::linear("bad", 32, 1024,
                                                   1000);
    const core::SimResult first = session.runLayer(good);
    const core::SimResult again = session.runLayer(good);
    EXPECT_EQ(first.totalCycles, again.totalCycles);
    EXPECT_GT(cache->stats().hits, after.hits);
    // The malformed layer still throws (its failure was never cached
    // as a result).
    EXPECT_THROW(session.runLayer(bad), Error);
}

TEST(NegativeClusterConfig, ValidationRejectsDegenerateTopologies)
{
    cluster::ServerConfig server;
    server.hccsBytesPerSec = 0;
    expectError([&] { server.validate(); },
                ErrorCode::ConfigValidation, "hccs");

    server = cluster::ServerConfig{};
    server.linkLatencySec = -1e-6;
    expectError([&] { server.validate(); },
                ErrorCode::ConfigValidation, "latency");

    server = cluster::ServerConfig{};
    server.chips = 0;
    expectError([&] { server.validate(); },
                ErrorCode::ConfigValidation, "chip");

    server = cluster::ServerConfig{};
    server.chipsPerGroup = 3; // does not divide 8
    expectError([&] { server.validate(); },
                ErrorCode::ConfigValidation, "divide");

    cluster::ClusterConfig cl;
    cl.netBytesPerSec = 0;
    expectError([&] { cl.validate(); },
                ErrorCode::ConfigValidation, "net");

    cl = cluster::ClusterConfig{};
    cl.servers = 0;
    expectError([&] { cl.validate(); },
                ErrorCode::ConfigValidation, "server");

    EXPECT_NO_THROW(cluster::ClusterConfig{}.validate());
}

TEST(NegativeClusterConfig, ParserRejectsMalformedText)
{
    expectError([] { cluster::clusterConfigFromString("servers"); },
                ErrorCode::ConfigParse, "key = value");
    expectError(
        [] { cluster::clusterConfigFromString("bogus = 1\n"); },
        ErrorCode::ConfigParse, "unknown key");
    expectError(
        [] { cluster::clusterConfigFromString("servers = many\n"); },
        ErrorCode::ConfigParse, "bad");
    expectError(
        [] { cluster::clusterConfigFromString("net_bytes_per_sec = nan\n"); },
        ErrorCode::ConfigParse, "bad");
    // Values that parse but violate validation surface as such.
    expectError(
        [] { cluster::clusterConfigFromString("servers = 0\n"); },
        ErrorCode::ConfigValidation, "server");
}

TEST(NegativeClusterConfig, RoundTrips)
{
    cluster::ClusterConfig cl;
    cl.servers = 12;
    cl.server.chips = 4;
    cl.server.chipsPerGroup = 2;
    cl.netBytesPerSec = 25e9;
    const std::string text = cluster::clusterConfigToString(cl);
    const cluster::ClusterConfig back =
        cluster::clusterConfigFromString(text);
    EXPECT_EQ(back.servers, cl.servers);
    EXPECT_EQ(back.server.chips, cl.server.chips);
    EXPECT_EQ(back.server.chipsPerGroup, cl.server.chipsPerGroup);
    EXPECT_EQ(back.netBytesPerSec, cl.netBytesPerSec);
    EXPECT_EQ(back.server.hccsBytesPerSec, cl.server.hccsBytesPerSec);
}

TEST(NegativeCoreConfig, ZeroClockRejectedOnLoad)
{
    arch::CoreConfig cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    cfg.clockGhz = 0;
    expectError([&] { cfg.validate(); }, ErrorCode::ConfigValidation,
                "clock");
}

} // namespace
