/**
 * @file
 * Tests for the layer compiler: tile selection must respect buffer
 * capacities for arbitrary shapes on every core, and every generated
 * program must be deadlock-free and conserve work/traffic invariants
 * when executed on the simulator.
 */

#include <cctype>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/rng.hh"
#include "compiler/layer_compiler.hh"
#include "model/network.hh"
#include "core/core_sim.hh"

namespace ascend {
namespace {

using compiler::GemmTile;
using compiler::LayerCompiler;
using isa::Bus;
using isa::Pipe;
using model::Layer;

DataType
nativeType(arch::CoreVersion v)
{
    return v == arch::CoreVersion::Tiny ? DataType::Int8 : DataType::Fp16;
}

TEST(TileSelect, RespectsL0CapacitiesOnMax)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    const LayerCompiler lc(cfg);
    const GemmTile t = lc.selectTile(4096, 4096, 4096, DataType::Fp16);
    EXPECT_LE(t.mt * t.kt * 2 * 2, cfg.l0aBytes);
    EXPECT_LE(t.kt * t.nt * 2 * 2, cfg.l0bBytes);
    EXPECT_LE(t.mt * t.nt * 4 * 2, cfg.l0cBytes);
    // Tiles are fractal-aligned.
    EXPECT_EQ(t.mt % cfg.cube.m0, 0u);
    EXPECT_EQ(t.kt % cfg.cube.k0, 0u);
    EXPECT_EQ(t.nt % cfg.cube.n0, 0u);
}

TEST(TileSelect, SmallGemmGetsAtLeastOneFractal)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    const LayerCompiler lc(cfg);
    const GemmTile t = lc.selectTile(1, 1, 1, DataType::Fp16);
    EXPECT_GE(t.mt, cfg.cube.m0);
    EXPECT_GE(t.kt, cfg.cube.k0);
    EXPECT_GE(t.nt, cfg.cube.n0);
}

TEST(Compile, LinearProgramRunsAndMatchesFlops)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    const LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    const Layer l = Layer::linear("fc", 512, 512, 512);
    const auto r = sim.run(lc.compile(l));
    EXPECT_EQ(r.totalFlops, l.flops());
    EXPECT_GT(r.pipe(Pipe::Cube).busyCycles, 0u);
    EXPECT_GT(r.pipe(Pipe::Vector).busyCycles, 0u);
}

TEST(Compile, CubeTimeRespectsPeakThroughput)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    const LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    const Layer l = Layer::linear("fc", 1024, 1024, 1024);
    const auto r = sim.run(lc.compile(l));
    const double flops_per_cycle =
        double(r.totalFlops) / double(r.pipe(Pipe::Cube).busyCycles);
    EXPECT_LE(flops_per_cycle, double(cfg.cube.flopsPerCycle()) + 1e-9);
    EXPECT_GT(flops_per_cycle, 0.8 * cfg.cube.flopsPerCycle());
}

TEST(Compile, ExtTrafficCoversCompulsoryVolume)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    const LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    const Layer l = Layer::linear("fc", 256, 256, 256);
    const auto r = sim.run(lc.compile(l));
    // At minimum the inputs, weights and outputs cross the boundary.
    EXPECT_GE(r.bus(Bus::ExtA) + 4096, l.inputBytes());
    EXPECT_GE(r.bus(Bus::ExtB) + 4096, l.weightBytes());
    EXPECT_GE(r.bus(Bus::ExtOut) + 4096, l.outputBytes());
}

TEST(Compile, ResidentPanelsReduceExtTraffic)
{
    // A GEMM whose B matrix fits L1 streams it once; one that does
    // not re-streams per m-tile pass.
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    const LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    const Layer small_b = Layer::linear("s", 2048, 128, 128);
    const auto rs = sim.run(lc.compile(small_b));
    EXPECT_LE(rs.bus(Bus::ExtB), 2 * small_b.weightBytes());

    const Layer big_b = Layer::linear("b", 2048, 1024, 1024);
    const auto rb = sim.run(lc.compile(big_b));
    EXPECT_GT(rb.bus(Bus::ExtB), 2 * big_b.weightBytes());
}

TEST(Compile, Im2colChargesRawL1Reads)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    const LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    const Layer conv = Layer::conv2d("c", 1, 64, 56, 56, 64, 3, 1, 1);
    const auto r = sim.run(lc.compile(conv));
    std::uint64_t m, k, n;
    conv.lowerToGemm(m, k, n);
    const Bytes expanded = bytesOf(conv.dtype, m * k);
    // L1 reads should be well below the expanded im2col volume.
    EXPECT_LT(r.bus(Bus::L1Read), expanded);
}

TEST(Compile, DepthwiseRunsOnVectorPipe)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    const LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    const Layer dw = Layer::depthwiseConv2d("d", 1, 96, 56, 56, 3, 1, 1);
    const auto r = sim.run(lc.compile(dw));
    EXPECT_EQ(r.pipe(Pipe::Cube).busyCycles, 0u);
    EXPECT_GT(r.pipe(Pipe::Vector).busyCycles, 0u);
}

TEST(Compile, SoftmaxPassesCostMoreThanRelu)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    const LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    const auto relu = sim.run(lc.compile(
        Layer::activation("r", 1 << 20, model::ActKind::Relu)));
    const auto sm =
        sim.run(lc.compile(Layer::softmax("s", 1 << 10, 1 << 10)));
    EXPECT_GT(sm.pipe(Pipe::Vector).busyCycles,
              2 * relu.pipe(Pipe::Vector).busyCycles);
}

TEST(Compile, BackwardOverridesShrinkExtTraffic)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    const LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    const Layer fwd = Layer::conv2d("c", 2, 64, 56, 56, 64, 3, 1, 1);
    const auto bwd = model::backwardLayers(fwd);
    // dW with the raw override...
    const auto with = sim.run(lc.compile(bwd[1]));
    // ...versus the same GEMM without it.
    Layer raw = bwd[1];
    raw.inputBytesOverride = 0;
    const auto without = sim.run(lc.compile(raw));
    EXPECT_LT(with.bus(Bus::ExtA), without.bus(Bus::ExtA));
}

TEST(Compile, PipelineDepthZeroRejected)
{
    compiler::CompileOptions options;
    options.pipelineDepth = 0;
    try {
        LayerCompiler lc(arch::makeCoreConfig(arch::CoreVersion::Max),
                         options);
        FAIL() << "pipeline depth 0 must be rejected";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::ConfigValidation);
        EXPECT_NE(std::string(e.what()).find("pipeline depth"),
                  std::string::npos);
    }
}

/**
 * Property suite: random GEMM shapes compile to deadlock-free
 * programs with exact FLOP accounting on every core preset.
 */
class CompileProperty : public testing::TestWithParam<arch::CoreVersion>
{
};

TEST_P(CompileProperty, RandomGemmsRunCleanly)
{
    const auto cfg = arch::makeCoreConfig(GetParam());
    const LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    const DataType dt = nativeType(GetParam());
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 1);
    for (int trial = 0; trial < 12; ++trial) {
        const std::uint64_t m = 1 + rng.uniform(700);
        const std::uint64_t k = 1 + rng.uniform(700);
        const std::uint64_t n = 1 + rng.uniform(700);
        const Layer l = Layer::linear("g", m, k, n, dt);
        const auto r = sim.run(lc.compile(l)); // panics on deadlock
        EXPECT_EQ(r.totalFlops, l.flops()) << m << "x" << k << "x" << n;
        EXPECT_GT(r.totalCycles, 0u);
    }
}

TEST_P(CompileProperty, RandomConvsRunCleanly)
{
    const auto cfg = arch::makeCoreConfig(GetParam());
    const LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    const DataType dt = nativeType(GetParam());
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
    for (int trial = 0; trial < 8; ++trial) {
        const unsigned in_c = 1 + unsigned(rng.uniform(64));
        const unsigned out_c = 1 + unsigned(rng.uniform(64));
        const unsigned sp = 8 + unsigned(rng.uniform(56));
        const unsigned kern = 1 + 2 * unsigned(rng.uniform(3));
        const Layer l = Layer::conv2d("c", 1, in_c, sp, sp, out_c, kern,
                                      1 + unsigned(rng.uniform(2)),
                                      kern / 2, dt);
        const auto r = sim.run(lc.compile(l));
        EXPECT_EQ(r.totalFlops, l.flops());
    }
}

TEST_P(CompileProperty, VectorLayersRunCleanly)
{
    const auto cfg = arch::makeCoreConfig(GetParam());
    const LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    const DataType dt = nativeType(GetParam());
    for (const Layer &l :
         {Layer::batchNorm("bn", 100000, dt),
          Layer::layerNorm("ln", 128, 512, dt),
          Layer::softmax("sm", 64, 768, dt),
          Layer::activation("act", 55555, model::ActKind::Gelu, dt),
          Layer::elementwise("add", 131072, dt),
          Layer::pool2d("pool", 1, 32, 56, 56, 2, 2, dt),
          Layer::depthwiseConv2d("dw", 1, 32, 28, 28, 3, 1, 1, dt)}) {
        const auto r = sim.run(lc.compile(l));
        EXPECT_GT(r.pipe(Pipe::Vector).busyCycles, 0u) << l.name;
        EXPECT_EQ(r.pipe(Pipe::Cube).busyCycles, 0u) << l.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCores, CompileProperty,
    testing::Values(arch::CoreVersion::Tiny, arch::CoreVersion::Lite,
                    arch::CoreVersion::Mini, arch::CoreVersion::Std,
                    arch::CoreVersion::Max),
    [](const auto &info) {
        std::string s = arch::toString(info.param);
        for (auto &ch : s)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return s;
    });

} // anonymous namespace
} // namespace ascend
