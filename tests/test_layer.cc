/**
 * @file
 * Unit tests for the layer IR: geometry, FLOP and volume formulas,
 * GEMM lowering, and traffic overrides.
 */

#include <gtest/gtest.h>

#include "model/layer.hh"

namespace ascend {
namespace model {
namespace {

TEST(Layer, ConvGeometry)
{
    const Layer c = Layer::conv2d("c", 1, 3, 224, 224, 64, 7, 2, 3);
    EXPECT_EQ(c.outH(), 112u);
    EXPECT_EQ(c.outW(), 112u);
    const Layer s1 = Layer::conv2d("s", 1, 8, 56, 56, 8, 3, 1, 1);
    EXPECT_EQ(s1.outH(), 56u);
    const Layer nopad = Layer::conv2d("n", 1, 8, 56, 56, 8, 1, 1, 0);
    EXPECT_EQ(nopad.outH(), 56u);
}

TEST(Layer, ConvLowersToIm2colGemm)
{
    const Layer c = Layer::conv2d("c", 2, 16, 28, 28, 32, 3, 1, 1);
    std::uint64_t m, k, n;
    c.lowerToGemm(m, k, n);
    EXPECT_EQ(m, 2u * 28 * 28);
    EXPECT_EQ(k, 16u * 9);
    EXPECT_EQ(n, 32u);
}

TEST(Layer, ConvFlopsMatchHandComputation)
{
    // conv1 of ResNet50 at b=1: 2 * 112*112*64 * 3*49 MACs.
    const Layer c = Layer::conv2d("c", 1, 3, 224, 224, 64, 7, 2, 3);
    EXPECT_EQ(c.flops(), 2ull * 112 * 112 * 64 * 3 * 49);
}

TEST(Layer, DepthwiseFlops)
{
    const Layer d = Layer::depthwiseConv2d("d", 1, 32, 112, 112, 3, 1, 1);
    EXPECT_EQ(d.flops(), 2ull * 32 * 112 * 112 * 9);
    EXPECT_FALSE(d.isCubeLayer());
}

TEST(Layer, LinearVolumes)
{
    const Layer l = Layer::linear("fc", 8, 2048, 1000);
    EXPECT_EQ(l.flops(), 2ull * 8 * 2048 * 1000);
    EXPECT_EQ(l.inputBytes(), 8u * 2048 * 2);
    EXPECT_EQ(l.weightBytes(), 2048u * 1000 * 2);
    EXPECT_EQ(l.outputBytes(), 8u * 1000 * 2);
    EXPECT_TRUE(l.isCubeLayer());
}

TEST(Layer, BatchedMatmulScalesByCount)
{
    const Layer b = Layer::batchedMatmul("bmm", 16, 128, 64, 128);
    EXPECT_EQ(b.flops(), 16ull * 2 * 128 * 64 * 128);
    EXPECT_EQ(b.inputBytes(), 16ull * 128 * 64 * 2);
    EXPECT_EQ(b.weightBytes(), 16ull * 64 * 128 * 2);
}

TEST(Layer, Int8HalvesVolumes)
{
    const Layer l = Layer::linear("fc", 8, 64, 64, DataType::Int8);
    EXPECT_EQ(l.inputBytes(), 8u * 64);
    const Layer f = Layer::linear("fc", 8, 64, 64, DataType::Fp16);
    EXPECT_EQ(f.inputBytes(), 2 * l.inputBytes());
}

TEST(Layer, PoolVolumesAndFlops)
{
    const Layer p = Layer::pool2d("p", 1, 64, 112, 112, 2, 2);
    EXPECT_EQ(p.outH(), 56u);
    EXPECT_EQ(p.flops(), 1ull * 64 * 56 * 56 * 4);
    EXPECT_FALSE(p.isCubeLayer());
}

TEST(Layer, NormAndActivationVolumes)
{
    const Layer bn = Layer::batchNorm("bn", 1000);
    EXPECT_EQ(bn.flops(), 1000u);
    EXPECT_EQ(bn.inputBytes(), 2000u);
    const Layer ln = Layer::layerNorm("ln", 10, 128);
    EXPECT_EQ(ln.elems, 1280u);
    EXPECT_EQ(ln.rowLen, 128u);
    EXPECT_EQ(ln.flops(), 4u * 1280);
    const Layer sm = Layer::softmax("sm", 4, 512);
    EXPECT_EQ(sm.elems, 2048u);
    const Layer act = Layer::activation("a", 100, ActKind::Gelu);
    EXPECT_EQ(act.flops(), 100u);
}

TEST(Layer, ElementwiseHasNoWeights)
{
    const Layer e = Layer::elementwise("add", 4096);
    EXPECT_EQ(e.weightBytes(), 0u);
    EXPECT_EQ(e.inputBytes(), e.outputBytes());
}

TEST(Layer, OverridesReplaceVolumes)
{
    Layer l = Layer::batchedMatmul("dW", 1, 576, 12544, 64);
    const Bytes logical_in = l.inputBytes();
    l.inputBytesOverride = 1234;
    EXPECT_EQ(l.inputBytes(), 1234u);
    EXPECT_LT(l.inputBytes(), logical_in);
    l.outputBytesOverride = 99;
    EXPECT_EQ(l.outputBytes(), 99u);
}

TEST(LayerDeath, LowerToGemmOnVectorLayerPanics)
{
    const Layer bn = Layer::batchNorm("bn", 10);
    std::uint64_t m, k, n;
    EXPECT_DEATH(bn.lowerToGemm(m, k, n), "non-GEMM");
}

TEST(Layer, KindNames)
{
    EXPECT_STREQ(toString(LayerKind::Conv2d), "conv2d");
    EXPECT_STREQ(toString(LayerKind::DepthwiseConv2d), "dwconv2d");
    EXPECT_STREQ(toString(LayerKind::Softmax), "softmax");
}

/** Batch scales m but not weights, for every conv kernel size. */
class ConvBatchScaling : public testing::TestWithParam<unsigned>
{
};

TEST_P(ConvBatchScaling, MScalesWeightsDoNot)
{
    const unsigned kernel = GetParam();
    const Layer b1 = Layer::conv2d("c", 1, 16, 56, 56, 32, kernel, 1,
                                   kernel / 2);
    const Layer b4 = Layer::conv2d("c", 4, 16, 56, 56, 32, kernel, 1,
                                   kernel / 2);
    std::uint64_t m1, k1, n1, m4, k4, n4;
    b1.lowerToGemm(m1, k1, n1);
    b4.lowerToGemm(m4, k4, n4);
    EXPECT_EQ(m4, 4 * m1);
    EXPECT_EQ(k4, k1);
    EXPECT_EQ(n4, n1);
    EXPECT_EQ(b1.weightBytes(), b4.weightBytes());
    EXPECT_EQ(b4.flops(), 4 * b1.flops());
}

INSTANTIATE_TEST_SUITE_P(Kernels, ConvBatchScaling,
                         testing::Values(1u, 3u, 5u, 7u));

} // anonymous namespace
} // namespace model
} // namespace ascend
