/**
 * @file
 * Property/metamorphic tests for the auto-tiling tier: for seeded
 * random GEMM shapes the chosen tiling must (1) partition the
 * iteration space exactly — every (m, k, n) element covered once —
 * (2) fit the double-buffered L0 buffers, and (3) never get slower
 * when the L1 budget grows (more operand residency can only remove
 * MTE2 traffic, the tile choice itself only depends on L0).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "compiler/autotiler.hh"
#include "compiler/layer_compiler.hh"
#include "core/core_sim.hh"

namespace ascend {
namespace {

using compiler::GemmTile;
using compiler::LayerCompiler;

struct Shape
{
    std::uint64_t m, k, n;
};

/** Seeded random shapes spanning tiny edge cases to full panels. */
std::vector<Shape>
randomShapes(std::uint64_t seed, unsigned count, std::uint64_t bound)
{
    Rng rng(seed);
    std::vector<Shape> shapes;
    shapes.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        shapes.push_back(Shape{1 + rng.uniform(bound),
                               1 + rng.uniform(bound),
                               1 + rng.uniform(bound)});
    // Degenerate corners the uniform draw rarely hits.
    shapes.push_back(Shape{1, 1, 1});
    shapes.push_back(Shape{1, bound, 1});
    shapes.push_back(Shape{bound, 1, bound});
    return shapes;
}

/** Elements covered by tiling [0,dim) with tile size t, exactly. */
std::uint64_t
coveredOnce(std::uint64_t dim, std::uint64_t t)
{
    std::uint64_t covered = 0;
    const std::uint64_t tiles = ceilDiv(dim, t);
    for (std::uint64_t i = 0; i < tiles; ++i)
        covered += std::min(t, dim - i * t);
    return covered;
}

TEST(TilingProperties, TilesPartitionIterationSpaceExactlyOnce)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    const LayerCompiler lc(cfg);
    for (const Shape &s : randomShapes(0xc0ffee, 40, 3000)) {
        const GemmTile tile =
            lc.selectTile(s.m, s.k, s.n, DataType::Fp16);
        ASSERT_GT(tile.mt, 0u);
        ASSERT_GT(tile.kt, 0u);
        ASSERT_GT(tile.nt, 0u);
        // Clamped tiles never overrun the problem.
        EXPECT_LE(tile.mt, std::max<std::uint64_t>(s.m, cfg.cube.m0));
        // Per-axis exact cover; the cross product then covers every
        // (m, k, n) element exactly once.
        EXPECT_EQ(coveredOnce(s.m, tile.mt), s.m);
        EXPECT_EQ(coveredOnce(s.k, tile.kt), s.k);
        EXPECT_EQ(coveredOnce(s.n, tile.nt), s.n);
    }
}

TEST(TilingProperties, SelectedTilesFitDoubleBufferedL0)
{
    for (auto v : {arch::CoreVersion::Max, arch::CoreVersion::Lite,
                   arch::CoreVersion::Tiny}) {
        const auto cfg = arch::makeCoreConfig(v);
        const LayerCompiler lc(cfg);
        // Tiny is an int8-only core.
        const DataType dt = v == arch::CoreVersion::Tiny
                                ? DataType::Int8
                                : DataType::Fp16;
        const std::uint64_t es = bitsOf(dt) / 8;
        for (const Shape &s : randomShapes(0xfeed + unsigned(v), 30,
                                           4096)) {
            const GemmTile t = lc.selectTile(s.m, s.k, s.n, dt);
            // Operand element size, fp32 accumulator, double buffered.
            EXPECT_LE(t.mt * t.kt * es * 2, cfg.l0aBytes) << cfg.name;
            EXPECT_LE(t.kt * t.nt * es * 2, cfg.l0bBytes) << cfg.name;
            EXPECT_LE(t.mt * t.nt * 4 * 2, cfg.l0cBytes) << cfg.name;
        }
    }
}

TEST(TilingProperties, SearchedTilesFitDoubleBufferedL0)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    const compiler::AutoTiler tiler(cfg);
    for (const Shape &s : randomShapes(0xbead, 4, 512)) {
        const auto r = tiler.search(
            model::Layer::linear("fc", s.m, s.k, s.n), 16);
        EXPECT_LE(r.best.mt * r.best.kt * 2 * 2, cfg.l0aBytes);
        EXPECT_LE(r.best.kt * r.best.nt * 2 * 2, cfg.l0bBytes);
        EXPECT_LE(r.best.mt * r.best.nt * 4 * 2, cfg.l0cBytes);
        EXPECT_LE(r.bestCycles, r.heuristicCycles);
    }
}

TEST(TilingProperties, CyclesMonotonicallyNonIncreasingAsL1Grows)
{
    // Metamorphic relation: growing only l1Bytes keeps the tile
    // (L0-bound) and the work identical but makes operand panels
    // resident sooner, so simulated cycles must not increase.
    const auto base = arch::makeCoreConfig(arch::CoreVersion::Lite);
    for (const Shape &s : randomShapes(0xd1ce, 6, 700)) {
        const auto layer = model::Layer::linear("fc", s.m, s.k, s.n);
        Cycles prev = 0;
        for (unsigned scale : {1u, 2u, 4u, 8u}) {
            auto cfg = base;
            cfg.l1Bytes = base.l1Bytes * scale;
            const LayerCompiler lc(cfg);
            core::CoreSim sim(cfg);
            const Cycles cycles = sim.run(lc.compile(layer)).totalCycles;
            if (prev) {
                EXPECT_LE(cycles, prev)
                    << s.m << "x" << s.k << "x" << s.n << " at L1 x"
                    << scale;
            }
            prev = cycles;
        }
    }
}

} // anonymous namespace
} // namespace ascend
