/**
 * @file
 * Property tests for the graph IR: importer round-trips exactly
 * (parse(print(g)) == g, tensor ids included), lowering totals are
 * invariant under any valid topological order, and randomized DAGs
 * survive the full build -> validate -> print -> parse -> lower
 * pipeline (run under the sanitizer CI jobs, this doubles as the
 * fuzz harness ISSUE.md asks for).
 */

#include <algorithm>
#include <queue>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "graph/agr.hh"
#include "graph/decoder.hh"
#include "graph/lower.hh"
#include "graph/zoo_graphs.hh"
#include "runtime/perf_stats.hh"
#include "runtime/sim_cache.hh"

using namespace ascend;

namespace {

/** Expect fn() to throw Error with @p code. */
template <typename Fn>
void
expectError(Fn &&fn, ErrorCode code)
{
    try {
        fn();
        FAIL() << "expected ascend::Error [" << toString(code) << "]";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), code) << e.what();
    }
}

void
expectRoundTrips(const graph::Graph &g)
{
    const std::string text = graph::printAgr(g);
    const graph::Graph back = graph::parseAgr(text);
    EXPECT_TRUE(back == g) << g.name << " did not round-trip";
    // And the text itself is a fixed point.
    EXPECT_EQ(graph::printAgr(back), text) << g.name;
}

/**
 * Kahn's algorithm with a MAX-heap: a valid topological order that
 * differs from the builder's insertion order whenever the DAG has
 * any parallelism — the adversarial schedule for invariance tests.
 */
std::vector<std::size_t>
reverseGreedyTopo(const graph::Graph &g)
{
    std::vector<unsigned> indegree(g.nodes.size(), 0);
    std::vector<std::vector<std::size_t>> consumers(g.nodes.size());
    for (std::size_t ni = 0; ni < g.nodes.size(); ++ni)
        for (const graph::TensorId t : g.nodes[ni].inputs)
            if (g.tensors[t].producer >= 0) {
                ++indegree[ni];
                consumers[std::size_t(g.tensors[t].producer)]
                    .push_back(ni);
            }
    std::priority_queue<std::size_t> ready;
    for (std::size_t ni = 0; ni < g.nodes.size(); ++ni)
        if (indegree[ni] == 0)
            ready.push(ni);
    std::vector<std::size_t> order;
    while (!ready.empty()) {
        const std::size_t ni = ready.top();
        ready.pop();
        order.push_back(ni);
        for (const std::size_t c : consumers[ni])
            if (--indegree[c] == 0)
                ready.push(c);
    }
    return order;
}

/** Sorted shape fingerprints of a lowered schedule. */
std::vector<std::string>
loweredMultiset(const std::vector<graph::Step> &steps)
{
    std::vector<std::string> prints;
    prints.reserve(steps.size());
    for (const graph::Step &s : steps)
        prints.push_back(runtime::fingerprint(s.layer));
    std::sort(prints.begin(), prints.end());
    return prints;
}

/**
 * A random but always-valid DAG: every mutation the generator knows
 * preserves the builder invariants, so validate() must accept and
 * the round trip must be exact for any seed.
 */
graph::Graph
randomDag(std::mt19937 &rng)
{
    graph::Graph g;
    g.name = "fuzz";
    auto pick = [&](std::uint64_t n) {
        return std::uniform_int_distribution<std::uint64_t>(
            0, n - 1)(rng);
    };

    std::vector<graph::TensorId> pool;
    const unsigned inputs = 1 + unsigned(pick(3));
    for (unsigned i = 0; i < inputs; ++i)
        pool.push_back(g.addInput("in" + std::to_string(i),
                                  1 + pick(4096), DataType::Fp16));

    const unsigned ops = 5 + unsigned(pick(20));
    for (unsigned i = 0; i < ops; ++i) {
        const std::string nm = "n" + std::to_string(i);
        const graph::TensorId t = pool[pick(pool.size())];
        const std::uint64_t elems = g.tensors[t].elems;
        switch (pick(6)) {
          case 0:
            pool.push_back(g.addLayer(
                model::Layer::activation(nm, elems,
                                         model::ActKind::Relu,
                                         DataType::Fp16),
                {t}));
            break;
          case 1:
            pool.push_back(g.addLayer(
                model::Layer::elementwise(nm, elems, DataType::Fp16),
                {t}));
            break;
          case 2:
            pool.push_back(g.addLayer(
                model::Layer::layerNorm(nm, elems, 1, DataType::Fp16),
                {t}));
            break;
          case 3: {
            // Residual: manufacture an equal-shape sibling first.
            const graph::TensorId sib = g.addLayer(
                model::Layer::activation(nm + ".sib", elems,
                                         model::ActKind::Gelu,
                                         DataType::Fp16),
                {t});
            pool.push_back(g.addResidualAdd(nm, t, sib));
            break;
          }
          case 4: {
            const graph::TensorId other = pool[pick(pool.size())];
            pool.push_back(g.addConcat(nm, {t, other}));
            break;
          }
          case 5: {
            if (elems > 1) {
                const std::uint64_t cut = 1 + pick(elems - 1);
                const auto parts =
                    g.addSplit(nm, t, {cut, elems - cut});
                pool.push_back(parts[0]);
                pool.push_back(parts[1]);
            } else {
                pool.push_back(g.addLayer(
                    model::Layer::elementwise(nm, elems,
                                              DataType::Fp16),
                    {t}));
            }
            break;
          }
        }
    }
    const unsigned outs = 1 + unsigned(pick(3));
    for (unsigned i = 0; i < outs; ++i)
        g.markOutput(pool[pick(pool.size())]);
    return g;
}

// ------------------------------------------------- round trips

TEST(AgrRoundTrip, ZooGraphs)
{
    expectRoundTrips(graph::zoo::resnet50Graph(1));
    expectRoundTrips(graph::zoo::mobilenetV2Graph(1));
    expectRoundTrips(graph::zoo::bertBaseGraph(1, 128));
    expectRoundTrips(graph::zoo::vgg16Graph(1));
    expectRoundTrips(graph::zoo::gestureNetGraph(1));
}

TEST(AgrRoundTrip, DecoderGraphs)
{
    graph::DecoderConfig cfg;
    expectRoundTrips(graph::prefillGraph(cfg, 128));
    expectRoundTrips(graph::decodeGraph(cfg, 129));
    expectRoundTrips(graph::decodeGraph(cfg, 1)); // no cache inputs
}

TEST(AgrRoundTrip, LayerFieldsSurviveIncludingOverrides)
{
    graph::Graph g;
    g.name = "fields";
    model::Layer conv = model::Layer::conv2d(
        "c", 2, 3, 32, 32, 8, 3, 2, 1, DataType::Int8);
    conv.inputBytesOverride = 12345;
    conv.cvPasses = 1.5;
    const graph::TensorId in =
        g.addInput("x", std::uint64_t(2) * 3 * 32 * 32,
                   DataType::Int8);
    g.markOutput(g.addLayer(conv, {in}));
    expectRoundTrips(g);

    const graph::Graph back = graph::parseAgr(graph::printAgr(g));
    EXPECT_EQ(back.nodes[0].layer.inputBytesOverride, 12345u);
    EXPECT_DOUBLE_EQ(back.nodes[0].layer.cvPasses, 1.5);
}

TEST(AgrRoundTrip, CountersCharge)
{
    runtime::resetGraphTotals();
    expectRoundTrips(graph::zoo::gestureNetGraph(1));
    const runtime::GraphCounters t = runtime::graphTotals();
    EXPECT_EQ(t.agrParses, 1u);
    EXPECT_EQ(t.agrPrints, 2u); // round trip prints twice
}

// ------------------------------------------------ parse errors

TEST(AgrParse, RejectsMalformedText)
{
    const auto bad = [](const std::string &text) {
        expectError([&] { graph::parseAgr(text); },
                    ErrorCode::ConfigParse);
    };
    bad("");
    bad("agr 2\ngraph g\nend\n");
    bad("agr 1\nnope\n");
    bad("agr 1\ngraph g\nwat x\nend\n");
    bad("agr 1\ngraph g\ntensor t xyz fp16 input\nend\n");
    bad("agr 1\ngraph g\ntensor t 8 fp19 input\nend\n");
    bad("agr 1\ngraph g\ntensor t 8 fp16 input\n"
        "tensor t 8 fp16 input\nend\n");           // duplicate name
    bad("agr 1\ngraph g\nnode n add in a,b\nend\n"); // undefined refs
    bad("agr 1\ngraph g\ntensor t 8 fp16 input\n"
        "node n layer elementwise in t bogus=1\nend\n");
    bad("agr 1\ngraph g\ntensor t 8 fp16 input\n"); // missing end
}

TEST(AgrParse, WellFormedButBrokenGraphFailsValidation)
{
    // Syntactically fine; tensor claims a producer that never runs
    // before it — a cycle between the two nodes.
    const std::string text =
        "agr 1\n"
        "graph g\n"
        "tensor a 8 fp16 from 1.0\n"
        "tensor b 8 fp16 from 0.0\n"
        "node n0 layer elementwise in a el=8\n"
        "node n1 layer elementwise in b el=8\n"
        "end\n";
    expectError([&] { graph::parseAgr(text); },
                ErrorCode::GraphInvalid);
}

// --------------------------------------- topo-order invariance

TEST(TopoInvariance, LoweredTotalsMatchForAnyValidOrder)
{
    // Both of these have real scheduling parallelism (the downsample
    // branch; the parallel K/V appends), so the adversarial order is
    // genuinely different. Chain-scheduled graphs (VGG, BERT) have a
    // unique topological order and are covered by the fuzz test.
    const graph::Graph graphs[] = {
        graph::zoo::resnet50Graph(1),
        graph::decodeGraph(graph::DecoderConfig{}, 65),
    };
    for (const graph::Graph &g : graphs) {
        const std::vector<std::size_t> alt = reverseGreedyTopo(g);
        ASSERT_EQ(alt.size(), g.nodes.size()) << g.name;
        // The adversarial order really is different for DAGs with
        // branches (all three of these have them)...
        EXPECT_NE(alt, g.topoOrder()) << g.name;
        // ...yet lowers to the same layer multiset, so any summed
        // quantity (cycles, flops, energy) is identical.
        EXPECT_EQ(loweredMultiset(graph::lower(g, alt)),
                  loweredMultiset(graph::lower(g)))
            << g.name;
    }
}

TEST(TopoInvariance, FingerprintIsOrderIndependentForSameGraph)
{
    // Same graph object, both orders: one fingerprint (it hashes
    // structure, not schedule).
    const graph::Graph g = graph::zoo::mobilenetV2Graph(1);
    const std::string fp = g.fingerprint();
    (void)graph::lower(g, reverseGreedyTopo(g));
    EXPECT_EQ(g.fingerprint(), fp);
}

// -------------------------------------------------- fuzz

TEST(GraphFuzz, RandomDagsSurviveThePipeline)
{
    std::mt19937 rng(0xa5ce9d);
    for (int iter = 0; iter < 60; ++iter) {
        const graph::Graph g = randomDag(rng);
        ASSERT_NO_THROW(g.validate()) << "iter " << iter;

        // Round trip is exact.
        const graph::Graph back = graph::parseAgr(graph::printAgr(g));
        ASSERT_TRUE(back == g) << "iter " << iter;

        // Topological order is a permutation that respects edges.
        const std::vector<std::size_t> order = g.topoOrder();
        std::vector<std::size_t> position(g.nodes.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            position[order[i]] = i;
        for (std::size_t ni = 0; ni < g.nodes.size(); ++ni) {
            for (const graph::TensorId t : g.nodes[ni].inputs) {
                if (g.tensors[t].producer >= 0) {
                    ASSERT_LT(
                        position[std::size_t(g.tensors[t].producer)],
                        position[ni])
                        << "iter " << iter;
                }
            }
        }

        // Lowering agrees across schedules.
        ASSERT_EQ(loweredMultiset(
                      graph::lower(g, reverseGreedyTopo(g))),
                  loweredMultiset(graph::lower(g)))
            << "iter " << iter;

        // Renaming everything never moves the structural hash.
        graph::Graph renamed = back;
        for (auto &t : renamed.tensors)
            t.name = "x" + t.name;
        for (auto &n : renamed.nodes)
            n.name = "y" + n.name;
        EXPECT_EQ(renamed.fingerprint(), g.fingerprint())
            << "iter " << iter;
    }
}

TEST(GraphFuzz, CorruptedRandomDagsFailClosed)
{
    std::mt19937 rng(1234);
    for (int iter = 0; iter < 30; ++iter) {
        graph::Graph g = randomDag(rng);
        const std::size_t ni =
            std::uniform_int_distribution<std::size_t>(
                0, g.nodes.size() - 1)(rng);
        switch (iter % 3) {
          case 0: // dangling edge
            g.nodes[ni].inputs.assign(1, graph::TensorId(100000));
            break;
          case 1: // broken back-reference
            g.tensors[g.nodes[ni].outputs[0]].producerSlot = 77;
            break;
          case 2: // zero-volume tensor
            g.tensors[g.nodes[ni].outputs[0]].elems = 0;
            break;
        }
        EXPECT_THROW(g.validate(), Error) << "iter " << iter;
    }
}

} // namespace
