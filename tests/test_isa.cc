/**
 * @file
 * Unit tests for the ISA layer: instruction representation, program
 * builder, flag balance.
 */

#include <gtest/gtest.h>

#include "isa/program.hh"

namespace ascend {
namespace isa {
namespace {

TEST(Instr, StaysCompact)
{
    EXPECT_LE(sizeof(Instr), 80u);
}

TEST(Instr, PipeNames)
{
    EXPECT_STREQ(toString(Pipe::Scalar), "scalar");
    EXPECT_STREQ(toString(Pipe::Cube), "cube");
    EXPECT_STREQ(toString(Pipe::Vector), "vector");
    EXPECT_STREQ(toString(Pipe::Mte1), "mte1");
    EXPECT_STREQ(toString(Pipe::Mte2), "mte2");
    EXPECT_STREQ(toString(Pipe::Mte3), "mte3");
}

TEST(Instr, BusNames)
{
    EXPECT_STREQ(toString(Bus::L1Read), "l1Read");
    EXPECT_STREQ(toString(Bus::ExtB), "extB");
    EXPECT_STREQ(toString(Bus::ExtOut), "extOut");
}

TEST(Program, ExecRecordsFields)
{
    Program p("test");
    p.exec(Pipe::Cube, 100, 2048, {{Bus::L1Read, 64}}, "gemm");
    ASSERT_EQ(p.size(), 1u);
    const Instr &i = p.instrs()[0];
    EXPECT_EQ(i.op, Opcode::Exec);
    EXPECT_EQ(i.pipe, Pipe::Cube);
    EXPECT_EQ(i.cycles, 100u);
    EXPECT_EQ(i.flops, 2048u);
    EXPECT_EQ(i.numBusUses, 1u);
    EXPECT_EQ(i.busUses[0].bus, Bus::L1Read);
    EXPECT_EQ(i.busUses[0].bytes, 64u);
    EXPECT_STREQ(i.tag, "gemm");
}

TEST(Program, MultipleBusUses)
{
    Program p;
    p.exec(Pipe::Mte2, 10, 0,
           {{Bus::ExtA, 1}, {Bus::L1Write, 2}, {Bus::UbWrite, 3}});
    EXPECT_EQ(p.instrs()[0].numBusUses, 3u);
}

TEST(ProgramDeath, TooManyBusUsesPanics)
{
    Program p("over");
    EXPECT_DEATH(p.exec(Pipe::Mte2, 1, 0,
                        {{Bus::ExtA, 1},
                         {Bus::L1Write, 1},
                         {Bus::UbWrite, 1},
                         {Bus::UbRead, 1}}),
                 "bus uses");
}

TEST(Program, FlagInstructions)
{
    Program p;
    p.setFlag(Pipe::Mte1, 3);
    p.waitFlag(Pipe::Cube, 3);
    EXPECT_EQ(p.instrs()[0].op, Opcode::SetFlag);
    EXPECT_EQ(p.instrs()[0].flagId, 3u);
    EXPECT_EQ(p.instrs()[1].op, Opcode::WaitFlag);
    EXPECT_EQ(p.instrs()[1].pipe, Pipe::Cube);
}

TEST(Program, BarrierGoesToScalarPipe)
{
    Program p;
    p.barrier();
    EXPECT_EQ(p.instrs()[0].op, Opcode::Barrier);
    EXPECT_EQ(p.instrs()[0].pipe, Pipe::Scalar);
}

TEST(Program, FlagBalanceCountsSetsMinusWaits)
{
    Program p;
    p.setFlag(Pipe::Mte1, 1);
    p.setFlag(Pipe::Mte1, 1);
    p.waitFlag(Pipe::Cube, 1);
    p.setFlag(Pipe::Cube, 2);
    const auto balance = p.flagBalance();
    EXPECT_EQ(balance[1], 1);
    EXPECT_EQ(balance[2], 1);
    EXPECT_EQ(balance[0], 0);
}

TEST(Program, AppendConcatenates)
{
    Program a("a"), b("b");
    a.exec(Pipe::Cube, 1);
    b.exec(Pipe::Vector, 2);
    b.setFlag(Pipe::Vector, 9);
    a.append(b);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.instrs()[1].pipe, Pipe::Vector);
    EXPECT_EQ(a.name(), "a");
}

TEST(Program, EmptyAndName)
{
    Program p;
    EXPECT_TRUE(p.empty());
    p.setName("renamed");
    EXPECT_EQ(p.name(), "renamed");
    p.exec(Pipe::Scalar, 1);
    EXPECT_FALSE(p.empty());
}

} // anonymous namespace
} // namespace isa
} // namespace ascend
