/**
 * @file
 * Tests for the three SoC models: published peak numbers, step-result
 * sanity, LLC-capacity monotonicity, mobile PPA, automotive QoS.
 */

#include <gtest/gtest.h>

#include "model/zoo.hh"
#include "soc/auto_soc.hh"
#include "soc/chip_sim.hh"
#include "soc/mobile_soc.hh"
#include "soc/training_soc.hh"

namespace ascend {
namespace soc {
namespace {

TEST(TrainingSoc, PeakNumbersMatchPaper)
{
    TrainingSoc soc;
    // 256 TFLOPS fp16 / 512 TOPS int8 (Section 3.1.2).
    EXPECT_NEAR(soc.peakFlopsFp16() / 1e12, 262, 1);
    EXPECT_NEAR(soc.peakOpsInt8() / 1e12, 524, 2);
}

TEST(TrainingSoc, TrainStepIsSane)
{
    TrainingSoc soc;
    const auto net = model::zoo::gestureNet(4); // tiny but complete
    // gestureNet is int8; the Max core supports int8 too.
    const auto step = soc.trainStep(net);
    EXPECT_GT(step.seconds, 0.0);
    EXPECT_GE(step.llcHitRate(), 0.0);
    EXPECT_LE(step.llcHitRate(), 1.0);
    EXPECT_GT(step.llcTrafficBytes, 0u);
    EXPECT_NEAR(step.computeSeconds + step.llcBoundSeconds +
                    step.hbmBoundSeconds,
                step.seconds, 1e-9);
    EXPECT_GT(step.flops, 0u);
}

TEST(TrainingSoc, TrainingCostsMoreThanInference)
{
    TrainingSoc soc;
    const auto net = model::zoo::mobilenetV2(1);
    const auto inf = soc.inferStep(net);
    const auto tra = soc.trainStep(net);
    EXPECT_GT(tra.seconds, 1.5 * inf.seconds);
}

TEST(TrainingSoc, BiggerLlcNeverHurts)
{
    const auto net = model::zoo::mobilenetV2(2);
    double prev = 1e18;
    for (Bytes cap : {64ull * kMiB, 256ull * kMiB, 1024ull * kMiB}) {
        TrainingSocConfig cfg;
        cfg.llcCapacity = cap;
        TrainingSoc soc(cfg);
        const double sec = soc.trainStep(net).seconds;
        EXPECT_LE(sec, prev * 1.01);
        prev = sec;
    }
}

TEST(TrainingSoc, MoreCoresMoreThroughput)
{
    const auto net = model::zoo::mobilenetV2(1);
    TrainingSocConfig small;
    small.aiCores = 8;
    TrainingSocConfig big;
    big.aiCores = 32;
    const auto s = TrainingSoc(small).inferStep(net);
    const auto b = TrainingSoc(big).inferStep(net);
    // Throughput = cores * batch / seconds.
    EXPECT_GT(32.0 / b.seconds, 8.0 / s.seconds);
}

TEST(TrainingSoc, WeightPinningKicksInForSmallModels)
{
    // ResNet50 weights (~51 MB) fit a 96 MiB LLC: hit rate should be
    // clearly better than a cache 1/8 the size where they do not.
    const auto net = model::zoo::resnet50(2);
    TrainingSocConfig small;
    small.llcCapacity = 12 * kMiB;
    TrainingSocConfig big;
    big.llcCapacity = 96 * kMiB;
    const auto s = TrainingSoc(small).trainStep(net);
    const auto b = TrainingSoc(big).trainStep(net);
    EXPECT_GT(b.llcHitRate(), s.llcHitRate() + 0.05);
}

TEST(TrainingSoc, FluidInferStepEqualsManualChipSim)
{
    // fluidInferStep is sugar over runChipSim with the per-core task
    // queue replicated across all AI cores; the two must agree
    // bit for bit.
    TrainingSoc soc;
    const auto net = model::zoo::resnet50(4);
    const std::vector<std::vector<CoreTask>> work(
        soc.config().aiCores, soc.coreTasks(net));
    const ChipSimResult manual =
        runChipSim(work, soc.config().llcBandwidth);
    const ChipSimResult fluid = soc.fluidInferStep(net);
    EXPECT_EQ(fluid.makespan, manual.makespan);
    EXPECT_EQ(fluid.avgMemUtilization, manual.avgMemUtilization);
    EXPECT_EQ(fluid.coreFinish, manual.coreFinish);
    EXPECT_TRUE(fluid.completed);
    EXPECT_EQ(fluid.coreFinish.size(), soc.config().aiCores);
}

TEST(MobileSoc, FluidBigLittleMakespanIsSane)
{
    MobileSoc kirin;
    const ChipSimResult r = kirin.fluidBigLittleMakespan(
        model::zoo::mobilenetV2(1), model::zoo::gestureNet(1));
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.coreFinish.size(),
              kirin.config().liteCores + kirin.config().tinyCores);
    EXPECT_GT(r.makespan, 0.0);
    // Shared LPDDR is the only memory path; some contention must show.
    EXPECT_GT(r.avgMemUtilization, 0.0);
}

TEST(AutoSoc, FluidFrameLatencyGrowsWithMoreNetworks)
{
    AutoSoc soc;
    const auto det = model::zoo::resnet50(1);
    const auto seg = model::zoo::mobilenetV2(1);
    const double one = soc.fluidFrameLatencySeconds({&det});
    const double two = soc.fluidFrameLatencySeconds({&det, &seg});
    EXPECT_GT(one, soc.config().dvppFrameSeconds);
    // Adding a second network contends for DRAM: never faster.
    EXPECT_GE(two, one);
}

TEST(MobileSoc, PeakAndEfficiencyMatchTable8)
{
    MobileSoc kirin;
    EXPECT_NEAR(kirin.peakOpsInt8() / 1e12, 6.88, 0.15);
    EXPECT_NEAR(kirin.powerEfficiency(), 4.6, 0.5);
    EXPECT_NEAR(kirin.npuAreaMm2(), 4.0, 0.6);
}

TEST(MobileSoc, MobilenetLatencyInPublishedBand)
{
    MobileSoc kirin;
    const double ms =
        kirin.liteLatencySeconds(model::zoo::mobilenetV2(1)) * 1e3;
    // Paper: 5.2 ms; competitors 7-15 ms. Accept the 3-8 ms band.
    EXPECT_GT(ms, 3.0);
    EXPECT_LT(ms, 8.0);
}

TEST(MobileSoc, TinyHandlesAlwaysOnBudget)
{
    MobileSoc kirin;
    const double ms =
        kirin.tinyLatencySeconds(model::zoo::gestureNet(1)) * 1e3;
    // Always-on detection must run at high frame rates.
    EXPECT_LT(ms, 5.0);
}

TEST(MobileSoc, BigLittleOverlaps)
{
    MobileSoc kirin;
    const auto big = model::zoo::mobilenetV2(2);
    const auto little = model::zoo::gestureNet(1);
    const double makespan = kirin.bigLittleMakespan(big, little);
    EXPECT_LE(makespan, kirin.liteLatencySeconds(big));
    EXPECT_GE(makespan, kirin.tinyLatencySeconds(little));
}

TEST(AutoSoc, PeakMatchesTable9)
{
    AutoSoc soc;
    EXPECT_NEAR(soc.peakOpsInt8() / 1e12, 160, 8);
    EXPECT_GT(soc.peakOpsInt4(), 1.9 * soc.peakOpsInt8());
}

TEST(AutoSoc, FrameLatencyIncludesDvppAndWorstModel)
{
    AutoSoc soc;
    const auto small = model::zoo::gestureNet(1);
    const auto big = model::zoo::resnet50(1, DataType::Int8);
    const double only_small = soc.frameLatencySeconds({&small});
    const double mixed = soc.frameLatencySeconds({&small, &big});
    EXPECT_GE(only_small, soc.config().dvppFrameSeconds);
    EXPECT_GT(mixed, only_small);
}

TEST(AutoSoc, MpamProtectsCriticalTask)
{
    AutoSoc soc;
    const auto off = soc.qosExperiment(0);
    const auto on = soc.qosExperiment(4);
    EXPECT_LT(off.criticalHitRate, 0.3);
    EXPECT_GT(on.criticalHitRate, 0.9);
    EXPECT_LT(on.criticalAvgLatencyNs, off.criticalAvgLatencyNs);
}

TEST(AutoSoc, MpamWaysSweepIsMonotonicEnough)
{
    AutoSoc soc;
    const auto two = soc.qosExperiment(2);
    const auto eight = soc.qosExperiment(8);
    EXPECT_GE(eight.criticalHitRate + 1e-9, two.criticalHitRate);
}

TEST(AutoSocDeath, ReservingAllWaysIsFatal)
{
    AutoSoc soc;
    EXPECT_EXIT(soc.qosExperiment(16), testing::ExitedWithCode(1),
                "mpam_ways");
}

/** LLC capacity sweep property on the training SoC (Section 4.1). */
class LlcSweep : public testing::TestWithParam<Bytes>
{
};

TEST_P(LlcSweep, HitRateWithinBounds)
{
    TrainingSocConfig cfg;
    cfg.llcCapacity = GetParam() * kMiB;
    TrainingSoc soc(cfg);
    const auto step = soc.trainStep(model::zoo::gestureNet(8));
    EXPECT_GE(step.llcHitRate(), 0.0);
    EXPECT_LE(step.llcHitRate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Capacities, LlcSweep,
                         testing::Values(Bytes(32), Bytes(96), Bytes(360),
                                         Bytes(720)));

} // anonymous namespace
} // namespace soc
} // namespace ascend
