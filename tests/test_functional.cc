/**
 * @file
 * Golden-model tests for the functional datapath: fp16 conversion
 * semantics, cube GEMM numerics, img2col correctness (conv via cube
 * == direct conv reference), and the vector-unit operations.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/float16.hh"
#include "core/functional.hh"

namespace ascend {
namespace {

namespace fn = core::functional;
using model::Layer;
using model::Tensor;

// ------------------------------------------------------------- fp16

TEST(Float16, ExactSmallIntegersRoundTrip)
{
    for (float v : {0.0f, 1.0f, -1.0f, 2.0f, 1024.0f, -2048.0f, 0.5f,
                    0.25f})
        EXPECT_EQ(roundToHalf(v), v);
}

TEST(Float16, KnownBitPatterns)
{
    EXPECT_EQ(floatToHalfBits(1.0f), 0x3c00);
    EXPECT_EQ(floatToHalfBits(-2.0f), 0xc000);
    EXPECT_EQ(floatToHalfBits(65504.0f), 0x7bff); // fp16 max
    EXPECT_EQ(halfBitsToFloat(0x3c00), 1.0f);
    EXPECT_EQ(halfBitsToFloat(0x7c00),
              std::numeric_limits<float>::infinity());
}

TEST(Float16, OverflowSaturatesToInfinity)
{
    EXPECT_EQ(floatToHalfBits(1e6f), 0x7c00);
    EXPECT_EQ(floatToHalfBits(-1e6f), 0xfc00);
}

TEST(Float16, SubnormalsSurvive)
{
    const float tiny = 5.96046448e-8f; // smallest fp16 subnormal
    EXPECT_EQ(roundToHalf(tiny), tiny);
    // Halfway below the smallest subnormal flushes to zero.
    EXPECT_EQ(roundToHalf(tiny / 4), 0.0f);
}

TEST(Float16, NanPropagates)
{
    const float nan = std::nanf("");
    EXPECT_TRUE(std::isnan(roundToHalf(nan)));
}

TEST(Float16, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 and the next fp16
    // value; round-to-even keeps 1.0.
    EXPECT_EQ(roundToHalf(1.0f + 4.8828125e-4f), 1.0f);
    // 1 + 3 * 2^-11 is halfway between two values whose lower has an
    // odd mantissa; round-to-even goes up.
    const float up = roundToHalf(1.0f + 3 * 4.8828125e-4f);
    EXPECT_NEAR(up, 1.0f + 2 * 9.765625e-4f, 1e-7);
}

TEST(Float16, RelativeErrorBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const float v =
            (float(rng.uniformReal()) * 2 - 1) * 1000.0f + 0.001f;
        const float r = roundToHalf(v);
        EXPECT_LE(std::fabs(r - v), std::fabs(v) * 0.001f) << v;
    }
}

TEST(Float16, HalfValueType)
{
    Half h = 3.5f;
    EXPECT_EQ(float(h), 3.5f);
    EXPECT_EQ(Half::fromBits(h.bits()).bits(), h.bits());
}

// ------------------------------------------------------------- gemm

TEST(Functional, CubeGemmMatchesReferenceOnExactValues)
{
    // Small integers are exact in fp16: results must match exactly.
    Rng rng(1);
    Tensor a({8, 16}), b({16, 4});
    for (auto &v : a.data())
        v = float(int(rng.uniform(7)) - 3);
    for (auto &v : b.data())
        v = float(int(rng.uniform(7)) - 3);
    const Tensor cube = fn::cubeGemm(a, b);
    const Tensor ref = fn::referenceGemm(a, b);
    EXPECT_EQ(cube.maxAbsDiff(ref), 0.0f);
}

TEST(Functional, CubeGemmFp16ErrorIsBounded)
{
    Rng rng(2);
    const Tensor a = Tensor::random({32, 64}, rng);
    const Tensor b = Tensor::random({64, 32}, rng);
    const Tensor cube = fn::cubeGemm(a, b);
    const Tensor ref = fn::referenceGemm(a, b);
    // fp16 source rounding: relative error ~2^-11 per operand, k=64
    // accumulations in fp32; loose absolute bound for unit operands.
    EXPECT_LT(cube.maxAbsDiff(ref), 0.1f);
    EXPECT_GT(cube.maxAbsDiff(ref), 0.0f); // rounding is real
}

TEST(FunctionalDeath, GemmShapeMismatchPanics)
{
    Tensor a({4, 8}), b({9, 4});
    EXPECT_DEATH(fn::cubeGemm(a, b), "inner dims");
}

// ---------------------------------------------------------- img2col

TEST(Functional, Img2colShape)
{
    const Layer conv = Layer::conv2d("c", 2, 3, 8, 8, 4, 3, 1, 1);
    Rng rng(3);
    const Tensor input = Tensor::random({2, 3, 8, 8}, rng);
    const Tensor patches = fn::img2col(input, conv);
    EXPECT_EQ(patches.shape()[0], 2u * 8 * 8);
    EXPECT_EQ(patches.shape()[1], 3u * 9);
}

TEST(Functional, Img2colIdentityFor1x1)
{
    // 1x1 stride-1 conv: the patch matrix is a pure layout transform.
    const Layer conv = Layer::conv2d("c", 1, 2, 4, 4, 5, 1, 1, 0);
    Rng rng(4);
    const Tensor input = Tensor::random({1, 2, 4, 4}, rng);
    const Tensor patches = fn::img2col(input, conv);
    for (std::size_t h = 0; h < 4; ++h)
        for (std::size_t w = 0; w < 4; ++w)
            for (std::size_t c = 0; c < 2; ++c)
                EXPECT_EQ(patches.at2(h * 4 + w, c),
                          input.at4(0, c, h, w));
}

TEST(Functional, Img2colZeroPadsBorders)
{
    const Layer conv = Layer::conv2d("c", 1, 1, 3, 3, 1, 3, 1, 1);
    Tensor input({1, 1, 3, 3});
    for (std::size_t i = 0; i < 9; ++i)
        input[i] = float(i + 1);
    const Tensor patches = fn::img2col(input, conv);
    // The first output position's patch has the top-left 2x2 live.
    EXPECT_EQ(patches.at2(0, 0), 0.0f); // padded corner
    EXPECT_EQ(patches.at2(0, 4), 1.0f); // center = input(0,0)
    EXPECT_EQ(patches.at2(0, 8), 5.0f);
}

/**
 * The central property the compiler's lowering relies on: a
 * convolution computed as img2col + cube GEMM equals the direct
 * convolution reference, for many geometries.
 */
struct ConvCase
{
    unsigned batch, in_c, spatial, out_c, kernel, stride, pad;
};

class ConvEquivalence : public testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvEquivalence, CubePathMatchesDirectReference)
{
    const ConvCase &cc = GetParam();
    const Layer conv = Layer::conv2d("c", cc.batch, cc.in_c, cc.spatial,
                                     cc.spatial, cc.out_c, cc.kernel,
                                     cc.stride, cc.pad);
    Rng rng(cc.in_c * 31 + cc.kernel);
    const Tensor input = Tensor::random(
        {cc.batch, cc.in_c, cc.spatial, cc.spatial}, rng);
    const Tensor weights = Tensor::random(
        {cc.out_c, cc.in_c, cc.kernel, cc.kernel}, rng);
    const Tensor via_cube = fn::conv2dViaCube(input, weights, conv);
    const Tensor direct = fn::referenceConv2d(input, weights, conv);
    EXPECT_EQ(via_cube.shape(), direct.shape());
    // Equal up to fp16 source rounding in the cube path.
    EXPECT_LT(via_cube.maxAbsDiff(direct), 0.05f * cc.in_c);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvEquivalence,
    testing::Values(ConvCase{1, 1, 5, 1, 3, 1, 1},
                    ConvCase{1, 3, 8, 4, 3, 1, 1},
                    ConvCase{2, 2, 9, 3, 3, 2, 1},
                    ConvCase{1, 4, 7, 2, 1, 1, 0},
                    ConvCase{1, 2, 11, 2, 5, 2, 2},
                    ConvCase{2, 3, 6, 5, 3, 3, 0}));

// ------------------------------------------------------ vector ops

TEST(Functional, VectorRelu)
{
    Tensor t({4});
    t[0] = -1;
    t[1] = 0;
    t[2] = 2;
    t[3] = -0.5f;
    const Tensor r = fn::vectorRelu(t);
    EXPECT_EQ(r[0], 0.0f);
    EXPECT_EQ(r[2], 2.0f);
    EXPECT_EQ(r[3], 0.0f);
}

TEST(Functional, VectorAdd)
{
    Tensor a({3}), b({3});
    a[0] = 1;
    b[0] = 2;
    a[2] = -1;
    b[2] = 1;
    const Tensor c = fn::vectorAdd(a, b);
    EXPECT_EQ(c[0], 3.0f);
    EXPECT_EQ(c[2], 0.0f);
}

TEST(Functional, SoftmaxRowsSumToOne)
{
    Rng rng(5);
    const Tensor in = Tensor::random({6, 10}, rng, 8.0f);
    const Tensor out = fn::vectorSoftmax(in, 10);
    for (std::size_t r = 0; r < 6; ++r) {
        float sum = 0;
        for (std::size_t c = 0; c < 10; ++c) {
            sum += out.at2(r, c);
            EXPECT_GE(out.at2(r, c), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
}

TEST(Functional, SoftmaxIsStableForLargeInputs)
{
    Tensor in({1, 3});
    in[0] = 1000.0f;
    in[1] = 1001.0f;
    in[2] = 999.0f;
    const Tensor out = fn::vectorSoftmax(in, 3);
    EXPECT_FALSE(std::isnan(out[0]));
    EXPECT_GT(out[1], out[0]);
    EXPECT_GT(out[0], out[2]);
}

TEST(Functional, ScaleShift)
{
    Tensor in({2});
    in[0] = 1;
    in[1] = -2;
    const Tensor out = fn::vectorScaleShift(in, 2.0f, 1.0f);
    EXPECT_EQ(out[0], 3.0f);
    EXPECT_EQ(out[1], -3.0f);
}

TEST(Functional, FusedConvBnReluComposes)
{
    // conv -> scale/shift -> relu through the functional units gives
    // the same result as doing it by hand on the reference conv.
    const Layer conv = Layer::conv2d("c", 1, 2, 6, 6, 3, 3, 1, 1);
    Rng rng(6);
    const Tensor input = Tensor::random({1, 2, 6, 6}, rng);
    const Tensor weights = Tensor::random({3, 2, 3, 3}, rng);
    const Tensor fused = fn::vectorRelu(fn::vectorScaleShift(
        fn::conv2dViaCube(input, weights, conv), 0.5f, 0.1f));
    Tensor manual = fn::referenceConv2d(input, weights, conv);
    for (float &v : manual.data())
        v = std::max(v * 0.5f + 0.1f, 0.0f);
    EXPECT_LT(fused.maxAbsDiff(manual), 0.05f);
}

} // anonymous namespace
} // namespace ascend
