/**
 * @file
 * Tests for the fluid multi-core chip simulator, the latency
 * histogram, the extended zoo additions (Siamese / PointNet), and a
 * randomized program fuzz test closing the verifier/simulator loop.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "compiler/profiler.hh"
#include "core/core_sim.hh"
#include "isa/verify.hh"
#include "model/zoo.hh"
#include "noc/mesh.hh"
#include "soc/chip_sim.hh"

namespace ascend {
namespace {

// ------------------------------------------------------- chip sim

TEST(ChipSim, PureComputeIsUncontended)
{
    std::vector<std::vector<soc::CoreTask>> cores(4);
    for (auto &c : cores)
        c.push_back({0.010, 0});
    const auto r = soc::runChipSim(cores, 1e9);
    EXPECT_NEAR(r.makespan, 0.010, 1e-9);
}

TEST(ChipSim, MemoryBoundTasksShareCapacity)
{
    // Four cores each need 1 GB over a 1 GB/s system: 4 s total.
    std::vector<std::vector<soc::CoreTask>> cores(4);
    for (auto &c : cores)
        c.push_back({0.0, Bytes(1e9)});
    const auto r = soc::runChipSim(cores, 1e9);
    EXPECT_NEAR(r.makespan, 4.0, 1e-6);
    EXPECT_NEAR(r.avgMemUtilization, 1.0, 1e-6);
}

TEST(ChipSim, ComputeHidesMemoryWhenItDominates)
{
    std::vector<std::vector<soc::CoreTask>> cores(2);
    cores[0].push_back({1.0, Bytes(1e6)}); // compute-bound
    cores[1].push_back({1.0, Bytes(1e6)});
    const auto r = soc::runChipSim(cores, 1e9);
    EXPECT_NEAR(r.makespan, 1.0, 1e-3);
}

TEST(ChipSim, StragglerStretchesMakespan)
{
    std::vector<std::vector<soc::CoreTask>> even(4), skewed(4);
    for (auto &c : even)
        c.push_back({0.010, 0});
    for (std::size_t i = 0; i < 4; ++i)
        skewed[i].push_back({i == 0 ? 0.025 : 0.005, 0});
    // Same total work; the skewed split is slower end-to-end.
    EXPECT_GT(soc::runChipSim(skewed, 1e9).makespan,
              soc::runChipSim(even, 1e9).makespan);
}

TEST(ChipSim, SequentialTasksAccumulate)
{
    std::vector<std::vector<soc::CoreTask>> cores(1);
    cores[0] = {{0.001, 0}, {0.002, 0}, {0.0, Bytes(3e6)}};
    const auto r = soc::runChipSim(cores, 1e9);
    EXPECT_NEAR(r.makespan, 0.006, 1e-6);
}

TEST(ChipSim, ContentionVsRooflineGap)
{
    // 8 cores alternate compute-heavy and memory-heavy tasks out of
    // phase; the fluid sim must land between the two naive bounds.
    std::vector<std::vector<soc::CoreTask>> cores(8);
    double total_compute = 0;
    Bytes total_bytes = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        for (int t = 0; t < 4; ++t) {
            const bool heavy = (i + t) % 2 == 0;
            soc::CoreTask task{heavy ? 0.004 : 0.001,
                               Bytes(heavy ? 1e6 : 8e6)};
            cores[i].push_back(task);
            total_compute += task.computeSeconds;
            total_bytes += task.memBytes;
        }
    }
    const double cap = 2e9;
    const auto r = soc::runChipSim(cores, cap);
    const double lower =
        std::max(total_compute / 8, double(total_bytes) / cap);
    const double upper = total_compute + double(total_bytes) / cap;
    EXPECT_GE(r.makespan, lower - 1e-9);
    EXPECT_LE(r.makespan, upper);
}

TEST(ChipSimDeath, ZeroCapacityRejected)
{
    EXPECT_DEATH(soc::runChipSim({}, 0), "capacity");
}

TEST(ChipSim, GuardLimitRaisesStructuredError)
{
    // 16 tasks need at least 16 events; a guard of 3 must trip with
    // a recoverable Error carrying progress context, not a panic.
    std::vector<std::vector<soc::CoreTask>> cores(1);
    for (int t = 0; t < 16; ++t)
        cores[0].push_back({0.001, Bytes(1e6)});
    soc::ChipSimOptions options;
    options.guardLimit = 3;
    try {
        soc::runChipSim(cores, 1e9, options);
        FAIL() << "guard did not trip";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::GuardExceeded);
        EXPECT_NE(e.context().find("events"), std::string::npos);
        EXPECT_NE(e.context().find("tasks"), std::string::npos);
    }
}

TEST(ChipSim, GuardLimitRaisesStructuredErrorUnderFaults)
{
    std::vector<std::vector<soc::CoreTask>> cores(2);
    for (int t = 0; t < 16; ++t) {
        cores[0].push_back({0.001, Bytes(1e6)});
        cores[1].push_back({0.002, Bytes(2e6)});
    }
    resilience::ChipFaultPlan plan;
    plan.stragglerFactor = {1.5, 1.0};
    soc::ChipSimOptions options;
    options.guardLimit = 3;
    try {
        soc::runChipSim(cores, 1e9, plan, options);
        FAIL() << "guard did not trip";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::GuardExceeded);
    }
}

// The serial-vs-parallel bit-identity checks moved to
// test_determinism.cc, which sweeps thread counts x grains
// in one seeded fuzz loop.

TEST(ChipSim, ActiveSetSkipsLongFinishedCores)
{
    // One long-running core next to many short-lived ones: correct
    // accounting requires finished cores to stop influencing the
    // shared-memory share.
    std::vector<std::vector<soc::CoreTask>> work(9);
    work[0].push_back({0.0, Bytes(8e9)}); // long memory drain
    for (std::size_t c = 1; c < 9; ++c)
        work[c].push_back({0.0, Bytes(1e9)});
    // 1 GB/s shared: 9-way split until the short cores finish (at
    // t=9), then the long core drains alone. Total = 9 + 7 = 16 s.
    const auto r = soc::runChipSim(work, 1e9);
    EXPECT_NEAR(r.makespan, 16.0, 1e-6);
    EXPECT_NEAR(r.coreFinish[1], 9.0, 1e-6);
}

// ------------------------------------------------------ histogram

TEST(Histogram, PercentilesOnUniformSamples)
{
    stats::Histogram h(100.0);
    for (int i = 0; i < 100; ++i)
        h.sample(double(i));
    EXPECT_EQ(h.count(), 100u);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 2.0);
    EXPECT_LT(h.percentile(0.01), 5.0);
}

TEST(Histogram, OverflowLandsAtMax)
{
    stats::Histogram h(10.0);
    h.sample(1e9);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 10.0);
}

TEST(Histogram, ResetClears)
{
    stats::Histogram h(10.0);
    h.sample(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(MeshPercentiles, TailExceedsMedianUnderLoad)
{
    noc::MeshConfig cfg;
    noc::MeshNoc mesh(cfg);
    noc::UniformTraffic t(0.4, mesh.nodes());
    mesh.run(t, 10000);
    const double p50 = mesh.latencyPercentile(0, 0.5);
    const double p99 = mesh.latencyPercentile(0, 0.99);
    EXPECT_GT(p50, 0.0);
    EXPECT_GT(p99, p50);
}

// --------------------------------------------- zoo additions

TEST(ZooMore, SiameseHasTwoBranchesAndXcorr)
{
    const auto net = model::zoo::siameseTracker(1);
    bool has_template = false, has_search = false, has_xcorr = false;
    for (const auto &l : net.layers) {
        if (l.name.find("template.") == 0)
            has_template = true;
        if (l.name.find("search.") == 0)
            has_search = true;
        if (l.name == "xcorr")
            has_xcorr = true;
    }
    EXPECT_TRUE(has_template);
    EXPECT_TRUE(has_search);
    EXPECT_TRUE(has_xcorr);
}

TEST(ZooMore, PointNetRowsScaleWithPoints)
{
    const auto small = model::zoo::pointNet(1, 512);
    const auto big = model::zoo::pointNet(1, 2048);
    EXPECT_NEAR(double(big.totalFlops()),
                4.0 * double(small.totalFlops()),
                0.3 * double(big.totalFlops()));
}

TEST(ZooMore, BothRunOnTheStdCore)
{
    compiler::Profiler p(arch::makeCoreConfig(arch::CoreVersion::Std));
    for (const auto &net :
         {model::zoo::siameseTracker(1), model::zoo::pointNet(1)}) {
        const auto runs = p.runInference(net);
        EXPECT_EQ(runs.size(), net.size()) << net.name;
    }
}

// ------------------------------------------------------ fuzzing

/**
 * Generate random deadlock-free programs and confirm the simulator
 * completes them with consistent busy-cycle accounting.
 *
 * Deadlock freedom by construction: flag f is produced only by pipe
 * f % 5 and consumed only by strictly higher-numbered pipes, so the
 * wait graph is a DAG over pipes (the lowest-numbered pipe never
 * waits, hence always progresses). Arbitrary balanced set/wait
 * placement can deadlock through cross-pipe cycles the in-order
 * queues cannot untangle - which the verifier documents as beyond
 * its conservative checks.
 */
TEST(Fuzz, VerifiedRandomProgramsAlwaysRun)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    core::CoreSim sim(cfg);
    Rng rng(1234);
    for (int trial = 0; trial < 40; ++trial) {
        isa::Program p("fuzz");
        Cycles exec_total = 0;
        int pending[8] = {};
        auto producer = [](std::uint8_t f) { return unsigned(f % 5); };
        for (int i = 0; i < 200; ++i) {
            switch (rng.uniform(4)) {
              case 0:
              case 1: {
                const auto pipe = static_cast<isa::Pipe>(rng.uniform(6));
                const Cycles c = 1 + rng.uniform(50);
                p.exec(pipe, c);
                exec_total += c;
                break;
              }
              case 2: {
                const auto f = std::uint8_t(rng.uniform(8));
                p.setFlag(static_cast<isa::Pipe>(producer(f)), f);
                ++pending[f];
                break;
              }
              default: {
                const auto f = std::uint8_t(rng.uniform(8));
                if (pending[f] > 0) {
                    const unsigned lo = producer(f) + 1;
                    const auto pipe = static_cast<isa::Pipe>(
                        lo + rng.uniform(6 - lo));
                    p.waitFlag(pipe, f);
                    --pending[f];
                }
                break;
              }
            }
        }
        ASSERT_TRUE(isa::isWellFormed(p)) << "trial " << trial;
        const auto r = sim.run(p); // must not deadlock (panics if so)
        Cycles busy = 0;
        for (std::size_t pp = 0; pp < isa::kNumPipes; ++pp)
            busy += r.pipes[pp].busyCycles;
        EXPECT_EQ(busy, exec_total) << "trial " << trial;
        EXPECT_GE(r.totalCycles, busy / isa::kNumPipes);
    }
}

/**
 * Conversely: programs the verifier rejects for missing sets really
 * do deadlock in the simulator.
 */
TEST(FuzzDeath, UnderflowedProgramDeadlocks)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    core::CoreSim sim(cfg);
    isa::Program p("bad");
    p.setFlag(isa::Pipe::Mte1, 0);
    p.waitFlag(isa::Pipe::Cube, 0);
    p.waitFlag(isa::Pipe::Cube, 0); // one token short
    p.exec(isa::Pipe::Cube, 5);
    EXPECT_FALSE(isa::isWellFormed(p));
    EXPECT_DEATH(sim.run(p), "deadlocked");
}

} // anonymous namespace
} // namespace ascend
