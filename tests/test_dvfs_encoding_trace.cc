/**
 * @file
 * Tests for three Section 3.2 / tooling features: the DVFS table and
 * governor, instruction-stream compression, and the Chrome-trace
 * capture of the core simulator.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "compiler/layer_compiler.hh"
#include "core/core_sim.hh"
#include "core/trace.hh"
#include "isa/encoding.hh"
#include "soc/dvfs.hh"

namespace ascend {
namespace {

// ---------------------------------------------------------------- DVFS

TEST(Dvfs, NominalPointIsIdentity)
{
    const auto table = soc::DvfsTable::mobileNpu();
    EXPECT_DOUBLE_EQ(table.latencyAt(table.nominal(), 1.0), 1.0);
    EXPECT_DOUBLE_EQ(table.relativeEnergyAt(table.nominal()), 1.0);
}

TEST(Dvfs, LowerFrequencyTradesLatencyForEnergy)
{
    const auto table = soc::DvfsTable::mobileNpu();
    const auto &low = table.points().front();
    EXPECT_GT(table.latencyAt(low, 1.0), 1.0);
    EXPECT_LT(table.relativeEnergyAt(low), 1.0);
}

TEST(Dvfs, BoostIsFasterButCostlier)
{
    const auto table = soc::DvfsTable::mobileNpu();
    const auto &boost = table.points().back();
    EXPECT_LT(table.latencyAt(boost, 1.0), 1.0);
    EXPECT_GT(table.relativeEnergyAt(boost), 1.0);
}

TEST(Dvfs, GovernorPicksLowestEnergyMeetingDeadline)
{
    const auto table = soc::DvfsTable::mobileNpu();
    // Very loose deadline: the lowest point wins.
    EXPECT_EQ(&table.pick(0.001, 1.0), &table.points().front());
    // Impossible deadline: fall back to the fastest point.
    EXPECT_EQ(&table.pick(1.0, 1e-6), &table.points().back());
    // A deadline exactly matching nominal: nominal (or lower) is
    // chosen, never boost.
    const auto &chosen = table.pick(0.010, 0.010);
    EXPECT_LE(chosen.freqGhz, table.nominal().freqGhz);
}

TEST(Dvfs, RelativePowerFollowsV2F)
{
    const soc::OperatingPoint nominal{"n", 1.0, 1.0};
    const soc::OperatingPoint half{"h", 0.5, 0.8};
    EXPECT_NEAR(half.relativePower(nominal), 0.8 * 0.8 * 0.5, 1e-12);
}

TEST(DvfsDeath, UnsortedTableRejected)
{
    EXPECT_DEATH(soc::DvfsTable({{"a", 1.0, 1.0}, {"b", 0.5, 0.8}}, 0),
                 "sorted");
}

// --------------------------------------------------- encoding

TEST(Encoding, SizesByOpcode)
{
    isa::Program p;
    p.exec(isa::Pipe::Cube, 10);
    p.setFlag(isa::Pipe::Cube, 1);
    p.waitFlag(isa::Pipe::Vector, 1);
    EXPECT_EQ(isa::encodedBytes(p),
              isa::kExecEncodedBytes + 2 * isa::kSyncEncodedBytes);
}

TEST(Encoding, LoopyProgramsCompressWell)
{
    // A compiled GEMM is a repeated loop body: the shape dictionary
    // should compress it several-fold (the Section 3.2 technique).
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    compiler::LayerCompiler lc(cfg);
    const auto prog =
        lc.compile(model::Layer::linear("fc", 1024, 1024, 1024));
    const double ratio = isa::compressionRatio(prog);
    EXPECT_LT(ratio, 0.6);
    EXPECT_GT(ratio, 0.0);
}

TEST(Encoding, UniqueInstructionsDoNotCompress)
{
    isa::Program p;
    // Every instruction has a distinct shape (different flag ids).
    for (std::uint8_t i = 0; i < 100; ++i)
        p.setFlag(isa::Pipe::Cube, i % 250);
    // With 100 distinct-ish shapes the dictionary dominates.
    EXPECT_GT(isa::compressionRatio(p), 0.7);
}

TEST(Encoding, EmptyProgramRatioIsOne)
{
    EXPECT_DOUBLE_EQ(isa::compressionRatio(isa::Program()), 1.0);
}

// ------------------------------------------------------- trace

TEST(Trace, CapturesEveryExecInstr)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    core::CoreSim sim(cfg);
    isa::Program p;
    p.exec(isa::Pipe::Mte1, 100, 0, {}, "load");
    p.setFlag(isa::Pipe::Mte1, 0);
    p.waitFlag(isa::Pipe::Cube, 0);
    p.exec(isa::Pipe::Cube, 200, 0, {}, "mm");

    core::Trace trace;
    const auto r = sim.run(p, &trace);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.events()[0].pipe, isa::Pipe::Mte1);
    EXPECT_EQ(trace.events()[0].duration, 100u);
    EXPECT_STREQ(trace.events()[1].tag, "mm");
    // Dependency visible in the timeline.
    EXPECT_GE(trace.events()[1].start,
              trace.events()[0].start + trace.events()[0].duration);
    EXPECT_EQ(trace.busyCycles(isa::Pipe::Cube),
              r.pipe(isa::Pipe::Cube).busyCycles);
}

TEST(Trace, BusyCyclesMatchSimResultOnRealProgram)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    compiler::LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    const auto prog =
        lc.compile(model::Layer::linear("fc", 256, 256, 256));
    core::Trace trace;
    const auto r = sim.run(prog, &trace);
    for (std::size_t p = 0; p < isa::kNumPipes; ++p) {
        const auto pipe = static_cast<isa::Pipe>(p);
        EXPECT_EQ(trace.busyCycles(pipe), r.pipe(pipe).busyCycles)
            << isa::toString(pipe);
    }
}

TEST(Trace, ChromeJsonIsWellFormedEnough)
{
    core::Trace trace;
    trace.add(isa::Pipe::Cube, 0, 10, "mm");
    trace.add(isa::Pipe::Vector, 10, 5, nullptr);
    std::ostringstream os;
    trace.writeChromeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"mm\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"cube\""), std::string::npos);
    // Balanced braces as a cheap structural check.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, ClearResets)
{
    core::Trace trace;
    trace.add(isa::Pipe::Cube, 0, 1, "x");
    trace.clear();
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.busyCycles(isa::Pipe::Cube), 0u);
}

} // anonymous namespace
} // namespace ascend
