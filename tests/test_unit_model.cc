/**
 * @file
 * Unit tests for the calibrated PPA model: Tables 3 and 4 must
 * reproduce within tight tolerance, and the model must behave sanely
 * away from the calibration points.
 */

#include <gtest/gtest.h>

#include "arch/unit_model.hh"

namespace ascend {
namespace arch {
namespace {

TEST(UnitModel, Table3CubeAt7nm)
{
    const UnitPpa cube = modelCube({16, 16, 16}, 1.0, TechNode::N7);
    EXPECT_NEAR(cube.peakFlops, 8.192e12, 1e9);
    EXPECT_NEAR(cube.areaMm2, 2.57, 0.05);
    EXPECT_NEAR(cube.powerW, 3.13, 0.10);
    EXPECT_NEAR(cube.perfPerWatt() / 1e12, 2.56, 0.08);
    EXPECT_NEAR(cube.perfPerArea() / 1e12, 3.11, 0.10);
}

TEST(UnitModel, Table3VectorAt7nm)
{
    const UnitPpa vec = modelVector(256, 1.0, TechNode::N7);
    EXPECT_NEAR(vec.peakFlops, 256e9, 1e6);
    EXPECT_NEAR(vec.areaMm2, 0.70, 0.02);
    EXPECT_NEAR(vec.powerW, 0.46, 0.02);
    EXPECT_NEAR(vec.perfPerWatt() / 1e12, 0.56, 0.02);
}

TEST(UnitModel, Table3Scalar)
{
    const UnitPpa sc = modelScalar(1.0, TechNode::N7);
    EXPECT_NEAR(sc.peakFlops, 2e9, 1e6);
    EXPECT_NEAR(sc.areaMm2, 0.04, 0.005);
    EXPECT_EQ(sc.powerW, 0.0); // unmodelled per the paper
}

TEST(UnitModel, Table3CubeAdvantageIsOneOrder)
{
    const UnitPpa cube = modelCube({16, 16, 16}, 1.0, TechNode::N7);
    const UnitPpa vec = modelVector(256, 1.0, TechNode::N7);
    EXPECT_NEAR(cube.perfPerArea() / vec.perfPerArea(), 8.6, 1.0);
    EXPECT_NEAR(cube.perfPerWatt() / vec.perfPerWatt(), 4.6, 0.3);
}

TEST(UnitModel, Table4AreasAt12nm)
{
    const UnitPpa small = modelCube({4, 4, 4}, 1.66, TechNode::N12);
    const UnitPpa big = modelCube({16, 16, 16}, 1.0, TechNode::N12);
    EXPECT_NEAR(8 * small.areaMm2, 5.2, 0.1);
    EXPECT_NEAR(big.areaMm2, 13.2, 0.2);
    EXPECT_NEAR(8 * small.peakFlops, 1.7e12, 0.05e12);
    EXPECT_NEAR(big.peakFlops, 8.19e12, 0.05e12);
}

TEST(UnitModel, Table4DensityAdvantage)
{
    const UnitPpa small = modelCube({4, 4, 4}, 1.66, TechNode::N12);
    const UnitPpa big = modelCube({16, 16, 16}, 1.0, TechNode::N12);
    const double small_density =
        8 * small.peakFlops / (8 * small.areaMm2) / 1e9;
    const double big_density = big.peakFlops / big.areaMm2 / 1e9;
    EXPECT_NEAR(small_density, 330, 20);
    EXPECT_NEAR(big_density, 600, 40);
    // Throughput grows 4.7x for 2.5x area (the paper's headline).
    EXPECT_NEAR(big.peakFlops / (8 * small.peakFlops), 4.8, 0.3);
    EXPECT_NEAR(big.areaMm2 / (8 * small.areaMm2), 2.5, 0.2);
}

TEST(UnitModel, AreaMonotonicInEveryDimension)
{
    const UnitPpa base = modelCube({16, 16, 16}, 1.0, TechNode::N7);
    EXPECT_GT(modelCube({32, 16, 16}, 1.0, TechNode::N7).areaMm2,
              base.areaMm2);
    EXPECT_GT(modelCube({16, 32, 16}, 1.0, TechNode::N7).areaMm2,
              base.areaMm2);
    EXPECT_GT(modelCube({16, 16, 32}, 1.0, TechNode::N7).areaMm2,
              base.areaMm2);
}

TEST(UnitModel, ReuseImprovesEnergyEfficiency)
{
    // Bigger n0 means more operand reuse and better perf/W.
    const UnitPpa narrow = modelCube({16, 16, 4}, 1.0, TechNode::N7);
    const UnitPpa wide = modelCube({16, 16, 32}, 1.0, TechNode::N7);
    EXPECT_GT(wide.perfPerWatt(), narrow.perfPerWatt());
    // And the cube always beats a vector lane (reuse 1).
    const UnitPpa vec = modelVector(256, 1.0, TechNode::N7);
    EXPECT_GT(narrow.perfPerWatt(), vec.perfPerWatt());
}

TEST(UnitModel, PerfScalesWithClock)
{
    const UnitPpa slow = modelCube({16, 16, 16}, 1.0, TechNode::N7);
    const UnitPpa fast = modelCube({16, 16, 16}, 2.0, TechNode::N7);
    EXPECT_NEAR(fast.peakFlops, 2 * slow.peakFlops, 1.0);
    EXPECT_DOUBLE_EQ(fast.areaMm2, slow.areaMm2);
    EXPECT_NEAR(fast.powerW, 2 * slow.powerW, 1e-9);
}

TEST(UnitModel, N12IsLessDenseThanN7)
{
    const UnitPpa n7 = modelCube({16, 16, 16}, 1.0, TechNode::N7);
    const UnitPpa n12 = modelCube({16, 16, 16}, 1.0, TechNode::N12);
    EXPECT_GT(n12.areaMm2, n7.areaMm2);
}

TEST(UnitModel, CoreAreaIncludesBuffers)
{
    const auto cfg = makeCoreConfig(CoreVersion::Max);
    const double with = modelCoreAreaMm2(cfg, TechNode::N7);
    auto small = cfg;
    small.l1Bytes = 128 * kKiB;
    EXPECT_GT(with, modelCoreAreaMm2(small, TechNode::N7));
    // Max-class core should be a handful of mm^2.
    EXPECT_GT(with, 3.0);
    EXPECT_LT(with, 8.0);
}

TEST(UnitModel, SramDensityPerNode)
{
    EXPECT_LT(sramMm2PerMiB(TechNode::N7), sramMm2PerMiB(TechNode::N12));
}

TEST(UnitModel, TechNodeNames)
{
    EXPECT_STREQ(toString(TechNode::N7), "7nm");
    EXPECT_STREQ(toString(TechNode::N12), "12nm");
}

} // anonymous namespace
} // namespace arch
} // namespace ascend
