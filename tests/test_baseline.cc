/**
 * @file
 * Tests for the baseline accelerator models: systolic fill/drain
 * behaviour, SIMT wave quantization and split-K, CPU roofline.
 */

#include <gtest/gtest.h>

#include "baseline/cpu.hh"
#include "baseline/simt.hh"
#include "baseline/systolic.hh"
#include "model/zoo.hh"

namespace ascend {
namespace baseline {
namespace {

TEST(Systolic, GemmCyclesFormula)
{
    SystolicConfig cfg;
    cfg.width = 128;
    SystolicArray arr(cfg);
    // One weight tile: fill + stream m + drain = m + 3w.
    EXPECT_EQ(arr.gemmCycles(1000, 128, 128), 1000u + 3 * 128);
    // Four weight tiles.
    EXPECT_EQ(arr.gemmCycles(1000, 256, 256), 4 * (1000u + 3 * 128));
}

TEST(Systolic, SmallMatricesWasteThePipeline)
{
    SystolicConfig cfg;
    cfg.width = 128;
    SystolicArray arr(cfg);
    // m = 16 rows through a 128-wide array: mostly fill/drain.
    const Cycles c = arr.gemmCycles(16, 128, 128);
    const double util =
        double(16) * 128 * 128 / (double(c) * 128 * 128);
    EXPECT_LT(util, 0.05);
}

TEST(Systolic, UtilizationGrowsWithBatch)
{
    SystolicArray arr(tpuV3Like());
    const auto small = arr.runInference(model::zoo::resnet50(1));
    const auto big = arr.runInference(model::zoo::resnet50(32));
    EXPECT_GT(big.utilization, small.utilization);
    EXPECT_GT(small.flops, 0u);
}

TEST(Systolic, TrainingCostsMoreThanInference)
{
    SystolicArray arr(tpuV3Like());
    const auto inf = arr.runInference(model::zoo::resnet50(4));
    const auto tra = arr.runTraining(model::zoo::resnet50(4));
    EXPECT_GT(tra.cycles, 2 * inf.cycles);
    EXPECT_NEAR(double(tra.flops), 3.0 * double(inf.flops),
                0.25 * double(tra.flops));
}

TEST(Systolic, PeakFlops)
{
    SystolicArray tpu(tpuV3Like());
    EXPECT_NEAR(tpu.peakFlops(), 123e12, 2e12);
    SystolicArray fsd(fsdLike());
    EXPECT_NEAR(fsd.peakFlops(), 36.8e12, 1e12); // one of two arrays
}

TEST(SystolicDeath, ZeroWidthRejected)
{
    SystolicConfig cfg;
    cfg.width = 0;
    EXPECT_DEATH(SystolicArray{cfg}, "width");
}

TEST(Simt, BigGemmApproachesIssueEfficiency)
{
    GpuModel gpu(v100Like());
    const auto l = model::Layer::linear("g", 8192, 8192, 8192);
    const double sec = gpu.layerSeconds(l);
    const double achieved = double(l.flops()) / sec;
    const double target = gpu.config().tensorFlopsPerSec *
                          gpu.config().issueEfficiency;
    EXPECT_GT(achieved, 0.9 * target);
    EXPECT_LE(achieved, target);
}

TEST(Simt, WaveQuantizationHurtsSmallGemm)
{
    GpuModel gpu(v100Like());
    // Small m x n with small k: only a few tiles -> low occupancy.
    const auto small = model::Layer::linear("s", 64, 64, 64);
    const double sec = gpu.layerSeconds(small);
    const double achieved = double(small.flops()) / sec;
    EXPECT_LT(achieved,
              0.05 * gpu.config().tensorFlopsPerSec);
}

TEST(Simt, SplitKRecoversSkinnyGemms)
{
    // dW-shaped GEMM: tiny m x n, huge k. Without split-K this would
    // be single-tile; the model must credit the k-dimension.
    GpuModel gpu(v100Like());
    const auto dw = model::Layer::linear("dw", 64, 1 << 20, 64);
    const double sec = gpu.layerSeconds(dw);
    const double achieved = double(dw.flops()) / sec;
    EXPECT_GT(achieved, 0.3 * gpu.config().tensorFlopsPerSec *
                            gpu.config().issueEfficiency);
}

TEST(Simt, MemoryBoundLayersHitBandwidthRoofline)
{
    GpuModel gpu(v100Like());
    const auto bn = model::Layer::batchNorm("bn", 1ull << 28);
    const double sec = gpu.layerSeconds(bn);
    const double bytes = bn.inputBytes() + bn.outputBytes();
    EXPECT_GE(sec, bytes / gpu.config().memBandwidth);
}

TEST(Simt, LaunchLatencyDominatesTinyLayers)
{
    GpuModel gpu(v100Like());
    const auto tiny = model::Layer::elementwise("e", 8);
    EXPECT_GE(gpu.layerSeconds(tiny), gpu.config().launchLatencySec);
}

TEST(Simt, TrainingFlopsTripleInference)
{
    GpuModel gpu(v100Like());
    const auto net = model::zoo::mobilenetV2(4);
    const auto inf = gpu.runInference(net);
    const auto tra = gpu.runTraining(net);
    EXPECT_NEAR(double(tra.flops), 3.0 * double(inf.flops),
                0.3 * double(tra.flops));
    EXPECT_GT(tra.seconds, inf.seconds);
}

TEST(Cpu, RooflineTakesTheMax)
{
    CpuModel cpu{CpuConfig{"c", 1e12, 1e11, 1.0, 1.0}};
    // Compute-bound layer.
    const auto big = model::Layer::linear("g", 1024, 1024, 1024);
    EXPECT_NEAR(cpu.layerSeconds(big), double(big.flops()) / 1e12,
                1e-6);
    // Memory-bound layer.
    const auto bn = model::Layer::batchNorm("bn", 1ull << 26);
    const double bytes = bn.inputBytes() + bn.outputBytes() +
                         bn.weightBytes();
    EXPECT_NEAR(cpu.layerSeconds(bn), bytes / 1e11, 1e-6);
}

TEST(Cpu, OrdersOfMagnitudeBehindOnTraining)
{
    CpuModel cpu{CpuConfig{}};
    const auto net = model::zoo::resnet50(8);
    const double imgs =
        8.0 / cpu.trainingStepSeconds(net);
    EXPECT_LT(imgs, 100.0); // paper: CPUs are orders behind
    EXPECT_GT(imgs, 1.0);
}

/** Parameterized: the ordering Ascend > systolic holds per batch for
 * small-batch CNN inference (the paper's mobile/automotive claim). */
class SystolicSmallBatch : public testing::TestWithParam<unsigned>
{
};

TEST_P(SystolicSmallBatch, FsdUtilizationStaysLow)
{
    SystolicArray fsd(fsdLike());
    const auto r = fsd.runInference(
        model::zoo::mobilenetV2(GetParam(), DataType::Int8));
    EXPECT_LT(r.utilization, 0.35);
}

INSTANTIATE_TEST_SUITE_P(Batches, SystolicSmallBatch,
                         testing::Values(1u, 2u, 4u));

} // anonymous namespace
} // namespace baseline
} // namespace ascend
