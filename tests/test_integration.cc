/**
 * @file
 * Integration tests: the paper's headline shapes must hold end-to-end
 * through the full stack (zoo -> compiler -> core sim -> SoC /
 * baselines). These encode the figure/table expectations so a
 * regression in any module that breaks a reproduced result fails CI.
 */

#include <gtest/gtest.h>

#include "arch/unit_model.hh"
#include "baseline/simt.hh"
#include "baseline/systolic.hh"
#include "compiler/profiler.hh"
#include "model/zoo.hh"
#include "soc/mobile_soc.hh"
#include "soc/training_soc.hh"

namespace ascend {
namespace {

using compiler::GroupProfile;
using compiler::Profiler;

double
fractionAboveOne(const std::vector<GroupProfile> &groups)
{
    unsigned above = 0, counted = 0;
    for (const auto &g : groups) {
        if (g.cubeBusy == 0)
            continue; // vector-only groups (embeddings etc.)
        ++counted;
        if (g.cubeVectorRatio() > 1.0)
            ++above;
    }
    return counted ? double(above) / counted : 0.0;
}

TEST(Figure4, BertInferenceIsCubeDominated)
{
    Profiler p(arch::makeCoreConfig(arch::CoreVersion::Max));
    const auto net = model::zoo::bert("b", 1, 384, 1024, 2, 16, 4096);
    const auto groups = Profiler::fusionGroups(p.runInference(net));
    // "For most layers, the ratio is much greater than 1."
    EXPECT_GT(fractionAboveOne(groups), 0.7);
}

TEST(Figure5, BertTrainingStaysMostlyAboveOne)
{
    Profiler p(arch::makeCoreConfig(arch::CoreVersion::Max));
    const auto net = model::zoo::bert("b", 1, 384, 1024, 2, 16, 4096);
    const auto tra =
        Profiler::fusionGroupsTraining(p.runTraining(net));
    EXPECT_GT(fractionAboveOne(tra), 0.6);
    // And training is less cube-biased than inference.
    const auto inf = Profiler::fusionGroups(p.runInference(net));
    double inf_med = 0, tra_med = 0;
    for (const auto &g : inf)
        inf_med += g.cubeVectorRatio();
    for (const auto &g : tra)
        tra_med += g.cubeVectorRatio();
    EXPECT_LT(tra_med, inf_med);
}

TEST(Figure6, MobilenetIsVectorBoundOnTheBigCore)
{
    Profiler p(arch::makeCoreConfig(arch::CoreVersion::Max));
    const auto groups =
        Profiler::fusionGroups(p.runInference(model::zoo::mobilenetV2(1)));
    // "most of the MobileNet layers' ratio are between 0 to 1"
    EXPECT_LE(fractionAboveOne(groups), 0.5);
}

TEST(Figure7, ResnetFirstOperatorsNearOneLaterAbove)
{
    Profiler p(arch::makeCoreConfig(arch::CoreVersion::Max));
    const auto groups =
        Profiler::fusionGroups(p.runInference(model::zoo::resnet50(1)));
    ASSERT_GT(groups.size(), 20u);
    // conv1 sits close to 1.
    EXPECT_GT(groups[0].cubeVectorRatio(), 0.3);
    EXPECT_LT(groups[0].cubeVectorRatio(), 2.0);
    // The deep stages are clearly cube-dominated.
    double late = 0;
    unsigned n = 0;
    for (std::size_t i = groups.size() - 10; i < groups.size() - 1; ++i) {
        late += groups[i].cubeVectorRatio();
        ++n;
    }
    EXPECT_GT(late / n, 1.5);
}

TEST(Figure8, GestureNetAllAboveOneOnTiny)
{
    Profiler p(arch::makeCoreConfig(arch::CoreVersion::Tiny));
    const auto groups =
        Profiler::fusionGroups(p.runInference(model::zoo::gestureNet(1)));
    for (const auto &g : groups)
        EXPECT_GT(g.cubeVectorRatio(), 1.0) << g.name;
}

TEST(Figure9, BandwidthBoundsAndOrdering)
{
    auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    cfg.busABytesPerCycle *= 1024; // unlimited-L1 profiling config
    cfg.busBBytesPerCycle *= 1024;
    cfg.busUbBytesPerCycle *= 1024;
    Profiler p(cfg);

    auto max_read = [](const std::vector<GroupProfile> &groups) {
        double mx = 0;
        for (const auto &g : groups) {
            mx = std::max(mx, g.l1ReadBitsPerCycle());
            // Paper bound: reads <= 4096 bits/cy, writes <= 2048.
            EXPECT_LE(g.l1ReadBitsPerCycle(), 4096.0) << g.name;
            EXPECT_LE(g.l1WriteBitsPerCycle(), 2048.0) << g.name;
        }
        return mx;
    };
    const double mobile = max_read(
        Profiler::fusionGroups(p.runInference(model::zoo::mobilenetV2(1))));
    const double resnet = max_read(
        Profiler::fusionGroups(p.runInference(model::zoo::resnet50(1))));
    // "MobileNet shows more L1 memory bandwidth requirement."
    EXPECT_GT(mobile, resnet * 0.99);
}

TEST(Section24, LiteWidthRecoversMobilenetRatios)
{
    Profiler max_core(arch::makeCoreConfig(arch::CoreVersion::Max));
    Profiler lite(arch::makeCoreConfig(arch::CoreVersion::Lite));
    const auto net = model::zoo::mobilenetV2(1);
    const double on_max = fractionAboveOne(
        Profiler::fusionGroups(max_core.runInference(net)));
    const double on_lite = fractionAboveOne(
        Profiler::fusionGroups(lite.runInference(net)));
    // The tailored Lite configuration (narrower cube relative to its
    // vector) pushes more operators above 1.
    EXPECT_GE(on_lite, on_max);
}

TEST(Table7, Ascend910BeatsBaselinesOnResnetTraining)
{
    soc::TrainingSoc soc910;
    const unsigned per_core = 4;
    const auto step =
        soc910.trainStep(model::zoo::resnet50(per_core));
    const unsigned batch = per_core * soc910.config().aiCores;
    const double ascend = batch / step.seconds;

    baseline::GpuModel v100(baseline::v100Like());
    const double gpu =
        batch / v100.runTraining(model::zoo::resnet50(batch)).seconds;

    baseline::SystolicArray tpu(baseline::tpuV3Like());
    const auto tr = tpu.runTraining(model::zoo::resnet50(batch));
    const double sys = batch / tr.seconds(tpu.config().clockGhz);

    // Paper: 1809 vs 1058 vs 976 - Ascend wins by 1.5-3x.
    EXPECT_GT(ascend, 1.2 * gpu);
    EXPECT_GT(ascend, 1.2 * sys);
    EXPECT_LT(ascend, 6.0 * gpu); // and not absurdly so
}

TEST(Table8, KirinBeatsPublishedCompetitorLatency)
{
    soc::MobileSoc kirin;
    const double ms =
        kirin.liteLatencySeconds(model::zoo::mobilenetV2(1)) * 1e3;
    EXPECT_LT(ms, 7.0); // Dimensity 1000: 7 ms; SD865/Exynos: 15 ms
}

TEST(Table3Shape, CubeBeatsVectorByOrderOfMagnitudeInDensity)
{
    const auto cube =
        arch::modelCube({16, 16, 16}, 1.0, arch::TechNode::N7);
    const auto vec = arch::modelVector(256, 1.0, arch::TechNode::N7);
    EXPECT_GT(cube.perfPerArea() / vec.perfPerArea(), 5.0);
    EXPECT_GT(cube.perfPerWatt() / vec.perfPerWatt(), 3.0);
}

TEST(EndToEnd, EveryZooNetworkRunsOnItsTargetCore)
{
    struct Case
    {
        arch::CoreVersion core;
        model::Network net;
    };
    const Case cases[] = {
        {arch::CoreVersion::Tiny, model::zoo::gestureNet(1)},
        {arch::CoreVersion::Lite, model::zoo::mobilenetV2(1)},
        {arch::CoreVersion::Mini, model::zoo::resnet50(1)},
        {arch::CoreVersion::Std, model::zoo::vgg16(1)},
        {arch::CoreVersion::Max, model::zoo::bertBase(1, 128)},
    };
    for (const Case &c : cases) {
        Profiler p(arch::makeCoreConfig(c.core));
        const auto runs = p.runInference(c.net);
        EXPECT_EQ(runs.size(), c.net.size());
        Flops flops = 0;
        for (const auto &r : runs)
            flops += r.result.totalFlops;
        // Cube-layer FLOPs are accounted exactly; vector layers add
        // approximate datapath-pass work on top.
        EXPECT_GE(flops, c.net.totalFlops() * 9 / 10) << c.net.name;
    }
}

} // anonymous namespace
} // namespace ascend
