/**
 * @file
 * Checkpoint-corruption fuzz: every way a checkpoint artifact can rot
 * on disk — flipped bits, truncation at any offset, appended garbage,
 * zeroed runs, foreign magics — must surface as a structured
 * ascend::Error{CheckpointCorrupt} from the Checked loaders (or a
 * quiet false for absence), never as a crash, a hang, or a silently
 * accepted wrong state. Runs both artifact framings: the field-wise
 * ASCCKPT elastic checkpoint and the opaque ASCBLOB payload the
 * serving engine persists. Built with the same sanitizer flags as the
 * rest of the suite, so an out-of-bounds parse trips ASan/UBSan here.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/rng.hh"
#include "resilience/checkpoint.hh"

using namespace ascend;
using resilience::CheckpointStore;
using resilience::RunCheckpoint;

namespace {

std::string
tempDir(const char *test)
{
    return ::testing::TempDir() + "ascend_ckpt_fuzz_" + test;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
spit(const std::string &path, const std::string &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), std::streamsize(data.size()));
}

RunCheckpoint
sampleCheckpoint()
{
    RunCheckpoint s;
    s.runId = "fuzz-run";
    s.sequence = 7;
    s.nextStep = 42;
    s.simTimeSec = 3.5;
    s.activeNodes = {0u, 1u, 2u, 7u};
    s.sparesLeft = 2;
    s.lastCheckpointStep = 40;
    s.lastCheckpointSec = 3.25;
    s.nodeEventCursor = 5;
    s.eccEventCursor = 1;
    s.counters.failovers = 2;
    s.counters.rollbacks = 1;
    s.eventLog = "[e00001] t=0 failover\n";
    return s;
}

/** A payload with structure worth corrupting: lengths and floats. */
std::string
samplePayload()
{
    std::string payload = "serving-state:";
    for (int i = 0; i < 64; ++i)
        payload.push_back(char(i * 7));
    payload += "trailer";
    return payload;
}

enum class Outcome { Loaded, Missing, Corrupt };

/**
 * Load through the Checked API and classify. Anything but these
 * three outcomes (a crash, another exception type) fails the test.
 */
Outcome
checkedLoad(const CheckpointStore &store, const std::string &run_id)
{
    RunCheckpoint out;
    try {
        return store.loadChecked(out, run_id) ? Outcome::Loaded
                                              : Outcome::Missing;
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::CheckpointCorrupt)
            << e.what();
        EXPECT_FALSE(e.context().empty());
        return Outcome::Corrupt;
    }
}

Outcome
checkedBlobLoad(const CheckpointStore &store,
                const std::string &run_id)
{
    std::string payload;
    try {
        return store.loadBlobChecked(payload, run_id)
                   ? Outcome::Loaded
                   : Outcome::Missing;
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::CheckpointCorrupt)
            << e.what();
        EXPECT_FALSE(e.context().empty());
        return Outcome::Corrupt;
    }
}

} // namespace

TEST(CheckpointFuzz, EveryBitFlipInElasticFramingIsCorrupt)
{
    const CheckpointStore store(tempDir("bitflip"));
    ASSERT_TRUE(store.save(sampleCheckpoint()));
    const std::string blob = slurp(store.path());
    ASSERT_GT(blob.size(), 32u);

    Rng rng(0xf1u);
    for (int trial = 0; trial < 400; ++trial) {
        std::string mutated = blob;
        const std::size_t at = std::size_t(rng.uniform(mutated.size()));
        mutated[at] = char(mutated[at] ^ (1 << unsigned(rng.uniform(8))));
        spit(store.path(), mutated);
        // A flip may hit an ignorable byte only if the artifact still
        // verifies byte-identically — impossible with a checksum over
        // everything — so the only allowed outcome is Corrupt.
        EXPECT_EQ(checkedLoad(store, "fuzz-run"), Outcome::Corrupt)
            << "flip at offset " << at;
    }
    store.remove();
}

TEST(CheckpointFuzz, EveryTruncationOfElasticFramingIsCorrupt)
{
    const CheckpointStore store(tempDir("truncate"));
    ASSERT_TRUE(store.save(sampleCheckpoint()));
    const std::string blob = slurp(store.path());

    for (std::size_t cut = 0; cut < blob.size(); ++cut) {
        spit(store.path(), blob.substr(0, cut));
        EXPECT_EQ(checkedLoad(store, "fuzz-run"), Outcome::Corrupt)
            << "truncated to " << cut << " bytes";
    }

    // Appended garbage is corruption too, not trailing slack.
    spit(store.path(), blob + "zzzz");
    EXPECT_EQ(checkedLoad(store, "fuzz-run"), Outcome::Corrupt);

    // The pristine bytes still load after all that fuzzing.
    spit(store.path(), blob);
    EXPECT_EQ(checkedLoad(store, "fuzz-run"), Outcome::Loaded);
    store.remove();
    EXPECT_EQ(checkedLoad(store, "fuzz-run"), Outcome::Missing);
}

TEST(CheckpointFuzz, EveryBitFlipInBlobFramingIsCorrupt)
{
    const CheckpointStore store(tempDir("blob_bitflip"), "serving");
    ASSERT_TRUE(store.saveBlob("fuzz-run", samplePayload()));
    const std::string blob = slurp(store.path());
    ASSERT_GT(blob.size(), 32u);

    Rng rng(0xb10bu);
    for (int trial = 0; trial < 400; ++trial) {
        std::string mutated = blob;
        const std::size_t at = std::size_t(rng.uniform(mutated.size()));
        mutated[at] = char(mutated[at] ^ (1 << unsigned(rng.uniform(8))));
        spit(store.path(), mutated);
        EXPECT_EQ(checkedBlobLoad(store, "fuzz-run"),
                  Outcome::Corrupt)
            << "flip at offset " << at;
    }
    store.remove();
}

TEST(CheckpointFuzz, EveryTruncationOfBlobFramingIsCorrupt)
{
    const CheckpointStore store(tempDir("blob_truncate"), "serving");
    ASSERT_TRUE(store.saveBlob("fuzz-run", samplePayload()));
    const std::string blob = slurp(store.path());

    for (std::size_t cut = 0; cut < blob.size(); ++cut) {
        spit(store.path(), blob.substr(0, cut));
        EXPECT_EQ(checkedBlobLoad(store, "fuzz-run"),
                  Outcome::Corrupt)
            << "truncated to " << cut << " bytes";
    }

    spit(store.path(), blob + std::string(4, '\0'));
    EXPECT_EQ(checkedBlobLoad(store, "fuzz-run"), Outcome::Corrupt);

    spit(store.path(), blob);
    EXPECT_EQ(checkedBlobLoad(store, "fuzz-run"), Outcome::Loaded);
    std::string payload;
    ASSERT_TRUE(store.loadBlob(payload, "fuzz-run"));
    EXPECT_EQ(payload, samplePayload());
    store.remove();
    EXPECT_EQ(checkedBlobLoad(store, "fuzz-run"), Outcome::Missing);
}

TEST(CheckpointFuzz, StructuredMutationsNeverCrashOrPass)
{
    const CheckpointStore store(tempDir("structured"), "serving");
    ASSERT_TRUE(store.saveBlob("fuzz-run", samplePayload()));
    const std::string blob = slurp(store.path());

    // Cross-framing confusion: a blob parsed as a checkpoint and a
    // checkpoint parsed as a blob are both clean refusals.
    EXPECT_EQ(checkedLoad(store, "fuzz-run"), Outcome::Corrupt);
    const CheckpointStore elastic(tempDir("structured_e"));
    ASSERT_TRUE(elastic.save(sampleCheckpoint()));
    spit(store.path(), slurp(elastic.path()));
    EXPECT_EQ(checkedBlobLoad(store, "fuzz-run"), Outcome::Corrupt);

    // Zeroed windows (torn write / sparse-file damage).
    for (std::size_t start = 0; start + 8 <= blob.size();
         start += 11) {
        std::string mutated = blob;
        for (std::size_t i = 0; i < 8; ++i)
            mutated[start + i] = '\0';
        spit(store.path(), mutated);
        EXPECT_EQ(checkedBlobLoad(store, "fuzz-run"),
                  Outcome::Corrupt)
            << "zeroed window at " << start;
    }

    // Saturated length fields cannot trigger giant allocations: the
    // loader bounds every count against the remaining bytes.
    std::string huge = blob;
    for (std::size_t i = 8; i < 16 && i < huge.size(); ++i)
        huge[i] = char(0xff);
    spit(store.path(), huge);
    EXPECT_EQ(checkedBlobLoad(store, "fuzz-run"), Outcome::Corrupt);

    // An empty file is corruption (the slot exists but holds nothing).
    spit(store.path(), "");
    EXPECT_EQ(checkedBlobLoad(store, "fuzz-run"), Outcome::Corrupt);

    // The quiet loaders refuse the same inputs without throwing.
    spit(store.path(), huge);
    std::string payload = "untouched";
    EXPECT_FALSE(store.loadBlob(payload, "fuzz-run"));
    EXPECT_EQ(payload, "untouched");

    store.remove();
    elastic.remove();
}

TEST(CheckpointFuzz, ForeignRunIdIsCorruptionUnderCheckedLoad)
{
    const CheckpointStore store(tempDir("foreign"), "serving");
    ASSERT_TRUE(store.saveBlob("run-A", samplePayload()));
    // The bytes are pristine; the identity is wrong. loadChecked
    // treats that as corruption of this run's slot.
    EXPECT_EQ(checkedBlobLoad(store, "run-B"), Outcome::Corrupt);
    EXPECT_EQ(checkedBlobLoad(store, "run-A"), Outcome::Loaded);
    store.remove();
}
