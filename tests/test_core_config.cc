/**
 * @file
 * Unit tests for the core configuration presets: every Table 5 design
 * point must match the published parameters.
 */

#include <cctype>

#include <gtest/gtest.h>

#include "arch/core_config.hh"
#include "common/error.hh"

namespace ascend {
namespace arch {
namespace {

TEST(CubeShape, MacAndFlopCounts)
{
    const CubeShape c{16, 16, 16};
    EXPECT_EQ(c.macsPerCycle(), 4096u);
    EXPECT_EQ(c.flopsPerCycle(), 8192u);
    const CubeShape tiny{4, 32, 4};
    EXPECT_EQ(tiny.flopsPerCycle(), 1024u);
}

TEST(CoreConfig, MaxMatchesTable5)
{
    const CoreConfig c = makeCoreConfig(CoreVersion::Max);
    EXPECT_DOUBLE_EQ(c.clockGhz, 1.0);
    EXPECT_EQ(c.cube.flopsPerCycle(), 8192u);
    EXPECT_EQ(c.vectorWidthBytes, 256u);
    // A: 4 TB/s at 1 GHz.
    EXPECT_EQ(c.busABytesPerCycle, 4096u);
    EXPECT_EQ(c.busBBytesPerCycle, 2048u);
    EXPECT_EQ(c.busUbBytesPerCycle, 2048u);
    // 910: 94 GB/s LLC per core.
    EXPECT_EQ(c.busExtBytesPerCycle, 94u);
}

TEST(CoreConfig, StdAndMiniShareDatapath)
{
    const CoreConfig std_core = makeCoreConfig(CoreVersion::Std);
    const CoreConfig mini = makeCoreConfig(CoreVersion::Mini);
    EXPECT_EQ(std_core.cube.flopsPerCycle(), 8192u);
    EXPECT_EQ(mini.cube.flopsPerCycle(), 8192u);
    EXPECT_EQ(std_core.busExtBytesPerCycle, 111u); // 610
    EXPECT_EQ(mini.busExtBytesPerCycle, 96u);      // 310
    EXPECT_TRUE(std_core.supportsInt4);            // automotive
}

TEST(CoreConfig, LiteMatchesTable5)
{
    const CoreConfig c = makeCoreConfig(CoreVersion::Lite);
    EXPECT_DOUBLE_EQ(c.clockGhz, 0.75);
    EXPECT_EQ(c.cube.flopsPerCycle(), 2048u);
    EXPECT_EQ(c.cube.m0, 4u); // batch-1 MAC utilization (Section 3.2)
    EXPECT_EQ(c.vectorWidthBytes, 128u);
    // 768 GB/s at 0.75 GHz on A, B and UB.
    EXPECT_EQ(c.busABytesPerCycle, 1024u);
    EXPECT_EQ(c.busUbBytesPerCycle, 1024u);
}

TEST(CoreConfig, TinyMatchesTable5)
{
    const CoreConfig c = makeCoreConfig(CoreVersion::Tiny);
    EXPECT_EQ(c.cube.flopsPerCycle(), 1024u);
    EXPECT_FALSE(c.supportsFp16); // power limit (Section 3.2)
    EXPECT_EQ(c.vectorWidthBytes, 32u);
    EXPECT_EQ(c.busABytesPerCycle, 512u);  // 384 GB/s at 0.75 GHz
    EXPECT_EQ(c.busUbBytesPerCycle, 256u); // 192 GB/s
}

TEST(CoreConfig, Int8DoublesReduction)
{
    const CoreConfig c = makeCoreConfig(CoreVersion::Max);
    const CubeShape s = c.cubeShapeFor(DataType::Int8);
    EXPECT_EQ(s.k0, 32u); // 16x32x16 per the paper
    EXPECT_EQ(s.m0, 16u);
}

TEST(CoreConfig, Int4QuadruplesReductionOnStd)
{
    const CoreConfig c = makeCoreConfig(CoreVersion::Std);
    const CubeShape s = c.cubeShapeFor(DataType::Int4);
    EXPECT_EQ(s.k0, 64u);
}

TEST(CoreConfig, TinyInt8ShapeIsNative)
{
    // Tiny is int8-only: its 4x32x4 shape is already the int8 shape.
    const CoreConfig c = makeCoreConfig(CoreVersion::Tiny);
    const CubeShape s = c.cubeShapeFor(DataType::Int8);
    EXPECT_EQ(s.k0, 32u);
}

TEST(CoreConfigDeath, Fp16OnTinyIsFatal)
{
    const CoreConfig c = makeCoreConfig(CoreVersion::Tiny);
    EXPECT_EXIT(c.cubeShapeFor(DataType::Fp16),
                testing::ExitedWithCode(1), "does not support fp16");
}

TEST(CoreConfigDeath, Int4OnMaxIsFatal)
{
    const CoreConfig c = makeCoreConfig(CoreVersion::Max);
    EXPECT_EXIT(c.cubeShapeFor(DataType::Int4),
                testing::ExitedWithCode(1), "does not support int4");
}

TEST(CoreConfig, VectorLanes)
{
    const CoreConfig c = makeCoreConfig(CoreVersion::Max);
    EXPECT_EQ(c.vectorLanes(DataType::Fp16), 128u);
    EXPECT_EQ(c.vectorLanes(DataType::Int8), 256u);
    EXPECT_EQ(c.vectorLanes(DataType::Fp32), 64u);
}

TEST(CoreConfig, PeakCubeThroughput)
{
    const CoreConfig max = makeCoreConfig(CoreVersion::Max);
    EXPECT_NEAR(max.peakCubeOpsPerSecond(DataType::Fp16), 8.192e12,
                1e9); // 8 TFLOPS (Table 3)
    EXPECT_NEAR(max.peakCubeOpsPerSecond(DataType::Int8), 16.384e12,
                1e9);
    const CoreConfig tiny = makeCoreConfig(CoreVersion::Tiny);
    EXPECT_NEAR(tiny.peakCubeOpsPerSecond(DataType::Int8), 0.768e12,
                1e9);
}

TEST(CoreConfig, ValidateRejectsBadConfig)
{
    CoreConfig c = makeCoreConfig(CoreVersion::Max);
    c.clockGhz = 0;
    EXPECT_THROW(c.validate(), Error);
    try {
        c.validate();
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::ConfigValidation);
        EXPECT_NE(std::string(e.what()).find("clock"),
                  std::string::npos);
    }
    c = makeCoreConfig(CoreVersion::Max);
    c.l0aBytes = 4; // cannot hold a double-buffered fractal
    try {
        c.validate();
        FAIL() << "tiny L0A must be rejected";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::ConfigValidation);
        EXPECT_NE(std::string(e.what()).find("L0A"),
                  std::string::npos);
    }
}

TEST(CoreConfig, Names)
{
    EXPECT_STREQ(toString(CoreVersion::Max), "Ascend-Max");
    EXPECT_STREQ(toString(CoreVersion::Std), "Ascend");
    EXPECT_STREQ(toString(CoreVersion::Tiny), "Ascend-Tiny");
}

/** All presets validate and have sane buffer hierarchies. */
class PresetTest : public testing::TestWithParam<CoreVersion>
{
};

TEST_P(PresetTest, ValidatesAndIsOrdered)
{
    const CoreConfig c = makeCoreConfig(GetParam());
    c.validate();
    EXPECT_GE(c.l1Bytes, c.l0aBytes);
    EXPECT_GE(c.l1Bytes, c.ubBytes);
    EXPECT_GE(c.busABytesPerCycle, c.busExtBytesPerCycle);
}

INSTANTIATE_TEST_SUITE_P(
    AllCores, PresetTest,
    testing::Values(CoreVersion::Tiny, CoreVersion::Lite,
                    CoreVersion::Mini, CoreVersion::Std,
                    CoreVersion::Max),
    [](const auto &info) {
        std::string s = toString(info.param);
        for (auto &ch : s)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return s;
    });

} // anonymous namespace
} // namespace arch
} // namespace ascend
