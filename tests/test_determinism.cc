/**
 * @file
 * Determinism fuzz: one seeded sweep asserting byte-identical result
 * fingerprints across thread-pool sizes (the in-process equivalent of
 * ASCEND_THREADS, via runtime::ScopedThreadPoolSize) x chip-sim
 * parallel grains (ASCEND_CHIPSIM_GRAIN). Subsumes the old pairwise
 * serial-vs-parallel checks that lived in test_chip_sim.cc.
 *
 * Fingerprints print every field with %.17g / exact integers, so any
 * single-ULP drift in a floating-point reduction fails the EXPECT_EQ
 * with a readable diff.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "des/kernel.hh"
#include "model/zoo.hh"
#include "resilience/fault_schedule.hh"
#include "runtime/sim_cache.hh"
#include "runtime/sim_session.hh"
#include "runtime/thread_pool.hh"
#include "soc/chip_sim.hh"

namespace ascend {
namespace {

constexpr unsigned kThreadCounts[] = {1, 4, 13};
constexpr std::size_t kGrains[] = {1, 512};

std::string
fp(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
fingerprint(const soc::ChipSimResult &r)
{
    std::string s = "makespan=" + fp(r.makespan) +
                    " memutil=" + fp(r.avgMemUtilization) +
                    " failures=" + std::to_string(r.coreFailures) +
                    " redispatched=" +
                    std::to_string(r.reDispatchedTasks) +
                    " completed=" + std::to_string(r.completed);
    for (double f : r.coreFinish)
        s += " " + fp(f);
    return s;
}

std::string
fingerprint(const core::SimResult &r)
{
    std::string s = "cycles=" + std::to_string(r.totalCycles) +
                    " flops=" + std::to_string(r.totalFlops) +
                    " instrs=" + std::to_string(r.instrsExecuted) +
                    " barriers=" + std::to_string(r.barriers);
    for (const core::PipeStats &p : r.pipes)
        s += " [" + std::to_string(p.busyCycles) + "," +
             std::to_string(p.finishCycle) + "," +
             std::to_string(p.waitCycles) + "," +
             std::to_string(p.instrs) + "]";
    for (Bytes b : r.busBytes)
        s += " " + std::to_string(b);
    return s;
}

/** Seeded random chip workload: @p cores queues of @p tasks each. */
std::vector<std::vector<soc::CoreTask>>
randomWorkload(std::uint64_t seed, unsigned cores, unsigned tasks)
{
    Rng rng(seed);
    std::vector<std::vector<soc::CoreTask>> work(cores);
    for (auto &queue : work) {
        queue.resize(tasks);
        for (soc::CoreTask &t : queue) {
            t.computeSeconds = 1e-5 * (1.0 + rng.uniformReal() * 9.0);
            t.memBytes = Bytes(1000 * (1 + rng.uniform(500)));
        }
    }
    return work;
}

TEST(Determinism, ChipSimAcrossThreadsAndGrains)
{
    for (std::uint64_t seed : {7ull, 1234ull}) {
        const auto work = randomWorkload(seed, 64, 12);
        std::string base;
        for (unsigned threads : kThreadCounts) {
            for (std::size_t grain : kGrains) {
                runtime::ScopedThreadPoolSize pool(threads);
                soc::ChipSimOptions options;
                options.parallelGrain = grain;
                const std::string now =
                    fingerprint(soc::runChipSim(work, 2e12, options));
                if (base.empty())
                    base = now;
                else
                    EXPECT_EQ(now, base)
                        << "seed " << seed << " threads " << threads
                        << " grain " << grain;
            }
        }
        // Fully serial slicing (one giant chunk) must also agree.
        soc::ChipSimOptions serial;
        serial.parallelGrain = 1 << 20;
        EXPECT_EQ(fingerprint(soc::runChipSim(work, 2e12, serial)),
                  base);
    }
}

TEST(Determinism, ChipSimUnderFaultsAcrossThreadsAndGrains)
{
    const auto work = randomWorkload(99, 48, 8);
    resilience::FaultSpec spec;
    spec.seed = 11;
    spec.cores = 48;
    spec.horizonSec = 0.01;
    spec.stragglerFraction = 0.25;
    spec.stragglerSlowdown = 1.5;
    spec.coreTransientPerSec = 200.0;
    spec.coreRepairSec = 1e-4;
    spec.corePermanentPerSec = 50.0;
    const auto plan = resilience::ChipFaultPlan::fromSchedule(
        resilience::FaultSchedule::generate(spec), 48);
    std::string base;
    unsigned base_failures = 0;
    for (unsigned threads : kThreadCounts) {
        for (std::size_t grain : kGrains) {
            runtime::ScopedThreadPoolSize pool(threads);
            soc::ChipSimOptions options;
            options.parallelGrain = grain;
            const auto r = soc::runChipSim(work, 2e12, plan, options);
            if (base.empty()) {
                base = fingerprint(r);
                base_failures = r.coreFailures;
            } else {
                EXPECT_EQ(fingerprint(r), base)
                    << "threads " << threads << " grain " << grain;
            }
        }
    }
    EXPECT_GT(base_failures, 0u); // the fault plan actually bites
}

/**
 * Drive a des::Kernel with a seeded random event graph — events at
 * random times/priorities whose handlers run two kernel phases and
 * spawn random children — and fingerprint the full dispatch trace.
 * Handlers draw from the shared Rng, so the trace matches across
 * thread counts and grains only if the dispatch sequence is exactly
 * the canonical (time, priority, seq) order every time. The phase
 * work is element-wise (slicing-independent) plus an exact integer
 * reduction, so the fingerprint is also grain-invariant.
 */
std::string
desKernelTrace(std::uint64_t seed, std::size_t grain)
{
    Rng rng(seed);
    des::KernelOptions options;
    options.parallelGrain = grain;
    des::Kernel kernel(options);

    std::vector<double> cells(259);
    for (double &c : cells)
        c = rng.uniformReal();
    std::vector<unsigned> slice_over(kernel.phaseSlices(cells.size()));
    std::string log;
    std::uint64_t hot = 0;

    std::function<void(des::Kernel &, int)> node =
        [&](des::Kernel &k, int depth) {
            log += "ev t=" + fp(k.now());
            k.phase("fuzz.scale", cells.size(),
                    [&](std::size_t b, std::size_t e, std::size_t) {
                        for (std::size_t i = b; i < e; ++i)
                            cells[i] = cells[i] * 1.0000001 +
                                       1e-9 * double(i);
                    });
            k.phase("fuzz.count", cells.size(),
                    [&](std::size_t b, std::size_t e, std::size_t s) {
                        unsigned n = 0;
                        for (std::size_t i = b; i < e; ++i)
                            if (cells[i] > 0.5)
                                ++n;
                        slice_over[s] = n;
                    });
            unsigned over = 0;
            for (std::size_t s = 0;
                 s < kernel.phaseSlices(cells.size()); ++s)
                over += slice_over[s];
            hot += over;
            log += " over=" + std::to_string(over) + "\n";
            if (depth < 3) {
                const unsigned kids = unsigned(rng.uniform(3));
                for (unsigned c = 0; c < kids; ++c)
                    k.schedule(k.now() + rng.uniformReal(),
                               std::int32_t(rng.uniform(4)),
                               "fuzz.node",
                               [&, depth](des::Kernel &kk) {
                                   node(kk, depth + 1);
                               });
            }
        };
    for (int i = 0; i < 5; ++i)
        kernel.schedule(rng.uniformReal() * 2.0,
                        std::int32_t(rng.uniform(4)), "fuzz.root",
                        [&](des::Kernel &k) { node(k, 0); });
    unsigned quiesced = 0;
    kernel.onQuiescent([&](des::Kernel &) { ++quiesced; });
    kernel.scheduleQuiescent(1.0);
    kernel.run();
    log += "dispatched=" +
           std::to_string(kernel.stats().eventsDispatched) +
           " quiesced=" + std::to_string(quiesced) +
           " hot=" + std::to_string(hot) + "\n";
    return log;
}

TEST(Determinism, DesKernelRandomEventGraphs)
{
    for (std::uint64_t seed : {3ull, 42ull, 2026ull}) {
        std::string base;
        for (unsigned threads : kThreadCounts) {
            for (std::size_t grain : kGrains) {
                runtime::ScopedThreadPoolSize pool(threads);
                const std::string now = desKernelTrace(seed, grain);
                if (base.empty())
                    base = now;
                else
                    EXPECT_EQ(now, base)
                        << "seed " << seed << " threads " << threads
                        << " grain " << grain;
            }
        }
        // The graph must be non-trivial for the sweep to mean much.
        EXPECT_NE(base.find("dispatched="), std::string::npos);
        EXPECT_GT(base.size(), 64u) << base;
    }
}

TEST(Determinism, CoreSimSessionAcrossThreads)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Tiny);
    const auto net = model::zoo::gestureNet(1);
    std::string base;
    for (unsigned threads : kThreadCounts) {
        runtime::ScopedThreadPoolSize pool(threads);
        // Fresh private cache: every pass re-simulates all layers.
        runtime::SimSession session(
            cfg, {}, std::make_shared<runtime::SimCache>());
        const std::string now =
            fingerprint(session.inferenceResult(net));
        if (base.empty())
            base = now;
        else
            EXPECT_EQ(now, base) << "threads " << threads;
    }
}

} // anonymous namespace
} // namespace ascend
