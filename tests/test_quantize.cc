/**
 * @file
 * Tests for the quantization module (the Section 3.3 precision
 * trade-off) and the sequential functional network runner.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/functional.hh"
#include "core/quantize.hh"
#include "model/zoo.hh"

namespace ascend {
namespace {

namespace fn = core::functional;
namespace quant = core::quant;
using model::Layer;
using model::Tensor;

TEST(Quantize, ParamsCoverMaxMagnitude)
{
    Tensor t({4});
    t[0] = -3.0f;
    t[1] = 1.0f;
    t[2] = 2.5f;
    t[3] = 0.0f;
    const auto p = quant::chooseParams(t, 8);
    EXPECT_EQ(p.qmax(), 127);
    EXPECT_EQ(p.qmin(), -128);
    EXPECT_NEAR(p.scale, 3.0f / 127, 1e-6);
}

TEST(Quantize, Int4RangeIsNarrow)
{
    Tensor t({1});
    t[0] = 7.0f;
    const auto p = quant::chooseParams(t, 4);
    EXPECT_EQ(p.qmax(), 7);
    EXPECT_EQ(p.qmin(), -8);
}

TEST(Quantize, RoundTripErrorWithinHalfStep)
{
    Rng rng(9);
    const Tensor t = Tensor::random({256}, rng, 4.0f);
    const auto p = quant::chooseParams(t, 8);
    const Tensor back = quant::dequantize(quant::quantize(t, p), p, t);
    EXPECT_LE(t.maxAbsDiff(back), p.scale * 0.5f + 1e-6f);
}

TEST(Quantize, ZeroTensorIsExact)
{
    Tensor t({8});
    const auto p = quant::chooseParams(t, 8);
    const Tensor back = quant::dequantize(quant::quantize(t, p), p, t);
    EXPECT_EQ(t.maxAbsDiff(back), 0.0f);
}

TEST(Quantize, GemmErrorOrderingFp16Int8Int4)
{
    // The Section 3.3 trade-off, measured: int8 error exceeds fp16
    // error, int4 exceeds int8.
    Rng rng(10);
    const Tensor a = Tensor::random({24, 48}, rng);
    const Tensor b = Tensor::random({48, 24}, rng);
    const Tensor ref = fn::referenceGemm(a, b);
    const double e_fp16 = quant::rmsError(fn::cubeGemm(a, b), ref);
    const double e_int8 =
        quant::rmsError(quant::quantizedGemm(a, b, 8), ref);
    const double e_int4 =
        quant::rmsError(quant::quantizedGemm(a, b, 4), ref);
    EXPECT_LT(e_fp16, e_int8);
    EXPECT_LT(e_int8, e_int4);
    // And all of them are usable approximations (not garbage).
    EXPECT_LT(e_int4, 0.5);
}

TEST(Quantize, Int8GemmIsReasonablyAccurate)
{
    Rng rng(11);
    const Tensor a = Tensor::random({16, 64}, rng);
    const Tensor b = Tensor::random({64, 16}, rng);
    const Tensor ref = fn::referenceGemm(a, b);
    double ref_rms = 0;
    for (std::size_t i = 0; i < ref.numel(); ++i)
        ref_rms += double(ref[i]) * ref[i];
    ref_rms = std::sqrt(ref_rms / double(ref.numel()));
    const double rel =
        quant::rmsError(quant::quantizedGemm(a, b, 8), ref) / ref_rms;
    EXPECT_LT(rel, 0.05); // a few percent relative RMS
}

TEST(Quantize, RmsErrorBasics)
{
    Tensor a({2}), b({2});
    a[0] = 1;
    a[1] = 2;
    b[0] = 1;
    b[1] = 4;
    EXPECT_NEAR(quant::rmsError(a, b), std::sqrt(2.0), 1e-9);
    EXPECT_EQ(quant::rmsError(a, a), 0.0);
}

// -------------------------------------------- sequential runner

TEST(RunSequential, HandBuiltCnnProducesDistribution)
{
    model::Network net;
    net.add(Layer::conv2d("c1", 1, 1, 8, 8, 4, 3, 1, 1));
    net.add(Layer::activation("r1", 4 * 64, model::ActKind::Relu));
    net.add(Layer::pool2d("p1", 1, 4, 8, 8, 2, 2));
    net.add(Layer::linear("fc", 1, 4 * 16, 10));
    net.add(Layer::softmax("sm", 1, 10));

    Rng rng(21);
    const Tensor input = Tensor::random({1, 1, 8, 8}, rng);
    Rng wrng(22);
    const Tensor out = fn::runSequential(net, input, wrng);
    ASSERT_EQ(out.numel(), 10u);
    float sum = 0;
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_GE(out[i], 0.0f);
        sum += out[i];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4);
}

TEST(RunSequential, DeterministicForSameSeeds)
{
    const auto net = model::zoo::gestureNet(1);
    Rng in_rng(31);
    const Tensor input = Tensor::random({1, 3, 96, 96}, in_rng, 0.5f);
    Rng w1(32), w2(32);
    const Tensor a = fn::runSequential(net, input, w1);
    const Tensor b = fn::runSequential(net, input, w2);
    EXPECT_EQ(a.maxAbsDiff(b), 0.0f);
}

TEST(RunSequential, GestureNetEndToEndIsFinite)
{
    // The Ascend-Tiny workload runs functionally end-to-end: conv
    // stack -> pool -> fc, output finite and non-degenerate.
    const auto net = model::zoo::gestureNet(1);
    Rng in_rng(41);
    const Tensor input = Tensor::random({1, 3, 96, 96}, in_rng, 0.5f);
    Rng w_rng(42);
    const Tensor out = fn::runSequential(net, input, w_rng);
    ASSERT_EQ(out.numel(), 8u); // 8 gesture classes
    float mag = 0;
    for (std::size_t i = 0; i < out.numel(); ++i) {
        ASSERT_TRUE(std::isfinite(out[i]));
        mag += std::fabs(out[i]);
    }
    EXPECT_GT(mag, 0.0f);
}

TEST(RunSequentialDeath, AttentionLayersUnsupported)
{
    model::Network net;
    net.add(Layer::batchedMatmul("attn", 2, 4, 4, 4));
    Rng rng(1);
    Tensor input({1, 1, 4, 4});
    EXPECT_DEATH(fn::runSequential(net, input, rng), "unsupported");
}

} // anonymous namespace
} // namespace ascend
