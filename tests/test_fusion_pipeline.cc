/**
 * @file
 * Tests for the operator-fusion pass and the pipeline-parallel
 * extension.
 */

#include <gtest/gtest.h>

#include "cluster/collective.hh"
#include "compiler/fusion.hh"
#include "compiler/profiler.hh"
#include "model/zoo.hh"

namespace ascend {
namespace {

using compiler::fuseNetwork;
using compiler::FusionReport;
using model::Layer;

TEST(Fusion, FoldsBnReluIntoConv)
{
    model::Network net;
    net.add(Layer::conv2d("c", 1, 8, 16, 16, 8, 3, 1, 1));
    net.add(Layer::batchNorm("bn", 8 * 16 * 16));
    net.add(Layer::activation("r", 8 * 16 * 16, model::ActKind::Relu));
    FusionReport report;
    const auto fused = fuseNetwork(net, &report);
    ASSERT_EQ(fused.size(), 1u);
    EXPECT_EQ(report.fusedLayers(), 2u);
    EXPECT_DOUBLE_EQ(fused.layers[0].fusedEvictPasses, 3.0);
}

TEST(Fusion, DoesNotFoldReductions)
{
    model::Network net;
    net.add(Layer::linear("fc", 4, 64, 64));
    net.add(Layer::softmax("sm", 4, 64));
    const auto fused = fuseNetwork(net);
    EXPECT_EQ(fused.size(), 2u); // softmax reduces: stays standalone
}

TEST(Fusion, DoesNotFoldAcrossVolumeChanges)
{
    model::Network net;
    net.add(Layer::conv2d("c", 1, 8, 16, 16, 8, 3, 1, 1));
    // Elementwise with a different volume: not the conv's output.
    net.add(Layer::elementwise("other", 999));
    const auto fused = fuseNetwork(net);
    EXPECT_EQ(fused.size(), 2u);
}

TEST(Fusion, LeadingVectorLayerStaysStandalone)
{
    model::Network net;
    net.add(Layer::batchNorm("bn", 100));
    net.add(Layer::linear("fc", 4, 64, 64));
    const auto fused = fuseNetwork(net);
    EXPECT_EQ(fused.size(), 2u);
}

TEST(Fusion, ShrinksResnetSubstantially)
{
    const auto net = model::zoo::resnet50(1);
    FusionReport report;
    const auto fused = fuseNetwork(net, &report);
    // Every conv's bn + relu (+ add) folds: well over half the layers.
    EXPECT_LT(fused.size(), net.size() / 2 + 10);
    EXPECT_GT(report.fusedLayers(), 80u);
}

TEST(Fusion, FusedNetworkRunsFasterWithLessTraffic)
{
    compiler::Profiler profiler(
        arch::makeCoreConfig(arch::CoreVersion::Std));
    const auto net = model::zoo::resnet50(1);
    const auto fused = fuseNetwork(net);

    Cycles plain_cycles = 0, fused_cycles = 0;
    Bytes plain_ext = 0, fused_ext = 0;
    for (const auto &r : profiler.runInference(net)) {
        plain_cycles += r.result.totalCycles;
        plain_ext += r.result.extBytes();
    }
    for (const auto &r : profiler.runInference(fused)) {
        fused_cycles += r.result.totalCycles;
        fused_ext += r.result.extBytes();
    }
    EXPECT_LT(fused_cycles, plain_cycles);
    EXPECT_LT(fused_ext, plain_ext);
    // The fused layers' activations never round-trip off-core: the
    // traffic saving is substantial, not marginal.
    EXPECT_LT(double(fused_ext), 0.85 * double(plain_ext));
}

TEST(Fusion, FlopAccountingStillCoversCubeWork)
{
    compiler::Profiler profiler(
        arch::makeCoreConfig(arch::CoreVersion::Std));
    const auto fused = fuseNetwork(model::zoo::resnet50(1));
    Flops flops = 0;
    for (const auto &r : profiler.runInference(fused))
        flops += r.result.totalFlops;
    // Cube FLOPs unchanged by fusion (~8.2 GFLOPs at b=1).
    EXPECT_GT(flops, 7.5e9);
}

// ------------------------------------------------------ pipeline

TEST(Pipeline, SingleStageHasNoBubbles)
{
    cluster::PipelineJob job;
    job.stages = 1;
    job.microBatches = 8;
    job.stageSecondsPerMicroBatch = 0.01;
    EXPECT_DOUBLE_EQ(cluster::pipelineBubbleFraction(job), 0.0);
    EXPECT_NEAR(cluster::pipelineStepSeconds(job), 0.08, 1e-12);
}

TEST(Pipeline, BubbleFractionFormula)
{
    cluster::PipelineJob job;
    job.stages = 4;
    job.microBatches = 12;
    EXPECT_NEAR(cluster::pipelineBubbleFraction(job), 3.0 / 15, 1e-12);
}

TEST(Pipeline, MoreMicroBatchesAmortizeBubbles)
{
    cluster::PipelineJob job;
    job.stages = 8;
    job.stageSecondsPerMicroBatch = 0.001;
    job.microBatches = 8;
    const double few = cluster::pipelineBubbleFraction(job);
    job.microBatches = 64;
    const double many = cluster::pipelineBubbleFraction(job);
    EXPECT_LT(many, few);
}

TEST(Pipeline, BoundaryTrafficAddsToSlotTime)
{
    cluster::PipelineJob job;
    job.stages = 2;
    job.microBatches = 4;
    job.stageSecondsPerMicroBatch = 0.001;
    job.boundaryBytes = 0;
    const double dry = cluster::pipelineStepSeconds(job);
    job.boundaryBytes = Bytes(30e6); // 1 ms over HCCS
    EXPECT_GT(cluster::pipelineStepSeconds(job), 1.8 * dry);
}

TEST(Pipeline, CanBeatDataParallelWhenGradientsAreHuge)
{
    // A model with enormous parameters but modest activations (a
    // Wide&Deep-style embedding-dominated model): data parallelism
    // pays full-gradient allreduce, pipeline only ships activations.
    const Bytes grad_bytes = Bytes(4e9);
    const double step_compute = 0.05;

    cluster::ClusterConfig cl;
    cl.servers = 1;
    cluster::TrainingJob dp;
    dp.stepSecondsPerChip = step_compute;
    dp.gradientBytes = grad_bytes;
    dp.samplesPerChipStep = 32;
    dp.overlapFraction = 0.0;
    const double dp_step = cluster::stepSeconds(dp, cl, 8);

    cluster::PipelineJob pp;
    pp.stages = 8;
    pp.microBatches = 32;
    pp.stageSecondsPerMicroBatch = step_compute / 32; // model split 8x,
    // micro-batch 1/32 of the batch: per-slot compute = step/(32) / 8
    // * 8 chips working concurrently ~ step/32 per slot.
    pp.boundaryBytes = Bytes(1e6);
    const double pp_step = cluster::pipelineStepSeconds(pp);
    EXPECT_LT(pp_step, dp_step);
}

} // anonymous namespace
} // namespace ascend
