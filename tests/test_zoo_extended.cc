/**
 * @file
 * Tests for the extended zoo (MaskRCNN, Wide & Deep, LSTM, SLAM),
 * the CvOp layer kind, the optimizer expansion, the Vector-Core
 * lowering and the fp32-cube next-generation mode.
 */

#include <gtest/gtest.h>

#include "compiler/profiler.hh"
#include "model/zoo.hh"
#include "soc/auto_soc.hh"
#include "soc/training_soc.hh"

namespace ascend {
namespace {

using model::Layer;
using model::LayerKind;
using model::OptimizerKind;

TEST(CvOp, FactoryAndCost)
{
    const Layer op = Layer::cvOp("nms", 1000, 14.0);
    EXPECT_EQ(op.kind, LayerKind::CvOp);
    EXPECT_FALSE(op.isCubeLayer());
    EXPECT_EQ(op.flops(), 14000u);
    EXPECT_EQ(op.weightBytes(), 0u);
}

TEST(CvOp, RunsOnVectorPipeWithPassScaling)
{
    compiler::Profiler p(arch::makeCoreConfig(arch::CoreVersion::Std));
    model::Network cheap, costly;
    cheap.add(Layer::cvOp("a", 100000, 2.0));
    costly.add(Layer::cvOp("b", 100000, 20.0));
    const auto rc = p.runInference(cheap);
    const auto rx = p.runInference(costly);
    EXPECT_GT(rx[0].result.pipe(isa::Pipe::Vector).busyCycles,
              5 * rc[0].result.pipe(isa::Pipe::Vector).busyCycles);
}

TEST(ZooExtended, MaskRcnnContainsDetectionStages)
{
    const auto net = model::zoo::maskRcnn(1);
    unsigned cv = 0;
    bool has_fpn = false, has_mask = false;
    for (const Layer &l : net.layers) {
        if (l.kind == LayerKind::CvOp)
            ++cv;
        if (l.name.find("fpn.") == 0)
            has_fpn = true;
        if (l.name.find("mask.") == 0)
            has_mask = true;
    }
    EXPECT_GE(cv, 2u); // NMS + RoiAlign
    EXPECT_TRUE(has_fpn);
    EXPECT_TRUE(has_mask);
    // Heavier than bare ResNet50.
    EXPECT_GT(net.totalFlops(), model::zoo::resnet50(1).totalFlops());
}

TEST(ZooExtended, WideDeepIsSmallAndMemoryFlavoured)
{
    const auto net = model::zoo::wideDeep(256);
    EXPECT_LT(net.totalFlops(), 2e9);
    bool has_gather = false;
    for (const Layer &l : net.layers)
        if (l.kind == LayerKind::CvOp)
            has_gather = true;
    EXPECT_TRUE(has_gather);
}

TEST(ZooExtended, LstmLayerCountScalesWithSeqAndDepth)
{
    const auto a = model::zoo::lstm(1, 8, 256, 512, 1);
    const auto b = model::zoo::lstm(1, 16, 256, 512, 2);
    EXPECT_GT(b.size(), 3 * a.size());
    // 3 layers per timestep per layer + final projection.
    EXPECT_EQ(a.size(), 8u * 3 + 1);
}

TEST(ZooExtended, SlamIsVectorOnlyExceptQuaternionGemm)
{
    const auto net = model::zoo::slamFrontend(2048);
    unsigned cube_layers = 0;
    for (const Layer &l : net.layers)
        if (l.isCubeLayer())
            ++cube_layers;
    EXPECT_EQ(cube_layers, 1u); // the 4x4x4 pose jacobians
}

TEST(ZooExtended, AllNewNetworksRunOnTheStdCore)
{
    compiler::Profiler p(arch::makeCoreConfig(arch::CoreVersion::Std));
    for (const auto &net :
         {model::zoo::maskRcnn(1), model::zoo::wideDeep(64),
          model::zoo::lstm(4, 4), model::zoo::slamFrontend(512)}) {
        const auto runs = p.runInference(net);
        EXPECT_EQ(runs.size(), net.size()) << net.name;
        for (const auto &r : runs)
            EXPECT_GT(r.result.totalCycles, 0u)
                << net.name << ":" << r.layer.name;
    }
}

TEST(Optimizer, StateTensorsPerKind)
{
    EXPECT_EQ(model::optimizerStateTensors(OptimizerKind::Sgd), 0u);
    EXPECT_EQ(model::optimizerStateTensors(OptimizerKind::Momentum), 1u);
    EXPECT_EQ(model::optimizerStateTensors(OptimizerKind::Adam), 2u);
}

TEST(Optimizer, AdamUpdateCostsMoreVectorWork)
{
    const Layer fc = Layer::linear("fc", 64, 512, 512);
    const auto sgd = model::backwardLayers(fc, OptimizerKind::Sgd);
    const auto adam = model::backwardLayers(fc, OptimizerKind::Adam);
    ASSERT_EQ(sgd.size(), adam.size());
    EXPECT_GT(adam.back().flops(), 3 * sgd.back().flops());
}

TEST(Optimizer, AdamTrainingStepIsSlowerOnTheSoc)
{
    soc::TrainingSoc soc;
    const auto net = model::zoo::mobilenetV2(1);
    const auto sgd = soc.trainStep(net, OptimizerKind::Sgd);
    const auto adam = soc.trainStep(net, OptimizerKind::Adam);
    EXPECT_GT(adam.seconds, sgd.seconds);
    EXPECT_GT(adam.llcTrafficBytes, sgd.llcTrafficBytes);
}

TEST(VectorCore, GemmLowersToVectorPasses)
{
    auto cfg = arch::makeCoreConfig(arch::CoreVersion::Std);
    compiler::CompileOptions options;
    options.mapGemmToVector = true;
    compiler::LayerCompiler lc(cfg, options);
    core::CoreSim sim(cfg);
    const auto r =
        sim.run(lc.compile(Layer::batchedMatmul("q", 100, 4, 4, 4)));
    EXPECT_EQ(r.pipe(isa::Pipe::Cube).busyCycles, 0u);
    EXPECT_GT(r.pipe(isa::Pipe::Vector).busyCycles, 0u);
}

TEST(VectorCore, SlamFrontendMeetsFrameBudget)
{
    soc::AutoSoc soc;
    const double ms =
        soc.slamLatencySeconds(model::zoo::slamFrontend(2048)) * 1e3;
    // The localization loop must close well within a 100 ms budget.
    EXPECT_LT(ms, 100.0);
    EXPECT_GT(ms, 0.01);
}

TEST(NextGen, Fp32CubeHalvesReduction)
{
    const auto next = arch::makeNextGenCoreConfig();
    const auto shape = next.cubeShapeFor(DataType::Fp32);
    EXPECT_EQ(shape.k0, 8u);
    EXPECT_EQ(shape.m0, 16u);
    // Half the fp16 throughput.
    EXPECT_EQ(shape.flopsPerCycle(),
              next.cubeShapeFor(DataType::Fp16).flopsPerCycle() / 2);
}

TEST(NextGenDeath, Fp32CubeIsFatalOnShippingCores)
{
    const auto max = arch::makeCoreConfig(arch::CoreVersion::Max);
    EXPECT_EXIT(max.cubeShapeFor(DataType::Fp32),
                testing::ExitedWithCode(1), "next-generation");
}

TEST(NextGen, Fp32GemmRunsEndToEnd)
{
    const auto cfg = arch::makeNextGenCoreConfig();
    compiler::LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    const auto l =
        Layer::linear("hpc", 256, 256, 256, DataType::Fp32);
    const auto r = sim.run(lc.compile(l));
    EXPECT_EQ(r.totalFlops, l.flops());
}

} // anonymous namespace
} // namespace ascend
