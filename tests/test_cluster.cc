/**
 * @file
 * Tests for the server/cluster collective models and the
 * data-parallel training throughput estimator.
 */

#include <gtest/gtest.h>

#include "cluster/collective.hh"

namespace ascend {
namespace cluster {
namespace {

TEST(RingAllreduce, SingleEndpointIsFree)
{
    EXPECT_DOUBLE_EQ(ringAllreduceSeconds(1 << 20, 1, 1e9, 1e-6), 0.0);
}

TEST(RingAllreduce, MatchesClosedForm)
{
    // n=4, 1 GB/s, no latency: volume = 2*3/4 * bytes.
    const Bytes bytes = 1000000;
    EXPECT_NEAR(ringAllreduceSeconds(bytes, 4, 1e9, 0),
                1.5 * bytes / 1e9, 1e-12);
    // Latency term: 2(n-1) hops.
    EXPECT_NEAR(ringAllreduceSeconds(0, 4, 1e9, 1e-6), 6e-6, 1e-12);
}

TEST(RingAllreduce, MonotonicInBytesAndInverseBandwidth)
{
    EXPECT_LT(ringAllreduceSeconds(1 << 20, 8, 1e10, 1e-6),
              ringAllreduceSeconds(1 << 21, 8, 1e10, 1e-6));
    EXPECT_LT(ringAllreduceSeconds(1 << 20, 8, 1e10, 1e-6),
              ringAllreduceSeconds(1 << 20, 8, 1e9, 1e-6));
}

TEST(ServerAllreduce, HierarchyAddsPciePhase)
{
    ServerConfig srv; // 2 groups of 4
    const Bytes bytes = 51 * 1000 * 1000;
    const double full = serverAllreduceSeconds(srv, bytes);
    ServerConfig one_group = srv;
    one_group.chips = 4;
    one_group.chipsPerGroup = 4;
    const double group_only = serverAllreduceSeconds(one_group, bytes);
    EXPECT_GT(full, group_only);
}

TEST(ClusterAllreduce, GrowsWithServerCount)
{
    ClusterConfig cl;
    const Bytes bytes = 51 * 1000 * 1000;
    cl.servers = 1;
    const double one = hierarchicalAllreduceSeconds(cl, bytes);
    cl.servers = 256;
    const double many = hierarchicalAllreduceSeconds(cl, bytes);
    EXPECT_GT(many, one);
    // But sub-linearly: ring volume converges to 2x shard size.
    EXPECT_LT(many, 20 * one);
}

TrainingJob
sampleJob()
{
    TrainingJob job;
    job.stepSecondsPerChip = 0.1;
    job.gradientBytes = 51 * 1000 * 1000;
    job.samplesPerChipStep = 256;
    job.overlapFraction = 0.5;
    return job;
}

TEST(TrainingJob, SingleChipHasNoCommunication)
{
    const ClusterConfig cl;
    EXPECT_DOUBLE_EQ(stepSeconds(sampleJob(), cl, 1), 0.1);
    EXPECT_DOUBLE_EQ(scalingEfficiency(sampleJob(), cl, 1), 1.0);
}

TEST(TrainingJob, ThroughputGrowsWithChips)
{
    const ClusterConfig cl;
    const auto job = sampleJob();
    double prev = 0;
    for (unsigned chips : {1u, 2u, 8u, 64u, 2048u}) {
        const double thr = throughputSamplesPerSec(job, cl, chips);
        EXPECT_GT(thr, prev);
        prev = thr;
    }
}

TEST(TrainingJob, EfficiencyDecaysButStaysReasonable)
{
    const ClusterConfig cl;
    const auto job = sampleJob();
    double prev = 1.0;
    for (unsigned chips : {2u, 8u, 256u, 2048u}) {
        const double eff = scalingEfficiency(job, cl, chips);
        EXPECT_LE(eff, prev + 1e-9);
        EXPECT_GT(eff, 0.5); // hierarchical allreduce keeps it high
        prev = eff;
    }
}

TEST(TrainingJob, OverlapHidesCommunication)
{
    const ClusterConfig cl;
    auto job = sampleJob();
    job.overlapFraction = 0.0;
    const double exposed = stepSeconds(job, cl, 8);
    job.overlapFraction = 1.0;
    const double hidden = stepSeconds(job, cl, 8);
    EXPECT_GT(exposed, hidden);
    EXPECT_DOUBLE_EQ(hidden, job.stepSecondsPerChip);
}

TEST(TrainingJob, BiggerGradientsCostMore)
{
    const ClusterConfig cl;
    auto job = sampleJob();
    const double small = stepSeconds(job, cl, 64);
    job.gradientBytes *= 10;
    EXPECT_GT(stepSeconds(job, cl, 64), small);
}

TEST(ClusterConfig, TotalChips)
{
    ClusterConfig cl;
    EXPECT_EQ(cl.totalChips(), 2048u);
}

TEST(TrainingJobDeath, ZeroChipsRejected)
{
    const ClusterConfig cl;
    EXPECT_DEATH(stepSeconds(sampleJob(), cl, 0), "at least one chip");
}

/** Chips within one server use HCCS; beyond use the fat-tree. */
class ChipCounts : public testing::TestWithParam<unsigned>
{
};

TEST_P(ChipCounts, StepTimeIsFiniteAndOrdered)
{
    const ClusterConfig cl;
    const auto job = sampleJob();
    const double s = stepSeconds(job, cl, GetParam());
    EXPECT_GE(s, job.stepSecondsPerChip);
    EXPECT_LT(s, job.stepSecondsPerChip + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChipCounts,
                         testing::Values(1u, 2u, 3u, 4u, 8u, 16u, 256u,
                                         2048u));

} // anonymous namespace
} // namespace cluster
} // namespace ascend
