/**
 * @file
 * Paper-table conformance suite: re-derives Tables 3, 5, 6, 7, 8 and
 * 9 of the paper through the same library calls the bench binaries
 * use, and asserts every cell against the tolerance-annotated golden
 * in tests/golden/paper_tables.txt.
 *
 * Golden format, one cell per line:
 *     <cell-name> <expected-value> <relative-tolerance>
 * Config-derived cells carry a near-exact tolerance (1e-9); modelled
 * and simulated cells carry 2% so deliberate recalibration does not
 * need a golden churn for every ULP. Failures print a per-cell delta,
 * never a blob diff.
 *
 * Regenerate after an intentional model change with:
 *     ASCEND_UPDATE_GOLDEN=1 ./build/tests/test_paper_conformance
 * and review the resulting diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "arch/unit_model.hh"
#include "baseline/cpu.hh"
#include "baseline/simt.hh"
#include "baseline/systolic.hh"
#include "cluster/collective.hh"
#include "common/golden.hh"
#include "model/zoo.hh"
#include "soc/auto_soc.hh"
#include "soc/mobile_soc.hh"
#include "soc/training_soc.hh"

namespace ascend {
namespace {

/** Near-exact: the cell is pure configuration arithmetic. */
constexpr double kTolConfig = 1e-9;
/** Modelled/simulated: allow small deliberate recalibrations. */
constexpr double kTolModel = 0.02;

struct Cell
{
    std::string name;
    double value = 0;
    double relTol = kTolModel;
};

std::string
goldenPath()
{
    return std::string(ASCEND_GOLDEN_DIR) + "/paper_tables.txt";
}

// ------------------------------------------------- derivations

/** Table 3: PPA of the scalar/vector/cube units at 7 nm. */
void
deriveTable3(std::vector<Cell> &cells)
{
    using arch::TechNode;
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    const auto scalar = arch::modelScalar(cfg.clockGhz, TechNode::N7);
    const auto vec = arch::modelVector(cfg.vectorWidthBytes,
                                       cfg.clockGhz, TechNode::N7);
    const auto cube =
        arch::modelCube(cfg.cube, cfg.clockGhz, TechNode::N7);
    cells.push_back({"t3.scalar_gflops", scalar.peakFlops / 1e9});
    cells.push_back({"t3.vector_gflops", vec.peakFlops / 1e9});
    cells.push_back({"t3.cube_gflops", cube.peakFlops / 1e9});
    cells.push_back({"t3.vector_power_w", vec.powerW});
    cells.push_back({"t3.cube_power_w", cube.powerW});
    cells.push_back({"t3.scalar_area_mm2", scalar.areaMm2});
    cells.push_back({"t3.vector_area_mm2", vec.areaMm2});
    cells.push_back({"t3.cube_area_mm2", cube.areaMm2});
    cells.push_back(
        {"t3.vector_tflops_per_w", vec.perfPerWatt() / 1e12});
    cells.push_back({"t3.cube_tflops_per_w", cube.perfPerWatt() / 1e12});
    cells.push_back(
        {"t3.vector_tflops_per_mm2", vec.perfPerArea() / 1e12});
    cells.push_back(
        {"t3.cube_tflops_per_mm2", cube.perfPerArea() / 1e12});
    cells.push_back({"t3.cube_vs_vector_perf_per_area",
                     cube.perfPerArea() / vec.perfPerArea()});
    cells.push_back({"t3.cube_vs_vector_perf_per_watt",
                     cube.perfPerWatt() / vec.perfPerWatt()});
}

/** Table 5: key architecture parameters per core version. */
void
deriveTable5(std::vector<Cell> &cells)
{
    const struct
    {
        arch::CoreVersion version;
        const char *key;
    } versions[] = {
        {arch::CoreVersion::Max, "max"},
        {arch::CoreVersion::Std, "std"},
        {arch::CoreVersion::Mini, "mini"},
        {arch::CoreVersion::Lite, "lite"},
        {arch::CoreVersion::Tiny, "tiny"},
    };
    for (const auto &v : versions) {
        const auto c = arch::makeCoreConfig(v.version);
        const std::string p = std::string("t5.") + v.key + ".";
        auto gbps = [&](Bytes per_cycle) {
            return double(per_cycle) * c.clockGhz;
        };
        cells.push_back({p + "clock_ghz", c.clockGhz, kTolConfig});
        cells.push_back({p + "cube_flops_per_cycle",
                         double(c.cube.flopsPerCycle()), kTolConfig});
        cells.push_back({p + "vector_bytes",
                         double(c.vectorWidthBytes), kTolConfig});
        cells.push_back(
            {p + "busa_gbps", gbps(c.busABytesPerCycle), kTolConfig});
        cells.push_back(
            {p + "busb_gbps", gbps(c.busBBytesPerCycle), kTolConfig});
        cells.push_back(
            {p + "busub_gbps", gbps(c.busUbBytesPerCycle), kTolConfig});
        cells.push_back(
            {p + "llc_gbps", gbps(c.busExtBytesPerCycle), kTolConfig});
    }
}

/** Table 6: memory/I/O wall bandwidth hierarchy of the 910. */
void
deriveTable6(std::vector<Cell> &cells)
{
    soc::TrainingSoc soc910;
    const auto &core = soc910.coreConfig();
    const auto &cfg = soc910.config();
    const double ghz = core.clockGhz * 1e9;
    const double cube_demand = soc910.peakFlopsFp16() * 8.0;
    const double l1 = double(core.busABytesPerCycle +
                             core.busBBytesPerCycle +
                             core.busUbBytesPerCycle) *
                      ghz * cfg.aiCores;
    cluster::ClusterConfig cl;
    cells.push_back({"t6.cube_demand_bps", cube_demand, kTolConfig});
    cells.push_back({"t6.l1_bps", l1, kTolConfig});
    cells.push_back({"t6.llc_bps", cfg.llcBandwidth, kTolConfig});
    cells.push_back(
        {"t6.hbm_bps", cfg.hbm.bandwidthBytesPerSec, kTolConfig});
    cells.push_back({"t6.intra_server_bps",
                     cl.server.hccsBytesPerSec +
                         cl.server.pcieBytesPerSec,
                     kTolConfig});
    cells.push_back({"t6.inter_server_bps", cl.netBytesPerSec,
                     kTolConfig});
    cells.push_back(
        {"t6.cube_to_hbm_ratio",
         cube_demand / cfg.hbm.bandwidthBytesPerSec, kTolConfig});
}

/** Table 7: training throughput, Ascend 910 vs V100/TPU/CPU models. */
void
deriveTable7(std::vector<Cell> &cells)
{
    soc::TrainingSoc soc910;
    const unsigned resnet_batch_per_core = 8;
    const unsigned resnet_batch =
        resnet_batch_per_core * soc910.config().aiCores;
    const auto resnet_core =
        model::zoo::resnet50(resnet_batch_per_core);
    const auto resnet_step = soc910.trainStep(resnet_core);
    const double ascend_resnet = resnet_batch / resnet_step.seconds;

    const auto resnet_full = model::zoo::resnet50(resnet_batch);
    baseline::GpuModel v100(baseline::v100Like());
    const double v100_imgs =
        resnet_batch / v100.runTraining(resnet_full).seconds;
    baseline::SystolicArray tpu(baseline::tpuV3Like());
    const double tpu_imgs =
        resnet_batch /
        tpu.runTraining(resnet_full).seconds(tpu.config().clockGhz);
    baseline::CpuModel cpu{baseline::CpuConfig{}};
    const double cpu_imgs =
        resnet_batch / cpu.trainingStepSeconds(resnet_full);

    const unsigned bert_batch_per_core = 2;
    const auto bert_core =
        model::zoo::bertLarge(bert_batch_per_core, 128);
    const auto bert_step = soc910.trainStep(bert_core);
    const unsigned bert_batch_chip =
        bert_batch_per_core * soc910.config().aiCores;
    cluster::ClusterConfig one_server;
    one_server.servers = 1;
    cluster::TrainingJob bert_job;
    bert_job.stepSecondsPerChip = bert_step.seconds;
    bert_job.gradientBytes = bert_core.parameterBytes();
    bert_job.samplesPerChipStep = bert_batch_chip;
    const double ascend_bert_8p =
        cluster::throughputSamplesPerSec(bert_job, one_server, 8);

    const auto bert_full = model::zoo::bertLarge(bert_batch_chip, 128);
    cluster::ClusterConfig dgx = one_server;
    dgx.server.hccsBytesPerSec = 45e9;
    cluster::TrainingJob v100_job;
    v100_job.stepSecondsPerChip = v100.runTraining(bert_full).seconds;
    v100_job.gradientBytes = bert_full.parameterBytes();
    v100_job.samplesPerChipStep = bert_batch_chip;
    const double v100_bert_8p =
        cluster::throughputSamplesPerSec(v100_job, dgx, 8);

    cells.push_back({"t7.ascend_peak_tflops_fp16",
                     soc910.peakFlopsFp16() / 1e12, kTolConfig});
    cells.push_back({"t7.ascend_resnet50_imgs_per_sec", ascend_resnet});
    cells.push_back({"t7.v100_resnet50_imgs_per_sec", v100_imgs});
    cells.push_back({"t7.tpu_resnet50_imgs_per_sec", tpu_imgs});
    cells.push_back({"t7.cpu_resnet50_imgs_per_sec", cpu_imgs});
    cells.push_back({"t7.ascend_bert_8p_seq_per_sec", ascend_bert_8p});
    cells.push_back({"t7.v100_bert_8p_seq_per_sec", v100_bert_8p});
    cells.push_back({"t7.ascend_vs_v100_resnet_speedup",
                     ascend_resnet / v100_imgs});
    cells.push_back(
        {"t7.ascend_vs_tpu_resnet_speedup", ascend_resnet / tpu_imgs});
    cells.push_back({"t7.ascend_vs_v100_bert_speedup",
                     ascend_bert_8p / v100_bert_8p});
}

/** Table 8: mobile NPU (Kirin 990 5G) PPA and MobileNetV2 latency. */
void
deriveTable8(std::vector<Cell> &cells)
{
    soc::MobileSoc kirin;
    cells.push_back(
        {"t8.peak_tops_int8", kirin.peakOpsInt8() / 1e12, kTolConfig});
    cells.push_back({"t8.tops_per_watt", kirin.powerEfficiency()});
    cells.push_back({"t8.npu_area_mm2", kirin.npuAreaMm2()});
    cells.push_back(
        {"t8.mobilenetv2_ms",
         kirin.liteLatencySeconds(model::zoo::mobilenetV2(1)) * 1e3});
    cells.push_back(
        {"t8.gesture_ms",
         kirin.tinyLatencySeconds(model::zoo::gestureNet(1)) * 1e3});
}

/** Table 9: automotive SoC PPA plus the systolic-bubble claim. */
void
deriveTable9(std::vector<Cell> &cells)
{
    soc::AutoSoc soc610;
    cells.push_back({"t9.peak_tops_int8",
                     soc610.peakOpsInt8() / 1e12, kTolConfig});
    cells.push_back({"t9.peak_tops_int4",
                     soc610.peakOpsInt4() / 1e12, kTolConfig});
    cells.push_back(
        {"t9.tdp_watts", soc610.config().tdpWatts, kTolConfig});
    cells.push_back(
        {"t9.die_mm2", soc610.config().dieMm2, kTolConfig});

    // Section 6.3 claim: batch-1 utilization, FSD-like systolic vs
    // the Ascend cube (610 core), on ResNet50 and MobileNetV2 int8.
    baseline::SystolicArray fsd(baseline::fsdLike());
    runtime::SimSession session(soc610.coreConfig());
    auto cube_util = [&](const model::Network &net) {
        Flops flops = 0;
        Cycles busy = 0;
        for (const auto &run : session.runInference(net)) {
            flops += run.result.totalFlops;
            busy += run.result.pipe(isa::Pipe::Cube).busyCycles;
        }
        const auto shape =
            soc610.coreConfig().cubeShapeFor(DataType::Int8);
        return busy ? 100.0 * double(flops) /
                          (double(busy) * shape.flopsPerCycle())
                    : 0.0;
    };
    const auto resnet = model::zoo::resnet50(1, DataType::Int8);
    const auto mobilenet = model::zoo::mobilenetV2(1, DataType::Int8);
    cells.push_back({"t9.fsd_util_resnet50_pct",
                     100 * fsd.runInference(resnet).utilization});
    cells.push_back({"t9.fsd_util_mobilenetv2_pct",
                     100 * fsd.runInference(mobilenet).utilization});
    cells.push_back(
        {"t9.cube_util_resnet50_pct", cube_util(resnet)});
    cells.push_back(
        {"t9.cube_util_mobilenetv2_pct", cube_util(mobilenet)});
}

std::vector<Cell>
deriveAllCells()
{
    std::vector<Cell> cells;
    deriveTable3(cells);
    deriveTable5(cells);
    deriveTable6(cells);
    deriveTable7(cells);
    deriveTable8(cells);
    deriveTable9(cells);
    return cells;
}

// ------------------------------------------------- golden I/O

std::string
formatCell(const Cell &c)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s %.12g %g", c.name.c_str(),
                  c.value, c.relTol);
    return buf;
}

struct GoldenCell
{
    double expected = 0;
    double relTol = 0;
};

bool
parseGolden(const std::string &text,
            std::map<std::string, GoldenCell> &out)
{
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string name;
        GoldenCell cell;
        if (!(ls >> name >> cell.expected >> cell.relTol))
            return false;
        out[name] = cell;
    }
    return true;
}

TEST(PaperConformance, TablesMatchGolden)
{
    const std::vector<Cell> cells = deriveAllCells();

    if (const char *env = std::getenv("ASCEND_UPDATE_GOLDEN");
        env && *env && std::string(env) != "0") {
        std::string text =
            "# Paper-table conformance golden (Tables 3, 5, 6, 7, 8, "
            "9).\n"
            "# Format: <cell> <expected> <relative-tolerance>\n"
            "# Regenerate: ASCEND_UPDATE_GOLDEN=1 "
            "./build/tests/test_paper_conformance\n";
        for (const Cell &c : cells)
            text += formatCell(c) + "\n";
        ASSERT_TRUE(writeFileText(goldenPath(), text))
            << "cannot write " << goldenPath();
        GTEST_SKIP() << "golden regenerated at " << goldenPath()
                     << " (" << cells.size() << " cells)";
    }

    std::string text;
    ASSERT_TRUE(readFileText(goldenPath(), text))
        << "missing golden " << goldenPath()
        << "; regenerate with ASCEND_UPDATE_GOLDEN=1";
    std::map<std::string, GoldenCell> golden;
    ASSERT_TRUE(parseGolden(text, golden))
        << "malformed golden " << goldenPath();

    // Per-cell comparison with a printed delta for every cell.
    std::set<std::string> seen;
    for (const Cell &c : cells) {
        seen.insert(c.name);
        const auto it = golden.find(c.name);
        if (it == golden.end()) {
            ADD_FAILURE() << "cell " << c.name
                          << " missing from golden; regenerate with "
                             "ASCEND_UPDATE_GOLDEN=1";
            continue;
        }
        const GoldenCell &g = it->second;
        const double denom =
            std::max(std::abs(g.expected), 1e-300);
        const double delta = (c.value - g.expected) / denom;
        std::printf("  %-38s expected %14.6g  actual %14.6g  "
                    "delta %+.3e (tol %g)\n",
                    c.name.c_str(), g.expected, c.value, delta,
                    g.relTol);
        EXPECT_LE(std::abs(delta), g.relTol)
            << c.name << ": expected " << g.expected << " got "
            << c.value;
    }
    for (const auto &kv : golden) {
        EXPECT_TRUE(seen.count(kv.first))
            << "golden cell " << kv.first
            << " is no longer derived; regenerate the golden";
    }
    EXPECT_EQ(cells.size(), golden.size());
}

} // anonymous namespace
} // namespace ascend
