/**
 * @file
 * Graph-IR tests: differential equivalence against the legacy linear
 * path for every zoo network, the negative validation paths (cycles,
 * dangling edges, shape mismatches throw structured Error), cache-key
 * namespacing, lowering counters and the tracer track.
 */

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "graph/lower.hh"
#include "graph/zoo_graphs.hh"
#include "model/zoo.hh"
#include "obs/tracer.hh"
#include "runtime/perf_stats.hh"
#include "runtime/sim_session.hh"
#include "soc/training_soc.hh"

using namespace ascend;

namespace {

/** Expect fn() to throw Error with @p code, message containing @p hint. */
template <typename Fn>
void
expectError(Fn &&fn, ErrorCode code, const std::string &hint)
{
    try {
        fn();
        FAIL() << "expected ascend::Error [" << toString(code) << "]";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), code) << e.what();
        EXPECT_NE(std::string(e.what()).find(hint), std::string::npos)
            << "message '" << e.what() << "' lacks '" << hint << "'";
    }
}

runtime::SimSession
makeSession()
{
    return runtime::SimSession(
        soc::TrainingSoc().coreConfig(), {},
        std::make_shared<runtime::SimCache>());
}

/** A small valid diamond: input -> split -> (a, b) -> add. */
graph::Graph
diamond()
{
    graph::Graph g;
    g.name = "diamond";
    const graph::TensorId in = g.addInput("x", 4096, DataType::Fp16);
    const auto parts = g.addSplit("fork", in, 2);
    const graph::TensorId a = g.addLayer(
        model::Layer::activation("a", 2048, model::ActKind::Relu,
                                 DataType::Fp16),
        {parts[0]});
    const graph::TensorId b = g.addLayer(
        model::Layer::activation("b", 2048, model::ActKind::Gelu,
                                 DataType::Fp16),
        {parts[1]});
    g.markOutput(g.addResidualAdd("join", a, b));
    return g;
}

// ----------------------------------------------- differential zoo

/**
 * The heart of the PR: lowering the graph expression of a zoo network
 * must reproduce the legacy builder's layer list exactly — same
 * count, same order, same names, same shape fingerprints — and
 * therefore byte-identical cycles through the same session.
 */
void
expectLowersIdentically(const model::Network &legacy,
                        const graph::Graph &g)
{
    const model::Network lowered = graph::toNetwork(g);
    ASSERT_EQ(lowered.layers.size(), legacy.layers.size()) << g.name;
    for (std::size_t i = 0; i < legacy.layers.size(); ++i) {
        EXPECT_EQ(lowered.layers[i].name, legacy.layers[i].name)
            << g.name << " layer " << i;
        EXPECT_EQ(runtime::fingerprint(lowered.layers[i]),
                  runtime::fingerprint(legacy.layers[i]))
            << g.name << " layer " << i << " ("
            << legacy.layers[i].name << ")";
    }

    const runtime::SimSession session = makeSession();
    const core::SimResult linear = session.inferenceResult(legacy);
    const core::SimResult viaGraph = graph::graphResult(session, g);
    EXPECT_EQ(viaGraph.totalCycles, linear.totalCycles) << g.name;
    EXPECT_EQ(viaGraph.totalFlops, linear.totalFlops) << g.name;
    EXPECT_EQ(viaGraph.instrsExecuted, linear.instrsExecuted)
        << g.name;
    EXPECT_EQ(viaGraph.barriers, linear.barriers) << g.name;
    for (std::size_t p = 0; p < isa::kNumPipes; ++p)
        EXPECT_EQ(viaGraph.pipes[p].busyCycles,
                  linear.pipes[p].busyCycles)
            << g.name << " pipe " << p;
}

TEST(GraphZooDifferential, ResNet50)
{
    expectLowersIdentically(model::zoo::resnet50(1),
                            graph::zoo::resnet50Graph(1));
}

TEST(GraphZooDifferential, MobileNetV2)
{
    expectLowersIdentically(model::zoo::mobilenetV2(1),
                            graph::zoo::mobilenetV2Graph(1));
}

TEST(GraphZooDifferential, BertBase)
{
    expectLowersIdentically(model::zoo::bertBase(1, 128),
                            graph::zoo::bertBaseGraph(1, 128));
}

TEST(GraphZooDifferential, Vgg16)
{
    expectLowersIdentically(model::zoo::vgg16(1),
                            graph::zoo::vgg16Graph(1));
}

TEST(GraphZooDifferential, GestureNet)
{
    expectLowersIdentically(model::zoo::gestureNet(1),
                            graph::zoo::gestureNetGraph(1));
}

TEST(GraphZooDifferential, BertLargeLayerList)
{
    // Layer-list identity only: the full BERT-Large sim is bench
    // territory, but the lowering must still agree.
    const model::Network legacy = model::zoo::bertLarge(1, 64);
    const model::Network lowered =
        graph::toNetwork(graph::zoo::bertLargeGraph(1, 64));
    ASSERT_EQ(lowered.layers.size(), legacy.layers.size());
    for (std::size_t i = 0; i < legacy.layers.size(); ++i)
        EXPECT_EQ(runtime::fingerprint(lowered.layers[i]),
                  runtime::fingerprint(legacy.layers[i]));
}

// ------------------------------------------------- structure

TEST(GraphIr, BuildersWireBackReferences)
{
    const graph::Graph g = diamond();
    EXPECT_NO_THROW(g.validate());
    EXPECT_EQ(g.nodes.size(), 4u);
    EXPECT_EQ(g.tensors.size(), 6u);
    // split parts name their producer and slots.
    EXPECT_EQ(g.tensors[1].producer, 0);
    EXPECT_EQ(g.tensors[2].producer, 0);
    EXPECT_EQ(g.tensors[2].producerSlot, 1u);
}

TEST(GraphIr, TopoOrderIsInsertionOrderForBuilderGraphs)
{
    const graph::Graph g = graph::zoo::resnet50Graph(1);
    const std::vector<std::size_t> order = g.topoOrder();
    ASSERT_EQ(order.size(), g.nodes.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(GraphIr, StructuralNodesLowerToNothing)
{
    runtime::resetGraphTotals();
    const std::vector<graph::Step> steps = graph::lower(diamond());
    // split is elided; relu, gelu and the residual add survive.
    ASSERT_EQ(steps.size(), 3u);
    EXPECT_EQ(steps[0].layer.name, "a");
    EXPECT_EQ(steps[1].layer.name, "b");
    EXPECT_EQ(steps[2].layer.name, "join");
    EXPECT_EQ(steps[2].layer.kind, model::LayerKind::Elementwise);

    const runtime::GraphCounters t = runtime::graphTotals();
    EXPECT_EQ(t.graphsLowered, 1u);
    EXPECT_EQ(t.nodesLowered, 4u);
    EXPECT_EQ(t.layersLowered, 3u);
    EXPECT_EQ(t.structuralElided, 1u);
}

TEST(GraphIr, ResidualAddMatchesLegacyElementwiseShape)
{
    graph::Graph g;
    const graph::TensorId a = g.addInput("a", 1000, DataType::Fp32);
    const graph::TensorId b = g.addInput("b", 1000, DataType::Fp32);
    g.markOutput(g.addResidualAdd("sum", a, b));
    const std::vector<graph::Step> steps = graph::lower(g);
    ASSERT_EQ(steps.size(), 1u);
    const model::Layer want =
        model::Layer::elementwise("sum", 1000, DataType::Fp32);
    EXPECT_EQ(runtime::fingerprint(steps[0].layer),
              runtime::fingerprint(want));
}

// ---------------------------------------------- negative paths

TEST(GraphNegative, CycleThrowsGraphInvalid)
{
    graph::Graph g = diamond();
    // Rewire the fork's input to the join's output: a real cycle.
    g.nodes[0].inputs[0] = g.nodes[3].outputs[0];
    expectError([&] { g.validate(); }, ErrorCode::GraphInvalid,
                "cycle");
    expectError([&] { (void)g.topoOrder(); },
                ErrorCode::GraphInvalid, "cycle");
}

TEST(GraphNegative, DanglingEdgeThrowsGraphInvalid)
{
    graph::Graph g = diamond();
    g.nodes[1].inputs[0] = 999;
    expectError([&] { g.validate(); }, ErrorCode::GraphInvalid,
                "dangling");
}

TEST(GraphNegative, InconsistentBackReferenceThrows)
{
    graph::Graph g = diamond();
    g.tensors[g.nodes[1].outputs[0]].producer = 0;
    expectError([&] { g.validate(); }, ErrorCode::GraphInvalid,
                "producer");
}

TEST(GraphNegative, ShapeMismatchThrows)
{
    graph::Graph g = diamond();
    g.tensors[g.nodes[1].outputs[0]].elems = 7; // break relu output
    expectError([&] { g.validate(); }, ErrorCode::GraphShapeMismatch,
                "output");
}

TEST(GraphNegative, BuildersFailFast)
{
    graph::Graph g;
    const graph::TensorId a = g.addInput("a", 100, DataType::Fp16);
    const graph::TensorId b = g.addInput("b", 101, DataType::Fp16);
    expectError([&] { g.addResidualAdd("bad", a, b); },
                ErrorCode::GraphShapeMismatch, "residual");
    expectError([&] { graph::Graph h; h.addInput("z", 0,
                                                 DataType::Fp16); },
                ErrorCode::GraphShapeMismatch, "zero");
    expectError([&] { graph::Graph h;
                      const auto t = h.addInput("x", 10,
                                                DataType::Fp16);
                      h.addSplit("s", t, 3); },
                ErrorCode::GraphShapeMismatch, "divide");
    expectError(
        [&] {
            graph::Graph h;
            const auto t = h.addInput("x", 64, DataType::Fp16);
            // elementwise layers take no second operand.
            h.addLayer(model::Layer::elementwise("e", 64,
                                                 DataType::Fp16),
                       {t, t});
        },
        ErrorCode::GraphShapeMismatch, "second operand");
}

TEST(GraphNegative, EmptyGraphIsInvalid)
{
    graph::Graph g;
    g.name = "empty";
    expectError([&] { graph::lower(g); }, ErrorCode::GraphInvalid,
                "empty");
}

// ------------------------------------------------ cache keys

TEST(GraphCacheKeys, NeverAliasLayerFingerprints)
{
    const graph::Graph g = graph::zoo::gestureNetGraph(1);
    const runtime::SimSession session = makeSession();
    const std::string key = graph::graphCacheKey(session, g);
    EXPECT_EQ(key.find("agr:"), key.size() - 4 - 16);

    model::Layer out;
    EXPECT_FALSE(runtime::parseLayerFingerprint(key, out));
    EXPECT_FALSE(runtime::parseLayerFingerprint(g.fingerprint(), out));
}

TEST(GraphCacheKeys, FingerprintIgnoresNamesButNotShapes)
{
    graph::Graph a = diamond();
    graph::Graph b = diamond();
    b.name = "other";
    for (auto &t : b.tensors)
        t.name += "_renamed";
    EXPECT_EQ(a.fingerprint(), b.fingerprint());

    graph::Graph c = diamond();
    c.tensors[0].elems *= 2;
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(GraphCacheKeys, GraphResultIsMemoized)
{
    const graph::Graph g = graph::zoo::gestureNetGraph(2);
    const runtime::SimSession session = makeSession();
    const core::SimResult first = graph::graphResult(session, g);

    runtime::resetGraphTotals();
    const core::SimResult again = graph::graphResult(session, g);
    EXPECT_EQ(again.totalCycles, first.totalCycles);
    EXPECT_EQ(runtime::graphTotals().graphCacheHits, 1u);
    EXPECT_EQ(runtime::graphTotals().graphsLowered, 0u);
}

// --------------------------------------------------- tracer

TEST(GraphTracer, EmitsGraphDomainSpans)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.stop();
    tracer.start("");

    const runtime::SimSession session = makeSession();
    graph::runGraph(session, diamond());

    const std::string json = tracer.json();
    tracer.stop();
    EXPECT_NE(json.find("graph lowering (cycles)"), std::string::npos);
    EXPECT_NE(json.find("residual-add"), std::string::npos)
        << "expected per-step spans on the graph track";
}

} // namespace
