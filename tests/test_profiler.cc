/**
 * @file
 * Tests for the network profiler: fusion grouping, ratio definitions,
 * training aggregation, and result accumulation.
 */

#include <gtest/gtest.h>

#include "compiler/profiler.hh"
#include "model/zoo.hh"

namespace ascend {
namespace {

using compiler::GroupProfile;
using compiler::LayerRun;
using compiler::Profiler;
using model::Layer;

model::Network
tinyNet()
{
    model::Network net;
    net.name = "tiny";
    net.add(Layer::conv2d("conv_a", 1, 8, 16, 16, 8, 3, 1, 1));
    net.add(Layer::batchNorm("bn_a", 8 * 16 * 16));
    net.add(Layer::activation("relu_a", 8 * 16 * 16,
                              model::ActKind::Relu));
    net.add(Layer::linear("fc", 1, 8 * 16 * 16, 10));
    net.add(Layer::softmax("sm", 1, 10));
    return net;
}

TEST(Profiler, RunsEveryLayer)
{
    Profiler p(arch::makeCoreConfig(arch::CoreVersion::Max));
    const auto runs = p.runInference(tinyNet());
    ASSERT_EQ(runs.size(), 5u);
    for (const LayerRun &run : runs)
        EXPECT_GT(run.result.totalCycles, 0u) << run.layer.name;
}

TEST(Profiler, FusionGroupsAnchorOnCubeLayers)
{
    Profiler p(arch::makeCoreConfig(arch::CoreVersion::Max));
    const auto groups = Profiler::fusionGroups(p.runInference(tinyNet()));
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].name, "conv_a");
    EXPECT_EQ(groups[1].name, "fc");
}

TEST(Profiler, LeadingVectorLayerStartsItsOwnGroup)
{
    model::Network net;
    net.add(Layer::batchNorm("pre", 1024));
    net.add(Layer::linear("fc", 4, 64, 64));
    Profiler p(arch::makeCoreConfig(arch::CoreVersion::Max));
    const auto groups = Profiler::fusionGroups(p.runInference(net));
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].name, "pre");
    EXPECT_EQ(groups[0].cubeBusy, 0u);
}

TEST(Profiler, GroupTotalsEqualLayerSums)
{
    Profiler p(arch::makeCoreConfig(arch::CoreVersion::Max));
    const auto runs = p.runInference(tinyNet());
    const auto groups = Profiler::fusionGroups(runs);
    Cycles group_total = 0, run_total = 0;
    for (const auto &g : groups)
        group_total += g.totalCycles;
    for (const auto &r : runs)
        run_total += r.result.totalCycles;
    EXPECT_EQ(group_total, run_total);
    EXPECT_EQ(run_total, Profiler::totalCycles(runs));
}

TEST(Profiler, RatioDefinition)
{
    GroupProfile g;
    g.cubeBusy = 300;
    g.vectorBusy = 100;
    EXPECT_DOUBLE_EQ(g.cubeVectorRatio(), 3.0);
    g.vectorBusy = 0;
    EXPECT_DOUBLE_EQ(g.cubeVectorRatio(), 0.0); // defined as 0, not inf
}

TEST(Profiler, BandwidthDefinition)
{
    GroupProfile g;
    g.l1ReadBytes = 1000;
    g.l1WriteBytes = 500;
    g.totalCycles = 100;
    EXPECT_DOUBLE_EQ(g.l1ReadBitsPerCycle(), 80.0);
    EXPECT_DOUBLE_EQ(g.l1WriteBitsPerCycle(), 40.0);
}

TEST(Profiler, TrainingStepsIncludeBackwardWork)
{
    Profiler p(arch::makeCoreConfig(arch::CoreVersion::Max));
    const auto net = tinyNet();
    const auto inf = Profiler::fusionGroups(p.runInference(net));
    const auto tra =
        Profiler::fusionGroupsTraining(p.runTraining(net));
    ASSERT_EQ(inf.size(), tra.size());
    for (std::size_t i = 0; i < inf.size(); ++i) {
        EXPECT_EQ(inf[i].name, tra[i].name);
        EXPECT_GT(tra[i].totalCycles, inf[i].totalCycles);
        EXPECT_GE(tra[i].vectorBusy, inf[i].vectorBusy);
    }
}

TEST(Profiler, TrainingLowersCubeVectorRatio)
{
    // The paper's Fig. 4 vs Fig. 5 observation.
    Profiler p(arch::makeCoreConfig(arch::CoreVersion::Max));
    const auto net = model::zoo::bert("b", 1, 128, 512, 1, 8, 2048);
    const auto inf = Profiler::fusionGroups(p.runInference(net));
    const auto tra =
        Profiler::fusionGroupsTraining(p.runTraining(net));
    double inf_sum = 0, tra_sum = 0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < inf.size(); ++i) {
        if (inf[i].cubeVectorRatio() <= 0)
            continue;
        inf_sum += inf[i].cubeVectorRatio();
        tra_sum += tra[i].cubeVectorRatio();
        ++counted;
    }
    ASSERT_GT(counted, 0u);
    EXPECT_LT(tra_sum, inf_sum);
}

TEST(Profiler, InferenceResultAccumulates)
{
    Profiler p(arch::makeCoreConfig(arch::CoreVersion::Max));
    const auto net = tinyNet();
    const auto total = p.inferenceResult(net);
    EXPECT_EQ(total.totalCycles,
              Profiler::totalCycles(p.runInference(net)));
    // Cube-layer FLOPs are exact; vector layers charge datapath
    // passes, so the simulated total is bounded but not equal.
    EXPECT_GE(total.totalFlops, net.totalFlops() * 9 / 10);
    EXPECT_LE(total.totalFlops, net.totalFlops() * 3);
}

} // anonymous namespace
} // namespace ascend
