/**
 * @file
 * Tests of the runtime layer: SimCache correctness (memoized results
 * are bit-identical to uncached simulation, keys separate every
 * compile knob, LRU bounds hold), SimSession network profiling, and
 * the deterministic thread pool (index ordering, exception
 * propagation, nesting).
 */

#include <atomic>
#include <cstring>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "compiler/profiler.hh"
#include "model/zoo.hh"
#include "runtime/sim_cache.hh"
#include "runtime/sim_session.hh"
#include "runtime/thread_pool.hh"

using namespace ascend;

namespace {

/** Field-by-field equality of two SimResults. */
void
expectResultEq(const core::SimResult &a, const core::SimResult &b)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.totalFlops, b.totalFlops);
    EXPECT_EQ(a.instrsExecuted, b.instrsExecuted);
    for (std::size_t p = 0; p < isa::kNumPipes; ++p) {
        EXPECT_EQ(a.pipes[p].busyCycles, b.pipes[p].busyCycles);
        EXPECT_EQ(a.pipes[p].finishCycle, b.pipes[p].finishCycle);
        EXPECT_EQ(a.pipes[p].instrs, b.pipes[p].instrs);
    }
    for (std::size_t bus = 0; bus < isa::kNumBuses; ++bus)
        EXPECT_EQ(a.busBytes[bus], b.busBytes[bus]);
}

/** Every zoo network the cache-equivalence test sweeps. */
std::vector<model::Network>
zooNetworks()
{
    return {
        model::zoo::resnet50(1),
        model::zoo::mobilenetV2(1),
        model::zoo::bert("bert_2l", 1, 128, 768, 2, 12, 3072),
        model::zoo::bertBase(1, 128),
        model::zoo::gestureNet(1),
        model::zoo::vgg16(1),
        model::zoo::maskRcnn(1),
        model::zoo::wideDeep(1),
        model::zoo::lstm(1),
        model::zoo::siameseTracker(1),
        model::zoo::pointNet(1),
        model::zoo::slamFrontend(256),
    };
}

TEST(SimCache, CachedResultsMatchUncachedForEveryZooNetwork)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Std);
    for (const auto &net : zooNetworks()) {
        // Fresh private caches: one session simulates cold, the
        // second returns the same layers from its warm cache.
        auto cache = std::make_shared<runtime::SimCache>();
        runtime::SimSession cold(cfg, {}, cache);
        runtime::SimSession warm(cfg, {}, cache);
        const auto uncached = cold.runInference(net);
        const auto hits = cache->stats().hits;
        const auto cached = warm.runInference(net);
        ASSERT_EQ(uncached.size(), cached.size()) << net.name;
        for (std::size_t i = 0; i < uncached.size(); ++i)
            expectResultEq(uncached[i].result, cached[i].result);
        // The warm pass must have been served from the memo.
        EXPECT_GE(cache->stats().hits - hits, net.layers.size())
            << net.name;
    }
}

TEST(SimCache, KeySeparatesCoreConfigs)
{
    auto a = arch::makeCoreConfig(arch::CoreVersion::Max);
    auto b = a;
    b.vectorWidthBytes /= 2;
    EXPECT_NE(runtime::fingerprint(a), runtime::fingerprint(b));
    // The name is cosmetic: same design point, same key.
    auto renamed = a;
    renamed.name = "same-shape-different-name";
    EXPECT_EQ(runtime::fingerprint(a), runtime::fingerprint(renamed));
}

TEST(SimCache, KeySeparatesCompileOptions)
{
    const compiler::CompileOptions base;

    compiler::CompileOptions sparse;
    sparse.sparsity.weightDensity = 0.5;
    EXPECT_NE(runtime::fingerprint(base), runtime::fingerprint(sparse));

    compiler::CompileOptions structured = sparse;
    structured.sparsity.structured = true;
    EXPECT_NE(runtime::fingerprint(sparse),
              runtime::fingerprint(structured));

    compiler::CompileOptions deep;
    deep.pipelineDepth = 4;
    EXPECT_NE(runtime::fingerprint(base), runtime::fingerprint(deep));

    compiler::CompileOptions vec;
    vec.mapGemmToVector = true;
    EXPECT_NE(runtime::fingerprint(base), runtime::fingerprint(vec));

    compiler::CompileOptions ext;
    ext.chargeExtTraffic = false;
    EXPECT_NE(runtime::fingerprint(base), runtime::fingerprint(ext));
}

TEST(SimCache, OptionVariantsSimulateDifferently)
{
    // End-to-end guard: sessions differing only in options must not
    // serve each other's results even when sharing one cache.
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    auto cache = std::make_shared<runtime::SimCache>();
    compiler::CompileOptions sparse;
    sparse.sparsity.weightDensity = 0.25;
    sparse.sparsity.structured = true;
    runtime::SimSession dense_s(cfg, {}, cache);
    runtime::SimSession sparse_s(cfg, sparse, cache);
    const auto layer =
        model::Layer::conv2d("c", 1, 64, 28, 28, 64, 3, 1, 1);
    const auto dense_r = dense_s.runLayer(layer);
    const auto sparse_r = sparse_s.runLayer(layer);
    EXPECT_LT(sparse_r.bus(isa::Bus::ExtB), dense_r.bus(isa::Bus::ExtB));
}

TEST(SimCache, LayerNameDoesNotAffectKey)
{
    const auto a = model::Layer::linear("first", 128, 256, 512);
    const auto b = model::Layer::linear("second", 128, 256, 512);
    EXPECT_EQ(runtime::fingerprint(a), runtime::fingerprint(b));
    const auto c = model::Layer::linear("third", 128, 256, 513);
    EXPECT_NE(runtime::fingerprint(a), runtime::fingerprint(c));
}

TEST(SimCache, LruEvictionAndCounters)
{
    runtime::SimCache cache(2);
    core::SimResult r;
    r.totalCycles = 1;
    core::SimResult out;

    EXPECT_FALSE(cache.lookup("a", out)); // miss 1
    cache.insert("a", r);
    cache.insert("b", r);
    EXPECT_TRUE(cache.lookup("a", out)); // hit 1; "a" now most recent
    cache.insert("c", r);                // evicts "b"
    EXPECT_TRUE(cache.lookup("a", out));  // hit 2
    EXPECT_FALSE(cache.lookup("b", out)); // miss 2 (evicted)
    EXPECT_TRUE(cache.lookup("c", out));  // hit 3

    const auto s = cache.stats();
    EXPECT_EQ(s.hits, 3u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 2u);

    // clear() drops entries but keeps the cumulative counters.
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().hits, 3u);
    EXPECT_FALSE(cache.lookup("a", out));
}

// ------------------------------------------- SimCache persistence

/** Unique file path inside gtest's per-run temp directory. */
std::string
cacheFileFor(const char *test)
{
    return ::testing::TempDir() + "ascend_" + test + "_cache.bin";
}

TEST(SimCachePersist, WarmColdRoundTripIsBitIdentical)
{
    const std::string path = cacheFileFor("roundtrip");
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Std);
    const auto net = model::zoo::resnet50(1);

    auto cold_cache = std::make_shared<runtime::SimCache>();
    runtime::SimSession cold(cfg, {}, cold_cache);
    const auto uncached = cold.runInference(net);
    ASSERT_TRUE(cold_cache->saveFile(path));
    EXPECT_EQ(cold_cache->stats().diskStores,
              cold_cache->stats().entries);

    auto warm_cache = std::make_shared<runtime::SimCache>();
    EXPECT_EQ(warm_cache->loadFile(path),
              cold_cache->stats().entries);
    runtime::SimSession warm(cfg, {}, warm_cache);
    const auto cached = warm.runInference(net);

    // Every layer must come from disk (no re-simulation) and match
    // the original result bit for bit.
    EXPECT_EQ(warm_cache->stats().misses, 0u);
    ASSERT_EQ(uncached.size(), cached.size());
    for (std::size_t i = 0; i < uncached.size(); ++i)
        expectResultEq(uncached[i].result, cached[i].result);
}

TEST(SimCachePersist, VersionMismatchInvalidatesCleanly)
{
    const std::string path = cacheFileFor("version");
    runtime::SimCache cache;
    core::SimResult r;
    r.totalCycles = 42;
    cache.insert("key", r);
    ASSERT_TRUE(cache.saveFile(path, "code-v1"));

    runtime::SimCache stale;
    EXPECT_EQ(stale.loadFile(path, "code-v2"), 0u);
    EXPECT_EQ(stale.stats().entries, 0u);

    runtime::SimCache fresh;
    EXPECT_EQ(fresh.loadFile(path, "code-v1"), 1u);
    core::SimResult out;
    EXPECT_TRUE(fresh.lookup("key", out));
    EXPECT_EQ(out.totalCycles, 42u);
}

TEST(SimCachePersist, TruncatedAndCorruptFilesAreIgnored)
{
    const std::string path = cacheFileFor("corrupt");
    runtime::SimCache cache;
    core::SimResult r;
    for (int i = 0; i < 8; ++i) {
        r.totalCycles = Cycles(i + 1);
        cache.insert("key-" + std::to_string(i), r);
    }
    ASSERT_TRUE(cache.saveFile(path));

    std::string blob;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        blob = os.str();
    }

    // A missing file and an empty file load nothing, without error.
    runtime::SimCache empty;
    EXPECT_EQ(empty.loadFile(path + ".does-not-exist"), 0u);
    const std::string empty_path = cacheFileFor("corrupt_empty");
    std::ofstream(empty_path, std::ios::binary).flush();
    EXPECT_EQ(empty.loadFile(empty_path), 0u);

    // Garbage at the front invalidates the whole file.
    const std::string garbage_path = cacheFileFor("corrupt_garbage");
    {
        std::ofstream out(garbage_path, std::ios::binary);
        out << "definitely not a cache file" << blob;
    }
    EXPECT_EQ(empty.loadFile(garbage_path), 0u);

    // Truncation at any point must never crash, and every entry that
    // validated before the cut must survive.
    for (std::size_t cut = 0; cut < blob.size(); cut += 97) {
        const std::string cut_path = cacheFileFor("corrupt_cut");
        {
            std::ofstream out(cut_path, std::ios::binary);
            out.write(blob.data(), std::streamsize(cut));
        }
        runtime::SimCache partial;
        const std::size_t loaded = partial.loadFile(cut_path);
        EXPECT_LE(loaded, 8u);
        EXPECT_EQ(partial.stats().entries, loaded);
    }
    // The untruncated file loads everything.
    runtime::SimCache full;
    EXPECT_EQ(full.loadFile(path), 8u);
}

TEST(SimCachePersist, OldFormatFileIsRejectedAndRebuilt)
{
    // A file with the right magic but format version 1 (a previous
    // code generation) must be refused cleanly — and the same path
    // must accept a fresh save afterwards (silent rebuild, no stale
    // residue).
    const std::string path = cacheFileFor("format_v1");
    runtime::SimCache cache;
    core::SimResult r;
    r.totalCycles = 42;
    cache.insert("key", r);
    ASSERT_TRUE(cache.saveFile(path));

    std::string blob;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        blob = os.str();
    }
    // Bytes [8, 16) hold the format version as a raw u64; rewrite it
    // to 1 while leaving the magic and the body intact.
    ASSERT_GE(blob.size(), 16u);
    const std::uint64_t v1 = 1;
    std::memcpy(&blob[8], &v1, sizeof(v1));
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(blob.data(), std::streamsize(blob.size()));
    }

    runtime::SimCache stale;
    EXPECT_EQ(stale.loadFile(path), 0u);
    EXPECT_EQ(stale.stats().entries, 0u);
    EXPECT_EQ(stale.stats().diskLoads, 0u);

    // The rebuild overwrites the stale file and round-trips again.
    runtime::SimCache rebuilt;
    rebuilt.insert("key", r);
    ASSERT_TRUE(rebuilt.saveFile(path));
    runtime::SimCache fresh;
    EXPECT_EQ(fresh.loadFile(path), 1u);
    core::SimResult out;
    EXPECT_TRUE(fresh.lookup("key", out));
    EXPECT_EQ(out.totalCycles, 42u);
}

TEST(SimCachePersist, TruncatedHeaderIsRejectedCleanly)
{
    // Cuts inside the v2 header (magic, format, pipe/bus counts,
    // version string, entry count) must load nothing — every header
    // field is validated before any entry is adopted.
    const std::string path = cacheFileFor("header_cut");
    runtime::SimCache cache;
    core::SimResult r;
    r.totalCycles = 7;
    cache.insert("k", r);
    ASSERT_TRUE(cache.saveFile(path));

    std::string blob;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        blob = os.str();
    }
    for (std::size_t cut : {4u, 8u, 12u, 20u, 28u, 36u}) {
        ASSERT_LT(cut, blob.size());
        const std::string cut_path = cacheFileFor("header_cut_part");
        {
            std::ofstream out(cut_path,
                              std::ios::binary | std::ios::trunc);
            out.write(blob.data(), std::streamsize(cut));
        }
        runtime::SimCache partial;
        EXPECT_EQ(partial.loadFile(cut_path), 0u);
        EXPECT_EQ(partial.stats().entries, 0u);
    }
}

TEST(SimCachePersist, ZeroedTailLoadsValidatedPrefixAndRebuilds)
{
    // The power-loss shape fsync-before-rename defends against: the
    // rename was durable but the data blocks behind it were not, so
    // the file has its full length with a zeroed tail. Every entry
    // that validates before the zeros must survive, the rest must be
    // dropped without error, and a fresh save over the damaged path
    // must rebuild it completely.
    const std::string path = cacheFileFor("zeroed_tail");
    runtime::SimCache cache;
    core::SimResult r;
    for (int i = 0; i < 8; ++i) {
        r.totalCycles = Cycles(i + 1);
        cache.insert("key-" + std::to_string(i), r);
    }
    ASSERT_TRUE(cache.saveFile(path));

    std::string blob;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        blob = os.str();
    }

    for (std::size_t cut = 16; cut < blob.size(); cut += 131) {
        std::string damaged = blob;
        std::fill(damaged.begin() + std::ptrdiff_t(cut),
                  damaged.end(), '\0');
        {
            std::ofstream out(path,
                              std::ios::binary | std::ios::trunc);
            out.write(damaged.data(),
                      std::streamsize(damaged.size()));
        }
        runtime::SimCache partial;
        const std::size_t loaded = partial.loadFile(path);
        EXPECT_LE(loaded, 8u) << "zeroed from " << cut;
        EXPECT_EQ(partial.stats().entries, loaded);
    }

    ASSERT_TRUE(cache.saveFile(path));
    runtime::SimCache rebuilt;
    EXPECT_EQ(rebuilt.loadFile(path), 8u);
    core::SimResult out;
    EXPECT_TRUE(rebuilt.lookup("key-3", out));
    EXPECT_EQ(out.totalCycles, Cycles(4));
}

TEST(SimCachePersist, SaveCreatesParentDirectories)
{
    const std::string dir =
        ::testing::TempDir() + "ascend_nested/dir";
    const std::string path = runtime::SimCache::filePath(dir);
    runtime::SimCache cache;
    core::SimResult r;
    r.totalCycles = 7;
    cache.insert("k", r);
    ASSERT_TRUE(cache.saveFile(path));
    runtime::SimCache again;
    EXPECT_EQ(again.loadFile(path), 1u);
}

TEST(ThreadPool, ResultsLandByIndex)
{
    runtime::ThreadPool pool(4);
    std::vector<int> items(257);
    std::iota(items.begin(), items.end(), 0);
    const auto out = pool.map(items, [](int v) { return v * v; });
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], int(i) * int(i));
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    runtime::ThreadPool pool(4);
    std::vector<std::atomic<int>> counts(1000);
    pool.parallelFor(counts.size(),
                     [&](std::size_t i) { counts[i]++; });
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, PropagatesFirstException)
{
    runtime::ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(64,
                                  [](std::size_t i) {
                                      if (i == 13)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool survives a throwing job and runs the next one.
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&](std::size_t) { ran++; });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, AggregatesConcurrentExceptions)
{
    // Regression: exceptions after the first failing index used to be
    // dropped. With many concurrently throwing tasks, every failure
    // must be represented in one ParallelFailure error.
    runtime::ThreadPool pool(4);
    try {
        pool.parallelFor(64, [](std::size_t i) {
            if (i % 8 == 0) // 8 distinct failures
                throw std::runtime_error("task-" + std::to_string(i) +
                                         "-failed");
        });
        FAIL() << "expected an aggregated failure";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::ParallelFailure);
        const std::string what = e.what();
        for (std::size_t i = 0; i < 64; i += 8)
            EXPECT_NE(what.find("task-" + std::to_string(i) +
                                "-failed"),
                      std::string::npos)
                << "missing failure of index " << i << " in: " << what;
    } catch (const std::runtime_error &e) {
        // A scheduling fluke where only one task ran before the rest
        // were drained would rethrow the single original exception —
        // but with 8 throwers across 64 indices on 4 threads at least
        // two must execute. Treat this as the dropped-exception bug.
        FAIL() << "exceptions were dropped; only saw: " << e.what();
    }
    // The pool survives and the next job is clean.
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&](std::size_t) { ran++; });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, NestedLoopsDegradeToSerial)
{
    runtime::ThreadPool pool(4);
    std::vector<int> sums(8, 0);
    pool.parallelFor(sums.size(), [&](std::size_t i) {
        // Inner loop must run inline on this thread (no deadlock,
        // no cross-talk between outer iterations).
        int local = 0;
        runtime::globalPool().parallelFor(
            10, [&](std::size_t j) { local += int(j); });
        sums[i] = local;
    });
    for (int s : sums)
        EXPECT_EQ(s, 45);
}

TEST(ThreadPool, SerialPoolRunsInline)
{
    runtime::ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::vector<int> order;
    pool.parallelFor(5, [&](std::size_t i) { order.push_back(int(i)); });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimSession, ProfilerShimMatchesSession)
{
    // The compiler::Profiler shim must be a pure delegate: identical
    // results from either entry point, one shared process cache.
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Tiny);
    const auto net = model::zoo::gestureNet(1);
    compiler::Profiler profiler(cfg);
    runtime::SimSession session(cfg);
    const auto via_shim = profiler.runInference(net);
    const auto direct = session.runInference(net);
    ASSERT_EQ(via_shim.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        expectResultEq(via_shim[i].result, direct[i].result);
    EXPECT_EQ(&profiler.session().cache(), &session.cache());
}

TEST(SimSession, TrainingRunsAreCachedConsistently)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    auto cache = std::make_shared<runtime::SimCache>();
    runtime::SimSession cold(cfg, {}, cache);
    runtime::SimSession warm(cfg, {}, cache);
    const auto net = model::zoo::bert("b", 1, 128, 256, 1, 4, 1024);
    const auto a = cold.runTraining(net);
    const auto b = warm.runTraining(net);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].size(), b[i].size());
        for (std::size_t j = 0; j < a[i].size(); ++j)
            expectResultEq(a[i][j].result, b[i][j].result);
    }
}

} // anonymous namespace
