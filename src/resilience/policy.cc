/**
 * @file
 * Recovery-policy math.
 */

#include "resilience/policy.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ascend {
namespace resilience {

const char *
toString(DegradedMode mode)
{
    switch (mode) {
      case DegradedMode::ContinueDegraded: return "continue-degraded";
      case DegradedMode::FailStop:         return "fail-stop";
    }
    return "?";
}

double
retryDelaySeconds(const RetryPolicy &policy, unsigned attempt)
{
    double delay = policy.backoffBaseSec;
    // Backoff must shrink never: a multiplier below 1 would also make
    // the loop below run `attempt` times (up to 2^32) to no effect.
    const double mult = std::max(policy.backoffMultiplier, 1.0);
    if (mult == 1.0 || delay <= 0)
        return std::min(delay, policy.backoffCapSec);
    for (unsigned i = 0; i < attempt; ++i) {
        delay *= mult;
        // Saturate *exactly* at the cap the moment we cross it, so
        // huge attempt numbers can never overflow the double to inf.
        if (delay >= policy.backoffCapSec)
            return policy.backoffCapSec;
    }
    return std::min(delay, policy.backoffCapSec);
}

double
retryJitterUnit(const RetryPolicy &policy, std::uint64_t key,
                unsigned attempt)
{
    // FNV-1a over (jitterSeed, key, attempt), folded into the same
    // 53-bit mantissa mapping Rng::uniformReal uses.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    mix(policy.jitterSeed);
    mix(key);
    mix(attempt);
    return double(h >> 11) * 0x1.0p-53;
}

double
retryDelaySecondsJittered(const RetryPolicy &policy, unsigned attempt,
                          std::uint64_t key)
{
    const double nominal = retryDelaySeconds(policy, attempt);
    if (policy.jitterFraction <= 0)
        return nominal;
    const double f = std::min(policy.jitterFraction, 1.0);
    return nominal *
           (1.0 - f * retryJitterUnit(policy, key, attempt));
}

double
retryCumulativeSeconds(const RetryPolicy &policy, unsigned attempts)
{
    if (attempts == 0)
        return 0;
    const double mult = std::max(policy.backoffMultiplier, 1.0);
    double total = 0;
    double delay = policy.backoffBaseSec;
    unsigned i = 0;
    // Geometric prefix, term for term the values retryDelaySeconds
    // returns; stops at the exact saturation point so the tail below
    // is a closed form, never an O(attempts) spin.
    if (mult > 1.0 && delay > 0) {
        for (; i < attempts && delay < policy.backoffCapSec; ++i) {
            total += policy.timeoutSec +
                     std::min(delay, policy.backoffCapSec);
            delay *= mult;
        }
    }
    if (i < attempts) {
        // Saturated (or constant-backoff) tail: every further retry
        // costs the same.
        const double per = policy.timeoutSec +
                           std::min(delay, policy.backoffCapSec);
        total += double(attempts - i) * per;
    }
    return total;
}

bool
retryPermitted(const RetryPolicy &policy, unsigned attempt)
{
    if (attempt >= policy.maxRetries)
        return false;
    if (policy.giveUpAfterSeconds <= 0)
        return true;
    return retryCumulativeSeconds(policy, attempt + 1) <=
           policy.giveUpAfterSeconds;
}

unsigned
retriesWithinBudget(const RetryPolicy &policy)
{
    if (policy.giveUpAfterSeconds <= 0)
        return policy.maxRetries;
    const double budget = policy.giveUpAfterSeconds;
    const double mult = std::max(policy.backoffMultiplier, 1.0);
    double total = 0;
    double delay = policy.backoffBaseSec;
    unsigned n = 0;
    if (mult > 1.0 && delay > 0) {
        while (n < policy.maxRetries && delay < policy.backoffCapSec) {
            const double cost = policy.timeoutSec +
                                std::min(delay, policy.backoffCapSec);
            if (total + cost > budget)
                return n;
            total += cost;
            ++n;
            delay *= mult;
        }
    }
    if (n >= policy.maxRetries)
        return n;
    const double per =
        policy.timeoutSec + std::min(delay, policy.backoffCapSec);
    if (per <= 0)
        return policy.maxRetries;
    const double room = double(policy.maxRetries - n);
    double more = std::min(std::floor((budget - total) / per), room);
    // The division can land one retry off the multiply form
    // retryCumulativeSeconds uses; nudge until the two agree exactly.
    while (more > 0 && total + more * per > budget)
        more -= 1;
    while (more < room && total + (more + 1) * per <= budget)
        more += 1;
    return n + unsigned(more);
}

double
timeWithCheckpointRestart(double work_sec, double events_per_sec,
                          const CheckpointPolicy &policy)
{
    simAssert(work_sec >= 0 && events_per_sec >= 0,
              "checkpoint model needs non-negative inputs");
    if (events_per_sec == 0 && !policy.enabled)
        return work_sec;
    double total = work_sec;
    double rework_per_event;
    if (policy.enabled) {
        simAssert(policy.intervalSec > 0,
                  "checkpoint interval must be positive");
        // Periodic save cost over the whole run...
        total += work_sec / policy.intervalSec * policy.saveSec;
        // ...and each error loses half an interval plus the restart.
        rework_per_event = policy.restartSec + 0.5 * policy.intervalSec;
    } else {
        // No checkpoints: an error loses everything accumulated so
        // far; on average half the run is repeated per event.
        rework_per_event = 0.5 * work_sec;
    }
    // First-order expected cost: events strike during the base work.
    total += events_per_sec * work_sec * rework_per_event;
    return total;
}

} // namespace resilience
} // namespace ascend
