/**
 * @file
 * Recovery-policy math.
 */

#include "resilience/policy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ascend {
namespace resilience {

const char *
toString(DegradedMode mode)
{
    switch (mode) {
      case DegradedMode::ContinueDegraded: return "continue-degraded";
      case DegradedMode::FailStop:         return "fail-stop";
    }
    return "?";
}

double
retryDelaySeconds(const RetryPolicy &policy, unsigned attempt)
{
    double delay = policy.backoffBaseSec;
    // Backoff must shrink never: a multiplier below 1 would also make
    // the loop below run `attempt` times (up to 2^32) to no effect.
    const double mult = std::max(policy.backoffMultiplier, 1.0);
    if (mult == 1.0 || delay <= 0)
        return std::min(delay, policy.backoffCapSec);
    for (unsigned i = 0; i < attempt; ++i) {
        delay *= mult;
        // Saturate *exactly* at the cap the moment we cross it, so
        // huge attempt numbers can never overflow the double to inf.
        if (delay >= policy.backoffCapSec)
            return policy.backoffCapSec;
    }
    return std::min(delay, policy.backoffCapSec);
}

double
timeWithCheckpointRestart(double work_sec, double events_per_sec,
                          const CheckpointPolicy &policy)
{
    simAssert(work_sec >= 0 && events_per_sec >= 0,
              "checkpoint model needs non-negative inputs");
    if (events_per_sec == 0 && !policy.enabled)
        return work_sec;
    double total = work_sec;
    double rework_per_event;
    if (policy.enabled) {
        simAssert(policy.intervalSec > 0,
                  "checkpoint interval must be positive");
        // Periodic save cost over the whole run...
        total += work_sec / policy.intervalSec * policy.saveSec;
        // ...and each error loses half an interval plus the restart.
        rework_per_event = policy.restartSec + 0.5 * policy.intervalSec;
    } else {
        // No checkpoints: an error loses everything accumulated so
        // far; on average half the run is repeated per event.
        rework_per_event = 0.5 * work_sec;
    }
    // First-order expected cost: events strike during the base work.
    total += events_per_sec * work_sec * rework_per_event;
    return total;
}

} // namespace resilience
} // namespace ascend
