/**
 * @file
 * Crash-consistent run checkpoints for the elastic cluster engine.
 *
 * A RunCheckpoint is the complete mutable state of an elastic
 * training run at an event boundary: simulated clock, next step,
 * surviving world, spare budget, resilience counters, event cursors
 * and the accumulated event log. Because the engine is a pure
 * function of this state (plus its immutable inputs), a run killed at
 * any instant and resumed from its last on-disk checkpoint finishes
 * with output byte-identical to the uninterrupted run — the property
 * bench_chaos enforces with real SIGKILLs.
 *
 * Disk discipline (same as runtime::SimCache):
 *  - writes go to a pid-suffixed temp file renamed into place, so a
 *    crash mid-write leaves the previous complete checkpoint intact
 *    and readers never observe a torn file;
 *  - the header carries a magic, a format version and the run
 *    identity fingerprint; any mismatch makes load() a clean refusal
 *    (a checkpoint from another run, another code version or another
 *    option set can never leak into this one);
 *  - the body is field-wise (never struct memcpy) and ends in an
 *    FNV-1a checksum over everything before it, so bit rot or manual
 *    truncation is detected even when the lengths still parse.
 */

#ifndef ASCEND_RESILIENCE_CHECKPOINT_HH
#define ASCEND_RESILIENCE_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ascend {
namespace resilience {

/** Resilience counters an elastic run accumulates. */
struct ElasticCounters
{
    std::uint64_t failovers = 0;      ///< spare-node replacements
    std::uint64_t shrinks = 0;        ///< elastic world reductions
    std::uint64_t rollbacks = 0;      ///< checkpoint restores
    std::uint64_t replayedSteps = 0;  ///< steps lost and re-run
    std::uint64_t speculations = 0;   ///< straggler speculative wins
    std::uint64_t retries = 0;        ///< link-level retry attempts
    std::uint64_t degradedSteps = 0;  ///< steps at reduced bandwidth
    std::uint64_t sparesUsed = 0;     ///< warm spares consumed
    std::uint64_t spareExhausted = 0; ///< failures with an empty pool
    std::uint64_t checkpointsSaved = 0;

    bool operator==(const ElasticCounters &o) const;
};

/** Complete engine state at one event boundary. */
struct RunCheckpoint
{
    /**
     * Identity of the producing run: a fingerprint over the job,
     * cluster, schedule and elastic options. load() refuses a file
     * whose identity differs from the requester's.
     */
    std::string runId;

    std::uint64_t sequence = 0; ///< checkpoint ordinal within the run
    std::uint64_t nextStep = 0; ///< first step not yet committed
    double simTimeSec = 0;      ///< simulated clock at the boundary

    /** Surviving node ids (spares have ids >= the initial count). */
    std::vector<std::uint32_t> activeNodes;
    std::uint64_t sparesLeft = 0;

    /** Step/time of the last *logical* (rollback target) checkpoint. */
    std::uint64_t lastCheckpointStep = 0;
    double lastCheckpointSec = 0;

    /// @{ Cursors into the time-sorted fault-event lists.
    std::uint64_t nodeEventCursor = 0;
    std::uint64_t eccEventCursor = 0;
    /// @}

    ElasticCounters counters;

    /** Deterministic one-line-per-event history, crash-consistent. */
    std::string eventLog;

    bool operator==(const RunCheckpoint &o) const;
};

/**
 * One checkpoint slot on disk: a fixed file under a directory,
 * overwritten atomically on every save.
 */
class CheckpointStore
{
  public:
    /** Store under @p dir (created on first save) named @p name. */
    explicit CheckpointStore(std::string dir,
                             std::string name = "elastic");

    /** The file this store reads and writes. */
    std::string path() const;

    /**
     * Persist @p state atomically. Returns false (leaving any
     * previous checkpoint intact) when the directory or file cannot
     * be written.
     */
    bool save(const RunCheckpoint &state) const;

    /**
     * Load the checkpoint into @p out. Returns false — without
     * touching @p out — on a missing/unreadable file, a bad magic or
     * format version, a checksum mismatch, a truncated body, or a
     * runId different from @p run_id.
     */
    bool load(RunCheckpoint &out, const std::string &run_id) const;

    /**
     * load() with structured diagnosis: a missing/unreadable file
     * still returns false quietly (absence is a normal cold start),
     * but every validation failure — bad magic, unknown format,
     * checksum mismatch, truncated or over-long field, foreign
     * runId — throws ascend::Error{CheckpointCorrupt} naming the
     * refusal. Fuzz tests flip bits and truncate artifacts and assert
     * every corruption lands here, never in a crash or a silent
     * acceptance.
     */
    bool loadChecked(RunCheckpoint &out,
                     const std::string &run_id) const;

    /**
     * Persist an opaque client payload (e.g. the serving engine's
     * serialized state) atomically under the same disk discipline as
     * save(): temp file + rename, magic/version header, identity
     * fingerprint, trailing FNV-1a checksum.
     */
    bool saveBlob(const std::string &run_id,
                  const std::string &payload) const;

    /**
     * Load a payload written by saveBlob(). Returns false on a
     * missing file or any validation failure; the Checked variant
     * throws ascend::Error{CheckpointCorrupt} on corruption like
     * loadChecked().
     */
    bool loadBlob(std::string &payload, const std::string &run_id) const;
    bool loadBlobChecked(std::string &payload,
                         const std::string &run_id) const;

    /** Delete the checkpoint file (missing file is not an error). */
    void remove() const;

  private:
    bool writeAtomic(const std::string &buf) const;
    /** nullptr = success; "missing" = no file; else refusal reason. */
    const char *loadInternal(RunCheckpoint &out,
                             const std::string &run_id) const;
    const char *loadBlobInternal(std::string &payload,
                                 const std::string &run_id) const;

    std::string dir_;
    std::string name_;
};

} // namespace resilience
} // namespace ascend

#endif // ASCEND_RESILIENCE_CHECKPOINT_HH
