/**
 * @file
 * Correlated fault-domain expansion.
 */

#include "resilience/fault_domain.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"

namespace ascend {
namespace resilience {

unsigned
DomainTopology::racks() const
{
    simAssert(replicasPerRack > 0, "replicasPerRack must be > 0");
    return (replicas + replicasPerRack - 1) / replicasPerRack;
}

unsigned
DomainTopology::powerDomains() const
{
    simAssert(racksPerPowerDomain > 0,
              "racksPerPowerDomain must be > 0");
    const unsigned r = racks();
    return (r + racksPerPowerDomain - 1) / racksPerPowerDomain;
}

unsigned
DomainTopology::rackOf(unsigned replica) const
{
    simAssert(replica < replicas, "replica out of topology");
    return replica / replicasPerRack;
}

unsigned
DomainTopology::powerDomainOf(unsigned replica) const
{
    return rackOf(replica) / racksPerPowerDomain;
}

std::vector<unsigned>
DomainTopology::rackMembers(unsigned rack) const
{
    simAssert(rack < racks(), "rack out of topology");
    std::vector<unsigned> out;
    const unsigned first = rack * replicasPerRack;
    const unsigned last = std::min(first + replicasPerRack, replicas);
    for (unsigned r = first; r < last; ++r)
        out.push_back(r);
    return out;
}

std::vector<unsigned>
DomainTopology::powerDomainMembers(unsigned domain) const
{
    simAssert(domain < powerDomains(), "power domain out of topology");
    std::vector<unsigned> out;
    const unsigned first_rack = domain * racksPerPowerDomain;
    const unsigned last_rack =
        std::min(first_rack + racksPerPowerDomain, racks());
    for (unsigned k = first_rack; k < last_rack; ++k)
        for (unsigned r : rackMembers(k))
            out.push_back(r);
    return out;
}

bool
CorrelatedFaultSpec::empty() const
{
    return rackOutagePerSec <= 0 && rackFailPerSec <= 0 &&
           rackDegradePerSec <= 0 && powerOutagePerSec <= 0 &&
           rackStrikeAtSec < 0 && background.empty();
}

namespace {

/** Domain-stream salts, disjoint from the per-target streams the
 *  independent generator derives (those key on FaultKind). */
enum DomainStream : std::uint64_t {
    kRackOutage = 1,
    kRackFail = 2,
    kRackDegrade = 3,
    kPowerOutage = 4,
    kRackStrike = 5,
};

/** A private RNG stream per (seed, stream, domain). */
Rng
domainStream(std::uint64_t seed, DomainStream stream, unsigned domain)
{
    return Rng(seed ^ (std::uint64_t(stream) * 0xbf58476d1ce4e5b9ULL) ^
               (std::uint64_t(domain) * 0x94d049bb133111ebULL) ^
               0xc0e1a7edULL);
}

/**
 * Emit one domain event per quasi-periodic instant: the j-th event of
 * the stream lands at (j + u_j) / rate, expanded into one FaultEvent
 * per member at that shared instant.
 */
void
emitDomainSeries(std::vector<FaultEvent> &out,
                 const CorrelatedFaultSpec &spec, DomainStream stream,
                 unsigned domain, const std::vector<unsigned> &members,
                 double rate, FaultKind kind, double duration,
                 double severity)
{
    if (rate <= 0 || members.empty())
        return;
    Rng rng = domainStream(spec.seed, stream, domain);
    for (std::uint64_t j = 0;; ++j) {
        const double t = (double(j) + rng.uniformReal()) / rate;
        if (t >= spec.horizonSec)
            break;
        for (unsigned m : members)
            out.push_back(FaultEvent{kind, t, m, duration, severity});
    }
}

} // anonymous namespace

std::string
fingerprint(const CorrelatedFaultSpec &spec)
{
    const auto bits = [](double v) {
        std::uint64_t b;
        static_assert(sizeof(b) == sizeof(v));
        std::memcpy(&b, &v, sizeof(b));
        return std::to_string(b);
    };
    std::string s;
    s.reserve(256);
    s += "cflt:";
    s += std::to_string(spec.seed);
    s += ',';
    s += std::to_string(spec.topology.replicas);
    s += ',';
    s += std::to_string(spec.topology.replicasPerRack);
    s += ',';
    s += std::to_string(spec.topology.racksPerPowerDomain);
    s += ',';
    for (double v :
         {spec.horizonSec, spec.rackOutagePerSec, spec.rackOutageSec,
          spec.rackFailPerSec, spec.rackDegradePerSec,
          spec.rackDegradeSec, spec.rackDegradeFactor,
          spec.powerOutagePerSec, spec.powerOutageSec,
          spec.rackStrikeAtSec, spec.rackStrikeOutageSec}) {
        s += bits(v);
        s += ',';
    }
    s += std::to_string(unsigned(spec.rackStrikeKind));
    s += ',';
    s += fingerprint(spec.background);
    return s;
}

FaultSchedule
generateCorrelated(const CorrelatedFaultSpec &spec)
{
    simAssert(spec.horizonSec >= 0,
              "correlated fault horizon must be >= 0");
    // The schedule's nominal spec carries the fleet-facing metadata
    // (consumers size spare pools off spec().cores); the identity of
    // the *correlated* run is the fingerprint override below.
    FaultSpec meta = spec.background;
    meta.seed = spec.seed;
    meta.horizonSec = spec.horizonSec;
    meta.cores = spec.topology.replicas;

    std::vector<FaultEvent> events;
    const DomainTopology &topo = spec.topology;
    if (topo.replicas > 0) {
        for (unsigned k = 0; k < topo.racks(); ++k) {
            const std::vector<unsigned> members = topo.rackMembers(k);
            emitDomainSeries(events, spec, kRackOutage, k, members,
                             spec.rackOutagePerSec,
                             FaultKind::CoreTransient,
                             spec.rackOutageSec, 1.0);
            emitDomainSeries(events, spec, kRackFail, k, members,
                             spec.rackFailPerSec,
                             FaultKind::CorePermanent, 0.0, 1.0);
            emitDomainSeries(events, spec, kRackDegrade, k, members,
                             spec.rackDegradePerSec,
                             FaultKind::CoreStraggler,
                             spec.rackDegradeSec,
                             spec.rackDegradeFactor);
        }
        for (unsigned d = 0; d < topo.powerDomains(); ++d)
            emitDomainSeries(events, spec, kPowerOutage, d,
                             topo.powerDomainMembers(d),
                             spec.powerOutagePerSec,
                             FaultKind::CoreTransient,
                             spec.powerOutageSec, 1.0);
        if (spec.rackStrikeAtSec >= 0 &&
            spec.rackStrikeAtSec < spec.horizonSec) {
            Rng rng = domainStream(spec.seed, kRackStrike, 0);
            const unsigned victim =
                unsigned(rng.uniform(topo.racks()));
            const double duration =
                spec.rackStrikeKind == FaultKind::CorePermanent
                    ? 0.0
                    : spec.rackStrikeOutageSec;
            for (unsigned m : topo.rackMembers(victim))
                events.push_back(FaultEvent{spec.rackStrikeKind,
                                            spec.rackStrikeAtSec, m,
                                            duration, 1.0});
        }
    }
    if (!spec.background.empty()) {
        FaultSpec bg = meta;
        const FaultSchedule independent = FaultSchedule::generate(bg);
        events.insert(events.end(), independent.events().begin(),
                      independent.events().end());
    }
    return FaultSchedule::fromEvents(meta, std::move(events),
                                     fingerprint(spec));
}

bool
applyFaultProfile(CorrelatedFaultSpec &spec, const std::string &name)
{
    if (name == "none")
        return true;
    if (name == "rack" || name == "power") {
        spec.rackStrikeAtSec = 0.3 * spec.horizonSec;
        spec.rackStrikeKind = FaultKind::CoreTransient;
        spec.rackStrikeOutageSec = 0.1 * spec.horizonSec;
        if (name == "power" && spec.horizonSec > 0)
            spec.powerOutagePerSec = 1.0 / spec.horizonSec;
        return true;
    }
    return false;
}

std::string
faultProfileFromEnv(const std::string &fallback)
{
    const char *env = std::getenv("ASCEND_FAULT_PROFILE");
    return env && *env ? env : fallback;
}

} // namespace resilience
} // namespace ascend
