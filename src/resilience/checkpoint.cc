/**
 * @file
 * Checkpoint serialization: field-wise, versioned, checksummed.
 */

#include "resilience/checkpoint.hh"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hh"

namespace ascend {
namespace resilience {

namespace {

constexpr char kMagic[8] = {'A', 'S', 'C', 'C', 'K', 'P', 'T', '\n'};
constexpr char kBlobMagic[8] = {'A', 'S', 'C', 'B', 'L', 'O', 'B', '\n'};
constexpr std::uint64_t kFormatVersion = 1;

/** Longest string the loader accepts (corrupt lengths must not OOM). */
constexpr std::size_t kMaxStringLen = std::size_t(1) << 24;

void
writeU64(std::string &buf, std::uint64_t v)
{
    char raw[sizeof(v)];
    std::memcpy(raw, &v, sizeof(v));
    buf.append(raw, sizeof(v));
}

void
writeDouble(std::string &buf, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(v));
    writeU64(buf, bits);
}

void
writeString(std::string &buf, const std::string &s)
{
    writeU64(buf, s.size());
    buf.append(s);
}

/** FNV-1a over @p data — cheap, deterministic, endian-stable here. */
std::uint64_t
checksum(const char *data, std::size_t len)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 0x100000001b3ULL;
    }
    return h;
}

struct Reader
{
    const std::string &data;
    std::size_t pos = 0;

    bool
    readU64(std::uint64_t &v)
    {
        if (data.size() - pos < sizeof(v))
            return false;
        std::memcpy(&v, data.data() + pos, sizeof(v));
        pos += sizeof(v);
        return true;
    }

    bool
    readDouble(double &v)
    {
        std::uint64_t bits = 0;
        if (!readU64(bits))
            return false;
        std::memcpy(&v, &bits, sizeof(v));
        return true;
    }

    bool
    readString(std::string &s)
    {
        std::uint64_t len = 0;
        if (!readU64(len) || len > kMaxStringLen ||
            data.size() - pos < len)
            return false;
        s.assign(data.data() + pos, std::size_t(len));
        pos += std::size_t(len);
        return true;
    }
};

void
writeCounters(std::string &buf, const ElasticCounters &c)
{
    writeU64(buf, c.failovers);
    writeU64(buf, c.shrinks);
    writeU64(buf, c.rollbacks);
    writeU64(buf, c.replayedSteps);
    writeU64(buf, c.speculations);
    writeU64(buf, c.retries);
    writeU64(buf, c.degradedSteps);
    writeU64(buf, c.sparesUsed);
    writeU64(buf, c.spareExhausted);
    writeU64(buf, c.checkpointsSaved);
}

bool
readCounters(Reader &r, ElasticCounters &c)
{
    return r.readU64(c.failovers) && r.readU64(c.shrinks) &&
           r.readU64(c.rollbacks) && r.readU64(c.replayedSteps) &&
           r.readU64(c.speculations) && r.readU64(c.retries) &&
           r.readU64(c.degradedSteps) && r.readU64(c.sparesUsed) &&
           r.readU64(c.spareExhausted) &&
           r.readU64(c.checkpointsSaved);
}

} // anonymous namespace

bool
ElasticCounters::operator==(const ElasticCounters &o) const
{
    return failovers == o.failovers && shrinks == o.shrinks &&
           rollbacks == o.rollbacks &&
           replayedSteps == o.replayedSteps &&
           speculations == o.speculations && retries == o.retries &&
           degradedSteps == o.degradedSteps &&
           sparesUsed == o.sparesUsed &&
           spareExhausted == o.spareExhausted &&
           checkpointsSaved == o.checkpointsSaved;
}

bool
RunCheckpoint::operator==(const RunCheckpoint &o) const
{
    return runId == o.runId && sequence == o.sequence &&
           nextStep == o.nextStep && simTimeSec == o.simTimeSec &&
           activeNodes == o.activeNodes &&
           sparesLeft == o.sparesLeft &&
           lastCheckpointStep == o.lastCheckpointStep &&
           lastCheckpointSec == o.lastCheckpointSec &&
           nodeEventCursor == o.nodeEventCursor &&
           eccEventCursor == o.eccEventCursor &&
           counters == o.counters && eventLog == o.eventLog;
}

CheckpointStore::CheckpointStore(std::string dir, std::string name)
    : dir_(std::move(dir)), name_(std::move(name))
{
}

std::string
CheckpointStore::path() const
{
    return dir_ + "/" + name_ + ".ckpt";
}

bool
CheckpointStore::save(const RunCheckpoint &state) const
{
    std::string buf;
    buf.reserve(256 + state.eventLog.size() +
                state.activeNodes.size() * sizeof(std::uint64_t));
    buf.append(kMagic, sizeof(kMagic));
    writeU64(buf, kFormatVersion);
    writeString(buf, state.runId);
    writeU64(buf, state.sequence);
    writeU64(buf, state.nextStep);
    writeDouble(buf, state.simTimeSec);
    writeU64(buf, state.activeNodes.size());
    for (std::uint32_t node : state.activeNodes)
        writeU64(buf, node);
    writeU64(buf, state.sparesLeft);
    writeU64(buf, state.lastCheckpointStep);
    writeDouble(buf, state.lastCheckpointSec);
    writeU64(buf, state.nodeEventCursor);
    writeU64(buf, state.eccEventCursor);
    writeCounters(buf, state.counters);
    writeString(buf, state.eventLog);
    writeU64(buf, checksum(buf.data(), buf.size()));

    return writeAtomic(buf);
}

bool
CheckpointStore::writeAtomic(const std::string &buf) const
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    const std::string target = path();
    const std::string tmp =
        target + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(buf.data(), std::streamsize(buf.size()));
        if (!out) {
            out.close();
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    std::filesystem::rename(tmp, target, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

namespace {

/**
 * Read the store file and validate frame + checksum against
 * @p magic. @return one of: "missing" (no readable file), a refusal
 * reason, or nullptr with @p data / @p body set (body = offset of the
 * trailing checksum).
 */
const char *
readFramed(const std::string &file, const char (&magic)[8],
           std::string &data, std::size_t &body)
{
    {
        std::ifstream in(file, std::ios::binary);
        if (!in)
            return "missing";
        std::ostringstream os;
        os << in.rdbuf();
        data = os.str();
    }
    if (data.size() < sizeof(magic) + 2 * sizeof(std::uint64_t))
        return "file shorter than any valid checkpoint";
    if (std::memcmp(data.data(), magic, sizeof(magic)) != 0)
        return "bad magic";
    // The trailing checksum covers everything before it; verify it
    // first so a flipped bit anywhere is one clean refusal.
    body = data.size() - sizeof(std::uint64_t);
    std::uint64_t want = 0;
    std::memcpy(&want, data.data() + body, sizeof(want));
    if (checksum(data.data(), body) != want)
        return "checksum mismatch";
    return nullptr;
}

} // anonymous namespace

const char *
CheckpointStore::loadInternal(RunCheckpoint &out,
                              const std::string &run_id) const
{
    std::string data;
    std::size_t body = 0;
    if (const char *why = readFramed(path(), kMagic, data, body))
        return why;

    Reader r{data, sizeof(kMagic)};
    std::uint64_t format = 0;
    RunCheckpoint s;
    if (!r.readU64(format))
        return "truncated header";
    if (format != kFormatVersion)
        return "unknown format version";
    if (!r.readString(s.runId))
        return "truncated runId";
    if (s.runId != run_id)
        return "foreign runId";
    if (!r.readU64(s.sequence) || !r.readU64(s.nextStep) ||
        !r.readDouble(s.simTimeSec))
        return "truncated body";
    std::uint64_t nodes = 0;
    if (!r.readU64(nodes) || nodes > kMaxStringLen)
        return "implausible node count";
    s.activeNodes.reserve(std::size_t(nodes));
    for (std::uint64_t i = 0; i < nodes; ++i) {
        std::uint64_t node = 0;
        if (!r.readU64(node))
            return "truncated node list";
        s.activeNodes.push_back(std::uint32_t(node));
    }
    if (!r.readU64(s.sparesLeft) ||
        !r.readU64(s.lastCheckpointStep) ||
        !r.readDouble(s.lastCheckpointSec) ||
        !r.readU64(s.nodeEventCursor) ||
        !r.readU64(s.eccEventCursor) || !readCounters(r, s.counters) ||
        !r.readString(s.eventLog))
        return "truncated body";
    if (r.pos != body)
        return "trailing bytes after body";
    out = std::move(s);
    return nullptr;
}

bool
CheckpointStore::load(RunCheckpoint &out,
                      const std::string &run_id) const
{
    return loadInternal(out, run_id) == nullptr;
}

bool
CheckpointStore::loadChecked(RunCheckpoint &out,
                             const std::string &run_id) const
{
    const char *why = loadInternal(out, run_id);
    if (why == nullptr)
        return true;
    if (std::strcmp(why, "missing") == 0)
        return false;
    throw Error(ErrorCode::CheckpointCorrupt,
                std::string(why) + ": " + path());
}

bool
CheckpointStore::saveBlob(const std::string &run_id,
                          const std::string &payload) const
{
    std::string buf;
    buf.reserve(64 + run_id.size() + payload.size());
    buf.append(kBlobMagic, sizeof(kBlobMagic));
    writeU64(buf, kFormatVersion);
    writeString(buf, run_id);
    writeString(buf, payload);
    writeU64(buf, checksum(buf.data(), buf.size()));
    return writeAtomic(buf);
}

const char *
CheckpointStore::loadBlobInternal(std::string &payload,
                                  const std::string &run_id) const
{
    std::string data;
    std::size_t body = 0;
    if (const char *why = readFramed(path(), kBlobMagic, data, body))
        return why;
    Reader r{data, sizeof(kBlobMagic)};
    std::uint64_t format = 0;
    std::string id, out;
    if (!r.readU64(format))
        return "truncated header";
    if (format != kFormatVersion)
        return "unknown format version";
    if (!r.readString(id))
        return "truncated runId";
    if (id != run_id)
        return "foreign runId";
    if (!r.readString(out))
        return "truncated payload";
    if (r.pos != body)
        return "trailing bytes after body";
    payload = std::move(out);
    return nullptr;
}

bool
CheckpointStore::loadBlob(std::string &payload,
                          const std::string &run_id) const
{
    return loadBlobInternal(payload, run_id) == nullptr;
}

bool
CheckpointStore::loadBlobChecked(std::string &payload,
                                 const std::string &run_id) const
{
    const char *why = loadBlobInternal(payload, run_id);
    if (why == nullptr)
        return true;
    if (std::strcmp(why, "missing") == 0)
        return false;
    throw Error(ErrorCode::CheckpointCorrupt,
                std::string(why) + ": " + path());
}

void
CheckpointStore::remove() const
{
    std::error_code ec;
    std::filesystem::remove(path(), ec);
}

} // namespace resilience
} // namespace ascend
