/**
 * @file
 * Fault-schedule generation.
 */

#include "resilience/fault_schedule.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"

namespace ascend {
namespace resilience {

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::CoreTransient:    return "core-transient";
      case FaultKind::CorePermanent:    return "core-permanent";
      case FaultKind::CoreStraggler:    return "core-straggler";
      case FaultKind::LinkDegraded:     return "link-degraded";
      case FaultKind::LinkDown:         return "link-down";
      case FaultKind::EccCorrectable:   return "ecc-correctable";
      case FaultKind::EccUncorrectable: return "ecc-uncorrectable";
    }
    return "?";
}

bool
FaultSpec::empty() const
{
    return coreTransientPerSec <= 0 && corePermanentPerSec <= 0 &&
           linkDegradePerSec <= 0 && linkDownPerSec <= 0 &&
           eccUncorrectablePerSec <= 0 && stragglerFraction <= 0;
}

namespace {

/** Canonical event order: (time, target, kind). */
bool
eventBefore(const FaultEvent &a, const FaultEvent &b)
{
    if (a.timeSec != b.timeSec)
        return a.timeSec < b.timeSec;
    if (a.target != b.target)
        return a.target < b.target;
    return unsigned(a.kind) < unsigned(b.kind);
}

/**
 * A private RNG stream per (seed, kind, target): the schedule for one
 * target never depends on how many other targets exist or in which
 * order they are generated.
 */
Rng
streamFor(std::uint64_t seed, FaultKind kind, unsigned target)
{
    const std::uint64_t k = std::uint64_t(kind) + 1;
    return Rng(seed ^ (k * 0x9e3779b97f4a7c15ULL) ^
               (std::uint64_t(target) * 0xd1342543de82ef95ULL));
}

/**
 * Emit quasi-periodic events at @p rate per second over the horizon:
 * the j-th event lands at (j + u_j) / rate with u_j uniform in
 * [0, 1). Pure arithmetic — bit-stable on every platform.
 */
void
emitSeries(std::vector<FaultEvent> &out, const FaultSpec &spec,
           FaultKind kind, unsigned target, double rate,
           double duration, double severity)
{
    if (rate <= 0)
        return;
    Rng rng = streamFor(spec.seed, kind, target);
    for (std::uint64_t j = 0;; ++j) {
        const double t = (double(j) + rng.uniformReal()) / rate;
        if (t >= spec.horizonSec)
            break;
        out.push_back(FaultEvent{kind, t, target, duration, severity});
    }
}

} // anonymous namespace

FaultSchedule
FaultSchedule::generate(const FaultSpec &spec)
{
    simAssert(spec.horizonSec >= 0, "fault horizon must be >= 0");
    FaultSchedule schedule;
    schedule.spec_ = spec;
    std::vector<FaultEvent> &out = schedule.events_;

    for (unsigned c = 0; c < spec.cores; ++c) {
        emitSeries(out, spec, FaultKind::CoreTransient, c,
                   spec.coreTransientPerSec, spec.coreRepairSec, 1.0);
        emitSeries(out, spec, FaultKind::CorePermanent, c,
                   spec.corePermanentPerSec, 0.0, 1.0);
        if (spec.stragglerFraction > 0) {
            Rng rng = streamFor(spec.seed, FaultKind::CoreStraggler, c);
            if (rng.chance(spec.stragglerFraction))
                out.push_back(FaultEvent{FaultKind::CoreStraggler, 0.0,
                                         c, spec.horizonSec,
                                         spec.stragglerSlowdown});
        }
    }
    for (unsigned l = 0; l < spec.links; ++l) {
        emitSeries(out, spec, FaultKind::LinkDegraded, l,
                   spec.linkDegradePerSec, spec.linkDegradeSec,
                   spec.linkDegradeFactor);
        emitSeries(out, spec, FaultKind::LinkDown, l,
                   spec.linkDownPerSec, spec.linkOutageSec, 0.0);
    }
    emitSeries(out, spec, FaultKind::EccUncorrectable, 0,
               spec.eccUncorrectablePerSec, 0.0, 1.0);

    std::sort(out.begin(), out.end(), eventBefore);
    return schedule;
}

FaultSchedule
FaultSchedule::fromEvents(const FaultSpec &meta,
                          std::vector<FaultEvent> events,
                          std::string fingerprint)
{
    FaultSchedule schedule;
    schedule.spec_ = meta;
    schedule.events_ = std::move(events);
    schedule.fingerprintOverride_ = std::move(fingerprint);
    // stable: events from different domain streams can tie on the
    // full (time, target, kind) key, and the caller's order is the
    // only deterministic tiebreak left.
    std::stable_sort(schedule.events_.begin(), schedule.events_.end(),
                     eventBefore);
    return schedule;
}

namespace {

bool
isCoreKind(FaultKind kind)
{
    return kind == FaultKind::CoreTransient ||
           kind == FaultKind::CorePermanent ||
           kind == FaultKind::CoreStraggler;
}

bool
isLinkKind(FaultKind kind)
{
    return kind == FaultKind::LinkDegraded ||
           kind == FaultKind::LinkDown;
}

} // anonymous namespace

std::vector<FaultEvent>
FaultSchedule::coreEvents(unsigned core) const
{
    std::vector<FaultEvent> out;
    for (const FaultEvent &e : events_)
        if (isCoreKind(e.kind) && e.target == core)
            out.push_back(e);
    return out;
}

std::vector<FaultEvent>
FaultSchedule::linkEvents(unsigned link) const
{
    std::vector<FaultEvent> out;
    for (const FaultEvent &e : events_)
        if (isLinkKind(e.kind) && e.target == link)
            out.push_back(e);
    return out;
}

double
FaultSchedule::stragglerFactor(unsigned core) const
{
    for (const FaultEvent &e : events_)
        if (e.kind == FaultKind::CoreStraggler && e.target == core)
            return e.severity;
    return 1.0;
}

namespace {

void
putBits(std::string &s, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    s += std::to_string(bits);
    s += ',';
}

} // anonymous namespace

std::string
fingerprint(const FaultSpec &spec)
{
    std::string s;
    s.reserve(256);
    s += "flt:";
    s += std::to_string(spec.seed);
    s += ',';
    s += std::to_string(spec.cores);
    s += ',';
    s += std::to_string(spec.links);
    s += ',';
    putBits(s, spec.horizonSec);
    putBits(s, spec.coreTransientPerSec);
    putBits(s, spec.corePermanentPerSec);
    putBits(s, spec.linkDegradePerSec);
    putBits(s, spec.linkDownPerSec);
    putBits(s, spec.eccUncorrectablePerSec);
    putBits(s, spec.coreRepairSec);
    putBits(s, spec.linkOutageSec);
    putBits(s, spec.linkDegradeSec);
    putBits(s, spec.linkDegradeFactor);
    putBits(s, spec.stragglerFraction);
    putBits(s, spec.stragglerSlowdown);
    return s;
}

std::string
FaultSchedule::fingerprint() const
{
    return fingerprintOverride_.empty()
               ? resilience::fingerprint(spec_)
               : fingerprintOverride_;
}

bool
ChipFaultPlan::empty() const
{
    for (const std::vector<FaultEvent> &events : coreEvents)
        if (!events.empty())
            return false;
    for (double f : stragglerFactor)
        if (f != 1.0)
            return false;
    return true;
}

ChipFaultPlan
ChipFaultPlan::fromSchedule(const FaultSchedule &schedule, unsigned cores)
{
    ChipFaultPlan plan;
    plan.stragglerFactor.assign(cores, 1.0);
    plan.coreEvents.resize(cores);
    bool any_event = false;
    for (const FaultEvent &e : schedule.events()) {
        if (e.target >= cores)
            continue;
        if (e.kind == FaultKind::CoreStraggler) {
            plan.stragglerFactor[e.target] = e.severity;
        } else if (e.kind == FaultKind::CoreTransient ||
                   e.kind == FaultKind::CorePermanent) {
            plan.coreEvents[e.target].push_back(e);
            any_event = true;
        }
    }
    bool all_one = true;
    for (double f : plan.stragglerFactor)
        if (f != 1.0)
            all_one = false;
    if (!any_event && all_one) {
        plan.stragglerFactor.clear();
        plan.coreEvents.clear();
    }
    return plan;
}

} // namespace resilience
} // namespace ascend
