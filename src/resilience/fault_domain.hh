/**
 * @file
 * Correlated fault domains: replica -> rack -> power domain.
 *
 * FaultSchedule (fault_schedule.hh) injects *independent* per-target
 * faults; real fleets die by correlation — a rack PDU trip or a
 * power-domain brownout takes every member out in the same instant.
 * This module adds the topology and a correlated generator: a seeded
 * *domain-level* event stream is expanded deterministically into one
 * FaultEvent per member, all at the same timeSec, and merged with an
 * optional independent background spec. The result is an ordinary
 * FaultSchedule, so every existing consumer (serving::runFleet,
 * cluster::runElastic, soc fault plans) consumes correlated loss with
 * zero changes to its event loop.
 *
 * Determinism contract (same as fault_schedule.hh): domain events are
 * quasi-periodic with uniform jitter from a private RNG stream per
 * (seed, stream, domain); pure arithmetic, no libm, no wall clock.
 * An empty CorrelatedFaultSpec expands to an empty schedule, and every
 * fault-aware path reproduces its fault-free twin bit-for-bit on an
 * empty schedule.
 */

#ifndef ASCEND_RESILIENCE_FAULT_DOMAIN_HH
#define ASCEND_RESILIENCE_FAULT_DOMAIN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "resilience/fault_schedule.hh"

namespace ascend {
namespace resilience {

/**
 * Placement of replicas into racks and racks into power domains.
 * Replica r lives in rack r / replicasPerRack; rack k in power domain
 * k / racksPerPowerDomain. The last rack / domain may be partial.
 */
struct DomainTopology
{
    unsigned replicas = 0;
    unsigned replicasPerRack = 4;
    unsigned racksPerPowerDomain = 2;

    unsigned racks() const;
    unsigned powerDomains() const;
    unsigned rackOf(unsigned replica) const;
    unsigned powerDomainOf(unsigned replica) const;

    /** Replica indices in @p rack, ascending. */
    std::vector<unsigned> rackMembers(unsigned rack) const;

    /** Replica indices in power domain @p domain, ascending. */
    std::vector<unsigned> powerDomainMembers(unsigned domain) const;
};

/**
 * Rates and shapes of domain-correlated failure. All rates default to
 * zero: a default spec is the fault-free case. Domain rates are mean
 * events per *domain* per sim-second; each event expands into one
 * FaultEvent per member at the identical instant.
 */
struct CorrelatedFaultSpec
{
    std::uint64_t seed = 0xfa117;
    double horizonSec = 1.0;
    DomainTopology topology;

    /// @{ Rack-level events (every member of the rack is hit).
    double rackOutagePerSec = 0;  ///< CoreTransient outage per member
    double rackOutageSec = 0.05;  ///< outage window
    double rackFailPerSec = 0;    ///< CorePermanent death per member
    double rackDegradePerSec = 0; ///< CoreStraggler window per member
    double rackDegradeSec = 0.1;
    double rackDegradeFactor = 1.5;
    /// @}

    /// @{ Power-domain events (every member of every rack is hit).
    double powerOutagePerSec = 0; ///< CoreTransient outage per member
    double powerOutageSec = 0.2;
    /// @}

    /**
     * One deterministic domain strike — the headline chaos scenario:
     * at exactly rackStrikeAtSec (< 0 = off) a seed-chosen rack
     * suffers rackStrikeKind on every member. CoreTransient strikes
     * clear after rackStrikeOutageSec; CorePermanent ones never do.
     */
    double rackStrikeAtSec = -1;
    FaultKind rackStrikeKind = FaultKind::CoreTransient;
    double rackStrikeOutageSec = 0.05;

    /**
     * Independent per-replica background faults layered under the
     * correlated ones (cores is forced to topology.replicas).
     */
    FaultSpec background;

    /** True when no rate or strike can produce an event. */
    bool empty() const;
};

/** Exact serialization of @p spec (cache keys / run fingerprints). */
std::string fingerprint(const CorrelatedFaultSpec &spec);

/**
 * Deterministically expand @p spec into a concrete FaultSchedule:
 * domain events become per-member FaultEvents at one shared instant,
 * merged with the background schedule and canonically sorted. The
 * schedule's spec() carries cores = topology.replicas and the
 * correlated fingerprint overrides the spec-level one.
 */
FaultSchedule generateCorrelated(const CorrelatedFaultSpec &spec);

/**
 * Named chaos profiles for benches and CI, selectable through the
 * ASCEND_FAULT_PROFILE environment variable:
 *  - "none":  empty (the fault-free twin);
 *  - "rack":  one rack-wide transient outage striking at
 *             0.3 * horizon for 0.1 * horizon;
 *  - "power": the rack strike plus a power-domain outage rate of one
 *             expected event over the horizon.
 * Returns false (and leaves @p spec empty) for unknown names.
 */
bool applyFaultProfile(CorrelatedFaultSpec &spec,
                       const std::string &name);

/**
 * ASCEND_FAULT_PROFILE, or @p fallback when unset/empty. The caller
 * feeds the result to applyFaultProfile.
 */
std::string faultProfileFromEnv(const std::string &fallback);

} // namespace resilience
} // namespace ascend

#endif // ASCEND_RESILIENCE_FAULT_DOMAIN_HH
