/**
 * @file
 * Deterministic fault schedules for degraded-mode simulation.
 *
 * At the paper's top scale (2048 chips, Section 4.2 / Fig. 15) the
 * fault-free case is the exception: link flaps, straggler cores and
 * memory errors dominate delivered throughput. This module generates
 * the *when and what* of failure as pure data — a seeded, sorted list
 * of FaultEvents — which the fault-aware simulation paths
 * (cluster/fault_collective, soc/chip_sim, memory/dram ECC) consume.
 *
 * Determinism contract:
 *  - a FaultSpec (rates + seed) maps to exactly one FaultSchedule on
 *    every platform. Event times are quasi-periodic with uniform
 *    jitter, t_j = (j + u_j) / rate, computed with arithmetic only
 *    (no libm transcendentals whose last bits differ across
 *    implementations), so schedules and everything derived from them
 *    are byte-stable;
 *  - generation never consults wall-clock, thread count or iteration
 *    order: per-target RNG streams make the schedule independent of
 *    how many cores/links are queried or in what order;
 *  - an all-zero spec yields an empty schedule, and every fault-aware
 *    path reproduces its fault-free twin bit-for-bit on an empty
 *    schedule (asserted in tests).
 */

#ifndef ASCEND_RESILIENCE_FAULT_SCHEDULE_HH
#define ASCEND_RESILIENCE_FAULT_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ascend {
namespace resilience {

/** Fault taxonomy (DESIGN.md section "Resilience layer"). */
enum class FaultKind {
    CoreTransient,    ///< core drops out, repairs, restarts its task
    CorePermanent,    ///< core dies; remaining work is re-dispatched
    CoreStraggler,    ///< core runs compute slower by `severity`
    LinkDegraded,     ///< link bandwidth multiplied by `severity` < 1
    LinkDown,         ///< link unusable for `durationSec`
    EccCorrectable,   ///< DRAM ECC scrub stall, transparent
    EccUncorrectable, ///< DRAM data loss; needs checkpoint/restart
};

const char *toString(FaultKind kind);

/** One scheduled fault. */
struct FaultEvent
{
    FaultKind kind = FaultKind::CoreTransient;
    double timeSec = 0;     ///< when the fault strikes
    unsigned target = 0;    ///< core / link index it hits
    double durationSec = 0; ///< outage / repair window (0 = forever)
    double severity = 1.0;  ///< slowdown (>1) or bandwidth factor (<1)
};

/**
 * Rates and shape parameters the generator samples from. All rates
 * default to zero: a default FaultSpec is the fault-free case.
 */
struct FaultSpec
{
    std::uint64_t seed = 0x5eed;
    double horizonSec = 1.0; ///< schedule covers [0, horizonSec)
    unsigned cores = 0;      ///< targets for core faults
    unsigned links = 0;      ///< targets for link faults

    /// @{ Mean events per target per second.
    double coreTransientPerSec = 0;
    double corePermanentPerSec = 0;
    double linkDegradePerSec = 0;
    double linkDownPerSec = 0;
    /// @}

    /**
     * Mean uncorrectable-ECC events per second for the whole system
     * (not per target): each one costs a checkpoint rollback.
     */
    double eccUncorrectablePerSec = 0;

    /// @{ Event shapes.
    double coreRepairSec = 1e-3;    ///< transient-failure repair time
    double linkOutageSec = 5e-4;    ///< LinkDown outage window
    double linkDegradeSec = 2e-3;   ///< LinkDegraded window
    double linkDegradeFactor = 0.5; ///< bandwidth multiplier while degraded
    /// @}

    /// @{ Stragglers: a per-core chance of running slow for the whole
    /// horizon (skewed DVFS bins, shared-host noise).
    double stragglerFraction = 0;
    double stragglerSlowdown = 1.5;
    /// @}

    /** True when no rate can produce an event. */
    bool empty() const;
};

/**
 * The generated schedule: FaultEvents sorted by (time, target, kind).
 */
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    /** Deterministically expand @p spec into concrete events. */
    static FaultSchedule generate(const FaultSpec &spec);

    /**
     * Wrap externally generated @p events (canonically re-sorted)
     * under the metadata of @p meta and the identity @p fingerprint.
     * The correlated generator (fault_domain.hh) builds schedules this
     * way: consumers keep reading spec() for fleet-facing metadata
     * (cores, horizon), while fingerprint() reports the override so
     * correlated runs never alias independent ones in cache keys or
     * checkpoint identities.
     */
    static FaultSchedule fromEvents(const FaultSpec &meta,
                                    std::vector<FaultEvent> events,
                                    std::string fingerprint);

    const FaultSpec &spec() const { return spec_; }
    const std::vector<FaultEvent> &events() const { return events_; }
    bool empty() const { return events_.empty(); }

    /** Events of core-kind faults hitting @p core, in time order. */
    std::vector<FaultEvent> coreEvents(unsigned core) const;

    /** Events of link-kind faults hitting @p link, in time order. */
    std::vector<FaultEvent> linkEvents(unsigned link) const;

    /** Straggler slowdown of @p core (1.0 when not a straggler). */
    double stragglerFactor(unsigned core) const;

    /**
     * Exact serialization of the generating spec (or the fromEvents
     * override); mixed into SimCache keys so faulty runs never alias
     * fault-free entries.
     */
    std::string fingerprint() const;

  private:
    FaultSpec spec_;
    std::vector<FaultEvent> events_;
    std::string fingerprintOverride_; ///< fromEvents identity
};

/** fingerprint of a spec without generating the schedule. */
std::string fingerprint(const FaultSpec &spec);

/**
 * Per-core fault plan for soc::runChipSim: the chip-scope slice of a
 * FaultSchedule (core events plus straggler factors).
 */
struct ChipFaultPlan
{
    /** Per-core compute slowdown, >= 1; empty means "all 1.0". */
    std::vector<double> stragglerFactor;
    /** Per-core CoreTransient / CorePermanent events, time-sorted. */
    std::vector<std::vector<FaultEvent>> coreEvents;

    bool empty() const;

    /** Slice @p schedule for a chip with @p cores cores. */
    static ChipFaultPlan fromSchedule(const FaultSchedule &schedule,
                                      unsigned cores);
};

} // namespace resilience
} // namespace ascend

#endif // ASCEND_RESILIENCE_FAULT_SCHEDULE_HH
