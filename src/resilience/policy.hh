/**
 * @file
 * Recovery-policy models: what the stack *does* when a scheduled
 * fault strikes.
 *
 * Three mechanisms cover the production playbook:
 *  - RetryPolicy: bounded retries with exponential backoff and a
 *    per-attempt timeout, applied to collective steps whose link is
 *    down (cluster/fault_collective);
 *  - CheckpointPolicy: periodic checkpoint cost plus expected rework
 *    on an uncorrectable error (half an interval is lost on average,
 *    then a restart);
 *  - DegradedMode: when retries are exhausted, either continue at
 *    reduced bandwidth (graceful degradation) or fail-stop and report
 *    the time-to-failure.
 *
 * Everything here is closed-form arithmetic on doubles: deterministic,
 * thread-count independent, and exactly zero-cost when no fault fires.
 */

#ifndef ASCEND_RESILIENCE_POLICY_HH
#define ASCEND_RESILIENCE_POLICY_HH

#include <cstdint>
#include <string>

namespace ascend {
namespace resilience {

/** What to do once retries are exhausted. */
enum class DegradedMode {
    ContinueDegraded, ///< keep going at `degradedBandwidthFactor`
    FailStop,         ///< abort the run; report time-to-failure
};

const char *toString(DegradedMode mode);

/** Bounded retry with exponential backoff. */
struct RetryPolicy
{
    unsigned maxRetries = 3;
    double timeoutSec = 1e-3;       ///< time burned per failed attempt
    double backoffBaseSec = 1e-4;   ///< sleep after the first failure
    double backoffMultiplier = 2.0; ///< growth per further failure
    double backoffCapSec = 1e-1;    ///< backoff saturation
    /** Bandwidth multiplier once ContinueDegraded kicks in. */
    double degradedBandwidthFactor = 0.25;
    /**
     * Deadline budget: retry number n is permitted only while the
     * cumulative retry delay through n (every failed attempt's
     * timeout plus its backoff sleep) stays within this budget.
     * The serving layer sets it to the request's QoS deadline so a
     * request never burns retries it cannot possibly spend and still
     * answer in time. 0 disables the budget (maxRetries alone rules).
     */
    double giveUpAfterSeconds = 0;

    /**
     * Seeded backoff jitter, off by default. When > 0, retry number n
     * of request key k sleeps retryDelaySeconds * (1 - f * u) where
     * u in [0, 1) is a deterministic hash of (jitterSeed, k, n) and f
     * is this fraction clamped to [0, 1]. A correlated fault drops
     * many requests at one instant; identical backoff re-offers them
     * in one synchronized wave — the seed of a retry storm. Jitter
     * de-synchronizes the wave while only ever *shrinking* a sleep,
     * so every closed form above (retryCumulativeSeconds as an upper
     * bound, retryPermitted, retriesWithinBudget) still holds.
     */
    double jitterFraction = 0;
    std::uint64_t jitterSeed = 0x5eed;
};

/**
 * Deterministic jitter unit u in [0, 1) for (policy.jitterSeed,
 * @p key, @p attempt). Pure arithmetic (FNV-1a bits into a mantissa);
 * byte-stable across platforms and call order.
 */
double retryJitterUnit(const RetryPolicy &policy, std::uint64_t key,
                       unsigned attempt);

/**
 * retryDelaySeconds scaled by the jitter of (@p key, @p attempt).
 * Bit-identical to retryDelaySeconds when jitterFraction is 0.
 */
double retryDelaySecondsJittered(const RetryPolicy &policy,
                                 unsigned attempt, std::uint64_t key);

/** Backoff sleep before retry number @p attempt (0-based). */
double retryDelaySeconds(const RetryPolicy &policy, unsigned attempt);

/**
 * Cumulative delay of the first @p attempts failed tries: each one
 * costs timeoutSec plus its backoff sleep. Closed-form over the
 * geometric prefix and the cap-saturated tail, so huge attempt counts
 * cost O(saturation point), never O(attempts).
 */
double retryCumulativeSeconds(const RetryPolicy &policy,
                              unsigned attempts);

/**
 * May retry number @p attempt (0-based) be launched after @p attempt
 * failures? False once attempt >= maxRetries, and — when
 * giveUpAfterSeconds is set — once the cumulative delay through this
 * retry would exceed the budget.
 */
bool retryPermitted(const RetryPolicy &policy, unsigned attempt);

/**
 * Retries the policy can actually launch: the largest n <= maxRetries
 * with retryCumulativeSeconds(n) within the deadline budget.
 */
unsigned retriesWithinBudget(const RetryPolicy &policy);

/** Checkpoint/restart cost model for uncorrectable errors. */
struct CheckpointPolicy
{
    bool enabled = false;
    double intervalSec = 60.0; ///< checkpoint cadence
    double saveSec = 2.0;      ///< cost of writing one checkpoint
    double restartSec = 10.0;  ///< reload + re-setup after a loss
};

/**
 * Expected wall time to finish @p work_sec of compute when
 * uncorrectable errors strike at @p events_per_sec and @p policy
 * governs recovery. With checkpointing disabled, any error loses all
 * progress so far (modeled as restarting half the work on average);
 * enabled, each error loses restartSec plus half an interval, and
 * every interval pays saveSec. Exactly @p work_sec when the error
 * rate is zero and checkpointing is disabled.
 */
double timeWithCheckpointRestart(double work_sec, double events_per_sec,
                                 const CheckpointPolicy &policy);

/**
 * Per-session degraded-mode knobs threaded through runtime::SimSession.
 * Fingerprinted into every cache key, so faulty runs and fault-free
 * runs can never serve each other's memoized results.
 */
struct ResilienceOptions
{
    bool enabled = false;
    /** Seed for fault schedules derived on behalf of this session. */
    std::uint64_t faultSeed = 0;
    /**
     * Straggler derate applied to simulated layer latencies (wall
     * clock stretches by this factor; >= 1). 1.0 is a no-op and
     * reproduces the fault-free result bit-for-bit.
     */
    double stragglerSlowdown = 1.0;
    /**
     * Free-form scenario tag (e.g. an elastic-run fingerprint).
     * Mixed verbatim into cache keys so sessions simulating different
     * elastic/chaos configurations never alias each other.
     */
    std::string scenario;
};

} // namespace resilience
} // namespace ascend

#endif // ASCEND_RESILIENCE_POLICY_HH
