/**
 * @file
 * The elastic cluster-run state machine — a des::Kernel client.
 *
 * The engine is deliberately a pure function of (immutable inputs,
 * RunCheckpoint state): every mutation lives in the RunCheckpoint,
 * every cost is serial double arithmetic, and nothing reads the
 * wall clock or thread count — which is what makes kill-and-resume
 * byte-identical and lets bench_chaos enforce it with real SIGKILLs.
 *
 * Each training step is a short chain of kernel events at the same
 * sim time, tie-broken by priority: a quiescent marker (0) whose hook
 * takes the cadenced checkpoint, a node-failure poll (1), an ECC
 * rollback poll (2), and the step itself (3). The poll events apply
 * ONE due fault per dispatch and re-arm themselves: recovery costs
 * advance the sim clock mid-batch, which can make further faults due,
 * and one-at-a-time dispatch reproduces that cascade exactly. Faults
 * are deliberately NOT scheduled at their strike times — the engine
 * batches "every node failure due by now, then every rollback due by
 * now" at each step boundary, and the event chain preserves that
 * order. The kernel clock shadows s.simTimeSec via advanceTo().
 *
 * Checkpoints ride the kernel's quiescent points: the onQuiescent
 * hook fires only between event dispatches, when no handler is
 * mid-flight and the RunCheckpoint is self-consistent — the saved
 * state is a fixed point of the chain, so a SIGKILL after any save
 * resumes into a byte-identical continuation (bench_chaos enforces
 * this with real kills at event boundaries).
 */

#include "cluster/elastic_run.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <sstream>

#include "common/logging.hh"
#include "des/kernel.hh"
#include "obs/tracer.hh"
#include "runtime/perf_stats.hh"

namespace ascend {
namespace cluster {

using resilience::CheckpointStore;
using resilience::FaultEvent;
using resilience::FaultKind;
using resilience::FaultSchedule;
using resilience::RunCheckpoint;

namespace {

/** Sentinel for a shrunk (unreplaced) slot in activeNodes. */
constexpr std::uint32_t kDeadSlot = 0xffffffffu;

void
putBits(std::string &s, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    s += std::to_string(bits);
    s += ',';
}

void
putU64(std::string &s, std::uint64_t v)
{
    s += std::to_string(v);
    s += ',';
}

/** Recovery-phase span on the Cluster domain's elastic track (2). */
void
traceRecovery(const char *name, double t0_sec, double t1_sec,
              Bytes bytes)
{
    if (obs::Tracer *tracer = obs::Tracer::current()) {
        const std::uint64_t t0 =
            std::uint64_t(std::llround(t0_sec * 1e9));
        const std::uint64_t t1 =
            std::uint64_t(std::llround(t1_sec * 1e9));
        tracer->span(obs::Domain::Cluster, 2, name, t0,
                     t1 > t0 ? t1 - t0 : 0, bytes);
    }
}

std::string
formatSeconds(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9e", v);
    return buf;
}

} // anonymous namespace

std::string
fingerprint(const ElasticOptions &options)
{
    std::string s;
    s.reserve(192);
    s += "elopt:";
    putU64(s, options.spareNodes);
    putU64(s, options.stateBytes);
    putBits(s, options.failoverRestartSec);
    putBits(s, options.reshardRestartSec);
    putU64(s, options.speculation ? 1 : 0);
    putU64(s, options.checkpoint.enabled ? 1 : 0);
    putBits(s, options.checkpoint.intervalSec);
    putBits(s, options.checkpoint.saveSec);
    putBits(s, options.checkpoint.restartSec);
    putU64(s, options.checkpointEverySteps);
    return s;
}

std::string
runFingerprint(const TrainingJob &job, const ClusterConfig &cluster,
               unsigned chips, unsigned num_steps,
               const FaultSchedule &faults,
               const resilience::RetryPolicy &retry,
               resilience::DegradedMode mode,
               const ElasticOptions &options)
{
    std::string s;
    s.reserve(768);
    s += "elastic-run:";
    putU64(s, chips);
    putU64(s, num_steps);
    putBits(s, job.stepSecondsPerChip);
    putU64(s, job.gradientBytes);
    putU64(s, job.samplesPerChipStep);
    putBits(s, job.overlapFraction);
    putU64(s, retry.maxRetries);
    putBits(s, retry.timeoutSec);
    putBits(s, retry.backoffBaseSec);
    putBits(s, retry.backoffMultiplier);
    putBits(s, retry.backoffCapSec);
    putBits(s, retry.giveUpAfterSeconds);
    putBits(s, retry.degradedBandwidthFactor);
    putU64(s, std::uint64_t(mode));
    s += fingerprint(options);
    // The schedule's own fingerprint, not fingerprint(spec()):
    // correlated schedules (resilience::generateCorrelated) carry an
    // identity their nominal spec alone cannot reproduce.
    s += faults.fingerprint();
    s += clusterConfigToString(cluster);
    return s;
}

std::string
ElasticRunResult::report() const
{
    std::ostringstream os;
    os << "elastic run: "
       << (completed ? "completed" : halted ? "halted" : "failed")
       << "\n";
    os << "  seconds        " << formatSeconds(seconds) << "\n";
    os << "  steps done     " << stepsDone << "\n";
    os << "  final nodes    " << finalNodes << "\n";
    os << "  final chips    " << finalChips << "\n";
    os << "  failovers      " << counters.failovers << "\n";
    os << "  shrinks        " << counters.shrinks << "\n";
    os << "  rollbacks      " << counters.rollbacks << "\n";
    os << "  replayed steps " << counters.replayedSteps << "\n";
    os << "  speculations   " << counters.speculations << "\n";
    os << "  retries        " << counters.retries << "\n";
    os << "  degraded steps " << counters.degradedSteps << "\n";
    os << "  spares used    " << counters.sparesUsed << "\n";
    os << "  checkpoints    " << counters.checkpointsSaved << "\n";
    os << "events:\n" << eventLog;
    return os.str();
}

namespace {

/**
 * All state and handlers of one elastic run, driven as a des::Kernel
 * event chain (see the file comment for the chain layout). Mutations
 * touch only `s` (the checkpointable state) plus the this-process
 * halt counter; terminal handlers record the run's outcome in
 * `final_` instead of re-arming the chain.
 */
struct Engine
{
    const TrainingJob &job;
    const ClusterConfig &cluster;
    unsigned chips;
    unsigned num_steps;
    const FaultSchedule &faults;
    const resilience::RetryPolicy &retry;
    resilience::DegradedMode mode;
    const ElasticOptions &options;

    unsigned perServer = 0;
    unsigned initialNodes = 0;
    unsigned spareBase = 0;
    std::vector<FaultEvent> nodeFail;
    std::vector<FaultEvent> ecc;
    std::unique_ptr<CheckpointStore> store;

    RunCheckpoint s;
    std::uint64_t eventIndex = 0; ///< lines in s.eventLog
    unsigned eventsSeen = 0;      ///< this process only (halt hook)
    bool haltRequested = false;
    std::optional<ElasticRunResult> final_; ///< terminal outcome

    void
    setUp()
    {
        simAssert(chips > 0, "elastic run needs at least one chip");
        perServer = cluster.server.chips;
        initialNodes = unsigned(ceilDiv(chips, perServer));
        for (const FaultEvent &e : faults.events()) {
            if (e.kind == FaultKind::CorePermanent)
                nodeFail.push_back(e);
            else if (e.kind == FaultKind::EccUncorrectable)
                ecc.push_back(e);
        }
        // Spares are physical machines outside the schedule's target
        // set: they can neither fail nor straggle.
        spareBase = std::max(initialNodes, faults.spec().cores);

        s.runId = runFingerprint(job, cluster, chips, num_steps,
                                 faults, retry, mode, options);
        s.activeNodes.resize(initialNodes);
        for (unsigned i = 0; i < initialNodes; ++i)
            s.activeNodes[i] = i;
        s.sparesLeft = options.spareNodes;

        if (!options.checkpointDir.empty()) {
            store = std::make_unique<CheckpointStore>(
                options.checkpointDir);
            RunCheckpoint loaded;
            if (store->load(loaded, s.runId))
                s = std::move(loaded);
        }
        for (char c : s.eventLog)
            if (c == '\n')
                ++eventIndex;
    }

    /** Chips the slot originally contributed (last slot is partial). */
    unsigned
    slotChips(unsigned slot) const
    {
        const std::uint64_t base = std::uint64_t(slot) * perServer;
        return unsigned(std::min<std::uint64_t>(perServer,
                                                chips - base));
    }

    unsigned
    aliveNodes() const
    {
        unsigned n = 0;
        for (std::uint32_t phys : s.activeNodes)
            if (phys != kDeadSlot)
                ++n;
        return n;
    }

    unsigned
    aliveChips() const
    {
        unsigned n = 0;
        for (unsigned i = 0; i < unsigned(s.activeNodes.size()); ++i)
            if (s.activeNodes[i] != kDeadSlot)
                n += slotChips(i);
        return n;
    }

    void
    appendEvent(const std::string &line)
    {
        s.eventLog += line;
        s.eventLog += '\n';
        ++eventIndex;
        ++eventsSeen;
        if (options.onEvent)
            options.onEvent(line);
        if (options.haltAfterEvents &&
            eventsSeen >= options.haltAfterEvents)
            haltRequested = true;
    }

    std::string
    eventPrefix() const
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "[e%05llu] t=%s ",
                      static_cast<unsigned long long>(eventIndex),
                      formatSeconds(s.simTimeSec).c_str());
        return buf;
    }

    /** True while another node failure is due at the current time. */
    bool
    nodeFailureDue() const
    {
        return s.nodeEventCursor < nodeFail.size() &&
               nodeFail[s.nodeEventCursor].timeSec <= s.simTimeSec;
    }

    /**
     * Apply every node-permanent failure due at the next due instant
     * (one poll dispatch's worth). Independent schedules place one
     * event per instant and behave exactly as before. A correlated
     * domain event (a rack or power strike from fault_domain.hh)
     * lands several deaths at one shared instant; their recoveries
     * proceed in parallel — each spare receives its shard over its
     * own uplink — so the step pays the slowest single recovery, not
     * the serialized sum. @return true when the whole world died.
     */
    bool
    applyOneNodeFailure()
    {
        const double due = nodeFail[s.nodeEventCursor].timeSec;
        const double t0 = s.simTimeSec;
        double cost = 0;
        struct PendingTrace
        {
            const char *name;
            double endSec;
            std::uint64_t bytes;
        };
        std::vector<PendingTrace> traces;
        while (s.nodeEventCursor < nodeFail.size() &&
               nodeFail[s.nodeEventCursor].timeSec == due) {
            const FaultEvent e = nodeFail[s.nodeEventCursor++];
            unsigned slot = kDeadSlot;
            for (unsigned i = 0;
                 i < unsigned(s.activeNodes.size()); ++i)
                if (s.activeNodes[i] == e.target) {
                    slot = i;
                    break;
                }
            if (slot == kDeadSlot)
                continue; // machine already dead or replaced
            if (s.sparesLeft > 0) {
                const unsigned spare =
                    spareBase +
                    unsigned(options.spareNodes - s.sparesLeft);
                --s.sparesLeft;
                s.activeNodes[slot] = spare;
                // Ship the shard's state to the warm spare over its
                // fat-tree uplink, then re-setup.
                double one = options.failoverRestartSec;
                if (options.stateBytes)
                    one += double(options.stateBytes) /
                               cluster.netBytesPerSec +
                           cluster.netLatencySec;
                ++s.counters.failovers;
                ++s.counters.sparesUsed;
                appendEvent(eventPrefix() + "failover slot " +
                            std::to_string(slot) + " phys " +
                            std::to_string(e.target) + " -> spare " +
                            std::to_string(spare) + " cost " +
                            formatSeconds(one));
                traces.push_back({"elastic.failover", t0 + one,
                                  options.stateBytes});
                cost = std::max(cost, one);
            } else {
                s.activeNodes[slot] = kDeadSlot;
                ++s.counters.shrinks;
                ++s.counters.spareExhausted;
                const unsigned survivors = aliveNodes();
                if (survivors == 0) {
                    appendEvent(eventPrefix() +
                                "world died at slot " +
                                std::to_string(slot));
                    return true;
                }
                // Survivors exchange the dead shard: one allreduce
                // of the state over the remaining uplinks, then
                // re-setup with the re-derived (smaller) collective
                // schedule.
                const double one =
                    options.reshardRestartSec +
                    ringAllreduceSeconds(options.stateBytes,
                                         survivors,
                                         cluster.netBytesPerSec,
                                         cluster.netLatencySec);
                appendEvent(eventPrefix() + "shrink slot " +
                            std::to_string(slot) + " phys " +
                            std::to_string(e.target) + " -> " +
                            std::to_string(survivors) +
                            " nodes cost " + formatSeconds(one));
                traces.push_back({"elastic.reshard", t0 + one,
                                  options.stateBytes});
                cost = std::max(cost, one);
            }
        }
        if (traces.empty())
            return false; // every target was already dead
        s.simTimeSec = t0 + cost;
        for (const PendingTrace &tr : traces)
            traceRecovery(tr.name, t0, tr.endSec, tr.bytes);
        return false;
    }

    /** True while another ECC rollback is due at the current time. */
    bool
    rollbackDue() const
    {
        return s.eccEventCursor < ecc.size() &&
               ecc[s.eccEventCursor].timeSec <= s.simTimeSec;
    }

    /** Roll back through the single next due uncorrectable error. */
    void
    applyOneRollback()
    {
        ++s.eccEventCursor;
        const double t0 = s.simTimeSec;
        const std::uint64_t lost = s.nextStep - s.lastCheckpointStep;
        const std::string line =
            eventPrefix() + "rollback to step " +
            std::to_string(static_cast<unsigned long long>(
                s.lastCheckpointStep)) +
            " replay " +
            std::to_string(static_cast<unsigned long long>(lost)) +
            " steps";
        s.nextStep = s.lastCheckpointStep;
        s.simTimeSec += options.checkpoint.restartSec;
        ++s.counters.rollbacks;
        s.counters.replayedSteps += lost;
        traceRecovery("elastic.rollback", t0, s.simTimeSec, 0);
        appendEvent(line);
    }

    /** Take a (logical + on-disk) checkpoint when the cadence is due. */
    void
    maybeCheckpoint()
    {
        if (haltRequested || !options.checkpoint.enabled)
            return;
        const bool interval_due =
            options.checkpoint.intervalSec > 0 &&
            s.simTimeSec - s.lastCheckpointSec >=
                options.checkpoint.intervalSec;
        const bool step_due =
            options.checkpointEverySteps > 0 &&
            s.nextStep - s.lastCheckpointStep >=
                options.checkpointEverySteps;
        if (!interval_due && !step_due)
            return;
        const double t0 = s.simTimeSec;
        const std::string line =
            eventPrefix() + "checkpoint at step " +
            std::to_string(
                static_cast<unsigned long long>(s.nextStep)) +
            " cost " + formatSeconds(options.checkpoint.saveSec);
        if (options.checkpoint.saveSec > 0)
            s.simTimeSec += options.checkpoint.saveSec;
        ++s.sequence;
        ++s.counters.checkpointsSaved;
        s.lastCheckpointStep = s.nextStep;
        s.lastCheckpointSec = s.simTimeSec;
        traceRecovery("elastic.checkpoint", t0, s.simTimeSec, 0);
        appendEvent(line);
        if (store)
            store->save(s);
    }

    /** Worst straggler slowdown among the surviving machines. */
    double
    stragglerFactor() const
    {
        double factor = 1.0;
        for (std::uint32_t phys : s.activeNodes)
            if (phys != kDeadSlot)
                factor =
                    std::max(factor, faults.stragglerFactor(phys));
        return factor;
    }

    ElasticRunResult
    result(bool completed) const
    {
        ElasticRunResult r;
        r.seconds = s.simTimeSec;
        r.stepsDone = unsigned(s.nextStep);
        r.completed = completed && !haltRequested;
        r.halted = haltRequested;
        r.finalNodes = aliveNodes();
        r.finalChips = aliveChips();
        r.retries = unsigned(s.counters.retries);
        r.degradedSteps = unsigned(s.counters.degradedSteps);
        r.counters = s.counters;
        r.eventLog = s.eventLog;
        return r;
    }

    /**
     * Arm one step's event chain at the current sim time. The
     * quiescent marker dispatches first (priority 0): the kernel's
     * quiescent hook checkpoints there, so the saved state is a
     * fixed point of the chain head. A resumed run re-enters here
     * with the cadence trivially not-due (the save itself reset it),
     * so it replays exactly the events the uninterrupted run
     * dispatched after the save — including failures and rollbacks
     * that became due during the saveSec window.
     */
    void
    armStep(des::Kernel &k)
    {
        k.scheduleQuiescent(k.now(), 0);
        k.schedule(k.now(), 1, "elastic.poll-failures",
                   [this](des::Kernel &kk) { pollFailures(kk); });
    }

    /**
     * Node-failure poll event: apply ONE due failure, re-arm while
     * more are due (recovery costs advance the clock, which can make
     * more due), then hand over to the rollback poll.
     */
    void
    pollFailures(des::Kernel &k)
    {
        if (!haltRequested && nodeFailureDue()) {
            const bool world_died = applyOneNodeFailure();
            k.advanceTo(s.simTimeSec);
            if (!world_died) {
                k.schedule(k.now(), 1, "elastic.poll-failures",
                           [this](des::Kernel &kk) {
                               pollFailures(kk);
                           });
                return;
            }
        }
        if (haltRequested) {
            final_ = result(false);
            return;
        }
        if (aliveNodes() == 0) {
            final_ = finish(result(false));
            return;
        }
        k.schedule(k.now(), 2, "elastic.poll-rollbacks",
                   [this](des::Kernel &kk) { pollRollbacks(kk); });
    }

    /** ECC rollback poll event: one rollback per dispatch, then step. */
    void
    pollRollbacks(des::Kernel &k)
    {
        if (!haltRequested && rollbackDue()) {
            applyOneRollback();
            k.advanceTo(s.simTimeSec);
            k.schedule(k.now(), 2, "elastic.poll-rollbacks",
                       [this](des::Kernel &kk) { pollRollbacks(kk); });
            return;
        }
        if (haltRequested) {
            final_ = result(false);
            return;
        }
        k.schedule(k.now(), 3, "elastic.step",
                   [this](des::Kernel &kk) { stepOnce(kk); });
    }

    /** The training-step event: run one step, commit, re-arm. */
    void
    stepOnce(des::Kernel &k)
    {
        const unsigned chips_now = aliveChips();
        // Re-shard: the same global batch over fewer chips means
        // proportionally more compute per chip. Guarded so the
        // full-world path runs the exact fault-free arithmetic.
        TrainingJob cur = job;
        if (chips_now != chips)
            cur.stepSecondsPerChip =
                job.stepSecondsPerChip *
                (double(chips) / double(chips_now));
        const FaultyCollectiveResult step = stepSecondsWithFaults(
            cur, cluster, chips_now, faults, retry, mode,
            s.simTimeSec);
        s.counters.retries += step.retries;
        s.counters.degradedSteps += step.degradedSteps;
        if (!step.completed) {
            s.simTimeSec += step.seconds; // time-to-failure
            k.advanceTo(s.simTimeSec);
            final_ = finish(result(false));
            return;
        }
        double step_sec = step.seconds;
        const double factor = stragglerFactor();
        if (factor > 1.0) {
            // The straggler stretches the compute phase; the
            // speculative copy re-dispatches that work elsewhere
            // at one retry's cost and the cheaper twin commits.
            const double slow =
                step_sec + cur.stepSecondsPerChip * (factor - 1.0);
            double chosen = slow;
            if (options.speculation) {
                const double spec =
                    step_sec + retry.timeoutSec +
                    resilience::retryDelaySeconds(retry, 0);
                if (spec < slow) {
                    chosen = spec;
                    ++s.counters.speculations;
                    traceRecovery("elastic.speculate", s.simTimeSec,
                                  s.simTimeSec + chosen, 0);
                    appendEvent(
                        eventPrefix() + "speculate step " +
                        std::to_string(
                            static_cast<unsigned long long>(
                                s.nextStep)) +
                        " saved " + formatSeconds(slow - spec));
                }
            }
            step_sec = chosen;
            if (haltRequested) {
                final_ = result(false); // step not committed
                return;
            }
        }
        s.simTimeSec += step_sec;
        ++s.nextStep;
        k.advanceTo(s.simTimeSec);
        if (s.nextStep < num_steps)
            armStep(k);
    }

    ElasticRunResult
    run()
    {
        setUp();
        des::Kernel kernel;
        // Checkpoints ride the kernel's quiescent points: no event
        // is mid-dispatch there, so the RunCheckpoint is consistent
        // by construction.
        kernel.onQuiescent([this](des::Kernel &k) {
            maybeCheckpoint();
            k.advanceTo(s.simTimeSec);
        });
        kernel.advanceTo(s.simTimeSec); // resumes re-enter mid-run
        if (s.nextStep < num_steps)
            armStep(kernel);
        kernel.run();
        if (final_)
            return *final_;
        return finish(result(true));
    }

    ElasticRunResult
    finish(const ElasticRunResult &r) const
    {
        if (store && r.completed)
            store->remove();
        runtime::ResilienceCounters delta;
        delta.elasticRuns = 1;
        delta.failovers = r.counters.failovers;
        delta.shrinks = r.counters.shrinks;
        delta.rollbacks = r.counters.rollbacks;
        delta.replayedSteps = r.counters.replayedSteps;
        delta.speculations = r.counters.speculations;
        delta.sparesUsed = r.counters.sparesUsed;
        delta.spareExhausted = r.counters.spareExhausted;
        delta.checkpointsSaved = r.counters.checkpointsSaved;
        runtime::chargeResilience(delta);
        return r;
    }
};

} // anonymous namespace

ElasticRunResult
runElastic(const TrainingJob &job, const ClusterConfig &cluster,
           unsigned chips, unsigned num_steps,
           const FaultSchedule &faults,
           const resilience::RetryPolicy &retry,
           resilience::DegradedMode mode, const ElasticOptions &options)
{
    Engine engine{job,    cluster, chips, num_steps,
                  faults, retry,   mode,  options};
    return engine.run();
}

ElasticRunResult
runElasticWithChipSim(
    const TrainingJob &job, const ClusterConfig &cluster, unsigned chips,
    unsigned num_steps,
    const std::vector<std::vector<soc::CoreTask>> &per_core,
    double mem_bytes_per_sec, const resilience::ChipFaultPlan &chip_plan,
    const FaultSchedule &faults, const resilience::RetryPolicy &retry,
    resilience::DegradedMode mode, const ElasticOptions &options)
{
    const soc::ChipSimResult chip =
        soc::runChipSim(per_core, mem_bytes_per_sec, chip_plan);
    if (!chip.completed) {
        // Every core died with work queued: no chip ever produces a
        // gradient, so the run fail-stops before its first step.
        ElasticRunResult r;
        r.completed = false;
        r.seconds = chip.makespan;
        r.finalNodes =
            unsigned(ceilDiv(chips, cluster.server.chips));
        r.finalChips = chips;
        return r;
    }
    TrainingJob chip_job = job;
    chip_job.stepSecondsPerChip = chip.makespan;
    return runElastic(chip_job, cluster, chips, num_steps, faults,
                      retry, mode, options);
}

} // namespace cluster
} // namespace ascend
