/**
 * @file
 * Event-driven elastic cluster training runs.
 *
 * The fault-aware paths in fault_collective.hh charge closed-form
 * penalties but the run never changes shape: a dead server stays in
 * the allreduce ring forever and an uncorrectable error costs an
 * expected-value half-interval. At the paper's 2048-NPU scale the
 * production stack *reacts* instead, and this engine models those
 * reactions as an event-driven state machine over the same seeded
 * resilience::FaultSchedule:
 *
 *  - permanent node failure -> warm-spare failover (state transfer
 *    over the fat-tree plus a restart) while the pool lasts, then
 *    elastic world-shrink: the dead server leaves the ring, the
 *    data-parallel plan re-shards deterministically over the
 *    survivors (per-chip compute scales by initial/current chips) and
 *    the allreduce schedule is re-derived for the smaller world;
 *  - uncorrectable ECC -> rollback to the last checkpoint and replay
 *    of the *actual* lost steps (with checkpointing disabled the run
 *    replays from step zero);
 *  - stragglers -> bounded speculation: the slow node's step is
 *    speculatively re-dispatched at RetryPolicy cost and the step
 *    takes the cheaper of the two outcomes.
 *
 * The engine runs on the des::Kernel: every training step is a short
 * chain of kernel events (checkpoint quiescent marker, node-failure
 * poll, ECC rollback poll, the step itself) tie-broken by priority
 * at the same sim time, so recovery ordering is the kernel's
 * canonical dispatch order rather than ad-hoc loop structure.
 *
 * Checkpoints are real resilience::CheckpointStore artifacts taken
 * only at kernel quiescent points (no handler mid-flight): the
 * engine is a pure function of the RunCheckpoint state, so a run
 * killed at any instant and re-invoked with the same arguments
 * resumes from the last on-disk checkpoint and finishes with a
 * byte-identical report (bench_chaos SIGKILLs a child to enforce
 * exactly this).
 *
 * Determinism contract:
 *  - pure serial arithmetic over the schedule: byte-identical at any
 *    ASCEND_THREADS / chip-sim grain;
 *  - on an empty FaultSchedule with default ElasticOptions the result
 *    equals the cluster::collective closed forms bit-for-bit (every
 *    elastic adjustment is guarded so the fault-free path performs
 *    the identical float operations as stepSeconds);
 *  - recovery phases emit obs tracer spans (Cluster domain, track 2)
 *    and the per-run counters are charged into
 *    runtime::resilienceTotals() for the ASCEND_SIM_STATS report.
 */

#ifndef ASCEND_CLUSTER_ELASTIC_RUN_HH
#define ASCEND_CLUSTER_ELASTIC_RUN_HH

#include <functional>
#include <string>

#include "cluster/fault_collective.hh"
#include "resilience/checkpoint.hh"

namespace ascend {
namespace cluster {

/** Knobs of the elastic engine. */
struct ElasticOptions
{
    /** Warm spare servers available for failover. */
    unsigned spareNodes = 0;

    /**
     * Model + optimizer state shipped to a spare on failover and
     * re-sharded across survivors on shrink.
     */
    Bytes stateBytes = 0;

    /** Fixed re-setup time after a failover state transfer. */
    double failoverRestartSec = 5.0;

    /** Fixed re-setup time after an elastic re-shard. */
    double reshardRestartSec = 10.0;

    /** Speculatively re-dispatch straggler steps (RetryPolicy cost). */
    bool speculation = true;

    /**
     * Checkpoint cadence/cost. enabled=false still runs elastically
     * but every rollback replays from step zero.
     */
    resilience::CheckpointPolicy checkpoint;

    /** Also checkpoint every N committed steps (0 = sim-time only). */
    unsigned checkpointEverySteps = 0;

    /**
     * Directory for crash-consistent on-disk checkpoints; empty keeps
     * checkpoints logical only (rollback targets, no files). When
     * set, a valid checkpoint left by a killed run with the same
     * fingerprint is resumed automatically, and a completed run
     * removes its file. Excluded from fingerprint().
     */
    std::string checkpointDir;

    /**
     * Test/chaos hook: stop (like a crash, checkpoint left on disk,
     * nothing charged) after this many recovery events. 0 = never.
     * Excluded from fingerprint().
     */
    unsigned haltAfterEvents = 0;

    /**
     * Called with each event-log line as it is appended (bench_chaos
     * uses this to flush kill-point markers). Excluded from
     * fingerprint().
     */
    std::function<void(const std::string &line)> onEvent;
};

/**
 * Exact fingerprint of the option fields that influence simulated
 * results (checkpointDir / haltAfterEvents / onEvent excluded). Mix
 * into runtime::ResilienceOptions::scenario so sessions simulating
 * different elastic configurations never alias in the SimCache.
 */
std::string fingerprint(const ElasticOptions &options);

/** Outcome of an elastic run. */
struct ElasticRunResult
{
    double seconds = 0;     ///< wall time (time-to-failure if !completed)
    unsigned stepsDone = 0; ///< committed steps (replays re-commit)
    bool completed = true;  ///< false when the world died / FailStop
    bool halted = false;    ///< true only via haltAfterEvents
    unsigned finalNodes = 0;
    unsigned finalChips = 0;
    unsigned retries = 0;       ///< link-level retries (all steps)
    unsigned degradedSteps = 0; ///< steps at reduced bandwidth
    resilience::ElasticCounters counters;

    /** One line per recovery event, deterministic. */
    std::string eventLog;

    /**
     * Deterministic multi-line report (summary + counters + event
     * log). The byte-diff unit of the kill/resume contract.
     */
    std::string report() const;
};

/**
 * Identity fingerprint of a run: all inputs that influence its
 * output. Checkpoints carry it, and load() refuses a file written
 * under any other identity.
 */
std::string runFingerprint(const TrainingJob &job,
                           const ClusterConfig &cluster, unsigned chips,
                           unsigned num_steps,
                           const resilience::FaultSchedule &faults,
                           const resilience::RetryPolicy &retry,
                           resilience::DegradedMode mode,
                           const ElasticOptions &options);

/**
 * Run @p num_steps synchronous-SGD steps over @p chips chips
 * (ceil(chips/server.chips) nodes) reacting to @p faults as described
 * above. Node-scope events use FaultSpec::cores as *server* ids;
 * link events hit fat-tree uplinks exactly as in
 * stepSecondsWithFaults.
 */
ElasticRunResult runElastic(const TrainingJob &job,
                            const ClusterConfig &cluster, unsigned chips,
                            unsigned num_steps,
                            const resilience::FaultSchedule &faults,
                            const resilience::RetryPolicy &retry,
                            resilience::DegradedMode mode,
                            const ElasticOptions &options = {});

/**
 * Chip-driven variant: the per-chip step time is simulated by the
 * fluid chip model (soc::chipStepSeconds) under @p chip_plan instead
 * of supplied, then the run proceeds elastically. A chip plan that
 * kills every core fail-stops at step 0 like
 * trainingRunWithChipFaults.
 */
ElasticRunResult runElasticWithChipSim(
    const TrainingJob &job, const ClusterConfig &cluster, unsigned chips,
    unsigned num_steps,
    const std::vector<std::vector<soc::CoreTask>> &per_core,
    double mem_bytes_per_sec, const resilience::ChipFaultPlan &chip_plan,
    const resilience::FaultSchedule &faults,
    const resilience::RetryPolicy &retry, resilience::DegradedMode mode,
    const ElasticOptions &options = {});

} // namespace cluster
} // namespace ascend

#endif // ASCEND_CLUSTER_ELASTIC_RUN_HH
