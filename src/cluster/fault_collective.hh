/**
 * @file
 * Fault-aware collective communication (Section 4.2 at scale, when
 * links misbehave).
 *
 * Each allreduce algorithm executes as a sequence of steps; a
 * resilience::FaultSchedule supplies per-link state over time, and a
 * RetryPolicy + DegradedMode decide what a step does when its link is
 * down: retry with exponential backoff until the outage ends, give up
 * into reduced-bandwidth routing, or fail-stop and report the
 * time-to-failure.
 *
 * Determinism contract: results are computed as
 *   seconds = fault-free closed form + accumulated penalty,
 * where the penalty is exactly 0.0 for an empty schedule — so the
 * fault-aware functions reproduce collective.hh's fault-free results
 * bit-for-bit when nothing breaks (asserted in tests), and are pure
 * arithmetic (thread-count independent) otherwise.
 *
 * Link-index convention: for the flat allreduce variants, link i is
 * endpoint i's egress; a step is held up by the worst link active at
 * its start. For the hierarchical cluster variant, link i is server
 * i's fat-tree uplink (the intra-server HCCS/PCIe hops are two orders
 * of magnitude shorter-lived and are modeled fault-free).
 */

#ifndef ASCEND_CLUSTER_FAULT_COLLECTIVE_HH
#define ASCEND_CLUSTER_FAULT_COLLECTIVE_HH

#include "cluster/collective.hh"
#include "resilience/fault_schedule.hh"
#include "resilience/policy.hh"
#include "soc/chip_sim.hh"

namespace ascend {
namespace cluster {

/** Outcome of one fault-aware collective (or training run). */
struct FaultyCollectiveResult
{
    /** Wall time; on fail-stop, the time-to-failure instead. */
    double seconds = 0;
    /** Exact extra time over the fault-free closed form. */
    double penaltySeconds = 0;
    unsigned retries = 0;       ///< failed attempts that were retried
    unsigned degradedSteps = 0; ///< steps run at reduced bandwidth
    unsigned downSteps = 0;     ///< steps that hit a dead link
    bool completed = true;      ///< false only under FailStop
};

/**
 * Fault-aware allreduce over @p n endpoints. @p start_sec positions
 * the collective on the schedule's timeline (a step at local time t
 * sees the link state at start_sec + t).
 */
FaultyCollectiveResult
allreduceWithFaults(CollectiveAlgo algo, Bytes bytes, unsigned n,
                    double bw, double latency,
                    const resilience::FaultSchedule &faults,
                    const resilience::RetryPolicy &retry,
                    resilience::DegradedMode mode,
                    double start_sec = 0.0);

/**
 * Fault-aware hierarchical allreduce across the cluster: intra-server
 * phases at the fault-free closed form, the inter-server ring subject
 * to per-uplink faults.
 */
FaultyCollectiveResult
hierarchicalAllreduceWithFaults(const ClusterConfig &cluster, Bytes bytes,
                                const resilience::FaultSchedule &faults,
                                const resilience::RetryPolicy &retry,
                                resilience::DegradedMode mode,
                                double start_sec = 0.0);

/**
 * Fault-aware synchronous-SGD step time at @p chips chips (the
 * counterpart of stepSeconds): compute plus the exposed fraction of
 * the fault-aware allreduce.
 */
FaultyCollectiveResult
stepSecondsWithFaults(const TrainingJob &job, const ClusterConfig &cluster,
                      unsigned chips,
                      const resilience::FaultSchedule &faults,
                      const resilience::RetryPolicy &retry,
                      resilience::DegradedMode mode,
                      double start_sec = 0.0);

/** Samples/second under faults (0 when the run fail-stopped). */
double throughputSamplesPerSecWithFaults(
    const TrainingJob &job, const ClusterConfig &cluster, unsigned chips,
    const resilience::FaultSchedule &faults,
    const resilience::RetryPolicy &retry, resilience::DegradedMode mode);

/** Outcome of a multi-step training run under faults. */
struct TrainingRunResult
{
    double seconds = 0; ///< wall time incl. checkpoint/restart cost
    unsigned stepsDone = 0;
    unsigned retries = 0;
    unsigned degradedSteps = 0;
    bool completed = true;
};

/**
 * Run @p num_steps synchronous-SGD steps under the schedule; each
 * step sees the link state at its own start time. DRAM uncorrectable
 * errors at @p ecc_uncorrectable_per_sec are charged through the
 * checkpoint/restart model on the completed portion.
 */
TrainingRunResult
trainingRunWithFaults(const TrainingJob &job, const ClusterConfig &cluster,
                      unsigned chips, unsigned num_steps,
                      const resilience::FaultSchedule &faults,
                      const resilience::RetryPolicy &retry,
                      resilience::DegradedMode mode,
                      const resilience::CheckpointPolicy &checkpoint,
                      double ecc_uncorrectable_per_sec = 0.0);

/** Outcome of a training run whose step time came from the chip sim. */
struct ChipTrainingRunResult
{
    TrainingRunResult run;   ///< the cluster-level outcome
    soc::ChipSimResult chip; ///< the per-chip fluid simulation
    /** The chip-sim makespan that replaced job.stepSecondsPerChip. */
    double stepSecondsPerChip = 0;
};

/**
 * Cluster training run whose per-chip step time is *simulated* rather
 * than supplied: @p per_core is one chip's fluid task queues (every
 * chip runs the same data-parallel program), @p mem_bytes_per_sec its
 * shared-memory capacity, and @p chip_plan an intra-chip fault plan
 * (stragglers, core failures). The resulting makespan replaces
 * job.stepSecondsPerChip and the run then proceeds through
 * trainingRunWithFaults under the cluster-level schedule. A chip plan
 * that kills every core (chip.completed == false) fail-stops the run
 * at step 0. With an empty chip plan and an empty cluster schedule
 * the result equals the scalar path bit-for-bit.
 */
ChipTrainingRunResult trainingRunWithChipFaults(
    const TrainingJob &job, const ClusterConfig &cluster, unsigned chips,
    unsigned num_steps,
    const std::vector<std::vector<soc::CoreTask>> &per_core,
    double mem_bytes_per_sec,
    const resilience::ChipFaultPlan &chip_plan,
    const resilience::FaultSchedule &faults,
    const resilience::RetryPolicy &retry, resilience::DegradedMode mode,
    const resilience::CheckpointPolicy &checkpoint,
    double ecc_uncorrectable_per_sec = 0.0);

} // namespace cluster
} // namespace ascend

#endif // ASCEND_CLUSTER_FAULT_COLLECTIVE_HH
