/**
 * @file
 * Collective models implementation.
 */

#include "cluster/collective.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <sstream>

#include "common/error.hh"
#include "common/logging.hh"
#include "obs/tracer.hh"

namespace ascend {
namespace cluster {

const char *
toString(CollectiveAlgo algo)
{
    switch (algo) {
      case CollectiveAlgo::Ring:            return "ring";
      case CollectiveAlgo::HalvingDoubling: return "halving-doubling";
      case CollectiveAlgo::Tree:            return "tree";
    }
    return "?";
}

namespace {

double
log2Ceil(unsigned n)
{
    double steps = 0;
    unsigned v = 1;
    while (v < n) {
        v *= 2;
        ++steps;
    }
    return steps;
}

/**
 * Emit a collective phase span on the Cluster track. The collectives
 * are closed-form (no global clock), so each top-level call lays its
 * phases out sequentially from ts 0 in nanoseconds; identical calls
 * dedup in the trace.
 */
double
tracePhase(const char *name, double startSec, double sec, Bytes bytes)
{
    if (sec > 0) {
        if (obs::Tracer *tracer = obs::Tracer::current()) {
            const std::uint64_t t0 =
                std::uint64_t(std::llround(startSec * 1e9));
            const std::uint64_t t1 =
                std::uint64_t(std::llround((startSec + sec) * 1e9));
            tracer->span(obs::Domain::Cluster, 1, name, t0, t1 - t0,
                         bytes);
        }
    }
    return sec;
}

} // anonymous namespace

double
halvingDoublingAllreduceSeconds(Bytes bytes, unsigned n, double bw,
                                double latency)
{
    if (n <= 1)
        return 0.0;
    const double steps = 2.0 * log2Ceil(n);
    const double volume = 2.0 * (n - 1) / n * double(bytes);
    return volume / bw + steps * latency;
}

double
treeAllreduceSeconds(Bytes bytes, unsigned n, double bw, double latency)
{
    if (n <= 1)
        return 0.0;
    const double steps = 2.0 * log2Ceil(n);
    return steps * (double(bytes) / bw + latency);
}

double
allreduceAlgoSeconds(CollectiveAlgo algo, Bytes bytes, unsigned n,
                     double bw, double latency)
{
    switch (algo) {
      case CollectiveAlgo::Ring:
        return ringAllreduceSeconds(bytes, n, bw, latency);
      case CollectiveAlgo::HalvingDoubling:
        return halvingDoublingAllreduceSeconds(bytes, n, bw, latency);
      case CollectiveAlgo::Tree:
        return treeAllreduceSeconds(bytes, n, bw, latency);
    }
    panic("bad collective algo");
}

double
ringAllreduceSeconds(Bytes bytes, unsigned n, double bw, double latency)
{
    if (n <= 1)
        return 0.0;
    const double steps = 2.0 * (n - 1);
    const double volume = steps / n * double(bytes);
    return volume / bw + steps * latency;
}

double
serverAllreduceSeconds(const ServerConfig &server, Bytes bytes)
{
    simAssert(server.chips % server.chipsPerGroup == 0,
              "server groups must divide chips");
    const unsigned groups = server.chips / server.chipsPerGroup;
    // Reduce-scatter + allgather within the group over HCCS.
    double sec = tracePhase(
        "hccs-ring", 0,
        ringAllreduceSeconds(bytes, server.chipsPerGroup,
                             server.hccsBytesPerSec,
                             server.linkLatencySec),
        bytes);
    if (groups > 1) {
        // Group leaders exchange the group-reduced shard over PCIe.
        const Bytes shard = bytes / server.chipsPerGroup;
        sec += tracePhase("pcie-ring", sec,
                          ringAllreduceSeconds(shard, groups,
                                               server.pcieBytesPerSec,
                                               server.linkLatencySec),
                          shard);
    }
    return sec;
}

double
hierarchicalAllreduceSeconds(const ClusterConfig &cluster, Bytes bytes)
{
    // Phase 1: reduce-scatter inside each server (every chip ends up
    // owning a 1/chips shard of the reduced gradient).
    const ServerConfig &srv = cluster.server;
    double sec = serverAllreduceSeconds(srv, bytes);
    if (cluster.servers > 1) {
        // Phase 2: ring allreduce across servers on each shard; the
        // shards move in parallel over each server's uplink.
        const Bytes shard = bytes / srv.chips;
        sec += tracePhase("inter-server-ring", sec,
                          ringAllreduceSeconds(shard, cluster.servers,
                                               cluster.netBytesPerSec,
                                               cluster.netLatencySec),
                          shard);
    }
    return sec;
}

double
jobAllreduceSeconds(const ClusterConfig &cluster, Bytes bytes,
                    unsigned chips)
{
    const unsigned per_server = cluster.server.chips;
    if (chips <= 1)
        return 0.0;
    if (chips <= per_server) {
        ServerConfig partial = cluster.server;
        partial.chips = std::min(chips, per_server);
        partial.chipsPerGroup =
            std::min(partial.chips, partial.chipsPerGroup);
        if (partial.chips % partial.chipsPerGroup != 0)
            partial.chipsPerGroup = 1;
        return serverAllreduceSeconds(partial, bytes);
    }
    ClusterConfig partial = cluster;
    partial.servers = unsigned(ceilDiv(chips, per_server));
    return hierarchicalAllreduceSeconds(partial, bytes);
}

double
stepSeconds(const TrainingJob &job, const ClusterConfig &cluster,
            unsigned chips)
{
    simAssert(chips > 0, "need at least one chip");
    const double comm =
        jobAllreduceSeconds(cluster, job.gradientBytes, chips);
    const double exposed =
        comm * (1.0 - std::clamp(job.overlapFraction, 0.0, 1.0));
    return job.stepSecondsPerChip + exposed;
}

double
throughputSamplesPerSec(const TrainingJob &job, const ClusterConfig &cluster,
                        unsigned chips)
{
    const double step = stepSeconds(job, cluster, chips);
    return step > 0
        ? double(job.samplesPerChipStep) * chips / step : 0.0;
}

double
pipelineStepSeconds(const PipelineJob &job)
{
    simAssert(job.stages > 0 && job.microBatches > 0,
              "pipeline needs stages and micro-batches");
    // Per-micro-batch slot: stage compute plus shipping the boundary
    // activations to the next stage (overlappable only across
    // different micro-batches, so it adds to the slot time when it
    // exceeds nothing; first-order: slot = compute + transfer).
    const double transfer =
        job.stages > 1
            ? double(job.boundaryBytes) / job.linkBytesPerSec +
                  job.linkLatencySec
            : 0.0;
    const double slot = job.stageSecondsPerMicroBatch + transfer;
    // 1F1B: (microBatches + stages - 1) slots end-to-end.
    return double(job.microBatches + job.stages - 1) * slot;
}

double
pipelineBubbleFraction(const PipelineJob &job)
{
    simAssert(job.stages > 0 && job.microBatches > 0,
              "pipeline needs stages and micro-batches");
    return double(job.stages - 1) /
           double(job.microBatches + job.stages - 1);
}

double
scalingEfficiency(const TrainingJob &job, const ClusterConfig &cluster,
                  unsigned chips)
{
    const double one = throughputSamplesPerSec(job, cluster, 1);
    const double many = throughputSamplesPerSec(job, cluster, chips);
    return one > 0 ? many / (one * chips) : 0.0;
}

namespace {

/** Reject non-finite or non-positive rates with an actionable error. */
void
checkPositive(const char *what, double v)
{
    if (!std::isfinite(v) || v <= 0)
        throwError(ErrorCode::ConfigValidation,
                   "%s must be positive and finite, got %g", what, v);
}

void
checkNonNegative(const char *what, double v)
{
    if (!std::isfinite(v) || v < 0)
        throwError(ErrorCode::ConfigValidation,
                   "%s must be non-negative and finite, got %g", what,
                   v);
}

} // anonymous namespace

void
ServerConfig::validate() const
{
    if (chips == 0)
        throwError(ErrorCode::ConfigValidation,
                   "server needs at least one chip");
    if (chipsPerGroup == 0 || chips % chipsPerGroup != 0)
        throwError(ErrorCode::ConfigValidation,
                   "chips_per_group (%u) must divide chips (%u)",
                   chipsPerGroup, chips);
    checkPositive("hccs_bytes_per_sec", hccsBytesPerSec);
    checkPositive("pcie_bytes_per_sec", pcieBytesPerSec);
    checkNonNegative("link_latency_sec", linkLatencySec);
}

void
ClusterConfig::validate() const
{
    server.validate();
    if (servers == 0)
        throwError(ErrorCode::ConfigValidation,
                   "cluster needs at least one server");
    checkPositive("net_bytes_per_sec", netBytesPerSec);
    checkNonNegative("net_latency_sec", netLatencySec);
}

namespace {

std::string
trimToken(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    const auto end = s.find_last_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    return s.substr(begin, end - begin + 1);
}

double
parseClusterDouble(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(value, &pos);
        if (pos != value.size() || !std::isfinite(v))
            throw std::invalid_argument(value);
        return v;
    } catch (const Error &) {
        throw;
    } catch (const std::exception &) {
        throwError(ErrorCode::ConfigParse,
                   "cluster config: bad number '%s' for key %s",
                   value.c_str(), key.c_str());
    }
}

unsigned
parseClusterUnsigned(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const unsigned long v = std::stoul(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return unsigned(v);
    } catch (const Error &) {
        throw;
    } catch (const std::exception &) {
        throwError(ErrorCode::ConfigParse,
                   "cluster config: bad integer '%s' for key %s",
                   value.c_str(), key.c_str());
    }
}

} // anonymous namespace

ClusterConfig
clusterConfigFromString(const std::string &text, const ClusterConfig &base)
{
    ClusterConfig config = base;
    const std::map<std::string, std::function<void(const std::string &,
                                                   const std::string &)>>
        setters = {
            {"chips",
             [&](const std::string &k, const std::string &v) {
                 config.server.chips = parseClusterUnsigned(k, v);
             }},
            {"chips_per_group",
             [&](const std::string &k, const std::string &v) {
                 config.server.chipsPerGroup = parseClusterUnsigned(k, v);
             }},
            {"hccs_bytes_per_sec",
             [&](const std::string &k, const std::string &v) {
                 config.server.hccsBytesPerSec = parseClusterDouble(k, v);
             }},
            {"pcie_bytes_per_sec",
             [&](const std::string &k, const std::string &v) {
                 config.server.pcieBytesPerSec = parseClusterDouble(k, v);
             }},
            {"link_latency_sec",
             [&](const std::string &k, const std::string &v) {
                 config.server.linkLatencySec = parseClusterDouble(k, v);
             }},
            {"servers",
             [&](const std::string &k, const std::string &v) {
                 config.servers = parseClusterUnsigned(k, v);
             }},
            {"net_bytes_per_sec",
             [&](const std::string &k, const std::string &v) {
                 config.netBytesPerSec = parseClusterDouble(k, v);
             }},
            {"net_latency_sec",
             [&](const std::string &k, const std::string &v) {
                 config.netLatencySec = parseClusterDouble(k, v);
             }},
        };

    std::istringstream is(text);
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        const std::string body = trimToken(line);
        if (body.empty())
            continue;
        const auto eq = body.find('=');
        if (eq == std::string::npos)
            throwError(ErrorCode::ConfigParse,
                       "cluster config line %d: expected 'key = value',"
                       " got '%s'",
                       line_no, body.c_str());
        const std::string key = trimToken(body.substr(0, eq));
        const std::string value = trimToken(body.substr(eq + 1));
        const auto it = setters.find(key);
        if (it == setters.end())
            throwError(ErrorCode::ConfigParse,
                       "cluster config line %d: unknown key '%s'",
                       line_no, key.c_str());
        it->second(key, value);
    }
    config.validate();
    return config;
}

std::string
clusterConfigToString(const ClusterConfig &config)
{
    std::ostringstream os;
    os << "# ascend-sim cluster configuration\n"
       << "chips = " << config.server.chips << "\n"
       << "chips_per_group = " << config.server.chipsPerGroup << "\n"
       << "hccs_bytes_per_sec = " << config.server.hccsBytesPerSec << "\n"
       << "pcie_bytes_per_sec = " << config.server.pcieBytesPerSec << "\n"
       << "link_latency_sec = " << config.server.linkLatencySec << "\n"
       << "servers = " << config.servers << "\n"
       << "net_bytes_per_sec = " << config.netBytesPerSec << "\n"
       << "net_latency_sec = " << config.netLatencySec << "\n";
    return os.str();
}

} // namespace cluster
} // namespace ascend

