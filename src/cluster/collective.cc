/**
 * @file
 * Collective models implementation.
 */

#include "cluster/collective.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ascend {
namespace cluster {

const char *
toString(CollectiveAlgo algo)
{
    switch (algo) {
      case CollectiveAlgo::Ring:            return "ring";
      case CollectiveAlgo::HalvingDoubling: return "halving-doubling";
      case CollectiveAlgo::Tree:            return "tree";
    }
    return "?";
}

namespace {

double
log2Ceil(unsigned n)
{
    double steps = 0;
    unsigned v = 1;
    while (v < n) {
        v *= 2;
        ++steps;
    }
    return steps;
}

} // anonymous namespace

double
halvingDoublingAllreduceSeconds(Bytes bytes, unsigned n, double bw,
                                double latency)
{
    if (n <= 1)
        return 0.0;
    const double steps = 2.0 * log2Ceil(n);
    const double volume = 2.0 * (n - 1) / n * double(bytes);
    return volume / bw + steps * latency;
}

double
treeAllreduceSeconds(Bytes bytes, unsigned n, double bw, double latency)
{
    if (n <= 1)
        return 0.0;
    const double steps = 2.0 * log2Ceil(n);
    return steps * (double(bytes) / bw + latency);
}

double
allreduceAlgoSeconds(CollectiveAlgo algo, Bytes bytes, unsigned n,
                     double bw, double latency)
{
    switch (algo) {
      case CollectiveAlgo::Ring:
        return ringAllreduceSeconds(bytes, n, bw, latency);
      case CollectiveAlgo::HalvingDoubling:
        return halvingDoublingAllreduceSeconds(bytes, n, bw, latency);
      case CollectiveAlgo::Tree:
        return treeAllreduceSeconds(bytes, n, bw, latency);
    }
    panic("bad collective algo");
}

double
ringAllreduceSeconds(Bytes bytes, unsigned n, double bw, double latency)
{
    if (n <= 1)
        return 0.0;
    const double steps = 2.0 * (n - 1);
    const double volume = steps / n * double(bytes);
    return volume / bw + steps * latency;
}

double
serverAllreduceSeconds(const ServerConfig &server, Bytes bytes)
{
    simAssert(server.chips % server.chipsPerGroup == 0,
              "server groups must divide chips");
    const unsigned groups = server.chips / server.chipsPerGroup;
    // Reduce-scatter + allgather within the group over HCCS.
    double sec = ringAllreduceSeconds(bytes, server.chipsPerGroup,
                                      server.hccsBytesPerSec,
                                      server.linkLatencySec);
    if (groups > 1) {
        // Group leaders exchange the group-reduced shard over PCIe.
        const Bytes shard = bytes / server.chipsPerGroup;
        sec += ringAllreduceSeconds(shard, groups,
                                    server.pcieBytesPerSec,
                                    server.linkLatencySec);
    }
    return sec;
}

double
hierarchicalAllreduceSeconds(const ClusterConfig &cluster, Bytes bytes)
{
    // Phase 1: reduce-scatter inside each server (every chip ends up
    // owning a 1/chips shard of the reduced gradient).
    const ServerConfig &srv = cluster.server;
    double sec = serverAllreduceSeconds(srv, bytes);
    if (cluster.servers > 1) {
        // Phase 2: ring allreduce across servers on each shard; the
        // shards move in parallel over each server's uplink.
        const Bytes shard = bytes / srv.chips;
        sec += ringAllreduceSeconds(shard, cluster.servers,
                                    cluster.netBytesPerSec,
                                    cluster.netLatencySec);
    }
    return sec;
}

namespace {

/** Allreduce time for a job spanning @p chips chips of the cluster. */
double
allreduceSeconds(const ClusterConfig &cluster, Bytes bytes, unsigned chips)
{
    const unsigned per_server = cluster.server.chips;
    if (chips <= 1)
        return 0.0;
    if (chips <= per_server) {
        ServerConfig partial = cluster.server;
        partial.chips = std::min(chips, per_server);
        partial.chipsPerGroup =
            std::min(partial.chips, partial.chipsPerGroup);
        if (partial.chips % partial.chipsPerGroup != 0)
            partial.chipsPerGroup = 1;
        return serverAllreduceSeconds(partial, bytes);
    }
    ClusterConfig partial = cluster;
    partial.servers = ceilDiv(chips, per_server);
    return hierarchicalAllreduceSeconds(partial, bytes);
}

} // anonymous namespace

double
stepSeconds(const TrainingJob &job, const ClusterConfig &cluster,
            unsigned chips)
{
    simAssert(chips > 0, "need at least one chip");
    const double comm = allreduceSeconds(cluster, job.gradientBytes, chips);
    const double exposed =
        comm * (1.0 - std::clamp(job.overlapFraction, 0.0, 1.0));
    return job.stepSecondsPerChip + exposed;
}

double
throughputSamplesPerSec(const TrainingJob &job, const ClusterConfig &cluster,
                        unsigned chips)
{
    const double step = stepSeconds(job, cluster, chips);
    return step > 0
        ? double(job.samplesPerChipStep) * chips / step : 0.0;
}

double
pipelineStepSeconds(const PipelineJob &job)
{
    simAssert(job.stages > 0 && job.microBatches > 0,
              "pipeline needs stages and micro-batches");
    // Per-micro-batch slot: stage compute plus shipping the boundary
    // activations to the next stage (overlappable only across
    // different micro-batches, so it adds to the slot time when it
    // exceeds nothing; first-order: slot = compute + transfer).
    const double transfer =
        job.stages > 1
            ? double(job.boundaryBytes) / job.linkBytesPerSec +
                  job.linkLatencySec
            : 0.0;
    const double slot = job.stageSecondsPerMicroBatch + transfer;
    // 1F1B: (microBatches + stages - 1) slots end-to-end.
    return double(job.microBatches + job.stages - 1) * slot;
}

double
pipelineBubbleFraction(const PipelineJob &job)
{
    simAssert(job.stages > 0 && job.microBatches > 0,
              "pipeline needs stages and micro-batches");
    return double(job.stages - 1) /
           double(job.microBatches + job.stages - 1);
}

double
scalingEfficiency(const TrainingJob &job, const ClusterConfig &cluster,
                  unsigned chips)
{
    const double one = throughputSamplesPerSec(job, cluster, 1);
    const double many = throughputSamplesPerSec(job, cluster, chips);
    return one > 0 ? many / (one * chips) : 0.0;
}

} // namespace cluster
} // namespace ascend
