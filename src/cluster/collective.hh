/**
 * @file
 * Server and cluster topology with collective-communication models
 * (Section 4.2 / Fig. 15).
 *
 * An Ascend 910 server holds eight chips as two groups of four; the
 * intra-group fabric is the cache-coherent HCCS network (30 GB/s per
 * chip), groups talk over PCIe (32 GB/s), and servers connect through
 * a fat-tree at 100 Gbps per server link. Gradient allreduce is
 * hierarchical: ring reduce-scatter inside the group, exchange across
 * groups, ring allreduce across servers on the shard, then the
 * mirror-image allgather back down.
 */

#ifndef ASCEND_CLUSTER_COLLECTIVE_HH
#define ASCEND_CLUSTER_COLLECTIVE_HH

#include "common/types.hh"

namespace ascend {
namespace cluster {

/** One Ascend 910 server (Fig. 15 lower half). */
struct ServerConfig
{
    unsigned chips = 8;
    unsigned chipsPerGroup = 4;
    double hccsBytesPerSec = 30e9;  ///< intra-group, per chip
    double pcieBytesPerSec = 32e9;  ///< inter-group bus
    double linkLatencySec = 2e-6;

    /**
     * Reject degenerate topologies and non-finite / non-positive
     * bandwidths or latencies; throws ascend::Error with code
     * ConfigValidation (zero bandwidth would otherwise propagate as
     * silent inf/NaN through every time formula downstream).
     */
    void validate() const;
};

/** A fat-tree cluster of servers (Fig. 15 upper half). */
struct ClusterConfig
{
    ServerConfig server;
    unsigned servers = 256;
    double netBytesPerSec = 12.5e9; ///< 100 Gbps per server
    double netLatencySec = 5e-6;

    unsigned totalChips() const { return servers * server.chips; }

    /** Validate the fat tree and the embedded server; see above. */
    void validate() const;
};

/**
 * Parse a cluster description: starts from @p base and applies
 * `key = value` lines (keys: chips, chips_per_group,
 * hccs_bytes_per_sec, pcie_bytes_per_sec, link_latency_sec, servers,
 * net_bytes_per_sec, net_latency_sec; `#` comments). Throws
 * ascend::Error(ConfigParse) on malformed text and the result is
 * validate()d before it is returned.
 */
ClusterConfig clusterConfigFromString(const std::string &text,
                                      const ClusterConfig &base = {});

/** Serialize @p config as `key = value` lines (round-trips). */
std::string clusterConfigToString(const ClusterConfig &config);

/** Allreduce algorithm families (Section 4.2 software stack). */
enum class CollectiveAlgo { Ring, HalvingDoubling, Tree };

const char *toString(CollectiveAlgo algo);

/**
 * Ring allreduce over @p n endpoints with per-endpoint link
 * bandwidth @p bw: 2(n-1)/n data volume per endpoint plus 2(n-1)
 * latency hops. Bandwidth-optimal, latency-heavy at scale.
 */
double ringAllreduceSeconds(Bytes bytes, unsigned n, double bw,
                            double latency);

/**
 * Recursive halving-doubling: 2*log2(n) steps moving the same
 * 2(n-1)/n volume; latency-optimal for power-of-two groups (rounded
 * up for other sizes).
 */
double halvingDoublingAllreduceSeconds(Bytes bytes, unsigned n, double bw,
                                       double latency);

/**
 * Binary-tree reduce + broadcast: 2*log2(n) full-volume hops. Worst
 * bandwidth, best for tiny messages.
 */
double treeAllreduceSeconds(Bytes bytes, unsigned n, double bw,
                            double latency);

/** Dispatch on @p algo. */
double allreduceAlgoSeconds(CollectiveAlgo algo, Bytes bytes, unsigned n,
                            double bw, double latency);

/**
 * Hierarchical allreduce of @p bytes of gradients across the whole
 * cluster; returns seconds.
 */
double hierarchicalAllreduceSeconds(const ClusterConfig &cluster,
                                    Bytes bytes);

/** Allreduce across the eight chips of one server only. */
double serverAllreduceSeconds(const ServerConfig &server, Bytes bytes);

/**
 * Allreduce time for a job spanning @p chips chips: within one
 * (possibly partial) server it degrades to the server collective,
 * beyond it to the hierarchical form over ceil(chips/8) servers.
 */
double jobAllreduceSeconds(const ClusterConfig &cluster, Bytes bytes,
                           unsigned chips);

/**
 * Data-parallel synchronous-SGD throughput model.
 */
struct TrainingJob
{
    double stepSecondsPerChip = 0; ///< compute time of one step
    Bytes gradientBytes = 0;       ///< allreduce volume (fp16 grads)
    unsigned samplesPerChipStep = 0;
    /** Fraction of the allreduce hidden behind backward compute. */
    double overlapFraction = 0.5;
};

/** Per-step wall time with gradient synchronization. */
double stepSeconds(const TrainingJob &job, const ClusterConfig &cluster,
                   unsigned chips);

/** Samples per second at @p chips chips. */
double throughputSamplesPerSec(const TrainingJob &job,
                               const ClusterConfig &cluster,
                               unsigned chips);

/**
 * Pipeline-parallel execution of one step (an extension beyond the
 * paper's data-parallel evaluation): the model is split into
 * `stages` sequential stages across chips, the batch into
 * `microBatches`, and a 1F1B-style schedule fills the pipeline. The
 * bubble fraction is (stages-1)/(microBatches+stages-1); stage
 * boundaries ship activations over the given link.
 */
struct PipelineJob
{
    unsigned stages = 4;
    unsigned microBatches = 16;
    /** Compute seconds of one micro-batch on one stage (fwd+bwd). */
    double stageSecondsPerMicroBatch = 0;
    /** Activation volume crossing each stage boundary per micro-batch. */
    Bytes boundaryBytes = 0;
    double linkBytesPerSec = 30e9; ///< HCCS by default
    double linkLatencySec = 2e-6;
};

/** Wall time of one pipelined step. */
double pipelineStepSeconds(const PipelineJob &job);

/** Fraction of stage-time lost to fill/drain bubbles. */
double pipelineBubbleFraction(const PipelineJob &job);

/** Scaling efficiency vs a single chip. */
double scalingEfficiency(const TrainingJob &job,
                         const ClusterConfig &cluster, unsigned chips);

} // namespace cluster
} // namespace ascend

#endif // ASCEND_CLUSTER_COLLECTIVE_HH
