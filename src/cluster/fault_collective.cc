/**
 * @file
 * Fault-aware collective implementation.
 */

#include "cluster/fault_collective.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ascend {
namespace cluster {

using resilience::DegradedMode;
using resilience::FaultEvent;
using resilience::FaultKind;
using resilience::FaultSchedule;
using resilience::RetryPolicy;

namespace {

/** True when any link-down outage covers time @p t. */
bool
anyLinkDown(const std::vector<FaultEvent> &events, double t)
{
    for (const FaultEvent &e : events) {
        if (e.timeSec > t)
            break; // sorted by time; later events cannot cover t
        if (e.kind == FaultKind::LinkDown &&
            t < e.timeSec + e.durationSec)
            return true;
    }
    return false;
}

/** Worst bandwidth factor among degrade windows covering @p t. */
double
worstDegradeFactor(const std::vector<FaultEvent> &events, double t)
{
    double factor = 1.0;
    for (const FaultEvent &e : events) {
        if (e.timeSec > t)
            break;
        if (e.kind == FaultKind::LinkDegraded &&
            t < e.timeSec + e.durationSec)
            factor = std::min(factor, e.severity);
    }
    return factor;
}

/** Link-kind events of the schedule, in time order. */
std::vector<FaultEvent>
linkEventsOf(const FaultSchedule &faults)
{
    std::vector<FaultEvent> out;
    for (const FaultEvent &e : faults.events())
        if (e.kind == FaultKind::LinkDown ||
            e.kind == FaultKind::LinkDegraded)
            out.push_back(e);
    return out;
}

/**
 * Walk @p steps collective steps of @p volume_per_step bytes each,
 * charging retry/degradation penalties on top of the exact
 * @p baseline. The step at index s starts at
 * start_sec + s * nominal + penalty-so-far.
 */
FaultyCollectiveResult
runSteps(double baseline, unsigned steps, double volume_per_step,
         double bw, double latency,
         const std::vector<FaultEvent> &events, const RetryPolicy &retry,
         DegradedMode mode, double start_sec)
{
    FaultyCollectiveResult r;
    r.seconds = baseline;
    if (events.empty() || steps == 0)
        return r; // penalty is exactly 0: bit-identical to fault-free
    const double nominal = volume_per_step / bw + latency;
    const double stream = volume_per_step / bw;
    for (unsigned s = 0; s < steps; ++s) {
        double now = start_sec + s * nominal + r.penaltySeconds;
        if (anyLinkDown(events, now)) {
            ++r.downSteps;
            unsigned attempt = 0;
            while (anyLinkDown(events, now) &&
                   attempt < retry.maxRetries) {
                const double delay =
                    retry.timeoutSec +
                    resilience::retryDelaySeconds(retry, attempt);
                r.penaltySeconds += delay;
                now += delay;
                ++attempt;
                ++r.retries;
            }
            if (anyLinkDown(events, now)) {
                if (mode == DegradedMode::FailStop) {
                    r.completed = false;
                    r.seconds = now - start_sec; // time-to-failure
                    return r;
                }
                // Route around the dead link at degraded bandwidth.
                const double f =
                    std::max(retry.degradedBandwidthFactor, 1e-6);
                r.penaltySeconds += stream / f - stream;
                ++r.degradedSteps;
                continue;
            }
        }
        const double f =
            std::max(worstDegradeFactor(events, now), 1e-6);
        if (f < 1.0) {
            r.penaltySeconds += stream / f - stream;
            ++r.degradedSteps;
        }
    }
    r.seconds = baseline + r.penaltySeconds;
    return r;
}

} // anonymous namespace

FaultyCollectiveResult
allreduceWithFaults(CollectiveAlgo algo, Bytes bytes, unsigned n,
                    double bw, double latency,
                    const FaultSchedule &faults, const RetryPolicy &retry,
                    DegradedMode mode, double start_sec)
{
    const double baseline =
        allreduceAlgoSeconds(algo, bytes, n, bw, latency);
    if (n <= 1) {
        FaultyCollectiveResult r;
        r.seconds = baseline;
        return r;
    }
    unsigned steps = 0;
    double volume_per_step = 0;
    switch (algo) {
      case CollectiveAlgo::Ring:
        steps = 2 * (n - 1);
        volume_per_step = double(bytes) / n;
        break;
      case CollectiveAlgo::HalvingDoubling: {
        unsigned log_steps = 0;
        for (unsigned v = 1; v < n; v *= 2)
            ++log_steps;
        steps = 2 * log_steps;
        volume_per_step =
            2.0 * (n - 1) / n * double(bytes) / double(steps);
        break;
      }
      case CollectiveAlgo::Tree: {
        unsigned log_steps = 0;
        for (unsigned v = 1; v < n; v *= 2)
            ++log_steps;
        steps = 2 * log_steps;
        volume_per_step = double(bytes);
        break;
      }
    }
    return runSteps(baseline, steps, volume_per_step, bw, latency,
                    linkEventsOf(faults), retry, mode, start_sec);
}

FaultyCollectiveResult
hierarchicalAllreduceWithFaults(const ClusterConfig &cluster, Bytes bytes,
                                const FaultSchedule &faults,
                                const RetryPolicy &retry,
                                DegradedMode mode, double start_sec)
{
    // Intra-server phases: HCCS/PCIe hops, modeled fault-free.
    const ServerConfig &srv = cluster.server;
    const double intra = serverAllreduceSeconds(srv, bytes);
    FaultyCollectiveResult r;
    r.seconds = intra;
    if (cluster.servers <= 1)
        return r;
    // Inter-server ring on the shard, over the faultable uplinks.
    const Bytes shard = bytes / srv.chips;
    const FaultyCollectiveResult inter = allreduceWithFaults(
        CollectiveAlgo::Ring, shard, cluster.servers,
        cluster.netBytesPerSec, cluster.netLatencySec, faults, retry,
        mode, start_sec + intra);
    r.seconds = intra + inter.seconds;
    r.penaltySeconds = inter.penaltySeconds;
    r.retries = inter.retries;
    r.degradedSteps = inter.degradedSteps;
    r.downSteps = inter.downSteps;
    r.completed = inter.completed;
    return r;
}

FaultyCollectiveResult
stepSecondsWithFaults(const TrainingJob &job, const ClusterConfig &cluster,
                      unsigned chips, const FaultSchedule &faults,
                      const RetryPolicy &retry, DegradedMode mode,
                      double start_sec)
{
    simAssert(chips > 0, "need at least one chip");
    const unsigned per_server = cluster.server.chips;
    FaultyCollectiveResult comm;
    if (chips <= 1) {
        comm.seconds = 0.0;
    } else if (chips <= per_server) {
        // Intra-server only: no fat-tree uplink is involved, so the
        // fault-free closed form applies exactly.
        comm.seconds = jobAllreduceSeconds(cluster, job.gradientBytes,
                                           chips);
    } else {
        ClusterConfig partial = cluster;
        partial.servers = unsigned(ceilDiv(chips, per_server));
        comm = hierarchicalAllreduceWithFaults(partial,
                                               job.gradientBytes, faults,
                                               retry, mode, start_sec);
    }
    const double exposed =
        comm.seconds *
        (1.0 - std::clamp(job.overlapFraction, 0.0, 1.0));
    FaultyCollectiveResult r = comm;
    r.seconds = job.stepSecondsPerChip + exposed;
    return r;
}

double
throughputSamplesPerSecWithFaults(const TrainingJob &job,
                                  const ClusterConfig &cluster,
                                  unsigned chips,
                                  const FaultSchedule &faults,
                                  const RetryPolicy &retry,
                                  DegradedMode mode)
{
    const FaultyCollectiveResult step =
        stepSecondsWithFaults(job, cluster, chips, faults, retry, mode);
    if (!step.completed || step.seconds <= 0)
        return 0.0;
    return double(job.samplesPerChipStep) * chips / step.seconds;
}

TrainingRunResult
trainingRunWithFaults(const TrainingJob &job, const ClusterConfig &cluster,
                      unsigned chips, unsigned num_steps,
                      const FaultSchedule &faults,
                      const RetryPolicy &retry, DegradedMode mode,
                      const resilience::CheckpointPolicy &checkpoint,
                      double ecc_uncorrectable_per_sec)
{
    TrainingRunResult run;
    double now = 0;
    for (unsigned s = 0; s < num_steps; ++s) {
        const FaultyCollectiveResult step = stepSecondsWithFaults(
            job, cluster, chips, faults, retry, mode, now);
        now += step.seconds;
        run.retries += step.retries;
        run.degradedSteps += step.degradedSteps;
        if (!step.completed) {
            run.completed = false;
            run.stepsDone = s;
            run.seconds = now; // time-to-failure
            return run;
        }
        ++run.stepsDone;
    }
    run.seconds = resilience::timeWithCheckpointRestart(
        now, ecc_uncorrectable_per_sec, checkpoint);
    return run;
}

ChipTrainingRunResult
trainingRunWithChipFaults(
    const TrainingJob &job, const ClusterConfig &cluster, unsigned chips,
    unsigned num_steps,
    const std::vector<std::vector<soc::CoreTask>> &per_core,
    double mem_bytes_per_sec,
    const resilience::ChipFaultPlan &chip_plan,
    const FaultSchedule &faults, const RetryPolicy &retry,
    DegradedMode mode, const resilience::CheckpointPolicy &checkpoint,
    double ecc_uncorrectable_per_sec)
{
    ChipTrainingRunResult r;
    r.chip = soc::runChipSim(per_core, mem_bytes_per_sec, chip_plan);
    if (!r.chip.completed) {
        // Every core died with work still queued: the chip never
        // produces a gradient, so the job fail-stops immediately.
        r.run.completed = false;
        r.run.seconds = r.chip.makespan;
        return r;
    }
    r.stepSecondsPerChip = r.chip.makespan;
    TrainingJob chip_job = job;
    chip_job.stepSecondsPerChip = r.chip.makespan;
    r.run = trainingRunWithFaults(chip_job, cluster, chips, num_steps,
                                  faults, retry, mode, checkpoint,
                                  ecc_uncorrectable_per_sec);
    return r;
}

} // namespace cluster
} // namespace ascend
