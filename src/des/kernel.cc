/**
 * @file
 * Deterministic discrete-event kernel implementation.
 */

#include "des/kernel.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hh"
#include "obs/tracer.hh"
#include "runtime/perf_stats.hh"
#include "runtime/thread_pool.hh"

namespace ascend {
namespace des {

namespace {

/** Kernel sim time (client units, assumed seconds) to trace ns. */
std::uint64_t
traceNs(double seconds)
{
    return std::uint64_t(std::llround(seconds * 1e9));
}

} // anonymous namespace

Kernel::Kernel(const KernelOptions &options) : options_(options)
{
    options_.parallelGrain =
        std::max<std::size_t>(options_.parallelGrain, 1);
}

Kernel::~Kernel()
{
    runtime::KernelCounters delta;
    delta.kernels = 1;
    delta.eventsScheduled = stats_.eventsScheduled;
    delta.eventsDispatched = stats_.eventsDispatched;
    delta.phasesRun = stats_.phasesRun;
    delta.quiescentPoints = stats_.quiescentPoints;
    delta.queueHighWater = stats_.queueHighWater;
    runtime::chargeKernel(delta);
}

void
Kernel::advanceTo(double time)
{
    if (!(time >= now_) || !std::isfinite(time))
        throwError(ErrorCode::KernelMisuse,
                   "Kernel::advanceTo(%.17g): clock is monotonic "
                   "(now=%.17g)",
                   time, now_);
    now_ = time;
}

std::uint64_t
Kernel::push(double time, std::int32_t priority, const char *name,
             Handler fn)
{
    if (!(time >= now_) || !std::isfinite(time))
        throwError(ErrorCode::KernelMisuse,
                   "Kernel::schedule('%s', t=%.17g): events cannot be "
                   "scheduled into the past (now=%.17g)",
                   name ? name : "?", time, now_);
    Event e;
    e.time = time;
    e.priority = priority;
    e.seq = nextSeq_++;
    e.name = name;
    e.fn = std::move(fn);
    const std::uint64_t seq = e.seq;
    queue_.push_back(std::move(e));
    std::push_heap(queue_.begin(), queue_.end(), EventAfter{});
    ++stats_.eventsScheduled;
    stats_.queueHighWater =
        std::max<std::uint64_t>(stats_.queueHighWater, queue_.size());
    return seq;
}

std::uint64_t
Kernel::schedule(double time, std::int32_t priority, const char *name,
                 Handler fn)
{
    return push(time, priority, name, std::move(fn));
}

void
Kernel::onQuiescent(Handler hook)
{
    quiescentHooks_.push_back(std::move(hook));
}

std::uint64_t
Kernel::scheduleQuiescent(double time, std::int32_t priority)
{
    return push(time, priority, "quiescent", Handler());
}

void
Kernel::run()
{
    if (running_)
        throwError(ErrorCode::KernelMisuse,
                   "Kernel::run() is not re-entrant (called from "
                   "inside a handler)");
    static runtime::PerfScope &perf = runtime::perfScope("des-kernel");
    const runtime::PerfTimer timer(perf);
    running_ = true;
    stopped_ = false;
    // The flag must clear however the loop exits (handler throw
    // included) so the kernel stays reusable after an error.
    struct Running
    {
        bool &flag;
        ~Running() { flag = false; }
    } guard{running_};

    while (!queue_.empty() && !stopped_) {
        std::pop_heap(queue_.begin(), queue_.end(), EventAfter{});
        Event e = std::move(queue_.back());
        queue_.pop_back();
        // No rewind: an event behind an advanced clock runs "now".
        now_ = std::max(now_, e.time);
        ++stats_.eventsDispatched;
        if (options_.maxEvents &&
            stats_.eventsDispatched > options_.maxEvents)
            throwError(ErrorCode::GuardExceeded,
                       "des::Kernel: event guard exceeded after %llu "
                       "dispatches at t=%.9g (next event '%s')",
                       static_cast<unsigned long long>(
                           stats_.eventsDispatched),
                       now_, e.name ? e.name : "?");
        if (!e.fn) { // quiescent marker
            ++stats_.quiescentPoints;
            for (const Handler &hook : quiescentHooks_)
                hook(*this);
            continue;
        }
        e.fn(*this);
    }
}

double
Kernel::nextEventTime() const
{
    if (queue_.empty())
        return std::numeric_limits<double>::infinity();
    // queue_ is a heap under EventAfter, so the front is the earliest
    // (time, priority, seq) key.
    return queue_.front().time;
}

std::size_t
Kernel::phaseSlices(std::size_t n) const
{
    return (n + options_.parallelGrain - 1) / options_.parallelGrain;
}

void
Kernel::runPhase(
    const char *label, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>
        &fn)
{
    if (inPhase_)
        throwError(ErrorCode::KernelMisuse,
                   "Kernel::phase('%s'): phases cannot nest (a phase "
                   "body scheduled another phase)",
                   label ? label : "?");
    inPhase_ = true;
    struct InPhase
    {
        bool &flag;
        ~InPhase() { flag = false; }
    } guard{inPhase_};

    ++stats_.phasesRun;
    if (obs::Tracer *tracer = obs::Tracer::current())
        tracer->span(obs::Domain::Kernel, 1, label, traceNs(now_), 0,
                     n);

    const std::size_t grain = options_.parallelGrain;
    const std::size_t slices = phaseSlices(n);
    if (slices < 2) {
        if (n)
            fn(std::size_t(0), n, std::size_t(0));
        return;
    }
    runtime::parallelFor(slices, [&](std::size_t s) {
        fn(s * grain, std::min(n, (s + 1) * grain), s);
    });
}

} // namespace des
} // namespace ascend
