/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * The repo grew three hand-rolled event loops — the fluid chip sim's
 * grain-sliced phase loop, the elastic cluster engine's recovery
 * state machine, and the per-bench sweep drivers — each carrying its
 * own determinism, checkpoint, and tracing contract. This kernel is
 * the one substrate they all run on:
 *
 *  - a canonical event queue ordered by the stable key
 *    (time, priority, seq): earlier simulated time first, then lower
 *    priority number, then schedule order. Two kernels fed the same
 *    event graph dispatch in the same order on any machine;
 *  - deterministic parallel *phases*: a phase fans fn(begin, end,
 *    slice) over fixed-grain slices of [0, n) via
 *    runtime::parallelFor. Slice boundaries depend only on n and the
 *    grain — never on ASCEND_THREADS — so slice-local partials
 *    combine identically however slices are scheduled. Phases are
 *    instantaneous in sim time (a barrier, not an interval);
 *  - first-class hooks for the rest of the stack: phase executions
 *    emit obs:: tracer spans (Domain::Kernel), retired kernels charge
 *    dispatch/phase/queue counters into runtime::kernelTotals() for
 *    the ASCEND_SIM_STATS report, and clients mark *quiescent points*
 *    — boundaries where no event is mid-dispatch and client state is
 *    declared consistent — at which registered hooks (e.g.
 *    resilience::checkpoint saves) run.
 *
 * Determinism contract: the kernel never reads the wall clock, thread
 * identity, or allocation addresses. Given the same initial events
 * and handlers performing the same arithmetic, the dispatch sequence,
 * the simulated clock, and every phase reduction are byte-identical
 * at any ASCEND_THREADS and any phase grain.
 *
 * Time model: `now()` is a double in the client's sim-time unit
 * (seconds for the fluid/cluster domains). Time advances two ways:
 * dispatching an event scheduled in the future, and an in-handler
 * advanceTo() — fluid clients (chip_sim) re-solve rates at times they
 * compute mid-handler rather than pre-schedule. The clock is
 * monotonic: dispatching an event whose key time is in the past of an
 * advanced clock runs it at the current time (the "no rewind" rule —
 * what makes lazily-applied fault batches deterministic).
 *
 * Misuse is structured: re-entrant run(), re-entrant phase(),
 * scheduling into the past, or a non-monotonic advanceTo() throw
 * ascend::Error{KernelMisuse}; exceeding the event guard throws
 * ascend::Error{GuardExceeded}. run() on an empty queue is a clean
 * no-op.
 */

#ifndef ASCEND_DES_KERNEL_HH
#define ASCEND_DES_KERNEL_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ascend {
namespace des {

/** Counters one kernel accumulates over its lifetime. */
struct KernelStats
{
    std::uint64_t eventsScheduled = 0;
    std::uint64_t eventsDispatched = 0;
    std::uint64_t phasesRun = 0;       ///< parallel phase executions
    std::uint64_t quiescentPoints = 0; ///< quiescent markers dispatched
    std::uint64_t queueHighWater = 0;  ///< max pending events observed
};

/** Tuning and safety knobs of one kernel instance. */
struct KernelOptions
{
    /**
     * Elements per phase slice. Fewer than two slices run inline (a
     * fan-out would cost more than the body at small n); results
     * never depend on the grain or the thread count.
     */
    std::size_t parallelGrain = 512;

    /**
     * Dispatch-count bound: exceeding it throws ascend::Error with
     * code GuardExceeded (a guard against event-loop livelock;
     * 0 disables). Clients with their own progress-context guards
     * (chip_sim) keep those and leave this as a backstop.
     */
    std::uint64_t maxEvents = 0;
};

/**
 * One deterministic discrete-event kernel: an event queue, a
 * monotonic simulated clock, a parallel phase executor, and quiescent
 * hooks. Not thread-safe across kernels sharing state; one kernel
 * drives one simulation from one thread (its *phases* are what fan
 * out).
 */
class Kernel
{
  public:
    using Handler = std::function<void(Kernel &)>;

    explicit Kernel(const KernelOptions &options = {});
    ~Kernel(); ///< charges stats into runtime::kernelTotals()

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** The simulated clock (client units; monotonic). */
    double now() const { return now_; }

    /**
     * Advance the clock from inside a handler (fluid clients compute
     * event times mid-handler). @p time must be >= now() and finite.
     */
    void advanceTo(double time);

    /**
     * Enqueue @p fn to run at @p time (>= now(), finite) with
     * tie-break @p priority (lower dispatches first; equal keys
     * dispatch in schedule order). @p name must be a static string
     * (it labels traces and errors). Safe from inside handlers.
     * @return the event's seq number (the final ordering-key field).
     */
    std::uint64_t schedule(double time, std::int32_t priority,
                           const char *name, Handler fn);

    /**
     * Register a quiescent hook. Hooks run — in registration order —
     * each time a quiescent marker scheduled with
     * scheduleQuiescent() is dispatched: no client event is
     * mid-dispatch, so client state is checkpoint-consistent. Hooks
     * may advance the clock and schedule events.
     */
    void onQuiescent(Handler hook);

    /** Enqueue a quiescent marker at (@p time, @p priority). */
    std::uint64_t scheduleQuiescent(double time,
                                    std::int32_t priority = 0);

    /**
     * Dispatch events in (time, priority, seq) order until the queue
     * drains or stop() is called. Empty queue: clean no-op.
     * Re-entrant calls throw KernelMisuse. Handler exceptions
     * propagate unchanged (the kernel stays stopped but reusable).
     */
    void run();

    /** Stop after the current handler returns; pending events stay. */
    void stop() { stopped_ = true; }

    /** True once stop() was called in the current/last run(). */
    bool stopped() const { return stopped_; }

    /** Pending (not yet dispatched) events. */
    std::size_t pending() const { return queue_.size(); }

    /**
     * Sim time of the earliest pending event (+inf when the queue is
     * empty). Clients composing several event sources on one kernel
     * (e.g. the serving fleet's arrivals, completions and fault polls)
     * use this to decide whether re-arming a tick would land before
     * already-scheduled work. Stop/resume composition works the same
     * way: after stop() the queue is preserved, a second client may
     * register events and quiescent hooks, and the next run() resumes
     * in canonical (time, priority, seq) order across both clients.
     */
    double nextEventTime() const;

    const KernelStats &stats() const { return stats_; }

    /**
     * Deterministic parallel phase: invoke fn(begin, end, slice)
     * over fixed-parallelGrain slices of [0, n). An instantaneous
     * barrier at now(): all slices complete before phase() returns.
     * Emits one tracer span (Domain::Kernel) per execution when
     * tracing is on. Phases must not nest (throws KernelMisuse).
     */
    template <typename Fn>
    void
    phase(const char *label, std::size_t n, const Fn &fn)
    {
        runPhase(label, n, fn);
    }

    /** Slice count a phase of @p n elements fans out (>= 1 for n>0). */
    std::size_t phaseSlices(std::size_t n) const;

  private:
    struct Event
    {
        double time = 0;
        std::int32_t priority = 0;
        std::uint64_t seq = 0;
        const char *name = nullptr;
        Handler fn; ///< empty = quiescent marker
    };

    /** Min-heap "greater" on the canonical (time, priority, seq) key. */
    struct EventAfter
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    void runPhase(const char *label, std::size_t n,
                  const std::function<void(std::size_t, std::size_t,
                                           std::size_t)> &fn);
    std::uint64_t push(double time, std::int32_t priority,
                       const char *name, Handler fn);

    KernelOptions options_;
    std::vector<Event> queue_; ///< std::*_heap under EventAfter
    std::vector<Handler> quiescentHooks_;
    KernelStats stats_;
    double now_ = 0;
    std::uint64_t nextSeq_ = 0;
    bool running_ = false;
    bool inPhase_ = false;
    bool stopped_ = false;
};

} // namespace des
} // namespace ascend

#endif // ASCEND_DES_KERNEL_HH
