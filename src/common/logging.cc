/**
 * @file
 * Implementation of the logging helpers.
 */

#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace ascend {
namespace detail {

namespace {

const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

void
vlogMessage(LogLevel level, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", levelPrefix(level));
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // anonymous namespace

void
logMessage(LogLevel level, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(level, fmt, args);
    va_end(args);
}

void
logTerminate(LogLevel level, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(level, fmt, args);
    va_end(args);
    if (level == LogLevel::Fatal)
        std::exit(1);
    std::abort();
}

} // namespace detail
} // namespace ascend
