/**
 * @file
 * Structured error implementation.
 */

#include "common/error.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace ascend {

const char *
toString(ErrorCode code)
{
    switch (code) {
      case ErrorCode::ConfigParse:      return "config-parse";
      case ErrorCode::ConfigValidation: return "config-validation";
      case ErrorCode::InvalidLayer:     return "invalid-layer";
      case ErrorCode::TileTooLarge:     return "tile-too-large";
      case ErrorCode::ParallelFailure:  return "parallel-failure";
      case ErrorCode::FaultInjected:    return "fault-injected";
      case ErrorCode::GuardExceeded:    return "guard-exceeded";
      case ErrorCode::KernelMisuse:     return "kernel-misuse";
      case ErrorCode::CheckpointCorrupt: return "checkpoint-corrupt";
      case ErrorCode::GraphInvalid:      return "graph-invalid";
      case ErrorCode::GraphShapeMismatch: return "graph-shape-mismatch";
    }
    return "unknown";
}

Error::Error(ErrorCode code, const std::string &context)
    : std::runtime_error(std::string("[") + toString(code) + "] " +
                         context),
      code_(code), context_(context)
{
}

void
throwError(ErrorCode code, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int len = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::vector<char> buf(len > 0 ? std::size_t(len) + 1 : 1);
    if (len > 0)
        std::vsnprintf(buf.data(), buf.size(), fmt, args);
    va_end(args);
    throw Error(code, std::string(buf.data()));
}

} // namespace ascend
