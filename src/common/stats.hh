/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Simulation components register named scalar counters and distributions
 * in a StatGroup; benches and tests read them back by name or dump the
 * whole group as text/CSV. Keeping statistics out of the simulation
 * kernel proper keeps the latency models testable in isolation.
 */

#ifndef ASCEND_COMMON_STATS_HH
#define ASCEND_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace ascend {
namespace stats {

/** A monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t delta = 1) { value_ += delta; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A running mean/min/max/sum over observed samples. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void
    reset()
    {
        sum_ = min_ = max_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * A fixed-bucket histogram with percentile queries (used for NoC /
 * memory latency distributions, where tails matter more than means).
 */
class Histogram
{
  public:
    /** @param max_value Values above this land in the overflow bucket. */
    explicit Histogram(double max_value = 1024.0, std::size_t buckets = 256)
        : max_(max_value), counts_(buckets + 1, 0)
    {
    }

    void
    sample(double v)
    {
        std::size_t idx = counts_.size() - 1; // overflow
        if (v < max_ && v >= 0) {
            idx = static_cast<std::size_t>(
                v / max_ * double(counts_.size() - 1));
        }
        ++counts_[idx];
        ++total_;
    }

    std::uint64_t count() const { return total_; }

    /** Value at quantile @p q in [0, 1] (upper bucket edge). */
    double
    percentile(double q) const
    {
        if (total_ == 0)
            return 0.0;
        const auto target = static_cast<std::uint64_t>(
            q * double(total_ - 1));
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i + 1 < counts_.size(); ++i) {
            seen += counts_[i];
            if (seen > target)
                return (double(i) + 1.0) * max_ /
                       double(counts_.size() - 1);
        }
        return max_; // overflow bucket
    }

    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        total_ = 0;
    }

  private:
    double max_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * A named collection of statistics.
 *
 * Names are hierarchical by convention ("core.cube.busyCycles"); the
 * group owns the storage, so components hold references obtained from
 * counter()/distribution().
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Get-or-create a counter with the given name. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    /** Get-or-create a distribution with the given name. */
    Distribution &
    distribution(const std::string &name)
    {
        return distributions_[name];
    }

    /** Look up an existing counter; panics if absent. */
    const Counter &
    findCounter(const std::string &name) const
    {
        auto it = counters_.find(name);
        if (it == counters_.end())
            panic("StatGroup %s: no counter named %s",
                  name_.c_str(), name.c_str());
        return it->second;
    }

    bool
    hasCounter(const std::string &name) const
    {
        return counters_.count(name) != 0;
    }

    const std::string &name() const { return name_; }

    /** Reset every statistic in the group to zero. */
    void reset();

    /** Dump all statistics, one "name value" line each. */
    void dump(std::ostream &os) const;

    const std::map<std::string, Counter> &counters() const
    { return counters_; }
    const std::map<std::string, Distribution> &distributions() const
    { return distributions_; }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> distributions_;
};

} // namespace stats
} // namespace ascend

#endif // ASCEND_COMMON_STATS_HH
