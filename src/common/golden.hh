/**
 * @file
 * Golden-file comparison helpers shared by benches, tests, and CI.
 *
 * Every golden check in the tree funnels through one normalization
 * (trailing whitespace and CR stripped per line, exactly one final
 * newline) so a bench cannot pass locally and fail in CI over an
 * invisible byte. Mismatches render as a per-line diff, never a blob
 * compare.
 */

#ifndef ASCEND_COMMON_GOLDEN_HH
#define ASCEND_COMMON_GOLDEN_HH

#include <string>

namespace ascend {

/**
 * Canonical golden form of @p text: trailing spaces, tabs, and CRs
 * are stripped from every line and the text ends with exactly one
 * newline (empty input stays empty).
 */
std::string normalizeGolden(const std::string &text);

/**
 * Compare @p actual against @p expected after normalizing both.
 * @return empty string on match; otherwise a human-readable per-line
 * diff ("line N: expected ... / actual ...").
 */
std::string diffGolden(const std::string &expected,
                       const std::string &actual);

/**
 * Read a whole file. @return false (with @p out untouched) when the
 * file cannot be opened.
 */
bool readFileText(const std::string &path, std::string &out);

/** Write @p text to @p path. @return false on I/O failure. */
bool writeFileText(const std::string &path, const std::string &text);

} // namespace ascend

#endif // ASCEND_COMMON_GOLDEN_HH
