/**
 * @file
 * fp16 conversion implementation (round-to-nearest-even).
 */

#include "common/float16.hh"

#include <cstring>

namespace ascend {

namespace {

std::uint32_t
floatBits(float value)
{
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

float
bitsFloat(std::uint32_t bits)
{
    float value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

} // anonymous namespace

std::uint16_t
floatToHalfBits(float value)
{
    const std::uint32_t f = floatBits(value);
    const std::uint32_t sign = (f >> 16) & 0x8000u;
    const std::int32_t exponent =
        static_cast<std::int32_t>((f >> 23) & 0xff) - 127 + 15;
    std::uint32_t mantissa = f & 0x7fffffu;

    if (((f >> 23) & 0xff) == 0xff) {
        // Inf / NaN: preserve NaN-ness.
        return static_cast<std::uint16_t>(
            sign | 0x7c00u | (mantissa ? 0x200u : 0));
    }
    if (exponent >= 0x1f) {
        // Overflow to infinity.
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    }
    if (exponent <= 0) {
        // Subnormal or zero.
        if (exponent < -10)
            return static_cast<std::uint16_t>(sign);
        mantissa |= 0x800000u; // implicit leading 1
        const unsigned shift = static_cast<unsigned>(14 - exponent);
        const std::uint32_t sub = mantissa >> shift;
        // Round to nearest even on the discarded bits.
        const std::uint32_t rem = mantissa & ((1u << shift) - 1);
        const std::uint32_t half = 1u << (shift - 1);
        std::uint32_t rounded = sub;
        if (rem > half || (rem == half && (sub & 1)))
            ++rounded;
        return static_cast<std::uint16_t>(sign | rounded);
    }
    // Normal number: keep the top 10 mantissa bits, round the rest.
    std::uint32_t half_bits =
        sign | (static_cast<std::uint32_t>(exponent) << 10) |
        (mantissa >> 13);
    const std::uint32_t rem = mantissa & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half_bits & 1)))
        ++half_bits; // may carry into the exponent: that is correct
    return static_cast<std::uint16_t>(half_bits);
}

float
halfBitsToFloat(std::uint16_t bits)
{
    const std::uint32_t sign = (std::uint32_t(bits) & 0x8000u) << 16;
    const std::uint32_t exponent = (bits >> 10) & 0x1f;
    const std::uint32_t mantissa = bits & 0x3ffu;

    if (exponent == 0) {
        if (mantissa == 0)
            return bitsFloat(sign); // +-0
        // Subnormal: normalize.
        std::uint32_t m = mantissa;
        std::int32_t e = -1;
        while (!(m & 0x400u)) {
            m <<= 1;
            ++e;
        }
        const std::uint32_t f_exp =
            static_cast<std::uint32_t>(127 - 15 - e) << 23;
        return bitsFloat(sign | f_exp | ((m & 0x3ffu) << 13));
    }
    if (exponent == 0x1f) {
        return bitsFloat(sign | 0x7f800000u | (mantissa << 13));
    }
    const std::uint32_t f_exp = (exponent - 15 + 127) << 23;
    return bitsFloat(sign | f_exp | (mantissa << 13));
}

} // namespace ascend
