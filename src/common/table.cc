/**
 * @file
 * TextTable rendering.
 */

#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace ascend {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    if (!header_.empty() && cells.size() != header_.size())
        panic("TextTable %s: row width %zu != header width %zu",
              title_.c_str(), cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::num(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            os << " " << cell
               << std::string(widths[i] - cell.size(), ' ') << " |";
        }
        os << "\n";
    };
    auto rule = [&]() {
        os << "+";
        for (std::size_t w : widths)
            os << std::string(w + 2, '-') << "+";
        os << "\n";
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    rule();
    if (!header_.empty()) {
        emit(header_);
        rule();
    }
    for (const auto &r : rows_)
        emit(r);
    rule();
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            os << (i ? "," : "") << cells[i];
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

} // namespace ascend
