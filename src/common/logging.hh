/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 idiom: panic() is for internal simulator bugs
 * (conditions that must never happen regardless of user input) and
 * aborts; fatal() is for user errors (bad configuration, invalid
 * arguments) and exits cleanly with an error code. warn() and inform()
 * report non-terminal conditions.
 */

#ifndef ASCEND_COMMON_LOGGING_HH
#define ASCEND_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace ascend {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/**
 * Format a printf-style message and emit it to stderr with a severity
 * prefix. Terminates the process for Fatal (exit(1)) and Panic (abort()).
 *
 * @param level Severity of the message.
 * @param fmt printf-style format string.
 */
[[gnu::format(printf, 2, 3)]]
void logMessage(LogLevel level, const char *fmt, ...);

[[noreturn]]
[[gnu::format(printf, 2, 3)]]
void logTerminate(LogLevel level, const char *fmt, ...);

} // namespace detail

/** Report an unrecoverable internal error (simulator bug) and abort. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        detail::logTerminate(LogLevel::Panic, "%s", fmt);
    else
        detail::logTerminate(LogLevel::Panic, fmt, args...);
}

/** Report an unrecoverable user error (bad config/arguments) and exit. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        detail::logTerminate(LogLevel::Fatal, "%s", fmt);
    else
        detail::logTerminate(LogLevel::Fatal, fmt, args...);
}

/** Warn about behaviour that may be incorrect but lets simulation go on. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        detail::logMessage(LogLevel::Warn, "%s", fmt);
    else
        detail::logMessage(LogLevel::Warn, fmt, args...);
}

/** Print a normal status message. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        detail::logMessage(LogLevel::Inform, "%s", fmt);
    else
        detail::logMessage(LogLevel::Inform, fmt, args...);
}

/**
 * Assert an invariant of the simulator itself; calls panic() on failure.
 *
 * Unlike the C assert macro this is always compiled in, because the
 * invariants it guards (flag-count balance, buffer occupancy bounds)
 * are cheap and load-bearing for result validity.
 */
inline void
simAssert(bool condition, const char *what)
{
    if (!condition)
        panic("assertion failed: %s", what);
}

} // namespace ascend

#endif // ASCEND_COMMON_LOGGING_HH
