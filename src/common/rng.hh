/**
 * @file
 * Deterministic pseudo-random number generator for workload synthesis.
 *
 * A fixed xoshiro-style generator keeps every experiment reproducible
 * across platforms and standard-library versions (std::mt19937 would be
 * fine too, but distributions are not portable across libstdc++
 * versions; we implement our own uniform helpers).
 */

#ifndef ASCEND_COMMON_RNG_HH
#define ASCEND_COMMON_RNG_HH

#include <cstdint>

namespace ascend {

/** SplitMix64-seeded xorshift128+ generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eed)
    {
        // SplitMix64 expansion of the seed into two state words.
        auto next = [&seed]() {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            return z ^ (z >> 31);
        };
        s0_ = next();
        s1_ = next();
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    uniform(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniformReal()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniformReal() < p; }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace ascend

#endif // ASCEND_COMMON_RNG_HH
