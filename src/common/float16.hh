/**
 * @file
 * Software IEEE-754 binary16 ("fp16") arithmetic.
 *
 * The cube datapath multiplies fp16 sources into an fp32 accumulator
 * (Section 2.1, citing mixed-precision training). The functional
 * layer needs bit-accurate fp16 storage semantics to validate that
 * datapath: values round through fp16 on the way in, accumulate in
 * float, and optionally round back on the way out.
 */

#ifndef ASCEND_COMMON_FLOAT16_HH
#define ASCEND_COMMON_FLOAT16_HH

#include <cstdint>

namespace ascend {

/** Convert a float to its nearest fp16 bit pattern (round-to-nearest-even). */
std::uint16_t floatToHalfBits(float value);

/** Convert an fp16 bit pattern to float (exact). */
float halfBitsToFloat(std::uint16_t bits);

/** Round a float through fp16 precision (storage round-trip). */
inline float
roundToHalf(float value)
{
    return halfBitsToFloat(floatToHalfBits(value));
}

/**
 * Value type with fp16 storage semantics: every assignment rounds.
 */
class Half
{
  public:
    Half() = default;
    Half(float v) : bits_(floatToHalfBits(v)) {} // NOLINT: implicit by design

    operator float() const { return halfBitsToFloat(bits_); }

    std::uint16_t bits() const { return bits_; }

    static Half
    fromBits(std::uint16_t bits)
    {
        Half h;
        h.bits_ = bits;
        return h;
    }

  private:
    std::uint16_t bits_ = 0;
};

} // namespace ascend

#endif // ASCEND_COMMON_FLOAT16_HH
