/**
 * @file
 * Golden-file comparison implementation.
 */

#include "common/golden.hh"

#include <fstream>
#include <sstream>
#include <vector>

namespace ascend {

namespace {

std::vector<std::string>
splitNormalizedLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string line;
    std::istringstream is(text);
    while (std::getline(is, line)) {
        const auto end = line.find_last_not_of(" \t\r");
        line.resize(end == std::string::npos ? 0 : end + 1);
        lines.push_back(line);
    }
    // Drop trailing blank lines so a missing or extra final newline
    // cannot distinguish otherwise identical outputs.
    while (!lines.empty() && lines.back().empty())
        lines.pop_back();
    return lines;
}

} // anonymous namespace

std::string
normalizeGolden(const std::string &text)
{
    const std::vector<std::string> lines = splitNormalizedLines(text);
    std::string out;
    for (const std::string &l : lines) {
        out += l;
        out += '\n';
    }
    return out;
}

std::string
diffGolden(const std::string &expected, const std::string &actual)
{
    const std::vector<std::string> want = splitNormalizedLines(expected);
    const std::vector<std::string> got = splitNormalizedLines(actual);
    std::ostringstream os;
    const std::size_t n = std::max(want.size(), got.size());
    unsigned shown = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const bool has_want = i < want.size();
        const bool has_got = i < got.size();
        if (has_want && has_got && want[i] == got[i])
            continue;
        if (shown++ >= 20) {
            os << "  ... (more differences suppressed)\n";
            break;
        }
        os << "  line " << (i + 1) << ":\n";
        if (has_want)
            os << "    expected: " << want[i] << "\n";
        else
            os << "    expected: <end of file>\n";
        if (has_got)
            os << "    actual:   " << got[i] << "\n";
        else
            os << "    actual:   <end of file>\n";
    }
    return os.str();
}

bool
readFileText(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream buf;
    buf << is.rdbuf();
    out = buf.str();
    return true;
}

bool
writeFileText(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    os << text;
    return bool(os);
}

} // namespace ascend
