/**
 * @file
 * StatGroup dump/reset implementation.
 */

#include "common/stats.hh"

namespace ascend {
namespace stats {

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : distributions_)
        kv.second.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << name_ << "." << kv.first << " " << kv.second.value() << "\n";
    for (const auto &kv : distributions_) {
        const Distribution &d = kv.second;
        os << name_ << "." << kv.first
           << " count=" << d.count()
           << " mean=" << d.mean()
           << " min=" << d.min()
           << " max=" << d.max() << "\n";
    }
}

} // namespace stats
} // namespace ascend
