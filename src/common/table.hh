/**
 * @file
 * ASCII table and CSV emitters used by the bench binaries to print the
 * paper's tables and figure series in a uniform format.
 */

#ifndef ASCEND_COMMON_TABLE_HH
#define ASCEND_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace ascend {

/**
 * A simple row/column text table.
 *
 * Cells are strings; numeric helpers format with fixed precision.
 * print() renders an aligned ASCII table, printCsv() a CSV body.
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header width if one is set. */
    void row(std::vector<std::string> cells);

    /** Format a double with @p precision fractional digits. */
    static std::string num(double v, int precision = 2);

    /** Format an integer. */
    static std::string num(std::uint64_t v);

    void print(std::ostream &os) const;
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ascend

#endif // ASCEND_COMMON_TABLE_HH
