/**
 * @file
 * Fundamental scalar types and unit helpers shared by all modules.
 */

#ifndef ASCEND_COMMON_TYPES_HH
#define ASCEND_COMMON_TYPES_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace ascend {

/** Simulated clock cycles. */
using Cycles = std::uint64_t;

/** Byte counts (buffer sizes, transfer volumes). */
using Bytes = std::uint64_t;

/** Multiply-accumulate counts / FLOP counts. */
using Flops = std::uint64_t;

/** Numeric formats supported by the Ascend datapath. */
enum class DataType {
    Int4,
    Int8,
    Fp16,
    Int32,
    Fp32,
};

/** Size of one element of @p dt in *bits* (int4 is sub-byte). */
inline unsigned
bitsOf(DataType dt)
{
    switch (dt) {
      case DataType::Int4:  return 4;
      case DataType::Int8:  return 8;
      case DataType::Fp16:  return 16;
      case DataType::Int32: return 32;
      case DataType::Fp32:  return 32;
    }
    panic("bitsOf: bad DataType %d", static_cast<int>(dt));
}

/** Size of @p count elements of @p dt, rounded up to whole bytes. */
inline Bytes
bytesOf(DataType dt, std::uint64_t count = 1)
{
    return (static_cast<std::uint64_t>(bitsOf(dt)) * count + 7) / 8;
}

/** Human-readable name of a data type. */
inline const char *
toString(DataType dt)
{
    switch (dt) {
      case DataType::Int4:  return "int4";
      case DataType::Int8:  return "int8";
      case DataType::Fp16:  return "fp16";
      case DataType::Int32: return "int32";
      case DataType::Fp32:  return "fp32";
    }
    return "?";
}

/** Integer ceiling division. */
inline std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    simAssert(b != 0, "ceilDiv by zero");
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
inline std::uint64_t
roundUp(std::uint64_t a, std::uint64_t b)
{
    return ceilDiv(a, b) * b;
}

constexpr Bytes kKiB = 1024;
constexpr Bytes kMiB = 1024 * kKiB;
constexpr Bytes kGiB = 1024 * kMiB;

/** 1 GB/s expressed in bytes per second (decimal, as vendors quote it). */
constexpr double kGBps = 1e9;
constexpr double kTBps = 1e12;

/** Format a byte count with a binary-unit suffix, e.g. "1.5 MiB". */
std::string formatBytes(Bytes bytes);

/** Format a rate in bytes/second with a decimal-unit suffix. */
std::string formatRate(double bytes_per_second);

} // namespace ascend

#endif // ASCEND_COMMON_TYPES_HH
