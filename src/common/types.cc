/**
 * @file
 * Formatting helpers for byte counts and rates.
 */

#include "common/types.hh"

#include <array>
#include <cstdio>

namespace ascend {

std::string
formatBytes(Bytes bytes)
{
    static const std::array<const char *, 5> suffixes =
        {"B", "KiB", "MiB", "GiB", "TiB"};
    double value = static_cast<double>(bytes);
    std::size_t idx = 0;
    while (value >= 1024.0 && idx + 1 < suffixes.size()) {
        value /= 1024.0;
        ++idx;
    }
    char buf[64];
    if (idx == 0)
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    else
        std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffixes[idx]);
    return buf;
}

std::string
formatRate(double bytes_per_second)
{
    static const std::array<const char *, 5> suffixes =
        {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
    double value = bytes_per_second;
    std::size_t idx = 0;
    while (value >= 1000.0 && idx + 1 < suffixes.size()) {
        value /= 1000.0;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffixes[idx]);
    return buf;
}

} // namespace ascend
