/**
 * @file
 * Structured, recoverable error reporting.
 *
 * logging.hh's fatal()/panic() terminate the process, which is right
 * for internal invariant violations but wrong for user input: a
 * service embedding this simulator must be able to reject one bad
 * config or layer without dying. ascend::Error carries a machine-
 * checkable ErrorCode plus a human-readable context string, so
 * callers (and tests) branch on the failure *kind* instead of
 * matching message substrings.
 *
 * Convention across the stack:
 *  - bad user input (configs, layer shapes, tile requests) throws
 *    ascend::Error with a specific code;
 *  - internal simulator bugs still panic() — they are not
 *    recoverable and must not be swallowed by a catch block.
 */

#ifndef ASCEND_COMMON_ERROR_HH
#define ASCEND_COMMON_ERROR_HH

#include <stdexcept>
#include <string>

namespace ascend {

/** Machine-checkable failure kinds. */
enum class ErrorCode {
    ConfigParse,      ///< malformed config text (bad token, unknown key)
    ConfigValidation, ///< config parsed but describes an invalid machine
    InvalidLayer,     ///< layer shape is degenerate or inconsistent
    TileTooLarge,     ///< requested tile exceeds the L0 buffers
    ParallelFailure,  ///< multiple tasks of one parallel loop threw
    FaultInjected,    ///< a simulated fault escalated to fail-stop
    GuardExceeded,    ///< a simulation event-count guard tripped
    KernelMisuse,     ///< des::Kernel API contract violated
    CheckpointCorrupt, ///< checkpoint artifact failed validation
    GraphInvalid,      ///< graph IR structure broken (cycle, dangling edge)
    GraphShapeMismatch, ///< graph tensor shapes inconsistent with a node
};

/** Stable lower-case name of @p code (used in what() prefixes). */
const char *toString(ErrorCode code);

/**
 * A recoverable error with a code and context. what() renders as
 * "[<code>] <context>".
 */
class Error : public std::runtime_error
{
  public:
    Error(ErrorCode code, const std::string &context);

    ErrorCode code() const { return code_; }

    /** The message without the "[<code>] " prefix. */
    const std::string &context() const { return context_; }

  private:
    ErrorCode code_;
    std::string context_;
};

/** Throw an Error with a printf-formatted context string. */
[[noreturn]]
[[gnu::format(printf, 2, 3)]]
void throwError(ErrorCode code, const char *fmt, ...);

} // namespace ascend

#endif // ASCEND_COMMON_ERROR_HH
