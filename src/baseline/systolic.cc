/**
 * @file
 * Systolic-array model implementation.
 */

#include "baseline/systolic.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ascend {
namespace baseline {

SystolicConfig
tpuV3Like()
{
    SystolicConfig c;
    c.name = "tpu-v3-like";
    // TPU v3: 2 cores x 2 128x128 MXUs at 940 MHz -> model as a
    // single 256x256-equivalent array (same MAC count, one pipeline).
    c.width = 256;
    c.clockGhz = 0.94;
    c.memBandwidth = 9e11;
    c.vectorFlopsPerSec = 4e12;
    return c;
}

SystolicConfig
fsdLike()
{
    SystolicConfig c;
    c.name = "fsd-like";
    // Tesla FSD: two 96x96 int8 arrays at 2 GHz; modelled as one array
    // per chip instance (callers scale by 2 for the full chip).
    c.width = 96;
    c.clockGhz = 2.0;
    c.memBandwidth = 6.4e10; // LPDDR4
    c.vectorFlopsPerSec = 6e11;
    return c;
}

SystolicArray::SystolicArray(SystolicConfig config)
    : config_(std::move(config))
{
    simAssert(config_.width > 0, "systolic width must be positive");
}

Cycles
SystolicArray::gemmCycles(std::uint64_t m, std::uint64_t k,
                          std::uint64_t n) const
{
    const std::uint64_t w = config_.width;
    // One pass per (k, n) weight tile: fill w, stream m, drain 2w.
    const std::uint64_t tiles = ceilDiv(k, w) * ceilDiv(n, w);
    return tiles * (m + 3 * w);
}

Cycles
SystolicArray::layerCycles(const model::Layer &layer) const
{
    using model::LayerKind;
    if (layer.isCubeLayer()) {
        std::uint64_t m, k, n;
        layer.lowerToGemm(m, k, n);
        Cycles per = gemmCycles(m, k, n);
        // Memory roofline on operand streaming.
        const Bytes bytes = layer.inputBytes() + layer.weightBytes() +
                            layer.outputBytes();
        const double mem_sec =
            double(bytes) / config_.memBandwidth;
        const auto mem_cycles = static_cast<Cycles>(
            mem_sec * config_.clockGhz * 1e9 / double(layer.matmulCount));
        return std::max(per, mem_cycles) * layer.matmulCount;
    }
    // Vector-side work; the array must drain before it (pipeline
    // interruption by normalization layers).
    const double sec = double(layer.flops()) / config_.vectorFlopsPerSec +
                       double(layer.inputBytes() + layer.outputBytes()) /
                           config_.memBandwidth;
    const Cycles drain = 2 * config_.width;
    return drain + static_cast<Cycles>(sec * config_.clockGhz * 1e9);
}

SystolicResult
SystolicArray::runInference(const model::Network &net) const
{
    SystolicResult r;
    for (const model::Layer &layer : net.layers) {
        r.cycles += layerCycles(layer);
        r.flops += layer.flops();
    }
    r.utilization = r.cycles
        ? double(r.flops) /
              (double(r.cycles) * 2.0 * config_.width * config_.width)
        : 0.0;
    return r;
}

SystolicResult
SystolicArray::runTraining(const model::Network &net) const
{
    SystolicResult r;
    for (const model::TrainingStep &step : model::trainingSteps(net)) {
        r.cycles += layerCycles(step.fwd);
        r.flops += step.fwd.flops();
        for (const model::Layer &b : step.bwd) {
            r.cycles += layerCycles(b);
            r.flops += b.flops();
        }
    }
    r.utilization = r.cycles
        ? double(r.flops) /
              (double(r.cycles) * 2.0 * config_.width * config_.width)
        : 0.0;
    return r;
}

} // namespace baseline
} // namespace ascend
