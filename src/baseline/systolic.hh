/**
 * @file
 * Weight-stationary systolic-array simulator (TPU / Tesla-FSD-like
 * comparators).
 *
 * Models the pipeline behaviour the paper argues against (Sections 6.1
 * and 7.1): a W x W array computes a GEMM by loading a W x W weight
 * tile (fill), streaming M activation rows through it, and draining
 * the last partial sums. Per weight tile the cost is
 *
 *     fill (W) + stream (M) + drain (W + W)
 *
 * so small matrices pay a large prologue/epilogue overhead — the
 * "bubbles" that collapse utilization on mobile/automotive networks —
 * and every normalization layer between GEMMs forces a full drain
 * (the paper's point about training interrupting systolic pipelines).
 */

#ifndef ASCEND_BASELINE_SYSTOLIC_HH
#define ASCEND_BASELINE_SYSTOLIC_HH

#include "common/types.hh"
#include "model/network.hh"

namespace ascend {
namespace baseline {

/** Systolic accelerator description. */
struct SystolicConfig
{
    std::string name = "systolic-256";
    unsigned width = 256;      ///< array is width x width MACs
    double clockGhz = 0.7;     ///< TPU-class clock
    double memBandwidth = 6e11;///< HBM bytes/sec
    double vectorFlopsPerSec = 3e12; ///< attached vector/activation unit
};

/** Per-network simulation outcome. */
struct SystolicResult
{
    Cycles cycles = 0;
    Flops flops = 0;
    double utilization = 0; ///< achieved / peak MAC utilization

    double
    seconds(double clock_ghz) const
    {
        return double(cycles) / (clock_ghz * 1e9);
    }
};

/**
 * The simulator. GEMM layers run on the array; everything else runs
 * on the vector/activation unit, draining the array pipeline first.
 */
class SystolicArray
{
  public:
    explicit SystolicArray(SystolicConfig config);

    /** Cycles for one GEMM of m x k x n (including fill/drain). */
    Cycles gemmCycles(std::uint64_t m, std::uint64_t k,
                      std::uint64_t n) const;

    /** Run every layer of @p net (inference). */
    SystolicResult runInference(const model::Network &net) const;

    /** Run forward + backward (training step). */
    SystolicResult runTraining(const model::Network &net) const;

    /** Peak MAC throughput, ops/second. */
    double
    peakFlops() const
    {
        return 2.0 * config_.width * config_.width * config_.clockGhz * 1e9;
    }

    const SystolicConfig &config() const { return config_; }

  private:
    Cycles layerCycles(const model::Layer &layer) const;

    SystolicConfig config_;
};

/** TPU-v3-like configuration (two 128x128 cores -> one 181x181-equiv). */
SystolicConfig tpuV3Like();

/** Tesla-FSD-like configuration (two 96x96 arrays at 2 GHz, int8). */
SystolicConfig fsdLike();

} // namespace baseline
} // namespace ascend

#endif // ASCEND_BASELINE_SYSTOLIC_HH
