/**
 * @file
 * SIMT GPU analytical model (NVidia V100-class comparator).
 *
 * Captures the two first-order effects the paper attributes to the
 * SIMT + small-tensor-core design (Sections 6.1, 7.1):
 *
 *  - Tensor cores are 4x4x4 fractals embedded in the SIMT register
 *    file, so operand reuse per fetch is 4 (vs 16 for the Ascend
 *    cube); the achievable fraction of peak on real GEMMs is bounded
 *    by an issue-efficiency factor.
 *  - Non-GEMM layers run on CUDA cores at the FP32 rate and every
 *    layer pays a kernel-launch latency.
 *
 * Per layer: time = launch + max(flops / effective_flops,
 * bytes / mem_bandwidth). Effective GEMM FLOPs further degrade when
 * the GEMM is too small to fill all SMs (wave quantization).
 */

#ifndef ASCEND_BASELINE_SIMT_HH
#define ASCEND_BASELINE_SIMT_HH

#include "common/types.hh"
#include "model/network.hh"

namespace ascend {
namespace baseline {

/** GPU description. */
struct GpuConfig
{
    std::string name = "v100-like";
    unsigned sms = 80;
    double clockGhz = 1.53;
    double tensorFlopsPerSec = 125e12; ///< fp16 tensor peak
    double cudaFlopsPerSec = 15.7e12;  ///< fp32 SIMT peak
    double memBandwidth = 9e11;        ///< HBM2, 900 GB/s
    double issueEfficiency = 0.40;     ///< achievable/peak on large GEMM
    double launchLatencySec = 5e-6;    ///< per-kernel overhead
    /** Work (fractal tiles) one SM wave consumes. */
    std::uint64_t tilesPerWave = 80ull * 8;
};

/** Per-network outcome. */
struct GpuResult
{
    double seconds = 0;
    Flops flops = 0;

    double achievedFlops() const { return seconds ? flops / seconds : 0; }
};

/**
 * The analytical model.
 */
class GpuModel
{
  public:
    explicit GpuModel(GpuConfig config) : config_(std::move(config)) {}

    /** Seconds for one layer. */
    double layerSeconds(const model::Layer &layer) const;

    GpuResult runInference(const model::Network &net) const;
    GpuResult runTraining(const model::Network &net) const;

    const GpuConfig &config() const { return config_; }

  private:
    GpuConfig config_;
};

/** NVidia V100 SXM2 configuration. */
GpuConfig v100Like();

/** NVidia Xavier-class embedded GPU configuration. */
GpuConfig xavierLike();

} // namespace baseline
} // namespace ascend

#endif // ASCEND_BASELINE_SIMT_HH
