/**
 * @file
 * SIMT GPU model implementation.
 */

#include "baseline/simt.hh"

#include <algorithm>
#include <cmath>

namespace ascend {
namespace baseline {

GpuConfig
v100Like()
{
    return GpuConfig{};
}

GpuConfig
xavierLike()
{
    GpuConfig c;
    c.name = "xavier-like";
    c.sms = 8;
    c.clockGhz = 1.37;
    c.tensorFlopsPerSec = 22e12; // int8 DLA+GPU combined
    c.cudaFlopsPerSec = 1.4e12;
    c.memBandwidth = 1.37e11;
    c.issueEfficiency = 0.5;
    c.tilesPerWave = 8ull * 8;
    return c;
}

double
GpuModel::layerSeconds(const model::Layer &layer) const
{
    const Bytes bytes = layer.inputBytes() + layer.weightBytes() +
                        layer.outputBytes();
    const double mem_sec = double(bytes) / config_.memBandwidth;

    double compute_sec;
    if (layer.isCubeLayer()) {
        std::uint64_t m, k, n;
        layer.lowerToGemm(m, k, n);
        // Wave quantization: a GEMM smaller than one SM wave cannot
        // use the whole machine. Split-K (standard in cuBLAS for
        // skinny dW-style GEMMs) recovers parallelism from the
        // reduction dimension.
        const std::uint64_t tiles =
            ceilDiv(m, 64) * ceilDiv(n, 64) * ceilDiv(k, 256) *
            layer.matmulCount;
        const double occupancy = std::min(
            1.0, double(tiles) / double(config_.tilesPerWave));
        const double eff_flops =
            config_.tensorFlopsPerSec * config_.issueEfficiency * occupancy;
        compute_sec = double(layer.flops()) / eff_flops;
    } else {
        compute_sec = double(layer.flops()) / config_.cudaFlopsPerSec;
    }
    return config_.launchLatencySec + std::max(compute_sec, mem_sec);
}

GpuResult
GpuModel::runInference(const model::Network &net) const
{
    GpuResult r;
    for (const model::Layer &layer : net.layers) {
        r.seconds += layerSeconds(layer);
        r.flops += layer.flops();
    }
    return r;
}

GpuResult
GpuModel::runTraining(const model::Network &net) const
{
    GpuResult r;
    for (const model::TrainingStep &step : model::trainingSteps(net)) {
        r.seconds += layerSeconds(step.fwd);
        r.flops += step.fwd.flops();
        for (const model::Layer &b : step.bwd) {
            r.seconds += layerSeconds(b);
            r.flops += b.flops();
        }
    }
    return r;
}

} // namespace baseline
} // namespace ascend
