/**
 * @file
 * Server-CPU roofline model (Intel Xeon 8180 comparator of Table 7).
 *
 * Header-only: a CPU is two numbers for this purpose — peak AVX-512
 * FLOPs and memory bandwidth — plus a GEMM efficiency factor.
 */

#ifndef ASCEND_BASELINE_CPU_HH
#define ASCEND_BASELINE_CPU_HH

#include <algorithm>

#include "model/network.hh"

namespace ascend {
namespace baseline {

/** CPU description. */
struct CpuConfig
{
    std::string name = "xeon-8180-like";
    double peakFlopsPerSec = 1.5e12; ///< Table 7: 1.5 TFLOPS (fp32 FMA)
    double memBandwidth = 1.28e11;   ///< 6-channel DDR4, 128 GB/s
    double gemmEfficiency = 0.7;
    double vectorEfficiency = 0.4;
};

/** Roofline evaluation. */
class CpuModel
{
  public:
    explicit CpuModel(CpuConfig config) : config_(std::move(config)) {}

    double
    layerSeconds(const model::Layer &layer) const
    {
        const double eff = layer.isCubeLayer() ? config_.gemmEfficiency
                                               : config_.vectorEfficiency;
        const double compute =
            double(layer.flops()) / (config_.peakFlopsPerSec * eff);
        const double mem =
            double(layer.inputBytes() + layer.weightBytes() +
                   layer.outputBytes()) / config_.memBandwidth;
        return std::max(compute, mem);
    }

    double
    trainingStepSeconds(const model::Network &net) const
    {
        double sec = 0;
        for (const model::TrainingStep &step : model::trainingSteps(net)) {
            sec += layerSeconds(step.fwd);
            for (const model::Layer &b : step.bwd)
                sec += layerSeconds(b);
        }
        return sec;
    }

    const CpuConfig &config() const { return config_; }

  private:
    CpuConfig config_;
};

} // namespace baseline
} // namespace ascend

#endif // ASCEND_BASELINE_CPU_HH
