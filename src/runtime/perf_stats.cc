/**
 * @file
 * Perf-scope registry and ASCEND_SIM_STATS report formatting.
 */

#include "runtime/perf_stats.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace ascend {
namespace runtime {

namespace {

struct Registry
{
    std::mutex mutex;
    // Ordered map: snapshots come out sorted by name for free, and
    // unique_ptr keeps handed-out references stable across inserts.
    std::map<std::string, std::unique_ptr<PerfScope>> scopes;
};

Registry &
registry()
{
    // Leaked on purpose: the ASCEND_SIM_STATS report runs from a
    // std::atexit handler, and atexit handlers and static destructors
    // unwind through one LIFO. If the first perfScope() call lands
    // after that handler registers (e.g. inside a bench body), a
    // function-local static Registry would be destroyed before the
    // handler snapshots it.
    static Registry *r = new Registry;
    return *r;
}

std::string
percent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * fraction);
    return buf;
}

std::string
secondsStr(double s)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
    return buf;
}

/** Relaxed atomic mirror of PipeTotals (hot-path increments). */
struct AtomicPipeTotals
{
    std::array<std::atomic<std::uint64_t>, isa::kNumPipes> busy{};
    std::array<std::atomic<std::uint64_t>, isa::kNumPipes> wait{};
    std::array<std::atomic<std::uint64_t>, isa::kNumPipes> instrs{};
    std::atomic<std::uint64_t> totalCycles{0};
    std::atomic<std::uint64_t> barriers{0};
    std::atomic<std::uint64_t> results{0};
};

AtomicPipeTotals &
atomicPipeTotals()
{
    static AtomicPipeTotals t;
    return t;
}

/** Relaxed atomic mirror of ResilienceCounters. */
struct AtomicResilienceCounters
{
    std::atomic<std::uint64_t> elasticRuns{0};
    std::atomic<std::uint64_t> failovers{0};
    std::atomic<std::uint64_t> shrinks{0};
    std::atomic<std::uint64_t> rollbacks{0};
    std::atomic<std::uint64_t> replayedSteps{0};
    std::atomic<std::uint64_t> speculations{0};
    std::atomic<std::uint64_t> sparesUsed{0};
    std::atomic<std::uint64_t> spareExhausted{0};
    std::atomic<std::uint64_t> checkpointsSaved{0};
};

AtomicResilienceCounters &
atomicResilienceCounters()
{
    static AtomicResilienceCounters t;
    return t;
}

/** Relaxed atomic mirror of ServingCounters. */
struct AtomicServingCounters
{
    std::atomic<std::uint64_t> servingRuns{0};
    std::atomic<std::uint64_t> offered{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> goodput{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> hedges{0};
    std::atomic<std::uint64_t> replicaFailures{0};
    std::atomic<std::uint64_t> failovers{0};
    std::atomic<std::uint64_t> autoscaleUps{0};
    std::atomic<std::uint64_t> checkpointsSaved{0};
    std::atomic<std::uint64_t> reoffered{0};
    std::atomic<std::uint64_t> breakerTrips{0};
    std::atomic<std::uint64_t> brownoutEntries{0};
};

AtomicServingCounters &
atomicServingCounters()
{
    static AtomicServingCounters t;
    return t;
}

/** Relaxed atomic mirror of SurrogateCounters. */
struct AtomicSurrogateCounters
{
    std::atomic<std::uint64_t> predictions{0};
    std::atomic<std::uint64_t> cacheHits{0};
    std::atomic<std::uint64_t> anchors{0};
    std::atomic<std::uint64_t> fallbackSmall{0};
    std::atomic<std::uint64_t> fallbackHull{0};
    std::atomic<std::uint64_t> fallbackBudget{0};
    std::atomic<std::uint64_t> spotChecks{0};
    std::atomic<double> maxRelError{0};
};

AtomicSurrogateCounters &
atomicSurrogateCounters()
{
    static AtomicSurrogateCounters t;
    return t;
}

/** Relaxed atomic mirror of GraphCounters. */
struct AtomicGraphCounters
{
    std::atomic<std::uint64_t> graphsLowered{0};
    std::atomic<std::uint64_t> nodesLowered{0};
    std::atomic<std::uint64_t> layersLowered{0};
    std::atomic<std::uint64_t> structuralElided{0};
    std::atomic<std::uint64_t> graphCacheHits{0};
    std::atomic<std::uint64_t> agrParses{0};
    std::atomic<std::uint64_t> agrPrints{0};
};

AtomicGraphCounters &
atomicGraphCounters()
{
    static AtomicGraphCounters t;
    return t;
}

/** Relaxed atomic mirror of KernelCounters. */
struct AtomicKernelCounters
{
    std::atomic<std::uint64_t> kernels{0};
    std::atomic<std::uint64_t> eventsScheduled{0};
    std::atomic<std::uint64_t> eventsDispatched{0};
    std::atomic<std::uint64_t> phasesRun{0};
    std::atomic<std::uint64_t> quiescentPoints{0};
    std::atomic<std::uint64_t> queueHighWater{0};
};

AtomicKernelCounters &
atomicKernelCounters()
{
    static AtomicKernelCounters t;
    return t;
}

} // anonymous namespace

void
chargePipes(const core::SimResult &result)
{
    AtomicPipeTotals &t = atomicPipeTotals();
    constexpr auto relaxed = std::memory_order_relaxed;
    for (std::size_t p = 0; p < isa::kNumPipes; ++p) {
        t.busy[p].fetch_add(result.pipes[p].busyCycles, relaxed);
        t.wait[p].fetch_add(result.pipes[p].waitCycles, relaxed);
        t.instrs[p].fetch_add(result.pipes[p].instrs, relaxed);
    }
    t.totalCycles.fetch_add(result.totalCycles, relaxed);
    t.barriers.fetch_add(result.barriers, relaxed);
    t.results.fetch_add(1, relaxed);
}

PipeTotals
pipeTotals()
{
    const AtomicPipeTotals &t = atomicPipeTotals();
    constexpr auto relaxed = std::memory_order_relaxed;
    PipeTotals out;
    for (std::size_t p = 0; p < isa::kNumPipes; ++p) {
        out.busyCycles[p] = t.busy[p].load(relaxed);
        out.waitCycles[p] = t.wait[p].load(relaxed);
        out.instrs[p] = t.instrs[p].load(relaxed);
    }
    out.totalCycles = t.totalCycles.load(relaxed);
    out.barriers = t.barriers.load(relaxed);
    out.results = t.results.load(relaxed);
    return out;
}

void
resetPipeTotals()
{
    AtomicPipeTotals &t = atomicPipeTotals();
    for (std::size_t p = 0; p < isa::kNumPipes; ++p) {
        t.busy[p] = 0;
        t.wait[p] = 0;
        t.instrs[p] = 0;
    }
    t.totalCycles = 0;
    t.barriers = 0;
    t.results = 0;
}

void
chargeResilience(const ResilienceCounters &delta)
{
    AtomicResilienceCounters &t = atomicResilienceCounters();
    constexpr auto relaxed = std::memory_order_relaxed;
    t.elasticRuns.fetch_add(delta.elasticRuns, relaxed);
    t.failovers.fetch_add(delta.failovers, relaxed);
    t.shrinks.fetch_add(delta.shrinks, relaxed);
    t.rollbacks.fetch_add(delta.rollbacks, relaxed);
    t.replayedSteps.fetch_add(delta.replayedSteps, relaxed);
    t.speculations.fetch_add(delta.speculations, relaxed);
    t.sparesUsed.fetch_add(delta.sparesUsed, relaxed);
    t.spareExhausted.fetch_add(delta.spareExhausted, relaxed);
    t.checkpointsSaved.fetch_add(delta.checkpointsSaved, relaxed);
}

ResilienceCounters
resilienceTotals()
{
    const AtomicResilienceCounters &t = atomicResilienceCounters();
    constexpr auto relaxed = std::memory_order_relaxed;
    ResilienceCounters out;
    out.elasticRuns = t.elasticRuns.load(relaxed);
    out.failovers = t.failovers.load(relaxed);
    out.shrinks = t.shrinks.load(relaxed);
    out.rollbacks = t.rollbacks.load(relaxed);
    out.replayedSteps = t.replayedSteps.load(relaxed);
    out.speculations = t.speculations.load(relaxed);
    out.sparesUsed = t.sparesUsed.load(relaxed);
    out.spareExhausted = t.spareExhausted.load(relaxed);
    out.checkpointsSaved = t.checkpointsSaved.load(relaxed);
    return out;
}

void
resetResilienceTotals()
{
    AtomicResilienceCounters &t = atomicResilienceCounters();
    t.elasticRuns = 0;
    t.failovers = 0;
    t.shrinks = 0;
    t.rollbacks = 0;
    t.replayedSteps = 0;
    t.speculations = 0;
    t.sparesUsed = 0;
    t.spareExhausted = 0;
    t.checkpointsSaved = 0;
}

void
chargeServing(const ServingCounters &delta)
{
    AtomicServingCounters &t = atomicServingCounters();
    constexpr auto relaxed = std::memory_order_relaxed;
    t.servingRuns.fetch_add(delta.servingRuns, relaxed);
    t.offered.fetch_add(delta.offered, relaxed);
    t.admitted.fetch_add(delta.admitted, relaxed);
    t.shed.fetch_add(delta.shed, relaxed);
    t.completed.fetch_add(delta.completed, relaxed);
    t.goodput.fetch_add(delta.goodput, relaxed);
    t.retries.fetch_add(delta.retries, relaxed);
    t.hedges.fetch_add(delta.hedges, relaxed);
    t.replicaFailures.fetch_add(delta.replicaFailures, relaxed);
    t.failovers.fetch_add(delta.failovers, relaxed);
    t.autoscaleUps.fetch_add(delta.autoscaleUps, relaxed);
    t.checkpointsSaved.fetch_add(delta.checkpointsSaved, relaxed);
    t.reoffered.fetch_add(delta.reoffered, relaxed);
    t.breakerTrips.fetch_add(delta.breakerTrips, relaxed);
    t.brownoutEntries.fetch_add(delta.brownoutEntries, relaxed);
}

ServingCounters
servingTotals()
{
    const AtomicServingCounters &t = atomicServingCounters();
    constexpr auto relaxed = std::memory_order_relaxed;
    ServingCounters out;
    out.servingRuns = t.servingRuns.load(relaxed);
    out.offered = t.offered.load(relaxed);
    out.admitted = t.admitted.load(relaxed);
    out.shed = t.shed.load(relaxed);
    out.completed = t.completed.load(relaxed);
    out.goodput = t.goodput.load(relaxed);
    out.retries = t.retries.load(relaxed);
    out.hedges = t.hedges.load(relaxed);
    out.replicaFailures = t.replicaFailures.load(relaxed);
    out.failovers = t.failovers.load(relaxed);
    out.autoscaleUps = t.autoscaleUps.load(relaxed);
    out.checkpointsSaved = t.checkpointsSaved.load(relaxed);
    out.reoffered = t.reoffered.load(relaxed);
    out.breakerTrips = t.breakerTrips.load(relaxed);
    out.brownoutEntries = t.brownoutEntries.load(relaxed);
    return out;
}

void
resetServingTotals()
{
    AtomicServingCounters &t = atomicServingCounters();
    t.servingRuns = 0;
    t.offered = 0;
    t.admitted = 0;
    t.shed = 0;
    t.completed = 0;
    t.goodput = 0;
    t.retries = 0;
    t.hedges = 0;
    t.replicaFailures = 0;
    t.failovers = 0;
    t.autoscaleUps = 0;
    t.checkpointsSaved = 0;
    t.reoffered = 0;
    t.breakerTrips = 0;
    t.brownoutEntries = 0;
}

void
chargeGraph(const GraphCounters &delta)
{
    AtomicGraphCounters &t = atomicGraphCounters();
    constexpr auto relaxed = std::memory_order_relaxed;
    t.graphsLowered.fetch_add(delta.graphsLowered, relaxed);
    t.nodesLowered.fetch_add(delta.nodesLowered, relaxed);
    t.layersLowered.fetch_add(delta.layersLowered, relaxed);
    t.structuralElided.fetch_add(delta.structuralElided, relaxed);
    t.graphCacheHits.fetch_add(delta.graphCacheHits, relaxed);
    t.agrParses.fetch_add(delta.agrParses, relaxed);
    t.agrPrints.fetch_add(delta.agrPrints, relaxed);
}

GraphCounters
graphTotals()
{
    const AtomicGraphCounters &t = atomicGraphCounters();
    constexpr auto relaxed = std::memory_order_relaxed;
    GraphCounters out;
    out.graphsLowered = t.graphsLowered.load(relaxed);
    out.nodesLowered = t.nodesLowered.load(relaxed);
    out.layersLowered = t.layersLowered.load(relaxed);
    out.structuralElided = t.structuralElided.load(relaxed);
    out.graphCacheHits = t.graphCacheHits.load(relaxed);
    out.agrParses = t.agrParses.load(relaxed);
    out.agrPrints = t.agrPrints.load(relaxed);
    return out;
}

void
resetGraphTotals()
{
    AtomicGraphCounters &t = atomicGraphCounters();
    t.graphsLowered = 0;
    t.nodesLowered = 0;
    t.layersLowered = 0;
    t.structuralElided = 0;
    t.graphCacheHits = 0;
    t.agrParses = 0;
    t.agrPrints = 0;
}

void
chargeSurrogate(const SurrogateCounters &delta)
{
    AtomicSurrogateCounters &t = atomicSurrogateCounters();
    constexpr auto relaxed = std::memory_order_relaxed;
    t.predictions.fetch_add(delta.predictions, relaxed);
    t.cacheHits.fetch_add(delta.cacheHits, relaxed);
    t.anchors.fetch_add(delta.anchors, relaxed);
    t.fallbackSmall.fetch_add(delta.fallbackSmall, relaxed);
    t.fallbackHull.fetch_add(delta.fallbackHull, relaxed);
    t.fallbackBudget.fetch_add(delta.fallbackBudget, relaxed);
    t.spotChecks.fetch_add(delta.spotChecks, relaxed);
    // Observed error is a max, not a sum: keep the worst any spot
    // check ever saw.
    double seen = t.maxRelError.load(relaxed);
    while (seen < delta.maxRelError &&
           !t.maxRelError.compare_exchange_weak(
               seen, delta.maxRelError, relaxed, relaxed)) {
    }
}

SurrogateCounters
surrogateTotals()
{
    const AtomicSurrogateCounters &t = atomicSurrogateCounters();
    constexpr auto relaxed = std::memory_order_relaxed;
    SurrogateCounters out;
    out.predictions = t.predictions.load(relaxed);
    out.cacheHits = t.cacheHits.load(relaxed);
    out.anchors = t.anchors.load(relaxed);
    out.fallbackSmall = t.fallbackSmall.load(relaxed);
    out.fallbackHull = t.fallbackHull.load(relaxed);
    out.fallbackBudget = t.fallbackBudget.load(relaxed);
    out.spotChecks = t.spotChecks.load(relaxed);
    out.maxRelError = t.maxRelError.load(relaxed);
    return out;
}

void
resetSurrogateTotals()
{
    AtomicSurrogateCounters &t = atomicSurrogateCounters();
    t.predictions = 0;
    t.cacheHits = 0;
    t.anchors = 0;
    t.fallbackSmall = 0;
    t.fallbackHull = 0;
    t.fallbackBudget = 0;
    t.spotChecks = 0;
    t.maxRelError = 0;
}

void
chargeKernel(const KernelCounters &delta)
{
    AtomicKernelCounters &t = atomicKernelCounters();
    constexpr auto relaxed = std::memory_order_relaxed;
    t.kernels.fetch_add(delta.kernels, relaxed);
    t.eventsScheduled.fetch_add(delta.eventsScheduled, relaxed);
    t.eventsDispatched.fetch_add(delta.eventsDispatched, relaxed);
    t.phasesRun.fetch_add(delta.phasesRun, relaxed);
    t.quiescentPoints.fetch_add(delta.quiescentPoints, relaxed);
    // High-water is a max, not a sum: keep the deepest queue any one
    // kernel ever reached.
    std::uint64_t seen = t.queueHighWater.load(relaxed);
    while (seen < delta.queueHighWater &&
           !t.queueHighWater.compare_exchange_weak(
               seen, delta.queueHighWater, relaxed, relaxed)) {
    }
}

KernelCounters
kernelTotals()
{
    const AtomicKernelCounters &t = atomicKernelCounters();
    constexpr auto relaxed = std::memory_order_relaxed;
    KernelCounters out;
    out.kernels = t.kernels.load(relaxed);
    out.eventsScheduled = t.eventsScheduled.load(relaxed);
    out.eventsDispatched = t.eventsDispatched.load(relaxed);
    out.phasesRun = t.phasesRun.load(relaxed);
    out.quiescentPoints = t.quiescentPoints.load(relaxed);
    out.queueHighWater = t.queueHighWater.load(relaxed);
    return out;
}

void
resetKernelTotals()
{
    AtomicKernelCounters &t = atomicKernelCounters();
    t.kernels = 0;
    t.eventsScheduled = 0;
    t.eventsDispatched = 0;
    t.phasesRun = 0;
    t.quiescentPoints = 0;
    t.queueHighWater = 0;
}

PerfScope &
perfScope(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.scopes.find(name);
    if (it == r.scopes.end())
        it = r.scopes
                 .emplace(name, std::make_unique<PerfScope>(name))
                 .first;
    return *it->second;
}

std::vector<PerfEntry>
perfSnapshot()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<PerfEntry> out;
    out.reserve(r.scopes.size());
    for (const auto &kv : r.scopes)
        out.push_back(
            {kv.first, kv.second->calls(), kv.second->seconds()});
    return out;
}

std::string
simStatsReport(const SimCache::Stats &stats, unsigned threads)
{
    struct Row
    {
        std::string label, a, b;
    };
    std::vector<Row> rows;
    rows.push_back({"threads", std::to_string(threads), ""});
    rows.push_back({"cache hits", std::to_string(stats.hits), ""});
    rows.push_back({"cache misses", std::to_string(stats.misses), ""});
    rows.push_back({"cache hit rate", percent(stats.hitRate()), ""});
    rows.push_back({"cache entries", std::to_string(stats.entries), ""});
    rows.push_back(
        {"cache evictions", std::to_string(stats.evictions), ""});
    rows.push_back(
        {"disk loads", std::to_string(stats.diskLoads), ""});
    rows.push_back(
        {"disk stores", std::to_string(stats.diskStores), ""});
    for (const PerfEntry &e : perfSnapshot())
        rows.push_back({"scope " + e.name,
                        std::to_string(e.calls) + " calls",
                        secondsStr(e.seconds)});
    const PipeTotals totals = pipeTotals();
    if (totals.results) {
        rows.push_back({"sim results",
                        std::to_string(totals.results), ""});
        rows.push_back({"sim barriers",
                        std::to_string(totals.barriers), ""});
        for (std::size_t p = 0; p < isa::kNumPipes; ++p) {
            const auto pipe = static_cast<isa::Pipe>(p);
            rows.push_back(
                {std::string("pipe ") + isa::toString(pipe),
                 std::to_string(totals.busyCycles[p]) + " busy (" +
                     percent(totals.utilization(pipe)) + ")",
                 std::to_string(totals.waitCycles[p]) + " wait"});
        }
    }
    const SurrogateCounters sur = surrogateTotals();
    if (sur.queries()) {
        rows.push_back({"surrogate queries",
                        std::to_string(sur.queries()), ""});
        rows.push_back({"surrogate hits",
                        std::to_string(sur.predictions) +
                            " predicted",
                        std::to_string(sur.cacheHits) +
                            " cache hits"});
        rows.push_back({"surrogate anchors",
                        std::to_string(sur.anchors), ""});
        rows.push_back({"surrogate fallbacks",
                        std::to_string(sur.fallbackSmall) + " small",
                        std::to_string(sur.fallbackHull) + " hull, " +
                            std::to_string(sur.fallbackBudget) +
                            " budget"});
        rows.push_back({"surrogate spot checks",
                        std::to_string(sur.spotChecks),
                        "max rel err " +
                            percent(sur.maxRelError)});
    }
    const KernelCounters kern = kernelTotals();
    if (kern.kernels) {
        rows.push_back(
            {"des kernels", std::to_string(kern.kernels), ""});
        rows.push_back({"des events",
                        std::to_string(kern.eventsDispatched) +
                            " dispatched",
                        std::to_string(kern.eventsScheduled) +
                            " scheduled"});
        rows.push_back({"des phases",
                        std::to_string(kern.phasesRun),
                        std::to_string(kern.quiescentPoints) +
                            " quiescent points"});
        rows.push_back({"des queue high-water",
                        std::to_string(kern.queueHighWater), ""});
    }
    const ServingCounters srv = servingTotals();
    if (srv.servingRuns) {
        rows.push_back({"serving runs",
                        std::to_string(srv.servingRuns), ""});
        rows.push_back({"serving requests",
                        std::to_string(srv.offered) + " offered",
                        std::to_string(srv.admitted) + " admitted"});
        rows.push_back({"serving goodput",
                        std::to_string(srv.goodput),
                        std::to_string(srv.completed) + " completed"});
        rows.push_back({"serving shed",
                        std::to_string(srv.shed), ""});
        rows.push_back({"serving retries",
                        std::to_string(srv.retries),
                        std::to_string(srv.hedges) + " hedges"});
        rows.push_back({"serving failures",
                        std::to_string(srv.replicaFailures),
                        std::to_string(srv.failovers) + " failovers"});
        rows.push_back({"serving autoscale-ups",
                        std::to_string(srv.autoscaleUps),
                        std::to_string(srv.checkpointsSaved) +
                            " checkpoints"});
        if (srv.reoffered || srv.breakerTrips || srv.brownoutEntries)
            rows.push_back({"serving defenses",
                            std::to_string(srv.reoffered) +
                                " reoffers",
                            std::to_string(srv.breakerTrips) +
                                " breaker trips, " +
                                std::to_string(srv.brownoutEntries) +
                                " brownouts"});
    }
    const GraphCounters grf = graphTotals();
    if (grf.graphsLowered || grf.graphCacheHits || grf.agrParses ||
        grf.agrPrints) {
        rows.push_back({"graph lowerings",
                        std::to_string(grf.graphsLowered),
                        std::to_string(grf.graphCacheHits) +
                            " cache hits"});
        rows.push_back({"graph nodes",
                        std::to_string(grf.nodesLowered),
                        std::to_string(grf.layersLowered) +
                            " layers, " +
                            std::to_string(grf.structuralElided) +
                            " structural"});
        rows.push_back({"graph agr io",
                        std::to_string(grf.agrParses) + " parsed",
                        std::to_string(grf.agrPrints) + " printed"});
    }
    const ResilienceCounters res = resilienceTotals();
    if (res.elasticRuns) {
        rows.push_back({"elastic runs",
                        std::to_string(res.elasticRuns), ""});
        rows.push_back({"elastic failovers",
                        std::to_string(res.failovers),
                        std::to_string(res.sparesUsed) +
                            " spares used"});
        rows.push_back({"elastic shrinks",
                        std::to_string(res.shrinks),
                        std::to_string(res.spareExhausted) +
                            " pool-exhausted"});
        rows.push_back({"elastic rollbacks",
                        std::to_string(res.rollbacks),
                        std::to_string(res.replayedSteps) +
                            " steps replayed"});
        rows.push_back({"elastic speculations",
                        std::to_string(res.speculations), ""});
        rows.push_back({"elastic checkpoints",
                        std::to_string(res.checkpointsSaved), ""});
    }

    std::size_t w0 = 0, w1 = 0;
    for (const Row &r : rows) {
        w0 = std::max(w0, r.label.size());
        w1 = std::max(w1, r.a.size());
    }
    std::ostringstream os;
    os << "[sim stats]\n";
    for (const Row &r : rows) {
        os << "  " << r.label
           << std::string(w0 - r.label.size(), ' ') << "  "
           << std::string(w1 - r.a.size(), ' ') << r.a;
        if (!r.b.empty())
            os << "  " << r.b;
        os << "\n";
    }
    return os.str();
}

} // namespace runtime
} // namespace ascend
