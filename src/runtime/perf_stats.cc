/**
 * @file
 * Perf-scope registry and ASCEND_SIM_STATS report formatting.
 */

#include "runtime/perf_stats.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace ascend {
namespace runtime {

namespace {

struct Registry
{
    std::mutex mutex;
    // Ordered map: snapshots come out sorted by name for free, and
    // unique_ptr keeps handed-out references stable across inserts.
    std::map<std::string, std::unique_ptr<PerfScope>> scopes;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

std::string
percent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * fraction);
    return buf;
}

std::string
secondsStr(double s)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
    return buf;
}

} // anonymous namespace

PerfScope &
perfScope(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.scopes.find(name);
    if (it == r.scopes.end())
        it = r.scopes
                 .emplace(name, std::make_unique<PerfScope>(name))
                 .first;
    return *it->second;
}

std::vector<PerfEntry>
perfSnapshot()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<PerfEntry> out;
    out.reserve(r.scopes.size());
    for (const auto &kv : r.scopes)
        out.push_back(
            {kv.first, kv.second->calls(), kv.second->seconds()});
    return out;
}

std::string
simStatsReport(const SimCache::Stats &stats, unsigned threads)
{
    struct Row
    {
        std::string label, a, b;
    };
    std::vector<Row> rows;
    rows.push_back({"threads", std::to_string(threads), ""});
    rows.push_back({"cache hits", std::to_string(stats.hits), ""});
    rows.push_back({"cache misses", std::to_string(stats.misses), ""});
    rows.push_back({"cache hit rate", percent(stats.hitRate()), ""});
    rows.push_back({"cache entries", std::to_string(stats.entries), ""});
    rows.push_back(
        {"cache evictions", std::to_string(stats.evictions), ""});
    rows.push_back(
        {"disk loads", std::to_string(stats.diskLoads), ""});
    rows.push_back(
        {"disk stores", std::to_string(stats.diskStores), ""});
    for (const PerfEntry &e : perfSnapshot())
        rows.push_back({"scope " + e.name,
                        std::to_string(e.calls) + " calls",
                        secondsStr(e.seconds)});

    std::size_t w0 = 0, w1 = 0;
    for (const Row &r : rows) {
        w0 = std::max(w0, r.label.size());
        w1 = std::max(w1, r.a.size());
    }
    std::ostringstream os;
    os << "[sim stats]\n";
    for (const Row &r : rows) {
        os << "  " << r.label
           << std::string(w0 - r.label.size(), ' ') << "  "
           << std::string(w1 - r.a.size(), ' ') << r.a;
        if (!r.b.empty())
            os << "  " << r.b;
        os << "\n";
    }
    return os.str();
}

} // namespace runtime
} // namespace ascend
