/**
 * @file
 * SimSession implementation.
 */

#include "runtime/sim_session.hh"

#include <cmath>
#include <cstdlib>

#include "runtime/perf_stats.hh"
#include "runtime/thread_pool.hh"

namespace ascend {
namespace runtime {

namespace {

/**
 * Stretch a simulated result by a straggler factor: wall-clock
 * quantities (total and per-pipe cycle counts) scale, while work
 * quantities (flops, instructions, bytes) do not.
 */
core::SimResult
derate(core::SimResult r, double slowdown)
{
    auto stretch = [slowdown](Cycles c) {
        return Cycles(std::ceil(double(c) * slowdown));
    };
    r.totalCycles = stretch(r.totalCycles);
    for (core::PipeStats &p : r.pipes) {
        p.busyCycles = stretch(p.busyCycles);
        p.finishCycle = stretch(p.finishCycle);
        p.waitCycles = stretch(p.waitCycles);
    }
    return r;
}

/**
 * ASCEND_CACHE_DIR's cache file, or empty when persistence is off.
 */
std::string
persistentCachePath()
{
    const char *dir = std::getenv("ASCEND_CACHE_DIR");
    if (!dir || !*dir)
        return {};
    return SimCache::filePath(dir);
}

void
saveProcessCache()
{
    const std::string path = persistentCachePath();
    if (!path.empty())
        SimSession::processCache()->saveFile(path);
}

} // anonymous namespace

const std::shared_ptr<SimCache> &
SimSession::processCache()
{
    static const std::shared_ptr<SimCache> cache = [] {
        auto c = std::make_shared<SimCache>();
        const std::string path = persistentCachePath();
        if (!path.empty())
            c->loadFile(path); // corruption-tolerant; 0 is fine
        return c;
    }();
    // The save hook registers *after* the cache static above:
    // std::atexit handlers and static destructors unwind through one
    // LIFO list, so the save provably runs while the cache is still
    // alive. (Registering inside the cache's own initializer would
    // order the save after the destruction.)
    static const bool saver = [] {
        if (!persistentCachePath().empty())
            std::atexit(saveProcessCache);
        return true;
    }();
    (void)saver;
    return cache;
}

SimSession::SimSession(const arch::CoreConfig &config,
                       compiler::CompileOptions options,
                       std::shared_ptr<SimCache> cache,
                       resilience::ResilienceOptions res)
    : options_(options),
      layerCompiler_(config, options),
      sim_(config),
      cache_(cache ? std::move(cache) : processCache()),
      resilience_(res),
      sessionKey_(fingerprint(config) + fingerprint(options) +
                  fingerprint(res))
{
}

core::SimResult
SimSession::runLayer(const model::Layer &layer) const
{
    const std::string key = sessionKey_ + fingerprint(layer);
    core::SimResult result;
    if (cache_->lookup(key, result)) {
        // Cache hits charge too: the pipe totals describe the
        // workload simulated, not the cache behavior, so for a fixed
        // workload they are hit-pattern- and thread-independent.
        chargePipes(result);
        return result;
    }
    static PerfScope &perf = perfScope("layer-sim");
    const PerfTimer timer(perf);
    result = sim_.run(layerCompiler_.compile(layer));
    // Straggler derate: only off the bit-for-bit fault-free path when
    // explicitly enabled with a real slowdown.
    if (resilience_.enabled && resilience_.stragglerSlowdown > 1.0)
        result = derate(result, resilience_.stragglerSlowdown);
    cache_->insert(key, result);
    chargePipes(result);
    return result;
}

std::vector<LayerRun>
SimSession::runInference(const model::Network &net) const
{
    std::vector<LayerRun> runs(net.layers.size());
    parallelFor(net.layers.size(), [&](std::size_t i) {
        runs[i].layer = net.layers[i];
        runs[i].result = runLayer(net.layers[i]);
    });
    return runs;
}

std::vector<std::vector<LayerRun>>
SimSession::runTraining(const model::Network &net,
                        model::OptimizerKind opt) const
{
    const auto steps = model::trainingSteps(net, opt);
    std::vector<std::vector<LayerRun>> runs(steps.size());
    parallelFor(steps.size(), [&](std::size_t i) {
        const model::TrainingStep &step = steps[i];
        std::vector<LayerRun> &out = runs[i];
        out.resize(1 + step.bwd.size());
        out[0].layer = step.fwd;
        out[0].result = runLayer(step.fwd);
        for (std::size_t j = 0; j < step.bwd.size(); ++j) {
            out[1 + j].layer = step.bwd[j];
            out[1 + j].result = runLayer(step.bwd[j]);
        }
    });
    return runs;
}

core::SimResult
SimSession::inferenceResult(const model::Network &net) const
{
    core::SimResult total;
    for (const LayerRun &run : runInference(net))
        total.accumulate(run.result);
    return total;
}

} // namespace runtime
} // namespace ascend
