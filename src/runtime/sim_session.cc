/**
 * @file
 * SimSession implementation.
 */

#include "runtime/sim_session.hh"

#include <cmath>
#include <cstdlib>

#include "obs/tracer.hh"
#include "runtime/perf_stats.hh"
#include "runtime/thread_pool.hh"

namespace ascend {
namespace runtime {

namespace {

/**
 * Stretch a simulated result by a straggler factor: wall-clock
 * quantities (total and per-pipe cycle counts) scale, while work
 * quantities (flops, instructions, bytes) do not.
 */
core::SimResult
derate(core::SimResult r, double slowdown)
{
    auto stretch = [slowdown](Cycles c) {
        return Cycles(std::ceil(double(c) * slowdown));
    };
    r.totalCycles = stretch(r.totalCycles);
    for (core::PipeStats &p : r.pipes) {
        p.busyCycles = stretch(p.busyCycles);
        p.finishCycle = stretch(p.finishCycle);
        p.waitCycles = stretch(p.waitCycles);
    }
    return r;
}

/**
 * ASCEND_CACHE_DIR's cache file, or empty when persistence is off.
 */
std::string
persistentCachePath()
{
    const char *dir = std::getenv("ASCEND_CACHE_DIR");
    if (!dir || !*dir)
        return {};
    return SimCache::filePath(dir);
}

void
saveProcessCache()
{
    const std::string path = persistentCachePath();
    if (!path.empty())
        SimSession::processCache()->saveFile(path);
}

} // anonymous namespace

const std::shared_ptr<SimCache> &
SimSession::processCache()
{
    static const std::shared_ptr<SimCache> cache = [] {
        auto c = std::make_shared<SimCache>();
        const std::string path = persistentCachePath();
        if (!path.empty())
            c->loadFile(path); // corruption-tolerant; 0 is fine
        return c;
    }();
    // The save hook registers *after* the cache static above:
    // std::atexit handlers and static destructors unwind through one
    // LIFO list, so the save provably runs while the cache is still
    // alive. (Registering inside the cache's own initializer would
    // order the save after the destruction.)
    static const bool saver = [] {
        if (!persistentCachePath().empty())
            std::atexit(saveProcessCache);
        return true;
    }();
    (void)saver;
    return cache;
}

SimSession::SimSession(const arch::CoreConfig &config,
                       compiler::CompileOptions options,
                       std::shared_ptr<SimCache> cache,
                       resilience::ResilienceOptions res,
                       surrogate::SurrogateOptions sur)
    : options_(options),
      layerCompiler_(config, options),
      sim_(config),
      cache_(cache ? std::move(cache) : processCache()),
      resilience_(res),
      surrogate_(sur),
      sessionKey_(fingerprint(config) + fingerprint(options) +
                  fingerprint(res)),
      surrogateKey_(sessionKey_ + surrogate::fingerprint(sur))
{
}

core::SimResult
SimSession::runLayerExact(const model::Layer &layer) const
{
    const std::string key = sessionKey_ + fingerprint(layer);
    core::SimResult result;
    if (cache_->lookup(key, result))
        return result;
    static PerfScope &perf = perfScope("layer-sim");
    const PerfTimer timer(perf);
    result = sim_.run(layerCompiler_.compile(layer));
    // Straggler derate: only off the bit-for-bit fault-free path when
    // explicitly enabled with a real slowdown.
    if (resilience_.enabled && resilience_.stragglerSlowdown > 1.0)
        result = derate(result, resilience_.stragglerSlowdown);
    cache_->insert(key, result);
    return result;
}

core::SimResult
SimSession::runLayer(const model::Layer &layer) const
{
    return runLayer(layer, nullptr);
}

core::SimResult
SimSession::runLayer(const model::Layer &layer,
                     surrogate::Outcome *outcome_out) const
{
    using surrogate::Outcome;
    // Cache hits charge pipe totals too: the totals describe the
    // workload simulated, not the cache behavior, so for a fixed
    // workload they are hit-pattern- and thread-independent.
    auto finish = [&](const core::SimResult &r, Outcome oc) {
        chargePipes(r);
        if (outcome_out)
            *outcome_out = oc;
        return r;
    };

    if (!surrogate_.options().enabled)
        return finish(runLayerExact(layer), Outcome::Disabled);

    // The span label must stay a pure function of the query, never of
    // cache state: predicted-class shapes (off-grid, in-hull, budget-
    // and spot-check-passing) only ever cache under surrogateKey_,
    // everything else only under sessionKey_, so which tier hits is
    // itself deterministic.
    auto trace = [](const char *label, const core::SimResult &r) {
        if (obs::Tracer *tr = obs::Tracer::current())
            tr->span(obs::Domain::Surrogate, 1, label, 0,
                     r.totalCycles);
    };

    const std::string layerPrint = fingerprint(layer);
    core::SimResult result;
    SurrogateCounters delta;
    if (cache_->lookup(sessionKey_ + layerPrint, result)) {
        trace("exact", result);
        delta.cacheHits = 1;
        chargeSurrogate(delta);
        return finish(result, Outcome::CacheHit);
    }
    if (cache_->lookup(surrogateKey_ + layerPrint, result)) {
        trace("predicted", result);
        delta.cacheHits = 1;
        chargeSurrogate(delta);
        return finish(result, Outcome::CacheHit);
    }

    double spotErr = 0;
    const Outcome oc = surrogate_.run(
        layer,
        [this](const model::Layer &l) { return runLayerExact(l); },
        result, &spotErr);
    // Exact outcomes were already memoized under the exact key by
    // runLayerExact; only predictions live in the surrogate namespace.
    if (oc == Outcome::Predicted)
        cache_->insert(surrogateKey_ + layerPrint, result);
    trace(oc == Outcome::Predicted ? "predicted" : "exact", result);
    switch (oc) {
      case Outcome::Predicted:      delta.predictions = 1; break;
      case Outcome::Anchor:         delta.anchors = 1; break;
      case Outcome::FallbackSmall:  delta.fallbackSmall = 1; break;
      case Outcome::FallbackHull:   delta.fallbackHull = 1; break;
      case Outcome::FallbackBudget: delta.fallbackBudget = 1; break;
      case Outcome::SpotCheck:
        delta.spotChecks = 1;
        delta.maxRelError = spotErr;
        break;
      case Outcome::Disabled:
      case Outcome::CacheHit:
        break; // unreachable on this path
    }
    chargeSurrogate(delta);
    return finish(result, oc);
}

std::vector<LayerRun>
SimSession::runInference(const model::Network &net) const
{
    std::vector<LayerRun> runs(net.layers.size());
    parallelFor(net.layers.size(), [&](std::size_t i) {
        runs[i].layer = net.layers[i];
        runs[i].result = runLayer(net.layers[i]);
    });
    return runs;
}

std::vector<std::vector<LayerRun>>
SimSession::runTraining(const model::Network &net,
                        model::OptimizerKind opt) const
{
    const auto steps = model::trainingSteps(net, opt);
    std::vector<std::vector<LayerRun>> runs(steps.size());
    parallelFor(steps.size(), [&](std::size_t i) {
        const model::TrainingStep &step = steps[i];
        std::vector<LayerRun> &out = runs[i];
        out.resize(1 + step.bwd.size());
        out[0].layer = step.fwd;
        out[0].result = runLayer(step.fwd);
        for (std::size_t j = 0; j < step.bwd.size(); ++j) {
            out[1 + j].layer = step.bwd[j];
            out[1 + j].result = runLayer(step.bwd[j]);
        }
    });
    return runs;
}

core::SimResult
SimSession::inferenceResult(const model::Network &net) const
{
    core::SimResult total;
    for (const LayerRun &run : runInference(net))
        total.accumulate(run.result);
    return total;
}

} // namespace runtime
} // namespace ascend
