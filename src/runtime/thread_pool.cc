/**
 * @file
 * Thread pool implementation.
 */

#include "runtime/thread_pool.hh"

#include <cstdlib>
#include <string>

#include "common/error.hh"

namespace ascend {
namespace runtime {

namespace {

/**
 * Re-entrancy depth of parallelFor on this thread. Non-zero on pool
 * workers and on callers already inside a loop; such threads execute
 * nested loops serially inline instead of re-entering the pool.
 */
thread_local unsigned tlsLoopDepth = 0;

} // anonymous namespace

unsigned
ThreadPool::configuredThreads()
{
    const char *env = std::getenv("ASCEND_THREADS");
    if (env && *env) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end && *end == '\0' && v >= 0)
            return v <= 1 ? 1u : unsigned(v);
        // Malformed values fall through to the hardware default.
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = configuredThreads();
    workers_.reserve(threads - 1);
    for (unsigned i = 1; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    std::shared_ptr<Job> last;
    while (true) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [&] { return stop_ || (job_ && job_ != last); });
            if (stop_)
                return;
            job = job_;
            last = job;
        }
        runJob(*job);
    }
}

void
ThreadPool::runJob(Job &job)
{
    ++tlsLoopDepth;
    while (true) {
        const std::size_t i = job.next.fetch_add(1);
        if (i >= job.n)
            break;
        try {
            job.fn(i);
        } catch (...) {
            // Keep every failure: dropping all but the first would
            // hide distinct faults from concurrently throwing tasks.
            std::lock_guard<std::mutex> lock(job.errorMutex);
            job.errors.push_back(std::current_exception());
        }
        if (job.completed.fetch_add(1) + 1 == job.n) {
            // Pair with the waiter's predicate check under mutex_ so
            // the notification cannot slip between check and wait.
            { std::lock_guard<std::mutex> lock(mutex_); }
            idle_.notify_all();
        }
    }
    --tlsLoopDepth;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (n == 1 || size() == 1 || tlsLoopDepth > 0) {
        // Serial path: pool disabled, trivial loop, or nested call
        // from inside a running loop (workers must not block on the
        // pool they service).
        ++tlsLoopDepth;
        try {
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
        } catch (...) {
            --tlsLoopDepth;
            throw;
        }
        --tlsLoopDepth;
        return;
    }

    auto job = std::make_shared<Job>();
    job->fn = fn;
    job->n = n;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = job;
    }
    wake_.notify_all();

    runJob(*job); // the calling thread participates

    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [&] {
            return job->completed.load() == job->n;
        });
        if (job_ == job)
            job_.reset();
    }
    // All workers are done with the job here; no lock needed.
    if (job->errors.size() == 1)
        std::rethrow_exception(job->errors.front());
    if (job->errors.size() > 1) {
        std::string detail;
        for (const std::exception_ptr &e : job->errors) {
            detail += "\n  - ";
            try {
                std::rethrow_exception(e);
            } catch (const std::exception &ex) {
                detail += ex.what();
            } catch (...) {
                detail += "(non-standard exception)";
            }
        }
        throwError(ErrorCode::ParallelFailure,
                   "%zu parallel tasks failed:%s", job->errors.size(),
                   detail.c_str());
    }
}

namespace {

/** Slot + lock behind globalPool(); swappable by ScopedThreadPoolSize. */
std::mutex &
poolMutex()
{
    static std::mutex m;
    return m;
}

std::unique_ptr<ThreadPool> &
poolSlot()
{
    static std::unique_ptr<ThreadPool> slot;
    return slot;
}

} // anonymous namespace

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lock(poolMutex());
    if (!poolSlot())
        poolSlot() = std::make_unique<ThreadPool>();
    return *poolSlot();
}

ScopedThreadPoolSize::ScopedThreadPoolSize(unsigned threads)
{
    std::lock_guard<std::mutex> lock(poolMutex());
    poolSlot() = std::make_unique<ThreadPool>(threads);
}

ScopedThreadPoolSize::~ScopedThreadPoolSize()
{
    // Drop the override; the next globalPool() call rebuilds the
    // environment-sized default lazily.
    std::lock_guard<std::mutex> lock(poolMutex());
    poolSlot().reset();
}

} // namespace runtime
} // namespace ascend
