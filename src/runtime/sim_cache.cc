/**
 * @file
 * Simulation cache implementation.
 */

#include "runtime/sim_cache.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace ascend {
namespace runtime {

namespace {

/** Append an integer field. */
void
put(std::string &s, std::uint64_t v)
{
    s += std::to_string(v);
    s += ',';
}

/**
 * Append a double bit-exactly (decimal formatting would round and
 * alias distinct sweep points onto one key).
 */
void
putDouble(std::string &s, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    put(s, bits);
}

/// @{ On-disk cache format primitives. Every scalar is a raw
/// little-fixed-width u64 in host byte order (cache files are
/// machine-local, not an interchange format).
constexpr char kFileMagic[8] = {'A', 'S', 'C', 'S',
                                'I', 'M', 'C', '\n'};
constexpr std::uint64_t kFileFormatVersion = 2;

void
writeU64(std::string &buf, std::uint64_t v)
{
    char raw[sizeof(v)];
    std::memcpy(raw, &v, sizeof(v));
    buf.append(raw, sizeof(v));
}

void
writeBytes(std::string &buf, const std::string &s)
{
    writeU64(buf, s.size());
    buf.append(s);
}

void
writeResult(std::string &buf, const core::SimResult &r)
{
    // Field-wise, never a struct memcpy: padding bytes would leak
    // into the file and any layout change would silently corrupt.
    writeU64(buf, r.totalCycles);
    writeU64(buf, r.totalFlops);
    writeU64(buf, r.instrsExecuted);
    writeU64(buf, r.barriers);
    for (const core::PipeStats &p : r.pipes) {
        writeU64(buf, p.busyCycles);
        writeU64(buf, p.finishCycle);
        writeU64(buf, p.waitCycles);
        writeU64(buf, p.instrs);
    }
    for (Bytes b : r.busBytes)
        writeU64(buf, b);
}

/** Bounds-checked cursor over a loaded file image. */
struct FileReader
{
    const std::string &data;
    std::size_t pos = 0;

    bool
    readU64(std::uint64_t &v)
    {
        if (data.size() - pos < sizeof(v))
            return false;
        std::memcpy(&v, data.data() + pos, sizeof(v));
        pos += sizeof(v);
        return true;
    }

    bool
    readBytes(std::string &s, std::size_t max_len)
    {
        std::uint64_t len = 0;
        if (!readU64(len) || len > max_len ||
            data.size() - pos < len)
            return false;
        s.assign(data.data() + pos, std::size_t(len));
        pos += std::size_t(len);
        return true;
    }

    bool
    readResult(core::SimResult &r)
    {
        std::uint64_t v = 0;
        if (!readU64(v))
            return false;
        r.totalCycles = v;
        if (!readU64(v))
            return false;
        r.totalFlops = v;
        if (!readU64(v))
            return false;
        r.instrsExecuted = v;
        if (!readU64(r.barriers))
            return false;
        for (core::PipeStats &p : r.pipes) {
            if (!readU64(p.busyCycles) ||
                !readU64(p.finishCycle) ||
                !readU64(p.waitCycles) || !readU64(p.instrs))
                return false;
        }
        for (Bytes &b : r.busBytes)
            if (!readU64(b))
                return false;
        return true;
    }
};

/** Longest key the loader accepts (a corrupt length must not OOM). */
constexpr std::size_t kMaxKeyLen = 1 << 20;

} // anonymous namespace

std::string
fingerprint(const arch::CoreConfig &config)
{
    std::string s;
    s.reserve(160);
    s += "cfg:";
    put(s, std::uint64_t(config.version));
    putDouble(s, config.clockGhz);
    put(s, config.cube.m0);
    put(s, config.cube.k0);
    put(s, config.cube.n0);
    put(s, config.supportsFp16);
    put(s, config.supportsInt8);
    put(s, config.supportsInt4);
    put(s, config.supportsFp32Cube);
    put(s, config.vectorWidthBytes);
    put(s, config.busABytesPerCycle);
    put(s, config.busBBytesPerCycle);
    put(s, config.busUbBytesPerCycle);
    put(s, config.busExtBytesPerCycle);
    put(s, config.l0aBytes);
    put(s, config.l0bBytes);
    put(s, config.l0cBytes);
    put(s, config.l1Bytes);
    put(s, config.ubBytes);
    put(s, config.dispatchPerCycle);
    return s;
}

std::string
fingerprint(const compiler::CompileOptions &options)
{
    std::string s;
    s.reserve(48);
    s += "opt:";
    put(s, options.pipelineDepth);
    putDouble(s, options.sparsity.weightDensity);
    put(s, options.sparsity.structured);
    put(s, options.chargeExtTraffic);
    put(s, options.mapGemmToVector);
    return s;
}

std::string
fingerprint(const model::Layer &layer)
{
    std::string s;
    s.reserve(128);
    s += "lay:";
    put(s, std::uint64_t(layer.kind));
    put(s, std::uint64_t(layer.dtype));
    put(s, layer.batch);
    put(s, layer.inC);
    put(s, layer.outC);
    put(s, layer.inH);
    put(s, layer.inW);
    put(s, layer.kernelH);
    put(s, layer.kernelW);
    put(s, layer.strideH);
    put(s, layer.strideW);
    put(s, layer.padH);
    put(s, layer.padW);
    put(s, layer.gemmM);
    put(s, layer.gemmK);
    put(s, layer.gemmN);
    put(s, layer.matmulCount);
    put(s, layer.elems);
    put(s, layer.rowLen);
    putDouble(s, layer.cvPasses);
    putDouble(s, layer.fusedEvictPasses);
    put(s, std::uint64_t(layer.act));
    put(s, layer.inputBytesOverride);
    put(s, layer.outputBytesOverride);
    return s;
}

bool
parseLayerFingerprint(const std::string &key, model::Layer &out)
{
    // The layer fingerprint is always the final component of a
    // session key, so take the last "lay:".
    const std::size_t at = key.rfind("lay:");
    if (at == std::string::npos)
        return false;
    const char *p = key.c_str() + at + 4;
    const char *end = key.c_str() + key.size();

    // 24 comma-terminated u64 fields, in fingerprint(layer) order.
    std::uint64_t f[24];
    for (std::uint64_t &v : f) {
        if (p >= end)
            return false;
        char *stop = nullptr;
        v = std::strtoull(p, &stop, 10);
        if (stop == p || stop >= end || *stop != ',')
            return false;
        p = stop + 1;
    }
    if (p != end)
        return false;
    if (f[0] > std::uint64_t(model::LayerKind::CvOp) ||
        f[1] > std::uint64_t(DataType::Fp32) ||
        f[21] > std::uint64_t(model::ActKind::Swish))
        return false;

    auto asDouble = [](std::uint64_t bits) {
        double d;
        static_assert(sizeof(d) == sizeof(bits));
        std::memcpy(&d, &bits, sizeof(d));
        return d;
    };
    out = model::Layer{};
    out.kind = model::LayerKind(f[0]);
    out.dtype = DataType(f[1]);
    out.batch = unsigned(f[2]);
    out.inC = unsigned(f[3]);
    out.outC = unsigned(f[4]);
    out.inH = unsigned(f[5]);
    out.inW = unsigned(f[6]);
    out.kernelH = unsigned(f[7]);
    out.kernelW = unsigned(f[8]);
    out.strideH = unsigned(f[9]);
    out.strideW = unsigned(f[10]);
    out.padH = unsigned(f[11]);
    out.padW = unsigned(f[12]);
    out.gemmM = f[13];
    out.gemmK = f[14];
    out.gemmN = f[15];
    out.matmulCount = f[16];
    out.elems = f[17];
    out.rowLen = f[18];
    out.cvPasses = asDouble(f[19]);
    out.fusedEvictPasses = asDouble(f[20]);
    out.act = model::ActKind(f[21]);
    out.inputBytesOverride = f[22];
    out.outputBytesOverride = f[23];
    return true;
}

std::string
fingerprint(const resilience::ResilienceOptions &options)
{
    std::string s;
    s.reserve(48);
    s += "res:";
    put(s, options.enabled);
    put(s, options.faultSeed);
    putDouble(s, options.stragglerSlowdown);
    put(s, options.scenario.size());
    s += options.scenario;
    return s;
}

SimCache::SimCache(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

bool
SimCache::lookup(const std::string &key, core::SimResult &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lruPos);
    out = it->second.value;
    return true;
}

void
SimCache::insert(const std::string &key, const core::SimResult &value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        // Concurrent misses on one key both simulate; the results
        // are identical, so last-writer-wins is safe.
        it->second.value = value;
        lru_.splice(lru_.begin(), lru_, it->second.lruPos);
        return;
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{value, lru_.begin()});
    while (map_.size() > capacity_) {
        map_.erase(lru_.back());
        lru_.pop_back();
        ++evictions_;
    }
}

SimCache::Stats
SimCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = map_.size();
    s.diskLoads = diskLoads_;
    s.diskStores = diskStores_;
    return s;
}

void
SimCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    lru_.clear();
}

void
SimCache::forEach(const std::function<void(const std::string &,
                                           const core::SimResult &)>
                      &fn) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string &key : lru_) // MRU first, like saveFile
        fn(key, map_.at(key).value);
}

std::string
SimCache::summary() const
{
    const Stats s = stats();
    std::ostringstream os;
    os << "sim-cache: " << s.hits << " hits, " << s.misses
       << " misses, " << s.entries << " entries, " << s.evictions
       << " evictions (" << int(100.0 * s.hitRate() + 0.5)
       << "% hit rate)";
    if (s.diskLoads || s.diskStores)
        os << " [disk: " << s.diskLoads << " loaded, "
           << s.diskStores << " stored]";
    return os.str();
}

const char *
SimCache::codeVersion()
{
    // Manually bumped when compilation or simulation semantics
    // change (anything that can alter a SimResult for an unchanged
    // fingerprint). The fingerprints themselves already separate
    // config/option/layer changes; this guards the code.
    return "ascend-sim-4";
}

std::string
SimCache::filePath(const std::string &dir)
{
    // One fixed name; the version lives in the header (checked on
    // load), not the name, so stale files are reclaimed by overwrite
    // instead of accumulating.
    return dir + "/sim_cache.bin";
}

std::size_t
SimCache::loadFile(const std::string &path, const std::string &version)
{
    std::string data;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            return 0;
        std::ostringstream os;
        os << in.rdbuf();
        data = os.str();
    }

    FileReader r{data};
    if (data.size() < sizeof(kFileMagic) ||
        std::memcmp(data.data(), kFileMagic, sizeof(kFileMagic)) != 0)
        return 0;
    r.pos = sizeof(kFileMagic);

    std::uint64_t format = 0, pipes = 0, buses = 0, count = 0;
    std::string file_version;
    if (!r.readU64(format) || format != kFileFormatVersion ||
        !r.readU64(pipes) || pipes != isa::kNumPipes ||
        !r.readU64(buses) || buses != isa::kNumBuses ||
        !r.readBytes(file_version, kMaxKeyLen) ||
        file_version != version || !r.readU64(count))
        return 0;

    std::size_t loaded = 0;
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::string key;
        core::SimResult value;
        // A short or corrupt tail ends the load; entries already
        // validated stay (each is self-contained and deterministic).
        if (!r.readBytes(key, kMaxKeyLen) || !r.readResult(value))
            break;
        auto it = map_.find(key);
        if (it != map_.end()) {
            it->second.value = value;
            continue;
        }
        lru_.push_back(key); // file order is hot-first; append keeps it
        map_.emplace(key, Entry{value, std::prev(lru_.end())});
        ++loaded;
        while (map_.size() > capacity_) {
            map_.erase(lru_.back());
            lru_.pop_back();
            ++evictions_;
        }
    }
    diskLoads_ += loaded;
    return loaded;
}

bool
SimCache::saveFile(const std::string &path, const std::string &version)
{
    std::string buf;
    std::uint64_t stored = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        buf.reserve(64 + map_.size() * 256);
        buf.append(kFileMagic, sizeof(kFileMagic));
        writeU64(buf, kFileFormatVersion);
        writeU64(buf, isa::kNumPipes);
        writeU64(buf, isa::kNumBuses);
        writeBytes(buf, version);
        writeU64(buf, map_.size());
        for (const std::string &key : lru_) { // MRU first
            writeBytes(buf, key);
            writeResult(buf, map_.at(key).value);
        }
        stored = map_.size();
    }

    std::error_code ec;
    const std::filesystem::path target(path);
    if (target.has_parent_path())
        std::filesystem::create_directories(target.parent_path(), ec);

    // Write-to-temp + rename: readers only ever see a complete file,
    // and a concurrent writer loses the race wholesale instead of
    // interleaving. The temp name is per-process to keep two writers
    // off one temp file.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(buf.data(), std::streamsize(buf.size()));
        if (!out) {
            out.close();
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    // fsync the temp file before the rename: the rename orders the
    // *name* but not the *bytes*, so a power loss right after it could
    // otherwise publish a complete-looking file with a zeroed tail.
    // (loadFile tolerates such a tail — entries are length-prefixed
    // and validated — but the sync keeps the common case whole.)
    {
        const int fd = ::open(tmp.c_str(), O_WRONLY);
        if (fd < 0) {
            std::filesystem::remove(tmp, ec);
            return false;
        }
        const int rc = ::fsync(fd);
        ::close(fd);
        if (rc != 0) {
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    diskStores_ += stored;
    return true;
}

} // namespace runtime
} // namespace ascend
