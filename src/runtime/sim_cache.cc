/**
 * @file
 * Simulation cache implementation.
 */

#include "runtime/sim_cache.hh"

#include <cstring>
#include <sstream>

namespace ascend {
namespace runtime {

namespace {

/** Append an integer field. */
void
put(std::string &s, std::uint64_t v)
{
    s += std::to_string(v);
    s += ',';
}

/**
 * Append a double bit-exactly (decimal formatting would round and
 * alias distinct sweep points onto one key).
 */
void
putDouble(std::string &s, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    put(s, bits);
}

} // anonymous namespace

std::string
fingerprint(const arch::CoreConfig &config)
{
    std::string s;
    s.reserve(160);
    s += "cfg:";
    put(s, std::uint64_t(config.version));
    putDouble(s, config.clockGhz);
    put(s, config.cube.m0);
    put(s, config.cube.k0);
    put(s, config.cube.n0);
    put(s, config.supportsFp16);
    put(s, config.supportsInt8);
    put(s, config.supportsInt4);
    put(s, config.supportsFp32Cube);
    put(s, config.vectorWidthBytes);
    put(s, config.busABytesPerCycle);
    put(s, config.busBBytesPerCycle);
    put(s, config.busUbBytesPerCycle);
    put(s, config.busExtBytesPerCycle);
    put(s, config.l0aBytes);
    put(s, config.l0bBytes);
    put(s, config.l0cBytes);
    put(s, config.l1Bytes);
    put(s, config.ubBytes);
    put(s, config.dispatchPerCycle);
    return s;
}

std::string
fingerprint(const compiler::CompileOptions &options)
{
    std::string s;
    s.reserve(48);
    s += "opt:";
    put(s, options.pipelineDepth);
    putDouble(s, options.sparsity.weightDensity);
    put(s, options.sparsity.structured);
    put(s, options.chargeExtTraffic);
    put(s, options.mapGemmToVector);
    return s;
}

std::string
fingerprint(const model::Layer &layer)
{
    std::string s;
    s.reserve(128);
    s += "lay:";
    put(s, std::uint64_t(layer.kind));
    put(s, std::uint64_t(layer.dtype));
    put(s, layer.batch);
    put(s, layer.inC);
    put(s, layer.outC);
    put(s, layer.inH);
    put(s, layer.inW);
    put(s, layer.kernelH);
    put(s, layer.kernelW);
    put(s, layer.strideH);
    put(s, layer.strideW);
    put(s, layer.padH);
    put(s, layer.padW);
    put(s, layer.gemmM);
    put(s, layer.gemmK);
    put(s, layer.gemmN);
    put(s, layer.matmulCount);
    put(s, layer.elems);
    put(s, layer.rowLen);
    putDouble(s, layer.cvPasses);
    putDouble(s, layer.fusedEvictPasses);
    put(s, std::uint64_t(layer.act));
    put(s, layer.inputBytesOverride);
    put(s, layer.outputBytesOverride);
    return s;
}

std::string
fingerprint(const resilience::ResilienceOptions &options)
{
    std::string s;
    s.reserve(48);
    s += "res:";
    put(s, options.enabled);
    put(s, options.faultSeed);
    putDouble(s, options.stragglerSlowdown);
    return s;
}

SimCache::SimCache(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

bool
SimCache::lookup(const std::string &key, core::SimResult &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lruPos);
    out = it->second.value;
    return true;
}

void
SimCache::insert(const std::string &key, const core::SimResult &value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        // Concurrent misses on one key both simulate; the results
        // are identical, so last-writer-wins is safe.
        it->second.value = value;
        lru_.splice(lru_.begin(), lru_, it->second.lruPos);
        return;
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{value, lru_.begin()});
    while (map_.size() > capacity_) {
        map_.erase(lru_.back());
        lru_.pop_back();
        ++evictions_;
    }
}

SimCache::Stats
SimCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = map_.size();
    return s;
}

void
SimCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    lru_.clear();
}

std::string
SimCache::summary() const
{
    const Stats s = stats();
    std::ostringstream os;
    os << "sim-cache: " << s.hits << " hits, " << s.misses
       << " misses, " << s.entries << " entries, " << s.evictions
       << " evictions (" << int(100.0 * s.hitRate() + 0.5)
       << "% hit rate)";
    return os.str();
}

} // namespace runtime
} // namespace ascend
