/**
 * @file
 * Content-addressed memo of core simulation results.
 *
 * Every sweep bench re-simulates identical (core config, compile
 * options, layer shape) triples dozens of times — ResNet50 alone
 * repeats the same bottleneck block shapes across its stages, and a
 * config sweep re-runs every unchanged layer per design point. The
 * simulator is deterministic and SimResult captures its complete
 * output, so the triple fully determines the result and can be
 * memoized.
 *
 * Keys are exact serializations of every field that can influence
 * compilation or simulation (no lossy hashing beyond the hash map's
 * own bucketing, so collisions cannot corrupt results). Layer and
 * network *names* are deliberately excluded: two layers with the same
 * shape share one entry, which is where the hit rate comes from.
 *
 * The cache is thread-safe (one mutex; the guarded work is a map
 * probe, orders of magnitude cheaper than the simulation it saves)
 * and LRU-bounded. Hit/miss/eviction counters are exposed for
 * observability (ASCEND_SIM_STATS=1 prints them from the benches).
 *
 * Persistence: loadFile()/saveFile() round-trip the entries through a
 * versioned binary file so a warm ASCEND_CACHE_DIR survives process
 * exit. The header carries a magic, a format version, the pipe/bus
 * array dimensions, and a simulator code-version string; any mismatch
 * makes the loader ignore the file (a stale cache silently rebuilds,
 * it never corrupts results). Writes go to a temp file renamed into
 * place, so a crashed or concurrent writer cannot tear the file;
 * truncated or corrupt files load as far as they validate and the
 * rest is dropped.
 */

#ifndef ASCEND_RUNTIME_SIM_CACHE_HH
#define ASCEND_RUNTIME_SIM_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "arch/core_config.hh"
#include "compiler/layer_compiler.hh"
#include "core/core_sim.hh"
#include "model/layer.hh"
#include "resilience/policy.hh"

namespace ascend {
namespace runtime {

/**
 * Exact fingerprint of every CoreConfig field the compiler or
 * simulator reads (the name is cosmetic and excluded).
 */
std::string fingerprint(const arch::CoreConfig &config);

/** Exact fingerprint of a CompileOptions value. */
std::string fingerprint(const compiler::CompileOptions &options);

/** Exact shape fingerprint of a layer (name excluded). */
std::string fingerprint(const model::Layer &layer);

/**
 * Exact fingerprint of resilience options. Sessions mix this into
 * their key so fault-injected runs never alias fault-free entries.
 */
std::string fingerprint(const resilience::ResilienceOptions &options);

/**
 * Recover the layer shape serialized in a cache key: the inverse of
 * fingerprint(layer) over the trailing "lay:" component every
 * SimSession key ends with. The surrogate cost model trains from a
 * warm cache through this (the name is not recoverable — it was never
 * fingerprinted). Returns false when @p key carries no well-formed
 * layer fingerprint.
 */
bool parseLayerFingerprint(const std::string &key, model::Layer &out);

/**
 * Thread-safe LRU memo: fingerprint key -> SimResult.
 */
class SimCache
{
  public:
    /** Counter snapshot. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t entries = 0;
        std::uint64_t diskLoads = 0;  ///< entries adopted from disk
        std::uint64_t diskStores = 0; ///< entries persisted to disk

        double
        hitRate() const
        {
            const std::uint64_t total = hits + misses;
            return total ? double(hits) / double(total) : 0.0;
        }
    };

    /** Entry bound; the default comfortably holds every zoo sweep. */
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    explicit SimCache(std::size_t capacity = kDefaultCapacity);

    /**
     * Probe for @p key. On hit copies the memoized result into
     * @p out, refreshes recency, and returns true; counts a miss and
     * returns false otherwise.
     */
    bool lookup(const std::string &key, core::SimResult &out);

    /**
     * Memoize @p value under @p key (overwrites an existing entry
     * with the identical deterministic value). Evicts the least
     * recently used entry when the bound is exceeded.
     */
    void insert(const std::string &key, const core::SimResult &value);

    Stats stats() const;
    std::size_t capacity() const { return capacity_; }

    /** Drop all entries; counters survive (they are cumulative). */
    void clear();

    /** One-line human-readable counter summary. */
    std::string summary() const;

    /**
     * Visit every entry, most recently used first, under the cache
     * lock (so @p fn must not call back into this cache). Counts
     * neither hits nor recency. Export path for consumers that mine
     * memoized results wholesale — e.g. the surrogate cost model
     * training from a warm ASCEND_CACHE_DIR cache.
     */
    void forEach(const std::function<void(const std::string &,
                                          const core::SimResult &)>
                     &fn) const;

    /**
     * Simulator code-version fingerprint baked into cache files.
     * Bump it whenever a change can alter any SimResult for an
     * unchanged key: stale on-disk entries are then ignored wholesale
     * instead of poisoning new runs.
     */
    static const char *codeVersion();

    /** The cache file this library uses under directory @p dir. */
    static std::string filePath(const std::string &dir);

    /**
     * Adopt entries from the cache file at @p path. Never throws: a
     * missing/unreadable file, a header mismatch (magic, format,
     * pipe/bus dimensions, @p version), or a truncated body simply
     * ends the load; every entry validated before the damage is kept.
     * Loaded entries count neither hits nor misses.
     *
     * @return the number of entries adopted (also added to the
     *         diskLoads counter).
     */
    std::size_t loadFile(const std::string &path,
                         const std::string &version = codeVersion());

    /**
     * Persist the current entries to @p path atomically (temp file +
     * rename; the parent directory is created if missing). Entries
     * are written in LRU order, most recent first, so a
     * lower-capacity reader keeps the hottest ones.
     *
     * @return true on success; false leaves any previous file intact.
     */
    bool saveFile(const std::string &path,
                  const std::string &version = codeVersion());

  private:
    struct Entry
    {
        core::SimResult value;
        std::list<std::string>::iterator lruPos;
    };

    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t diskLoads_ = 0;
    std::uint64_t diskStores_ = 0;
    std::unordered_map<std::string, Entry> map_;
    std::list<std::string> lru_; ///< front = most recently used
};

} // namespace runtime
} // namespace ascend

#endif // ASCEND_RUNTIME_SIM_CACHE_HH
