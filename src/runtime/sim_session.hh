/**
 * @file
 * SimSession: the single entry point for "run this layer/network on
 * this core".
 *
 * Before this layer existed, 17 binaries hand-rolled the same
 * compile -> simulate -> aggregate loop through compiler::Profiler,
 * each re-simulating identical layer shapes from scratch on one
 * thread. A SimSession owns the pieces of that loop — a CoreConfig,
 * a LayerCompiler, a CoreSim — plus a (shareable) SimCache, so:
 *
 *  - repeated (config, options, layer-shape) triples are memoized
 *    across layers, networks, benches within a process;
 *  - per-layer network profiling fans out over the runtime thread
 *    pool with index-ordered results (byte-identical output at any
 *    ASCEND_THREADS setting);
 *  - compiler::Profiler survives as a thin source-compatible shim
 *    over this class.
 *
 * Sessions default to one process-wide cache: sweeps that vary the
 * config still share entries for everything the sweep holds fixed.
 */

#ifndef ASCEND_RUNTIME_SIM_SESSION_HH
#define ASCEND_RUNTIME_SIM_SESSION_HH

#include <memory>

#include "compiler/layer_compiler.hh"
#include "core/core_sim.hh"
#include "model/network.hh"
#include "runtime/profile.hh"
#include "runtime/sim_cache.hh"
#include "surrogate/surrogate.hh"

namespace ascend {
namespace runtime {

/**
 * Compile-and-simulate service for one core configuration.
 */
class SimSession
{
  public:
    /**
     * @param config The core design point to simulate.
     * @param options Compilation knobs applied to every layer.
     * @param cache Memo shared with other sessions; nullptr selects
     *        the process-wide cache.
     * @param res Fault-injection knobs; the defaults (disabled,
     *        slowdown 1.0) reproduce fault-free results bit-for-bit
     *        and share their cache entries. Any other value is mixed
     *        into the session key so degraded runs cache separately.
     * @param sur Surrogate cost-model knobs (surrogate/surrogate.hh);
     *        default reads ASCEND_SURROGATE / ASCEND_SURROGATE_ERR.
     *        When enabled, runLayer answers cache misses through
     *        error-bounded O(1) interpolation between exact anchor
     *        simulations; predicted results cache under keys mixed
     *        with the surrogate fingerprint so they can never alias
     *        exact entries.
     */
    explicit SimSession(const arch::CoreConfig &config,
                        compiler::CompileOptions options = {},
                        std::shared_ptr<SimCache> cache = nullptr,
                        resilience::ResilienceOptions res = {},
                        surrogate::SurrogateOptions sur =
                            surrogate::SurrogateOptions::fromEnv());

    /**
     * Compile and simulate one layer, memoized. Tiered: exact cache
     * hit -> predicted cache hit -> surrogate prediction -> exact
     * simulation (the surrogate tier exists only when enabled and
     * itself falls back to exact per its hull/budget contract).
     */
    core::SimResult runLayer(const model::Layer &layer) const;

    /** runLayer, also reporting how the query was answered. */
    core::SimResult runLayer(const model::Layer &layer,
                             surrogate::Outcome *outcome_out) const;

    /** Compile and simulate every layer of @p net (inference). */
    std::vector<LayerRun> runInference(const model::Network &net) const;

    /**
     * Compile and simulate forward and backward work (one training
     * step without the optimizer's host-side work). The returned runs
     * are indexed like trainingSteps(net): runs for step i contain
     * the forward layer followed by its backward layers.
     */
    std::vector<std::vector<LayerRun>>
    runTraining(const model::Network &net,
                model::OptimizerKind opt =
                    model::OptimizerKind::Sgd) const;

    /** End-to-end simulation of a network; sums per-layer results. */
    core::SimResult inferenceResult(const model::Network &net) const;

    const arch::CoreConfig &config() const { return sim_.config(); }
    const compiler::CompileOptions &options() const { return options_; }
    const resilience::ResilienceOptions &resilience() const
    {
        return resilience_;
    }
    const surrogate::SurrogateOptions &surrogateOptions() const
    {
        return surrogate_.options();
    }
    const compiler::LayerCompiler &layerCompiler() const
    {
        return layerCompiler_;
    }

    /** The memo this session reads and writes. */
    SimCache &cache() const { return *cache_; }
    const std::shared_ptr<SimCache> &cachePtr() const { return cache_; }

    /** The process-wide cache all default-constructed sessions share. */
    static const std::shared_ptr<SimCache> &processCache();

  private:
    /**
     * The exact tier: memoized compile + cycle-level sim (plus the
     * straggler derate). The surrogate reaches its anchor shapes
     * through this, so anchors share the session's cache entries.
     * Does not charge pipe totals — callers charge once per query.
     */
    core::SimResult runLayerExact(const model::Layer &layer) const;

    compiler::CompileOptions options_;
    compiler::LayerCompiler layerCompiler_;
    core::CoreSim sim_;
    std::shared_ptr<SimCache> cache_;
    resilience::ResilienceOptions resilience_;
    surrogate::Surrogate surrogate_;
    /** fingerprint(config) + fingerprint(options) + fingerprint(res) */
    std::string sessionKey_;
    /** sessionKey_ + fingerprint(sur): the predicted-result namespace. */
    std::string surrogateKey_;
};

} // namespace runtime
} // namespace ascend

#endif // ASCEND_RUNTIME_SIM_SESSION_HH
