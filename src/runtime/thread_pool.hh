/**
 * @file
 * Shared worker-thread pool with deterministic fan-out.
 *
 * The simulation hot path is embarrassingly parallel at two levels:
 * config sweeps (one simulation per design point) and per-layer
 * network profiling (one simulation per layer). Both demand the same
 * contract, which this pool provides:
 *
 *  - parallelFor(n, fn) runs fn(0..n-1) across the workers and the
 *    calling thread; results land **by index** in caller-owned
 *    storage, never by completion order, so output is byte-identical
 *    no matter how many threads execute (the benches regenerate
 *    paper figures and must not drift with ASCEND_THREADS);
 *  - exceptions thrown by any iteration are captured and the first
 *    one is rethrown on the calling thread after the loop drains;
 *  - nested parallelFor calls (a parallel sweep whose iterations
 *    profile networks, themselves parallel) degrade to serial inline
 *    execution instead of deadlocking the pool.
 *
 * The ASCEND_THREADS environment variable caps the pool: unset picks
 * the hardware concurrency, 0 or 1 forces serial execution (for CI
 * determinism and debugging).
 */

#ifndef ASCEND_RUNTIME_THREAD_POOL_HH
#define ASCEND_RUNTIME_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ascend {
namespace runtime {

/**
 * A fixed-size pool of worker threads executing indexed loops.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Total concurrency including the calling thread;
     *        0 means "use configuredThreads()". A pool of size 1
     *        spawns no workers and runs every loop inline.
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (workers + the calling thread). */
    unsigned size() const { return unsigned(workers_.size()) + 1; }

    /**
     * Execute fn(i) for every i in [0, n). Blocks until all
     * iterations complete. If exactly one iteration threw, its
     * exception is rethrown unchanged; if several threw, every
     * failure is aggregated into one ascend::Error with code
     * ParallelFailure (no exception is silently dropped). Safe to
     * call from inside another parallelFor (runs serially).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Map @p items through @p fn concurrently; element i of the
     * result is fn(items[i]). The result type must be default
     * constructible (slots are pre-sized, then assigned by index).
     */
    template <typename T, typename Fn>
    auto
    map(const std::vector<T> &items, Fn &&fn)
        -> std::vector<decltype(fn(items.front()))>
    {
        std::vector<decltype(fn(items.front()))> out(items.size());
        parallelFor(items.size(),
                    [&](std::size_t i) { out[i] = fn(items[i]); });
        return out;
    }

    /**
     * Thread budget from the environment: ASCEND_THREADS if set
     * (0/1 = serial), otherwise std::thread::hardware_concurrency().
     */
    static unsigned configuredThreads();

  private:
    /** One fan-out in flight; shared by the caller and the workers. */
    struct Job
    {
        std::function<void(std::size_t)> fn;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> completed{0};
        /** Every captured exception, in completion order. */
        std::vector<std::exception_ptr> errors;
        std::mutex errorMutex;
    };

    void workerLoop();
    void runJob(Job &job);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::shared_ptr<Job> job_;
    bool stop_ = false;
};

/** The process-wide pool, sized by ASCEND_THREADS at first use. */
ThreadPool &globalPool();

/**
 * Test hook: replace the process-wide pool with one of @p threads
 * total concurrency for the lifetime of the scope, then restore the
 * environment-sized default. Lets one process sweep thread counts
 * (the determinism fuzz tests) without respawning under different
 * ASCEND_THREADS. Must only be constructed and destroyed while no
 * parallelFor is in flight.
 */
class ScopedThreadPoolSize
{
  public:
    explicit ScopedThreadPoolSize(unsigned threads);
    ~ScopedThreadPoolSize();

    ScopedThreadPoolSize(const ScopedThreadPoolSize &) = delete;
    ScopedThreadPoolSize &operator=(const ScopedThreadPoolSize &) =
        delete;
};

/** parallelFor on the process-wide pool. */
inline void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    globalPool().parallelFor(n, fn);
}

/** map on the process-wide pool. */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &items, Fn &&fn)
    -> std::vector<decltype(fn(items.front()))>
{
    return globalPool().map(items, std::forward<Fn>(fn));
}

} // namespace runtime
} // namespace ascend

#endif // ASCEND_RUNTIME_THREAD_POOL_HH
