/**
 * @file
 * Per-layer run records and fusion-group aggregation.
 *
 * Fusion groups: the paper's per-layer ratio charts (Figs. 4-8) count
 * each cube operator together with the vector post-operators that the
 * real tool-chain fuses behind it (bias, normalization, activation,
 * residual add). We reproduce that granularity by grouping each cube
 * layer with all following non-cube layers up to the next cube layer.
 *
 * These types originated in compiler::Profiler and moved here when
 * the simulation hot path was consolidated into the runtime layer;
 * compiler/profiler.hh aliases them for source compatibility.
 */

#ifndef ASCEND_RUNTIME_PROFILE_HH
#define ASCEND_RUNTIME_PROFILE_HH

#include <string>
#include <vector>

#include "core/core_sim.hh"
#include "model/layer.hh"

namespace ascend {
namespace runtime {

/** Per-layer simulation outcome. */
struct LayerRun
{
    model::Layer layer;
    core::SimResult result;
};

/** Aggregated statistics of one fusion group (one chart point). */
struct GroupProfile
{
    std::string name;          ///< name of the leading cube layer
    Cycles cubeBusy = 0;
    Cycles vectorBusy = 0;
    Cycles totalCycles = 0;
    Bytes l1ReadBytes = 0;
    Bytes l1WriteBytes = 0;
    Bytes extBytes = 0;
    Flops flops = 0;

    /** Cube/vector execution-time ratio (Figs. 4-8's y-axis). */
    double
    cubeVectorRatio() const
    {
        return vectorBusy ? double(cubeBusy) / double(vectorBusy) : 0.0;
    }

    /** Average L1 read bandwidth in bits per cycle (Fig. 9's y-axis). */
    double
    l1ReadBitsPerCycle() const
    {
        return totalCycles ? 8.0 * double(l1ReadBytes) / totalCycles : 0.0;
    }

    double
    l1WriteBitsPerCycle() const
    {
        return totalCycles ? 8.0 * double(l1WriteBytes) / totalCycles : 0.0;
    }
};

/** Aggregate inference runs into fusion groups. */
std::vector<GroupProfile> fusionGroups(const std::vector<LayerRun> &runs);

/**
 * Aggregate training runs into fusion groups: same grouping as
 * inference over the forward layers, with each group also absorbing
 * the backward work of its members.
 */
std::vector<GroupProfile>
fusionGroupsTraining(const std::vector<std::vector<LayerRun>> &runs);

/** Total cycles across runs. */
Cycles totalCycles(const std::vector<LayerRun> &runs);

} // namespace runtime
} // namespace ascend

#endif // ASCEND_RUNTIME_PROFILE_HH
