/**
 * @file
 * Fusion-group aggregation implementation.
 */

#include "runtime/profile.hh"

#include "common/logging.hh"

namespace ascend {
namespace runtime {

namespace {

void
addRunToGroup(GroupProfile &group, const LayerRun &run)
{
    group.cubeBusy += run.result.pipe(isa::Pipe::Cube).busyCycles;
    group.vectorBusy += run.result.pipe(isa::Pipe::Vector).busyCycles;
    group.totalCycles += run.result.totalCycles;
    group.l1ReadBytes += run.result.bus(isa::Bus::L1Read);
    group.l1WriteBytes += run.result.bus(isa::Bus::L1Write);
    group.extBytes += run.result.extBytes();
    group.flops += run.result.totalFlops;
}

} // anonymous namespace

std::vector<GroupProfile>
fusionGroups(const std::vector<LayerRun> &runs)
{
    std::vector<GroupProfile> groups;
    for (const LayerRun &run : runs) {
        if (run.layer.isCubeLayer() || groups.empty()) {
            GroupProfile g;
            g.name = run.layer.name;
            groups.push_back(std::move(g));
        }
        addRunToGroup(groups.back(), run);
    }
    return groups;
}

std::vector<GroupProfile>
fusionGroupsTraining(const std::vector<std::vector<LayerRun>> &runs)
{
    std::vector<GroupProfile> groups;
    for (const std::vector<LayerRun> &step : runs) {
        simAssert(!step.empty(), "empty training step");
        const LayerRun &fwd = step.front();
        if (fwd.layer.isCubeLayer() || groups.empty()) {
            GroupProfile g;
            g.name = fwd.layer.name;
            groups.push_back(std::move(g));
        }
        for (const LayerRun &run : step)
            addRunToGroup(groups.back(), run);
    }
    return groups;
}

Cycles
totalCycles(const std::vector<LayerRun> &runs)
{
    Cycles total = 0;
    for (const LayerRun &run : runs)
        total += run.result.totalCycles;
    return total;
}

} // namespace runtime
} // namespace ascend
