/**
 * @file
 * Lightweight wall-clock instrumentation of simulation hot paths.
 *
 * The repo tracks a perf trajectory across PRs (BENCH_runtime.json),
 * which needs per-stage timings that do not disturb the stage being
 * timed. A PerfScope is a named pair of atomic counters (calls,
 * nanoseconds); a PerfTimer is an RAII stopwatch charging one scope.
 * Scopes live in a process-wide registry so the ASCEND_SIM_STATS=1
 * report and the perf bench can enumerate whatever ran.
 *
 * Overhead: one steady_clock read on entry and one read plus two
 * relaxed atomic adds on exit — noise next to a layer or chip
 * simulation. Instrumentation must never change simulation output;
 * scopes carry timing only.
 */

#ifndef ASCEND_RUNTIME_PERF_STATS_HH
#define ASCEND_RUNTIME_PERF_STATS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/core_sim.hh"
#include "runtime/sim_cache.hh"

namespace ascend {
namespace runtime {

/** Named accumulator of time spent in one kind of work. */
class PerfScope
{
  public:
    explicit PerfScope(std::string name) : name_(std::move(name)) {}

    PerfScope(const PerfScope &) = delete;
    PerfScope &operator=(const PerfScope &) = delete;

    const std::string &name() const { return name_; }

    std::uint64_t
    calls() const
    {
        return calls_.load(std::memory_order_relaxed);
    }

    double
    seconds() const
    {
        return double(nanos_.load(std::memory_order_relaxed)) * 1e-9;
    }

    void
    charge(std::uint64_t nanos)
    {
        calls_.fetch_add(1, std::memory_order_relaxed);
        nanos_.fetch_add(nanos, std::memory_order_relaxed);
    }

  private:
    const std::string name_;
    std::atomic<std::uint64_t> calls_{0};
    std::atomic<std::uint64_t> nanos_{0};
};

/**
 * The process-wide scope named @p name (created on first use; the
 * returned reference stays valid for the process lifetime, so callers
 * typically bind it to a function-local static).
 */
PerfScope &perfScope(const std::string &name);

/** RAII stopwatch: charges its scope on destruction. */
class PerfTimer
{
  public:
    explicit PerfTimer(PerfScope &scope)
        : scope_(scope), start_(std::chrono::steady_clock::now())
    {
    }

    PerfTimer(const PerfTimer &) = delete;
    PerfTimer &operator=(const PerfTimer &) = delete;

    ~PerfTimer()
    {
        const auto elapsed =
            std::chrono::steady_clock::now() - start_;
        scope_.charge(std::uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                elapsed)
                .count()));
    }

  private:
    PerfScope &scope_;
    std::chrono::steady_clock::time_point start_;
};

/** Point-in-time copy of one scope's counters. */
struct PerfEntry
{
    std::string name;
    std::uint64_t calls = 0;
    double seconds = 0;
};

/** Snapshot of every registered scope, sorted by name. */
std::vector<PerfEntry> perfSnapshot();

/**
 * Process-wide simulated per-pipe totals, accumulated from every
 * SimResult a SimSession produced or served from cache. Unlike the
 * wall-clock scopes these are *sim-time* counters, so for a fixed
 * workload they are deterministic at any ASCEND_THREADS.
 */
struct PipeTotals
{
    std::array<std::uint64_t, isa::kNumPipes> busyCycles{};
    std::array<std::uint64_t, isa::kNumPipes> waitCycles{};
    std::array<std::uint64_t, isa::kNumPipes> instrs{};
    std::uint64_t totalCycles = 0;
    std::uint64_t barriers = 0;
    std::uint64_t results = 0; ///< SimResults charged

    /** Busy fraction of @p p against the summed run cycles. */
    double
    utilization(isa::Pipe p) const
    {
        const auto i = static_cast<std::size_t>(p);
        return totalCycles
            ? double(busyCycles[i]) / double(totalCycles) : 0;
    }
};

/** Charge one simulated result into the process-wide pipe totals. */
void chargePipes(const core::SimResult &result);

/** Point-in-time copy of the pipe totals. */
PipeTotals pipeTotals();

/** Zero the pipe totals (tests isolate themselves with this). */
void resetPipeTotals();

/**
 * Process-wide resilience totals, accumulated from every elastic
 * cluster run (cluster/elastic_run). Sim-time counters like
 * PipeTotals: deterministic for a fixed workload at any thread count.
 */
struct ResilienceCounters
{
    std::uint64_t elasticRuns = 0; ///< runs charged
    std::uint64_t failovers = 0;
    std::uint64_t shrinks = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t replayedSteps = 0;
    std::uint64_t speculations = 0;
    std::uint64_t sparesUsed = 0;
    std::uint64_t spareExhausted = 0;
    std::uint64_t checkpointsSaved = 0;
};

/** Accumulate @p delta into the process-wide resilience totals. */
void chargeResilience(const ResilienceCounters &delta);

/** Point-in-time copy of the resilience totals. */
ResilienceCounters resilienceTotals();

/** Zero the resilience totals (tests isolate themselves with this). */
void resetResilienceTotals();

/**
 * Process-wide discrete-event-kernel totals, accumulated as each
 * des::Kernel retires. Sim-structure counters like PipeTotals: for a
 * fixed workload they are deterministic at any thread count.
 */
struct KernelCounters
{
    std::uint64_t kernels = 0; ///< kernel instances retired
    std::uint64_t eventsScheduled = 0;
    std::uint64_t eventsDispatched = 0;
    std::uint64_t phasesRun = 0;
    std::uint64_t quiescentPoints = 0;
    /** Max pending events any one kernel observed (max-merged). */
    std::uint64_t queueHighWater = 0;
};

/**
 * Process-wide fleet-serving totals, accumulated from every
 * serving::runFleet simulation. Sim-time counters like PipeTotals:
 * deterministic for a fixed workload at any thread count.
 */
struct ServingCounters
{
    std::uint64_t servingRuns = 0; ///< fleet simulations charged
    std::uint64_t offered = 0;     ///< requests arrived
    std::uint64_t admitted = 0;    ///< requests past admission control
    std::uint64_t shed = 0;        ///< admission + deadline sheds
    std::uint64_t completed = 0;   ///< requests answered
    std::uint64_t goodput = 0;     ///< answered within their deadline
    std::uint64_t retries = 0;     ///< re-dispatches after failures
    std::uint64_t hedges = 0;      ///< hedged duplicates issued
    std::uint64_t replicaFailures = 0;
    std::uint64_t failovers = 0;   ///< warm spares activated
    std::uint64_t autoscaleUps = 0;
    std::uint64_t checkpointsSaved = 0;
    std::uint64_t reoffered = 0;    ///< closed-loop client re-offers
    std::uint64_t breakerTrips = 0; ///< circuit-breaker opens
    std::uint64_t brownoutEntries = 0; ///< quality-ladder descents
};

/** Accumulate @p delta into the process-wide serving totals. */
void chargeServing(const ServingCounters &delta);

/** Point-in-time copy of the serving totals. */
ServingCounters servingTotals();

/** Zero the serving totals (tests isolate themselves with this). */
void resetServingTotals();

/**
 * Process-wide surrogate cost-model totals, accumulated from every
 * surrogate-tiered SimSession::runLayer call. Wall-clock-free
 * outcome counters; the counts themselves may vary with thread
 * scheduling (a racing anchor sim can turn a later anchor query into
 * a cache hit), which is why they surface only in the stderr stats
 * report, never in deterministic output.
 */
struct SurrogateCounters
{
    std::uint64_t predictions = 0;    ///< O(1) interpolated answers
    std::uint64_t cacheHits = 0;      ///< memoized results re-served
    std::uint64_t anchors = 0;        ///< on-grid queries: exact sim
    std::uint64_t fallbackSmall = 0;  ///< below the min-work floor
    std::uint64_t fallbackHull = 0;   ///< outside the trusted hull
    std::uint64_t fallbackBudget = 0; ///< level disagreement too large
    std::uint64_t spotChecks = 0;     ///< sampled exact re-derivations
    /** Largest relative error a spot check observed (max-merged). */
    double maxRelError = 0;

    std::uint64_t
    queries() const
    {
        return predictions + cacheHits + anchors + fallbackSmall +
               fallbackHull + fallbackBudget + spotChecks;
    }
};

/** Accumulate @p delta into the process-wide surrogate totals. */
void chargeSurrogate(const SurrogateCounters &delta);

/** Point-in-time copy of the surrogate totals. */
SurrogateCounters surrogateTotals();

/** Zero the surrogate totals (tests isolate themselves with this). */
void resetSurrogateTotals();

/**
 * Process-wide graph-front-end totals, accumulated from every
 * graph::runGraph lowering and `.agr` importer call. Sim-structure
 * counters like PipeTotals: deterministic for a fixed workload at any
 * thread count (except graphCacheHits, which — like SimCache's own
 * counters — can vary when concurrent misses race; it surfaces only
 * in the stderr stats report).
 */
struct GraphCounters
{
    std::uint64_t graphsLowered = 0;  ///< lowering passes run
    std::uint64_t nodesLowered = 0;   ///< DAG nodes walked
    std::uint64_t layersLowered = 0;  ///< compute layers produced
    std::uint64_t structuralElided = 0; ///< concat/split wiring nodes
    std::uint64_t graphCacheHits = 0; ///< whole-graph memo hits
    std::uint64_t agrParses = 0;      ///< `.agr` texts parsed
    std::uint64_t agrPrints = 0;      ///< `.agr` texts printed
};

/** Accumulate @p delta into the process-wide graph totals. */
void chargeGraph(const GraphCounters &delta);

/** Point-in-time copy of the graph totals. */
GraphCounters graphTotals();

/** Zero the graph totals (tests isolate themselves with this). */
void resetGraphTotals();

/** Accumulate @p delta into the process-wide kernel totals. */
void chargeKernel(const KernelCounters &delta);

/** Point-in-time copy of the kernel totals. */
KernelCounters kernelTotals();

/** Zero the kernel totals (tests isolate themselves with this). */
void resetKernelTotals();

/**
 * The ASCEND_SIM_STATS=1 report: cache counters (including hit rate
 * and disk load/store counts), thread budget, per-scope timings, and
 * — when any simulation ran — per-pipe busy/wait cycle totals with
 * utilization, in one aligned table. Ends with a newline.
 */
std::string simStatsReport(const SimCache::Stats &stats,
                           unsigned threads);

} // namespace runtime
} // namespace ascend

#endif // ASCEND_RUNTIME_PERF_STATS_HH
