/**
 * @file
 * Static verifier and disassembler implementation.
 */

#include "isa/verify.hh"

#include <array>
#include <cstdio>
#include <sstream>

namespace ascend {
namespace isa {

std::vector<VerifyIssue>
verifyProgram(const Program &program)
{
    std::vector<VerifyIssue> issues;
    const auto &instrs = program.instrs();

    // Global set/wait totals per flag.
    std::array<long, kNumFlags> sets{};
    std::array<long, kNumFlags> waits{};
    for (const Instr &i : instrs) {
        if (i.op == Opcode::SetFlag)
            ++sets[i.flagId];
        else if (i.op == Opcode::WaitFlag)
            ++waits[i.flagId];
    }

    for (std::size_t f = 0; f < kNumFlags; ++f) {
        if (waits[f] > 0 && sets[f] == 0) {
            issues.push_back(
                {0, "flag " + std::to_string(f) +
                        " is waited on but never set"});
        } else if (waits[f] > sets[f]) {
            issues.push_back(
                {0, "flag " + std::to_string(f) + " has " +
                        std::to_string(waits[f]) + " waits but only " +
                        std::to_string(sets[f]) + " sets"});
        }
    }

    // Barrier segmentation: within each barrier-delimited segment,
    // waits can only be satisfied by sets in the same or an earlier
    // segment (dispatch never crosses a barrier while pipes block).
    std::array<long, kNumFlags> available{};
    std::array<long, kNumFlags> seg_sets{};
    std::array<long, kNumFlags> seg_waits{};
    auto close_segment = [&](std::size_t index) {
        for (std::size_t f = 0; f < kNumFlags; ++f) {
            available[f] += seg_sets[f] - seg_waits[f];
            if (available[f] < 0) {
                issues.push_back(
                    {index, "flag " + std::to_string(f) +
                                " underflows at the barrier: its sets "
                                "come after the barrier"});
                available[f] = 0;
            }
            seg_sets[f] = seg_waits[f] = 0;
        }
    };
    for (std::size_t idx = 0; idx < instrs.size(); ++idx) {
        const Instr &i = instrs[idx];
        switch (i.op) {
          case Opcode::SetFlag:
            ++seg_sets[i.flagId];
            break;
          case Opcode::WaitFlag:
            ++seg_waits[i.flagId];
            break;
          case Opcode::Barrier:
            close_segment(idx);
            break;
          case Opcode::Exec:
            if (i.cycles == 0 && i.numBusUses > 0)
                issues.push_back(
                    {idx, "zero-latency instruction moves bytes"});
            break;
        }
    }
    return issues;
}

bool
isWellFormed(const Program &program)
{
    return verifyProgram(program).empty();
}

std::string
disassemble(const Program &program, std::size_t max_lines)
{
    std::ostringstream os;
    os << "; program '" << program.name() << "', " << program.size()
       << " instructions\n";
    std::size_t line = 0;
    for (const Instr &i : program.instrs()) {
        if (line++ >= max_lines) {
            os << "; ... " << (program.size() - max_lines)
               << " more\n";
            break;
        }
        char buf[160];
        switch (i.op) {
          case Opcode::Exec: {
            std::string buses;
            for (unsigned b = 0; b < i.numBusUses; ++b) {
                buses += b ? ", " : " [";
                buses += toString(i.busUses[b].bus);
                buses += "=" + std::to_string(i.busUses[b].bytes);
            }
            if (i.numBusUses)
                buses += "]";
            std::snprintf(buf, sizeof(buf), "%-7s exec %llu cy%s%s%s",
                          toString(i.pipe),
                          static_cast<unsigned long long>(i.cycles),
                          buses.c_str(), i.tag ? "  ; " : "",
                          i.tag ? i.tag : "");
            break;
          }
          case Opcode::SetFlag:
            std::snprintf(buf, sizeof(buf), "%-7s set_flag %u",
                          toString(i.pipe), unsigned(i.flagId));
            break;
          case Opcode::WaitFlag:
            std::snprintf(buf, sizeof(buf), "%-7s wait_flag %u",
                          toString(i.pipe), unsigned(i.flagId));
            break;
          case Opcode::Barrier:
            std::snprintf(buf, sizeof(buf), "%-7s pipe_barrier", "psq");
            break;
        }
        os << buf << "\n";
    }
    return os.str();
}

} // namespace isa
} // namespace ascend
