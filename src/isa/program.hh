/**
 * @file
 * Program container and builder for the simulated Ascend ISA.
 */

#ifndef ASCEND_ISA_PROGRAM_HH
#define ASCEND_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace ascend {
namespace isa {

/**
 * An ordered instruction sequence as emitted by the compiler for one
 * task (typically one layer, or one tile block of a layer).
 *
 * The builder methods enforce basic well-formedness (flag ids in
 * range, bus-use count bounds) at construction time so the simulator
 * can assume valid input.
 */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : name_(std::move(name)) {}

    /** Append an executing instruction on @p pipe. */
    void
    exec(Pipe pipe, Cycles cycles, Flops flops = 0,
         std::initializer_list<BusUse> buses = {}, const char *tag = nullptr);

    /** Append a SET_FLAG on @p pipe for flag @p id. */
    void setFlag(Pipe pipe, std::uint8_t id, const char *tag = nullptr);

    /** Append a WAIT_FLAG on @p pipe for flag @p id. */
    void waitFlag(Pipe pipe, std::uint8_t id, const char *tag = nullptr);

    /** Append a full pipe barrier (dispatch drains all pipes). */
    void barrier(const char *tag = nullptr);

    /** Append all instructions of @p other to this program. */
    void append(const Program &other);

    const std::vector<Instr> &instrs() const { return instrs_; }
    std::size_t size() const { return instrs_.size(); }
    bool empty() const { return instrs_.empty(); }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Reserve storage for @p n instructions. */
    void reserve(std::size_t n) { instrs_.reserve(n); }

    /**
     * Count of SET_FLAG minus WAIT_FLAG occurrences per flag id; a
     * well-formed double-buffered program ends balanced (all zero)
     * unless it deliberately pre-seeds tokens. Exposed for tests and
     * compiler self-checks.
     */
    std::vector<int> flagBalance() const;

  private:
    std::string name_;
    std::vector<Instr> instrs_;
};

} // namespace isa
} // namespace ascend

#endif // ASCEND_ISA_PROGRAM_HH
