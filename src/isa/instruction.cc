/**
 * @file
 * Name tables for ISA enums.
 */

#include "isa/instruction.hh"

namespace ascend {
namespace isa {

const char *
toString(Pipe pipe)
{
    switch (pipe) {
      case Pipe::Scalar: return "scalar";
      case Pipe::Cube:   return "cube";
      case Pipe::Vector: return "vector";
      case Pipe::Mte1:   return "mte1";
      case Pipe::Mte2:   return "mte2";
      case Pipe::Mte3:   return "mte3";
      default:           return "?";
    }
}

const char *
toString(Bus bus)
{
    switch (bus) {
      case Bus::L1Read:  return "l1Read";
      case Bus::L1Write: return "l1Write";
      case Bus::UbRead:  return "ubRead";
      case Bus::UbWrite: return "ubWrite";
      case Bus::ExtA:    return "extA";
      case Bus::ExtB:    return "extB";
      case Bus::ExtOut:  return "extOut";
      default:           return "?";
    }
}

} // namespace isa
} // namespace ascend
