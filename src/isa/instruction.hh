/**
 * @file
 * Instruction representation for the simulated Ascend core ISA.
 *
 * The Ascend core (paper Fig. 1) exposes six asynchronous execution
 * pipes: the scalar unit, the cube unit, the vector unit, and three
 * memory-transfer-engine channels (MTE1: L1 -> L0A/L0B with img2col /
 * transpose / decompress, MTE2: external -> L1, MTE3: UB -> external /
 * L1). Instructions are dispatched in program order by the PSQ into
 * per-pipe queues and execute in order within each pipe; cross-pipe
 * ordering is expressed only through explicit SET_FLAG / WAIT_FLAG
 * pairs and full PIPE_BARRIERs (paper Fig. 3).
 *
 * Instructions carry their execution latency and per-bus byte counts,
 * which are computed by the compiler from a CoreConfig; the core
 * simulator only schedules them. This keeps the ISA a pure carrier and
 * lets the same program be replayed under different statistics modes.
 */

#ifndef ASCEND_ISA_INSTRUCTION_HH
#define ASCEND_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace ascend {
namespace isa {

/** Execution pipes of an Ascend core. */
enum class Pipe : std::uint8_t {
    Scalar = 0,
    Cube,
    Vector,
    Mte1,   ///< L1 -> L0A / L0B (img2col, transpose, decompress)
    Mte2,   ///< external (LLC/DDR/HBM) -> L1
    Mte3,   ///< UB -> external or UB -> L1
    NumPipes,
};

constexpr std::size_t kNumPipes = static_cast<std::size_t>(Pipe::NumPipes);

/** Human-readable pipe name. */
const char *toString(Pipe pipe);

/**
 * Buses whose traffic the simulator accounts per instruction.
 *
 * L1Read / L1Write correspond to the profile the paper reports in
 * Fig. 9; UbRead / UbWrite size the unified buffer; Ext is off-core
 * traffic (towards LLC / HBM) used by the SoC-level roofline.
 */
enum class Bus : std::uint8_t {
    L1Read = 0, ///< bytes read out of L1 (by MTE1, towards L0)
    L1Write,    ///< bytes written into L1 (by MTE2 fill or MTE3)
    UbRead,     ///< bytes read from the unified buffer
    UbWrite,    ///< bytes written into the unified buffer
    ExtA,       ///< inbound activation traffic (LLC/HBM -> core)
    ExtB,       ///< inbound weight traffic (LLC/HBM -> core)
    ExtOut,     ///< outbound result traffic (core -> LLC/HBM)
    NumBuses,
};

constexpr std::size_t kNumBuses = static_cast<std::size_t>(Bus::NumBuses);

const char *toString(Bus bus);

/** Instruction kinds; Exec covers every latency-consuming operation. */
enum class Opcode : std::uint8_t {
    Exec,       ///< busy the pipe for `cycles`, move `busBytes`
    SetFlag,    ///< increment flag `flagId` (zero-latency)
    WaitFlag,   ///< block the pipe until flag `flagId` is nonzero
    Barrier,    ///< PSQ-level barrier: drain all pipes before continuing
};

/** One byte-count accounting entry. */
struct BusUse
{
    Bus bus = Bus::ExtA;
    Bytes bytes = 0;
};

/** Maximum distinct buses a single instruction may touch. */
constexpr std::size_t kMaxBusUses = 3;

/**
 * A single decoded instruction.
 *
 * Plain aggregate; programs routinely contain millions of these, so it
 * stays small and trivially copyable.
 */
struct Instr
{
    Opcode op = Opcode::Exec;
    Pipe pipe = Pipe::Scalar;
    std::uint8_t flagId = 0;
    std::uint8_t numBusUses = 0;
    Cycles cycles = 0;
    Flops flops = 0;
    std::array<BusUse, kMaxBusUses> busUses{};
    const char *tag = nullptr; ///< static debug label, may be null
};

static_assert(sizeof(Instr) <= 80, "Instr should stay compact");

/** Number of addressable synchronization flags. */
constexpr std::size_t kNumFlags = 256;

} // namespace isa
} // namespace ascend

#endif // ASCEND_ISA_INSTRUCTION_HH
