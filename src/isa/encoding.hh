/**
 * @file
 * Instruction-stream size estimation and the instruction-compression
 * technique of Section 3.2 ("the instruction compression technique is
 * used in the Ascend-Lite core to reduce the bandwidth pressure on
 * the NoC").
 *
 * Encoded size: a realistic fixed-width base encoding (8 B per
 * executing instruction, 4 B per synchronization primitive).
 * Compression exploits the extreme repetitiveness of tiled loop
 * bodies: identical (opcode, pipe, flag) "shapes" recur thousands of
 * times with only operand fields changing, so a dictionary of shapes
 * plus per-instance deltas approaches the entropy of the stream.
 */

#ifndef ASCEND_ISA_ENCODING_HH
#define ASCEND_ISA_ENCODING_HH

#include "isa/program.hh"

namespace ascend {
namespace isa {

/** Byte sizes of the baseline encoding. */
constexpr Bytes kExecEncodedBytes = 8;
constexpr Bytes kSyncEncodedBytes = 4;
/** Dictionary entry cost and per-instance reference cost. */
constexpr Bytes kDictEntryBytes = 10;
constexpr Bytes kDictRefBytes = 2;

/** Uncompressed instruction-stream size of @p program. */
Bytes encodedBytes(const Program &program);

/**
 * Compressed size under shape-dictionary compression: unique
 * (opcode, pipe, flag, tag) shapes are stored once; every occurrence
 * costs a short reference plus an operand delta.
 */
Bytes compressedBytes(const Program &program);

/** Compression ratio (compressed / uncompressed), in (0, 1]. */
double compressionRatio(const Program &program);

} // namespace isa
} // namespace ascend

#endif // ASCEND_ISA_ENCODING_HH
