/**
 * @file
 * Static program verification and disassembly.
 *
 * The explicit-synchronization programming model (Fig. 3) makes
 * deadlocks a compiler-bug class: a WAIT_FLAG with no SET_FLAG
 * upstream hangs the machine. verifyProgram() runs a conservative
 * static check that catches the common classes without simulating:
 *
 *  - a WAIT_FLAG on a flag id that is never set anywhere,
 *  - more waits than sets on some flag (token underflow),
 *  - a wait before a barrier whose only matching sets come after the
 *    barrier (the barrier stalls dispatch, so those sets can never
 *    execute),
 *  - zero-latency Exec instructions with nonzero bus traffic
 *    (accounting bug).
 *
 * disassemble() renders a program as human-readable text for
 * debugging and golden-file tests.
 */

#ifndef ASCEND_ISA_VERIFY_HH
#define ASCEND_ISA_VERIFY_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace ascend {
namespace isa {

/** One verification finding. */
struct VerifyIssue
{
    std::size_t index;   ///< instruction index the issue anchors to
    std::string message;
};

/**
 * Statically check @p program; returns all findings (empty = clean).
 * Conservative: a clean report does not *prove* deadlock freedom for
 * arbitrary token interleavings, but every reported issue is real.
 */
std::vector<VerifyIssue> verifyProgram(const Program &program);

/** True when verifyProgram() reports nothing. */
bool isWellFormed(const Program &program);

/** Human-readable listing (one line per instruction). */
std::string disassemble(const Program &program, std::size_t max_lines = 64);

} // namespace isa
} // namespace ascend

#endif // ASCEND_ISA_VERIFY_HH
