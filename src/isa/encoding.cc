/**
 * @file
 * Instruction-stream encoding models.
 */

#include "isa/encoding.hh"

#include <unordered_set>

namespace ascend {
namespace isa {

namespace {

Bytes
instrBytes(const Instr &i)
{
    return i.op == Opcode::Exec ? kExecEncodedBytes : kSyncEncodedBytes;
}

/** Shape key: everything except the operand magnitudes. */
std::uint64_t
shapeKey(const Instr &i)
{
    std::uint64_t key = static_cast<std::uint64_t>(i.op);
    key = key * 31 + static_cast<std::uint64_t>(i.pipe);
    key = key * 31 + i.flagId;
    key = key * 31 + i.numBusUses;
    for (unsigned b = 0; b < i.numBusUses; ++b)
        key = key * 31 + static_cast<std::uint64_t>(i.busUses[b].bus);
    // The tag pointer identifies the emitting code site, which is
    // exactly the loop-body identity the compressor exploits.
    key = key * 31 + reinterpret_cast<std::uintptr_t>(i.tag);
    return key;
}

} // anonymous namespace

Bytes
encodedBytes(const Program &program)
{
    Bytes total = 0;
    for (const Instr &i : program.instrs())
        total += instrBytes(i);
    return total;
}

Bytes
compressedBytes(const Program &program)
{
    std::unordered_set<std::uint64_t> shapes;
    Bytes total = 0;
    for (const Instr &i : program.instrs()) {
        if (shapes.insert(shapeKey(i)).second)
            total += kDictEntryBytes;
        // Reference + operand delta (sync instrs have no operands).
        total += kDictRefBytes;
        if (i.op == Opcode::Exec)
            total += 2; // varint-coded operand delta
    }
    return total;
}

double
compressionRatio(const Program &program)
{
    const Bytes dense = encodedBytes(program);
    return dense ? double(compressedBytes(program)) / double(dense) : 1.0;
}

} // namespace isa
} // namespace ascend
