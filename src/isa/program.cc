/**
 * @file
 * Program builder implementation.
 */

#include "isa/program.hh"

#include "common/logging.hh"

namespace ascend {
namespace isa {

void
Program::exec(Pipe pipe, Cycles cycles, Flops flops,
              std::initializer_list<BusUse> buses, const char *tag)
{
    if (buses.size() > kMaxBusUses)
        panic("Program %s: %zu bus uses on one instruction (max %zu)",
              name_.c_str(), buses.size(), kMaxBusUses);
    Instr i;
    i.op = Opcode::Exec;
    i.pipe = pipe;
    i.cycles = cycles;
    i.flops = flops;
    i.tag = tag;
    for (const BusUse &b : buses)
        i.busUses[i.numBusUses++] = b;
    instrs_.push_back(i);
}

void
Program::setFlag(Pipe pipe, std::uint8_t id, const char *tag)
{
    Instr i;
    i.op = Opcode::SetFlag;
    i.pipe = pipe;
    i.flagId = id;
    i.tag = tag;
    instrs_.push_back(i);
}

void
Program::waitFlag(Pipe pipe, std::uint8_t id, const char *tag)
{
    Instr i;
    i.op = Opcode::WaitFlag;
    i.pipe = pipe;
    i.flagId = id;
    i.tag = tag;
    instrs_.push_back(i);
}

void
Program::barrier(const char *tag)
{
    Instr i;
    i.op = Opcode::Barrier;
    i.pipe = Pipe::Scalar;
    i.tag = tag;
    instrs_.push_back(i);
}

void
Program::append(const Program &other)
{
    instrs_.insert(instrs_.end(), other.instrs_.begin(),
                   other.instrs_.end());
}

std::vector<int>
Program::flagBalance() const
{
    std::vector<int> balance(kNumFlags, 0);
    for (const Instr &i : instrs_) {
        if (i.op == Opcode::SetFlag)
            ++balance[i.flagId];
        else if (i.op == Opcode::WaitFlag)
            --balance[i.flagId];
    }
    return balance;
}

} // namespace isa
} // namespace ascend
