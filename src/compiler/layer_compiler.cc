/**
 * @file
 * Layer lowering implementation.
 */

#include "compiler/layer_compiler.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/logging.hh"

namespace ascend {
namespace compiler {

using isa::Bus;
using isa::Pipe;
using model::Layer;
using model::LayerKind;

namespace {

/**
 * Reject malformed layer shapes before lowering. Zero dims would
 * silently produce empty or nonsensical programs (or divide by zero
 * in the cost model), so surface them as InvalidLayer errors the
 * caller can attribute to its model description.
 */
void
validateLayer(const Layer &layer)
{
    auto reject = [&layer](const char *why) {
        throwError(ErrorCode::InvalidLayer, "layer %s (%s): %s",
                   layer.name.c_str(), toString(layer.kind), why);
    };
    switch (layer.kind) {
      case LayerKind::Conv2d:
      case LayerKind::DepthwiseConv2d:
      case LayerKind::Pool2d:
        if (layer.batch == 0)
            reject("batch must be positive");
        if (layer.inC == 0 || layer.inH == 0 || layer.inW == 0)
            reject("input dims must be positive");
        if (layer.outC == 0)
            reject("output channels must be positive");
        if (layer.kernelH == 0 || layer.kernelW == 0)
            reject("kernel dims must be positive");
        if (layer.strideH == 0 || layer.strideW == 0)
            reject("strides must be positive");
        if (layer.kernelH > layer.inH + 2 * layer.padH ||
            layer.kernelW > layer.inW + 2 * layer.padW)
            reject("kernel larger than padded input");
        break;
      case LayerKind::Linear:
      case LayerKind::BatchedMatmul:
        if (layer.gemmM == 0 || layer.gemmK == 0 || layer.gemmN == 0)
            reject("GEMM dims must be positive");
        if (layer.matmulCount == 0)
            reject("matmul count must be positive");
        break;
      case LayerKind::LayerNorm:
      case LayerKind::Softmax:
        if (layer.elems == 0)
            reject("element count must be positive");
        if (layer.rowLen == 0)
            reject("row length must be positive");
        break;
      default:
        if (layer.elems == 0)
            reject("element count must be positive");
        break;
    }
}

} // anonymous namespace

LayerCompiler::LayerCompiler(const arch::CoreConfig &config,
                             CompileOptions options)
    : config_(config), cost_(config), options_(options)
{
    if (options_.pipelineDepth < 1)
        throwError(ErrorCode::ConfigValidation,
                   "pipeline depth must be >= 1, got %u",
                   options_.pipelineDepth);
}

double
LayerCompiler::im2colExpansion(const Layer &layer)
{
    if (layer.kind != LayerKind::Conv2d)
        return 1.0;
    const double expansion =
        (double(layer.kernelH) * layer.kernelW) /
        (double(layer.strideH) * layer.strideW);
    return std::max(expansion, 1.0);
}

double
LayerCompiler::vectorPasses(const Layer &layer)
{
    switch (layer.kind) {
      case LayerKind::BatchNorm:
        return 2.0;
      case LayerKind::LayerNorm:
        return 4.0;
      case LayerKind::Softmax:
        return 4.0;
      case LayerKind::Elementwise:
        return 1.0;
      case LayerKind::Activation:
        switch (layer.act) {
          case model::ActKind::Relu:
          case model::ActKind::Relu6:
            return 1.0;
          case model::ActKind::Sigmoid:
            return 2.0;
          case model::ActKind::Gelu:
          case model::ActKind::Swish:
            return 3.0;
        }
        return 1.0;
      case LayerKind::Pool2d:
      case LayerKind::DepthwiseConv2d:
        return double(layer.kernelH) * layer.kernelW;
      case LayerKind::CvOp:
        return std::max(layer.cvPasses, 1.0);
      default:
        panic("vectorPasses on cube layer %s", layer.name.c_str());
    }
}

GemmTile
LayerCompiler::selectTile(std::uint64_t m, std::uint64_t k, std::uint64_t n,
                          DataType dt) const
{
    const arch::CubeShape shape = config_.cubeShapeFor(dt);
    const Bytes es = bytesOf(dt);
    const Bytes accum_es = 4; // L0C accumulates in fp32 / int32

    auto align = [](std::uint64_t v, std::uint64_t f) {
        return std::max<std::uint64_t>(roundUp(v, f), f);
    };

    GemmTile t;
    t.mt = align(std::min<std::uint64_t>(m, 8ull * shape.m0), shape.m0);
    t.kt = align(std::min<std::uint64_t>(k, 16ull * shape.k0), shape.k0);
    t.nt = align(std::min<std::uint64_t>(n, 16ull * shape.n0), shape.n0);

    const unsigned buffers = 2; // double buffering in every L0
    auto fits = [&]() {
        return t.mt * t.kt * es * buffers <= config_.l0aBytes &&
               t.kt * t.nt * es * buffers <= config_.l0bBytes &&
               t.mt * t.nt * accum_es * buffers <= config_.l0cBytes;
    };
    auto halve = [&align](std::uint64_t v, std::uint64_t f) {
        return v > f ? align(v / 2, f) : f;
    };

    int guard = 0;
    while (!fits()) {
        // Shrink the dimension participating in the most over-full
        // buffer; prefer kt (it only lengthens the accumulation loop).
        if (t.mt * t.kt * es * buffers > config_.l0aBytes ||
            t.kt * t.nt * es * buffers > config_.l0bBytes) {
            if (t.kt > shape.k0)
                t.kt = halve(t.kt, shape.k0);
            else if (t.nt > shape.n0 &&
                     t.kt * t.nt * es * buffers > config_.l0bBytes)
                t.nt = halve(t.nt, shape.n0);
            else
                t.mt = halve(t.mt, shape.m0);
        } else {
            if (t.mt >= t.nt && t.mt > shape.m0)
                t.mt = halve(t.mt, shape.m0);
            else if (t.nt > shape.n0)
                t.nt = halve(t.nt, shape.n0);
            else
                t.mt = halve(t.mt, shape.m0);
        }
        if (++guard > 64)
            panic("selectTile failed to converge for %llu x %llu x %llu",
                  (unsigned long long)m, (unsigned long long)k,
                  (unsigned long long)n);
    }
    return t;
}

isa::Program
LayerCompiler::compileGemmWithTile(const Layer &layer,
                                   const GemmTile &tile) const
{
    simAssert(layer.isCubeLayer(),
              "compileGemmWithTile needs a cube layer");
    validateLayer(layer);
    // Caller-chosen tiles (the autotiler, sweeps) can request more
    // than the L0 buffers hold even single-buffered; report instead
    // of silently compiling an unexecutable program.
    const Bytes es = bytesOf(layer.dtype);
    const Bytes accum_es = 4;
    if (tile.mt == 0 || tile.kt == 0 || tile.nt == 0)
        throwError(ErrorCode::TileTooLarge,
                   "layer %s: tile dims must be positive",
                   layer.name.c_str());
    if (tile.mt * tile.kt * es > config_.l0aBytes ||
        tile.kt * tile.nt * es > config_.l0bBytes ||
        tile.mt * tile.nt * accum_es > config_.l0cBytes)
        throwError(ErrorCode::TileTooLarge,
                   "layer %s: tile %llux%llux%llu overflows L0 "
                   "(A %llu/%llu B %llu/%llu C %llu/%llu bytes)",
                   layer.name.c_str(),
                   static_cast<unsigned long long>(tile.mt),
                   static_cast<unsigned long long>(tile.kt),
                   static_cast<unsigned long long>(tile.nt),
                   static_cast<unsigned long long>(tile.mt * tile.kt * es),
                   static_cast<unsigned long long>(config_.l0aBytes),
                   static_cast<unsigned long long>(tile.kt * tile.nt * es),
                   static_cast<unsigned long long>(config_.l0bBytes),
                   static_cast<unsigned long long>(
                       tile.mt * tile.nt * accum_es),
                   static_cast<unsigned long long>(config_.l0cBytes));
    isa::Program prog(layer.name);
    compileGemm(prog, layer, tile);
    return prog;
}

void
LayerCompiler::compileGemm(isa::Program &prog, const Layer &layer,
                           const GemmTile &tile) const
{
    std::uint64_t m, k, n;
    layer.lowerToGemm(m, k, n);
    const DataType dt = layer.dtype;
    const Bytes es = bytesOf(dt);
    double expansion = im2colExpansion(layer);
    // Backward convolution GEMMs carry raw-volume overrides: their A
    // operand is the im2col matrix of the stored activations, which
    // is streamed raw and expanded on the fly (see Layer field docs).
    if (layer.inputBytesOverride) {
        expansion = std::max(1.0, double(m * k * es * layer.matmulCount) /
                                      double(layer.inputBytesOverride));
    }
    // Similarly a dX output collapses back to the raw input tensor.
    double out_factor = 1.0;
    if (layer.outputBytesOverride) {
        out_factor =
            std::min(1.0, double(layer.outputBytesOverride) /
                              double(m * n * es * layer.matmulCount));
    }
    const double evict_passes =
        layer.kind == LayerKind::Conv2d ? 1.0 : 2.0;

    // Sparse weights travel ZVC-compressed up to L1 and are inflated
    // by the MTE decomp module on the way into L0B; structured
    // pruning additionally lets the cube skip reduction slices.
    const core::SparsityConfig &sparsity = options_.sparsity;
    const double compute_scale = core::structuredComputeScale(sparsity);

    const std::uint64_t m_tiles = ceilDiv(m, tile.mt);
    const std::uint64_t n_tiles = ceilDiv(n, tile.nt);
    const std::uint64_t k_tiles = ceilDiv(k, tile.kt);

    // L1 residency: can one A panel (mt x K, raw form) stay in L1 and
    // be reused across all n tiles? Can the whole B matrix stay and be
    // reused across all m tiles? 40% of L1 is budgeted per operand,
    // leaving room for double buffering and the output path.
    const Bytes l1_budget = config_.l1Bytes * 2 / 5;
    const Bytes a_panel_raw = static_cast<Bytes>(
        double(tile.mt * k) * es / expansion);
    const bool a_panel_resident = a_panel_raw <= l1_budget;
    const bool b_resident = k * n * es <= l1_budget;

    const std::uint64_t iters =
        layer.matmulCount * m_tiles * n_tiles * k_tiles;
    prog.reserve(prog.size() + iters * 7 + 16);

    // Seed the free-buffer tokens (software pipeline depth).
    for (unsigned d = 0; d < options_.pipelineDepth; ++d) {
        prog.setFlag(Pipe::Scalar, flags::kL0aFree, "seed");
        prog.setFlag(Pipe::Scalar, flags::kL0bFree, "seed");
        prog.setFlag(Pipe::Scalar, flags::kL0cFree, "seed");
        prog.setFlag(Pipe::Scalar, flags::kUbFree, "seed");
    }

    for (std::uint64_t mm = 0; mm < layer.matmulCount; ++mm) {
        for (std::uint64_t mi = 0; mi < m_tiles; ++mi) {
            const std::uint64_t cm = std::min(tile.mt, m - mi * tile.mt);
            for (std::uint64_t ni = 0; ni < n_tiles; ++ni) {
                const std::uint64_t cn =
                    std::min(tile.nt, n - ni * tile.nt);
                for (std::uint64_t ki = 0; ki < k_tiles; ++ki) {
                    const std::uint64_t ck =
                        std::min(tile.kt, k - ki * tile.kt);

                    const Bytes a_expanded = cm * ck * es;
                    const Bytes a_raw = static_cast<Bytes>(
                        double(a_expanded) / expansion);
                    const Bytes b_bytes = ck * cn * es;

                    // Stage operands into L1 (skip reused panels).
                    const bool load_a = !a_panel_resident || ni == 0;
                    const bool load_b = !b_resident || mi == 0;
                    if (load_a) {
                        prog.exec(Pipe::Mte2, cost_.mte2(a_raw), 0,
                                  {{Bus::ExtA, a_raw},
                                   {Bus::L1Write, a_raw}},
                                  "mte2.A");
                        prog.setFlag(Pipe::Mte2, flags::kAL1Ready);
                    }
                    const Bytes b_stored = sparsity.sparse()
                        ? core::Zvc::compressedBytes(
                              b_bytes, dt, sparsity.weightDensity)
                        : b_bytes;
                    if (load_b) {
                        prog.exec(Pipe::Mte2, cost_.mte2(b_stored), 0,
                                  {{Bus::ExtB, b_stored},
                                   {Bus::L1Write, b_stored}},
                                  "mte2.B");
                        prog.setFlag(Pipe::Mte2, flags::kBL1Ready);
                    }

                    // L1 -> L0A with img2col expansion. The transfer
                    // occupies bus A for the *expanded* volume, but
                    // the L1 read port only sees the *raw* bytes: the
                    // img2col engine line-buffers each input row and
                    // replays it into every overlapping patch.
                    prog.waitFlag(Pipe::Mte1, flags::kL0aFree);
                    if (load_a)
                        prog.waitFlag(Pipe::Mte1, flags::kAL1Ready);
                    prog.exec(Pipe::Mte1, cost_.mte1A(a_expanded), 0,
                              {{Bus::L1Read, a_raw}}, "mte1.A");
                    prog.setFlag(Pipe::Mte1, flags::kAReady);

                    // L1 -> L0B.
                    // The decomp module reads the compressed stream
                    // from L1 and inflates at bus-B rate into L0B.
                    prog.waitFlag(Pipe::Mte1, flags::kL0bFree);
                    if (load_b)
                        prog.waitFlag(Pipe::Mte1, flags::kBL1Ready);
                    prog.exec(Pipe::Mte1, cost_.mte1B(b_bytes), 0,
                              {{Bus::L1Read, b_stored}}, "mte1.B");
                    prog.setFlag(Pipe::Mte1, flags::kBReady);

                    // Cube tile GEMM, accumulating into L0C.
                    prog.waitFlag(Pipe::Cube, flags::kAReady);
                    prog.waitFlag(Pipe::Cube, flags::kBReady);
                    if (ki == 0)
                        prog.waitFlag(Pipe::Cube, flags::kL0cFree);
                    Cycles cube_cycles = cost_.cubeGemm(cm, ck, cn, dt);
                    if (compute_scale < 1.0)
                        cube_cycles = std::max<Cycles>(
                            core::CostModel::kComputeOverhead + 1,
                            static_cast<Cycles>(double(cube_cycles) *
                                                compute_scale));
                    prog.exec(Pipe::Cube, cube_cycles,
                              core::CostModel::gemmFlops(cm, ck, cn), {},
                              "cube.gemm");
                    prog.setFlag(Pipe::Cube, flags::kL0aFree);
                    prog.setFlag(Pipe::Cube, flags::kL0bFree);
                    if (ki == k_tiles - 1)
                        prog.setFlag(Pipe::Cube, flags::kCReady);
                }

                // Evict the finished output tile through the vector
                // unit (precision conversion + bias), then store.
                const Bytes out_bytes = cm * cn * es;
                const Bytes out_ext = std::max<Bytes>(
                    1, static_cast<Bytes>(double(out_bytes) * out_factor));
                prog.waitFlag(Pipe::Vector, flags::kCReady);
                prog.waitFlag(Pipe::Vector, flags::kUbFree);
                prog.exec(Pipe::Vector,
                          cost_.vectorOp(cm * cn, dt, evict_passes), 0,
                          {{Bus::UbWrite, out_bytes}}, "vec.evict");
                prog.setFlag(Pipe::Vector, flags::kL0cFree);
                prog.setFlag(Pipe::Vector, flags::kOutReady);

                prog.waitFlag(Pipe::Mte3, flags::kOutReady);
                prog.exec(Pipe::Mte3, cost_.mte3Ext(out_ext), 0,
                          {{Bus::UbRead, out_bytes},
                           {Bus::ExtOut, out_ext}},
                          "mte3.out");
                prog.setFlag(Pipe::Mte3, flags::kUbFree);
            }
        }
    }
}

void
LayerCompiler::compileVector(isa::Program &prog, const Layer &layer) const
{
    const DataType dt = layer.dtype;
    const Bytes es = bytesOf(dt);
    const double passes = vectorPasses(layer);

    // Output-tile sizing: UB holds a double-buffered input tile and
    // output tile pair.
    std::uint64_t out_elems;
    Bytes in_bytes_total;
    switch (layer.kind) {
      case LayerKind::Pool2d:
      case LayerKind::DepthwiseConv2d:
        out_elems = layer.outputBytes() / es;
        in_bytes_total = layer.inputBytes() + layer.weightBytes();
        break;
      case LayerKind::Elementwise:
        out_elems = layer.elems;
        in_bytes_total = 2 * layer.inputBytes(); // two source operands
        break;
      default:
        out_elems = std::max<std::uint64_t>(layer.outputBytes() / es, 1);
        in_bytes_total = layer.inputBytes() + layer.weightBytes();
        break;
    }
    simAssert(out_elems > 0, "vector layer with no elements");

    const Bytes out_bytes_total = out_elems * es;
    const double in_ratio =
        double(in_bytes_total) / double(out_bytes_total);

    const Bytes ub_slot = config_.ubBytes /
                          (2ull * options_.pipelineDepth);
    // Split the slot between input and output proportionally.
    Bytes out_tile_bytes = static_cast<Bytes>(
        double(ub_slot) / (1.0 + in_ratio));
    out_tile_bytes = std::max<Bytes>(out_tile_bytes / es, 1) * es;
    const std::uint64_t tiles = ceilDiv(out_bytes_total, out_tile_bytes);

    prog.reserve(prog.size() + tiles * 8 + 8);
    for (unsigned d = 0; d < options_.pipelineDepth; ++d)
        prog.setFlag(Pipe::Scalar, flags::kUbFree, "seed");

    Bytes out_remaining = out_bytes_total;
    Bytes in_remaining = in_bytes_total;
    for (std::uint64_t ti = 0; ti < tiles; ++ti) {
        const Bytes ob = std::min(out_tile_bytes, out_remaining);
        const Bytes ib = ti + 1 == tiles
            ? in_remaining
            : std::min<Bytes>(static_cast<Bytes>(double(ob) * in_ratio),
                              in_remaining);
        out_remaining -= ob;
        in_remaining -= ib;
        const std::uint64_t tile_elems = std::max<std::uint64_t>(ob / es, 1);

        // Stage input: ext -> L1 -> UB.
        prog.waitFlag(Pipe::Mte2, flags::kUbFree);
        prog.exec(Pipe::Mte2, cost_.mte2(ib), 0,
                  {{Bus::ExtA, ib}, {Bus::L1Write, ib}}, "mte2.in");
        prog.setFlag(Pipe::Mte2, flags::kInReady);

        // Sliding-window ops re-stage each input row once per kernel
        // row (halo re-reads): at batch-1 mobile tile sizes the UB is
        // too small to keep kernelH rows of every channel resident.
        const Bytes staged =
            (layer.kind == LayerKind::DepthwiseConv2d ||
             layer.kind == LayerKind::Pool2d)
                ? ib * layer.kernelH : ib;
        prog.waitFlag(Pipe::Mte1, flags::kInReady);
        prog.exec(Pipe::Mte1, cost_.mte3L1(staged), 0,
                  {{Bus::L1Read, staged}, {Bus::UbWrite, staged}},
                  "mte1.in");
        prog.setFlag(Pipe::Mte1, flags::kAReady);

        prog.waitFlag(Pipe::Vector, flags::kAReady);
        prog.exec(Pipe::Vector, cost_.vectorOp(tile_elems, dt, passes),
                  static_cast<Flops>(double(tile_elems) * passes),
                  {{Bus::UbRead, ib}, {Bus::UbWrite, ob}}, "vec.op");
        prog.setFlag(Pipe::Vector, flags::kOutReady);

        prog.waitFlag(Pipe::Mte3, flags::kOutReady);
        prog.exec(Pipe::Mte3, cost_.mte3Ext(ob), 0,
                  {{Bus::UbRead, ob}, {Bus::ExtOut, ob}}, "mte3.out");
        prog.setFlag(Pipe::Mte3, flags::kUbFree);
    }
}

isa::Program
LayerCompiler::compile(const Layer &layer) const
{
    validateLayer(layer);
    isa::Program prog(layer.name);
    if (layer.isCubeLayer() && !options_.mapGemmToVector) {
        std::uint64_t m, k, n;
        layer.lowerToGemm(m, k, n);
        compileGemm(prog, layer, selectTile(m, k, n, layer.dtype));
    } else if (layer.isCubeLayer())
        compileVectorGemm(prog, layer);
    else
        compileVector(prog, layer);
    return prog;
}

void
LayerCompiler::compileVectorGemm(isa::Program &prog,
                                 const Layer &layer) const
{
    // Vector-Core lowering: each of the m*n outputs needs k MAC
    // passes through the lanes (the "general matrix calculation
    // (quaternion)" extension of Section 3.3).
    std::uint64_t m, k, n;
    layer.lowerToGemm(m, k, n);
    Layer as_vector = Layer::cvOp(layer.name + ".vgemm",
                                  m * n * layer.matmulCount,
                                  double(k), layer.dtype);
    compileVector(prog, as_vector);
}

} // namespace compiler
} // namespace ascend
