/**
 * @file
 * Auto-tiling search implementation.
 */

#include "compiler/autotiler.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace ascend {
namespace compiler {

AutoTiler::AutoTiler(const arch::CoreConfig &config, CompileOptions options)
    : config_(config), options_(options), sim_(config)
{
}

isa::Program
AutoTiler::compileWithTile(const model::Layer &layer,
                           const GemmTile &tile) const
{
    const LayerCompiler lc(config_, options_);
    return lc.compileGemmWithTile(layer, tile);
}

TileSearchResult
AutoTiler::search(const model::Layer &layer,
                  unsigned max_candidates) const
{
    simAssert(layer.isCubeLayer(), "AutoTiler needs a GEMM-like layer");
    std::uint64_t m, k, n;
    layer.lowerToGemm(m, k, n);
    const DataType dt = layer.dtype;
    const arch::CubeShape shape = config_.cubeShapeFor(dt);
    const Bytes es = bytesOf(dt);
    const LayerCompiler lc(config_, options_);

    TileSearchResult result;
    result.heuristic = lc.selectTile(m, k, n, dt);
    result.heuristicCycles =
        sim_.run(lc.compileGemmWithTile(layer, result.heuristic))
            .totalCycles;
    result.best = result.heuristic;
    result.bestCycles = result.heuristicCycles;

    // Enumerate legitimate tiles: power-of-two fractal multiples per
    // dimension that fit the double-buffered L0 buffers.
    auto candidates_for = [](std::uint64_t dim, unsigned fractal) {
        std::vector<std::uint64_t> out;
        for (std::uint64_t mult = 1; mult <= 32; mult *= 2) {
            const std::uint64_t tile = std::uint64_t(fractal) * mult;
            out.push_back(tile);
            if (tile >= dim)
                break;
        }
        return out;
    };
    const auto ms = candidates_for(m, shape.m0);
    const auto ks = candidates_for(k, shape.k0);
    const auto ns = candidates_for(n, shape.n0);

    std::vector<GemmTile> space;
    for (std::uint64_t mt : ms) {
        for (std::uint64_t kt : ks) {
            for (std::uint64_t nt : ns) {
                if (mt * kt * es * 2 > config_.l0aBytes ||
                    kt * nt * es * 2 > config_.l0bBytes ||
                    mt * nt * 4 * 2 > config_.l0cBytes)
                    continue;
                space.push_back(GemmTile{mt, kt, nt});
            }
        }
    }
    // Largest tiles first: per-instruction overheads favour them.
    std::sort(space.begin(), space.end(),
              [](const GemmTile &a, const GemmTile &b) {
                  return a.mt * a.kt * a.nt > b.mt * b.kt * b.nt;
              });
    if (space.size() > max_candidates)
        space.resize(max_candidates);

    for (const GemmTile &tile : space) {
        const Cycles cycles =
            sim_.run(lc.compileGemmWithTile(layer, tile)).totalCycles;
        ++result.candidatesTried;
        if (cycles < result.bestCycles) {
            result.bestCycles = cycles;
            result.best = tile;
        }
    }
    return result;
}

} // namespace compiler
} // namespace ascend
