/**
 * @file
 * Layer-to-ISA lowering ("auto tiling" tier of the software stack).
 *
 * This is the Level-1/Level-2 slice of the paper's multi-tier stack
 * (Section 5): it turns one layer into a tiled, double-buffered
 * program over the six pipes with explicit flag synchronization —
 * exactly what the TBE/TIK compilers emit for the real core.
 *
 * GEMM-like layers lower to a three-level loop nest (mt, nt, kt) with:
 *   MTE2  ext -> L1 operand staging (skipped for L1-resident panels),
 *   MTE1  L1 -> L0A (img2col for convolutions) and L1 -> L0B,
 *   CUBE  one tile GEMM per (mt, nt, kt), accumulating in L0C,
 *   VECTOR L0C -> UB eviction with fused output passes,
 *   MTE3  UB -> external store.
 * Buffer reuse is expressed with counting-semaphore flags seeded with
 * two tokens per buffer, giving depth-2 software pipelining on every
 * queue (the paper's Fig. 3 execution style).
 *
 * Vector layers (normalization, activation, softmax, pooling, and
 * depthwise convolutions, which do not map efficiently onto the cube
 * because their reduction depth is only kh*kw) lower to a streaming
 * MTE2 -> MTE1 -> VECTOR -> MTE3 pipeline staged through L1 and UB.
 */

#ifndef ASCEND_COMPILER_LAYER_COMPILER_HH
#define ASCEND_COMPILER_LAYER_COMPILER_HH

#include "core/cost_model.hh"
#include "core/sparsity.hh"
#include "isa/program.hh"
#include "model/layer.hh"

namespace ascend {
namespace compiler {

/** Flag-id allocation used by generated programs. */
namespace flags {
constexpr std::uint8_t kL0aFree = 0;
constexpr std::uint8_t kL0bFree = 1;
constexpr std::uint8_t kL0cFree = 2;
constexpr std::uint8_t kUbFree = 3;
constexpr std::uint8_t kAL1Ready = 4;
constexpr std::uint8_t kBL1Ready = 5;
constexpr std::uint8_t kAReady = 6;
constexpr std::uint8_t kBReady = 7;
constexpr std::uint8_t kCReady = 8;
constexpr std::uint8_t kOutReady = 9;
constexpr std::uint8_t kInReady = 10;
} // namespace flags

/** Chosen GEMM tile (multiples of the cube fractal, clamped to dims). */
struct GemmTile
{
    std::uint64_t mt = 0;
    std::uint64_t kt = 0;
    std::uint64_t nt = 0;
};

/** Compilation knobs. */
struct CompileOptions
{
    /** Software pipeline depth (tokens seeded per buffer). */
    unsigned pipelineDepth = 2;
    /**
     * Weight sparsity: ZVC-compressed weight staging through the MTE
     * decomp module, plus cube compute skipping when structured.
     */
    core::SparsityConfig sparsity;
    /**
     * Treat layer inputs/outputs as resident in the LLC side (charges
     * Ext traffic at LLC bandwidth). Always true at core scope; the
     * SoC roofline applies HBM limits on top.
     */
    bool chargeExtTraffic = true;
    /**
     * Vector-Core mode (Section 3.3: "Ascend core without cube"):
     * GEMM layers lower to the vector unit's general-matrix
     * extension instead of the cube. Used for the automotive SLAM
     * core, where matrices are tiny (quaternion math).
     */
    bool mapGemmToVector = false;
};

/**
 * Compiles a single layer for a fixed core configuration.
 */
class LayerCompiler
{
  public:
    /** Throws ascend::Error(ConfigValidation) on bad options. */
    explicit LayerCompiler(const arch::CoreConfig &config,
                           CompileOptions options = {});

    /**
     * Lower @p layer to a complete program. Throws
     * ascend::Error(InvalidLayer) on malformed shapes (zero dims,
     * kernel larger than the padded input, ...).
     */
    isa::Program compile(const model::Layer &layer) const;

    /**
     * Lower a GEMM-like layer with an explicitly chosen tile (the
     * auto-tiler's entry point). @p layer must be a cube layer.
     * Throws ascend::Error(InvalidLayer) on malformed shapes and
     * ascend::Error(TileTooLarge) when the tile overflows the L0
     * buffers even single-buffered.
     */
    isa::Program compileGemmWithTile(const model::Layer &layer,
                                     const GemmTile &tile) const;

    /**
     * Tile selection for a GEMM of logical shape m x k x n: the
     * largest fractal-aligned tile such that double-buffered A/B/C
     * tiles fit L0A / L0B / L0C.
     */
    GemmTile selectTile(std::uint64_t m, std::uint64_t k, std::uint64_t n,
                        DataType dt) const;

    const core::CostModel &costModel() const { return cost_; }

  private:
    void compileGemm(isa::Program &prog, const model::Layer &layer,
                     const GemmTile &tile) const;
    void compileVector(isa::Program &prog, const model::Layer &layer) const;
    void compileVectorGemm(isa::Program &prog,
                           const model::Layer &layer) const;

    /** Datapath passes the vector unit needs for @p layer. */
    static double vectorPasses(const model::Layer &layer);

    /** img2col expansion factor (expanded bytes / unique input bytes). */
    static double im2colExpansion(const model::Layer &layer);

    arch::CoreConfig config_;
    core::CostModel cost_;
    CompileOptions options_;
};

} // namespace compiler
} // namespace ascend

#endif // ASCEND_COMPILER_LAYER_COMPILER_HH
