/**
 * @file
 * Graph engine and multi-level scheduling hierarchy (Sections 5.1-5.2,
 * Figs. 16-17).
 *
 * The development stack lowers an application to Streams of in-order
 * Tasks; each Task splits into Blocks that can run on different cores
 * in parallel. This module provides:
 *
 *  - the graph compiler: Network -> Stream of Tasks (one task per
 *    fusion group, sized by the cycle-level core simulator), with a
 *    block count chosen from the task's parallelizable batch work;
 *  - the task scheduler: list-schedules the blocks of any number of
 *    concurrent apps onto a multi-core SoC, respecting in-stream
 *    ordering, and reports makespan and per-core utilization.
 */

#ifndef ASCEND_COMPILER_GRAPH_ENGINE_HH
#define ASCEND_COMPILER_GRAPH_ENGINE_HH

#include <string>
#include <vector>

#include "compiler/profiler.hh"

namespace ascend {
namespace compiler {

/** A schedulable unit: one fusion group of one network. */
struct Task
{
    std::string name;
    Cycles cycles = 0;     ///< single-core duration of the whole task
    unsigned blocks = 1;   ///< parallelizable block count
    /// Cross-stream dependency: wait for this event id before
    /// starting (-1 = none). Events model the "Streams ... with
    /// several tasks" + synchronization of the Section 5.2 runtime.
    int waitsForEvent = -1;
    /// Event id signalled when this task completes (-1 = none).
    int signalsEvent = -1;
};

/** An in-order task sequence. */
struct Stream
{
    std::string name;
    std::vector<Task> tasks;
};

/** One application: a set of concurrent streams. */
struct App
{
    std::string name;
    std::vector<Stream> streams;
};

/** Scheduler outcome. */
struct ScheduleResult
{
    Cycles makespan = 0;
    double avgCoreUtilization = 0;
    std::vector<Cycles> appFinish; ///< completion time per app
};

/**
 * The graph compiler: turn a network into one stream of tasks.
 *
 * @param session Core-level simulation session providing task
 *        durations (memoized across streams sharing shapes).
 * @param net The network.
 * @param max_blocks Upper bound on per-task block splitting (the
 *        explicit block count a programmer would write).
 */
Stream compileToStream(const runtime::SimSession &session,
                       const model::Network &net,
                       unsigned max_blocks = 4);

/** Source-compatible overload for callers still holding a Profiler. */
inline Stream
compileToStream(const Profiler &profiler, const model::Network &net,
                unsigned max_blocks = 4)
{
    return compileToStream(profiler.session(), net, max_blocks);
}

/**
 * List-schedule @p apps on @p cores cores.
 *
 * Streams are independent queues; a task becomes ready when its
 * stream predecessor completes; its blocks (each cycles/blocks long)
 * are placed greedily on the earliest-available cores; the task
 * completes when its last block does.
 */
ScheduleResult schedule(const std::vector<App> &apps, unsigned cores);

} // namespace compiler
} // namespace ascend

#endif // ASCEND_COMPILER_GRAPH_ENGINE_HH
