/**
 * @file
 * Profiler implementation.
 */

#include "compiler/profiler.hh"

namespace ascend {
namespace compiler {

Profiler::Profiler(const arch::CoreConfig &config, CompileOptions options)
    : layerCompiler_(config, options), sim_(config)
{
}

std::vector<LayerRun>
Profiler::runInference(const model::Network &net) const
{
    std::vector<LayerRun> runs;
    runs.reserve(net.layers.size());
    for (const model::Layer &layer : net.layers) {
        LayerRun run;
        run.layer = layer;
        run.result = sim_.run(layerCompiler_.compile(layer));
        runs.push_back(std::move(run));
    }
    return runs;
}

std::vector<std::vector<LayerRun>>
Profiler::runTraining(const model::Network &net,
                      model::OptimizerKind opt) const
{
    std::vector<std::vector<LayerRun>> steps;
    steps.reserve(net.layers.size());
    for (const model::TrainingStep &step :
         model::trainingSteps(net, opt)) {
        std::vector<LayerRun> runs;
        runs.reserve(1 + step.bwd.size());
        LayerRun fwd;
        fwd.layer = step.fwd;
        fwd.result = sim_.run(layerCompiler_.compile(step.fwd));
        runs.push_back(std::move(fwd));
        for (const model::Layer &b : step.bwd) {
            LayerRun run;
            run.layer = b;
            run.result = sim_.run(layerCompiler_.compile(b));
            runs.push_back(std::move(run));
        }
        steps.push_back(std::move(runs));
    }
    return steps;
}

void
Profiler::addRunToGroup(GroupProfile &group, const LayerRun &run)
{
    group.cubeBusy += run.result.pipe(isa::Pipe::Cube).busyCycles;
    group.vectorBusy += run.result.pipe(isa::Pipe::Vector).busyCycles;
    group.totalCycles += run.result.totalCycles;
    group.l1ReadBytes += run.result.bus(isa::Bus::L1Read);
    group.l1WriteBytes += run.result.bus(isa::Bus::L1Write);
    group.extBytes += run.result.extBytes();
    group.flops += run.result.totalFlops;
}

std::vector<GroupProfile>
Profiler::fusionGroups(const std::vector<LayerRun> &runs)
{
    std::vector<GroupProfile> groups;
    for (const LayerRun &run : runs) {
        if (run.layer.isCubeLayer() || groups.empty()) {
            GroupProfile g;
            g.name = run.layer.name;
            groups.push_back(std::move(g));
        }
        addRunToGroup(groups.back(), run);
    }
    return groups;
}

std::vector<GroupProfile>
Profiler::fusionGroupsTraining(const std::vector<std::vector<LayerRun>> &runs)
{
    std::vector<GroupProfile> groups;
    for (const std::vector<LayerRun> &step : runs) {
        simAssert(!step.empty(), "empty training step");
        const LayerRun &fwd = step.front();
        if (fwd.layer.isCubeLayer() || groups.empty()) {
            GroupProfile g;
            g.name = fwd.layer.name;
            groups.push_back(std::move(g));
        }
        for (const LayerRun &run : step)
            addRunToGroup(groups.back(), run);
    }
    return groups;
}

Cycles
Profiler::totalCycles(const std::vector<LayerRun> &runs)
{
    Cycles total = 0;
    for (const LayerRun &run : runs)
        total += run.result.totalCycles;
    return total;
}

core::SimResult
Profiler::inferenceResult(const model::Network &net) const
{
    core::SimResult total;
    for (const LayerRun &run : runInference(net))
        total.accumulate(run.result);
    return total;
}

} // namespace compiler
} // namespace ascend
