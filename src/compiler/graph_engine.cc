/**
 * @file
 * Graph engine implementation.
 */

#include "compiler/graph_engine.hh"

#include <algorithm>
#include <map>
#include <queue>

#include "common/logging.hh"

namespace ascend {
namespace compiler {

Stream
compileToStream(const runtime::SimSession &session,
                const model::Network &net, unsigned max_blocks)
{
    simAssert(max_blocks >= 1, "need at least one block per task");
    const auto runs = session.runInference(net);
    const auto groups = runtime::fusionGroups(runs);

    Stream stream;
    stream.name = net.name;
    stream.tasks.reserve(groups.size());
    for (const GroupProfile &g : groups) {
        Task task;
        task.name = g.name;
        task.cycles = g.totalCycles;
        // Block splitting follows available data parallelism: big
        // tasks split further, tiny tasks stay single-block (the
        // split is written explicitly by the programmer, per 5.2).
        task.blocks = std::clamp<unsigned>(
            static_cast<unsigned>(g.totalCycles / 20000), 1, max_blocks);
        stream.tasks.push_back(std::move(task));
    }
    return stream;
}

ScheduleResult
schedule(const std::vector<App> &apps, unsigned cores)
{
    simAssert(cores > 0, "need at least one core");

    // Min-heap of core free times.
    std::priority_queue<Cycles, std::vector<Cycles>, std::greater<>>
        core_free;
    for (unsigned c = 0; c < cores; ++c)
        core_free.push(0);

    struct StreamCursor
    {
        const Stream *stream;
        std::size_t appIndex;
        std::size_t next = 0;
        Cycles readyAt = 0;
    };
    std::vector<StreamCursor> cursors;
    for (std::size_t a = 0; a < apps.size(); ++a)
        for (const Stream &s : apps[a].streams)
            cursors.push_back(StreamCursor{&s, a});

    ScheduleResult result;
    result.appFinish.assign(apps.size(), 0);
    // Event signal times; -1 index means "no event".
    std::map<int, Cycles> event_time;

    // Event-driven list scheduling: repeatedly pick the ready stream
    // cursor with the earliest ready time and place its next task.
    bool progress = true;
    while (progress) {
        progress = false;
        // Pick the cursor with work whose readyAt is smallest; skip
        // cursors blocked on an unsignalled event.
        StreamCursor *best = nullptr;
        bool any_blocked = false;
        for (StreamCursor &c : cursors) {
            if (c.next >= c.stream->tasks.size())
                continue;
            const Task &t = c.stream->tasks[c.next];
            if (t.waitsForEvent >= 0 &&
                event_time.find(t.waitsForEvent) == event_time.end()) {
                any_blocked = true;
                continue;
            }
            if (!best || c.readyAt < best->readyAt)
                best = &c;
        }
        if (!best) {
            if (any_blocked)
                panic("schedule: dependency cycle - streams blocked on "
                      "events nobody can signal");
            break;
        }

        const Task &task = best->stream->tasks[best->next];
        Cycles ready = best->readyAt;
        if (task.waitsForEvent >= 0)
            ready = std::max(ready, event_time[task.waitsForEvent]);
        best->readyAt = ready;
        const unsigned blocks = std::max(1u, task.blocks);
        const Cycles block_cycles =
            std::max<Cycles>(1, task.cycles / blocks);

        Cycles task_finish = 0;
        for (unsigned b = 0; b < blocks; ++b) {
            // Pop-and-push per block: when blocks exceed cores the
            // same core is legitimately reused for several blocks.
            const Cycles free_at = core_free.top();
            core_free.pop();
            const Cycles start = std::max(free_at, best->readyAt);
            const Cycles finish = start + block_cycles;
            core_free.push(finish);
            task_finish = std::max(task_finish, finish);
        }

        best->readyAt = task_finish;
        if (task.signalsEvent >= 0)
            event_time[task.signalsEvent] = task_finish;
        ++best->next;
        result.appFinish[best->appIndex] =
            std::max(result.appFinish[best->appIndex], task_finish);
        result.makespan = std::max(result.makespan, task_finish);
        progress = true;
    }

    // Utilization: total task work over cores * makespan.
    Cycles total_work = 0;
    for (const StreamCursor &c : cursors)
        for (const Task &t : c.stream->tasks)
            total_work += t.cycles;
    result.avgCoreUtilization = result.makespan
        ? double(total_work) / (double(result.makespan) * cores) : 0.0;
    return result;
}

} // namespace compiler
} // namespace ascend
