/**
 * @file
 * Operator fusion implementation.
 */

#include "compiler/fusion.hh"

namespace ascend {
namespace compiler {

namespace {

/** Vector passes a fused layer adds to the producer's eviction. */
double
fusedPasses(const model::Layer &layer)
{
    using model::LayerKind;
    switch (layer.kind) {
      case LayerKind::BatchNorm:
        return 2.0;
      case LayerKind::Elementwise:
        return 1.0;
      case LayerKind::Activation:
        switch (layer.act) {
          case model::ActKind::Relu:
          case model::ActKind::Relu6:
            return 1.0;
          case model::ActKind::Sigmoid:
            return 2.0;
          default:
            return 3.0; // gelu / swish
        }
      default:
        return -1.0; // not fusable
    }
}

/**
 * A layer is fusable into @p producer only when it operates on the
 * producer's output volume elementwise (same element count).
 */
bool
fusable(const model::Layer &producer, const model::Layer &candidate)
{
    if (fusedPasses(candidate) < 0)
        return false;
    return candidate.inputBytes() == producer.outputBytes();
}

} // anonymous namespace

model::Network
fuseNetwork(const model::Network &net, FusionReport *report)
{
    model::Network fused;
    fused.name = net.name;
    for (const model::Layer &layer : net.layers) {
        if (!fused.layers.empty() && fused.layers.back().isCubeLayer() &&
            fusable(fused.layers.back(), layer)) {
            fused.layers.back().fusedEvictPasses += fusedPasses(layer);
            continue;
        }
        fused.add(layer);
    }
    if (report) {
        report->layersBefore = net.layers.size();
        report->layersAfter = fused.layers.size();
    }
    return fused;
}

} // namespace compiler
} // namespace ascend
