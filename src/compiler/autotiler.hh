/**
 * @file
 * Auto-tiling search (paper Section 5.1): "the dedicated compiler
 * technique, called 'Auto Tiling', is used to transfer big tasks into
 * small fractals ... this technology offers the best tiling and
 * scheduling for any program by intelligently searching legitimate
 * mapping space."
 *
 * The production stack searches with reinforcement learning; this
 * implementation searches the legitimate mapping space exhaustively
 * (it is small once tiles are constrained to fractal multiples that
 * fit the L0 buffers) by *simulating* each candidate program on the
 * cycle-level core model and keeping the fastest. The heuristic
 * selectTile() is the search's seed and fallback.
 */

#ifndef ASCEND_COMPILER_AUTOTILER_HH
#define ASCEND_COMPILER_AUTOTILER_HH

#include "compiler/layer_compiler.hh"
#include "core/core_sim.hh"

namespace ascend {
namespace compiler {

/** Outcome of an auto-tiling search. */
struct TileSearchResult
{
    GemmTile best;
    Cycles bestCycles = 0;
    GemmTile heuristic;
    Cycles heuristicCycles = 0;
    unsigned candidatesTried = 0;

    double
    speedupOverHeuristic() const
    {
        return bestCycles ? double(heuristicCycles) / double(bestCycles)
                          : 1.0;
    }
};

/**
 * Searches tilings for GEMM-like layers on one core configuration.
 */
class AutoTiler
{
  public:
    explicit AutoTiler(const arch::CoreConfig &config,
                       CompileOptions options = {});

    /**
     * Enumerate legitimate tiles for @p layer (fractal multiples that
     * fit the double-buffered L0s), simulate each, and return the
     * fastest together with the heuristic baseline.
     *
     * @param max_candidates Cap on simulated candidates (the space is
     *        pruned largest-tiles-first, which is where optima live).
     */
    TileSearchResult search(const model::Layer &layer,
                            unsigned max_candidates = 64) const;

    /** Compile @p layer with an explicitly chosen tile. */
    isa::Program compileWithTile(const model::Layer &layer,
                                 const GemmTile &tile) const;

  private:
    arch::CoreConfig config_;
    CompileOptions options_;
    core::CoreSim sim_;
};

} // namespace compiler
} // namespace ascend

#endif // ASCEND_COMPILER_AUTOTILER_HH
