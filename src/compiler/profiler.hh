/**
 * @file
 * Network-level profiling: runs every layer of a network through the
 * core simulator and aggregates the statistics the paper plots.
 *
 * Profiler is a source-compatible shim over runtime::SimSession, kept
 * so the original public API (construct with a CoreConfig, call
 * runInference/runTraining, aggregate with the static helpers) keeps
 * compiling. The compile -> simulate -> aggregate loop itself — with
 * memoization and parallel per-layer dispatch — lives in the runtime
 * layer; see runtime/sim_session.hh and runtime/profile.hh. New code
 * should use runtime::SimSession directly.
 */

#ifndef ASCEND_COMPILER_PROFILER_HH
#define ASCEND_COMPILER_PROFILER_HH

#include <vector>

#include "compiler/layer_compiler.hh"
#include "model/network.hh"
#include "runtime/sim_session.hh"

namespace ascend {
namespace compiler {

/** Per-layer simulation outcome (now defined in the runtime layer). */
using LayerRun = runtime::LayerRun;

/** Aggregated statistics of one fusion group (one chart point). */
using GroupProfile = runtime::GroupProfile;

/**
 * Runs networks on one core configuration. Thin wrapper over
 * runtime::SimSession; shares the process-wide simulation cache.
 */
class Profiler
{
  public:
    explicit Profiler(const arch::CoreConfig &config,
                      CompileOptions options = {})
        : session_(config, options)
    {
    }

    /** Compile and simulate every layer of @p net (inference). */
    std::vector<LayerRun>
    runInference(const model::Network &net) const
    {
        return session_.runInference(net);
    }

    /**
     * Compile and simulate forward and backward work (one training
     * step without the optimizer's host-side work). The returned runs
     * are indexed like trainingSteps(net): runs for step i contain
     * the forward layer followed by its backward layers.
     */
    std::vector<std::vector<LayerRun>>
    runTraining(const model::Network &net,
                model::OptimizerKind opt =
                    model::OptimizerKind::Sgd) const
    {
        return session_.runTraining(net, opt);
    }

    /** Aggregate inference runs into fusion groups. */
    static std::vector<GroupProfile>
    fusionGroups(const std::vector<LayerRun> &runs)
    {
        return runtime::fusionGroups(runs);
    }

    /**
     * Aggregate training runs into fusion groups: same grouping as
     * inference over the forward layers, with each group also
     * absorbing the backward work of its members.
     */
    static std::vector<GroupProfile>
    fusionGroupsTraining(const std::vector<std::vector<LayerRun>> &runs)
    {
        return runtime::fusionGroupsTraining(runs);
    }

    /** Total cycles across runs. */
    static Cycles
    totalCycles(const std::vector<LayerRun> &runs)
    {
        return runtime::totalCycles(runs);
    }

    /** End-to-end simulation of a network; sums per-layer results. */
    core::SimResult
    inferenceResult(const model::Network &net) const
    {
        return session_.inferenceResult(net);
    }

    const arch::CoreConfig &config() const { return session_.config(); }

    /** The underlying session (for code migrating off this shim). */
    const runtime::SimSession &session() const { return session_; }

  private:
    runtime::SimSession session_;
};

} // namespace compiler
} // namespace ascend

#endif // ASCEND_COMPILER_PROFILER_HH
