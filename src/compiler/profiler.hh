/**
 * @file
 * Network-level profiling: runs every layer of a network through the
 * core simulator and aggregates the statistics the paper plots.
 *
 * Fusion groups: the paper's per-layer ratio charts (Figs. 4-8) count
 * each cube operator together with the vector post-operators that the
 * real tool-chain fuses behind it (bias, normalization, activation,
 * residual add). We reproduce that granularity by grouping each cube
 * layer with all following non-cube layers up to the next cube layer.
 */

#ifndef ASCEND_COMPILER_PROFILER_HH
#define ASCEND_COMPILER_PROFILER_HH

#include <vector>

#include "compiler/layer_compiler.hh"
#include "core/core_sim.hh"
#include "model/network.hh"

namespace ascend {
namespace compiler {

/** Per-layer simulation outcome. */
struct LayerRun
{
    model::Layer layer;
    core::SimResult result;
};

/** Aggregated statistics of one fusion group (one chart point). */
struct GroupProfile
{
    std::string name;          ///< name of the leading cube layer
    Cycles cubeBusy = 0;
    Cycles vectorBusy = 0;
    Cycles totalCycles = 0;
    Bytes l1ReadBytes = 0;
    Bytes l1WriteBytes = 0;
    Bytes extBytes = 0;
    Flops flops = 0;

    /** Cube/vector execution-time ratio (Figs. 4-8's y-axis). */
    double
    cubeVectorRatio() const
    {
        return vectorBusy ? double(cubeBusy) / double(vectorBusy) : 0.0;
    }

    /** Average L1 read bandwidth in bits per cycle (Fig. 9's y-axis). */
    double
    l1ReadBitsPerCycle() const
    {
        return totalCycles ? 8.0 * double(l1ReadBytes) / totalCycles : 0.0;
    }

    double
    l1WriteBitsPerCycle() const
    {
        return totalCycles ? 8.0 * double(l1WriteBytes) / totalCycles : 0.0;
    }
};

/**
 * Runs networks on one core configuration.
 */
class Profiler
{
  public:
    explicit Profiler(const arch::CoreConfig &config,
                      CompileOptions options = {});

    /** Compile and simulate every layer of @p net (inference). */
    std::vector<LayerRun> runInference(const model::Network &net) const;

    /**
     * Compile and simulate forward and backward work (one training
     * step without the optimizer's host-side work). The returned runs
     * are indexed like trainingSteps(net): runs for step i contain
     * the forward layer followed by its backward layers.
     */
    std::vector<std::vector<LayerRun>>
    runTraining(const model::Network &net,
                model::OptimizerKind opt =
                    model::OptimizerKind::Sgd) const;

    /** Aggregate inference runs into fusion groups. */
    static std::vector<GroupProfile>
    fusionGroups(const std::vector<LayerRun> &runs);

    /**
     * Aggregate training runs into fusion groups: same grouping as
     * inference over the forward layers, with each group also
     * absorbing the backward work of its members.
     */
    static std::vector<GroupProfile>
    fusionGroupsTraining(const std::vector<std::vector<LayerRun>> &runs);

    /** Total cycles across runs. */
    static Cycles totalCycles(const std::vector<LayerRun> &runs);

    /** End-to-end simulation of a network; sums per-layer results. */
    core::SimResult inferenceResult(const model::Network &net) const;

    const arch::CoreConfig &config() const { return sim_.config(); }

  private:
    static void addRunToGroup(GroupProfile &group, const LayerRun &run);

    LayerCompiler layerCompiler_;
    core::CoreSim sim_;
};

} // namespace compiler
} // namespace ascend

#endif // ASCEND_COMPILER_PROFILER_HH
