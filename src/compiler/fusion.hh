/**
 * @file
 * Operator fusion (the graph-engine optimization behind the paper's
 * fusion-group granularity): normalization, activation, and residual
 * layers that follow a cube layer execute as extra vector passes
 * inside that layer's output eviction, instead of round-tripping the
 * activation tensor through L1/LLC.
 *
 * Fusing removes the fused layers' MTE traffic entirely (their data
 * never leaves UB) and replaces their standalone vector programs with
 * passes already overlapped under the cube — the mechanism that makes
 * the paper's per-operator ratio charts meaningful.
 */

#ifndef ASCEND_COMPILER_FUSION_HH
#define ASCEND_COMPILER_FUSION_HH

#include "model/network.hh"

namespace ascend {
namespace compiler {

/** Statistics of one fusion pass. */
struct FusionReport
{
    std::size_t layersBefore = 0;
    std::size_t layersAfter = 0;
    std::size_t fusedLayers() const { return layersBefore - layersAfter; }
};

/**
 * Fold fusable vector layers (BatchNorm, Activation, Elementwise)
 * into the preceding cube layer's eviction. Softmax / LayerNorm /
 * pooling / depthwise stay standalone (they reduce across elements,
 * which the eviction path cannot do in one pass).
 *
 * @param[out] report Optional pass statistics.
 * @return the fused network.
 */
model::Network fuseNetwork(const model::Network &net,
                           FusionReport *report = nullptr);

} // namespace compiler
} // namespace ascend

#endif // ASCEND_COMPILER_FUSION_HH
