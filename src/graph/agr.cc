/**
 * @file
 * `.agr` printer and parser.
 */

#include "graph/agr.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "common/error.hh"
#include "runtime/perf_stats.hh"

namespace ascend {
namespace graph {

namespace {

/** %.17g: enough digits that strtod restores the exact double. */
std::string
doubleToken(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

const char *
actToken(model::ActKind a)
{
    switch (a) {
      case model::ActKind::Relu:    return "relu";
      case model::ActKind::Relu6:   return "relu6";
      case model::ActKind::Gelu:    return "gelu";
      case model::ActKind::Sigmoid: return "sigmoid";
      case model::ActKind::Swish:   return "swish";
    }
    return "?";
}

bool
parseAct(const std::string &tok, model::ActKind &out)
{
    using model::ActKind;
    static const std::pair<const char *, ActKind> table[] = {
        {"relu", ActKind::Relu},       {"relu6", ActKind::Relu6},
        {"gelu", ActKind::Gelu},       {"sigmoid", ActKind::Sigmoid},
        {"swish", ActKind::Swish},
    };
    for (const auto &[name, kind] : table)
        if (tok == name) {
            out = kind;
            return true;
        }
    return false;
}

bool
parseDtype(const std::string &tok, DataType &out)
{
    static const DataType all[] = {DataType::Int4, DataType::Int8,
                                   DataType::Fp16, DataType::Int32,
                                   DataType::Fp32};
    for (const DataType dt : all)
        if (tok == toString(dt)) {
            out = dt;
            return true;
        }
    return false;
}

bool
parseLayerKind(const std::string &tok, model::LayerKind &out)
{
    using model::LayerKind;
    static const LayerKind all[] = {
        LayerKind::Conv2d,     LayerKind::DepthwiseConv2d,
        LayerKind::Linear,     LayerKind::BatchedMatmul,
        LayerKind::Pool2d,     LayerKind::BatchNorm,
        LayerKind::LayerNorm,  LayerKind::Activation,
        LayerKind::Softmax,    LayerKind::Elementwise,
        LayerKind::CvOp,
    };
    for (const LayerKind k : all)
        if (tok == toString(k)) {
            out = k;
            return true;
        }
    return false;
}

/** Append "key=value" when @p value differs from @p dflt. */
template <typename T>
void
putKey(std::string &out, const char *key, T value, T dflt)
{
    if (value == dflt)
        return;
    out += ' ';
    out += key;
    out += '=';
    if constexpr (std::is_floating_point_v<T>)
        out += doubleToken(value);
    else
        out += std::to_string(value);
}

/** Every fingerprinted layer field, keyed (kind is the op token). */
std::string
layerKeys(const model::Layer &l)
{
    const model::Layer d; // field defaults
    std::string s;
    if (l.dtype != d.dtype) {
        s += " dt=";
        s += toString(l.dtype);
    }
    putKey(s, "b", l.batch, d.batch);
    putKey(s, "ic", l.inC, d.inC);
    putKey(s, "oc", l.outC, d.outC);
    putKey(s, "ih", l.inH, d.inH);
    putKey(s, "iw", l.inW, d.inW);
    putKey(s, "kh", l.kernelH, d.kernelH);
    putKey(s, "kw", l.kernelW, d.kernelW);
    putKey(s, "sh", l.strideH, d.strideH);
    putKey(s, "sw", l.strideW, d.strideW);
    putKey(s, "ph", l.padH, d.padH);
    putKey(s, "pw", l.padW, d.padW);
    putKey(s, "m", l.gemmM, d.gemmM);
    putKey(s, "k", l.gemmK, d.gemmK);
    putKey(s, "n", l.gemmN, d.gemmN);
    putKey(s, "cnt", l.matmulCount, d.matmulCount);
    putKey(s, "el", l.elems, d.elems);
    putKey(s, "rl", l.rowLen, d.rowLen);
    putKey(s, "cvp", l.cvPasses, d.cvPasses);
    putKey(s, "fep", l.fusedEvictPasses, d.fusedEvictPasses);
    if (l.act != d.act) {
        s += " act=";
        s += actToken(l.act);
    }
    putKey(s, "ibo", l.inputBytesOverride, d.inputBytesOverride);
    putKey(s, "obo", l.outputBytesOverride, d.outputBytesOverride);
    return s;
}

struct ParseCursor
{
    const std::string &text;
    std::size_t pos = 0;
    unsigned lineNo = 0;
};

[[noreturn]] void
parseFail(unsigned line_no, const char *what)
{
    throwError(ErrorCode::ConfigParse, "agr line %u: %s", line_no,
               what);
}

/** Next non-empty, non-comment line split into tokens. */
bool
nextLine(ParseCursor &cur, std::vector<std::string> &tokens)
{
    while (cur.pos < cur.text.size()) {
        const std::size_t eol = cur.text.find('\n', cur.pos);
        const std::size_t end =
            eol == std::string::npos ? cur.text.size() : eol;
        std::string line = cur.text.substr(cur.pos, end - cur.pos);
        cur.pos = end + 1;
        ++cur.lineNo;
        tokens.clear();
        std::istringstream ss(line);
        std::string tok;
        while (ss >> tok)
            tokens.push_back(tok);
        if (tokens.empty() || tokens[0][0] == '#')
            continue;
        return true;
    }
    return false;
}

std::uint64_t
parseU64(const std::string &tok, unsigned line_no)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0')
        parseFail(line_no, "expected an unsigned integer");
    return v;
}

double
parseF64(const std::string &tok, unsigned line_no)
{
    char *end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0')
        parseFail(line_no, "expected a number");
    return v;
}

/** Split "a,b,c" on commas (no empty fields allowed). */
std::vector<std::string>
splitList(const std::string &tok, unsigned line_no)
{
    std::vector<std::string> out;
    std::size_t at = 0;
    while (at <= tok.size()) {
        const std::size_t comma = tok.find(',', at);
        const std::size_t end =
            comma == std::string::npos ? tok.size() : comma;
        if (end == at)
            parseFail(line_no, "empty entry in a tensor list");
        out.push_back(tok.substr(at, end - at));
        if (comma == std::string::npos)
            break;
        at = comma + 1;
    }
    return out;
}

void
applyLayerKey(model::Layer &l, const std::string &key,
              const std::string &value, unsigned line_no)
{
    auto u = [&] { return parseU64(value, line_no); };
    if (key == "dt") {
        if (!parseDtype(value, l.dtype))
            parseFail(line_no, "unknown dtype");
    } else if (key == "b") {
        l.batch = unsigned(u());
    } else if (key == "ic") {
        l.inC = unsigned(u());
    } else if (key == "oc") {
        l.outC = unsigned(u());
    } else if (key == "ih") {
        l.inH = unsigned(u());
    } else if (key == "iw") {
        l.inW = unsigned(u());
    } else if (key == "kh") {
        l.kernelH = unsigned(u());
    } else if (key == "kw") {
        l.kernelW = unsigned(u());
    } else if (key == "sh") {
        l.strideH = unsigned(u());
    } else if (key == "sw") {
        l.strideW = unsigned(u());
    } else if (key == "ph") {
        l.padH = unsigned(u());
    } else if (key == "pw") {
        l.padW = unsigned(u());
    } else if (key == "m") {
        l.gemmM = u();
    } else if (key == "k") {
        l.gemmK = u();
    } else if (key == "n") {
        l.gemmN = u();
    } else if (key == "cnt") {
        l.matmulCount = u();
    } else if (key == "el") {
        l.elems = u();
    } else if (key == "rl") {
        l.rowLen = u();
    } else if (key == "cvp") {
        l.cvPasses = parseF64(value, line_no);
    } else if (key == "fep") {
        l.fusedEvictPasses = parseF64(value, line_no);
    } else if (key == "act") {
        if (!parseAct(value, l.act))
            parseFail(line_no, "unknown activation");
    } else if (key == "ibo") {
        l.inputBytesOverride = u();
    } else if (key == "obo") {
        l.outputBytesOverride = u();
    } else {
        parseFail(line_no, "unknown layer key");
    }
}

} // anonymous namespace

std::string
printAgr(const Graph &g)
{
    std::string out = "agr 1\n";
    out += "graph " + g.name + "\n";
    for (const Tensor &t : g.tensors) {
        out += "tensor " + t.name + ' ' + std::to_string(t.elems) +
               ' ' + toString(t.dtype);
        if (t.producer < 0)
            out += " input";
        else
            out += " from " + std::to_string(t.producer) + '.' +
                   std::to_string(t.producerSlot);
        out += '\n';
    }
    for (const Node &n : g.nodes) {
        out += "node " + n.name + ' ';
        if (n.op == OpKind::Layer) {
            out += "layer ";
            out += toString(n.layer.kind);
        } else {
            out += toString(n.op);
        }
        out += " in ";
        for (std::size_t i = 0; i < n.inputs.size(); ++i) {
            if (i)
                out += ',';
            out += g.tensors[n.inputs[i]].name;
        }
        if (n.op == OpKind::Layer)
            out += layerKeys(n.layer);
        out += '\n';
    }
    for (const TensorId t : g.outputs)
        out += "output " + g.tensors[t].name + '\n';
    out += "end\n";

    runtime::GraphCounters delta;
    delta.agrPrints = 1;
    runtime::chargeGraph(delta);
    return out;
}

Graph
parseAgr(const std::string &text)
{
    ParseCursor cur{text};
    std::vector<std::string> tok;

    if (!nextLine(cur, tok) || tok.size() != 2 || tok[0] != "agr" ||
        tok[1] != "1")
        parseFail(cur.lineNo, "expected header 'agr 1'");
    if (!nextLine(cur, tok) || tok.size() != 2 || tok[0] != "graph")
        parseFail(cur.lineNo, "expected 'graph <name>'");

    Graph g;
    g.name = tok[1];
    std::unordered_map<std::string, TensorId> byName;
    bool sawEnd = false;

    while (nextLine(cur, tok)) {
        if (tok[0] == "end") {
            if (tok.size() != 1)
                parseFail(cur.lineNo, "trailing tokens after 'end'");
            sawEnd = true;
            break;
        }
        if (tok[0] == "tensor") {
            // tensor <name> <elems> <dtype> input|from <node>.<slot>
            if (tok.size() != 5 && tok.size() != 6)
                parseFail(cur.lineNo, "malformed tensor record");
            Tensor t;
            t.name = tok[1];
            t.elems = parseU64(tok[2], cur.lineNo);
            if (!parseDtype(tok[3], t.dtype))
                parseFail(cur.lineNo, "unknown dtype");
            if (tok.size() == 5 && tok[4] == "input") {
                t.producer = -1;
            } else if (tok.size() == 6 && tok[4] == "from") {
                const std::size_t dot = tok[5].find('.');
                if (dot == std::string::npos)
                    parseFail(cur.lineNo,
                              "expected '<node>.<slot>' after 'from'");
                t.producer = int(
                    parseU64(tok[5].substr(0, dot), cur.lineNo));
                t.producerSlot = unsigned(
                    parseU64(tok[5].substr(dot + 1), cur.lineNo));
            } else {
                parseFail(cur.lineNo,
                          "expected 'input' or 'from <node>.<slot>'");
            }
            if (!byName.emplace(t.name, TensorId(g.tensors.size()))
                     .second)
                parseFail(cur.lineNo, "duplicate tensor name");
            g.tensors.push_back(std::move(t));
        } else if (tok[0] == "node") {
            // node <name> <op>[ <kind>] in <list> [key=value ...]
            if (tok.size() < 5)
                parseFail(cur.lineNo, "malformed node record");
            Node n;
            n.name = tok[1];
            std::size_t at = 2;
            if (tok[at] == "layer") {
                n.op = OpKind::Layer;
                if (!parseLayerKind(tok[at + 1], n.layer.kind))
                    parseFail(cur.lineNo, "unknown layer kind");
                n.layer.name = n.name;
                at += 2;
            } else if (tok[at] == "add") {
                n.op = OpKind::ResidualAdd;
                ++at;
            } else if (tok[at] == "concat") {
                n.op = OpKind::Concat;
                ++at;
            } else if (tok[at] == "split") {
                n.op = OpKind::Split;
                ++at;
            } else {
                parseFail(cur.lineNo, "unknown node op");
            }
            if (at + 1 >= tok.size() || tok[at] != "in")
                parseFail(cur.lineNo, "expected 'in <tensor-list>'");
            for (const std::string &ref :
                 splitList(tok[at + 1], cur.lineNo)) {
                const auto it = byName.find(ref);
                if (it == byName.end())
                    parseFail(cur.lineNo,
                              "node consumes an undefined tensor");
                n.inputs.push_back(it->second);
            }
            at += 2;
            for (; at < tok.size(); ++at) {
                if (n.op != OpKind::Layer)
                    parseFail(cur.lineNo,
                              "keys are only valid on layer nodes");
                const std::size_t eq = tok[at].find('=');
                if (eq == std::string::npos || eq == 0)
                    parseFail(cur.lineNo, "expected key=value");
                applyLayerKey(n.layer, tok[at].substr(0, eq),
                              tok[at].substr(eq + 1), cur.lineNo);
            }
            g.nodes.push_back(std::move(n));
        } else if (tok[0] == "output") {
            if (tok.size() != 2)
                parseFail(cur.lineNo, "malformed output record");
            const auto it = byName.find(tok[1]);
            if (it == byName.end())
                parseFail(cur.lineNo, "output names an undefined tensor");
            g.outputs.push_back(it->second);
        } else {
            parseFail(cur.lineNo, "unknown record");
        }
    }
    if (!sawEnd)
        parseFail(cur.lineNo, "missing 'end'");

    // Derive node output lists from the producer back-references:
    // slot k of node n is the tensor claiming (n, k). validate()
    // re-checks the correspondence it just built, plus everything a
    // hand-corrupted file could get wrong.
    for (std::size_t ti = 0; ti < g.tensors.size(); ++ti) {
        const Tensor &t = g.tensors[ti];
        if (t.producer < 0)
            continue;
        if (std::size_t(t.producer) >= g.nodes.size())
            throwError(ErrorCode::GraphInvalid,
                       "tensor '%s': producer %d out of range",
                       t.name.c_str(), t.producer);
        auto &outs = g.nodes[std::size_t(t.producer)].outputs;
        if (outs.size() <= t.producerSlot)
            outs.resize(t.producerSlot + 1, TensorId(ti));
        outs[t.producerSlot] = TensorId(ti);
    }
    g.validate();

    runtime::GraphCounters delta;
    delta.agrParses = 1;
    runtime::chargeGraph(delta);
    return g;
}

} // namespace graph
} // namespace ascend
