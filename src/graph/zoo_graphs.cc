/**
 * @file
 * Zoo networks re-expressed as graphs. Layer shapes and names mirror
 * model/zoo_*.cc exactly; only the wiring is new.
 */

#include "graph/zoo_graphs.hh"

#include "common/logging.hh"

namespace ascend {
namespace graph {
namespace zoo {

namespace {

using model::ActKind;
using model::Layer;

/** conv + batchnorm (+ optional ReLU); returns the output tensor. */
TensorId
convBnRelu(Graph &g, const std::string &name, TensorId x,
           unsigned batch, unsigned in_c, unsigned spatial,
           unsigned out_c, unsigned kernel, unsigned stride,
           unsigned pad, bool relu, DataType dt)
{
    Layer conv = Layer::conv2d(name, batch, in_c, spatial, spatial,
                               out_c, kernel, stride, pad, dt);
    const unsigned out_sp = conv.outH();
    const std::uint64_t vol =
        std::uint64_t(batch) * out_c * out_sp * out_sp;
    TensorId t = g.addLayer(conv, {x});
    t = g.addLayer(Layer::batchNorm(name + ".bn", vol, dt), {t});
    if (relu)
        t = g.addLayer(
            Layer::activation(name + ".relu", vol, ActKind::Relu, dt),
            {t});
    return t;
}

/** One ResNet bottleneck with its residual edge made explicit. */
TensorId
bottleneck(Graph &g, const std::string &name, TensorId x,
           unsigned batch, unsigned in_c, unsigned mid_c,
           unsigned out_c, unsigned spatial, unsigned stride,
           DataType dt, unsigned &out_sp)
{
    TensorId t = convBnRelu(g, name + ".conv1", x, batch, in_c,
                            spatial, mid_c, 1, 1, 0, true, dt);
    // ResNet v1.5 strides in the 3x3 convolution.
    t = convBnRelu(g, name + ".conv2", t, batch, mid_c, spatial,
                   mid_c, 3, stride, 1, true, dt);
    const unsigned sp2 = (spatial + 2 - 3) / stride + 1;
    t = convBnRelu(g, name + ".conv3", t, batch, mid_c, sp2, out_c,
                   1, 1, 0, false, dt);
    TensorId shortcut = x;
    if (stride != 1 || in_c != out_c)
        shortcut = convBnRelu(g, name + ".down", x, batch, in_c,
                              spatial, out_c, 1, stride, 0, false, dt);
    const std::uint64_t vol = std::uint64_t(batch) * out_c * sp2 * sp2;
    t = g.addResidualAdd(name + ".add", t, shortcut);
    t = g.addLayer(
        Layer::activation(name + ".relu", vol, ActKind::Relu, dt),
        {t});
    out_sp = sp2;
    return t;
}

std::uint64_t
volume(unsigned batch, unsigned c, unsigned sp)
{
    return std::uint64_t(batch) * c * sp * sp;
}

/** batchnorm (+ optional ReLU6) chain link. */
TensorId
bnAct(Graph &g, const std::string &name, TensorId x, std::uint64_t vol,
      bool relu6, DataType dt)
{
    TensorId t =
        g.addLayer(Layer::batchNorm(name + ".bn", vol, dt), {x});
    if (relu6)
        t = g.addLayer(Layer::activation(name + ".relu6", vol,
                                         ActKind::Relu6, dt),
                       {t});
    return t;
}

/** One MobileNetV2 inverted residual with explicit skip edge. */
TensorId
invertedResidual(Graph &g, const std::string &name, TensorId x,
                 unsigned batch, unsigned in_c, unsigned out_c,
                 unsigned spatial, unsigned stride, unsigned expand,
                 DataType dt, unsigned &out_sp)
{
    const unsigned mid_c = in_c * expand;
    unsigned sp = spatial;
    TensorId t = x;
    if (expand != 1) {
        t = g.addLayer(Layer::conv2d(name + ".expand", batch, in_c,
                                     sp, sp, mid_c, 1, 1, 0, dt),
                       {t});
        t = bnAct(g, name + ".expand", t, volume(batch, mid_c, sp),
                  true, dt);
    }
    Layer dw = Layer::depthwiseConv2d(name + ".dw", batch, mid_c, sp,
                                      sp, 3, stride, 1, dt);
    sp = dw.outH();
    t = g.addLayer(dw, {t});
    t = bnAct(g, name + ".dw", t, volume(batch, mid_c, sp), true, dt);

    t = g.addLayer(Layer::conv2d(name + ".project", batch, mid_c, sp,
                                 sp, out_c, 1, 1, 0, dt),
                   {t});
    t = bnAct(g, name + ".project", t, volume(batch, out_c, sp),
              false, dt);

    if (stride == 1 && in_c == out_c)
        t = g.addResidualAdd(name + ".add", t, x);
    out_sp = sp;
    return t;
}

} // anonymous namespace

Graph
resnet50Graph(unsigned batch, DataType dt)
{
    simAssert(batch > 0, "batch must be positive");
    Graph g;
    g.name = "resnet50";
    TensorId t =
        g.addInput("input", std::uint64_t(batch) * 3 * 224 * 224, dt);

    t = convBnRelu(g, "conv1", t, batch, 3, 224, 64, 7, 2, 3, true,
                   dt); // 112
    Layer pool = Layer::pool2d("maxpool", batch, 64, 112, 112, 3, 2, dt);
    pool.padH = pool.padW = 1;
    unsigned sp = pool.outH(); // 56
    t = g.addLayer(pool, {t});

    struct StageSpec { unsigned blocks, mid, out, stride; };
    static const StageSpec stages[] = {
        {3, 64, 256, 1},
        {4, 128, 512, 2},
        {6, 256, 1024, 2},
        {3, 512, 2048, 2},
    };
    unsigned in_c = 64;
    int stage_idx = 2;
    for (const StageSpec &s : stages) {
        for (unsigned b = 0; b < s.blocks; ++b) {
            const std::string name = "res" + std::to_string(stage_idx) +
                                     "." + std::to_string(b);
            const unsigned stride = (b == 0) ? s.stride : 1;
            t = bottleneck(g, name, t, batch, in_c, s.mid, s.out, sp,
                           stride, dt, sp);
            in_c = s.out;
        }
        ++stage_idx;
    }

    t = g.addLayer(
        Layer::pool2d("avgpool", batch, in_c, sp, sp, sp, sp, dt),
        {t});
    t = g.addLayer(Layer::linear("fc", batch, in_c, 1000, dt), {t});
    g.markOutput(t);
    return g;
}

Graph
vgg16Graph(unsigned batch, DataType dt)
{
    simAssert(batch > 0, "batch must be positive");
    Graph g;
    g.name = "vgg16";
    TensorId t =
        g.addInput("input", std::uint64_t(batch) * 3 * 224 * 224, dt);

    struct Group { unsigned convs, channels; };
    static const Group groups[] = {
        {2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512},
    };
    unsigned sp = 224;
    unsigned in_c = 3;
    int gi = 1;
    for (const Group &group : groups) {
        for (unsigned c = 0; c < group.convs; ++c) {
            const std::string name = "conv" + std::to_string(gi) +
                                     "_" + std::to_string(c + 1);
            t = convBnRelu(g, name, t, batch, in_c, sp,
                           group.channels, 3, 1, 1, true, dt);
            in_c = group.channels;
        }
        Layer pool = Layer::pool2d("pool" + std::to_string(gi), batch,
                                   in_c, sp, sp, 2, 2, dt);
        sp = pool.outH();
        t = g.addLayer(pool, {t});
        ++gi;
    }

    const std::uint64_t flat = std::uint64_t(in_c) * sp * sp;
    t = g.addLayer(Layer::linear("fc6", batch, flat, 4096, dt), {t});
    t = g.addLayer(Layer::activation("fc6.relu",
                                     std::uint64_t(batch) * 4096,
                                     ActKind::Relu, dt),
                   {t});
    t = g.addLayer(Layer::linear("fc7", batch, 4096, 4096, dt), {t});
    t = g.addLayer(Layer::activation("fc7.relu",
                                     std::uint64_t(batch) * 4096,
                                     ActKind::Relu, dt),
                   {t});
    t = g.addLayer(Layer::linear("fc8", batch, 4096, 1000, dt), {t});
    g.markOutput(t);
    return g;
}

Graph
mobilenetV2Graph(unsigned batch, DataType dt)
{
    simAssert(batch > 0, "batch must be positive");
    Graph g;
    g.name = "mobilenet_v2";
    TensorId t =
        g.addInput("input", std::uint64_t(batch) * 3 * 224 * 224, dt);

    Layer stem =
        Layer::conv2d("conv0", batch, 3, 224, 224, 32, 3, 2, 1, dt);
    unsigned sp = stem.outH(); // 112
    t = g.addLayer(stem, {t});
    t = bnAct(g, "conv0", t, volume(batch, 32, sp), true, dt);

    struct BlockSpec { unsigned t, c, n, s; };
    static const BlockSpec specs[] = {
        {1, 16, 1, 1},
        {6, 24, 2, 2},
        {6, 32, 3, 2},
        {6, 64, 4, 2},
        {6, 96, 3, 1},
        {6, 160, 3, 2},
        {6, 320, 1, 1},
    };
    unsigned in_c = 32;
    int bi = 1;
    for (const BlockSpec &spec : specs) {
        for (unsigned i = 0; i < spec.n; ++i) {
            const std::string name = "block" + std::to_string(bi++);
            const unsigned stride = (i == 0) ? spec.s : 1;
            t = invertedResidual(g, name, t, batch, in_c, spec.c, sp,
                                 stride, spec.t, dt, sp);
            in_c = spec.c;
        }
    }

    t = g.addLayer(Layer::conv2d("conv_last", batch, in_c, sp, sp,
                                 1280, 1, 1, 0, dt),
                   {t});
    t = bnAct(g, "conv_last", t, volume(batch, 1280, sp), true, dt);
    t = g.addLayer(
        Layer::pool2d("avgpool", batch, 1280, sp, sp, sp, sp, dt),
        {t});
    t = g.addLayer(Layer::linear("fc", batch, 1280, 1000, dt), {t});
    g.markOutput(t);
    return g;
}

Graph
gestureNetGraph(unsigned batch)
{
    simAssert(batch > 0, "batch must be positive");
    const DataType dt = DataType::Int8; // Ascend-Tiny is int8-only
    Graph g;
    g.name = "gesture_net";
    TensorId t =
        g.addInput("input", std::uint64_t(batch) * 3 * 96 * 96, dt);

    struct ConvSpec { unsigned out_c, kernel, stride; };
    static const ConvSpec specs[] = {
        {8, 5, 2}, {16, 3, 1}, {32, 3, 2}, {64, 3, 2}, {64, 3, 2},
    };
    unsigned sp = 96;
    unsigned in_c = 3; // RGB input
    int ci = 1;
    for (const ConvSpec &spec : specs) {
        const std::string name = "conv" + std::to_string(ci++);
        Layer conv = Layer::conv2d(name, batch, in_c, sp, sp,
                                   spec.out_c, spec.kernel,
                                   spec.stride, spec.kernel / 2, dt);
        sp = conv.outH();
        t = g.addLayer(conv, {t});
        t = bnAct(g, name, t, volume(batch, spec.out_c, sp), true, dt);
        in_c = spec.out_c;
    }

    t = g.addLayer(
        Layer::pool2d("avgpool", batch, in_c, sp, sp, sp, sp, dt),
        {t});
    t = g.addLayer(Layer::linear("fc", batch, in_c, 8, dt), {t});
    g.markOutput(t);
    return g;
}

Graph
bertGraph(const std::string &name, unsigned batch, unsigned seq_len,
          unsigned hidden, unsigned layers, unsigned heads,
          unsigned ffn, DataType dt)
{
    simAssert(batch > 0 && seq_len > 0 && hidden > 0, "bad BERT dims");
    simAssert(hidden % heads == 0, "hidden must divide by heads");
    const std::uint64_t tokens = std::uint64_t(batch) * seq_len;
    const unsigned head_dim = hidden / heads;

    Graph g;
    g.name = name;
    TensorId x = g.addInput("tokens", tokens * hidden, dt);

    // Embedding lookup is memory-bound gather work on the vector unit.
    x = g.addLayer(Layer::elementwise("embed", tokens * hidden, dt),
                   {x});
    x = g.addLayer(Layer::layerNorm("embed.ln", tokens, hidden, dt),
                   {x});

    for (unsigned l = 0; l < layers; ++l) {
        const std::string p = "enc" + std::to_string(l);
        // Fused QKV projection, then an explicit split into the three
        // heads' operands — the wiring the linear path leaves implicit.
        TensorId qkv = g.addLayer(
            Layer::linear(p + ".qkv", tokens, hidden, 3ull * hidden,
                          dt),
            {x});
        const std::vector<TensorId> qkv_parts =
            g.addSplit(p + ".qkv.split", qkv, 3);
        // Attention scores per head: (S x dh) * (dh x S); K rides in
        // as a true second operand instead of phantom "weights".
        TensorId t = g.addLayer(
            Layer::batchedMatmul(p + ".scores",
                                 std::uint64_t(batch) * heads,
                                 seq_len, head_dim, seq_len, dt),
            {qkv_parts[0], qkv_parts[1]});
        t = g.addLayer(
            Layer::softmax(p + ".softmax",
                           std::uint64_t(batch) * heads * seq_len,
                           seq_len, dt),
            {t});
        // Context: (S x S) * (S x dh), V as the second operand.
        t = g.addLayer(
            Layer::batchedMatmul(p + ".context",
                                 std::uint64_t(batch) * heads,
                                 seq_len, seq_len, head_dim, dt),
            {t, qkv_parts[2]});
        t = g.addLayer(
            Layer::linear(p + ".proj", tokens, hidden, hidden, dt),
            {t});
        t = g.addResidualAdd(p + ".add1", t, x);
        TensorId ln1 = g.addLayer(
            Layer::layerNorm(p + ".ln1", tokens, hidden, dt), {t});

        t = g.addLayer(
            Layer::linear(p + ".ffn1", tokens, hidden, ffn, dt),
            {ln1});
        t = g.addLayer(Layer::activation(p + ".gelu", tokens * ffn,
                                         ActKind::Gelu, dt),
                       {t});
        t = g.addLayer(
            Layer::linear(p + ".ffn2", tokens, ffn, hidden, dt), {t});
        t = g.addResidualAdd(p + ".add2", t, ln1);
        x = g.addLayer(
            Layer::layerNorm(p + ".ln2", tokens, hidden, dt), {t});
    }

    // The pooler reads only each sample's CLS token: slice it off the
    // final hidden states (unequal split; the rest stays unconsumed).
    TensorId cls = x;
    if (seq_len > 1) {
        const std::uint64_t cls_elems = std::uint64_t(batch) * hidden;
        cls = g.addSplit("pooler.slice", x,
                         {cls_elems, tokens * hidden - cls_elems})[0];
    }
    cls = g.addLayer(Layer::linear("pooler", batch, hidden, hidden, dt),
                     {cls});
    g.markOutput(cls);
    return g;
}

Graph
bertBaseGraph(unsigned batch, unsigned seq_len, DataType dt)
{
    return bertGraph("bert_base", batch, seq_len, 768, 12, 12, 3072,
                     dt);
}

Graph
bertLargeGraph(unsigned batch, unsigned seq_len, DataType dt)
{
    return bertGraph("bert_large", batch, seq_len, 1024, 24, 16, 4096,
                     dt);
}

} // namespace zoo
} // namespace graph
} // namespace ascend
