/**
 * @file
 * Prefill / decode graph builders and KV residency model.
 */

#include "graph/decoder.hh"

#include "common/logging.hh"

namespace ascend {
namespace graph {

namespace {

using model::ActKind;
using model::Layer;

/**
 * The transformer block stack shared by both phases. @p seq is the
 * number of tokens flowing through the dense path this phase
 * (prompt length for prefill, 1 for decode); @p ctx the attention
 * context length. When @p kv_in is non-null it holds 2*blocks cache
 * input tensors (K then V per block) to append to; the (possibly
 * updated) caches are always marked graph outputs.
 */
TensorId
blockStack(Graph &g, const DecoderConfig &cfg, TensorId x,
           unsigned seq, unsigned ctx,
           const std::vector<TensorId> *kv_in)
{
    const std::uint64_t tokens = std::uint64_t(cfg.batch) * seq;
    const std::uint64_t bmm_count =
        std::uint64_t(cfg.batch) * cfg.heads;
    const DataType dt = cfg.dtype;

    x = g.addLayer(
        Layer::elementwise("embed", tokens * cfg.hidden, dt), {x});
    x = g.addLayer(Layer::layerNorm("embed.ln", tokens, cfg.hidden, dt),
                   {x});

    for (unsigned b = 0; b < cfg.blocks; ++b) {
        const std::string p = "blk" + std::to_string(b);
        TensorId qkv = g.addLayer(
            Layer::linear(p + ".qkv", tokens, cfg.hidden,
                          3ull * cfg.hidden, dt),
            {x});
        const std::vector<TensorId> parts =
            g.addSplit(p + ".qkv.split", qkv, 3);
        TensorId k = parts[1];
        TensorId v = parts[2];
        if (kv_in) {
            // Decode: append this token's K/V to the incoming caches.
            k = g.addConcat(p + ".k.append",
                            {(*kv_in)[2 * b + 0], k});
            v = g.addConcat(p + ".v.append",
                            {(*kv_in)[2 * b + 1], v});
        }
        // The (updated) caches are results of the phase.
        g.markOutput(k);
        g.markOutput(v);

        TensorId t = g.addLayer(
            Layer::batchedMatmul(p + ".scores", bmm_count, seq,
                                 cfg.headDim(), ctx, dt),
            {parts[0], k});
        t = g.addLayer(Layer::softmax(p + ".softmax",
                                      bmm_count * seq, ctx, dt),
                       {t});
        t = g.addLayer(
            Layer::batchedMatmul(p + ".context", bmm_count, seq, ctx,
                                 cfg.headDim(), dt),
            {t, v});
        t = g.addLayer(
            Layer::linear(p + ".proj", tokens, cfg.hidden, cfg.hidden,
                          dt),
            {t});
        t = g.addResidualAdd(p + ".add1", t, x);
        TensorId ln1 = g.addLayer(
            Layer::layerNorm(p + ".ln1", tokens, cfg.hidden, dt), {t});

        t = g.addLayer(
            Layer::linear(p + ".ffn1", tokens, cfg.hidden, cfg.ffn,
                          dt),
            {ln1});
        t = g.addLayer(Layer::activation(p + ".gelu",
                                         tokens * cfg.ffn,
                                         ActKind::Gelu, dt),
                       {t});
        t = g.addLayer(
            Layer::linear(p + ".ffn2", tokens, cfg.ffn, cfg.hidden,
                          dt),
            {t});
        t = g.addResidualAdd(p + ".add2", t, ln1);
        x = g.addLayer(
            Layer::layerNorm(p + ".ln2", tokens, cfg.hidden, dt), {t});
    }
    return x;
}

void
checkConfig(const DecoderConfig &cfg)
{
    simAssert(cfg.batch > 0 && cfg.hidden > 0 && cfg.blocks > 0,
              "bad decoder dims");
    simAssert(cfg.heads > 0 && cfg.hidden % cfg.heads == 0,
              "hidden must divide by heads");
}

} // anonymous namespace

Graph
prefillGraph(const DecoderConfig &cfg, unsigned prompt_len)
{
    checkConfig(cfg);
    simAssert(prompt_len > 0, "prompt must be non-empty");
    const std::uint64_t tokens =
        std::uint64_t(cfg.batch) * prompt_len;

    Graph g;
    g.name = cfg.name + ".prefill";
    TensorId x = g.addInput("prompt", tokens * cfg.hidden, cfg.dtype);
    x = blockStack(g, cfg, x, prompt_len, prompt_len, nullptr);

    // Only the last token's hidden state feeds the first sampled
    // logit; the earlier positions exist to fill the caches.
    if (prompt_len > 1) {
        const std::uint64_t last =
            std::uint64_t(cfg.batch) * cfg.hidden;
        x = g.addSplit("lm_head.slice", x,
                       {tokens * cfg.hidden - last, last})[1];
    }
    x = g.addLayer(Layer::linear("lm_head", cfg.batch, cfg.hidden,
                                 cfg.vocab, cfg.dtype),
                   {x});
    g.markOutput(x);
    return g;
}

Graph
decodeGraph(const DecoderConfig &cfg, unsigned ctx)
{
    checkConfig(cfg);
    simAssert(ctx > 0, "context must include the new token");

    Graph g;
    g.name = cfg.name + ".decode";
    TensorId x = g.addInput(
        "token", std::uint64_t(cfg.batch) * cfg.hidden, cfg.dtype);

    std::vector<TensorId> kv;
    if (ctx > 1) {
        const std::uint64_t cached =
            std::uint64_t(cfg.batch) * (ctx - 1) * cfg.hidden;
        kv.reserve(2 * cfg.blocks);
        for (unsigned b = 0; b < cfg.blocks; ++b) {
            const std::string p = "blk" + std::to_string(b);
            kv.push_back(
                g.addInput(p + ".k.cache", cached, cfg.dtype));
            kv.push_back(
                g.addInput(p + ".v.cache", cached, cfg.dtype));
        }
    }
    x = blockStack(g, cfg, x, 1, ctx, ctx > 1 ? &kv : nullptr);

    x = g.addLayer(Layer::linear("lm_head", cfg.batch, cfg.hidden,
                                 cfg.vocab, cfg.dtype),
                   {x});
    g.markOutput(x);
    return g;
}

Bytes
kvCacheBytes(const DecoderConfig &cfg, unsigned ctx)
{
    return 2 * Bytes(cfg.blocks) *
           bytesOf(cfg.dtype,
                   std::uint64_t(cfg.batch) * ctx * cfg.hidden);
}

KvResidency
kvResidency(const DecoderConfig &cfg, unsigned ctx,
            const memory::LlcConfig &llc)
{
    KvResidency out;
    out.kvBytes = kvCacheBytes(cfg, ctx);
    out.lines = (out.kvBytes + llc.lineBytes - 1) / llc.lineBytes;
    out.fits = out.kvBytes <= llc.capacity;

    // One decode step reads every K and V line (scores sweep K,
    // context sweeps V): warm with one full sweep, then measure the
    // re-read — resident caches hit everywhere, overflowing ones
    // thrash the LRU from the front.
    memory::Llc cache(llc);
    for (std::uint64_t line = 0; line < out.lines; ++line)
        cache.access(line * llc.lineBytes);
    cache.resetStats();
    for (std::uint64_t line = 0; line < out.lines; ++line)
        cache.access(line * llc.lineBytes);
    out.rereadHitRate = cache.partStats(0).hitRate();
    return out;
}

} // namespace graph
} // namespace ascend
