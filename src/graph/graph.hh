/**
 * @file
 * Graph IR: DAGs of layers with explicit tensor edges.
 *
 * The model layer (model/network.hh) is an ordered list — enough for
 * the paper's five zoo networks, because their DAG structure (ResNet
 * residuals, BERT attention branches) collapses to the same layer
 * multiset when lowered. It cannot express *new* workloads whose
 * shape depends on wiring: KV-cache decoders whose cache tensors are
 * graph inputs and outputs, multi-output heads, or imported models.
 *
 * This module is the ONNX-like front-end the ROADMAP asks for: nodes
 * are either compute nodes wrapping one model::Layer or structural
 * nodes (residual-add, concat, split); edges are explicit tensors
 * with an element count and dtype. Structural invariants (acyclic,
 * no dangling edges, per-node shape agreement) are checked by
 * validate(), which throws structured ascend::Error — GraphInvalid
 * for wiring damage, GraphShapeMismatch for inconsistent volumes —
 * so a service embedding the simulator can reject one bad graph
 * without dying.
 *
 * Lowering (graph/lower.hh) walks a validated DAG in deterministic
 * topological order through the existing tiling compiler, so cycle
 * results are byte-identical to the legacy linear path for graphs
 * that re-express a Network (enforced by tests/test_graph_ir.cc).
 *
 * The struct members are public, repo-style: builder methods keep
 * the producer back-references consistent, and validate() is the
 * single source of truth — tests corrupt graphs directly to exercise
 * the negative paths.
 */

#ifndef ASCEND_GRAPH_GRAPH_HH
#define ASCEND_GRAPH_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "model/layer.hh"

namespace ascend {
namespace graph {

/** Index into Graph::tensors. */
using TensorId = std::uint32_t;

/** What a node computes. */
enum class OpKind {
    Layer,       ///< one model::Layer (any existing kind)
    ResidualAdd, ///< two-input elementwise add (lowers to Elementwise)
    Concat,      ///< pure wiring: concatenation along the flat dim
    Split,       ///< pure wiring: partition along the flat dim
};

const char *toString(OpKind op);

/**
 * One tensor edge. Shapes are flat (element count + dtype): the cost
 * model consumes byte volumes, never axis order, so a flat volume
 * plus per-node interpretation is exactly as accurate as NCHW
 * carried everywhere — and it makes concat/split trivially general.
 */
struct Tensor
{
    std::string name;
    std::uint64_t elems = 0;
    DataType dtype = DataType::Fp16;
    /// Producing node index, or -1 for a graph input.
    int producer = -1;
    /// Output slot within the producer.
    unsigned producerSlot = 0;

    Bytes bytes() const { return bytesOf(dtype, elems); }
};

/** One node. `layer` is meaningful only when op == OpKind::Layer. */
struct Node
{
    OpKind op = OpKind::Layer;
    std::string name;
    model::Layer layer;
    std::vector<TensorId> inputs;
    std::vector<TensorId> outputs;
};

/**
 * The graph. Build with the add* methods (they derive output tensor
 * shapes and keep back-references consistent), mark result tensors
 * with markOutput, then validate() before lowering.
 */
class Graph
{
  public:
    std::string name;
    std::vector<Node> nodes;
    std::vector<Tensor> tensors;
    /// Tensors the graph exposes as results (multi-output is normal:
    /// a decoder step returns activations plus its updated KV cache).
    std::vector<TensorId> outputs;

    /** Add a graph-input tensor. */
    TensorId addInput(const std::string &tensor_name,
                      std::uint64_t elems, DataType dt);

    /**
     * Add a compute node for @p layer consuming @p ins.
     *
     * @p ins carries the activation edge first; GEMM-like layers
     * whose second operand is itself an activation (attention
     * scores/context consuming K/V) pass it as a second input. The
     * output tensor shape is derived from the layer; its name is
     * "<layer.name>:0".
     */
    TensorId addLayer(model::Layer layer, std::vector<TensorId> ins);

    /** Two-input residual add; output mirrors the input shape. */
    TensorId addResidualAdd(const std::string &node_name, TensorId a,
                            TensorId b);

    /** Concatenate @p ins (same dtype) into one tensor. */
    TensorId addConcat(const std::string &node_name,
                       std::vector<TensorId> ins);

    /**
     * Partition @p in into tensors of @p part_elems elements (must
     * sum to the input volume). This doubles as slice: consume only
     * the parts you need, unconsumed parts are legal.
     */
    std::vector<TensorId> addSplit(const std::string &node_name,
                                   TensorId in,
                                   const std::vector<std::uint64_t>
                                       &part_elems);

    /** Even split into @p parts parts. */
    std::vector<TensorId> addSplit(const std::string &node_name,
                                   TensorId in, unsigned parts);

    /** Mark @p t as a graph output. */
    void markOutput(TensorId t);

    /**
     * Full structural + shape validation. Throws
     * Error{GraphInvalid} on a cycle, an out-of-range edge, a
     * producer back-reference that disagrees with the node, or an
     * orphan tensor; Error{GraphShapeMismatch} when a node's tensor
     * volumes disagree with its operation.
     */
    void validate() const;

    /**
     * Deterministic topological order of node indices (Kahn's
     * algorithm, smallest-index-first tie-break, so a graph built in
     * execution order lowers in that order). Throws
     * Error{GraphInvalid} on a cycle.
     */
    std::vector<std::size_t> topoOrder() const;

    /**
     * Structural content hash, "agr:" + 16 hex digits: FNV-1a over
     * input shapes, node operations (layer shape fingerprints
     * included, names excluded) and edge wiring. Two graphs that
     * lower to the same schedule hash equal; the "agr:" prefix keys
     * a SimCache namespace that can never alias the "lay:"-suffixed
     * legacy layer keys (tests/test_graph_ir.cc proves both).
     */
    std::string fingerprint() const;

    /** Exact equality, names included (importer round-trip oracle). */
    bool operator==(const Graph &other) const;
    bool operator!=(const Graph &other) const
    {
        return !(*this == other);
    }

  private:
    TensorId newTensor(const std::string &tensor_name,
                       std::uint64_t elems, DataType dt, int producer,
                       unsigned slot);
    const Tensor &checkedTensor(TensorId t, const char *who) const;
};

} // namespace graph
} // namespace ascend

#endif // ASCEND_GRAPH_GRAPH_HH
