/**
 * @file
 * Graph IR construction, validation, topological order and hashing.
 */

#include "graph/graph.hh"

#include <algorithm>
#include <queue>

#include "common/error.hh"
#include "runtime/sim_cache.hh"

namespace ascend {
namespace graph {

namespace {

/** Activation-input volume of a layer in elements. */
std::uint64_t
layerInputElems(const model::Layer &l)
{
    using model::LayerKind;
    switch (l.kind) {
      case LayerKind::Conv2d:
      case LayerKind::DepthwiseConv2d:
      case LayerKind::Pool2d:
        return std::uint64_t(l.batch) * l.inC * l.inH * l.inW;
      case LayerKind::Linear:
      case LayerKind::BatchedMatmul:
        return l.gemmM * l.gemmK * l.matmulCount;
      default:
        return l.elems;
    }
}

/** Second-operand volume when it is an activation edge (K/V). */
std::uint64_t
layerSecondOperandElems(const model::Layer &l)
{
    return l.gemmK * l.gemmN * l.matmulCount;
}

/** Output volume of a layer in elements. */
std::uint64_t
layerOutputElems(const model::Layer &l)
{
    using model::LayerKind;
    switch (l.kind) {
      case LayerKind::Conv2d:
      case LayerKind::DepthwiseConv2d:
      case LayerKind::Pool2d:
        return std::uint64_t(l.batch) * l.outC * l.outH() * l.outW();
      case LayerKind::Linear:
      case LayerKind::BatchedMatmul:
        return l.gemmM * l.gemmN * l.matmulCount;
      default:
        return l.elems;
    }
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

/**
 * Shape agreement between one node and its tensors. Factored out so
 * the builders fail fast with exactly the message validate() would
 * produce on an imported graph.
 */
void
checkNodeShapes(const Graph &g, std::size_t ni)
{
    const Node &n = g.nodes[ni];
    auto in = [&](std::size_t i) -> const Tensor & {
        return g.tensors[n.inputs[i]];
    };
    auto out = [&](std::size_t i) -> const Tensor & {
        return g.tensors[n.outputs[i]];
    };
    auto fail = [&](const char *what) {
        throwError(ErrorCode::GraphShapeMismatch, "node '%s' (%s): %s",
                   n.name.c_str(), toString(n.op), what);
    };

    switch (n.op) {
      case OpKind::Layer: {
        const model::Layer &l = n.layer;
        if (n.inputs.empty() || n.inputs.size() > 2)
            fail("a layer node takes one or two inputs");
        if (n.outputs.size() != 1)
            fail("a layer node produces exactly one output");
        if (in(0).dtype != l.dtype)
            fail("input dtype differs from the layer dtype");
        if (in(0).elems != layerInputElems(l))
            fail("input volume differs from the layer's activation");
        if (n.inputs.size() == 2) {
            if (l.kind != model::LayerKind::Linear &&
                l.kind != model::LayerKind::BatchedMatmul)
                fail("only GEMM-like layers take a second operand");
            if (in(1).dtype != l.dtype)
                fail("second operand dtype differs from the layer");
            if (in(1).elems != layerSecondOperandElems(l))
                fail("second operand volume differs from k*n*count");
        }
        if (out(0).dtype != l.dtype ||
            out(0).elems != layerOutputElems(l))
            fail("output tensor disagrees with the layer's output");
        break;
      }
      case OpKind::ResidualAdd: {
        if (n.inputs.size() != 2)
            fail("residual add takes exactly two inputs");
        if (n.outputs.size() != 1)
            fail("residual add produces exactly one output");
        if (in(0).dtype != in(1).dtype || in(0).elems != in(1).elems)
            fail("residual operands must match in shape and dtype");
        if (out(0).dtype != in(0).dtype ||
            out(0).elems != in(0).elems)
            fail("residual output must mirror its operands");
        break;
      }
      case OpKind::Concat: {
        if (n.inputs.empty())
            fail("concat needs at least one input");
        if (n.outputs.size() != 1)
            fail("concat produces exactly one output");
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < n.inputs.size(); ++i) {
            if (in(i).dtype != in(0).dtype)
                fail("concat inputs must share one dtype");
            sum += in(i).elems;
        }
        if (out(0).dtype != in(0).dtype || out(0).elems != sum)
            fail("concat output must sum its input volumes");
        break;
      }
      case OpKind::Split: {
        if (n.inputs.size() != 1)
            fail("split takes exactly one input");
        if (n.outputs.empty())
            fail("split needs at least one part");
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < n.outputs.size(); ++i) {
            if (out(i).dtype != in(0).dtype)
                fail("split parts must keep the input dtype");
            sum += out(i).elems;
        }
        if (sum != in(0).elems)
            fail("split parts must exactly cover the input");
        break;
      }
    }
    for (const TensorId t : n.outputs)
        if (g.tensors[t].elems == 0)
            fail("zero-element tensor");
}

} // anonymous namespace

const char *
toString(OpKind op)
{
    switch (op) {
      case OpKind::Layer:       return "layer";
      case OpKind::ResidualAdd: return "add";
      case OpKind::Concat:      return "concat";
      case OpKind::Split:       return "split";
    }
    return "?";
}

const Tensor &
Graph::checkedTensor(TensorId t, const char *who) const
{
    if (t >= tensors.size())
        throwError(ErrorCode::GraphInvalid,
                   "%s: tensor id %u out of range (graph '%s' has %zu)",
                   who, t, name.c_str(), tensors.size());
    return tensors[t];
}

TensorId
Graph::newTensor(const std::string &tensor_name, std::uint64_t elems,
                 DataType dt, int producer, unsigned slot)
{
    if (elems == 0)
        throwError(ErrorCode::GraphShapeMismatch,
                   "tensor '%s': zero elements", tensor_name.c_str());
    Tensor t;
    t.name = tensor_name;
    t.elems = elems;
    t.dtype = dt;
    t.producer = producer;
    t.producerSlot = slot;
    tensors.push_back(std::move(t));
    return TensorId(tensors.size() - 1);
}

TensorId
Graph::addInput(const std::string &tensor_name, std::uint64_t elems,
                DataType dt)
{
    return newTensor(tensor_name, elems, dt, -1, 0);
}

TensorId
Graph::addLayer(model::Layer layer, std::vector<TensorId> ins)
{
    for (const TensorId t : ins)
        checkedTensor(t, "addLayer");
    Node n;
    n.op = OpKind::Layer;
    n.name = layer.name;
    n.layer = std::move(layer);
    n.inputs = std::move(ins);
    const int ni = int(nodes.size());
    nodes.push_back(std::move(n));
    const TensorId out =
        newTensor(nodes.back().name + ":0",
                  layerOutputElems(nodes.back().layer),
                  nodes.back().layer.dtype, ni, 0);
    nodes.back().outputs.push_back(out);
    checkNodeShapes(*this, std::size_t(ni));
    return out;
}

TensorId
Graph::addResidualAdd(const std::string &node_name, TensorId a,
                      TensorId b)
{
    const Tensor &ta = checkedTensor(a, "addResidualAdd");
    checkedTensor(b, "addResidualAdd");
    Node n;
    n.op = OpKind::ResidualAdd;
    n.name = node_name;
    n.inputs = {a, b};
    const int ni = int(nodes.size());
    nodes.push_back(std::move(n));
    const TensorId out =
        newTensor(node_name + ":0", ta.elems, ta.dtype, ni, 0);
    nodes.back().outputs.push_back(out);
    checkNodeShapes(*this, std::size_t(ni));
    return out;
}

TensorId
Graph::addConcat(const std::string &node_name, std::vector<TensorId> ins)
{
    std::uint64_t sum = 0;
    DataType dt = DataType::Fp16;
    for (std::size_t i = 0; i < ins.size(); ++i) {
        const Tensor &t = checkedTensor(ins[i], "addConcat");
        if (i == 0)
            dt = t.dtype;
        sum += t.elems;
    }
    Node n;
    n.op = OpKind::Concat;
    n.name = node_name;
    n.inputs = std::move(ins);
    const int ni = int(nodes.size());
    nodes.push_back(std::move(n));
    const TensorId out = newTensor(node_name + ":0", sum, dt, ni, 0);
    nodes.back().outputs.push_back(out);
    checkNodeShapes(*this, std::size_t(ni));
    return out;
}

std::vector<TensorId>
Graph::addSplit(const std::string &node_name, TensorId in,
                const std::vector<std::uint64_t> &part_elems)
{
    const Tensor t = checkedTensor(in, "addSplit");
    Node n;
    n.op = OpKind::Split;
    n.name = node_name;
    n.inputs = {in};
    const int ni = int(nodes.size());
    nodes.push_back(std::move(n));
    std::vector<TensorId> outs;
    outs.reserve(part_elems.size());
    for (std::size_t i = 0; i < part_elems.size(); ++i) {
        const TensorId o =
            newTensor(node_name + ":" + std::to_string(i),
                      part_elems[i], t.dtype, ni, unsigned(i));
        nodes[ni].outputs.push_back(o);
        outs.push_back(o);
    }
    checkNodeShapes(*this, std::size_t(ni));
    return outs;
}

std::vector<TensorId>
Graph::addSplit(const std::string &node_name, TensorId in,
                unsigned parts)
{
    const Tensor &t = checkedTensor(in, "addSplit");
    if (parts == 0 || t.elems % parts != 0)
        throwError(ErrorCode::GraphShapeMismatch,
                   "split '%s': %llu elements do not divide into %u "
                   "parts",
                   node_name.c_str(),
                   static_cast<unsigned long long>(t.elems), parts);
    return addSplit(node_name, in,
                    std::vector<std::uint64_t>(parts, t.elems / parts));
}

void
Graph::markOutput(TensorId t)
{
    checkedTensor(t, "markOutput");
    outputs.push_back(t);
}

void
Graph::validate() const
{
    if (nodes.empty())
        throwError(ErrorCode::GraphInvalid, "graph '%s': empty",
                   name.c_str());
    // Edge sanity: every reference in range, every back-reference
    // agreeing with the node it points at.
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
        const Node &n = nodes[ni];
        for (const TensorId t : n.inputs)
            if (t >= tensors.size())
                throwError(ErrorCode::GraphInvalid,
                           "node '%s': dangling input tensor id %u",
                           n.name.c_str(), t);
        for (std::size_t s = 0; s < n.outputs.size(); ++s) {
            const TensorId t = n.outputs[s];
            if (t >= tensors.size())
                throwError(ErrorCode::GraphInvalid,
                           "node '%s': dangling output tensor id %u",
                           n.name.c_str(), t);
            const Tensor &tt = tensors[t];
            if (tt.producer != int(ni) || tt.producerSlot != s)
                throwError(ErrorCode::GraphInvalid,
                           "node '%s': output tensor '%s' does not "
                           "name it as producer",
                           n.name.c_str(), tt.name.c_str());
        }
    }
    for (std::size_t ti = 0; ti < tensors.size(); ++ti) {
        const Tensor &t = tensors[ti];
        if (t.elems == 0)
            throwError(ErrorCode::GraphShapeMismatch,
                       "tensor '%s': zero elements", t.name.c_str());
        if (t.producer >= 0) {
            if (std::size_t(t.producer) >= nodes.size())
                throwError(ErrorCode::GraphInvalid,
                           "tensor '%s': producer %d out of range",
                           t.name.c_str(), t.producer);
            const Node &p = nodes[std::size_t(t.producer)];
            if (t.producerSlot >= p.outputs.size() ||
                p.outputs[t.producerSlot] != TensorId(ti))
                throwError(ErrorCode::GraphInvalid,
                           "tensor '%s': producer '%s' does not list "
                           "it at slot %u",
                           t.name.c_str(), p.name.c_str(),
                           t.producerSlot);
        }
    }
    for (const TensorId t : outputs)
        if (t >= tensors.size())
            throwError(ErrorCode::GraphInvalid,
                       "graph '%s': dangling output tensor id %u",
                       name.c_str(), t);

    // Acyclicity (throws GraphInvalid naming a cycle member).
    (void)topoOrder();

    for (std::size_t ni = 0; ni < nodes.size(); ++ni)
        checkNodeShapes(*this, ni);
}

std::vector<std::size_t>
Graph::topoOrder() const
{
    // Kahn's algorithm with a min-heap: the unique order that
    // dispatches the smallest ready node index first. Builders append
    // nodes in execution order, so for zoo graphs this reproduces the
    // legacy linear layer order exactly.
    std::vector<unsigned> indegree(nodes.size(), 0);
    for (std::size_t ni = 0; ni < nodes.size(); ++ni)
        for (const TensorId t : nodes[ni].inputs)
            if (t < tensors.size() && tensors[t].producer >= 0)
                ++indegree[ni];
    std::priority_queue<std::size_t, std::vector<std::size_t>,
                        std::greater<std::size_t>>
        ready;
    for (std::size_t ni = 0; ni < nodes.size(); ++ni)
        if (indegree[ni] == 0)
            ready.push(ni);

    // Consumers of each node, via its output tensors.
    std::vector<std::vector<std::size_t>> consumers(nodes.size());
    for (std::size_t ni = 0; ni < nodes.size(); ++ni)
        for (const TensorId t : nodes[ni].inputs)
            if (t < tensors.size() && tensors[t].producer >= 0)
                consumers[std::size_t(tensors[t].producer)].push_back(
                    ni);

    std::vector<std::size_t> order;
    order.reserve(nodes.size());
    while (!ready.empty()) {
        const std::size_t ni = ready.top();
        ready.pop();
        order.push_back(ni);
        for (const std::size_t c : consumers[ni])
            if (--indegree[c] == 0)
                ready.push(c);
    }
    if (order.size() != nodes.size()) {
        for (std::size_t ni = 0; ni < nodes.size(); ++ni)
            if (indegree[ni] != 0)
                throwError(ErrorCode::GraphInvalid,
                           "graph '%s': cycle through node '%s'",
                           name.c_str(), nodes[ni].name.c_str());
    }
    return order;
}

std::string
Graph::fingerprint() const
{
    // Names are cosmetic and excluded, exactly like the layer
    // fingerprints in runtime/sim_cache: two graphs that lower to the
    // same schedule share one hash.
    std::string s;
    s.reserve(64 * (tensors.size() + nodes.size()));
    for (const Tensor &t : tensors) {
        s += 't';
        s += std::to_string(t.elems);
        s += ',';
        s += std::to_string(std::uint64_t(t.dtype));
        s += ',';
        s += std::to_string(t.producer);
        s += ',';
        s += std::to_string(t.producerSlot);
        s += ';';
    }
    for (const Node &n : nodes) {
        s += 'n';
        s += std::to_string(std::uint64_t(n.op));
        if (n.op == OpKind::Layer)
            s += runtime::fingerprint(n.layer);
        for (const TensorId t : n.inputs) {
            s += 'i';
            s += std::to_string(t);
        }
        for (const TensorId t : n.outputs) {
            s += 'o';
            s += std::to_string(t);
        }
        s += ';';
    }
    for (const TensorId t : outputs) {
        s += 'O';
        s += std::to_string(t);
    }

    const std::uint64_t h = fnv1a(s);
    static const char *hex = "0123456789abcdef";
    std::string out = "agr:";
    for (int shift = 60; shift >= 0; shift -= 4)
        out += hex[(h >> shift) & 0xf];
    return out;
}

bool
Graph::operator==(const Graph &other) const
{
    if (name != other.name || nodes.size() != other.nodes.size() ||
        tensors.size() != other.tensors.size() ||
        outputs != other.outputs)
        return false;
    for (std::size_t i = 0; i < tensors.size(); ++i) {
        const Tensor &a = tensors[i], &b = other.tensors[i];
        if (a.name != b.name || a.elems != b.elems ||
            a.dtype != b.dtype || a.producer != b.producer ||
            a.producerSlot != b.producerSlot)
            return false;
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const Node &a = nodes[i], &b = other.nodes[i];
        if (a.op != b.op || a.name != b.name ||
            a.inputs != b.inputs || a.outputs != b.outputs)
            return false;
        if (a.op == OpKind::Layer &&
            (a.layer.name != b.layer.name ||
             runtime::fingerprint(a.layer) !=
                 runtime::fingerprint(b.layer)))
            return false;
    }
    return true;
}

} // namespace graph
} // namespace ascend
