/**
 * @file
 * KV-cache decoder workload: the first LLM-era network in the zoo.
 *
 * A decoder-only transformer serves in two phases with very different
 * hardware behavior, and the graph IR is what lets one model express
 * both:
 *
 *  - prefill ingests the whole prompt at once — big GEMMs over
 *    batch*prompt tokens, cube-bound, and it *produces* the per-block
 *    K/V caches as extra graph outputs (multi-output graphs);
 *  - decode advances one token — GEMV-thin matmuls whose second
 *    operands are the K/V caches riding in as graph *inputs*, with a
 *    Concat modeling the cache append and the updated caches marked
 *    as outputs again.
 *
 * The two phases lower to different graph shapes from one config,
 * which is exactly the capability the linear model::Network cannot
 * express. kvCacheBytes gives the closed-form cache footprint;
 * kvResidency streams the cache through the memory::Llc model to ask
 * the paper's Section 4.1 question — does the working set fit in
 * 96 MB, or does it need the 720 MB 3D-SRAM tier — for KV caches
 * instead of feature maps. bench/bench_ratio_decoder.cc sweeps all
 * of this into the prefill-vs-decode cycle-ratio report.
 */

#ifndef ASCEND_GRAPH_DECODER_HH
#define ASCEND_GRAPH_DECODER_HH

#include <string>

#include "graph/graph.hh"
#include "memory/llc.hh"

namespace ascend {
namespace graph {

/** Decoder-only transformer dimensions (GPT-style block stack). */
struct DecoderConfig
{
    std::string name = "decoder";
    unsigned batch = 1;
    unsigned hidden = 768;
    unsigned heads = 12;
    unsigned ffn = 3072;   ///< FFN inner width
    unsigned blocks = 12;  ///< decoder blocks
    unsigned vocab = 32000;
    DataType dtype = DataType::Fp16;

    unsigned headDim() const { return hidden / heads; }
};

/**
 * The prefill phase over a @p prompt_len -token prompt: full
 * self-attention across the prompt, per-block K/V tensors marked as
 * graph outputs (the caches decode will consume), and the LM head
 * over the last token only.
 */
Graph prefillGraph(const DecoderConfig &cfg, unsigned prompt_len);

/**
 * One decode step at total context length @p ctx (the new token
 * included, so ctx >= 1). Per block the K/V caches of ctx-1 tokens
 * enter as graph inputs, a Concat appends the new token's K/V, and
 * the updated caches leave as outputs next to the logits.
 */
Graph decodeGraph(const DecoderConfig &cfg, unsigned ctx);

/**
 * Closed-form K/V cache footprint at context length @p ctx:
 * 2 tensors * blocks * bytesOf(dtype, batch*ctx*hidden). The memory
 * model and tests/test_decoder_kv.cc agree on this formula.
 */
Bytes kvCacheBytes(const DecoderConfig &cfg, unsigned ctx);

/** What kvResidency measured. */
struct KvResidency
{
    Bytes kvBytes = 0;          ///< cache footprint at this ctx
    std::uint64_t lines = 0;    ///< LLC lines the cache spans
    /** Hit rate of a second full sweep after a warming sweep: 1.0
     *  when the cache is LLC-resident, collapsing toward 0 once the
     *  footprint exceeds capacity (LRU streaming worst case). */
    double rereadHitRate = 0;
    bool fits = false;          ///< kvBytes <= llc capacity
};

/**
 * Stream the K/V cache through an LLC of geometry @p llc twice (one
 * decode step touches every line of every block's K and V) and report
 * whether it stays resident. Deterministic: tag-only LRU on a linear
 * address walk.
 */
KvResidency kvResidency(const DecoderConfig &cfg, unsigned ctx,
                        const memory::LlcConfig &llc);

} // namespace graph
} // namespace ascend

#endif // ASCEND_GRAPH_DECODER_HH
