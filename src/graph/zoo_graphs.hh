/**
 * @file
 * Graph-IR builders for the paper's network zoo.
 *
 * Each builder re-expresses one model/zoo.hh network as an explicit
 * DAG: residual connections become ResidualAdd nodes wired from the
 * real producer tensors, BERT's fused QKV projection feeds a Split
 * whose parts drive the attention matmuls as true two-operand nodes,
 * and the pooler consumes a slice (unequal Split) of the final
 * hidden states. Lowering each graph must reproduce the legacy
 * linear layer list exactly — same layers, same order, byte-identical
 * cycles — which tests/test_graph_ir.cc enforces differentially for
 * all five networks.
 */

#ifndef ASCEND_GRAPH_ZOO_GRAPHS_HH
#define ASCEND_GRAPH_ZOO_GRAPHS_HH

#include <string>

#include "graph/graph.hh"

namespace ascend {
namespace graph {
namespace zoo {

/** ResNet50 v1.5 with explicit residual wiring. */
Graph resnet50Graph(unsigned batch, DataType dt = DataType::Fp16);

/** MobileNetV2 with explicit inverted-residual wiring. */
Graph mobilenetV2Graph(unsigned batch, DataType dt = DataType::Fp16);

/** BERT encoder stack as a DAG (QKV split, two-operand attention). */
Graph bertGraph(const std::string &name, unsigned batch,
                unsigned seq_len, unsigned hidden, unsigned layers,
                unsigned heads, unsigned ffn,
                DataType dt = DataType::Fp16);

/** BERT-Base (12 x 768, 12 heads, 3072 FFN). */
Graph bertBaseGraph(unsigned batch, unsigned seq_len = 384,
                    DataType dt = DataType::Fp16);

/** BERT-Large (24 x 1024, 16 heads, 4096 FFN). */
Graph bertLargeGraph(unsigned batch, unsigned seq_len = 384,
                     DataType dt = DataType::Fp16);

/** VGG16 (a pure chain: the degenerate DAG). */
Graph vgg16Graph(unsigned batch, DataType dt = DataType::Fp16);

/** Always-on gesture CNN (int8 chain). */
Graph gestureNetGraph(unsigned batch);

} // namespace zoo
} // namespace graph
} // namespace ascend

#endif // ASCEND_GRAPH_ZOO_GRAPHS_HH
