/**
 * @file
 * Lowering: graph IR -> linear layer schedule -> SimSession run.
 *
 * A validated Graph lowers to an ordered list of model::Layer work in
 * deterministic topological order (graph/graph.hh topoOrder). Compute
 * nodes (OpKind::Layer) lower to their layer verbatim; ResidualAdd
 * lowers to Layer::elementwise over its tensor volume — exactly the
 * shape the legacy zoo builders emit for ".add" layers, which is what
 * makes graph-path cycles byte-identical to the linear path. Concat
 * and Split are pure wiring: zero cycles, elided from the schedule
 * (the legacy BERT builder has no layers for its implicit qkv split,
 * so charging them anything would break the differential tests).
 *
 * runGraph() drives the schedule through SimSession::runInference, so
 * per-layer memoization, the thread-pool fan-out and the surrogate
 * tier all apply unchanged. Whole-graph totals are additionally
 * memoized in the session's SimCache under an "agr:"-prefixed content
 * hash that can never alias the "lay:"-suffixed per-layer keys.
 */

#ifndef ASCEND_GRAPH_LOWER_HH
#define ASCEND_GRAPH_LOWER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.hh"
#include "model/network.hh"
#include "runtime/profile.hh"
#include "runtime/sim_session.hh"

namespace ascend {
namespace graph {

/** One lowered schedule entry: which node produced which layer. */
struct Step
{
    std::size_t node = 0; ///< index into Graph::nodes
    model::Layer layer;
};

/**
 * Lower @p g (validated here) to its layer schedule in deterministic
 * topological order. Structural nodes are elided.
 */
std::vector<Step> lower(const Graph &g);

/** lower() with a caller-chosen topological order (must be valid). */
std::vector<Step> lower(const Graph &g,
                        const std::vector<std::size_t> &order);

/**
 * The lowered schedule as a model::Network named after the graph —
 * the bridge into every consumer of the legacy linear path
 * (SimSession, BatchLatencyModel, training expansion).
 */
model::Network toNetwork(const Graph &g);

/** Result of running one graph through a session. */
struct GraphRun
{
    std::vector<Step> steps;          ///< the lowered schedule
    std::vector<runtime::LayerRun> runs; ///< per-layer results
    core::SimResult total;            ///< summed end-to-end result
};

/**
 * Lower @p g and simulate it on @p session. Per-layer results come
 * from the session's tiered runLayer (cache / surrogate / exact);
 * the summed total is additionally memoized under the graph's
 * content hash. Emits Domain::Graph tracer spans (one per lowered
 * step, cumulative cycle offsets) and charges GraphCounters.
 */
GraphRun runGraph(const runtime::SimSession &session, const Graph &g);

/**
 * End-to-end cycles/energy for @p g on @p session, memoized under
 * graphCacheKey(). The fast path when per-step detail is not needed:
 * a warm cache answers without touching the schedule.
 */
core::SimResult graphResult(const runtime::SimSession &session,
                            const Graph &g);

/**
 * The whole-graph memo key: fingerprint(config) + fingerprint(options)
 * + fingerprint(resilience) + Graph::fingerprint(). Ends in
 * "agr:<hash>", so runtime::parseLayerFingerprint rejects it — graph
 * totals can never be mistaken for per-layer entries.
 */
std::string graphCacheKey(const runtime::SimSession &session,
                          const Graph &g);

} // namespace graph
} // namespace ascend

#endif // ASCEND_GRAPH_LOWER_HH
