/**
 * @file
 * Graph lowering and graph-level memoized simulation.
 */

#include "graph/lower.hh"

#include "obs/tracer.hh"
#include "runtime/perf_stats.hh"

namespace ascend {
namespace graph {

namespace {

/** Static tracer label for one lowered node. */
const char *
spanLabel(OpKind op)
{
    switch (op) {
      case OpKind::Layer:       return "layer";
      case OpKind::ResidualAdd: return "residual-add";
      case OpKind::Concat:      return "concat";
      case OpKind::Split:       return "split";
    }
    return "?";
}

} // namespace

std::vector<Step>
lower(const Graph &g)
{
    return lower(g, g.topoOrder());
}

std::vector<Step>
lower(const Graph &g, const std::vector<std::size_t> &order)
{
    g.validate();
    std::vector<Step> steps;
    steps.reserve(order.size());
    runtime::GraphCounters delta;
    delta.graphsLowered = 1;
    for (const std::size_t ni : order) {
        const Node &n = g.nodes.at(ni);
        ++delta.nodesLowered;
        switch (n.op) {
          case OpKind::Layer:
            steps.push_back({ni, n.layer});
            ++delta.layersLowered;
            break;
          case OpKind::ResidualAdd: {
            // The exact shape the legacy zoo builders emit for their
            // ".add" layers — the differential tests depend on it.
            const Tensor &out = g.tensors[n.outputs[0]];
            steps.push_back({ni, model::Layer::elementwise(
                                     n.name, out.elems, out.dtype)});
            ++delta.layersLowered;
            break;
          }
          case OpKind::Concat:
          case OpKind::Split:
            // Pure wiring: the legacy linear path has no layer for
            // these (BERT's qkv split is implicit there), so they
            // must cost zero cycles to keep the paths identical.
            ++delta.structuralElided;
            break;
        }
    }
    runtime::chargeGraph(delta);
    return steps;
}

model::Network
toNetwork(const Graph &g)
{
    model::Network net;
    net.name = g.name;
    for (Step &s : lower(g))
        net.add(std::move(s.layer));
    return net;
}

std::string
graphCacheKey(const runtime::SimSession &session, const Graph &g)
{
    return runtime::fingerprint(session.config()) +
           runtime::fingerprint(session.options()) +
           runtime::fingerprint(session.resilience()) +
           g.fingerprint();
}

GraphRun
runGraph(const runtime::SimSession &session, const Graph &g)
{
    GraphRun run;
    run.steps = lower(g);

    model::Network net;
    net.name = g.name;
    for (const Step &s : run.steps)
        net.add(s.layer);
    run.runs = session.runInference(net);

    for (const runtime::LayerRun &lr : run.runs)
        run.total.accumulate(lr.result);
    session.cache().insert(graphCacheKey(session, g), run.total);

    if (obs::Tracer *tr = obs::Tracer::current()) {
        Cycles at = 0;
        for (std::size_t i = 0; i < run.runs.size(); ++i) {
            const Cycles dur = run.runs[i].result.totalCycles;
            tr->span(obs::Domain::Graph, 1,
                     spanLabel(g.nodes[run.steps[i].node].op), at,
                     dur, run.runs[i].result.extBytes());
            at += dur;
        }
    }
    return run;
}

core::SimResult
graphResult(const runtime::SimSession &session, const Graph &g)
{
    const std::string key = graphCacheKey(session, g);
    core::SimResult cached;
    if (session.cache().lookup(key, cached)) {
        runtime::GraphCounters delta;
        delta.graphCacheHits = 1;
        runtime::chargeGraph(delta);
        return cached;
    }
    return runGraph(session, g).total;
}

} // namespace graph
} // namespace ascend
