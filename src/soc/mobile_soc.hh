/**
 * @file
 * Kirin 990 5G mobile SoC model (Section 3.2): two Ascend-Lite cores
 * and one Ascend-Tiny core in a big-little arrangement behind an
 * LPDDR4X memory system. Reproduces Table 8's derived rows (peak
 * TOPS, TOPS/W, NPU area, MobileNetV2 latency).
 */

#ifndef ASCEND_SOC_MOBILE_SOC_HH
#define ASCEND_SOC_MOBILE_SOC_HH

#include "runtime/sim_session.hh"
#include "soc/chip_sim.hh"
#include "soc/soc_config.hh"

namespace ascend {
namespace soc {

/**
 * The mobile SoC model.
 */
class MobileSoc
{
  public:
    explicit MobileSoc(MobileSocConfig config = {});

    /** Peak int8 throughput of the whole NPU (Lite x2 + Tiny). */
    double peakOpsInt8() const;

    /** NPU power at peak (unit energy model + uncore). */
    double npuPowerWatts() const;

    /** Table 8's TOPS/W figure. */
    double
    powerEfficiency() const
    {
        return peakOpsInt8() / 1e12 / npuPowerWatts();
    }

    /** NPU area from the calibrated 7 nm model. */
    double npuAreaMm2() const;

    /**
     * Batch-1 latency of a network on one Lite core, seconds,
     * including the LPDDR roofline on off-chip traffic.
     */
    double liteLatencySeconds(const model::Network &net) const;

    /** Batch-1 latency of an always-on network on the Tiny core. */
    double tinyLatencySeconds(const model::Network &net) const;

    /**
     * Big-little concurrency: latency of running @p big on the two
     * Lite cores (batch split) while @p little runs on the Tiny core.
     * Returns the makespan.
     */
    double bigLittleMakespan(const model::Network &big,
                             const model::Network &little) const;

    /**
     * Contention-aware counterpart of bigLittleMakespan: the Lite
     * cores each run their batch share of @p big layer by layer and
     * the Tiny core runs @p little, all draining off-chip traffic
     * through the shared LPDDR interface via the fluid chip
     * simulator (so the big job's streaming phases and the always-on
     * network genuinely interfere instead of being rooflined apart).
     */
    ChipSimResult
    fluidBigLittleMakespan(const model::Network &big,
                           const model::Network &little) const;

    const MobileSocConfig &config() const { return config_; }
    const arch::CoreConfig &liteConfig() const { return lite_; }
    const arch::CoreConfig &tinyConfig() const { return tiny_; }

  private:
    double coreLatencySeconds(const runtime::SimSession &session,
                              const model::Network &net) const;

    MobileSocConfig config_;
    arch::CoreConfig lite_;
    arch::CoreConfig tiny_;
    runtime::SimSession liteSession_;
    runtime::SimSession tinySession_;
};

} // namespace soc
} // namespace ascend

#endif // ASCEND_SOC_MOBILE_SOC_HH
