/**
 * @file
 * Dynamic voltage and frequency scaling for the mobile NPU
 * (Section 3.2): "the working voltage can change dynamically
 * according to real-time workload intensity."
 *
 * Classic CMOS scaling: dynamic power ~ C V^2 f, and the minimum
 * stable voltage grows roughly linearly with frequency above a floor.
 * The governor picks the lowest-energy operating point that still
 * meets a latency deadline.
 */

#ifndef ASCEND_SOC_DVFS_HH
#define ASCEND_SOC_DVFS_HH

#include <string>
#include <vector>

#include "common/logging.hh"

namespace ascend {
namespace soc {

/** One DVFS operating point. */
struct OperatingPoint
{
    std::string name;
    double freqGhz;
    double voltage;

    /** Dynamic power relative to the nominal point. */
    double
    relativePower(const OperatingPoint &nominal) const
    {
        const double v = voltage / nominal.voltage;
        const double f = freqGhz / nominal.freqGhz;
        return v * v * f;
    }
};

/** A DVFS table plus governor helpers. */
class DvfsTable
{
  public:
    /** The Kirin-class NPU ladder (nominal = "standard" mode). */
    static DvfsTable
    mobileNpu()
    {
        return DvfsTable({
            {"low", 0.30, 0.55},
            {"mid", 0.50, 0.65},
            {"standard", 0.75, 0.80},
            {"boost", 0.96, 0.95},
        }, /*nominal_index=*/2);
    }

    DvfsTable(std::vector<OperatingPoint> points,
              std::size_t nominal_index)
        : points_(std::move(points)), nominal_(nominal_index)
    {
        simAssert(!points_.empty(), "DVFS table must not be empty");
        simAssert(nominal_ < points_.size(), "bad nominal index");
        for (std::size_t i = 1; i < points_.size(); ++i)
            simAssert(points_[i].freqGhz > points_[i - 1].freqGhz,
                      "DVFS points must be sorted by frequency");
    }

    const OperatingPoint &nominal() const { return points_[nominal_]; }
    const std::vector<OperatingPoint> &points() const { return points_; }

    /** Latency of a workload that takes @p nominal_seconds nominally. */
    double
    latencyAt(const OperatingPoint &opp, double nominal_seconds) const
    {
        return nominal_seconds * nominal().freqGhz / opp.freqGhz;
    }

    /**
     * Energy of the same workload relative to the nominal point:
     * power scales V^2 f, time scales 1/f, so energy scales V^2.
     */
    double
    relativeEnergyAt(const OperatingPoint &opp) const
    {
        const double v = opp.voltage / nominal().voltage;
        return v * v;
    }

    /**
     * Governor: the lowest-energy (lowest-voltage) point that meets
     * @p deadline_seconds for a nominally @p nominal_seconds job.
     * Falls back to the fastest point when none meets the deadline.
     */
    const OperatingPoint &
    pick(double nominal_seconds, double deadline_seconds) const
    {
        for (const OperatingPoint &opp : points_) {
            if (latencyAt(opp, nominal_seconds) <= deadline_seconds)
                return opp;
        }
        return points_.back();
    }

  private:
    std::vector<OperatingPoint> points_;
    std::size_t nominal_;
};

} // namespace soc
} // namespace ascend

#endif // ASCEND_SOC_DVFS_HH
