/**
 * @file
 * Automotive SoC implementation.
 */

#include "soc/auto_soc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ascend {
namespace soc {

namespace {

compiler::CompileOptions
vectorCoreOptions()
{
    compiler::CompileOptions options;
    options.mapGemmToVector = true;
    return options;
}

} // anonymous namespace

AutoSoc::AutoSoc(AutoSocConfig config)
    : config_(std::move(config)),
      core_(arch::makeCoreConfig(config_.coreVersion)),
      session_(core_),
      vectorCoreSession_(core_, vectorCoreOptions())
{
    simAssert(config_.aiCores > 0, "auto SoC needs AI cores");
}

double
AutoSoc::slamLatencySeconds(const model::Network &net) const
{
    const core::SimResult r = vectorCoreSession_.inferenceResult(net);
    const double mem_sec =
        double(r.extBytes()) / config_.dram.bandwidthBytesPerSec;
    return std::max(r.seconds(core_.clockGhz), mem_sec);
}

double
AutoSoc::peakOpsInt8() const
{
    return double(config_.aiCores) *
           double(core_.cubeShapeFor(DataType::Int8).flopsPerCycle()) *
           core_.clockGhz * 1e9;
}

double
AutoSoc::peakOpsInt4() const
{
    return double(config_.aiCores) *
           double(core_.cubeShapeFor(DataType::Int4).flopsPerCycle()) *
           core_.clockGhz * 1e9;
}

double
AutoSoc::frameLatencySeconds(
    const std::vector<const model::Network *> &nets) const
{
    // One perception network per core, all started after the DVPP
    // finishes the frame; the frame completes when the slowest model
    // does. Off-chip traffic shares the automotive DRAM.
    double worst_compute = 0;
    Bytes total_ext = 0;
    for (const model::Network *net : nets) {
        const core::SimResult r = session_.inferenceResult(*net);
        worst_compute = std::max(worst_compute, r.seconds(core_.clockGhz));
        total_ext += r.extBytes();
    }
    const double mem_sec =
        double(total_ext) / config_.dram.bandwidthBytesPerSec;
    return config_.dvppFrameSeconds + std::max(worst_compute, mem_sec);
}

double
AutoSoc::fluidFrameLatencySeconds(
    const std::vector<const model::Network *> &nets) const
{
    simAssert(nets.size() <= config_.aiCores,
              "one perception network per core");
    std::vector<std::vector<CoreTask>> per_core;
    per_core.reserve(nets.size());
    for (const model::Network *net : nets)
        per_core.push_back(coreTasks(session_, *net));
    const ChipSimResult r =
        runChipSim(per_core, config_.dram.bandwidthBytesPerSec);
    return config_.dvppFrameSeconds + r.makespan;
}

QosResult
AutoSoc::qosExperiment(unsigned mpam_ways, Bytes critical_working_set,
                       Bytes bulk_stream, unsigned rounds) const
{
    memory::LlcConfig cfg;
    cfg.capacity = config_.llcCapacity;
    cfg.ways = 16;
    cfg.lineBytes = 256; // finer lines: latency experiment, short trace
    cfg.partitions = 2;
    memory::Llc llc(cfg);

    constexpr unsigned kCritical = 0;
    constexpr unsigned kBulk = 1;
    if (mpam_ways > 0) {
        if (mpam_ways >= cfg.ways)
            fatal("qosExperiment: mpam_ways must leave bulk some ways");
        llc.setPartitionRange(kCritical, 0, mpam_ways);
        llc.setPartitionRange(kBulk, mpam_ways, cfg.ways - mpam_ways);
    }

    const std::uint64_t critical_base = 0;
    const std::uint64_t bulk_base = 1ull << 40;
    const std::uint64_t critical_lines =
        ceilDiv(critical_working_set, cfg.lineBytes);
    const std::uint64_t bulk_lines = ceilDiv(bulk_stream, cfg.lineBytes);

    // Interleave: each round, the critical task re-touches its hot
    // set while the bulk stream pollutes the cache. The interleaving
    // is line-by-line proportional so pollution lands between
    // critical touches (worst case for an unpartitioned cache).
    const std::uint64_t bulk_per_critical =
        std::max<std::uint64_t>(1, bulk_lines / critical_lines);
    for (unsigned r = 0; r < rounds; ++r) {
        std::uint64_t bulk_pos = 0;
        for (std::uint64_t i = 0; i < critical_lines; ++i) {
            llc.access(critical_base + i * cfg.lineBytes, kCritical);
            for (std::uint64_t b = 0; b < bulk_per_critical; ++b) {
                const std::uint64_t line =
                    (std::uint64_t(r) * bulk_lines + bulk_pos++) %
                    (4 * bulk_lines);
                llc.access(bulk_base + line * cfg.lineBytes, kBulk);
            }
        }
    }

    const auto &crit = llc.partStats(kCritical);
    const auto &bulk = llc.partStats(kBulk);
    QosResult result;
    result.criticalHitRate = crit.hitRate();
    result.bulkHitRate = bulk.hitRate();
    const double llc_ns = 30.0;
    const double dram_ns = config_.dram.latencySec * 1e9;
    result.criticalAvgLatencyNs =
        crit.hitRate() * llc_ns + (1.0 - crit.hitRate()) * dram_ns;
    return result;
}

} // namespace soc
} // namespace ascend
