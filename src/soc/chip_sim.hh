/**
 * @file
 * Fluid multi-core chip simulator.
 *
 * The TrainingSoc roofline assumes all cores run in lockstep; this
 * model relaxes that: each core executes its own task sequence
 * (compute seconds + off-core bytes per task), and the shared memory
 * system is a capacity that active tasks share max-min fairly. The
 * simulation advances event-by-event (piecewise-constant rates), so
 * stragglers, skewed partitions, and bandwidth contention between
 * unequal tasks are captured.
 *
 * Hot-path structure: the simulation is a des::Kernel client — each
 * rate re-solve is one kernel event that re-arms itself while work
 * remains, and it only touches an *active-core index set* (finished
 * cores leave every scan). Between two shared-memory rate re-solve
 * points the independent per-core state advances as a kernel *phase*
 * (fixed-grain slices over runtime::parallelFor). Determinism
 * contract: slice boundaries are thread-count independent, phase
 * reductions are exact (min / integer counts), and fluid byte
 * accounting is serialized in core-index order — so results are
 * byte-identical at any ASCEND_THREADS and any slice grain.
 *
 * Used to study block-level parallel execution (Section 5.2) on the
 * 910: how uneven layer splits and memory interference stretch the
 * lockstep estimate.
 */

#ifndef ASCEND_SOC_CHIP_SIM_HH
#define ASCEND_SOC_CHIP_SIM_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"
#include "model/network.hh"
#include "resilience/fault_schedule.hh"

namespace ascend {
namespace runtime {
class SimSession;
} // namespace runtime

namespace soc {

/** One unit of core work. */
struct CoreTask
{
    double computeSeconds = 0; ///< pure compute time (no contention)
    Bytes memBytes = 0;        ///< off-core traffic it must move
};

/** Result of a fluid simulation. */
struct ChipSimResult
{
    double makespan = 0;
    std::vector<double> coreFinish; ///< per-core completion time
    double avgMemUtilization = 0;   ///< shared-capacity usage over time

    /// @{ Degraded-mode accounting (zero on the fault-free path).
    unsigned coreFailures = 0;      ///< transient + permanent strikes
    unsigned reDispatchedTasks = 0; ///< tasks moved off dead cores
    /** False when every core died with work still queued. */
    bool completed = true;
    /// @}
};

/** Tuning and safety knobs of the fluid event loop. */
struct ChipSimOptions
{
    /**
     * Event-count bound: exceeding it raises ascend::Error with code
     * GuardExceeded and progress context (a guard against numerical
     * livelock; genuine workloads complete in O(total tasks) events).
     */
    int guardLimit = 4 * 1000 * 1000;

    /**
     * Active cores per kernel phase slice (forwarded to
     * des::KernelOptions::parallelGrain). Active sets smaller than
     * two slices advance inline (fan-out overhead would dominate at
     * SoC scale); results never depend on the grain or the thread
     * count. ASCEND_CHIPSIM_GRAIN overrides the default.
     */
    std::size_t parallelGrain = 512;

    /** Defaults with ASCEND_CHIPSIM_GRAIN applied (parsed once). */
    static ChipSimOptions fromEnv();
};

/**
 * Simulate @p per_core task queues over a shared memory system of
 * @p mem_bytes_per_sec. Within one task, compute and its memory
 * traffic overlap (double buffering): the task finishes when both
 * its compute time has elapsed and its bytes have drained at the
 * granted rate.
 */
ChipSimResult runChipSim(const std::vector<std::vector<CoreTask>> &per_core,
                         double mem_bytes_per_sec,
                         const ChipSimOptions &options =
                             ChipSimOptions::fromEnv());

/**
 * Degraded-mode variant: same fluid model plus a per-core fault plan.
 *  - Stragglers execute compute slower by their plan factor (memory
 *    draining still shares the fluid capacity fairly).
 *  - A transient failure pauses the core for the event's repair
 *    window and restarts its in-flight task from scratch.
 *  - A permanent failure kills the core; its in-flight task and its
 *    remaining queue are re-dispatched to surviving cores in
 *    deterministic order (lowest-index idle core first).
 * An empty plan delegates to the fault-free overload and reproduces
 * its result bit-for-bit.
 */
ChipSimResult runChipSim(const std::vector<std::vector<CoreTask>> &per_core,
                         double mem_bytes_per_sec,
                         const resilience::ChipFaultPlan &plan,
                         const ChipSimOptions &options =
                             ChipSimOptions::fromEnv());

/**
 * Convenience: the fluid makespan of one chip step under an optional
 * fault plan — what a cluster-scope model (cluster/elastic_run,
 * bench_fault_tolerance) plugs in as stepSecondsPerChip. Callers
 * that must distinguish an all-cores-dead chip use runChipSim and
 * check `completed`; here a dead chip simply reports the time it ran.
 */
double chipStepSeconds(const std::vector<std::vector<CoreTask>> &per_core,
                       double mem_bytes_per_sec,
                       const resilience::ChipFaultPlan &plan = {});

/**
 * Per-core fluid task queue for one instance of @p net on @p session's
 * core: one task per layer, pure compute seconds at the core clock
 * plus the layer's external-bus traffic. The building block the SoC
 * fluid APIs and the block-parallel bench share.
 */
std::vector<CoreTask> coreTasks(const runtime::SimSession &session,
                                const model::Network &net);

} // namespace soc
} // namespace ascend

#endif // ASCEND_SOC_CHIP_SIM_HH
