/**
 * @file
 * Training SoC implementation: data-parallel core timing + chip-level
 * LLC/HBM memory replay.
 */

#include "soc/training_soc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ascend {
namespace soc {

namespace {

/** Sequential address allocator (line-aligned). */
class Allocator
{
  public:
    explicit Allocator(Bytes line) : line_(line) {}

    std::uint64_t
    alloc(Bytes bytes)
    {
        const std::uint64_t base = next_;
        next_ += roundUp(std::max<Bytes>(bytes, 1), line_);
        return base;
    }

  private:
    Bytes line_;
    std::uint64_t next_ = 0;
};

/** Stream a tensor through the LLC; returns bytes that missed. */
Bytes
streamTensor(memory::Llc &llc, std::uint64_t base, Bytes bytes)
{
    const Bytes line = llc.config().lineBytes;
    Bytes miss_bytes = 0;
    const std::uint64_t lines = ceilDiv(std::max<Bytes>(bytes, 1), line);
    for (std::uint64_t i = 0; i < lines; ++i) {
        if (!llc.access(base + i * line))
            miss_bytes += line;
    }
    return miss_bytes;
}

} // anonymous namespace

TrainingSoc::TrainingSoc(TrainingSocConfig config)
    : config_(std::move(config)),
      coreConfig_(arch::makeCoreConfig(config_.coreVersion)),
      session_(coreConfig_)
{
    simAssert(config_.aiCores > 0, "SoC needs at least one AI core");
}

double
TrainingSoc::peakFlopsFp16() const
{
    return double(config_.aiCores) *
           double(coreConfig_.cube.flopsPerCycle()) *
           coreConfig_.clockGhz * 1e9;
}

double
TrainingSoc::peakOpsInt8() const
{
    return double(config_.aiCores) *
           double(coreConfig_.cubeShapeFor(DataType::Int8).flopsPerCycle()) *
           coreConfig_.clockGhz * 1e9;
}

SocStepResult
TrainingSoc::runStep(const model::Network &net, bool training,
                     model::OptimizerKind opt) const
{
    const double clk_hz = coreConfig_.clockGhz * 1e9;
    const unsigned cores = config_.aiCores;
    const std::size_t n = net.layers.size();

    // 1. Per-core compute time and external traffic from the
    // cycle-level simulator, plus the task scheduler's per-task
    // dispatch overhead (Section 5.2).
    const double task_ovh = config_.taskOverheadSec;
    struct Phase
    {
        double seconds = 0;
        Bytes extA = 0, extB = 0, extOut = 0;
    };
    std::vector<Phase> fwd(n), bwd(n);
    auto fill = [&](Phase &ph, const core::SimResult &r) {
        ph.seconds += double(r.totalCycles) / clk_hz + task_ovh;
        ph.extA += r.bus(isa::Bus::ExtA);
        ph.extB += r.bus(isa::Bus::ExtB);
        ph.extOut += r.bus(isa::Bus::ExtOut);
    };
    if (training) {
        const auto steps = session_.runTraining(net, opt);
        for (std::size_t i = 0; i < n; ++i) {
            fill(fwd[i], steps[i][0].result);
            for (std::size_t j = 1; j < steps[i].size(); ++j)
                fill(bwd[i], steps[i][j].result);
        }
    } else {
        const auto runs = session_.runInference(net);
        for (std::size_t i = 0; i < n; ++i)
            fill(fwd[i], runs[i].result);
    }

    // 2. Chip-level memory replay. The per-core compiler re-streams
    // operand panels that do not fit L1 (weights once per m-tile
    // pass, activations once per n-tile pass); the replay reproduces
    // those multiplicities over the global tensors so the LLC model
    // sees the true reuse opportunity. Activation tensors are the
    // per-core ones scaled by the core count; weights are shared.
    // The AI LLC is software-visible: when the whole weight set fits
    // comfortably, the runtime pins it and weight traffic is served
    // at LLC bandwidth without contending for the LRU-managed rest.
    Bytes weight_total = 0;
    for (const model::Layer &l : net.layers)
        weight_total += l.weightBytes();
    const bool pin_weights =
        weight_total <= config_.llcCapacity * 7 / 10;

    memory::LlcConfig llc_cfg;
    llc_cfg.capacity = config_.llcCapacity -
                       (pin_weights ? roundUp(weight_total, kMiB) : 0);
    llc_cfg.capacity = std::max<Bytes>(llc_cfg.capacity, 16 * kMiB);
    llc_cfg.ways = 16;
    llc_cfg.lineBytes = 4 * kKiB;
    memory::Llc llc(llc_cfg);
    Allocator alloc(llc_cfg.lineBytes);

    struct Tensors
    {
        std::uint64_t weights, act, dact, dweights, optState;
        Bytes weightBytes, actBytes, optBytes;
    };
    std::vector<Tensors> tensors(n);
    const Bytes input_bytes =
        n ? net.layers[0].inputBytes() * cores : 0;
    const std::uint64_t input_addr = alloc.alloc(input_bytes);
    for (std::size_t i = 0; i < n; ++i) {
        Tensors &t = tensors[i];
        t.weightBytes = net.layers[i].weightBytes();
        t.actBytes = net.layers[i].outputBytes() * cores;
        t.weights = alloc.alloc(t.weightBytes);
        t.act = alloc.alloc(t.actBytes);
        if (training) {
            t.dact = alloc.alloc(t.actBytes);
            t.dweights = alloc.alloc(t.weightBytes);
            // Optimizer state lives in fp32 (2x the fp16 weights).
            t.optBytes = Bytes(2) * t.weightBytes *
                         model::optimizerStateTensors(opt);
            t.optState = alloc.alloc(t.optBytes);
        }
    }

    SocStepResult result;
    auto add_layer = [&](double compute_sec, Bytes llc_bytes,
                         Bytes miss_bytes) {
        const double llc_sec = double(llc_bytes) / config_.llcBandwidth;
        const double hbm_sec =
            double(miss_bytes) / config_.hbm.bandwidthBytesPerSec;
        const double t = std::max({compute_sec, llc_sec, hbm_sec});
        result.seconds += t;
        if (t == compute_sec)
            result.computeSeconds += t;
        else if (t == hbm_sec)
            result.hbmBoundSeconds += t;
        else
            result.llcBoundSeconds += t;
        result.llcTrafficBytes += llc_bytes;
        result.hbmTrafficBytes += miss_bytes;
    };

    /**
     * Replay one phase of one layer: interleaved multi-pass streams
     * over the inbound tensors (pass counts from the measured core
     * traffic) followed by single-pass outbound writes.
     */
    struct Stream
    {
        std::uint64_t addr;
        Bytes bytes;
        std::uint64_t passes;
        bool pinned = false; ///< served from the pinned LLC region
    };
    auto replay_phase = [&](const Phase &ph,
                            std::vector<Stream> inbound,
                            const std::vector<Stream> &outbound,
                            bool record) {
        std::uint64_t max_passes = 1;
        for (Stream &st : inbound) {
            st.passes = st.bytes
                ? std::max<std::uint64_t>(
                      1, (st.passes + st.bytes / 2) / st.bytes)
                : 0;
            max_passes = std::max(max_passes, st.passes);
        }
        Bytes miss = 0;
        Bytes bytes = 0;
        for (std::uint64_t p = 0; p < max_passes; ++p) {
            for (const Stream &st : inbound) {
                if (p < st.passes && st.bytes) {
                    if (!st.pinned)
                        miss += streamTensor(llc, st.addr, st.bytes);
                    bytes += st.bytes;
                }
            }
        }
        for (const Stream &st : outbound) {
            if (st.bytes) {
                miss += streamTensor(llc, st.addr, st.bytes);
                bytes += st.bytes;
            }
        }
        if (record)
            add_layer(ph.seconds, bytes, miss);
    };

    // Two iterations: the first warms the LLC (weights and persistent
    // tensors reach steady-state residency), the second is measured.
    for (int iter = 0; iter < 2; ++iter) {
        const bool record = iter == 1;
        // Forward pass.
        for (std::size_t i = 0; i < n; ++i) {
            const Tensors &t = tensors[i];
            const std::uint64_t in_addr =
                i ? tensors[i - 1].act : input_addr;
            const Bytes in_bytes =
                i ? tensors[i - 1].actBytes : input_bytes;
            replay_phase(fwd[i],
                         {{in_addr, in_bytes, fwd[i].extA * cores, false},
                          {t.weights, t.weightBytes, fwd[i].extB * cores,
                           pin_weights}},
                         {{t.act, t.actBytes, 1, false}}, record);
            if (record)
                result.flops += net.layers[i].flops() * cores;
        }
        if (!training)
            continue;
        // Backward pass (reverse order): re-read stored activations
        // and weights, read the incoming gradient, write dX and dW.
        for (std::size_t ri = 0; ri < n; ++ri) {
            const std::size_t i = n - 1 - ri;
            const Tensors &t = tensors[i];
            const std::uint64_t in_addr =
                i ? tensors[i - 1].act : input_addr;
            const Bytes in_bytes =
                i ? tensors[i - 1].actBytes : input_bytes;
            // Pool the backward inbound traffic across its three
            // source tensors proportionally to their sizes.
            const Bytes inbound_total =
                (bwd[i].extA + bwd[i].extB) * cores;
            const Bytes src_total =
                in_bytes + t.weightBytes + t.actBytes;
            auto share = [&](Bytes sz) {
                return src_total
                    ? Bytes(double(inbound_total) * sz / src_total) : 0;
            };
            std::vector<Stream> outbound = {
                {t.dweights, t.weightBytes, 1, false}};
            if (t.optBytes)
                // Optimizer state: read-modify-write each step.
                outbound.push_back({t.optState, t.optBytes, 1, false});
            if (i)
                outbound.push_back({tensors[i - 1].dact,
                                    tensors[i - 1].actBytes, 1, false});
            replay_phase(bwd[i],
                         {{in_addr, in_bytes, share(in_bytes), false},
                          {t.weights, t.weightBytes, share(t.weightBytes),
                           pin_weights},
                          {t.dact, t.actBytes, share(t.actBytes), false}},
                         outbound, record);
            if (record)
                result.flops += 2 * net.layers[i].flops() * cores;
        }
    }
    return result;
}

SocStepResult
TrainingSoc::trainStep(const model::Network &per_core_net,
                       model::OptimizerKind opt) const
{
    return runStep(per_core_net, true, opt);
}

SocStepResult
TrainingSoc::inferStep(const model::Network &per_core_net) const
{
    return runStep(per_core_net, false, model::OptimizerKind::Sgd);
}

std::vector<CoreTask>
TrainingSoc::coreTasks(const model::Network &net) const
{
    return soc::coreTasks(session_, net);
}

ChipSimResult
TrainingSoc::fluidInferStep(const model::Network &per_core_net) const
{
    const std::vector<std::vector<CoreTask>> per_core(
        config_.aiCores, coreTasks(per_core_net));
    return runChipSim(per_core, config_.llcBandwidth);
}

ChipSimResult
TrainingSoc::fluidInferStep(const model::Network &per_core_net,
                            const resilience::ChipFaultPlan &plan) const
{
    const std::vector<std::vector<CoreTask>> per_core(
        config_.aiCores, coreTasks(per_core_net));
    return runChipSim(per_core, config_.llcBandwidth, plan);
}

} // namespace soc
} // namespace ascend
