/**
 * @file
 * Ascend 610 autonomous-driving SoC model (Section 3.3).
 *
 * Ten Ascend cores with int8/int4 support, a DVPP pre-processing
 * ASIC, a private safety ring for the CPU domain, and MPAM + QoS
 * protection for latency-critical inference. Reproduces Table 9's
 * derived rows and the MPAM/QoS latency experiment.
 */

#ifndef ASCEND_SOC_AUTO_SOC_HH
#define ASCEND_SOC_AUTO_SOC_HH

#include "memory/llc.hh"
#include "runtime/sim_session.hh"
#include "soc/chip_sim.hh"
#include "soc/soc_config.hh"

namespace ascend {
namespace soc {

/** Outcome of the MPAM/QoS protection experiment. */
struct QosResult
{
    double criticalHitRate = 0;       ///< LLC hit rate of critical task
    double criticalAvgLatencyNs = 0;  ///< avg memory latency it observes
    double bulkHitRate = 0;
};

/**
 * The automotive SoC model.
 */
class AutoSoc
{
  public:
    explicit AutoSoc(AutoSocConfig config = {});

    /** Peak int8 throughput across the AI cores. */
    double peakOpsInt8() const;

    /** Peak int4 throughput (Section 3.3: low-precision inference). */
    double peakOpsInt4() const;

    /**
     * End-to-end frame latency: DVPP pre-processing followed by the
     * given perception networks running concurrently, one per core
     * (the paper's multi-model comprehensive-decision setup).
     */
    double frameLatencySeconds(
        const std::vector<const model::Network *> &nets) const;

    /**
     * Contention-aware counterpart of frameLatencySeconds: each
     * perception network runs layer by layer on its own core while
     * all cores drain off-chip traffic through the shared automotive
     * DRAM via the fluid chip simulator, so a bandwidth-heavy model
     * genuinely delays its neighbours instead of being folded into
     * one aggregate roofline. DVPP pre-processing is added on top as
     * in the roofline variant.
     */
    double fluidFrameLatencySeconds(
        const std::vector<const model::Network *> &nets) const;

    /**
     * SLAM front-end latency on one cube-less Vector Core
     * (Section 3.3): sorting, stereo, quaternion math and clustering
     * run through the vector unit's micro-architecture extensions.
     */
    double slamLatencySeconds(const model::Network &net) const;

    /**
     * The MPAM experiment: a latency-critical task with a small hot
     * working set shares the LLC with bulk streaming traffic.
     *
     * @param mpam_ways Ways reserved for the critical partition
     *        (0 = MPAM off, fully shared cache).
     */
    QosResult qosExperiment(unsigned mpam_ways,
                            Bytes critical_working_set = 4 * kMiB,
                            Bytes bulk_stream = 256 * kMiB,
                            unsigned rounds = 24) const;

    const AutoSocConfig &config() const { return config_; }
    const arch::CoreConfig &coreConfig() const { return core_; }

  private:
    AutoSocConfig config_;
    arch::CoreConfig core_;
    runtime::SimSession session_;
    runtime::SimSession vectorCoreSession_;
};

} // namespace soc
} // namespace ascend

#endif // ASCEND_SOC_AUTO_SOC_HH
