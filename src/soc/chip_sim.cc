/**
 * @file
 * Fluid chip simulation implementation.
 */

#include "soc/chip_sim.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/logging.hh"

namespace ascend {
namespace soc {

ChipSimResult
runChipSim(const std::vector<std::vector<CoreTask>> &per_core,
           double mem_bytes_per_sec)
{
    simAssert(mem_bytes_per_sec > 0, "memory capacity must be positive");
    const std::size_t cores = per_core.size();

    struct CoreState
    {
        std::size_t next = 0;
        double computeLeft = 0;
        double bytesLeft = 0;
        bool active = false;
        double finish = 0;
    };
    std::vector<CoreState> state(cores);

    auto load_next = [&](std::size_t c, double now) {
        CoreState &cs = state[c];
        while (cs.next < per_core[c].size()) {
            const CoreTask &t = per_core[c][cs.next];
            cs.computeLeft = t.computeSeconds;
            cs.bytesLeft = double(t.memBytes);
            if (cs.computeLeft > 0 || cs.bytesLeft > 0) {
                cs.active = true;
                return;
            }
            ++cs.next; // zero task: completes instantly
        }
        cs.active = false;
        cs.finish = now;
    };

    double now = 0;
    double bytes_moved = 0;
    for (std::size_t c = 0; c < cores; ++c)
        load_next(c, now);

    int guard = 0;
    const int guard_limit = 4 * 1000 * 1000;
    while (true) {
        // Count memory-active tasks for the max-min share.
        unsigned mem_active = 0;
        bool any_active = false;
        for (const CoreState &cs : state) {
            if (!cs.active)
                continue;
            any_active = true;
            if (cs.bytesLeft > 0)
                ++mem_active;
        }
        if (!any_active)
            break;
        const double rate =
            mem_active ? mem_bytes_per_sec / mem_active : 0;

        // Time to the next completion event.
        double dt = std::numeric_limits<double>::infinity();
        for (const CoreState &cs : state) {
            if (!cs.active)
                continue;
            double task_dt = 0;
            if (cs.bytesLeft > 0 && cs.computeLeft > 0)
                task_dt = std::min(cs.computeLeft, cs.bytesLeft / rate);
            else if (cs.bytesLeft > 0)
                task_dt = cs.bytesLeft / rate;
            else
                task_dt = cs.computeLeft;
            dt = std::min(dt, task_dt);
        }
        simAssert(dt >= 0 && dt < std::numeric_limits<double>::infinity(),
                  "chip sim event time must be finite");
        dt = std::max(dt, 1e-15); // numerical floor

        now += dt;
        for (std::size_t c = 0; c < cores; ++c) {
            CoreState &cs = state[c];
            if (!cs.active)
                continue;
            if (cs.computeLeft > 0)
                cs.computeLeft = std::max(0.0, cs.computeLeft - dt);
            if (cs.bytesLeft > 0) {
                const double moved = std::min(cs.bytesLeft, rate * dt);
                cs.bytesLeft -= moved;
                bytes_moved += moved;
            }
            if (cs.computeLeft <= 0 && cs.bytesLeft <= 0) {
                ++cs.next;
                load_next(c, now);
            }
        }
        if (++guard > guard_limit)
            panic("runChipSim: event-count guard tripped");
    }

    ChipSimResult result;
    result.makespan = now;
    result.coreFinish.reserve(cores);
    for (const CoreState &cs : state)
        result.coreFinish.push_back(cs.finish);
    result.avgMemUtilization =
        now > 0 ? bytes_moved / (mem_bytes_per_sec * now) : 0.0;
    return result;
}

ChipSimResult
runChipSim(const std::vector<std::vector<CoreTask>> &per_core,
           double mem_bytes_per_sec,
           const resilience::ChipFaultPlan &plan)
{
    if (plan.empty()) // bit-for-bit identical to the fault-free path
        return runChipSim(per_core, mem_bytes_per_sec);

    simAssert(mem_bytes_per_sec > 0, "memory capacity must be positive");
    const std::size_t cores = per_core.size();
    const double inf = std::numeric_limits<double>::infinity();

    struct CoreState
    {
        std::size_t next = 0;       ///< index into own queue
        CoreTask current;           ///< full values, for restart
        double computeLeft = 0;
        double bytesLeft = 0;
        bool active = false;
        bool alive = true;
        double pausedUntil = 0;     ///< transient repair window
        double slowdown = 1.0;      ///< straggler compute stretch
        std::size_t eventIdx = 0;   ///< next unapplied fault event
        double finish = 0;
    };
    std::vector<CoreState> state(cores);
    for (std::size_t c = 0; c < cores; ++c)
        if (c < plan.stragglerFactor.size())
            state[c].slowdown =
                std::max(plan.stragglerFactor[c], 1.0);

    ChipSimResult result;
    std::deque<CoreTask> orphans; ///< work shed by dead cores

    auto start_task = [](CoreState &cs, const CoreTask &t) {
        cs.current = t;
        cs.computeLeft = t.computeSeconds;
        cs.bytesLeft = double(t.memBytes);
        cs.active = cs.computeLeft > 0 || cs.bytesLeft > 0;
        return cs.active;
    };

    // Advance cs to its next non-trivial task: own queue first, then
    // the orphan pool (lowest-index idle core pulls first since the
    // callers iterate cores in order).
    auto load_next = [&](std::size_t c, double now) {
        CoreState &cs = state[c];
        while (cs.next < per_core[c].size()) {
            if (start_task(cs, per_core[c][cs.next]))
                return;
            ++cs.next; // zero task: completes instantly
        }
        while (!orphans.empty()) {
            const CoreTask t = orphans.front();
            orphans.pop_front();
            ++result.reDispatchedTasks;
            if (start_task(cs, t))
                return;
        }
        cs.active = false;
        cs.finish = now;
    };

    auto events_of = [&](std::size_t c)
        -> const std::vector<resilience::FaultEvent> & {
        static const std::vector<resilience::FaultEvent> none;
        return c < plan.coreEvents.size() ? plan.coreEvents[c] : none;
    };

    // Apply every fault event due at or before @p now.
    auto apply_events = [&](double now) {
        for (std::size_t c = 0; c < cores; ++c) {
            CoreState &cs = state[c];
            const auto &events = events_of(c);
            while (cs.eventIdx < events.size() &&
                   events[cs.eventIdx].timeSec <= now) {
                const resilience::FaultEvent &e = events[cs.eventIdx];
                ++cs.eventIdx;
                if (!cs.alive)
                    continue;
                ++result.coreFailures;
                if (e.kind == resilience::FaultKind::CorePermanent) {
                    cs.alive = false;
                    cs.finish = e.timeSec;
                    if (cs.active) // shed in-flight task, restarted
                        orphans.push_back(cs.current);
                    for (std::size_t i = cs.next + (cs.active ? 1 : 0);
                         i < per_core[c].size(); ++i)
                        orphans.push_back(per_core[c][i]);
                    cs.next = per_core[c].size();
                    cs.active = false;
                } else { // transient: pause and restart from scratch
                    cs.pausedUntil = std::max(
                        cs.pausedUntil, e.timeSec + e.durationSec);
                    if (cs.active) {
                        cs.computeLeft = cs.current.computeSeconds;
                        cs.bytesLeft = double(cs.current.memBytes);
                    }
                }
            }
        }
    };

    double now = 0;
    double bytes_moved = 0;
    apply_events(now);
    for (std::size_t c = 0; c < cores; ++c)
        if (state[c].alive)
            load_next(c, now);

    int guard = 0;
    const int guard_limit = 4 * 1000 * 1000;
    while (true) {
        // Idle survivors pick up orphaned work as it appears.
        for (std::size_t c = 0; c < cores && !orphans.empty(); ++c)
            if (state[c].alive && !state[c].active)
                load_next(c, now);

        // A core makes progress only when alive and out of repair.
        auto running = [&](const CoreState &cs) {
            return cs.active && cs.alive && now >= cs.pausedUntil;
        };

        unsigned mem_active = 0;
        bool any_running = false;
        bool any_pending = false;
        for (const CoreState &cs : state) {
            if (!cs.active)
                continue;
            any_pending = true;
            if (!running(cs))
                continue;
            any_running = true;
            if (cs.bytesLeft > 0)
                ++mem_active;
        }

        // Next external wake-up: fault events and repair completions.
        double wake = inf;
        for (std::size_t c = 0; c < cores; ++c) {
            const CoreState &cs = state[c];
            const auto &events = events_of(c);
            if (cs.alive && cs.eventIdx < events.size())
                wake = std::min(wake, events[cs.eventIdx].timeSec);
            if (cs.active && cs.alive && cs.pausedUntil > now)
                wake = std::min(wake, cs.pausedUntil);
        }

        if (!any_running) {
            if (!any_pending && orphans.empty())
                break; // all work drained; later events are moot
            if (wake == inf) {
                // Work remains but no core can ever run it again.
                result.completed = false;
                break;
            }
            now = wake;
            apply_events(now);
            if (++guard > guard_limit)
                panic("runChipSim: event-count guard tripped");
            continue;
        }

        const double rate =
            mem_active ? mem_bytes_per_sec / mem_active : 0;

        double dt = wake == inf ? inf : wake - now;
        for (const CoreState &cs : state) {
            if (!running(cs))
                continue;
            const double compute_dt = cs.computeLeft * cs.slowdown;
            double task_dt = 0;
            if (cs.bytesLeft > 0 && cs.computeLeft > 0)
                task_dt = std::min(compute_dt, cs.bytesLeft / rate);
            else if (cs.bytesLeft > 0)
                task_dt = cs.bytesLeft / rate;
            else
                task_dt = compute_dt;
            dt = std::min(dt, task_dt);
        }
        simAssert(dt >= 0 && dt < inf,
                  "chip sim event time must be finite");
        dt = std::max(dt, 1e-15); // numerical floor

        const double t0 = now; // running() must see the old time
        now += dt;
        for (std::size_t c = 0; c < cores; ++c) {
            CoreState &cs = state[c];
            if (!cs.active || !cs.alive || t0 < cs.pausedUntil)
                continue;
            if (cs.computeLeft > 0)
                cs.computeLeft =
                    std::max(0.0, cs.computeLeft - dt / cs.slowdown);
            if (cs.bytesLeft > 0) {
                const double moved = std::min(cs.bytesLeft, rate * dt);
                cs.bytesLeft -= moved;
                bytes_moved += moved;
            }
            if (cs.computeLeft <= 0 && cs.bytesLeft <= 0) {
                ++cs.next;
                load_next(c, now);
            }
        }
        apply_events(now);
        if (++guard > guard_limit)
            panic("runChipSim: event-count guard tripped");
    }

    result.makespan = now;
    result.coreFinish.reserve(cores);
    for (const CoreState &cs : state)
        result.coreFinish.push_back(cs.finish);
    result.avgMemUtilization =
        now > 0 ? bytes_moved / (mem_bytes_per_sec * now) : 0.0;
    return result;
}

} // namespace soc
} // namespace ascend
