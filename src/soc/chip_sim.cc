/**
 * @file
 * Fluid chip simulation implementation.
 */

#include "soc/chip_sim.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace ascend {
namespace soc {

ChipSimResult
runChipSim(const std::vector<std::vector<CoreTask>> &per_core,
           double mem_bytes_per_sec)
{
    simAssert(mem_bytes_per_sec > 0, "memory capacity must be positive");
    const std::size_t cores = per_core.size();

    struct CoreState
    {
        std::size_t next = 0;
        double computeLeft = 0;
        double bytesLeft = 0;
        bool active = false;
        double finish = 0;
    };
    std::vector<CoreState> state(cores);

    auto load_next = [&](std::size_t c, double now) {
        CoreState &cs = state[c];
        while (cs.next < per_core[c].size()) {
            const CoreTask &t = per_core[c][cs.next];
            cs.computeLeft = t.computeSeconds;
            cs.bytesLeft = double(t.memBytes);
            if (cs.computeLeft > 0 || cs.bytesLeft > 0) {
                cs.active = true;
                return;
            }
            ++cs.next; // zero task: completes instantly
        }
        cs.active = false;
        cs.finish = now;
    };

    double now = 0;
    double bytes_moved = 0;
    for (std::size_t c = 0; c < cores; ++c)
        load_next(c, now);

    int guard = 0;
    const int guard_limit = 4 * 1000 * 1000;
    while (true) {
        // Count memory-active tasks for the max-min share.
        unsigned mem_active = 0;
        bool any_active = false;
        for (const CoreState &cs : state) {
            if (!cs.active)
                continue;
            any_active = true;
            if (cs.bytesLeft > 0)
                ++mem_active;
        }
        if (!any_active)
            break;
        const double rate =
            mem_active ? mem_bytes_per_sec / mem_active : 0;

        // Time to the next completion event.
        double dt = std::numeric_limits<double>::infinity();
        for (const CoreState &cs : state) {
            if (!cs.active)
                continue;
            double task_dt = 0;
            if (cs.bytesLeft > 0 && cs.computeLeft > 0)
                task_dt = std::min(cs.computeLeft, cs.bytesLeft / rate);
            else if (cs.bytesLeft > 0)
                task_dt = cs.bytesLeft / rate;
            else
                task_dt = cs.computeLeft;
            dt = std::min(dt, task_dt);
        }
        simAssert(dt >= 0 && dt < std::numeric_limits<double>::infinity(),
                  "chip sim event time must be finite");
        dt = std::max(dt, 1e-15); // numerical floor

        now += dt;
        for (std::size_t c = 0; c < cores; ++c) {
            CoreState &cs = state[c];
            if (!cs.active)
                continue;
            if (cs.computeLeft > 0)
                cs.computeLeft = std::max(0.0, cs.computeLeft - dt);
            if (cs.bytesLeft > 0) {
                const double moved = std::min(cs.bytesLeft, rate * dt);
                cs.bytesLeft -= moved;
                bytes_moved += moved;
            }
            if (cs.computeLeft <= 0 && cs.bytesLeft <= 0) {
                ++cs.next;
                load_next(c, now);
            }
        }
        if (++guard > guard_limit)
            panic("runChipSim: event-count guard tripped");
    }

    ChipSimResult result;
    result.makespan = now;
    result.coreFinish.reserve(cores);
    for (const CoreState &cs : state)
        result.coreFinish.push_back(cs.finish);
    result.avgMemUtilization =
        now > 0 ? bytes_moved / (mem_bytes_per_sec * now) : 0.0;
    return result;
}

} // namespace soc
} // namespace ascend
