/**
 * @file
 * Fluid chip simulation implementation — a des::Kernel client.
 *
 * Each rate re-solve of the fluid model is one kernel event: the
 * handler counts memory-active tasks, solves the time to the next
 * completion, advances the kernel clock by that dt, advances per-core
 * state, and re-arms itself while work remains. The parallel pieces
 * run as kernel *phases* (fixed-grain slices over
 * runtime::parallelFor); the kernel grain is ASCEND_CHIPSIM_GRAIN.
 *
 * Determinism notes (the sweep benches diff output across thread
 * counts): every kernel phase below either reduces with exact
 * operations (min over doubles, integer counts) over slices whose
 * boundaries are thread-count independent, or writes core-local state
 * that a serial core-index-ordered pass then folds into the shared
 * accumulators. The arithmetic sequence is identical to a fully
 * serial run — and to the pre-kernel hand-rolled loop, which the
 * checked-in tests/golden/ outputs pin — so output is byte-identical
 * at any ASCEND_THREADS and any ASCEND_CHIPSIM_GRAIN.
 */

#include "soc/chip_sim.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <functional>
#include <limits>

#include "common/error.hh"
#include "common/logging.hh"
#include "des/kernel.hh"
#include "obs/tracer.hh"
#include "runtime/perf_stats.hh"
#include "runtime/sim_session.hh"

namespace ascend {
namespace soc {

namespace {

/** Slice count of a fixed-grain partition of [0, n). */
std::size_t
sliceCount(std::size_t n, std::size_t grain)
{
    grain = std::max<std::size_t>(grain, 1);
    return (n + grain - 1) / grain;
}

[[noreturn]] void
throwGuard(const char *which, int events, double now,
           std::size_t active_cores, std::size_t cores,
           std::uint64_t tasks_done, std::uint64_t tasks_total)
{
    throwError(ErrorCode::GuardExceeded,
               "runChipSim(%s): event-count guard exceeded after %d "
               "events at t=%.9g s: %zu/%zu cores active, "
               "%llu/%llu tasks done — likely a numerical livelock "
               "in the task set",
               which, events, now, active_cores, cores,
               static_cast<unsigned long long>(tasks_done),
               static_cast<unsigned long long>(tasks_total));
}

std::uint64_t
totalTasks(const std::vector<std::vector<CoreTask>> &per_core)
{
    std::uint64_t n = 0;
    for (const auto &q : per_core)
        n += q.size();
    return n;
}

/** Fluid sim time (seconds) to trace nanoseconds. */
std::uint64_t
traceNs(double seconds)
{
    return std::uint64_t(std::llround(seconds * 1e9));
}

/** One chip-sim kernel sized by the chip options. */
des::KernelOptions
kernelOptions(const ChipSimOptions &options)
{
    des::KernelOptions kopt;
    kopt.parallelGrain = options.parallelGrain;
    return kopt;
}

} // anonymous namespace

ChipSimOptions
ChipSimOptions::fromEnv()
{
    static const std::size_t grain = [] {
        const ChipSimOptions defaults;
        const char *env = std::getenv("ASCEND_CHIPSIM_GRAIN");
        if (env && *env) {
            char *end = nullptr;
            const long v = std::strtol(env, &end, 10);
            if (end && *end == '\0' && v > 0)
                return std::size_t(v);
            // Malformed values fall through to the built-in default.
        }
        return defaults.parallelGrain;
    }();
    ChipSimOptions options;
    options.parallelGrain = grain;
    return options;
}

ChipSimResult
runChipSim(const std::vector<std::vector<CoreTask>> &per_core,
           double mem_bytes_per_sec, const ChipSimOptions &options)
{
    static runtime::PerfScope &perf = runtime::perfScope("chip-sim");
    const runtime::PerfTimer timer(perf);

    simAssert(mem_bytes_per_sec > 0, "memory capacity must be positive");
    const std::size_t cores = per_core.size();

    struct CoreState
    {
        std::size_t next = 0;
        double computeLeft = 0;
        double bytesLeft = 0;
        double moved = 0; ///< bytes drained in the current event
        bool active = false;
        double taskStart = 0; ///< sim time the current task began
        double finish = 0;
    };
    std::vector<CoreState> state(cores);
    // Spans carry only sim-time fields, so recording from the
    // parallel advance below is safe: the tracer's merge step
    // restores a deterministic order.
    obs::Tracer *const tracer = obs::Tracer::current();

    auto load_next = [&](std::size_t c, double now) {
        CoreState &cs = state[c];
        while (cs.next < per_core[c].size()) {
            const CoreTask &t = per_core[c][cs.next];
            cs.computeLeft = t.computeSeconds;
            cs.bytesLeft = double(t.memBytes);
            if (cs.computeLeft > 0 || cs.bytesLeft > 0) {
                cs.active = true;
                cs.taskStart = now;
                return;
            }
            ++cs.next; // zero task: completes instantly
        }
        cs.active = false;
        cs.finish = now;
    };

    double now = 0;
    double bytes_moved = 0;
    for (std::size_t c = 0; c < cores; ++c)
        load_next(c, now);

    // Active-core index set, ascending: finished cores leave every
    // scan, so one event costs O(active cores), not O(all cores).
    std::vector<std::size_t> active;
    active.reserve(cores);
    for (std::size_t c = 0; c < cores; ++c)
        if (state[c].active)
            active.push_back(c);

    const std::size_t grain = options.parallelGrain;
    std::vector<unsigned> slice_mem(sliceCount(cores, grain));
    std::vector<double> slice_dt(slice_mem.size());

    des::Kernel kernel(kernelOptions(options));
    int guard = 0;

    // One rate re-solve per kernel event; the handler re-arms itself
    // while any core is still active.
    std::function<void(des::Kernel &)> resolve;
    resolve = [&](des::Kernel &k) {
        const std::size_t n = active.size();
        const std::size_t slices = sliceCount(n, grain);

        // Rate re-solve point 1/2: count memory-active tasks for the
        // max-min share (exact integer reduction).
        k.phase("chip.mem-count", n,
                [&](std::size_t b, std::size_t e, std::size_t s) {
                    unsigned mem = 0;
                    for (std::size_t i = b; i < e; ++i)
                        if (state[active[i]].bytesLeft > 0)
                            ++mem;
                    slice_mem[s] = mem;
                });
        unsigned mem_active = 0;
        for (std::size_t s = 0; s < slices; ++s)
            mem_active += slice_mem[s];
        const double rate =
            mem_active ? mem_bytes_per_sec / mem_active : 0;

        // Rate re-solve point 2/2: time to the next completion event
        // (exact min reduction).
        k.phase("chip.next-event", n,
                [&](std::size_t b, std::size_t e, std::size_t s) {
                    double best =
                        std::numeric_limits<double>::infinity();
                    for (std::size_t i = b; i < e; ++i) {
                        const CoreState &cs = state[active[i]];
                        double task_dt = 0;
                        if (cs.bytesLeft > 0 && cs.computeLeft > 0)
                            task_dt = std::min(cs.computeLeft,
                                               cs.bytesLeft / rate);
                        else if (cs.bytesLeft > 0)
                            task_dt = cs.bytesLeft / rate;
                        else
                            task_dt = cs.computeLeft;
                        best = std::min(best, task_dt);
                    }
                    slice_dt[s] = best;
                });
        double dt = std::numeric_limits<double>::infinity();
        for (std::size_t s = 0; s < slices; ++s)
            dt = std::min(dt, slice_dt[s]);
        simAssert(dt >= 0 && dt < std::numeric_limits<double>::infinity(),
                  "chip sim event time must be finite");
        dt = std::max(dt, 1e-15); // numerical floor

        now += dt;
        k.advanceTo(now);
        // Independent cores advance concurrently between re-solve
        // points; all writes are core-local (load_next only reads the
        // core's own queue).
        k.phase("chip.advance", n,
                [&](std::size_t b, std::size_t e, std::size_t) {
                    for (std::size_t i = b; i < e; ++i) {
                        const std::size_t c = active[i];
                        CoreState &cs = state[c];
                        cs.moved = 0;
                        if (cs.computeLeft > 0)
                            cs.computeLeft =
                                std::max(0.0, cs.computeLeft - dt);
                        if (cs.bytesLeft > 0) {
                            const double moved =
                                std::min(cs.bytesLeft, rate * dt);
                            cs.bytesLeft -= moved;
                            cs.moved = moved;
                        }
                        if (cs.computeLeft <= 0 && cs.bytesLeft <= 0) {
                            if (tracer) {
                                const std::uint64_t t0 =
                                    traceNs(cs.taskStart);
                                tracer->span(
                                    obs::Domain::Chip,
                                    std::uint32_t(c) + 1, "task",
                                    t0, traceNs(now) - t0,
                                    per_core[c][cs.next].memBytes);
                            }
                            ++cs.next;
                            load_next(c, now);
                        }
                    }
                });
        // Fold fluid byte accounting serially in core-index order —
        // floating-point addition is the one non-exact reduction, so
        // its sequence must not depend on scheduling.
        for (std::size_t i = 0; i < n; ++i)
            bytes_moved += state[active[i]].moved;
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [&](std::size_t c) {
                                        return !state[c].active;
                                    }),
                     active.end());

        if (++guard > options.guardLimit) {
            std::uint64_t done = 0;
            for (const CoreState &cs : state)
                done += cs.next;
            throwGuard("fault-free", guard, now, active.size(), cores,
                       done, totalTasks(per_core));
        }
        if (!active.empty())
            k.schedule(now, 0, "chip.resolve", resolve);
    };

    if (!active.empty())
        kernel.schedule(0, 0, "chip.resolve", resolve);
    kernel.run();

    ChipSimResult result;
    result.makespan = now;
    result.coreFinish.reserve(cores);
    for (const CoreState &cs : state)
        result.coreFinish.push_back(cs.finish);
    result.avgMemUtilization =
        now > 0 ? bytes_moved / (mem_bytes_per_sec * now) : 0.0;
    return result;
}

ChipSimResult
runChipSim(const std::vector<std::vector<CoreTask>> &per_core,
           double mem_bytes_per_sec,
           const resilience::ChipFaultPlan &plan,
           const ChipSimOptions &options)
{
    if (plan.empty()) // bit-for-bit identical to the fault-free path
        return runChipSim(per_core, mem_bytes_per_sec, options);

    static runtime::PerfScope &perf = runtime::perfScope("chip-sim");
    const runtime::PerfTimer timer(perf);

    simAssert(mem_bytes_per_sec > 0, "memory capacity must be positive");
    const std::size_t cores = per_core.size();
    const double inf = std::numeric_limits<double>::infinity();

    struct CoreState
    {
        std::size_t next = 0;       ///< index into own queue
        CoreTask current;           ///< full values, for restart
        double computeLeft = 0;
        double bytesLeft = 0;
        double moved = 0;           ///< bytes drained this event
        bool active = false;
        bool alive = true;
        bool reload = false;        ///< completed; refill after advance
        double pausedUntil = 0;     ///< transient repair window
        double slowdown = 1.0;      ///< straggler compute stretch
        std::size_t eventIdx = 0;   ///< next unapplied fault event
        double taskStart = 0;       ///< sim time the current task began
        double finish = 0;
    };
    std::vector<CoreState> state(cores);
    obs::Tracer *const tracer = obs::Tracer::current();
    for (std::size_t c = 0; c < cores; ++c)
        if (c < plan.stragglerFactor.size())
            state[c].slowdown =
                std::max(plan.stragglerFactor[c], 1.0);

    ChipSimResult result;
    std::deque<CoreTask> orphans; ///< work shed by dead cores

    auto start_task = [](CoreState &cs, const CoreTask &t) {
        cs.current = t;
        cs.computeLeft = t.computeSeconds;
        cs.bytesLeft = double(t.memBytes);
        cs.active = cs.computeLeft > 0 || cs.bytesLeft > 0;
        return cs.active;
    };

    // Advance cs to its next non-trivial task: own queue first, then
    // the orphan pool (lowest-index idle core pulls first since the
    // callers iterate cores in order).
    auto load_next = [&](std::size_t c, double now) {
        CoreState &cs = state[c];
        while (cs.next < per_core[c].size()) {
            if (start_task(cs, per_core[c][cs.next])) {
                cs.taskStart = now;
                return;
            }
            ++cs.next; // zero task: completes instantly
        }
        while (!orphans.empty()) {
            const CoreTask t = orphans.front();
            orphans.pop_front();
            ++result.reDispatchedTasks;
            if (start_task(cs, t)) {
                cs.taskStart = now;
                return;
            }
        }
        cs.active = false;
        cs.finish = now;
    };

    auto events_of = [&](std::size_t c)
        -> const std::vector<resilience::FaultEvent> & {
        static const std::vector<resilience::FaultEvent> none;
        return c < plan.coreEvents.size() ? plan.coreEvents[c] : none;
    };

    // Apply every fault event due at or before @p now.
    auto apply_events = [&](double now) {
        for (std::size_t c = 0; c < cores; ++c) {
            CoreState &cs = state[c];
            const auto &events = events_of(c);
            while (cs.eventIdx < events.size() &&
                   events[cs.eventIdx].timeSec <= now) {
                const resilience::FaultEvent &e = events[cs.eventIdx];
                ++cs.eventIdx;
                if (!cs.alive)
                    continue;
                ++result.coreFailures;
                if (e.kind == resilience::FaultKind::CorePermanent) {
                    cs.alive = false;
                    cs.finish = e.timeSec;
                    if (cs.active) // shed in-flight task, restarted
                        orphans.push_back(cs.current);
                    for (std::size_t i = cs.next + (cs.active ? 1 : 0);
                         i < per_core[c].size(); ++i)
                        orphans.push_back(per_core[c][i]);
                    cs.next = per_core[c].size();
                    cs.active = false;
                } else { // transient: pause and restart from scratch
                    cs.pausedUntil = std::max(
                        cs.pausedUntil, e.timeSec + e.durationSec);
                    if (cs.active) {
                        cs.computeLeft = cs.current.computeSeconds;
                        cs.bytesLeft = double(cs.current.memBytes);
                    }
                }
            }
        }
    };

    double now = 0;
    double bytes_moved = 0;
    apply_events(now);
    for (std::size_t c = 0; c < cores; ++c)
        if (state[c].alive)
            load_next(c, now);

    const std::size_t grain = options.parallelGrain;

    des::Kernel kernel(kernelOptions(options));
    int guard = 0;

    // One degraded-mode re-solve per kernel event. The handler either
    // advances the fluid state by one completion interval, or — when
    // nothing can run — jumps the clock to the next external wake-up
    // (fault strike or repair completion). It re-arms itself until
    // the work drains or no survivor can ever run again.
    std::function<void(des::Kernel &)> resolve;
    resolve = [&](des::Kernel &k) {
        // Idle survivors pick up orphaned work as it appears.
        for (std::size_t c = 0; c < cores && !orphans.empty(); ++c)
            if (state[c].alive && !state[c].active)
                load_next(c, now);

        // A core makes progress only when alive and out of repair.
        auto running = [&](const CoreState &cs) {
            return cs.active && cs.alive && now >= cs.pausedUntil;
        };

        unsigned mem_active = 0;
        bool any_running = false;
        bool any_pending = false;
        for (const CoreState &cs : state) {
            if (!cs.active)
                continue;
            any_pending = true;
            if (!running(cs))
                continue;
            any_running = true;
            if (cs.bytesLeft > 0)
                ++mem_active;
        }

        // Next external wake-up: fault events and repair completions.
        double wake = inf;
        for (std::size_t c = 0; c < cores; ++c) {
            const CoreState &cs = state[c];
            const auto &events = events_of(c);
            if (cs.alive && cs.eventIdx < events.size())
                wake = std::min(wake, events[cs.eventIdx].timeSec);
            if (cs.active && cs.alive && cs.pausedUntil > now)
                wake = std::min(wake, cs.pausedUntil);
        }

        if (!any_running) {
            if (!any_pending && orphans.empty())
                return; // all work drained; later events are moot
            if (wake == inf) {
                // Work remains but no core can ever run it again.
                result.completed = false;
                return;
            }
            now = wake;
            k.advanceTo(now);
            apply_events(now);
            if (++guard > options.guardLimit) {
                std::uint64_t done = 0;
                for (const CoreState &cs : state)
                    done += cs.next;
                throwGuard("degraded", guard, now, cores, cores, done,
                           totalTasks(per_core));
            }
            k.schedule(now, 0, "chip.wake", resolve);
            return;
        }

        const double rate =
            mem_active ? mem_bytes_per_sec / mem_active : 0;

        double dt = wake == inf ? inf : wake - now;
        for (const CoreState &cs : state) {
            if (!running(cs))
                continue;
            const double compute_dt = cs.computeLeft * cs.slowdown;
            double task_dt = 0;
            if (cs.bytesLeft > 0 && cs.computeLeft > 0)
                task_dt = std::min(compute_dt, cs.bytesLeft / rate);
            else if (cs.bytesLeft > 0)
                task_dt = cs.bytesLeft / rate;
            else
                task_dt = compute_dt;
            dt = std::min(dt, task_dt);
        }
        simAssert(dt >= 0 && dt < inf,
                  "chip sim event time must be finite");
        dt = std::max(dt, 1e-15); // numerical floor

        const double t0 = now; // running() must see the old time
        now += dt;
        k.advanceTo(now);
        // Parallel advance between re-solve points: all writes are
        // core-local; completed cores defer their queue/orphan refill
        // to the serial index-ordered pass below, so the shared
        // orphan deque is popped in the same deterministic order as a
        // serial run (lowest-index core first).
        k.phase("chip.advance", cores,
                [&](std::size_t b, std::size_t e, std::size_t) {
                    for (std::size_t c = b; c < e; ++c) {
                        CoreState &cs = state[c];
                        cs.moved = 0;
                        if (!cs.active || !cs.alive ||
                            t0 < cs.pausedUntil)
                            continue;
                        if (cs.computeLeft > 0)
                            cs.computeLeft = std::max(
                                0.0,
                                cs.computeLeft - dt / cs.slowdown);
                        if (cs.bytesLeft > 0) {
                            const double moved =
                                std::min(cs.bytesLeft, rate * dt);
                            cs.bytesLeft -= moved;
                            cs.moved = moved;
                        }
                        if (cs.computeLeft <= 0 && cs.bytesLeft <= 0)
                            cs.reload = true;
                    }
                });
        for (std::size_t c = 0; c < cores; ++c) {
            CoreState &cs = state[c];
            bytes_moved += cs.moved;
            if (cs.reload) {
                cs.reload = false;
                if (tracer) {
                    // The span covers the whole residency including
                    // repair pauses and restarts, matching what a
                    // wall-observer of the degraded chip would see.
                    const std::uint64_t t0 = traceNs(cs.taskStart);
                    tracer->span(obs::Domain::Chip,
                                 std::uint32_t(c) + 1, "task", t0,
                                 traceNs(now) - t0,
                                 cs.current.memBytes);
                }
                ++cs.next;
                load_next(c, now);
            }
        }
        apply_events(now);
        if (++guard > options.guardLimit) {
            std::uint64_t done = 0;
            for (const CoreState &cs : state)
                done += cs.next;
            std::size_t live_active = 0;
            for (const CoreState &cs : state)
                if (cs.active)
                    ++live_active;
            throwGuard("degraded", guard, now, live_active, cores, done,
                       totalTasks(per_core));
        }
        k.schedule(now, 0, "chip.resolve", resolve);
    };

    kernel.schedule(0, 0, "chip.resolve", resolve);
    kernel.run();

    result.makespan = now;
    result.coreFinish.reserve(cores);
    for (const CoreState &cs : state)
        result.coreFinish.push_back(cs.finish);
    result.avgMemUtilization =
        now > 0 ? bytes_moved / (mem_bytes_per_sec * now) : 0.0;
    return result;
}

double
chipStepSeconds(const std::vector<std::vector<CoreTask>> &per_core,
                double mem_bytes_per_sec,
                const resilience::ChipFaultPlan &plan)
{
    return runChipSim(per_core, mem_bytes_per_sec, plan).makespan;
}

std::vector<CoreTask>
coreTasks(const runtime::SimSession &session, const model::Network &net)
{
    const double clk_hz = session.config().clockGhz * 1e9;
    std::vector<CoreTask> tasks;
    tasks.reserve(net.layers.size());
    for (const auto &run : session.runInference(net)) {
        CoreTask t;
        t.computeSeconds = double(run.result.totalCycles) / clk_hz;
        t.memBytes = run.result.extBytes();
        tasks.push_back(t);
    }
    return tasks;
}

} // namespace soc
} // namespace ascend
