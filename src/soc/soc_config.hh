/**
 * @file
 * SoC-level configurations for the three designs of Section 3:
 * the DNN training SoC (Ascend 910), the mobile SoC (Kirin 990 5G),
 * and the autonomous-driving SoC (Ascend 610). Numbers are the
 * published ones (Tables 5-9, Sections 3.1-3.3).
 */

#ifndef ASCEND_SOC_SOC_CONFIG_HH
#define ASCEND_SOC_SOC_CONFIG_HH

#include <string>

#include "arch/core_config.hh"
#include "memory/dram.hh"
#include "noc/mesh.hh"

namespace ascend {
namespace soc {

/** Ascend 910 training SoC (Section 3.1). */
struct TrainingSocConfig
{
    std::string name = "ascend-910";
    unsigned aiCores = 32;
    arch::CoreVersion coreVersion = arch::CoreVersion::Max;
    unsigned cpuCores = 16;
    Bytes llcCapacity = 96 * kMiB;       ///< on-die AI LLC ("L2")
    double llcBandwidth = 4e12;          ///< 4 TB/s aggregate to L2
    memory::DramConfig hbm = memory::hbm2Ascend910();
    noc::MeshConfig mesh{6, 4, 128, 2.0, true, 64};
    double tdpWatts = 300;
    /** Task-scheduler dispatch overhead per layer task (Section 5.2). */
    double taskOverheadSec = 30e-6;
    double computeDieMm2 = 456;
    double ioDieMm2 = 168;
    unsigned videoDecodeChannels = 128;
};

/** Kirin 990 5G mobile SoC (Section 3.2). */
struct MobileSocConfig
{
    std::string name = "kirin-990-5g";
    unsigned liteCores = 2;
    unsigned tinyCores = 1;
    memory::DramConfig dram = memory::lpddr4xMobile();
    /** Uncore (NoC + DDR PHY share) power added to core power. */
    double uncoreWatts = 0.15;
    /** Framework / driver dispatch overhead per operator. */
    double opOverheadSec = 18e-6;
    double tinyTypicalWatts = 0.3; ///< paper: ~300 mW always-on budget
    double npuAreaMm2 = 4.0;       ///< Table 8
};

/** Ascend 610 automotive SoC (Section 3.3). */
struct AutoSocConfig
{
    std::string name = "ascend-610";
    unsigned aiCores = 10;
    arch::CoreVersion coreVersion = arch::CoreVersion::Std;
    unsigned vectorCores = 2;   ///< cube-less cores for SLAM tasks
    Bytes llcCapacity = 32 * kMiB;
    double llcBandwidth = 1.1e12;
    memory::DramConfig dram = memory::ddrAutomotive();
    double dvppFrameSeconds = 0.8e-3; ///< per-frame pre-processing
    double tdpWatts = 65;
    double dieMm2 = 401;
};

} // namespace soc
} // namespace ascend

#endif // ASCEND_SOC_SOC_CONFIG_HH
