/**
 * @file
 * Ascend 910 training SoC model (Section 3.1).
 *
 * Composition: 32 Ascend-Max cores, an on-die AI LLC, and an HBM
 * subsystem. A training step runs data-parallel: every core executes
 * the same per-core program on its batch slice (timed by the
 * cycle-level core simulator), while the chip-level memory system is
 * replayed at tensor granularity through the set-associative LLC
 * model: forward writes activations that backward re-reads, weights
 * are shared, and whatever misses the LLC pays HBM bandwidth.
 *
 * Per-layer wall time is the max of the three rooflines:
 * core compute, LLC bandwidth, and HBM bandwidth. This is the model
 * behind Table 7's throughput rows and the Section 4.1 LLC-capacity
 * study (96 MB -> 720 MB).
 */

#ifndef ASCEND_SOC_TRAINING_SOC_HH
#define ASCEND_SOC_TRAINING_SOC_HH

#include "memory/llc.hh"
#include "model/network.hh"
#include "resilience/fault_schedule.hh"
#include "runtime/sim_session.hh"
#include "soc/chip_sim.hh"
#include "soc/soc_config.hh"

namespace ascend {
namespace soc {

/** Outcome of one training step (or inference batch) on the SoC. */
struct SocStepResult
{
    double seconds = 0;         ///< wall time of the step
    double computeSeconds = 0;  ///< sum of compute-bound layer time
    double llcBoundSeconds = 0; ///< sum of LLC-bandwidth-bound time
    double hbmBoundSeconds = 0; ///< sum of HBM-bandwidth-bound time
    Bytes llcTrafficBytes = 0;  ///< total bytes offered to the LLC
    Bytes hbmTrafficBytes = 0;  ///< bytes that missed to HBM
    Flops flops = 0;

    double
    llcHitRate() const
    {
        return llcTrafficBytes
            ? 1.0 - double(hbmTrafficBytes) / double(llcTrafficBytes)
            : 0.0;
    }

    double achievedFlops() const { return seconds ? flops / seconds : 0; }
};

/**
 * The SoC model.
 */
class TrainingSoc
{
  public:
    explicit TrainingSoc(TrainingSocConfig config = {});

    /**
     * One data-parallel training step. @p per_core_net must be built
     * at the per-core batch; the global batch is aiCores times that,
     * and the memory replay scales activation footprints accordingly.
     */
    SocStepResult
    trainStep(const model::Network &per_core_net,
              model::OptimizerKind opt =
                  model::OptimizerKind::Sgd) const;

    /** One data-parallel inference batch (forward only). */
    SocStepResult inferStep(const model::Network &per_core_net) const;

    /**
     * Contention-aware counterpart of inferStep: every core runs
     * @p per_core_net's layer queue through the fluid chip simulator
     * while all cores share the LLC bandwidth, so stragglers and
     * bandwidth interference are captured instead of assumed away by
     * the lockstep roofline.
     */
    ChipSimResult
    fluidInferStep(const model::Network &per_core_net) const;

    /** Degraded-mode variant: same fluid step under a fault plan. */
    ChipSimResult
    fluidInferStep(const model::Network &per_core_net,
                   const resilience::ChipFaultPlan &plan) const;

    /** Per-core fluid task queue of @p net on this SoC's core. */
    std::vector<CoreTask> coreTasks(const model::Network &net) const;

    /** Peak fp16 throughput: 32 x 8192 FLOPs/cycle at 1 GHz. */
    double peakFlopsFp16() const;

    /** Peak int8 throughput (doubled reduction dimension). */
    double peakOpsInt8() const;

    const TrainingSocConfig &config() const { return config_; }
    const arch::CoreConfig &coreConfig() const { return coreConfig_; }

  private:
    SocStepResult runStep(const model::Network &net, bool training,
                          model::OptimizerKind opt) const;

    TrainingSocConfig config_;
    arch::CoreConfig coreConfig_;
    runtime::SimSession session_;
};

} // namespace soc
} // namespace ascend

#endif // ASCEND_SOC_TRAINING_SOC_HH
