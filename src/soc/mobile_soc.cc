/**
 * @file
 * Mobile SoC implementation.
 */

#include "soc/mobile_soc.hh"

#include <algorithm>

#include "arch/unit_model.hh"

namespace ascend {
namespace soc {

MobileSoc::MobileSoc(MobileSocConfig config)
    : config_(std::move(config)),
      lite_(arch::makeCoreConfig(arch::CoreVersion::Lite)),
      tiny_(arch::makeCoreConfig(arch::CoreVersion::Tiny)),
      liteSession_(lite_),
      tinySession_(tiny_)
{
}

double
MobileSoc::peakOpsInt8() const
{
    const double lite_ops =
        double(lite_.cubeShapeFor(DataType::Int8).flopsPerCycle()) *
        lite_.clockGhz * 1e9;
    const double tiny_ops =
        double(tiny_.cubeShapeFor(DataType::Int8).flopsPerCycle()) *
        tiny_.clockGhz * 1e9;
    return config_.liteCores * lite_ops + config_.tinyCores * tiny_ops;
}

double
MobileSoc::npuPowerWatts() const
{
    using arch::TechNode;
    // Cube power at peak from the calibrated energy model, plus the
    // matched vector units and the uncore (NoC, DDR PHY share).
    const auto lite_cube =
        arch::modelCube(lite_.cube, lite_.clockGhz, TechNode::N7);
    const auto lite_vec = arch::modelVector(lite_.vectorWidthBytes,
                                            lite_.clockGhz, TechNode::N7);
    const double lite_w = lite_cube.powerW + 0.3 * lite_vec.powerW;
    // The Tiny core's always-on domain is independently powered and
    // idle during peak-NPU benchmarking, so it does not contribute.
    return config_.liteCores * lite_w + config_.uncoreWatts;
}

double
MobileSoc::npuAreaMm2() const
{
    using arch::TechNode;
    return config_.liteCores * arch::modelCoreAreaMm2(lite_, TechNode::N7) +
           config_.tinyCores * arch::modelCoreAreaMm2(tiny_, TechNode::N7);
}

double
MobileSoc::coreLatencySeconds(const runtime::SimSession &session,
                              const model::Network &net) const
{
    const arch::CoreConfig &core = session.config();
    core::SimResult total;
    std::size_t ops = 0;
    // Per-layer simulation plus the framework's per-operator dispatch
    // overhead (NNAPI/driver path).
    for (const auto &run : session.runInference(net)) {
        total.accumulate(run.result);
        ++ops;
    }
    const double compute_sec = total.seconds(core.clockGhz) +
                               double(ops) * config_.opOverheadSec;
    // Off-chip traffic is bounded by the shared LPDDR interface.
    const double mem_sec = double(total.extBytes()) /
                           config_.dram.bandwidthBytesPerSec;
    return std::max(compute_sec, mem_sec);
}

double
MobileSoc::liteLatencySeconds(const model::Network &net) const
{
    return coreLatencySeconds(liteSession_, net);
}

double
MobileSoc::tinyLatencySeconds(const model::Network &net) const
{
    return coreLatencySeconds(tinySession_, net);
}

double
MobileSoc::bigLittleMakespan(const model::Network &big,
                             const model::Network &little) const
{
    // Batch split over the Lite cores is layer-wise data parallelism;
    // with two identical cores the big job halves (minus one core's
    // worth of indivisible remainder, negligible at these sizes).
    const double big_sec =
        liteLatencySeconds(big) / std::max(1u, config_.liteCores);
    const double little_sec = tinyLatencySeconds(little);
    return std::max(big_sec, little_sec);
}

ChipSimResult
MobileSoc::fluidBigLittleMakespan(const model::Network &big,
                                  const model::Network &little) const
{
    const unsigned lite_cores = std::max(1u, config_.liteCores);
    // Each Lite core runs its batch share of every layer (layer-wise
    // data parallelism, as in bigLittleMakespan); the per-operator
    // dispatch overhead is paid per core and is not sliced.
    std::vector<CoreTask> lite_tasks;
    for (const auto &run : liteSession_.runInference(big)) {
        CoreTask t;
        t.computeSeconds =
            run.result.seconds(lite_.clockGhz) / lite_cores +
            config_.opOverheadSec;
        t.memBytes = run.result.extBytes() / lite_cores;
        lite_tasks.push_back(t);
    }
    std::vector<CoreTask> tiny_tasks;
    for (const auto &run : tinySession_.runInference(little)) {
        CoreTask t;
        t.computeSeconds = run.result.seconds(tiny_.clockGhz) +
                           config_.opOverheadSec;
        t.memBytes = run.result.extBytes();
        tiny_tasks.push_back(t);
    }
    std::vector<std::vector<CoreTask>> per_core(lite_cores,
                                                lite_tasks);
    per_core.push_back(std::move(tiny_tasks));
    return runChipSim(per_core, config_.dram.bandwidthBytesPerSec);
}

} // namespace soc
} // namespace ascend
