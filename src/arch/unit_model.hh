/**
 * @file
 * Analytical performance / power / area model of the computing units.
 *
 * The paper reports measured silicon numbers (Table 3 at 7 nm, Table 4
 * at 12 nm). We cannot measure silicon, so this module provides a
 * first-order analytical model:
 *
 *   cube area  = macArea * (m*k*n) + portArea * (m*k + k*n + m*n) + fixed
 *   energy/op  = eMac + eFeed / operandReuse
 *
 * where operandReuse is n for an m x k x n cube (each A operand is
 * reused n times once latched) and 1 for a vector lane. The constants
 * per technology node are calibrated once against the published
 * numbers (see unit_model.cc) and then reused unchanged for every
 * derived metric, so cross-table consistency (Table 3 ratios, Table 4
 * density advantage, SoC-level perf/W) is a property of the model, not
 * of per-table fitting.
 */

#ifndef ASCEND_ARCH_UNIT_MODEL_HH
#define ASCEND_ARCH_UNIT_MODEL_HH

#include "arch/core_config.hh"

namespace ascend {
namespace arch {

/** Silicon technology nodes used in the paper's tables. */
enum class TechNode { N7, N12 };

const char *toString(TechNode node);

/** Calibrated constants for one technology node. */
struct TechParams
{
    double macAreaMm2;   ///< area of one fp16 MAC (multiplier+accumulator)
    double portAreaMm2;  ///< area per operand latch / port element
    double fixedAreaMm2; ///< per-cube sequencing / control overhead
    double laneAreaMm2;  ///< area of one fp16 vector lane (RF + ALU)
    double scalarAreaMm2;///< area of the scalar unit
    double eMacPj;       ///< energy per FLOP in the MAC array (pJ)
    double eFeedPj;      ///< energy per operand fetch per FLOP (pJ)
};

/** Constants for @p node, calibrated against Tables 3 and 4. */
const TechParams &techParams(TechNode node);

/** PPA summary of one unit instance. */
struct UnitPpa
{
    double peakFlops;  ///< ops per second
    double areaMm2;
    double powerW;     ///< 0 when not modelled (scalar)

    double perfPerWatt() const { return powerW > 0 ? peakFlops / powerW : 0; }
    double perfPerArea() const { return peakFlops / areaMm2; }
};

/** Model a cube unit of shape @p shape clocked at @p clock_ghz. */
UnitPpa modelCube(const CubeShape &shape, double clock_ghz, TechNode node);

/** Model a vector unit of @p width_bytes datapath at @p clock_ghz. */
UnitPpa modelVector(Bytes width_bytes, double clock_ghz, TechNode node);

/** Model the scalar unit at @p clock_ghz. */
UnitPpa modelScalar(double clock_ghz, TechNode node);

/**
 * Area of a complete core (cube + vector + scalar + buffers), used by
 * the SoC-level tables. Buffer area uses a flat SRAM density.
 */
double modelCoreAreaMm2(const CoreConfig &config, TechNode node);

/** SRAM density assumed for buffer area, mm^2 per MiB. */
double sramMm2PerMiB(TechNode node);

} // namespace arch
} // namespace ascend

#endif // ASCEND_ARCH_UNIT_MODEL_HH
