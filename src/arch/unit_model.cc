/**
 * @file
 * Calibration constants and model evaluation.
 *
 * Calibration (done once, documented here, never re-fit per table):
 *
 *  N7 (Table 3): a 16x16x16 cube measures 2.57 mm^2 / 3.13 W at
 *  8 TFLOPS and a 256 B vector unit 0.70 mm^2 / 0.46 W at 256 GFLOPS.
 *  Solving the energy model eMac + eFeed/reuse with reuse 16 (cube)
 *  and 1 (vector) gives eMac = 0.296 pJ/FLOP, eFeed = 1.504 pJ/FLOP.
 *
 *  N12 (Table 4): a 16x16x16 cube core measures 13.2 mm^2 and eight
 *  4x4x4 cubes measure 5.2 mm^2 total. With a per-cube fixed cost of
 *  0.3 mm^2, solving the two area equations gives macArea =
 *  2.376e-3 mm^2 and portArea = 4.12e-3 mm^2.
 */

#include "arch/unit_model.hh"

#include "common/logging.hh"

namespace ascend {
namespace arch {

const char *
toString(TechNode node)
{
    switch (node) {
      case TechNode::N7:  return "7nm";
      case TechNode::N12: return "12nm";
    }
    return "?";
}

const TechParams &
techParams(TechNode node)
{
    static const TechParams n7{
        /*macAreaMm2=*/4.5e-4,
        /*portAreaMm2=*/8.16e-4,
        /*fixedAreaMm2=*/0.10,
        /*laneAreaMm2=*/5.47e-3,
        /*scalarAreaMm2=*/0.04,
        /*eMacPj=*/0.296,
        /*eFeedPj=*/1.504,
    };
    static const TechParams n12{
        /*macAreaMm2=*/2.376e-3,
        /*portAreaMm2=*/4.12e-3,
        /*fixedAreaMm2=*/0.30,
        /*laneAreaMm2=*/2.7e-2,
        /*scalarAreaMm2=*/0.20,
        /*eMacPj=*/0.53,
        /*eFeedPj=*/2.70,
    };
    switch (node) {
      case TechNode::N7:  return n7;
      case TechNode::N12: return n12;
    }
    panic("techParams: bad node");
}

UnitPpa
modelCube(const CubeShape &shape, double clock_ghz, TechNode node)
{
    const TechParams &tp = techParams(node);
    const double macs = static_cast<double>(shape.macsPerCycle());
    const double ports = double(shape.m0) * shape.k0 +
                         double(shape.k0) * shape.n0 +
                         double(shape.m0) * shape.n0;
    UnitPpa ppa;
    ppa.peakFlops = 2.0 * macs * clock_ghz * 1e9;
    ppa.areaMm2 = tp.macAreaMm2 * macs + tp.portAreaMm2 * ports +
                  tp.fixedAreaMm2;
    // Each latched operand row is reused n0 times before it is
    // replaced, so the per-op feed energy is divided by n0.
    const double reuse = shape.n0;
    const double pj_per_flop = tp.eMacPj + tp.eFeedPj / reuse;
    ppa.powerW = ppa.peakFlops * pj_per_flop * 1e-12;
    return ppa;
}

UnitPpa
modelVector(Bytes width_bytes, double clock_ghz, TechNode node)
{
    const TechParams &tp = techParams(node);
    const double lanes = static_cast<double>(width_bytes) / 2; // fp16
    UnitPpa ppa;
    ppa.peakFlops = 2.0 * lanes * clock_ghz * 1e9;
    ppa.areaMm2 = tp.laneAreaMm2 * lanes;
    // A vector lane re-fetches both operands every op: reuse factor 1.
    const double pj_per_flop = tp.eMacPj + tp.eFeedPj;
    ppa.powerW = ppa.peakFlops * pj_per_flop * 1e-12;
    return ppa;
}

UnitPpa
modelScalar(double clock_ghz, TechNode node)
{
    const TechParams &tp = techParams(node);
    UnitPpa ppa;
    ppa.peakFlops = 2.0 * clock_ghz * 1e9;
    ppa.areaMm2 = tp.scalarAreaMm2;
    ppa.powerW = 0.0; // not disclosed in the paper; left unmodelled
    return ppa;
}

double
sramMm2PerMiB(TechNode node)
{
    switch (node) {
      case TechNode::N7:  return 0.6;
      case TechNode::N12: return 1.2;
    }
    panic("sramMm2PerMiB: bad node");
}

double
modelCoreAreaMm2(const CoreConfig &config, TechNode node)
{
    const double buffers_mib =
        static_cast<double>(config.l0aBytes + config.l0bBytes +
                            config.l0cBytes + config.l1Bytes +
                            config.ubBytes) / kMiB;
    return modelCube(config.cube, config.clockGhz, node).areaMm2 +
           modelVector(config.vectorWidthBytes, config.clockGhz,
                       node).areaMm2 +
           modelScalar(config.clockGhz, node).areaMm2 +
           buffers_mib * sramMm2PerMiB(node);
}

} // namespace arch
} // namespace ascend
