/**
 * @file
 * Config serialization implementation.
 */

#include "arch/config_io.hh"

#include <cmath>
#include <functional>
#include <map>
#include <ostream>
#include <sstream>

#include "common/error.hh"

namespace ascend {
namespace arch {

namespace {

/** Field registry: one row per serialized knob. */
struct Field
{
    const char *key;
    std::function<std::string(const CoreConfig &)> get;
    std::function<void(CoreConfig &, const std::string &)> set;
};

std::uint64_t
parseU64(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t v = std::stoull(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        throwError(ErrorCode::ConfigParse,
                   "config: bad integer '%s' for key %s", value.c_str(),
                   key.c_str());
    }
}

double
parseDouble(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(value, &pos);
        if (pos != value.size() || !std::isfinite(v))
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        throwError(ErrorCode::ConfigParse,
                   "config: bad number '%s' for key %s", value.c_str(),
                   key.c_str());
    }
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "true" || value == "1")
        return true;
    if (value == "false" || value == "0")
        return false;
    throwError(ErrorCode::ConfigParse,
               "config: bad bool '%s' for key %s", value.c_str(),
               key.c_str());
}

const std::vector<Field> &
fields()
{
    auto u64_field = [](const char *key, Bytes CoreConfig::*member) {
        return Field{
            key,
            [member](const CoreConfig &c) {
                return std::to_string(c.*member);
            },
            [member, key](CoreConfig &c, const std::string &v) {
                c.*member = parseU64(key, v);
            }};
    };
    auto bool_field = [](const char *key, bool CoreConfig::*member) {
        return Field{
            key,
            [member](const CoreConfig &c) {
                return std::string(c.*member ? "true" : "false");
            },
            [member, key](CoreConfig &c, const std::string &v) {
                c.*member = parseBool(key, v);
            }};
    };
    auto dim_field = [](const char *key, unsigned CubeShape::*member) {
        return Field{
            key,
            [member](const CoreConfig &c) {
                return std::to_string(c.cube.*member);
            },
            [member, key](CoreConfig &c, const std::string &v) {
                c.cube.*member =
                    static_cast<unsigned>(parseU64(key, v));
            }};
    };
    static const std::vector<Field> table = {
        {"name", [](const CoreConfig &c) { return c.name; },
         [](CoreConfig &c, const std::string &v) { c.name = v; }},
        {"clock_ghz",
         [](const CoreConfig &c) { return std::to_string(c.clockGhz); },
         [](CoreConfig &c, const std::string &v) {
             c.clockGhz = parseDouble("clock_ghz", v);
         }},
        dim_field("cube_m0", &CubeShape::m0),
        dim_field("cube_k0", &CubeShape::k0),
        dim_field("cube_n0", &CubeShape::n0),
        bool_field("supports_fp16", &CoreConfig::supportsFp16),
        bool_field("supports_int8", &CoreConfig::supportsInt8),
        bool_field("supports_int4", &CoreConfig::supportsInt4),
        bool_field("supports_fp32_cube", &CoreConfig::supportsFp32Cube),
        u64_field("vector_width_bytes", &CoreConfig::vectorWidthBytes),
        u64_field("bus_a_bytes_per_cycle",
                  &CoreConfig::busABytesPerCycle),
        u64_field("bus_b_bytes_per_cycle",
                  &CoreConfig::busBBytesPerCycle),
        u64_field("bus_ub_bytes_per_cycle",
                  &CoreConfig::busUbBytesPerCycle),
        u64_field("bus_ext_bytes_per_cycle",
                  &CoreConfig::busExtBytesPerCycle),
        u64_field("l0a_bytes", &CoreConfig::l0aBytes),
        u64_field("l0b_bytes", &CoreConfig::l0bBytes),
        u64_field("l0c_bytes", &CoreConfig::l0cBytes),
        u64_field("l1_bytes", &CoreConfig::l1Bytes),
        u64_field("ub_bytes", &CoreConfig::ubBytes),
    };
    return table;
}

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    const auto end = s.find_last_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    return s.substr(begin, end - begin + 1);
}

} // anonymous namespace

void
writeConfig(const CoreConfig &config, std::ostream &os)
{
    os << "# ascend-sim core configuration\n";
    for (const Field &f : fields())
        os << f.key << " = " << f.get(config) << "\n";
}

std::string
configToString(const CoreConfig &config)
{
    std::ostringstream os;
    writeConfig(config, os);
    return os.str();
}

CoreConfig
readConfig(std::istream &is, const CoreConfig &base)
{
    CoreConfig config = base;
    std::map<std::string, const Field *> by_key;
    for (const Field &f : fields())
        by_key[f.key] = &f;

    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        const std::string body = trim(line);
        if (body.empty())
            continue;
        const auto eq = body.find('=');
        if (eq == std::string::npos)
            throwError(ErrorCode::ConfigParse,
                       "config line %d: expected 'key = value', got "
                       "'%s'", line_no, body.c_str());
        const std::string key = trim(body.substr(0, eq));
        const std::string value = trim(body.substr(eq + 1));
        const auto it = by_key.find(key);
        if (it == by_key.end())
            throwError(ErrorCode::ConfigParse,
                       "config line %d: unknown key '%s'", line_no,
                       key.c_str());
        it->second->set(config, value);
    }
    config.validate();
    return config;
}

CoreConfig
configFromString(const std::string &text, const CoreConfig &base)
{
    std::istringstream is(text);
    return readConfig(is, base);
}

} // namespace arch
} // namespace ascend
