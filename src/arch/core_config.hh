/**
 * @file
 * Core configuration: the architecture parameters of one Ascend core.
 *
 * The five presets correspond to the design points of paper Table 5
 * (Ascend-Max / Ascend / Ascend-Mini at 1 GHz with a 16x16x16 cube and
 * 256 B vector; Ascend-Lite at 0.75 GHz with a 4x16x16 cube and 128 B
 * vector; Ascend-Tiny at 0.75 GHz with a 4x32x4 int8 cube and 32 B
 * vector) plus the bus widths derived from the published bandwidths.
 */

#ifndef ASCEND_ARCH_CORE_CONFIG_HH
#define ASCEND_ARCH_CORE_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace ascend {
namespace arch {

/** Shape of the cube unit's native fractal (one m0 x k0 x n0 GEMM/cycle). */
struct CubeShape
{
    unsigned m0 = 16;
    unsigned k0 = 16;
    unsigned n0 = 16;

    /** MACs performed per cycle. */
    std::uint64_t macsPerCycle() const
    {
        return std::uint64_t(m0) * k0 * n0;
    }

    /** FLOPs (or int OPs) per cycle: one MAC = 2 ops. */
    std::uint64_t flopsPerCycle() const { return 2 * macsPerCycle(); }
};

/** Identifier for the published design points. */
enum class CoreVersion {
    Tiny,   ///< IoT / always-on sensing (int8 only)
    Lite,   ///< IP cameras and smartphones
    Mini,   ///< drones, robots, embedded AI
    Std,    ///< "Ascend": autonomous driving / cloud inference / training
    Max,    ///< high-performance training
};

const char *toString(CoreVersion v);

/**
 * Full parameter set of one core.
 *
 * Bus widths are in bytes per cycle; multiply by clockGhz for GB/s and
 * compare against Table 5.
 */
struct CoreConfig
{
    std::string name = "ascend-max";
    CoreVersion version = CoreVersion::Max;
    double clockGhz = 1.0;

    /** Cube fractal for fp16 sources (int8 doubles k0, int4 quadruples). */
    CubeShape cube{16, 16, 16};
    bool supportsFp16 = true;
    bool supportsInt8 = true;
    bool supportsInt4 = false;
    /**
     * fp32 sources in the cube unit (paper Section 7.2 future work,
     * for HPC corner applications); runs at half the fp16 rate.
     */
    bool supportsFp32Cube = false;

    /** Vector unit datapath width in bytes (elements/cycle = width/esize). */
    Bytes vectorWidthBytes = 256;

    /** Bus widths, bytes per cycle. */
    Bytes busABytesPerCycle = 4096;    ///< L1 -> L0A
    Bytes busBBytesPerCycle = 2048;    ///< L1 -> L0B
    Bytes busUbBytesPerCycle = 2048;   ///< unified buffer port
    Bytes busExtBytesPerCycle = 94;    ///< core <-> LLC (Table 5 last col)

    /** Buffer capacities. */
    Bytes l0aBytes = 64 * kKiB;
    Bytes l0bBytes = 64 * kKiB;
    Bytes l0cBytes = 256 * kKiB;
    Bytes l1Bytes = 1 * kMiB;
    Bytes ubBytes = 256 * kKiB;

    /** PSQ dispatch rate, instructions per cycle. */
    unsigned dispatchPerCycle = 1;

    /**
     * Effective cube fractal for a given source data type: int8 doubles
     * the reduction dimension k0 (paper: 16x16x16 fp16 -> 16x32x16
     * int8), int4 quadruples it.
     */
    CubeShape cubeShapeFor(DataType dt) const;

    /** Vector lanes for element size of @p dt. */
    std::uint64_t
    vectorLanes(DataType dt) const
    {
        return (vectorWidthBytes * 8) / bitsOf(dt);
    }

    /** Peak cube throughput for @p dt in ops/second. */
    double
    peakCubeOpsPerSecond(DataType dt) const
    {
        return cubeShapeFor(dt).flopsPerCycle() * clockGhz * 1e9;
    }

    /**
     * Reject inconsistent or out-of-range fields (zero clock, empty
     * buffers, ...). Throws ascend::Error with code ConfigValidation
     * so callers loading user-supplied configs can recover.
     */
    void validate() const;
};

/** Preset for a published design point (Table 5). */
CoreConfig makeCoreConfig(CoreVersion version);

/**
 * The Section 7.2 next-generation core: Ascend-Max plus fp32 cube
 * sources for HPC workloads.
 */
CoreConfig makeNextGenCoreConfig();

} // namespace arch
} // namespace ascend

#endif // ASCEND_ARCH_CORE_CONFIG_HH
