/**
 * @file
 * Text serialization for core configurations.
 *
 * A downstream user exploring the design space (Section 2.3) wants to
 * edit parameters in a file, not recompile. The format is flat
 * `key = value` lines with `#` comments — trivially diffable and
 * stable. Unknown keys are an error (they are usually typos of knobs
 * the user meant to change).
 */

#ifndef ASCEND_ARCH_CONFIG_IO_HH
#define ASCEND_ARCH_CONFIG_IO_HH

#include <iosfwd>
#include <string>

#include "arch/core_config.hh"

namespace ascend {
namespace arch {

/** Write @p config as `key = value` lines. */
void writeConfig(const CoreConfig &config, std::ostream &os);

/** Serialize to a string (convenience). */
std::string configToString(const CoreConfig &config);

/**
 * Parse a configuration: starts from @p base and applies every
 * `key = value` line in @p is. Throws ascend::Error with code
 * ConfigParse on unknown keys or malformed values (user error, and
 * callers can recover); the result is validate()d, which throws
 * ConfigValidation on out-of-range fields.
 */
CoreConfig readConfig(std::istream &is,
                      const CoreConfig &base = makeCoreConfig(
                          CoreVersion::Max));

/** Parse from a string (convenience). */
CoreConfig configFromString(const std::string &text,
                            const CoreConfig &base = makeCoreConfig(
                                CoreVersion::Max));

} // namespace arch
} // namespace ascend

#endif // ASCEND_ARCH_CONFIG_IO_HH
