/**
 * @file
 * Core configuration presets matching paper Table 5.
 */

#include "arch/core_config.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/logging.hh"

namespace ascend {
namespace arch {

const char *
toString(CoreVersion v)
{
    switch (v) {
      case CoreVersion::Tiny: return "Ascend-Tiny";
      case CoreVersion::Lite: return "Ascend-Lite";
      case CoreVersion::Mini: return "Ascend-Mini";
      case CoreVersion::Std:  return "Ascend";
      case CoreVersion::Max:  return "Ascend-Max";
    }
    return "?";
}

CubeShape
CoreConfig::cubeShapeFor(DataType dt) const
{
    CubeShape shape = cube;
    switch (dt) {
      case DataType::Fp16:
        if (!supportsFp16)
            fatal("core %s does not support fp16 sources", name.c_str());
        break;
      case DataType::Fp32:
        // Section 7.2: fp32 cube sources are a next-generation
        // feature; the datapath pairs fp16 multipliers, halving the
        // reduction dimension.
        if (!supportsFp32Cube)
            fatal("core %s does not support fp32 cube sources "
                  "(next-generation feature)", name.c_str());
        shape.k0 = std::max(1u, shape.k0 / 2);
        break;
      case DataType::Int8:
        if (!supportsInt8)
            fatal("core %s does not support int8 sources", name.c_str());
        // The int8 datapath reuses the fp16 multipliers with a doubled
        // reduction dimension (16x16x16 fp16 -> 16x32x16 int8).
        if (supportsFp16)
            shape.k0 *= 2;
        break;
      case DataType::Int4:
        if (!supportsInt4)
            fatal("core %s does not support int4 sources", name.c_str());
        shape.k0 *= 4;
        break;
      default:
        fatal("core %s: unsupported cube source type %s", name.c_str(),
              ascend::toString(dt));
    }
    return shape;
}

void
CoreConfig::validate() const
{
    // User-facing checks: a hand-edited config file lands here, so
    // report ConfigValidation errors callers can catch and attribute
    // rather than aborting the process.
    if (!(clockGhz > 0) || !std::isfinite(clockGhz))
        throwError(ErrorCode::ConfigValidation,
                   "core %s: clock must be positive, got %g",
                   name.c_str(), clockGhz);
    if (!(cube.m0 > 0 && cube.k0 > 0 && cube.n0 > 0))
        throwError(ErrorCode::ConfigValidation,
                   "core %s: cube dims must be positive, got %ux%ux%u",
                   name.c_str(), cube.m0, cube.k0, cube.n0);
    if (vectorWidthBytes == 0)
        throwError(ErrorCode::ConfigValidation,
                   "core %s: vector width must be positive",
                   name.c_str());
    if (!(busABytesPerCycle > 0 && busBBytesPerCycle > 0 &&
          busUbBytesPerCycle > 0))
        throwError(ErrorCode::ConfigValidation,
                   "core %s: bus widths must be positive",
                   name.c_str());
    if (!(l0aBytes > 0 && l0bBytes > 0 && l0cBytes > 0 &&
          l1Bytes > 0 && ubBytes > 0))
        throwError(ErrorCode::ConfigValidation,
                   "core %s: buffer sizes must be positive",
                   name.c_str());
    // L0A must hold at least two fractal tiles of A for double buffering.
    const Bytes fractal =
        2 * bytesOf(DataType::Fp16, std::uint64_t(cube.m0) * cube.k0);
    if (l0aBytes < fractal)
        throwError(ErrorCode::ConfigValidation,
                   "core %s: L0A too small for a double-buffered "
                   "fractal (%llu < %llu bytes)", name.c_str(),
                   static_cast<unsigned long long>(l0aBytes),
                   static_cast<unsigned long long>(fractal));
}

CoreConfig
makeNextGenCoreConfig()
{
    CoreConfig c = makeCoreConfig(CoreVersion::Max);
    c.name = "ascend-next-gen";
    c.supportsFp32Cube = true;
    c.supportsInt4 = true;
    return c;
}

CoreConfig
makeCoreConfig(CoreVersion version)
{
    CoreConfig c;
    c.version = version;
    switch (version) {
      case CoreVersion::Max:
        c.name = "ascend-max";
        // Defaults above already describe Ascend-Max (910): cube
        // 8192 FLOPS/cycle, vector 256 B, busA 4 TB/s, busB/UB 2 TB/s,
        // LLC 94 GB/s per core.
        c.supportsInt4 = false;
        break;
      case CoreVersion::Std:
        c.name = "ascend";
        // Same datapath as Max; the 610 SoC gives it 111 GB/s of LLC
        // bandwidth per core and adds int4 support for automotive.
        c.busExtBytesPerCycle = 111;
        c.supportsInt4 = true;
        break;
      case CoreVersion::Mini:
        c.name = "ascend-mini";
        c.version = CoreVersion::Mini;
        c.busExtBytesPerCycle = 96; // Ascend 310: 96 GB/s per core
        break;
      case CoreVersion::Lite:
        c.name = "ascend-lite";
        c.clockGhz = 0.75;
        c.cube = CubeShape{4, 16, 16}; // 2048 FLOPS/cycle
        c.vectorWidthBytes = 128;
        // 768 GB/s at 0.75 GHz on each of A / B / UB.
        c.busABytesPerCycle = 1024;
        c.busBBytesPerCycle = 1024;
        c.busUbBytesPerCycle = 1024;
        c.busExtBytesPerCycle = 51; // 38.4 GB/s at 0.75 GHz
        c.l0aBytes = 32 * kKiB;
        c.l0bBytes = 32 * kKiB;
        c.l0cBytes = 128 * kKiB;
        c.l1Bytes = 512 * kKiB;
        c.ubBytes = 128 * kKiB;
        break;
      case CoreVersion::Tiny:
        c.name = "ascend-tiny";
        c.clockGhz = 0.75;
        c.cube = CubeShape{4, 32, 4}; // 1024 int8 OPS/cycle
        c.supportsFp16 = false;      // fp16 forbidden (power limit)
        c.vectorWidthBytes = 32;
        // 384 GB/s A/B, 192 GB/s UB at 0.75 GHz.
        c.busABytesPerCycle = 512;
        c.busBBytesPerCycle = 512;
        c.busUbBytesPerCycle = 256;
        c.busExtBytesPerCycle = 11;  // direct DDR, ~8 GB/s (no LLC)
        c.l0aBytes = 16 * kKiB;
        c.l0bBytes = 16 * kKiB;
        c.l0cBytes = 32 * kKiB;
        c.l1Bytes = 128 * kKiB;
        c.ubBytes = 32 * kKiB;
        break;
    }
    c.validate();
    return c;
}

} // namespace arch
} // namespace ascend
