/**
 * @file
 * Execution-trace capture for the core simulator.
 *
 * Collects one event per executed instruction (pipe, start cycle,
 * duration, tag) and emits the Chrome trace-event JSON format, so a
 * simulated program's pipe overlap (the paper's Fig. 3 picture) can
 * be inspected in chrome://tracing or Perfetto.
 */

#ifndef ASCEND_CORE_TRACE_HH
#define ASCEND_CORE_TRACE_HH

#include <ostream>
#include <vector>

#include "isa/instruction.hh"

namespace ascend {
namespace core {

/** One executed instruction. */
struct TraceEvent
{
    isa::Pipe pipe;
    Cycles start;
    Cycles duration;
    const char *tag; ///< static label from the compiler; may be null
};

/**
 * Event collector + Chrome JSON writer.
 */
class Trace
{
  public:
    void
    add(isa::Pipe pipe, Cycles start, Cycles duration, const char *tag)
    {
        events_.push_back(TraceEvent{pipe, start, duration, tag});
    }

    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    void clear() { events_.clear(); }

    /**
     * Write Chrome trace-event JSON: one thread per pipe, one
     * complete ("X") event per instruction, timestamps in cycles
     * (microseconds field reused as cycles).
     */
    void writeChromeJson(std::ostream &os) const;

    /** Busy cycles recorded for @p pipe. */
    Cycles busyCycles(isa::Pipe pipe) const;

  private:
    std::vector<TraceEvent> events_;
};

} // namespace core
} // namespace ascend

#endif // ASCEND_CORE_TRACE_HH
