/**
 * @file
 * Source-compatible shim: core::Trace moved into the observability
 * layer as obs::PipeTrace (src/obs/pipe_trace.hh). Include that
 * header — and use obs::Tracer / ASCEND_TRACE for process-wide
 * multi-layer traces.
 */

#ifndef ASCEND_CORE_TRACE_HH
#define ASCEND_CORE_TRACE_HH

#include "obs/pipe_trace.hh"

namespace ascend {
namespace core {

using TraceEvent = obs::PipeTraceEvent;
using Trace = obs::PipeTrace;

} // namespace core
} // namespace ascend

#endif // ASCEND_CORE_TRACE_HH
