/**
 * @file
 * Cost model implementation.
 */

#include "core/cost_model.hh"

#include <algorithm>

namespace ascend {
namespace core {

CostModel::CostModel(const arch::CoreConfig &config) : config_(config)
{
    config_.validate();
}

Cycles
CostModel::cubeGemm(std::uint64_t m, std::uint64_t k, std::uint64_t n,
                    DataType dt) const
{
    const arch::CubeShape shape = config_.cubeShapeFor(dt);
    const std::uint64_t fractals =
        ceilDiv(m, shape.m0) * ceilDiv(k, shape.k0) * ceilDiv(n, shape.n0);
    return kComputeOverhead + fractals;
}

Cycles
CostModel::vectorOp(std::uint64_t elems, DataType dt, double passes) const
{
    const std::uint64_t lanes = config_.vectorLanes(dt);
    const auto work = static_cast<std::uint64_t>(
        static_cast<double>(elems) * std::max(passes, 1.0));
    const Cycles compute = ceilDiv(work, lanes);
    // Each pass streams operands through the UB port.
    const Bytes traffic = bytesOf(dt, work) * 2; // read + write
    const Cycles bandwidth = ceilDiv(traffic, 2 *
                                     config_.busUbBytesPerCycle);
    return kComputeOverhead + std::max(compute, bandwidth);
}

Cycles
CostModel::mte1A(Bytes l0_bytes) const
{
    return busCycles(l0_bytes, config_.busABytesPerCycle);
}

Cycles
CostModel::mte1B(Bytes l0_bytes) const
{
    return busCycles(l0_bytes, config_.busBBytesPerCycle);
}

Cycles
CostModel::mte2(Bytes bytes) const
{
    return busCycles(bytes, config_.busExtBytesPerCycle);
}

Cycles
CostModel::mte3Ext(Bytes bytes) const
{
    return busCycles(bytes, std::min(config_.busUbBytesPerCycle,
                                     config_.busExtBytesPerCycle));
}

Cycles
CostModel::mte3L1(Bytes bytes) const
{
    return busCycles(bytes, config_.busUbBytesPerCycle);
}

} // namespace core
} // namespace ascend
