/**
 * @file
 * Latency and traffic cost model for core instructions.
 *
 * The compiler consults this model when it lowers tiled work into ISA
 * instructions; the resulting cycles/bytes are baked into each Instr,
 * keeping the simulator kernel a pure scheduler. Costs follow the
 * paper's stated throughputs: the cube retires one m0 x k0 x n0
 * fractal per cycle, the vector unit processes `width` bytes per
 * cycle, and each MTE channel is bounded by its bus width (Table 5).
 * Small fixed overheads model instruction start-up / SRAM latency,
 * which is what makes tiny tiles inefficient (the paper's argument
 * against oversized cubes and systolic arrays).
 */

#ifndef ASCEND_CORE_COST_MODEL_HH
#define ASCEND_CORE_COST_MODEL_HH

#include "arch/core_config.hh"

namespace ascend {
namespace core {

/** Cost of a data-movement instruction. */
struct MoveCost
{
    Cycles cycles = 0;
    Bytes srcBytes = 0; ///< bytes read from the source buffer
    Bytes dstBytes = 0; ///< bytes written to the destination buffer
};

/**
 * Per-core-configuration instruction cost model.
 */
class CostModel
{
  public:
    explicit CostModel(const arch::CoreConfig &config);

    /** Fixed start-up cost of a cube / vector instruction. */
    static constexpr Cycles kComputeOverhead = 2;
    /** Fixed start-up cost of an MTE transfer (SRAM access latency). */
    static constexpr Cycles kMoveOverhead = 4;

    /**
     * Cycles for a tiled GEMM of logical shape m x k x n with source
     * type @p dt: ceil over the native fractal in each dimension.
     */
    Cycles cubeGemm(std::uint64_t m, std::uint64_t k, std::uint64_t n,
                    DataType dt) const;

    /** MAC ops (2 * m * k * n) of the same GEMM. */
    static Flops
    gemmFlops(std::uint64_t m, std::uint64_t k, std::uint64_t n)
    {
        return 2 * m * k * n;
    }

    /**
     * Cycles for a vector operation over @p elems elements of @p dt,
     * performing @p passes datapath passes per element (e.g. softmax
     * needs several), bounded by both lane throughput and UB port
     * bandwidth.
     */
    Cycles vectorOp(std::uint64_t elems, DataType dt,
                    double passes = 1.0) const;

    /** MTE1 transfer L1 -> L0A. @p l0_bytes is the expanded volume. */
    Cycles mte1A(Bytes l0_bytes) const;

    /** MTE1 transfer L1 -> L0B. */
    Cycles mte1B(Bytes l0_bytes) const;

    /** MTE2 transfer external -> L1. */
    Cycles mte2(Bytes bytes) const;

    /** MTE3 transfer UB -> external. */
    Cycles mte3Ext(Bytes bytes) const;

    /** MTE3 transfer UB -> L1 (layer-to-layer forwarding). */
    Cycles mte3L1(Bytes bytes) const;

    const arch::CoreConfig &config() const { return config_; }

  private:
    static Cycles
    busCycles(Bytes bytes, Bytes bus_bytes_per_cycle)
    {
        return kMoveOverhead + ceilDiv(bytes, bus_bytes_per_cycle);
    }

    arch::CoreConfig config_;
};

} // namespace core
} // namespace ascend

#endif // ASCEND_CORE_COST_MODEL_HH
