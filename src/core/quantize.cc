/**
 * @file
 * Quantization implementation.
 */

#include "core/quantize.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ascend {
namespace core {
namespace quant {

QuantParams
chooseParams(const Tensor &t, int bits)
{
    simAssert(bits == 8 || bits == 4, "quantization supports int8/int4");
    float max_abs = 0.0f;
    for (float v : t.data())
        max_abs = std::max(max_abs, std::fabs(v));
    QuantParams p;
    p.bits = bits;
    p.scale = max_abs > 0 ? max_abs / float(p.qmax()) : 1.0f;
    return p;
}

std::vector<std::int32_t>
quantize(const Tensor &t, const QuantParams &params)
{
    std::vector<std::int32_t> q(t.numel());
    for (std::size_t i = 0; i < t.numel(); ++i) {
        const float scaled = t[i] / params.scale;
        const auto rounded =
            static_cast<std::int32_t>(std::lround(scaled));
        q[i] = std::clamp(rounded, params.qmin(), params.qmax());
    }
    return q;
}

Tensor
dequantize(const std::vector<std::int32_t> &q, const QuantParams &params,
           const Tensor &shape_like)
{
    simAssert(q.size() == shape_like.numel(),
              "dequantize: size mismatch");
    Tensor out(shape_like.shape());
    for (std::size_t i = 0; i < q.size(); ++i)
        out[i] = float(q[i]) * params.scale;
    return out;
}

Tensor
quantizedGemm(const Tensor &a, const Tensor &b, int bits)
{
    simAssert(a.shape().size() == 2 && b.shape().size() == 2,
              "quantizedGemm needs matrices");
    const std::size_t m = a.shape()[0];
    const std::size_t k = a.shape()[1];
    const std::size_t n = b.shape()[1];
    simAssert(b.shape()[0] == k, "quantizedGemm: inner dims mismatch");

    const QuantParams pa = chooseParams(a, bits);
    const QuantParams pb = chooseParams(b, bits);
    const auto qa = quantize(a, pa);
    const auto qb = quantize(b, pb);

    Tensor c({m, n});
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            std::int64_t acc = 0; // int32-class accumulator
            for (std::size_t kk = 0; kk < k; ++kk)
                acc += std::int64_t(qa[i * k + kk]) * qb[kk * n + j];
            c.at2(i, j) = float(acc) * pa.scale * pb.scale;
        }
    }
    return c;
}

double
rmsError(const Tensor &a, const Tensor &b)
{
    simAssert(a.numel() == b.numel(), "rmsError: size mismatch");
    double sum = 0;
    for (std::size_t i = 0; i < a.numel(); ++i) {
        const double d = double(a[i]) - double(b[i]);
        sum += d * d;
    }
    return std::sqrt(sum / double(std::max<std::size_t>(1, a.numel())));
}

} // namespace quant
} // namespace core
} // namespace ascend
