/**
 * @file
 * Quantization support for the low-precision modes.
 *
 * Section 3.3: "the precision of inference computing for each DNN
 * model can be reduced as a trade-off between model accuracy and
 * calculating time / energy consumption. ... the Ascend core supports
 * int4 precision." Section 2.2 assigns quantize/dequantize to the
 * vector unit. This module provides the functional side of that
 * trade-off: symmetric per-tensor int8/int4 quantization, integer
 * GEMM with int32 accumulation, and error metrics, so the accuracy
 * cost of each precision mode is measurable against the fp16 path.
 */

#ifndef ASCEND_CORE_QUANTIZE_HH
#define ASCEND_CORE_QUANTIZE_HH

#include <cstdint>
#include <vector>

#include "model/tensor.hh"

namespace ascend {
namespace core {
namespace quant {

using model::Tensor;

/** Symmetric per-tensor quantization parameters. */
struct QuantParams
{
    float scale = 1.0f; ///< real = scale * q
    int bits = 8;       ///< 8 or 4

    int qmax() const { return (1 << (bits - 1)) - 1; }
    int qmin() const { return -qmax() - 1; }
};

/** Choose the symmetric scale covering @p t's max magnitude. */
QuantParams chooseParams(const Tensor &t, int bits = 8);

/** Quantize to clamped integers. */
std::vector<std::int32_t> quantize(const Tensor &t,
                                   const QuantParams &params);

/** Dequantize back to floats (same shape as @p shape_like). */
Tensor dequantize(const std::vector<std::int32_t> &q,
                  const QuantParams &params, const Tensor &shape_like);

/**
 * Integer GEMM as the cube's int8/int4 mode executes it: quantize
 * both operands per-tensor, multiply-accumulate in int32, dequantize
 * with the product of the scales.
 */
Tensor quantizedGemm(const Tensor &a, const Tensor &b, int bits = 8);

/** Root-mean-square error between two equally-sized tensors. */
double rmsError(const Tensor &a, const Tensor &b);

} // namespace quant
} // namespace core
} // namespace ascend

#endif // ASCEND_CORE_QUANTIZE_HH
