/**
 * @file
 * Functional datapath implementation.
 */

#include "core/functional.hh"

#include <algorithm>
#include <cmath>

#include "common/float16.hh"
#include "common/logging.hh"

namespace ascend {
namespace core {
namespace functional {

namespace {

void
checkMatrix(const Tensor &t, const char *what)
{
    simAssert(t.shape().size() == 2, what);
}

} // anonymous namespace

Tensor
cubeGemm(const Tensor &a, const Tensor &b)
{
    checkMatrix(a, "cubeGemm: A must be 2D");
    checkMatrix(b, "cubeGemm: B must be 2D");
    const std::size_t m = a.shape()[0];
    const std::size_t k = a.shape()[1];
    const std::size_t n = b.shape()[1];
    simAssert(b.shape()[0] == k, "cubeGemm: inner dims mismatch");

    Tensor c({m, n});
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            float acc = 0.0f; // fp32 accumulator
            for (std::size_t kk = 0; kk < k; ++kk) {
                // Sources round through fp16 storage.
                acc += roundToHalf(a.at2(i, kk)) *
                       roundToHalf(b.at2(kk, j));
            }
            c.at2(i, j) = acc;
        }
    }
    return c;
}

Tensor
referenceGemm(const Tensor &a, const Tensor &b)
{
    checkMatrix(a, "referenceGemm: A must be 2D");
    checkMatrix(b, "referenceGemm: B must be 2D");
    const std::size_t m = a.shape()[0];
    const std::size_t k = a.shape()[1];
    const std::size_t n = b.shape()[1];
    simAssert(b.shape()[0] == k, "referenceGemm: inner dims mismatch");
    Tensor c({m, n});
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk)
                acc += a.at2(i, kk) * b.at2(kk, j);
            c.at2(i, j) = acc;
        }
    return c;
}

Tensor
img2col(const Tensor &input, const model::Layer &conv)
{
    simAssert(input.shape().size() == 4, "img2col needs NCHW input");
    const std::size_t batch = input.shape()[0];
    const std::size_t channels = input.shape()[1];
    const std::size_t in_h = input.shape()[2];
    const std::size_t in_w = input.shape()[3];
    simAssert(batch == conv.batch && channels == conv.inC &&
                  in_h == conv.inH && in_w == conv.inW,
              "img2col: tensor does not match layer geometry");

    const std::size_t out_h = conv.outH();
    const std::size_t out_w = conv.outW();
    const std::size_t rows = batch * out_h * out_w;
    const std::size_t cols =
        channels * conv.kernelH * conv.kernelW;
    Tensor patches({rows, cols});

    std::size_t row = 0;
    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t oh = 0; oh < out_h; ++oh) {
            for (std::size_t ow = 0; ow < out_w; ++ow, ++row) {
                std::size_t col = 0;
                for (std::size_t c = 0; c < channels; ++c) {
                    for (unsigned kh = 0; kh < conv.kernelH; ++kh) {
                        for (unsigned kw = 0; kw < conv.kernelW;
                             ++kw, ++col) {
                            const long ih =
                                long(oh) * conv.strideH + kh -
                                conv.padH;
                            const long iw =
                                long(ow) * conv.strideW + kw -
                                conv.padW;
                            float v = 0.0f; // zero padding
                            if (ih >= 0 && iw >= 0 &&
                                ih < long(in_h) && iw < long(in_w))
                                v = input.at4(n, c, std::size_t(ih),
                                              std::size_t(iw));
                            patches.at2(row, col) = v;
                        }
                    }
                }
            }
        }
    }
    return patches;
}

Tensor
weightsToMatrix(const Tensor &weights)
{
    simAssert(weights.shape().size() == 4,
              "weightsToMatrix needs Co x C x kh x kw");
    const std::size_t co = weights.shape()[0];
    const std::size_t rows =
        weights.shape()[1] * weights.shape()[2] * weights.shape()[3];
    Tensor m({rows, co});
    for (std::size_t o = 0; o < co; ++o)
        for (std::size_t r = 0; r < rows; ++r)
            m.at2(r, o) = weights[o * rows + r];
    return m;
}

Tensor
referenceConv2d(const Tensor &input, const Tensor &weights,
                const model::Layer &conv)
{
    const std::size_t out_h = conv.outH();
    const std::size_t out_w = conv.outW();
    Tensor out({std::size_t(conv.batch), std::size_t(conv.outC), out_h,
                out_w});
    for (std::size_t n = 0; n < conv.batch; ++n) {
        for (std::size_t o = 0; o < conv.outC; ++o) {
            for (std::size_t oh = 0; oh < out_h; ++oh) {
                for (std::size_t ow = 0; ow < out_w; ++ow) {
                    float acc = 0.0f;
                    for (std::size_t c = 0; c < conv.inC; ++c) {
                        for (unsigned kh = 0; kh < conv.kernelH; ++kh) {
                            for (unsigned kw = 0; kw < conv.kernelW;
                                 ++kw) {
                                const long ih =
                                    long(oh) * conv.strideH + kh -
                                    conv.padH;
                                const long iw =
                                    long(ow) * conv.strideW + kw -
                                    conv.padW;
                                if (ih < 0 || iw < 0 ||
                                    ih >= long(conv.inH) ||
                                    iw >= long(conv.inW))
                                    continue;
                                acc += input.at4(n, c, std::size_t(ih),
                                                 std::size_t(iw)) *
                                       weights.at4(o, c, kh, kw);
                            }
                        }
                    }
                    out.at4(n, o, oh, ow) = acc;
                }
            }
        }
    }
    return out;
}

Tensor
conv2dViaCube(const Tensor &input, const Tensor &weights,
              const model::Layer &conv)
{
    const Tensor patches = img2col(input, conv);
    const Tensor wmat = weightsToMatrix(weights);
    const Tensor flat = cubeGemm(patches, wmat); // (N*Ho*Wo) x Co
    const std::size_t out_h = conv.outH();
    const std::size_t out_w = conv.outW();
    Tensor out({std::size_t(conv.batch), std::size_t(conv.outC), out_h,
                out_w});
    std::size_t row = 0;
    for (std::size_t n = 0; n < conv.batch; ++n)
        for (std::size_t oh = 0; oh < out_h; ++oh)
            for (std::size_t ow = 0; ow < out_w; ++ow, ++row)
                for (std::size_t o = 0; o < conv.outC; ++o)
                    out.at4(n, o, oh, ow) = flat.at2(row, o);
    return out;
}

Tensor
vectorRelu(const Tensor &in)
{
    Tensor out = in;
    for (float &v : out.data())
        v = std::max(v, 0.0f);
    return out;
}

Tensor
vectorAdd(const Tensor &a, const Tensor &b)
{
    simAssert(a.numel() == b.numel(), "vectorAdd: size mismatch");
    Tensor out = a;
    for (std::size_t i = 0; i < out.numel(); ++i)
        out[i] += b[i];
    return out;
}

Tensor
vectorSoftmax(const Tensor &in, std::size_t row_len)
{
    simAssert(row_len > 0 && in.numel() % row_len == 0,
              "softmax row length must divide the tensor");
    Tensor out = in;
    for (std::size_t base = 0; base < in.numel(); base += row_len) {
        float mx = -1e30f;
        for (std::size_t i = 0; i < row_len; ++i)
            mx = std::max(mx, in[base + i]);
        float sum = 0.0f;
        for (std::size_t i = 0; i < row_len; ++i) {
            out[base + i] = std::exp(in[base + i] - mx);
            sum += out[base + i];
        }
        for (std::size_t i = 0; i < row_len; ++i)
            out[base + i] /= sum;
    }
    return out;
}

Tensor
vectorScaleShift(const Tensor &in, float scale, float shift)
{
    Tensor out = in;
    for (float &v : out.data())
        v = v * scale + shift;
    return out;
}

Tensor
runSequential(const model::Network &net, const Tensor &input, Rng &rng)
{
    using model::LayerKind;
    Tensor cur = input;
    for (const model::Layer &layer : net.layers) {
        switch (layer.kind) {
          case LayerKind::Conv2d: {
            const Tensor weights = Tensor::random(
                {layer.outC, layer.inC, layer.kernelH, layer.kernelW},
                rng, 0.2f);
            cur = conv2dViaCube(cur, weights, layer);
            break;
          }
          case LayerKind::Linear: {
            simAssert(cur.numel() == layer.gemmM * layer.gemmK,
                      "runSequential: linear input size mismatch");
            Tensor a({std::size_t(layer.gemmM),
                      std::size_t(layer.gemmK)});
            a.data() = cur.data();
            const Tensor w = Tensor::random(
                {std::size_t(layer.gemmK), std::size_t(layer.gemmN)},
                rng, 0.2f);
            cur = cubeGemm(a, w);
            break;
          }
          case LayerKind::Pool2d: {
            // Average pooling.
            const std::size_t out_h = layer.outH();
            const std::size_t out_w = layer.outW();
            Tensor out({std::size_t(layer.batch),
                        std::size_t(layer.outC), out_h, out_w});
            for (std::size_t n = 0; n < layer.batch; ++n)
                for (std::size_t c = 0; c < layer.outC; ++c)
                    for (std::size_t oh = 0; oh < out_h; ++oh)
                        for (std::size_t ow = 0; ow < out_w; ++ow) {
                            float acc = 0;
                            unsigned cnt = 0;
                            for (unsigned kh = 0; kh < layer.kernelH;
                                 ++kh)
                                for (unsigned kw = 0;
                                     kw < layer.kernelW; ++kw) {
                                    const std::size_t ih =
                                        oh * layer.strideH + kh;
                                    const std::size_t iw =
                                        ow * layer.strideW + kw;
                                    if (ih < layer.inH &&
                                        iw < layer.inW) {
                                        acc += cur.at4(n, c, ih, iw);
                                        ++cnt;
                                    }
                                }
                            out.at4(n, c, oh, ow) =
                                cnt ? acc / float(cnt) : 0.0f;
                        }
            cur = out;
            break;
          }
          case LayerKind::BatchNorm:
            cur = vectorScaleShift(cur, 1.0f, 0.0f);
            break;
          case LayerKind::Activation:
            switch (layer.act) {
              case model::ActKind::Relu:
                cur = vectorRelu(cur);
                break;
              case model::ActKind::Relu6:
                cur = vectorRelu(cur);
                for (float &v : cur.data())
                    v = std::min(v, 6.0f);
                break;
              case model::ActKind::Sigmoid:
                for (float &v : cur.data())
                    v = 1.0f / (1.0f + std::exp(-v));
                break;
              default:
                // GELU/Swish: tanh-free approximation x * sigmoid(1.7x).
                for (float &v : cur.data())
                    v = v / (1.0f + std::exp(-1.7f * v));
                break;
            }
            break;
          case LayerKind::Softmax:
            cur = vectorSoftmax(cur, layer.rowLen ? layer.rowLen
                                                  : cur.numel());
            break;
          case LayerKind::Elementwise:
          case LayerKind::CvOp:
            // Sequential runner: pass-through.
            break;
          default:
            panic("runSequential: unsupported layer kind %s (%s)",
                  toString(layer.kind), layer.name.c_str());
        }
    }
    return cur;
}

} // namespace functional
} // namespace core
} // namespace ascend
