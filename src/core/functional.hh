/**
 * @file
 * Functional models of the datapath: what the units *compute*, as
 * opposed to how long they take (cost_model.hh).
 *
 * The functional layer validates the semantics the timing model
 * assumes: the MTE's img2col transform really linearizes a
 * convolution into the GEMM shape the compiler tiles
 * (m = N*Ho*Wo, k = C*kh*kw, n = Co), the cube's mixed-precision
 * discipline (fp16 sources, fp32 accumulation) matches the
 * mixed-precision-training reference the paper cites, and the vector
 * unit's post-operations compose as the compiler fuses them.
 */

#ifndef ASCEND_CORE_FUNCTIONAL_HH
#define ASCEND_CORE_FUNCTIONAL_HH

#include "common/rng.hh"
#include "model/network.hh"
#include "model/tensor.hh"

namespace ascend {
namespace core {
namespace functional {

using model::Tensor;

/**
 * Cube GEMM: C = A (m x k) * B (k x n), with both operands rounded
 * through fp16 and accumulation in fp32 — the 16x16x16 datapath's
 * numerics.
 */
Tensor cubeGemm(const Tensor &a, const Tensor &b);

/** Reference GEMM in full fp32 (for error-bound comparisons). */
Tensor referenceGemm(const Tensor &a, const Tensor &b);

/**
 * The MTE img2col transform: NCHW input -> (N*Ho*Wo) x (C*kh*kw)
 * patch matrix for the given convolution geometry.
 */
Tensor img2col(const Tensor &input, const model::Layer &conv);

/**
 * Reshape a conv weight tensor (Co x C x kh x kw) into the
 * (C*kh*kw) x Co matrix the cube multiplies against the patch matrix.
 */
Tensor weightsToMatrix(const Tensor &weights);

/**
 * Direct NCHW convolution reference (no img2col); output is
 * N x Co x Ho x Wo.
 */
Tensor referenceConv2d(const Tensor &input, const Tensor &weights,
                       const model::Layer &conv);

/**
 * Convolution the Ascend way: img2col + cube GEMM, reshaped back to
 * NCHW. Bit-compatible with referenceConv2d up to fp16 rounding.
 */
Tensor conv2dViaCube(const Tensor &input, const Tensor &weights,
                     const model::Layer &conv);

/**
 * Run a *sequential* network functionally: weights are generated
 * deterministically from @p rng per layer, convolutions go through
 * the img2col + cube path, pooling is average pooling, batch-norm
 * applies a fixed scale/shift, and residual elementwise layers act
 * as identity (a sequential runner has no second branch to add).
 * Supports the layer kinds a feed-forward CNN/MLP uses; panics on
 * attention-style layers.
 */
Tensor runSequential(const model::Network &net, const Tensor &input,
                     Rng &rng);

/// @{ Vector-unit operations (elementwise over the flat tensor).
Tensor vectorRelu(const Tensor &in);
Tensor vectorAdd(const Tensor &a, const Tensor &b);
/** Row-wise numerically-stable softmax over the last dimension. */
Tensor vectorSoftmax(const Tensor &in, std::size_t row_len);
/** Inference batch-norm: per-element scale + shift (folded stats). */
Tensor vectorScaleShift(const Tensor &in, float scale, float shift);
/// @}

} // namespace functional
} // namespace core
} // namespace ascend

#endif // ASCEND_CORE_FUNCTIONAL_HH
