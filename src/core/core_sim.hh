/**
 * @file
 * Cycle-level simulator of one Ascend core.
 *
 * Models the control structure of paper Fig. 1 / Fig. 3: the PSQ
 * dispatches instructions in program order at a bounded rate into
 * per-pipe in-order queues; the six pipes execute asynchronously and
 * synchronize only through counting-semaphore flags and full barriers.
 *
 * The simulator is deterministic and event-driven at instruction
 * granularity: instruction latencies and byte counts are precomputed
 * by the compiler from a CoreConfig, so the kernel here is a pure
 * dependency scheduler. A blocked WAIT_FLAG with no matching SET_FLAG
 * anywhere upstream is reported as a deadlock with full pipe state
 * (this catches compiler synchronization bugs in tests).
 */

#ifndef ASCEND_CORE_CORE_SIM_HH
#define ASCEND_CORE_CORE_SIM_HH

#include <array>
#include <cstdint>

#include "arch/core_config.hh"
#include "core/trace.hh"
#include "isa/program.hh"

namespace ascend {
namespace core {

/** Per-pipe execution statistics. */
struct PipeStats
{
    Cycles busyCycles = 0;   ///< cycles spent executing instructions
    Cycles finishCycle = 0;  ///< completion time of the pipe's last instr
    Cycles waitCycles = 0;   ///< stall: blocked on WAIT_FLAG tokens
    std::uint64_t instrs = 0;
};

/** Result of simulating one program on one core. */
struct SimResult
{
    Cycles totalCycles = 0;
    Flops totalFlops = 0;
    std::uint64_t instrsExecuted = 0;
    std::uint64_t barriers = 0; ///< stall: full PSQ pipe drains
    std::array<PipeStats, isa::kNumPipes> pipes{};
    std::array<Bytes, isa::kNumBuses> busBytes{};

    const PipeStats &
    pipe(isa::Pipe p) const
    {
        return pipes[static_cast<std::size_t>(p)];
    }

    Bytes
    bus(isa::Bus b) const
    {
        return busBytes[static_cast<std::size_t>(b)];
    }

    /** Total off-core traffic across the three external buses. */
    Bytes
    extBytes() const
    {
        return bus(isa::Bus::ExtA) + bus(isa::Bus::ExtB) +
               bus(isa::Bus::ExtOut);
    }

    /** Average bytes per cycle on @p b over the whole program. */
    double
    busBytesPerCycle(isa::Bus b) const
    {
        return totalCycles ? static_cast<double>(bus(b)) / totalCycles : 0;
    }

    /** Busy fraction of @p p over the whole program. */
    double
    utilization(isa::Pipe p) const
    {
        return totalCycles
            ? static_cast<double>(pipe(p).busyCycles) / totalCycles : 0;
    }

    /**
     * Busy fraction of @p p over the pipe's own active window (up to
     * its last retirement). Low occupancy with high utilization means
     * the pipe finished early; low occupancy with a late finish means
     * it sat in WAIT_FLAG stalls (see PipeStats::waitCycles).
     */
    double
    occupancy(isa::Pipe p) const
    {
        const PipeStats &s = pipe(p);
        return s.finishCycle
            ? static_cast<double>(s.busyCycles) / s.finishCycle : 0;
    }

    /** Wall-clock seconds at @p clock_ghz. */
    double
    seconds(double clock_ghz) const
    {
        return static_cast<double>(totalCycles) / (clock_ghz * 1e9);
    }

    /** Merge another result (sequential composition of programs). */
    void accumulate(const SimResult &other);
};

/**
 * The core simulator. Stateless between run() calls; safe to reuse.
 */
class CoreSim
{
  public:
    explicit CoreSim(const arch::CoreConfig &config) : config_(config)
    {
        config_.validate();
    }

    /**
     * Simulate @p program to completion.
     *
     * @param program The instruction sequence.
     * @param trace Optional collector receiving one event per
     *        executed instruction (for Chrome-trace visualization).
     * @return timing and traffic statistics.
     * Panics (with pipe-state diagnostics) if the program deadlocks.
     */
    SimResult run(const isa::Program &program,
                  Trace *trace = nullptr) const;

    const arch::CoreConfig &config() const { return config_; }

  private:
    arch::CoreConfig config_;
};

} // namespace core
} // namespace ascend

#endif // ASCEND_CORE_CORE_SIM_HH
