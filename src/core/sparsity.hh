/**
 * @file
 * Sparse-network support: the MTE's decomp module (paper Section 2.2)
 * decompresses Zero-Value-Compression-encoded tensors on the
 * L1 -> L0 path, and the Lite core is "optimized for structured
 * sparsity" (Section 3.2) so pruned models also save compute.
 *
 * ZVC encodes a tensor as a validity bitmask (1 bit per element) plus
 * the packed non-zero values; the decompressor re-inflates it at bus
 * rate. Structured sparsity (N:M pruning) additionally lets the cube
 * skip whole reduction slices.
 */

#ifndef ASCEND_CORE_SPARSITY_HH
#define ASCEND_CORE_SPARSITY_HH

#include <algorithm>

#include "common/types.hh"

namespace ascend {
namespace core {

/** Sparsity description of a tensor or network. */
struct SparsityConfig
{
    /** Fraction of non-zero weight elements in (0, 1]. */
    double weightDensity = 1.0;
    /**
     * Structured (N:M) pruning: the cube can skip pruned reduction
     * slices, scaling compute; unstructured pruning only saves
     * storage and bandwidth.
     */
    bool structured = false;

    bool sparse() const { return weightDensity < 1.0; }
};

/** Zero-Value Compression size model. */
class Zvc
{
  public:
    /**
     * Compressed size of a tensor of @p dense_bytes holding elements
     * of @p dt at non-zero @p density: bitmask (1 bit/element) +
     * packed non-zeros. Never reports expansion beyond dense + mask.
     */
    static Bytes
    compressedBytes(Bytes dense_bytes, DataType dt, double density)
    {
        density = std::clamp(density, 0.0, 1.0);
        const std::uint64_t elements =
            (dense_bytes * 8) / std::max(1u, bitsOf(dt));
        const Bytes mask = ceilDiv(elements, 8);
        const auto packed = static_cast<Bytes>(
            double(dense_bytes) * density + 0.5);
        return std::min(mask + packed, mask + dense_bytes);
    }

    /** Compression ratio (compressed / dense) for @p dt at @p density. */
    static double
    ratio(DataType dt, double density)
    {
        const Bytes dense = 1 << 20;
        return double(compressedBytes(dense, dt, density)) / dense;
    }
};

/**
 * Compute-scaling factor for the cube under structured pruning:
 * an N:M scheme at density d skips (1-d) of the reduction slices,
 * quantized to halves (2:4, 1:4) as real datapaths implement it.
 */
inline double
structuredComputeScale(const SparsityConfig &sparsity)
{
    if (!sparsity.structured || !sparsity.sparse())
        return 1.0;
    if (sparsity.weightDensity <= 0.25)
        return 0.25;
    if (sparsity.weightDensity <= 0.5)
        return 0.5;
    return 1.0;
}

} // namespace core
} // namespace ascend

#endif // ASCEND_CORE_SPARSITY_HH
