/**
 * @file
 * Core simulator kernel.
 */

#include "core/core_sim.hh"

#include <algorithm>
#include <deque>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "obs/tracer.hh"

namespace ascend {
namespace core {

namespace {

using isa::Instr;
using isa::Opcode;
using isa::Pipe;

/** A dispatched-but-not-retired instruction. */
struct QueueEntry
{
    const Instr *instr;
    Cycles dispatchCycle;
};

/** Min-heap of pending SET_FLAG completion times for one flag id. */
using TokenHeap =
    std::priority_queue<Cycles, std::vector<Cycles>, std::greater<>>;

} // anonymous namespace

void
SimResult::accumulate(const SimResult &other)
{
    totalCycles += other.totalCycles;
    totalFlops += other.totalFlops;
    instrsExecuted += other.instrsExecuted;
    barriers += other.barriers;
    for (std::size_t p = 0; p < isa::kNumPipes; ++p) {
        pipes[p].busyCycles += other.pipes[p].busyCycles;
        pipes[p].waitCycles += other.pipes[p].waitCycles;
        pipes[p].instrs += other.pipes[p].instrs;
        pipes[p].finishCycle = totalCycles;
    }
    for (std::size_t b = 0; b < isa::kNumBuses; ++b)
        busBytes[b] += other.busBytes[b];
}

SimResult
CoreSim::run(const isa::Program &program, Trace *trace) const
{
    const std::vector<Instr> &instrs = program.instrs();
    const std::size_t n = instrs.size();

    std::array<std::deque<QueueEntry>, isa::kNumPipes> queues;
    std::array<Cycles, isa::kNumPipes> pipeAvail{};
    std::array<TokenHeap, isa::kNumFlags> tokens;

    SimResult result;
    // One gate check per run; record sites below stay branch-free
    // when tracing is off.
    obs::Tracer *const tracer = obs::Tracer::current();

    std::size_t next_dispatch = 0;
    Cycles dispatch_clock = 0;
    unsigned dispatched_this_cycle = 0;
    const unsigned dispatch_rate = std::max(1u, config_.dispatchPerCycle);

    auto queues_empty = [&queues]() {
        for (const auto &q : queues)
            if (!q.empty())
                return false;
        return true;
    };
    auto max_pipe_avail = [&pipeAvail]() {
        Cycles m = 0;
        for (Cycles t : pipeAvail)
            m = std::max(m, t);
        return m;
    };

    auto tick_dispatch = [&]() {
        if (++dispatched_this_cycle >= dispatch_rate) {
            dispatched_this_cycle = 0;
            ++dispatch_clock;
        }
    };

    /**
     * Retire as many instructions as possible from the pipe queues.
     * Returns true if at least one instruction retired.
     */
    auto execute_pass = [&]() {
        bool any = false;
        bool progress = true;
        while (progress) {
            progress = false;
            for (std::size_t p = 0; p < isa::kNumPipes; ++p) {
                auto &q = queues[p];
                while (!q.empty()) {
                    const QueueEntry entry = q.front();
                    const Instr &i = *entry.instr;
                    if (i.op == Opcode::Exec) {
                        Cycles start = std::max(pipeAvail[p],
                                                entry.dispatchCycle);
                        pipeAvail[p] = start + i.cycles;
                        if (trace)
                            trace->add(static_cast<Pipe>(p), start,
                                       i.cycles, i.tag);
                        auto &ps = result.pipes[p];
                        ps.busyCycles += i.cycles;
                        ps.finishCycle = pipeAvail[p];
                        ++ps.instrs;
                        result.totalFlops += i.flops;
                        Bytes moved = 0;
                        for (unsigned b = 0; b < i.numBusUses; ++b) {
                            const isa::BusUse &use = i.busUses[b];
                            result.busBytes[
                                static_cast<std::size_t>(use.bus)] +=
                                use.bytes;
                            moved += use.bytes;
                        }
                        if (tracer)
                            tracer->span(obs::Domain::Core,
                                         std::uint32_t(p) + 1, i.tag,
                                         start, i.cycles, moved);
                        ++result.instrsExecuted;
                    } else if (i.op == Opcode::SetFlag) {
                        Cycles t = std::max(pipeAvail[p],
                                            entry.dispatchCycle);
                        tokens[i.flagId].push(t);
                        ++result.instrsExecuted;
                    } else if (i.op == Opcode::WaitFlag) {
                        TokenHeap &heap = tokens[i.flagId];
                        if (heap.empty())
                            break; // pipe blocked; try others
                        Cycles t = heap.top();
                        heap.pop();
                        // Stall accounting: cycles the pipe sat ready
                        // but waiting for the producer's token.
                        const Cycles ready = std::max(
                            pipeAvail[p], entry.dispatchCycle);
                        if (t > ready)
                            result.pipes[p].waitCycles += t - ready;
                        pipeAvail[p] = std::max(ready, t);
                        ++result.instrsExecuted;
                    } else {
                        panic("CoreSim: Barrier reached a pipe queue");
                    }
                    q.pop_front();
                    progress = true;
                    any = true;
                }
            }
        }
        return any;
    };

    while (true) {
        bool progress = false;

        // Dispatch phase: feed pipe queues until a barrier forces a
        // drain (or the program ends).
        while (next_dispatch < n) {
            const Instr &i = instrs[next_dispatch];
            if (i.op == Opcode::Barrier) {
                if (!queues_empty())
                    break; // drain before consuming the barrier
                dispatch_clock = std::max(dispatch_clock,
                                          max_pipe_avail());
                dispatched_this_cycle = 0;
                ++next_dispatch;
                ++result.instrsExecuted;
                ++result.barriers;
                progress = true;
                continue;
            }
            queues[static_cast<std::size_t>(i.pipe)].push_back(
                QueueEntry{&i, dispatch_clock});
            tick_dispatch();
            ++next_dispatch;
            progress = true;
        }

        if (execute_pass())
            progress = true;

        if (next_dispatch >= n && queues_empty())
            break;

        if (!progress) {
            // Deadlock: report per-pipe head state for debugging.
            for (std::size_t p = 0; p < isa::kNumPipes; ++p) {
                const auto &q = queues[p];
                if (q.empty())
                    continue;
                const Instr &i = *q.front().instr;
                warn("deadlock: pipe %s blocked on %s flag %u (tag %s), "
                     "%zu queued",
                     isa::toString(static_cast<Pipe>(p)),
                     i.op == Opcode::WaitFlag ? "WAIT" : "instr",
                     unsigned(i.flagId), i.tag ? i.tag : "-", q.size());
            }
            panic("CoreSim: program '%s' deadlocked at instr %zu/%zu",
                  program.name().c_str(), next_dispatch, n);
        }
    }

    result.totalCycles = std::max(dispatch_clock, max_pipe_avail());
    return result;
}

} // namespace core
} // namespace ascend
