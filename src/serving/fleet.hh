/**
 * @file
 * The overload-tolerant fleet serving simulator — a des::Kernel
 * client.
 *
 * The paper's cluster story ends at training; its serving story
 * (Section 2's "ubiquitous" deployment) is a fleet of inference
 * replicas answering an open-loop request stream under SLOs. This
 * engine models that fleet at the same fidelity the elastic trainer
 * models a training run, with robustness as the first-class subject:
 *
 *  - admission control + deadline-aware shedding: under overload a
 *    governed fleet drops the requests it cannot answer in time and
 *    keeps goodput near saturation with bounded p99; an ungoverned
 *    one queues without limit and every latency percentile diverges
 *    (the shed/no-shed sweep bench_serving emits);
 *  - per-request timeout/retry with capped exponential backoff
 *    (resilience::RetryPolicy, giveUpAfterSeconds wired to the
 *    request's QoS deadline) plus hedged duplicates against
 *    straggling replicas — first completion wins;
 *  - replica failure and warm-spare failover driven by a seeded
 *    resilience::FaultSchedule; in-flight requests of a dead replica
 *    re-enter the queue deterministically;
 *  - a queue-depth autoscaler that spins up cold replicas with a
 *    spin-up latency.
 *
 * Kernel client shape (same discipline as cluster/elastic_run): the
 * engine is a pure function of (immutable inputs, ServingState).
 * Every decision instant is a short chain of kernel events tie-broken
 * by priority at one sim time — quiescent marker (0) whose hook takes
 * the cadenced on-disk checkpoint, fault poll (1, ONE due fault per
 * dispatch, self-re-arming), then the step (2): completions, admitted
 * arrivals, hedge checks, autoscale, dispatch, and the re-arm at the
 * next decision instant. Checkpoints are CheckpointStore blobs taken
 * only at quiescent points, so a SIGKILL at any instant resumes into
 * a byte-identical report — the property bench_serving --chaos
 * enforces with real kills.
 *
 * Determinism contract: serial double arithmetic over the sorted
 * arrival and fault lists; no wall clock, thread identity, or
 * container-order iteration. Byte-identical at any ASCEND_THREADS.
 */

#ifndef ASCEND_SERVING_FLEET_HH
#define ASCEND_SERVING_FLEET_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "resilience/fault_schedule.hh"
#include "resilience/policy.hh"
#include "serving/latency_model.hh"
#include "serving/workload.hh"

namespace ascend {
namespace serving {

/** Front-door overload governance. */
struct AdmissionPolicy
{
    /**
     * Master switch for *all* shedding: admission control and the
     * expired-at-dispatch drop. Off = the ungoverned baseline — every
     * request queues and eventually runs, however late.
     */
    bool enabled = true;

    /** Queue slots; arrivals beyond this shed outright (0 = none). */
    std::size_t queueCapacity = 0;

    /**
     * Shed a sheddable arrival when its estimated completion
     * (queue-drain estimate plus a full-batch service time)
     * exceeds deadline * slackFactor.
     */
    double slackFactor = 1.0;
};

/** Straggler hedging: duplicate a slow dispatch, first answer wins. */
struct HedgePolicy
{
    bool enabled = false;

    /**
     * Hedge a dispatch still running this long after it started.
     * Duplicates of its unanswered requests re-enter the queue; the
     * losing copy's completion is discarded, never double-counted.
     */
    double afterSec = 0.05;
};

/** Queue-depth autoscaler with cold-start latency. */
struct AutoscalePolicy
{
    bool enabled = false;
    double checkIntervalSec = 0.05; ///< evaluation cadence
    std::size_t queueDepthPerReplica = 8; ///< scale-up threshold
    double spinUpSec = 0.2;  ///< cold replica readiness latency
    unsigned maxExtraReplicas = 0; ///< scale-out budget
};

/**
 * Per-replica health scoring with a circuit breaker. Every core
 * fault that hits a replica adds faultScore to its health score; a
 * completed batch multiplies the score by successDecay. When the
 * score crosses breakerThreshold the breaker opens: the dispatcher
 * skips the replica until cooloffSec has passed (the score is halved
 * at the trip, so the first post-cooloff dispatch is the half-open
 * probe — one more fault re-opens the breaker immediately). This
 * keeps a flapping or straggling replica from eating dispatches that
 * healthy peers would answer in time.
 */
struct HealthPolicy
{
    bool enabled = false;
    double faultScore = 1.0;      ///< score added per core fault
    double successDecay = 0.5;    ///< score multiplier per completion
    double breakerThreshold = 2.0;
    double cooloffSec = 0.05;     ///< open -> half-open window
};

/**
 * Brownout ladder: degrade quality instead of availability. Under
 * sustained overload (queue depth above enterQueueDepthPerReplica per
 * alive replica) the fleet switches every new dispatch to a cheaper
 * model variant (the brownout_model argument of runFleet) and rides
 * its higher capacity to drain the backlog; it exits once the depth
 * falls to exitQueueDepthPerReplica per replica and the ladder has
 * been held at least minResidencySec (hysteresis against flapping).
 * No-op unless both enabled and a brownout model are provided.
 */
struct BrownoutPolicy
{
    bool enabled = false;
    std::size_t enterQueueDepthPerReplica = 16;
    std::size_t exitQueueDepthPerReplica = 2;
    double minResidencySec = 0;
};

/**
 * Closed-loop clients: a shed request is not gone — its client
 * re-offers it after delaySec think time, up to maxReoffers times per
 * original request. Every re-offer counts as a fresh offered request
 * (conservation stays completed + shed == offered), carries a fresh
 * deadline from its re-offer instant, and — with
 * RetryPolicy::jitterFraction set — a de-synchronized delay. This is
 * the ingredient of metastable failure: after a mass-shedding fault
 * clears, the synchronized re-offer wave can keep the fleet saturated
 * indefinitely unless jitter/breakers/brownout break the loop.
 */
struct ReofferPolicy
{
    bool enabled = false;
    double delaySec = 0.01;   ///< client think time before re-offer
    unsigned maxReoffers = 2; ///< per original request
};

/** Knobs of one fleet run. */
struct FleetOptions
{
    unsigned replicas = 4;    ///< initially-warm replicas
    unsigned warmSpares = 0;  ///< failover pool
    double failoverSec = 0.05; ///< spare activation latency

    AdmissionPolicy admission;
    HedgePolicy hedge;
    AutoscalePolicy autoscale;
    HealthPolicy health;
    BrownoutPolicy brownout;
    ReofferPolicy reoffer;

    /**
     * Retry discipline for requests lost to replica failure.
     * giveUpAfterSeconds is overridden per request with its tier
     * deadline (the serving wiring of the deadline budget).
     */
    resilience::RetryPolicy retry;

    /** On-disk checkpoint cadence in sim time (0 = every quiescent). */
    double checkpointIntervalSec = 0;

    /**
     * Directory for crash-consistent checkpoints; empty disables
     * persistence. A valid checkpoint left by a killed run with the
     * same fingerprint is resumed automatically; a completed run
     * removes its file. Excluded from fingerprint().
     */
    std::string checkpointDir;

    /**
     * Test/chaos hook: stop (like a crash — checkpoint left on disk,
     * nothing charged) after this many event-log lines. 0 = never.
     * Excluded from fingerprint().
     */
    unsigned haltAfterEvents = 0;

    /**
     * Called with each event-log line as it is appended (the chaos
     * harness flushes kill-point markers here). Excluded from
     * fingerprint().
     */
    std::function<void(const std::string &line)> onEvent;
};

/** Outcome of one fleet run. */
struct FleetResult
{
    std::uint64_t offered = 0;   ///< requests that arrived
    std::uint64_t admitted = 0;  ///< past admission control
    std::uint64_t shed = 0;      ///< admission + deadline drops
    std::uint64_t completed = 0; ///< answered (however late)
    std::uint64_t goodput = 0;   ///< answered within their deadline
    std::uint64_t retries = 0;   ///< failure re-dispatches
    std::uint64_t hedges = 0;    ///< hedge copies issued
    std::uint64_t replicaFailures = 0;
    std::uint64_t failovers = 0; ///< warm spares activated
    std::uint64_t autoscaleUps = 0;
    std::uint64_t checkpointsSaved = 0;
    std::uint64_t reoffered = 0;    ///< closed-loop re-offers queued
    std::uint64_t breakerTrips = 0; ///< circuit-breaker opens
    std::uint64_t brownoutEntries = 0;
    std::uint64_t brownoutCompleted = 0; ///< answered on the ladder
    std::uint64_t brownoutGoodput = 0;   ///< ...within their deadline
    double brownoutSec = 0; ///< sim time spent degraded

    bool halted = false;    ///< true only via haltAfterEvents
    double makespanSec = 0; ///< sim time when the fleet drained

    /** Arrival-to-answer latency of every completed request. */
    std::vector<double> latencies;

    /**
     * Absolute completion instant of every completed request, aligned
     * with latencies, plus its deadline-met flag — the raw material of
     * windowed recovery metrics (bench_serving's correlated sweep).
     */
    std::vector<double> completionsSec;
    std::vector<std::uint8_t> completedOnTime;

    /// @{ Percentiles over latencies (0 when nothing completed).
    double p50 = 0;
    double p99 = 0;
    double p999 = 0;
    /// @}

    /** One line per structural event, deterministic. */
    std::string eventLog;

    /**
     * Deterministic multi-line report (summary + counters + event
     * log). The byte-diff unit of the kill/resume contract.
     */
    std::string report() const;
};

/**
 * Identity fingerprint of a run: every input that influences its
 * output. Checkpoints carry it, and a stored blob written under any
 * other identity is refused.
 */
std::string runFingerprint(const std::vector<Request> &arrivals,
                           const std::vector<QosTier> &tiers,
                           const BatchLatencyModel &model,
                           const resilience::FaultSchedule &faults,
                           const FleetOptions &options,
                           const BatchLatencyModel *brownout_model =
                               nullptr);

/**
 * Serve @p arrivals on a fleet of options.replicas replicas with
 * per-batch cost @p model, reacting to @p faults (CorePermanent =
 * replica death, CoreTransient = repairable outage, CoreStraggler =
 * slowdown window; link/ECC kinds are ignored — replicas are
 * stateless). Tier indices in @p arrivals must address @p tiers.
 * Correlated schedules (resilience::generateCorrelated) work
 * unchanged: a rack event is just several core faults at one instant.
 * @p brownout_model is the cheaper curve the brownout ladder switches
 * to; ignored unless options.brownout.enabled.
 */
FleetResult runFleet(const std::vector<Request> &arrivals,
                     const std::vector<QosTier> &tiers,
                     const BatchLatencyModel &model,
                     const resilience::FaultSchedule &faults,
                     const FleetOptions &options = {},
                     const BatchLatencyModel *brownout_model = nullptr);

} // namespace serving
} // namespace ascend

#endif // ASCEND_SERVING_FLEET_HH
