/**
 * @file
 * Batch-size -> inference-latency curves for the fleet simulator.
 *
 * A serving replica answers requests in batches; the only thing the
 * fleet engine needs from the chip level is "how long does a batch of
 * b take on one replica". This model is that curve: a handful of
 * measured (batch, seconds) points with piecewise-linear
 * interpolation between them.
 *
 * The measured points come from the repo's own chip simulator —
 * fromNetwork() runs a batch-parameterized model-zoo network through
 * a runtime::SimSession at each anchor batch size, so every sample is
 * served from (or installed into) the content-addressed SimCache and
 * the curve is byte-stable across runs and thread counts. linear()
 * builds a synthetic curve for tests and chaos drills where the cost
 * model is not the thing under test.
 */

#ifndef ASCEND_SERVING_LATENCY_MODEL_HH
#define ASCEND_SERVING_LATENCY_MODEL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hh"
#include "model/network.hh"
#include "runtime/sim_session.hh"

namespace ascend {
namespace serving {

/** Per-replica batch latency curve (piecewise linear, monotone). */
class BatchLatencyModel
{
  public:
    BatchLatencyModel() = default;

    /**
     * Curve through explicit @p points (batch, seconds); sorted and
     * validated (batches strictly increasing from >= 1, latencies
     * positive and non-decreasing).
     */
    static BatchLatencyModel
    fromPoints(std::vector<std::pair<unsigned, double>> points);

    /** Synthetic affine curve: base + perRequest * batch. */
    static BatchLatencyModel linear(double base_sec,
                                    double per_request_sec,
                                    unsigned max_batch);

    /**
     * Measure the curve on the chip simulator: for each anchor batch
     * b in @p batches, simulate builder(b) end-to-end on @p session
     * and take totalCycles / clock. Results are memoized by the
     * session's SimCache like every other simulation.
     */
    static BatchLatencyModel
    fromNetwork(const runtime::SimSession &session,
                const std::function<model::Network(unsigned)> &builder,
                const std::vector<unsigned> &batches, double clock_ghz);

    /**
     * fromNetwork for graph-IR workloads: each anchor lowers
     * builder(b) through graph::graphResult, so KV-cache decoders and
     * other DAG-shaped models (graph/decoder.hh) feed the fleet
     * simulator exactly like the legacy zoo networks. Anchors reuse
     * denseAnchors() and the whole-graph SimCache memo; a graph that
     * re-expresses a Network produces the identical curve (the
     * differential tests guarantee identical cycles).
     */
    static BatchLatencyModel
    fromGraph(const runtime::SimSession &session,
              const std::function<graph::Graph(unsigned)> &builder,
              const std::vector<unsigned> &batches, double clock_ghz);

    /**
     * Anchor batch sizes for a dense curve up to @p max_batch: every
     * batch through 8, then a step that doubles per octave (8..16 by
     * 2, 16..32 by 4, ...), always ending exactly at max_batch.
     * Surrogate-enabled sessions (runtime::SimSession with
     * ASCEND_SURROGATE=1) make simulating all of them affordable —
     * the anchors beyond batch 8 the fleet sweeps used to skip.
     */
    static std::vector<unsigned> denseAnchors(unsigned max_batch);

    /** Latency of a batch of @p batch requests (clamped to curve). */
    double latencySeconds(unsigned batch) const;

    /** Largest batch one replica dispatches at once. */
    unsigned maxBatch() const;

    /**
     * Throughput ceiling of @p replicas replicas all running full
     * batches back to back — the knee the overload sweeps are
     * normalized against.
     */
    double saturationRequestsPerSec(unsigned replicas) const;

    const std::vector<std::pair<unsigned, double>> &points() const
    {
        return points_;
    }

    /** Exact identity of the curve (checkpoint/runId fingerprints). */
    std::string fingerprint() const;

  private:
    std::vector<std::pair<unsigned, double>> points_;
};

} // namespace serving
} // namespace ascend

#endif // ASCEND_SERVING_LATENCY_MODEL_HH
